package main

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestBinariesEndToEnd builds the real squid-node and squidctl binaries,
// boots a three-node ring over TCP, publishes and queries through the CLI,
// and shuts the ring down — the full production path, process boundaries
// included.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "squid-node")
	ctlBin := filepath.Join(dir, "squidctl")
	for _, b := range []struct{ out, pkg string }{
		{nodeBin, "./cmd/squid-node"},
		{ctlBin, "./cmd/squidctl"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			p.Wait()
		}
	}()

	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(nodeBin, args...)
		var logBuf bytes.Buffer
		cmd.Stdout = &logBuf
		cmd.Stderr = &logBuf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %v: %v", args, err)
		}
		procs = append(procs, cmd)
		t.Cleanup(func() {
			if t.Failed() {
				t.Logf("node %v log:\n%s", args, logBuf.String())
			}
		})
		return cmd
	}

	httpAddr := freeAddr(t)
	start("-listen", addrs[0], "-create", "-dims", "2", "-bits", "16", "-stabilize", "200ms")
	waitListening(t, addrs[0])
	start("-listen", addrs[1], "-join", addrs[0], "-dims", "2", "-bits", "16", "-stabilize", "200ms")
	waitListening(t, addrs[1])
	// The third node serves telemetry; queries below run through it, so its
	// trace store holds their reassembled query trees.
	start("-listen", addrs[2], "-join", addrs[0], "-dims", "2", "-bits", "16", "-stabilize", "200ms", "-http", httpAddr)
	waitListening(t, addrs[2])

	ctl := func(args ...string) (string, error) {
		out, err := exec.Command(ctlBin, args...).CombinedOutput()
		return string(out), err
	}

	// Publish through different members.
	docs := [][2]string{
		{"computer,network", "netdoc"},
		{"computer,graphics", "gfxdoc"},
		{"database,systems", "dbdoc"},
	}
	for i, d := range docs {
		out, err := ctl("-node", addrs[i%3], "publish", "-values", d[0], "-data", d[1])
		if err != nil {
			t.Fatalf("publish: %v\n%s", err, out)
		}
	}

	// Query until the routed publishes land (poll briefly).
	deadline := time.Now().Add(15 * time.Second)
	var lastOut string
	for time.Now().Before(deadline) {
		out, err := ctl("-node", addrs[2], "-timeout", "5s", "query", "(comp*, *)")
		if err == nil && strings.Contains(out, "2 matches") {
			lastOut = out
			break
		}
		lastOut = out
		time.Sleep(200 * time.Millisecond)
	}
	if !strings.Contains(lastOut, "2 matches") {
		t.Fatalf("query did not find both computer docs:\n%s", lastOut)
	}
	if !strings.Contains(lastOut, "netdoc") || !strings.Contains(lastOut, "gfxdoc") {
		t.Errorf("query output missing docs:\n%s", lastOut)
	}

	// Telemetry over HTTP, consumed by squidctl: Prometheus metrics, the
	// trace listing, and the rendered query tree of the query that just ran.
	waitListening(t, httpAddr)
	out, err := ctl("-http", httpAddr, "metrics")
	if err != nil {
		t.Fatalf("squidctl metrics: %v\n%s", err, out)
	}
	for _, want := range []string{"squid_engine_queries_total", "squid_transport_tcp_sent_total", "squid_chord_stabilize_rounds_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("squidctl metrics missing %s:\n%s", want, out)
		}
	}
	qidMatch := regexp.MustCompile(`query id (\d+)`).FindStringSubmatch(lastOut)
	if qidMatch == nil {
		t.Fatalf("query output has no query id:\n%s", lastOut)
	}
	qid := qidMatch[1]
	if out, err = ctl("-http", httpAddr, "trace"); err != nil {
		t.Fatalf("squidctl trace: %v\n%s", err, out)
	} else if !strings.Contains(out, qid) {
		t.Errorf("trace listing missing query %s:\n%s", qid, out)
	}
	if out, err = ctl("-http", httpAddr, "trace", qid); err != nil {
		t.Fatalf("squidctl trace %s: %v\n%s", qid, err, out)
	} else if !strings.Contains(out, "query "+qid+": complete") || !strings.Contains(out, "root") {
		t.Errorf("rendered trace malformed:\n%s", out)
	}

	// Unpublish through the CLI; the doc must disappear.
	if out, err := ctl("-node", addrs[0], "unpublish", "-values", "computer,graphics", "-data", "gfxdoc"); err != nil {
		t.Fatalf("unpublish: %v\n%s", err, out)
	}
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		out, err := ctl("-node", addrs[2], "-timeout", "5s", "query", "(comp*, *)")
		if err == nil && strings.Contains(out, "1 matches") && !strings.Contains(out, "gfxdoc") {
			break
		}
		lastOut = out
		time.Sleep(200 * time.Millisecond)
	}

	// Status through the CLI.
	out, err = ctl("-node", addrs[1], "status")
	if err != nil {
		t.Fatalf("status: %v\n%s", err, out)
	}
	if !strings.Contains(out, "pred") || !strings.Contains(out, "load") {
		t.Errorf("status output malformed:\n%s", out)
	}

	// Graceful shutdown of one node must not break the others.
	procs[1].Process.Signal(syscall.SIGTERM)
	procs[1].Wait()
	deadline = time.Now().Add(15 * time.Second)
	ok := false
	for time.Now().Before(deadline) {
		out, err := ctl("-node", addrs[0], "-timeout", "5s", "query", "(database, *)")
		if err == nil && strings.Contains(out, "1 matches") {
			ok = true
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	if !ok {
		t.Error("query after graceful departure failed")
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never started listening", addr)
}
