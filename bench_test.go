// Benchmarks regenerating every table and figure of the paper's evaluation
// (Schmidt & Parashar, HPDC 2003, Section 4) at laptop scale. Each
// benchmark runs the identical experiment code that cmd/squid-bench drives
// at the paper's full scale (1 000-5 400 nodes, 2*10^5-10^6 keys); here the
// default factor keeps a full `go test -bench=.` run in minutes.
//
// Reported custom metrics follow the paper's: processing-nodes/query,
// data-nodes/query, messages/query, matches/query. See EXPERIMENTS.md for
// recorded outputs and the paper-vs-measured comparison.
package main

import (
	"io"
	"testing"

	"squid/internal/experiments"
	"squid/internal/stats"
)

// benchFactor scales the paper's sweep for benchmark runs: 2% of full
// scale, i.e. 20-108 nodes and 4 000-20 000 keys per point.
const benchFactor = 0.02

// reportPoints converts sweep rows into per-query benchmark metrics.
func reportPoints(b *testing.B, pts []experiments.Point) {
	b.Helper()
	var rows int
	var processing, data, messages, matches, routing int
	for _, pt := range pts {
		for _, r := range pt.Rows {
			rows++
			processing += r.ProcessingNodes
			data += r.DataNodes
			messages += r.Messages
			matches += r.Matches
			routing += r.RoutingNodes
		}
	}
	if rows == 0 {
		return
	}
	n := float64(rows)
	b.ReportMetric(float64(processing)/n, "procNodes/query")
	b.ReportMetric(float64(data)/n, "dataNodes/query")
	b.ReportMetric(float64(routing)/n, "routingNodes/query")
	b.ReportMetric(float64(messages)/n, "messages/query")
	b.ReportMetric(float64(matches)/n, "matches/query")
}

func runFigure(b *testing.B, fn func(float64, io.Writer) ([]experiments.Point, error)) {
	b.Helper()
	var pts []experiments.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = fn(benchFactor, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPoints(b, pts)
}

// BenchmarkFig09_Q1_2D regenerates Figure 9: Q1 queries, 2-D keyword
// space, five system scales.
func BenchmarkFig09_Q1_2D(b *testing.B) { runFigure(b, experiments.Fig09) }

// BenchmarkFig10_AllMetrics_2D regenerates Figure 10: all metrics at the
// two largest 2-D scales.
func BenchmarkFig10_AllMetrics_2D(b *testing.B) { runFigure(b, experiments.Fig10) }

// BenchmarkFig11_Q2_2D regenerates Figure 11: Q2 queries, 2-D.
func BenchmarkFig11_Q2_2D(b *testing.B) { runFigure(b, experiments.Fig11) }

// BenchmarkFig12_Q1_3D regenerates Figure 12: Q1 queries, 3-D sweep.
func BenchmarkFig12_Q1_3D(b *testing.B) { runFigure(b, experiments.Fig12) }

// BenchmarkFig13_AllMetrics_3D regenerates Figure 13: all metrics, 3-D.
func BenchmarkFig13_AllMetrics_3D(b *testing.B) { runFigure(b, experiments.Fig13) }

// BenchmarkFig14_Q2_3D regenerates Figure 14: Q2 queries, 3-D.
func BenchmarkFig14_Q2_3D(b *testing.B) { runFigure(b, experiments.Fig14) }

// BenchmarkFig15_Range_KRW regenerates Figure 15: range queries of the
// form (keyword, range, *), 3-D.
func BenchmarkFig15_Range_KRW(b *testing.B) { runFigure(b, experiments.Fig15) }

// BenchmarkFig16_AllMetrics_Range regenerates Figure 16: all metrics for
// range queries at the paper's two scales.
func BenchmarkFig16_AllMetrics_Range(b *testing.B) { runFigure(b, experiments.Fig16) }

// BenchmarkFig17_Range_RRR regenerates Figure 17: (range, range, range)
// queries, 3-D.
func BenchmarkFig17_Range_RRR(b *testing.B) { runFigure(b, experiments.Fig17) }

// BenchmarkFig18_IndexDistribution regenerates Figure 18: keys over 500
// index-space intervals (the unbalanced baseline distribution).
func BenchmarkFig18_IndexDistribution(b *testing.B) {
	var dist experiments.IndexDistribution
	var err error
	for i := 0; i < b.N; i++ {
		dist, err = experiments.Fig18(20_000, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dist.Gini, "gini")
	b.ReportMetric(float64(dist.Summary.Max), "maxKeys/interval")
	b.ReportMetric(dist.Summary.Mean, "meanKeys/interval")
}

// BenchmarkFig19_LoadBalance regenerates Figure 19: per-node load under
// join-time sampling alone and with runtime balancing.
func BenchmarkFig19_LoadBalance(b *testing.B) {
	var dists experiments.LoadDistributions
	var err error
	for i := 0; i < b.N; i++ {
		dists, err = experiments.Fig19(40, 8_000, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Gini(dists.Uniform), "gini-uniform")
	b.ReportMetric(stats.Gini(dists.JoinOnly), "gini-joinLB")
	b.ReportMetric(stats.Gini(dists.JoinAndRun), "gini-join+runtime")
}

// BenchmarkAblation_Aggregation quantifies optimization 2 (A1).
func BenchmarkAblation_Aggregation(b *testing.B) {
	var rows []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationAggregation(experiments.Scale{Nodes: 80, Keys: 10_000}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	on, off := 0, 0
	for _, r := range rows {
		on += r.On.PayloadHops
		off += r.Off.PayloadHops
	}
	b.ReportMetric(float64(on)/float64(len(rows)), "payloadMsgs-on/query")
	b.ReportMetric(float64(off)/float64(len(rows)), "payloadMsgs-off/query")
}

// BenchmarkAblation_Pruning quantifies distributed refinement (A2).
func BenchmarkAblation_Pruning(b *testing.B) {
	var rows []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationPruning(experiments.Scale{Nodes: 80, Keys: 10_000}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	on, off := 0, 0
	for _, r := range rows {
		on += r.On.Messages
		off += r.Off.Messages
	}
	b.ReportMetric(float64(on)/float64(len(rows)), "messages-distributed/query")
	b.ReportMetric(float64(off)/float64(len(rows)), "messages-central/query")
}

// BenchmarkBaselines_Compare runs Squid vs flooding vs inverted index (A3).
func BenchmarkBaselines_Compare(b *testing.B) {
	var rows []experiments.BaselineRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.BaselinesCompare(80, 6_000, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "squid":
			b.ReportMetric(float64(r.Messages), "squid-messages")
		case "flooding (full TTL)":
			b.ReportMetric(float64(r.Messages), "flood-messages")
		case "inverted index":
			b.ReportMetric(float64(r.Messages), "invindex-messages")
		}
	}
}

// BenchmarkBaseline_InverseSFC_CAN runs Squid vs Andrzejak-Xu (A4).
func BenchmarkBaseline_InverseSFC_CAN(b *testing.B) {
	var rows []experiments.InverseSFCRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.BaselineInverseSFC(80, 8_000, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "squid (SFC->Chord)" {
			b.ReportMetric(float64(r.Nodes), "squid-nodes")
			b.ReportMetric(float64(r.Messages), "squid-messages")
		} else {
			b.ReportMetric(float64(r.Nodes), "can-zones")
			b.ReportMetric(float64(r.Messages), "can-messages")
		}
	}
}

// BenchmarkAblation_LoadBalance sweeps the join sample count and virtual
// nodes (A5).
func BenchmarkAblation_LoadBalance(b *testing.B) {
	var rows []experiments.LoadBalanceRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationLoadBalance(30, 5_000, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Config {
		case "join sampling J=1":
			b.ReportMetric(r.Gini, "gini-J1")
		case "join sampling J=10":
			b.ReportMetric(r.Gini, "gini-J10")
		case "J=5 + neighbor runtime LB":
			b.ReportMetric(r.Gini, "gini-J5+runtime")
		}
	}
}

// BenchmarkAblation_HotSpotCache measures repeated-query cost with the
// probe cache (A7).
func BenchmarkAblation_HotSpotCache(b *testing.B) {
	var rows []experiments.HotSpotRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationHotSpot(experiments.Scale{Nodes: 80, Keys: 10_000}, 3, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) >= 2 {
		b.ReportMetric(float64(rows[0].Probes), "probes-cold")
		b.ReportMetric(float64(rows[len(rows)-1].Probes), "probes-warm")
	}
}

// BenchmarkAblation_CurveChoice compares Hilbert vs Z-order (A6).
func BenchmarkAblation_CurveChoice(b *testing.B) {
	var rows []experiments.CurveRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationCurve(experiments.Scale{Nodes: 80, Keys: 10_000}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Curve == "hilbert" {
			b.ReportMetric(r.AvgClusters, "hilbert-clusters/query")
			b.ReportMetric(r.AvgMessages, "hilbert-messages/query")
		} else {
			b.ReportMetric(r.AvgClusters, "morton-clusters/query")
			b.ReportMetric(r.AvgMessages, "morton-messages/query")
		}
	}
}
