package analysis_test

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"squid/internal/analysis"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func inspectReturns(f *ast.File, report func(token.Pos)) {
	ast.Inspect(f, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			report(ret.Pos())
		}
		return true
	})
}

func newLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoaderLoadsModulePackage(t *testing.T) {
	l := newLoader(t)
	if l.ModulePath != "squid" {
		t.Fatalf("module path = %q, want squid", l.ModulePath)
	}
	pkg, err := l.Load("squid/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.Types.Name() != "stats" {
		t.Fatalf("loaded package %v, want stats", pkg.Types)
	}
	if pkg.Info == nil || len(pkg.Info.Defs) == 0 {
		t.Fatal("no type info recorded")
	}
	// Memoized: the same *Package comes back.
	again, err := l.Load("squid/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("Load is not memoized")
	}
}

func TestExpandPatterns(t *testing.T) {
	l := newLoader(t)
	paths, err := l.ExpandPatterns([]string{"./internal/sfc", "squid/internal/chord"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"squid/internal/chord", "squid/internal/sfc"}
	if len(paths) != 2 || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("paths = %v, want %v", paths, want)
	}

	all, err := l.ExpandPatterns(nil) // defaults to ./...
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range all {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package leaked into ./...: %s", p)
		}
	}
	for _, must := range []string{"squid/internal/chord", "squid/internal/sfc", "squid/cmd/squid-lint"} {
		if !seen[must] {
			t.Fatalf("./... missed %s (got %d packages)", must, len(all))
		}
	}
}

func TestAllowComment(t *testing.T) {
	// A one-off analyzer that flags every return statement; the fixture
	// below suppresses one of two findings with an escape comment.
	dir := t.TempDir()
	src := `package fix

func a() int {
	//lint:allow-flagret constant result, checked by hand
	return 1
}

func b() int {
	return 2
}

func c() int {
	//lint:allow-flagret
	return 3
}
`
	if err := writeFile(filepath.Join(dir, "fix.go"), src); err != nil {
		t.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraDirs["fix"] = dir
	pkg, err := l.Load("fix")
	if err != nil {
		t.Fatal(err)
	}
	flagret := &analysis.Analyzer{
		Name: "flagret",
		Doc:  "flags every return",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				inspectReturns(f, func(pos token.Pos) {
					pass.Reportf(pos, "return flagged")
				})
			}
			return nil
		},
	}
	diags, err := analysis.Run([]*analysis.Analyzer{flagret}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	// a() is suppressed with a reason; b() flagged; c()'s bare marker has
	// no reason and must NOT suppress.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2 (reasonless escape must not count)", len(diags), diags)
	}
}
