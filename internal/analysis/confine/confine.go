// Package confine enforces goroutine confinement: fields annotated
//
//	//lint:confine <label>
//
// (on a struct type declaration, covering every field, or on a single
// field) may only be accessed from functions reachable from that label's
// entrypoints — functions annotated //lint:entry <label>. The engine's
// delivery goroutine is the motivating case: Engine's mutable query state
// has no mutex because every mutation happens on the goroutine draining
// the node's delivery loop.
//
// A `go` statement breaks confinement: the launched function and every
// function it reaches run on a fresh goroutine, so a confined-field
// access there is a data race even if the launch site itself was on the
// owning goroutine. The one sanctioned way back is re-entry: a function
// literal passed to a callee named Invoke is re-executed on the delivery
// goroutine by the node's delivery loop, so it counts as a fresh
// entrypoint for every label. Literals handed to the time package
// (AfterFunc, …) run on the runtime timer goroutine and are treated like
// go launches.
package confine

import (
	"go/ast"
	"go/types"

	"squid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "confine",
	Doc: "fields annotated //lint:confine <label> may only be accessed from functions " +
		"reachable from that label's //lint:entry entrypoints; go statements break " +
		"confinement unless the callee re-enters via Invoke",
	Run: run,
}

func run(pass *analysis.Pass) error {
	confined := confinedFields(pass)
	if len(confined) == 0 {
		return nil
	}
	g := analysis.BuildCallGraph(pass)

	labels := make(map[string]bool)
	for _, l := range confined {
		labels[l] = true
	}

	// Entry roots per label.
	roots := make(map[string][]*analysis.FuncNode)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if label, ok := analysis.HasDirective("entry", fd.Doc); ok {
				labels[label] = true
				if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil {
					roots[label] = append(roots[label], g.NodeOf(obj))
				}
			}
		}
	}
	// Invoke re-entry literals are fresh roots for every label; literals
	// handed to the time package run on the timer goroutine.
	for _, n := range g.Nodes {
		if n.Lit == nil {
			continue
		}
		if passedToInvoke(n) {
			for l := range labels {
				roots[l] = append(roots[l], n)
			}
		}
	}

	// A label's ownership propagates along same-goroutine edges: plain and
	// deferred calls, dynamic dispatch, and lexical nesting — except into
	// literals that leave the goroutine (go launch, timer callback) or
	// that are themselves re-entry roots.
	follow := func(e *analysis.CallEdge) bool {
		switch e.Kind {
		case analysis.KindGo:
			return false
		case analysis.KindLexical:
			l := e.Callee
			return !l.LaunchedByGo && !passedToTimer(l) && !passedToInvoke(l)
		}
		return true
	}
	labeled := make(map[string]map[*analysis.FuncNode]bool)
	for l := range labels {
		labeled[l] = g.Reachable(roots[l], follow)
	}

	// Taint: everything reachable from a goroutine launch or timer
	// callback runs off the owning goroutine. Taint flows through every
	// edge — including go — but not into re-entry literals.
	var taintRoots []*analysis.FuncNode
	for _, n := range g.Nodes {
		if n.Lit != nil && (n.LaunchedByGo || passedToTimer(n)) {
			taintRoots = append(taintRoots, n)
		}
		if n.Lit == nil && n.LaunchedByGo {
			taintRoots = append(taintRoots, n)
		}
	}
	tainted := g.Reachable(taintRoots, func(e *analysis.CallEdge) bool {
		return !(e.Kind == analysis.KindLexical && passedToInvoke(e.Callee))
	})

	for _, file := range pass.Files {
		ast.Inspect(file, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			label, ok := confined[v]
			if !ok {
				return true
			}
			ctx := g.Enclosing(sel.Pos())
			if ctx == nil {
				return true
			}
			switch {
			case tainted[ctx]:
				pass.Reportf(sel.Sel.Pos(),
					"%s is confined to the %q goroutine but %s runs on a goroutine launched with go (re-enter via Invoke)",
					v.Name(), label, ctx.Name())
			case !labeled[label][ctx]:
				pass.Reportf(sel.Sel.Pos(),
					"%s is confined to the %q goroutine but %s is not reachable from its //lint:entry entrypoints",
					v.Name(), label, ctx.Name())
			}
			return true
		})
	}
	return nil
}

// confinedFields maps each annotated struct field to its label: a
// type-level //lint:confine covers every field, a field-level one covers
// that field (and overrides the type's label).
func confinedFields(pass *analysis.Pass) map[*types.Var]string {
	confined := make(map[*types.Var]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				typeLabel, typeOK := analysis.HasDirective("confine", gd.Doc, ts.Doc, ts.Comment)
				for _, field := range st.Fields.List {
					label, ok := analysis.HasDirective("confine", field.Doc, field.Comment)
					if !ok {
						label, ok = typeLabel, typeOK
					}
					if !ok || label == "" {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok {
							confined[v] = label
						}
					}
				}
			}
		}
	}
	return confined
}

// passedToInvoke reports whether the literal is handed to a callee named
// Invoke — squid's re-entry point onto the delivery goroutine.
func passedToInvoke(n *analysis.FuncNode) bool {
	for _, f := range n.PassedTo {
		if f.Name() == "Invoke" {
			return true
		}
	}
	return false
}

// passedToTimer reports whether the literal is handed to the time
// package (AfterFunc and friends run it on the timer goroutine).
func passedToTimer(n *analysis.FuncNode) bool {
	for _, f := range n.PassedTo {
		if f.Pkg() != nil && f.Pkg().Path() == "time" {
			return true
		}
	}
	return false
}
