package confine_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/confine"
)

func TestConfine(t *testing.T) {
	analysistest.Run(t, "testdata", confine.Analyzer, "engine")
}
