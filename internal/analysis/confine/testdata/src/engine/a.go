// Package engine is a confinement fixture shaped like squid's Engine:
// mutable query state owned by a delivery goroutine, a scheduler whose
// workers must re-enter via Invoke, and timer callbacks.
package engine

import "time"

// Engine's mutable state is touched only by the delivery goroutine.
//
//lint:confine delivery
type Engine struct {
	children map[int]int
	nextTok  int
}

// Invoke re-executes f on the delivery goroutine (stand-in for
// chord.Node.Invoke).
func (e *Engine) Invoke(f func()) error {
	f()
	return nil
}

type sched struct {
	queue []int // shared, lock-guarded elsewhere: not confined
	owner int   //lint:confine delivery
}

//lint:entry delivery
func (e *Engine) Deliver() {
	e.children[1] = 2
	e.step()
}

// step has no annotation but is reachable from Deliver.
func (e *Engine) step() {
	e.nextTok++
}

// Stray is not reachable from any delivery entrypoint.
func (e *Engine) Stray() {
	e.nextTok++ // want `nextTok is confined to the "delivery" goroutine but Engine\.Stray is not reachable`
}

//lint:entry delivery
func (e *Engine) Launch(s *sched) {
	go func() {
		e.children[3] = 4 // want `children is confined to the "delivery" goroutine but function literal in Engine\.Launch runs on a goroutine launched with go`
		_ = e.Invoke(func() {
			e.nextTok++ // re-entry: back on the delivery goroutine
		})
	}()
	time.AfterFunc(time.Second, func() {
		s.owner = 1 // want `owner is confined to the "delivery" goroutine but function literal in Engine\.Launch runs on a goroutine launched with go`
		_ = e.Invoke(func() {
			s.owner = 2 // re-entry: fine
		})
	})
	_ = s.queue // unannotated field: fine anywhere
}

// helper is reached from Launch through a plain literal: still delivery.
//
//lint:entry delivery
func (e *Engine) Indirect() {
	f := func() { e.nextTok++ }
	f()
}

func (e *Engine) Setup() {
	//lint:allow-confine construction runs before the delivery loop starts
	e.children = make(map[int]int)
}

// GoDecl shows a declared function launched with go: everything it
// reaches is off-goroutine.
//
//lint:entry delivery
func (e *Engine) Spawn() {
	go e.background()
}

func (e *Engine) background() {
	e.nextTok++ // want `nextTok is confined to the "delivery" goroutine but Engine\.background runs on a goroutine launched with go`
}
