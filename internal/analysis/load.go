package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("squid/internal/chord")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loader *Loader
}

// Dep returns another package this loader has already loaded (typically a
// dependency of this one), or nil. Analyzers use it to read annotations
// across package boundaries — e.g. allocfree checking a squid/internal/wire
// method called from squid/internal/chord.
func (p *Package) Dep(path string) *Package {
	if p.loader == nil {
		return nil
	}
	return p.loader.pkgs[path]
}

// Loader parses and type-checks packages from source using only the
// standard library: module packages resolve against ModuleDir, fixture
// packages against ExtraDirs, and everything else falls through to the
// go/importer source importer (which reads $GOROOT/src — no network, no
// export data, no external tooling).
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// ExtraDirs maps additional import paths to directories; analysistest
	// uses it to graft testdata/src fixtures into the import space.
	ExtraDirs map[string]string
	// IncludeTests adds in-package _test.go files to loaded packages.
	IncludeTests bool

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader rooted at moduleDir, reading the module path
// from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: loader needs a module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  abs,
		ExtraDirs:  make(map[string]string),
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// dirFor resolves an import path to a source directory, or "" when the
// path belongs to neither the module nor ExtraDirs (i.e. is stdlib).
func (l *Loader) dirFor(path string) string {
	if d, ok := l.ExtraDirs[path]; ok {
		return d
	}
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Load type-checks the package at the given import path (and, recursively,
// its module/fixture dependencies). Results are memoized per Loader.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: %s is not a module or fixture package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: %s: no Go source files", path)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, loader: l}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter adapts Loader to types.Importer: module and fixture
// imports recurse through Load (without test files — dependencies are
// always imported as their export shape), stdlib goes to the source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.dirFor(path) != "" {
		// Dependencies never include _test.go files, even when the root
		// package under analysis does.
		saved := l.IncludeTests
		l.IncludeTests = false
		pkg, err := l.Load(path)
		l.IncludeTests = saved
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves command-line package patterns to import paths.
// Supported: "./..." (every package under the module), "all" (same), a
// module-relative directory ("./internal/sfc" or "internal/sfc"), or a
// full import path ("squid/internal/sfc").
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			all, err := l.modulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/"):
			add(pat)
		default:
			rel := strings.TrimPrefix(pat, "./")
			rel = strings.TrimSuffix(rel, "/")
			if rel == "" || rel == "." {
				add(l.ModulePath)
				continue
			}
			add(l.ModulePath + "/" + filepath.ToSlash(rel))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// modulePackages walks the module tree for directories holding non-test Go
// files, skipping testdata, hidden directories, and nested modules.
func (l *Loader) modulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		bp, err := build.Default.ImportDir(p, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil // not a package (or test-only): skip, keep walking
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return paths, err
}
