// Package ringcmp flags relational comparisons of ring identifiers.
//
// Chord identifiers live on a ring: "a < b" is meaningless across the wrap
// point (the bug class wraparc_test.go exists to catch). Every ordering
// decision must flow through the modular helpers — Space.Between,
// Space.BetweenOpen, Space.Dist, Space.Add — which are themselves the only
// allowlisted home for raw operator arithmetic (methods on the Space type
// of the package defining the identifier type).
//
// Deliberate linear comparisons (e.g. sorting a snapshot for deterministic
// iteration, with wrap-around handled explicitly) carry
// //lint:allow-ringcmp <reason>.
package ringcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"squid/internal/analysis"
)

// ringPkgs are the package-path tails whose identifier types are ring
// coordinates; ringTypes are the type names within them.
var (
	ringPkgs  = map[string]bool{"chord": true, "keyspace": true}
	ringTypes = map[string]bool{"ID": true}
)

// Analyzer is the ringcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "ringcmp",
	Doc:  "flags <, >, <=, >= on ring identifier types; ring order is modular, use Space.Between/BetweenOpen/Dist",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && isModularHelper(pass, fn) {
				continue // the allowlisted arithmetic helpers themselves
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
				default:
					return true
				}
				t := ringOperand(pass, be.X)
				if t == "" {
					t = ringOperand(pass, be.Y)
				}
				if t != "" {
					pass.Reportf(be.OpPos, "%q on ring identifier type %s ignores wrap-around; use Space.Between/BetweenOpen or compare Space.Dist values", be.Op, t)
				}
				return true
			})
		}
	}
	return nil
}

// ringOperand returns the printed type of e when e's type is a ring
// identifier, "" otherwise.
func ringOperand(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if ringPkgs[analysis.PkgPathTail(obj.Pkg().Path())] && ringTypes[obj.Name()] {
		return types.TypeString(named, nil)
	}
	return ""
}

// isModularHelper reports whether fn is a method on the Space type of the
// package under analysis — the one place allowed to do raw identifier
// arithmetic, because it implements the modular helpers everyone else must
// call.
func isModularHelper(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	if !ringPkgs[analysis.PkgPathTail(pass.Pkg.Path())] {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Space"
}
