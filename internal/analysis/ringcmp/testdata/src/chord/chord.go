// Fixture: inside a ring package, methods on Space are the allowlisted
// modular-arithmetic helpers; free functions get no such exemption.
package chord

// ID is a ring identifier (fixture twin of the real chord.ID).
type ID uint64

// Space is the ring geometry.
type Space struct{ Bits int }

// Less may compare raw identifiers: Space methods implement the modular
// helpers themselves.
func (s Space) Less(a, b ID) bool { return a < b }

func free(a, b ID) bool {
	return a > b // want `ring identifier`
}
