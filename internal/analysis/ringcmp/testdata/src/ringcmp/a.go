// Fixture: relational operators on chord.ID are modular-arithmetic bugs.
package ringcmp

import "squid/internal/chord"

func cmp(a, b chord.ID) bool {
	return a < b // want `ring identifier`
}

func sorted(ids []chord.ID) bool {
	return ids[0] >= ids[1] // want `ring identifier`
}

func mixed(a chord.ID, b uint64) bool {
	return a <= chord.ID(b) // want `ring identifier`
}

func allowedSort(a, b chord.ID) bool {
	//lint:allow-ringcmp deterministic snapshot ordering; wrap handled by caller
	return a < b
}

func viaHelpers(sp chord.Space, x, a, b chord.ID) bool {
	return sp.Between(x, a, b) && sp.Dist(a, b) < 4 && a != b
}

func plainInts(a, b uint64) bool { return a < b }
