package ringcmp_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/ringcmp"
)

func TestRingCmp(t *testing.T) {
	analysistest.Run(t, "testdata", ringcmp.Analyzer, "ringcmp", "chord")
}
