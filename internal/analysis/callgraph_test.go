package analysis

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// loadSource type-checks one synthetic package and returns a pass over it.
func loadSource(t *testing.T, src string) *Pass {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("tmp")
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{
		Analyzer: &Analyzer{Name: "test"},
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Dep:      pkg.Dep,
	}
}

const graphSrc = `package tmp

type runner interface{ Run() }

type job struct{}

func (job) Run() { helper() }

func helper() {}

func spawn(f func()) { f() }

func root() {
	go worker()
	go func() { helper() }()
	step := func() {}
	step()
	var again func(int)
	again = func(n int) {
		if n > 0 {
			again(n - 1)
		}
	}
	again(2)
	spawn(func() { helper() })
	defer func() { helper() }()
	var r runner = job{}
	r.Run()
}

func worker() {}
`

func TestCallGraph(t *testing.T) {
	pass := loadSource(t, graphSrc)
	g := BuildCallGraph(pass)

	find := func(name string) *FuncNode {
		t.Helper()
		for _, n := range g.Nodes {
			if n.Obj != nil && n.Obj.Name() == name {
				return n
			}
		}
		t.Fatalf("no node for %s", name)
		return nil
	}
	root := find("root")
	worker := find("worker")
	helper := find("helper")

	// go worker() marks the declared callee as goroutine-launched and the
	// edge as KindGo.
	if !worker.LaunchedByGo {
		t.Errorf("worker not marked LaunchedByGo")
	}
	var goEdges, litCalls, dynamic, deferredLits int
	for _, e := range root.Out {
		switch {
		case e.Kind == KindGo:
			goEdges++
		case e.Kind == KindCall && e.Callee != nil && e.Callee.Lit != nil:
			litCalls++
		case e.Kind == KindDynamic:
			dynamic++
		}
		if e.Deferred && e.Callee != nil && e.Callee.Lit != nil {
			deferredLits++
		}
	}
	if goEdges != 2 {
		t.Errorf("got %d KindGo edges from root, want 2", goEdges)
	}
	// step() + again(2): calls through local bindings resolve to literals.
	if litCalls < 2 {
		t.Errorf("got %d literal-call edges from root, want >= 2", litCalls)
	}
	if dynamic != 1 {
		t.Errorf("got %d dynamic edges from root, want 1 (r.Run -> job.Run)", dynamic)
	}
	if deferredLits != 1 {
		t.Errorf("got %d deferred literal edges, want 1", deferredLits)
	}

	// The literal passed to spawn records its destination.
	var passed *FuncNode
	for _, n := range g.Nodes {
		for _, f := range n.PassedTo {
			if f.Name() == "spawn" {
				passed = n
			}
		}
	}
	if passed == nil {
		t.Errorf("no literal recorded as passed to spawn")
	}

	// The recursive rebinding literal calls itself through the binding.
	var recursive bool
	for _, n := range g.Nodes {
		if n.Lit == nil {
			continue
		}
		for _, e := range n.Out {
			if e.Callee == n {
				recursive = true
			}
		}
	}
	if !recursive {
		t.Errorf("again = func(n){ again(n-1) } did not produce a self edge")
	}

	// Reachability: helper is reachable from root through the dynamic
	// edge (root -> job.Run -> helper), but not when go edges and
	// literals are excluded and dynamic edges are blocked.
	all := g.Reachable([]*FuncNode{root}, nil)
	if !all[helper] {
		t.Errorf("helper not reachable from root")
	}
	noDyn := g.Reachable([]*FuncNode{root}, func(e *CallEdge) bool {
		return e.Kind == KindCall && e.Callee != nil && e.Callee.Lit == nil
	})
	if noDyn[helper] {
		t.Errorf("helper reachable from root with only static decl calls followed")
	}

	// Enclosing resolves positions to the innermost function.
	if n := g.Enclosing(worker.Decl.Body.Pos() + 1); n != worker {
		t.Errorf("Enclosing(worker body) = %v", n)
	}

	// Name rendering for methods.
	jobRun := find("Run")
	if jobRun.Name() != "job.Run" {
		t.Errorf("Name() = %q, want job.Run", jobRun.Name())
	}
	_ = types.Universe // keep go/types imported for the helper above
}

func TestGroupDirectives(t *testing.T) {
	pass := loadSource(t, `package tmp

// doc text
//lint:confine delivery
type S struct {
	A int //lint:guarded-by mu
}

//lint:allocfree
func f() {}
`)
	var got []Directive
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			got = append(got, GroupDirectives(cg)...)
		}
	}
	want := map[string]string{"confine": "delivery", "guarded-by": "mu", "allocfree": ""}
	if len(got) != len(want) {
		t.Fatalf("got %d directives, want %d: %v", len(got), len(want), got)
	}
	for _, d := range got {
		if args, ok := want[d.Name]; !ok || args != d.Args {
			t.Errorf("unexpected directive %s %q", d.Name, d.Args)
		}
	}
}
