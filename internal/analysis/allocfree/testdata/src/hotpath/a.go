// Package hotpath is an allocfree fixture shaped like the wire encoder
// and the sfc ...Into family: append-only writers, unannotated helpers
// pulled onto the hot path by the call graph, and documented cold paths.
package hotpath

import "fmt"

type enc struct {
	buf []byte
}

// Uvarint appends into the reused buffer: append is exempt.
//
//lint:allocfree
func (e *enc) Uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

//lint:allocfree
func (e *enc) Bad(s string) {
	e.buf = make([]byte, 8) // want `make in //lint:allocfree function enc\.Bad`
	_ = []byte(s)           // want `string to \[\]byte/\[\]rune conversion`
	_ = s + "x"             // want `string concatenation`
}

//lint:allocfree
func (e *enc) Encode(v uint64) {
	e.Uvarint(v)
	e.helper(v)
}

// helper carries no annotation but sits on Encode's hot path.
func (e *enc) helper(v uint64) {
	m := map[uint64]bool{} // want `map literal in enc\.helper \(on the //lint:allocfree path from enc\.Encode\)`
	_ = m
	_ = fmt.Sprintf("%d", v) // want `call to fmt\.Sprintf \(outside the allocfree audited set\)`
}

// coldBuild is a documented cold path: the audit stops at its boundary.
//
//lint:allow-allocfree table construction is amortized by a package-level cache
func coldBuild() []uint64 {
	return make([]uint64, 64)
}

//lint:allocfree
func Warm() []uint64 {
	go spin() // want `go statement`
	return coldBuild()
}

func spin() {}

//lint:allocfree
func Closure() func() int {
	f := func() int { return 1 } // want `function literal`
	return f
}

//lint:allocfree
func Allowed() {
	//lint:allow-allocfree scratch grows at most once per doubling
	_ = make([]int, 4)
}
