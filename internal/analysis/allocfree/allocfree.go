// Package allocfree statically vets functions annotated
//
//	//lint:allocfree
//
// — the sfc ...Into refinement family, the wire encoders, the telemetry
// counters — against allocation constructs. The analyzer walks the
// call-graph closure of every annotated function (within the package,
// plus cross-package module calls resolved through their declarations)
// and flags anything that allocates on the hot path: make/new, map and
// slice composite literals, &T{} pointer literals, function literals,
// `go` statements, string concatenation, string<->[]byte conversions,
// and calls that leave the audited set.
//
// append is exempt — amortized growth against a reused scratch buffer is
// the whole point of the ...Into contract, and the escape-analysis gate
// (squid-lint -allocs, see AllocSpans/ParseEscapes in the analysis
// package) pins the grow paths that do surface. A documented cold path
// opts out with //lint:allow-allocfree <reason>: on an allocation line
// it suppresses that finding, on a function's doc comment it stops the
// traversal at that function entirely.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/types"

	"squid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //lint:allocfree (and everything they reach) must not " +
		"allocate: no make/new/literals/closures/string concat, no calls outside the audited set",
	Run: run,
}

// calleePkgs whose calls are allocation-free by construction.
var whitelistPkgs = map[string]bool{
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
	"sort":            true, // sort.Search and friends; sort.Slice's closure is flagged as a literal
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	var roots []*analysis.FuncNode
	annotated := make(map[*analysis.FuncNode]bool)
	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		if _, ok := analysis.HasDirective("allocfree", n.Decl.Doc); ok {
			roots = append(roots, n)
			annotated[n] = true
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// The audited closure: everything the annotated functions reach on
	// the same goroutine, stopping at functions that opt out with a
	// doc-level //lint:allow-allocfree.
	closure := g.Reachable(roots, func(e *analysis.CallEdge) bool {
		if e.Kind == analysis.KindGo {
			return false // the go statement itself is flagged below
		}
		if e.Callee != nil && e.Callee.LaunchedByGo {
			return false // runs off the hot path; the launch is flagged
		}
		if e.Callee != nil && e.Callee.Decl != nil {
			if _, ok := analysis.HasDirective("allow-allocfree", e.Callee.Decl.Doc); ok {
				return false
			}
		}
		return true
	})

	// rootOf names one annotated root per audited function for messages.
	rootOf := make(map[*analysis.FuncNode]*analysis.FuncNode)
	for _, r := range roots {
		for n := range g.Reachable([]*analysis.FuncNode{r}, func(e *analysis.CallEdge) bool {
			return e.Kind != analysis.KindGo && closure[e.Callee]
		}) {
			if _, ok := rootOf[n]; !ok {
				rootOf[n] = r
			}
		}
	}

	for n := range closure {
		body := nodeBody(n)
		if body == nil {
			continue
		}
		c := &checker{pass: pass, g: g, closure: closure, node: n, root: rootOf[n]}
		c.walk(body)
	}
	return nil
}

func nodeBody(n *analysis.FuncNode) *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	g       *analysis.CallGraph
	closure map[*analysis.FuncNode]bool
	node    *analysis.FuncNode
	root    *analysis.FuncNode
}

func (c *checker) flag(pos ast.Node, what string) {
	where := c.node.Name()
	if c.root != nil && c.root != c.node {
		where = fmt.Sprintf("%s (on the //lint:allocfree path from %s)", where, c.root.Name())
	} else {
		where = fmt.Sprintf("//lint:allocfree function %s", where)
	}
	c.pass.Reportf(pos.Pos(), "%s in %s", what, where)
}

func (c *checker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			// The literal's body is audited through its own closure
			// membership; the allocation is creating the closure here.
			c.flag(n, "function literal (closure allocates)")
			return false
		case *ast.GoStmt:
			c.flag(n, "go statement (new goroutine allocates)")
			return true
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && c.isString(n) {
				c.flag(n, "string concatenation")
			}
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *checker) isString(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Value != nil { // constants fold at compile time
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func (c *checker) compositeLit(n *ast.CompositeLit) {
	tv, ok := c.pass.Info.Types[n]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.flag(n, "slice literal")
	case *types.Map:
		c.flag(n, "map literal")
	}
	// Struct/array literals are stack values; &T{} escapes are caught by
	// the -allocs escape-analysis gate.
}

func (c *checker) call(n *ast.CallExpr) {
	fun := ast.Unparen(n.Fun)
	// Builtins and conversions.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.flag(n, "make")
			case "new":
				c.flag(n, "new")
			}
			return
		}
	}
	if tv, ok := c.pass.Info.Types[fun]; ok && tv.IsType() {
		c.conversion(n, tv.Type)
		return
	}
	callee := analysis.CalleeOf(c.pass.Info, n)
	if callee == nil {
		// Dynamic call through a func value: the value was created (and
		// audited) wherever the caller built it; calling it is free.
		return
	}
	pkg := callee.Pkg()
	if pkg == nil || pkg == c.pass.Pkg {
		// Same package: covered by closure membership (or stopped at an
		// explicit allow).
		return
	}
	if whitelistPkgs[pkg.Path()] {
		return
	}
	// Interface methods: if the package-local method set produced
	// dynamic edges they are in the closure; the interface call itself
	// does not allocate.
	if isInterfaceMethod(callee) {
		return
	}
	// Cross-package module call: honor the callee's own annotation.
	if dep := c.pass.Dep(pkg.Path()); dep != nil {
		if _, ok := analysis.FuncDirective(dep, callee, "allocfree"); ok {
			return
		}
		if _, ok := analysis.FuncDirective(dep, callee, "allow-allocfree"); ok {
			return
		}
	}
	c.flag(n, fmt.Sprintf("call to %s.%s (outside the allocfree audited set)",
		analysis.PkgPathTail(pkg.Path()), callee.Name()))
}

func (c *checker) conversion(n *ast.CallExpr, to types.Type) {
	if len(n.Args) != 1 {
		return
	}
	fromTV, ok := c.pass.Info.Types[n.Args[0]]
	if !ok || fromTV.Value != nil {
		return // constant conversions fold
	}
	from := fromTV.Type
	if isStringType(to) && isByteOrRuneSlice(from) {
		c.flag(n, "[]byte/[]rune to string conversion")
	}
	if isByteOrRuneSlice(to) && isStringType(from) {
		c.flag(n, "string to []byte/[]rune conversion")
	}
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	k := basic.Kind()
	return k == types.Byte || k == types.Uint8 || k == types.Rune || k == types.Int32
}

func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
