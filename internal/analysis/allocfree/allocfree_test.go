package allocfree_test

import (
	"testing"

	"squid/internal/analysis/allocfree"
	"squid/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "hotpath")
}
