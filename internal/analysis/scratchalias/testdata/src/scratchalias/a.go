// Fixture: aliasing contract of the sfc ...Into(dst, scratch) APIs.
package scratchalias

import "squid/internal/sfc"

type holder struct {
	spans []sfc.Interval
	m     map[string][]sfc.Interval
	ch    chan []sfc.Interval
}

func fieldStore(h *holder, c sfc.Curve, r sfc.Region, sc *sfc.Scratch) {
	h.spans = sfc.ClustersInto(nil, c, r, sc) // want `stored in field`
}

func recycle(h *holder, c sfc.Curve, r sfc.Region, sc *sfc.Scratch) {
	h.spans = sfc.ClustersInto(h.spans[:0], c, r, sc)
}

func mapStore(h *holder, c sfc.Curve, r sfc.Region, sc *sfc.Scratch) {
	h.m["q"] = sfc.ClustersInto(nil, c, r, sc) // want `stored in a map`
}

func chanSend(h *holder, c sfc.Curve, r sfc.Region, sc *sfc.Scratch) {
	h.ch <- sfc.ClustersInto(nil, c, r, sc) // want `sent on a channel`
}

func clobber(c sfc.Curve, r sfc.Region, sc *sfc.Scratch, buf []sfc.Interval) int {
	a := sfc.ClustersInto(buf[:0], c, r, sc)
	b := sfc.ClustersInto(buf[:0], c, r, sc) // want `still live`
	return len(a) + len(b)
}

func sequential(c sfc.Curve, r sfc.Region, sc *sfc.Scratch, buf []sfc.Interval) int {
	a := sfc.ClustersInto(buf[:0], c, r, sc)
	n := len(a)
	b := sfc.ClustersInto(buf[:0], c, r, sc) // a is dead here: no diagnostic
	return n + len(b)
}

func loopRecycle(c sfc.Curve, r sfc.Region, sc *sfc.Scratch, frontier []sfc.Refined, cl sfc.Cluster) []sfc.Refined {
	for i := 0; i < 3; i++ {
		frontier = sfc.RefineStepInto(frontier[:0], c, cl, r, sc)
	}
	return frontier
}

func freshNil(c sfc.Curve, r sfc.Region, sc *sfc.Scratch) int {
	a := sfc.ClustersInto(nil, c, r, sc)
	b := sfc.ClustersInto(nil, c, r, sc)
	return len(a) + len(b)
}

func allowed(h *holder, c sfc.Curve, r sfc.Region, sc *sfc.Scratch) {
	//lint:allow-scratchalias caller copies the snapshot before the next refine
	h.spans = sfc.ClustersInto(nil, c, r, sc)
}
