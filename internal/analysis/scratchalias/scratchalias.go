// Package scratchalias enforces the aliasing contract of the zero-alloc
// ...Into refinement APIs (internal/sfc/refine.go).
//
// An ...Into(dst, ..., *sfc.Scratch) call returns a slice backed by the
// caller-reused dst buffer. The sanctioned idiom recycles the destination
// through itself:
//
//	e.coarse = sfc.CoarseClustersInto(e.coarse[:0], curve, r, max, &e.scratch)
//
// Anything else that parks the returned slice in a long-lived place — a
// struct field fed from a different buffer, a map entry, a channel send —
// retains memory that the next recycle of the buffer will silently
// overwrite. Likewise, refilling the same destination buffer while a slice
// from its previous fill is still live clobbers the earlier result.
//
// Deliberate exceptions carry //lint:allow-scratchalias <reason>.
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"squid/internal/analysis"
)

// Analyzer is the scratchalias pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchalias",
	Doc:  "flags retained or clobbered slices returned by the sfc ...Into(dst, scratch) APIs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// intoRecord is one ...Into call seen in a function body, with where its
// result went.
type intoRecord struct {
	call    *ast.CallExpr
	name    string       // callee name, for messages
	dstRoot string       // printed root expression of the dst argument
	result  types.Object // local the result was bound to, if any
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var records []intoRecord

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				return true // ...Into APIs are single-valued; nothing to map
			}
			for i, rhs := range st.Rhs {
				call, name := intoCall(pass, rhs)
				if call == nil || i >= len(st.Lhs) {
					continue
				}
				records = append(records, classifyAssign(pass, st.Lhs[i], call, name))
			}
		case *ast.SendStmt:
			if call, name := intoCall(pass, st.Value); call != nil {
				pass.Reportf(call.Pos(), "slice returned by %s sent on a channel outlives the reused buffer backing it; send a copy instead", name)
			}
		case *ast.ValueSpec: // var x = FooInto(...)
			for i, v := range st.Values {
				call, name := intoCall(pass, v)
				if call == nil || i >= len(st.Names) {
					continue
				}
				records = append(records, intoRecord{
					call: call, name: name,
					dstRoot: dstRoot(pass, call),
					result:  pass.Info.Defs[st.Names[i]],
				})
			}
		}
		return true
	})

	// Second pass: the same destination buffer refilled while a slice from
	// its previous fill is still referenced. nil destinations are exempt —
	// append grows each of them a fresh backing array.
	for j := 1; j < len(records); j++ {
		rj := records[j]
		if rj.dstRoot == "" || rj.dstRoot == "nil" {
			continue
		}
		for i := 0; i < j; i++ {
			ri := records[i]
			if ri.dstRoot != rj.dstRoot || ri.result == nil {
				continue
			}
			// x = FooInto(x[:0], ...) in a loop recycles through itself:
			// the "previous result" and the buffer are the same value.
			if ri.result.Name() == ri.dstRoot {
				continue
			}
			if usedAfter(fn.Body, pass, ri.result, rj.call.End()) {
				pass.Reportf(rj.call.Pos(), "%s refills buffer %s while %s (filled from it at line %d) is still live; the earlier slice is clobbered",
					rj.name, rj.dstRoot, ri.result.Name(), pass.Fset.Position(ri.call.Pos()).Line)
				break
			}
		}
	}
}

// classifyAssign reports field/map stores of an ...Into result and returns
// the record for liveness tracking.
func classifyAssign(pass *analysis.Pass, lhs ast.Expr, call *ast.CallExpr, name string) intoRecord {
	rec := intoRecord{call: call, name: name, dstRoot: dstRoot(pass, call)}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name != "_" {
			if obj := pass.Info.Defs[l]; obj != nil {
				rec.result = obj
			} else {
				rec.result = pass.Info.Uses[l]
			}
		}
	case *ast.SelectorExpr:
		// Struct-field store: allowed only as the self-recycle idiom
		// f.buf = FooInto(f.buf[:0], ...).
		if rec.dstRoot != types.ExprString(l) {
			pass.Reportf(call.Pos(), "slice returned by %s stored in field %s without recycling it as the destination; the reused buffer backing it will be overwritten (use %s = %s(%s[:0], ...) or copy)",
				name, types.ExprString(l), types.ExprString(l), name, types.ExprString(l))
		}
	case *ast.IndexExpr:
		if tv, ok := pass.Info.Types[l.X]; ok {
			if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "slice returned by %s stored in a map outlives the reused buffer backing it; store a copy instead", name)
			}
		}
	}
	return rec
}

// intoCall returns (call, name) when e is a call to a function whose name
// ends in "Into" and whose signature takes a *sfc.Scratch.
func intoCall(pass *analysis.Pass, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return nil, ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || len(fn.Name()) < 4 || fn.Name()[len(fn.Name())-4:] != "Into" {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, ""
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isScratchPtr(sig.Params().At(i).Type()) {
			return call, fn.Name()
		}
	}
	return nil, ""
}

// isScratchPtr reports whether t is *Scratch of an sfc package.
func isScratchPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Scratch" && obj.Pkg() != nil &&
		analysis.PkgPathTail(obj.Pkg().Path()) == "sfc"
}

// dstRoot renders the destination argument of an ...Into call with slicing
// stripped: e.coarse[:0] → "e.coarse". The first argument is the
// destination by the API's convention.
func dstRoot(pass *analysis.Pass, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	e := ast.Unparen(call.Args[0])
	for {
		sl, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = ast.Unparen(sl.X)
	}
	return types.ExprString(e)
}

// usedAfter reports whether obj is referenced anywhere in body after pos.
func usedAfter(body *ast.BlockStmt, pass *analysis.Pass, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && id.Pos() > pos && pass.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
