package scratchalias_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/scratchalias"
)

func TestScratchAlias(t *testing.T) {
	analysistest.Run(t, "testdata", scratchalias.Analyzer, "scratchalias")
}
