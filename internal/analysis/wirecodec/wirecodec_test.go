package wirecodec_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/wirecodec"
)

func TestWireCodec(t *testing.T) {
	analysistest.Run(t, "testdata", wirecodec.Analyzer, "wirecodec", "gobonly")
}
