// Package wirecodec keeps the binary wire codec's coverage in lockstep
// with the gob message registry.
//
// A message type reaches the network through transport.Register (gob,
// the compatibility oracle). On negotiated binary connections, types
// without a wire.Register codec silently ride the per-frame gob fallback
// — correct, but with exactly the per-message overhead the binary format
// exists to remove, and invisible except as a drifting
// squid_transport_tcp_frames_total{codec="gob_fallback"} counter. The
// hot-path bug class this analyzer removes: a new RPC message lands with
// only transport.Register, benchmarks quietly regress, nothing fails.
//
// Rule: in any package that registers at least one binary codec (one
// wire.Register call — i.e. the package has opted into the binary
// protocol), every type passed to transport.Register must also be passed
// to wire.Register in that package. Registering the codec automatically
// drafts the type into the gob↔binary equivalence suite, whose generator
// table fails on uncovered codecs — so codec and equivalence test travel
// together.
//
// Deliberate gob-only messages (a type whose codec lives in the package
// that declares it, or a genuinely cold-path message) are excused with
//
//	//lint:allow-wirecodec <reason>
//
// on the transport.Register line or the line above. Packages with no
// wire.Register at all (the gnutella/invindex baselines) are out of
// scope: they never negotiate the binary codec.
package wirecodec

import (
	"go/ast"
	"go/types"

	"squid/internal/analysis"
)

// Analyzer is the wirecodec pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirecodec",
	Doc:  "types gob-registered for the wire in a binary-codec package must also have a wire.Register codec",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	var codecs []types.Type // prototypes handed to wire.Register here
	type gobReg struct {
		call *ast.CallExpr
		typ  types.Type
	}
	var gobs []gobReg

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch registerPkg(pass, call) {
			case "wire":
				if len(call.Args) >= 2 {
					if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Type != nil {
						codecs = append(codecs, tv.Type)
					}
				}
			case "transport":
				if len(call.Args) == 1 {
					if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Type != nil {
						gobs = append(gobs, gobReg{call: call, typ: tv.Type})
					}
				}
			}
			return true
		})
	}

	// No binary codecs here: the package has not opted into the binary
	// protocol and plain gob is its wire format.
	if len(codecs) == 0 {
		return nil
	}

	for _, g := range gobs {
		if hasCodec(codecs, g.typ) {
			continue
		}
		pass.Reportf(g.call.Pos(),
			"%s is gob-registered but has no binary codec in this package; wire.Register one (the equivalence suite will then cover it) or excuse the gob fallback with //lint:allow-wirecodec <reason>",
			types.TypeString(g.typ, func(p *types.Package) string { return p.Name() }))
	}
	return nil
}

// hasCodec reports whether t is identical to any registered prototype.
func hasCodec(codecs []types.Type, t types.Type) bool {
	for _, c := range codecs {
		if types.Identical(c, t) {
			return true
		}
	}
	return false
}

// registerPkg returns "wire" or "transport" when call is wire.Register /
// transport.Register (matched by package-path tail, so fixtures bind the
// same rule), and "" otherwise.
func registerPkg(pass *analysis.Pass, call *ast.CallExpr) string {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil {
		return ""
	}
	switch tail := analysis.PkgPathTail(fn.Pkg().Path()); tail {
	case "wire", "transport":
		return tail
	}
	return ""
}
