// Fixture: a package that has opted into the binary wire protocol (it
// registers codecs) must give every gob-registered message a codec too.
package wirecodec

import (
	"squid/internal/transport"
	"squid/internal/wire"
)

type covered struct{ N uint64 }

type uncovered struct{ S string }

type foreignCodec struct{ B bool }

type aliasCovered = covered

func init() {
	transport.Register(covered{})
	transport.Register(uncovered{}) // want `no binary codec`
	//lint:allow-wirecodec codec registered next to the type's declaring package
	transport.Register(foreignCodec{})
	transport.Register([]covered{}) // want `no binary codec`
	transport.Register(aliasCovered{})

	wire.Register(30_001, covered{},
		func(e *wire.Encoder, v any) { e.Uvarint(v.(covered).N) },
		func(d *wire.Decoder) any { return covered{N: d.Uvarint()} })
}
