// Fixture: a package with no wire.Register calls has not opted into the
// binary protocol — plain gob is its wire format and nothing is flagged.
package gobonly

import "squid/internal/transport"

type baselineMsg struct{ S string }

func init() {
	transport.Register(baselineMsg{})
}
