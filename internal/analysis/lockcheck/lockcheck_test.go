package lockcheck_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "locks")
}
