// Package locks is a lock-discipline fixture shaped like squid's Store,
// scheduler and wire registry: RWMutex-guarded fields, Locked-suffix
// helpers, branchy lock/unlock flows and goroutine escapes.
package locks

import "sync"

type Store struct {
	mu     sync.RWMutex
	byKey  map[uint64]int //lint:guarded-by mu
	sorted []uint64       //lint:guarded-by mu
}

func (s *Store) Add(k uint64, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(k, v)
}

// addLocked follows the Locked-suffix convention: the caller holds mu.
func (s *Store) addLocked(k uint64, v int) {
	s.byKey[k] = v
	s.sorted = append(s.sorted, k)
}

func (s *Store) BadCall(k uint64) {
	s.addLocked(k, 1) // want `call to addLocked requires holding s\.mu`
}

func (s *Store) Bad(k uint64) int {
	return s.byKey[k] // want `read byKey without holding mu`
}

func (s *Store) ReadOK(k uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byKey[k]
}

func (s *Store) WriteUnderRLock(k uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.byKey[k] = 1 // want `write to byKey \(guarded by mu\) holding only the read lock`
}

// BranchRelease mirrors transport.connTo: a branch unlocks and leaves,
// the fallthrough path still holds the lock.
func (s *Store) BranchRelease(k uint64) int {
	s.mu.Lock()
	if k == 0 {
		s.mu.Unlock()
		return 0
	}
	v := s.byKey[k]
	s.mu.Unlock()
	return v
}

// MergeLoss unlocks on only one path: the access after the join cannot
// rely on the lock.
func (s *Store) MergeLoss(k uint64, cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	}
	s.byKey[k] = 2 // want `write to byKey without holding mu`
}

func (s *Store) Del(k uint64) {
	s.mu.Lock()
	delete(s.byKey, k)
	s.mu.Unlock()
}

// Escape is the lock-then-go-closure bug: the goroutine body runs after
// the launch site releases mu.
func (s *Store) Escape() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.sorted = nil // want `write to sorted without holding mu`
	}()
}

func (s *Store) Init() {
	//lint:allow-lockcheck constructor runs before the store is shared
	s.byKey = map[uint64]int{}
}

// conn exercises the //lint:holds <param>.<mutex> contract.
type conn struct {
	mu  sync.Mutex
	buf []byte //lint:guarded-by mu
}

// flush requires the caller to hold c.mu.
//
//lint:holds c.mu
func flush(c *conn) {
	c.buf = c.buf[:0]
}

func useFlush(c *conn) {
	c.mu.Lock()
	flush(c)
	c.mu.Unlock()
	flush(c) // want `call to flush requires holding c\.mu`
}

// Package-level variables guarded by a package-level mutex, as in the
// wire codec registry.
var regMu sync.RWMutex

//lint:guarded-by regMu
var registry = map[string]int{}

func Register(k string) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[k] = 1
}

func Lookup(k string) int {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[k]
}

func BadLookup(k string) int {
	return registry[k] // want `read registry without holding regMu`
}
