// Package lockcheck enforces lock discipline: a field annotated
//
//	//lint:guarded-by <mutex>
//
// may only be accessed while the named mutex is held on every path to
// the access. The mutex is a sibling field of the same struct (the
// `mu sync.Mutex` convention) or, for package-level variables, a
// package-level mutex. Reads are satisfied by RLock or Lock; writes —
// assignment, ++/--, delete, taking the address — require the write
// lock.
//
// Lock state is tracked path-sensitively through the statement tree: a
// branch that ends in return/break/continue/panic discards its lock
// effects for the code after the branch, and states merging at a join
// keep only the locks held on every incoming path. Function literals
// inherit the state at their definition point — except literals launched
// with `go`, deferred, or handed to the time package, which start with
// nothing held: that is precisely the lock-then-go-closure escape this
// analyzer exists to flag.
//
// Two conventions declare that a function runs with a lock already held:
// a method whose name ends in "Locked" (on a type with guarded fields)
// is assumed to hold that type's guarding mutexes, and any function may
// say so explicitly with //lint:holds <param>.<mutex> (or
// //lint:holds <mutex> for a package-level mutex). Call sites of such
// functions are checked to actually hold the mutex.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"squid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated //lint:guarded-by <mutex> may only be accessed with the " +
		"mutex held on every path; goroutines launched under the lock start bare",
	Run: run,
}

// lockID names one mutex at a use site: a struct-field mutex is (base
// variable, field name); a package-level mutex is (its object, "").
type lockID struct {
	base  types.Object
	field string
}

// mode is the strength a lock is held with.
type mode int

const (
	modeR mode = 1 // read lock (RLock)
	modeW mode = 2 // write lock (Lock)
)

// lockState maps held mutexes to their strength.
type lockState map[lockID]mode

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge keeps only locks held on both paths, at the weaker strength.
func merge(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				v = w
			}
			out[k] = v
		}
	}
	return out
}

// guard describes how one variable is protected.
type guard struct {
	// field is the sibling mutex field name; "" when mu guards a
	// package-level variable directly.
	field string
	// mu is the package-level mutex object for package-level guards.
	mu types.Object
}

// holdsSpec is one entry-state assumption of a function: the mutex named
// by //lint:holds (or the Locked-suffix convention) on a receiver or
// parameter object.
type holdsSpec struct {
	obj   types.Object // receiver/parameter assumed locked; nil for package-level
	mu    types.Object // package-level mutex (obj == nil)
	field string
}

type checker struct {
	pass    *analysis.Pass
	g       *analysis.CallGraph
	guarded map[*types.Var]guard        // struct fields
	pkgVars map[*types.Var]guard        // package-level variables
	assumes map[*types.Func][]holdsSpec // callee entry-state contracts
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		guarded: make(map[*types.Var]guard),
		pkgVars: make(map[*types.Var]guard),
		assumes: make(map[*types.Func][]holdsSpec),
	}
	c.collectGuards()
	if len(c.guarded) == 0 && len(c.pkgVars) == 0 {
		return nil
	}
	c.g = analysis.BuildCallGraph(pass)
	c.collectAssumes()

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := make(lockState)
			if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil {
				for _, h := range c.assumes[obj] {
					if h.obj != nil {
						st[lockID{h.obj, h.field}] = modeW
					} else if h.mu != nil {
						st[lockID{h.mu, ""}] = modeW
					}
				}
			}
			c.stmts(fd.Body.List, st)
		}
	}
	return nil
}

// collectGuards resolves every //lint:guarded-by annotation.
func (c *checker) collectGuards() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					st, ok := s.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						muName, ok := analysis.HasDirective("guarded-by", field.Doc, field.Comment)
						if !ok || muName == "" {
							continue
						}
						for _, name := range field.Names {
							if v, ok := c.pass.Info.Defs[name].(*types.Var); ok {
								c.guarded[v] = guard{field: muName}
							}
						}
					}
				case *ast.ValueSpec:
					muName, ok := analysis.HasDirective("guarded-by", gd.Doc, s.Doc, s.Comment)
					if !ok || muName == "" {
						continue
					}
					mu := c.pass.Pkg.Scope().Lookup(muName)
					if mu == nil {
						continue
					}
					for _, name := range s.Names {
						if v, ok := c.pass.Info.Defs[name].(*types.Var); ok {
							c.pkgVars[v] = guard{mu: mu}
						}
					}
				}
			}
		}
	}
}

// collectAssumes records per-function entry-state contracts from the
// Locked-suffix convention and //lint:holds directives.
func (c *checker) collectAssumes() {
	// Which mutex fields guard something, per struct type.
	guardFields := make(map[*types.Named]map[string]bool)
	for v, g := range c.guarded {
		if named := namedOwner(v); named != nil {
			if guardFields[named] == nil {
				guardFields[named] = make(map[string]bool)
			}
			guardFields[named][g.field] = true
		}
	}
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := c.pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			// //lint:holds x.mu (or a package-level mutex name).
			for _, d := range analysis.GroupDirectives(fd.Doc) {
				if d.Name != "holds" || d.Args == "" {
					continue
				}
				varName, muName, cut := strings.Cut(d.Args, ".")
				if !cut {
					if mu := c.pass.Pkg.Scope().Lookup(varName); mu != nil {
						c.assumes[obj] = append(c.assumes[obj], holdsSpec{mu: mu})
					}
					continue
				}
				if po := paramObj(c.pass, fd, varName); po != nil {
					c.assumes[obj] = append(c.assumes[obj], holdsSpec{obj: po, field: muName})
				}
			}
			// Locked-suffix methods assume their receiver type's guards.
			if fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
				recv := obj.Type().(*types.Signature).Recv()
				if recv == nil {
					continue
				}
				named := namedOf(recv.Type())
				if named == nil {
					continue
				}
				var recvObj types.Object
				if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					recvObj = c.pass.Info.Defs[fd.Recv.List[0].Names[0]]
				}
				if recvObj == nil {
					continue
				}
				for f := range guardFields[named] {
					c.assumes[obj] = append(c.assumes[obj], holdsSpec{obj: recvObj, field: f})
				}
			}
		}
	}
}

// namedOwner returns the named struct type declaring field v, or nil.
func namedOwner(v *types.Var) *types.Named {
	// The loader records field definitions; walk the package scope for
	// the named type whose struct contains v.
	if v.Pkg() == nil {
		return nil
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return named
			}
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// paramObj resolves a receiver or parameter name of fd to its object.
func paramObj(pass *analysis.Pass, fd *ast.FuncDecl, name string) types.Object {
	lists := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if n.Name == name {
					return pass.Info.Defs[n]
				}
			}
		}
	}
	return nil
}

// ---- statement walk ----------------------------------------------------

// stmts threads lock state through a statement list, returning the exit
// state. A statement that cannot complete normally stops the walk's
// state accumulation (its successors are unreachable only for state
// purposes — they are still checked with the pre-statement state).
func (c *checker) stmts(list []ast.Stmt, st lockState) lockState {
	for _, s := range list {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			// Unreachable tail: keep checking with the last state so
			// accesses after an early return are not silently skipped.
			_ = st
		}
	}
	return st
}

// stmt checks one statement and returns the state after it plus whether
// it terminates the enclosing block (return/branch/panic).
func (c *checker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		if id, m, ok := c.lockOp(n.X); ok {
			if m == 0 {
				delete(st, id)
			} else {
				st[id] = m
			}
			return st, false
		}
		c.expr(n.X, st, false)
		if call, ok := n.X.(*ast.CallExpr); ok && isPanic(c.pass, call) {
			return st, true
		}
		return st, false
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			c.expr(r, st, false)
		}
		for _, l := range n.Lhs {
			c.writeTarget(l, st)
		}
		return st, false
	case *ast.IncDecStmt:
		c.writeTarget(n.X, st)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st, false)
					}
				}
			}
		}
		return st, false
	case *ast.DeferStmt:
		// defer x.mu.Unlock() releases at exit: the lock stays held for
		// the rest of the body, so it does not change the state here.
		if _, _, ok := c.lockOp(n.Call); ok {
			return st, false
		}
		c.deferOrGoCall(n.Call, st, false)
		return st, false
	case *ast.GoStmt:
		c.deferOrGoCall(n.Call, st, true)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.expr(r, st, false)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.BlockStmt:
		return c.stmts(n.List, st.clone()), false
	case *ast.IfStmt:
		if n.Init != nil {
			st, _ = c.stmt(n.Init, st)
		}
		c.expr(n.Cond, st, false)
		thenSt := c.stmts(n.Body.List, st.clone())
		thenTerm := terminates(n.Body)
		elseSt := st
		elseTerm := false
		if n.Else != nil {
			var es ast.Stmt = n.Else
			elseSt, elseTerm = c.stmt(es, st.clone())
			if b, ok := es.(*ast.BlockStmt); ok {
				elseTerm = terminates(b)
			}
		}
		switch {
		case thenTerm && elseTerm:
			return st, n.Else != nil
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return merge(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if n.Init != nil {
			st, _ = c.stmt(n.Init, st)
		}
		if n.Cond != nil {
			c.expr(n.Cond, st, false)
		}
		bodySt := c.stmts(n.Body.List, st.clone())
		if n.Post != nil {
			bodySt, _ = c.stmt(n.Post, bodySt)
		}
		// After the loop: held only if held both when skipping the body
		// and after an iteration (conservative; break paths ignored).
		return merge(st, bodySt), false
	case *ast.RangeStmt:
		c.expr(n.X, st, false)
		bodySt := c.stmts(n.Body.List, st.clone())
		return merge(st, bodySt), false
	case *ast.SwitchStmt:
		if n.Init != nil {
			st, _ = c.stmt(n.Init, st)
		}
		if n.Tag != nil {
			c.expr(n.Tag, st, false)
		}
		return c.clauses(n.Body, st), false
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			st, _ = c.stmt(n.Init, st)
		}
		c.stmt(n.Assign, st)
		return c.clauses(n.Body, st), false
	case *ast.SelectStmt:
		return c.clauses(n.Body, st), false
	case *ast.LabeledStmt:
		return c.stmt(n.Stmt, st)
	case *ast.SendStmt:
		c.expr(n.Chan, st, false)
		c.expr(n.Value, st, false)
		return st, false
	}
	return st, false
}

// clauses merges the exits of switch/select clauses: a lock is held
// after the statement only if every non-terminating clause holds it.
func (c *checker) clauses(body *ast.BlockStmt, st lockState) lockState {
	var exits []lockState
	hasDefault := false
	for _, cl := range body.List {
		var list []ast.Stmt
		switch n := cl.(type) {
		case *ast.CaseClause:
			for _, e := range n.List {
				c.expr(e, st, false)
			}
			if n.List == nil {
				hasDefault = true
			}
			list = n.Body
		case *ast.CommClause:
			if n.Comm != nil {
				c.stmt(n.Comm, st.clone())
			} else {
				hasDefault = true
			}
			list = n.Body
		}
		ex := c.stmts(list, st.clone())
		if !terminatesList(list) {
			exits = append(exits, ex)
		}
	}
	if !hasDefault {
		exits = append(exits, st)
	}
	if len(exits) == 0 {
		return st
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = merge(out, e)
	}
	return out
}

// terminates reports whether a block always leaves the enclosing scope.
func terminates(b *ast.BlockStmt) bool {
	return terminatesList(b.List)
}

func terminatesList(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch n := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(n)
	case *ast.IfStmt:
		if n.Else == nil {
			return false
		}
		elseTerm := false
		switch e := n.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e)
		case *ast.IfStmt:
			elseTerm = terminatesList([]ast.Stmt{e})
		}
		return terminates(n.Body) && elseTerm
	}
	return false
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// ---- expression checking ----------------------------------------------

// lockOp recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() (and the
// package-level regMu.Lock() form), returning the lock and the mode it
// enters (0 for unlock).
func (c *checker) lockOp(e ast.Expr) (lockID, mode, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return lockID{}, 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, 0, false
	}
	m := sel.Sel.Name
	var enter mode
	switch m {
	case "Lock":
		enter = modeW
	case "RLock":
		enter = modeR
	case "Unlock", "RUnlock":
		enter = 0
	default:
		return lockID{}, 0, false
	}
	// The method must come from package sync (Mutex/RWMutex).
	if f, ok := c.pass.Info.Uses[sel.Sel].(*types.Func); !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return lockID{}, 0, false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr: // base.mu.Lock()
		base, ok := identObj(c.pass, x.X)
		if !ok {
			return lockID{}, 0, false
		}
		return lockID{base, x.Sel.Name}, enter, true
	case *ast.Ident: // pkgMu.Lock()
		obj := c.pass.Info.Uses[x]
		if obj == nil {
			return lockID{}, 0, false
		}
		return lockID{obj, ""}, enter, true
	}
	return lockID{}, 0, false
}

// identObj unwraps parens/derefs and returns the object of a plain
// identifier base expression.
func identObj(pass *analysis.Pass, e ast.Expr) (types.Object, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			return obj, obj != nil
		default:
			return nil, false
		}
	}
}

// expr walks an expression, checking guarded accesses (as reads unless
// write is set on the immediate target) and recursing into literals.
func (c *checker) expr(e ast.Expr, st lockState, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			c.funcLit(n, st)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				c.writeTarget(n.X, st)
				return false
			}
		case *ast.CallExpr:
			c.checkCall(n, st)
			// delete(x.f, k) mutates the map.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					c.writeTarget(n.Args[0], st)
					for _, a := range n.Args[1:] {
						c.expr(a, st, false)
					}
					return false
				}
			}
		case *ast.SelectorExpr:
			c.access(n, st, write)
			c.expr(n.X, st, false)
			return false
		case *ast.Ident:
			c.identAccess(n, st, write)
		}
		write = false // only the outermost expression is the write target
		return true
	})
}

// writeTarget checks the written-to expression (LHS, ++/--, &x, delete).
func (c *checker) writeTarget(e ast.Expr, st lockState) {
	switch n := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		c.access(n, st, true)
		c.expr(n.X, st, false)
	case *ast.IndexExpr: // s.f[i] = v writes through s.f
		c.writeTarget(n.X, st)
		c.expr(n.Index, st, false)
	case *ast.StarExpr:
		c.expr(n.X, st, false)
	case *ast.Ident:
		c.identAccess(n, st, true)
	default:
		c.expr(e, st, false)
	}
}

// access checks one guarded-field selector against the lock state.
func (c *checker) access(sel *ast.SelectorExpr, st lockState, write bool) {
	v, ok := c.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	g, ok := c.guarded[v]
	if !ok {
		return
	}
	base, ok := identObj(c.pass, sel.X)
	if !ok {
		// A chained base (a.b.f) cannot be matched to a lock acquisition
		// conservatively; report so the code is restructured or allowed.
		c.report(sel.Sel.Pos(), v.Name(), g.field, write, "through a chained base expression")
		return
	}
	c.require(sel.Sel.Pos(), lockID{base, g.field}, st, v.Name(), g.field, write)
}

// identAccess checks guarded package-level variables.
func (c *checker) identAccess(id *ast.Ident, st lockState, write bool) {
	v, ok := c.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	g, ok := c.pkgVars[v]
	if !ok {
		return
	}
	c.require(id.Pos(), lockID{g.mu, ""}, st, v.Name(), g.mu.Name(), write)
}

func (c *checker) require(pos token.Pos, id lockID, st lockState, field, mu string, write bool) {
	held := st[id]
	if write && held < modeW {
		if held == modeR {
			c.report(pos, field, mu, true, "holding only the read lock")
		} else {
			c.report(pos, field, mu, true, "")
		}
		return
	}
	if !write && held == 0 {
		c.report(pos, field, mu, false, "")
	}
}

func (c *checker) report(pos token.Pos, field, mu string, write bool, detail string) {
	op := "read"
	if write {
		op = "write to"
	}
	if detail != "" {
		c.pass.Reportf(pos, "%s %s (guarded by %s) %s", op, field, mu, detail)
		return
	}
	c.pass.Reportf(pos, "%s %s without holding %s (//lint:guarded-by)", op, field, mu)
}

// checkCall enforces the entry-state contract of Locked-suffix methods
// and //lint:holds functions at their call sites.
func (c *checker) checkCall(call *ast.CallExpr, st lockState) {
	callee := analysis.CalleeOf(c.pass.Info, call)
	if callee == nil {
		return
	}
	specs := c.assumes[callee]
	if len(specs) == 0 {
		return
	}
	// Map the callee's receiver/params to the caller's argument bases.
	var fd *ast.FuncDecl
	if n := c.g.NodeOf(callee); n != nil {
		fd = n.Decl
	}
	if fd == nil {
		return
	}
	for _, spec := range specs {
		if spec.obj == nil { // package-level mutex
			if st[lockID{spec.mu, ""}] == 0 {
				c.pass.Reportf(call.Pos(), "call to %s requires holding %s", callee.Name(), spec.mu.Name())
			}
			continue
		}
		argBase, ok := c.argFor(call, fd, spec.obj)
		if !ok {
			continue
		}
		if st[lockID{argBase, spec.field}] == 0 {
			c.pass.Reportf(call.Pos(), "call to %s requires holding %s.%s", callee.Name(), nameOf(argBase), spec.field)
		}
	}
}

// argFor maps a callee receiver/param object to the caller-side base
// object at this call site.
func (c *checker) argFor(call *ast.CallExpr, fd *ast.FuncDecl, obj types.Object) (types.Object, bool) {
	// Receiver: base of the selector the method is called through.
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 &&
		c.pass.Info.Defs[fd.Recv.List[0].Names[0]] == obj {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return identObj(c.pass, sel.X)
		}
		return nil, false
	}
	// Positional parameter.
	i := 0
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			if c.pass.Info.Defs[n] == obj {
				if i < len(call.Args) {
					return identObj(c.pass, call.Args[i])
				}
				return nil, false
			}
			i++
		}
	}
	return nil, false
}

func nameOf(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	return obj.Name()
}

// deferOrGoCall handles `defer f(...)` / `go f(...)`: arguments are
// evaluated now (current state); a literal body runs later — deferred
// literals and goroutine bodies start with no locks held, which is how
// the lock-then-go-closure escape surfaces.
func (c *checker) deferOrGoCall(call *ast.CallExpr, st lockState, isGo bool) {
	for _, a := range call.Args {
		c.expr(a, st, false)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.stmts(lit.Body.List, make(lockState))
		return
	}
	c.expr(call.Fun, st, false)
	if !isGo {
		c.checkCall(call, st)
	}
}

// funcLit checks a literal in expression position: it inherits the lock
// state at its definition point unless the call graph says it escapes
// the goroutine (go launch, defer, timer callback) — those start bare.
func (c *checker) funcLit(lit *ast.FuncLit, st lockState) {
	inherit := st.clone()
	if n := c.g.LitNode(lit); n != nil {
		if n.LaunchedByGo || n.Deferred {
			inherit = make(lockState)
		} else {
			for _, f := range n.PassedTo {
				if f.Pkg() != nil && f.Pkg().Path() == "time" {
					inherit = make(lockState)
					break
				}
			}
		}
	}
	c.stmts(lit.Body.List, inherit)
}
