package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the call-graph layer the goroutine-confinement, lock-
// discipline and alloc-free analyzers share. It turns one type-checked
// package into a static call graph: a node per declared function and per
// function literal, an edge per call site, with `go` launches, deferred
// calls, interface dispatch (expanded over the package-local method set)
// and the lexical nesting of literals all represented explicitly. On top
// of the graph, Reachable answers the transitive queries the analyzers
// ask ("which functions run on the delivery goroutine?", "which
// functions sit on an alloc-free hot path?").

// CallKind classifies a call-graph edge.
type CallKind int

const (
	// KindCall is an ordinary (or deferred — see CallEdge.Deferred)
	// function or method call executing on the caller's goroutine.
	KindCall CallKind = iota
	// KindGo is a `go` statement: the callee starts a new goroutine.
	KindGo
	// KindDynamic is an interface-method call resolved to a package-local
	// concrete implementation via the method set.
	KindDynamic
	// KindLexical links a function to a literal nested inside it. It is
	// not a call — it says the literal's body was created (and captures
	// variables) in the parent's context.
	KindLexical
)

// FuncNode is one function in the graph: either a declared function
// (Decl/Obj set) or a function literal (Lit set, Parent the lexically
// enclosing node).
type FuncNode struct {
	Obj    *types.Func   // nil for literals
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declared functions
	Parent *FuncNode     // enclosing function, literals only

	Out []*CallEdge // edges where this node is the caller
	In  []*CallEdge // edges where this node is the callee

	// LaunchedByGo marks a literal that is the operand of a `go`
	// statement (directly, or through a local variable binding).
	LaunchedByGo bool
	// Deferred marks a literal that is the operand of a `defer`
	// statement: it runs on the same goroutine, but at an unknown
	// program point (function exit).
	Deferred bool
	// PassedTo lists every resolved function this literal is passed to
	// as an argument. Analyzers use it to classify escape routes: a
	// literal handed to chord's Invoke re-enters the delivery goroutine,
	// one handed to time.AfterFunc runs on the runtime timer goroutine.
	PassedTo []*types.Func
}

// Name renders a node for diagnostics: "Engine.Deliver", or
// "function literal in Engine.watchCtx" for literals.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		if recv := n.Obj.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + n.Obj.Name()
			}
		}
		return n.Obj.Name()
	}
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Obj != nil {
			return "function literal in " + p.Name()
		}
	}
	return "function literal"
}

// body returns the node's body block (nil for bodyless declarations).
func (n *FuncNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// CallEdge is one call site (or lexical-nesting link).
type CallEdge struct {
	Caller *FuncNode
	// Callee is the target when it lives in the analyzed package
	// (declared function or literal); nil for calls out of the package.
	Callee *FuncNode
	// Target is the resolved callee object, set for every call to a
	// declared function — including out-of-package ones. Nil for direct
	// literal calls and lexical links.
	Target *types.Func
	// Site is the syntax that created the edge: *ast.CallExpr for calls,
	// *ast.GoStmt / *ast.DeferStmt wrappers for launches, *ast.FuncLit
	// for lexical links.
	Site ast.Node
	Kind CallKind
	// Deferred marks KindCall edges created by a defer statement.
	Deferred bool
}

// CallGraph is the static call graph of one package.
type CallGraph struct {
	pass  *Pass
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeOf returns the graph node for a declared function, or nil.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// LitNode returns the graph node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// Enclosing returns the innermost function whose body contains pos, or
// nil for positions outside any function (package-level declarations).
func (g *CallGraph) Enclosing(pos token.Pos) *FuncNode {
	var best *FuncNode
	var bestSpan token.Pos
	for _, n := range g.Nodes {
		body := n.body()
		if body == nil || pos < body.Pos() || pos > body.End() {
			continue
		}
		span := body.End() - body.Pos()
		if best == nil || span < bestSpan {
			best, bestSpan = n, span
		}
	}
	return best
}

// Reachable returns the set of nodes reachable from roots over edges
// admitted by follow (nil follows every edge), roots included.
func (g *CallGraph) Reachable(roots []*FuncNode, follow func(*CallEdge) bool) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	stack := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if e.Callee == nil || seen[e.Callee] {
				continue
			}
			if follow != nil && !follow(e) {
				continue
			}
			seen[e.Callee] = true
			stack = append(stack, e.Callee)
		}
	}
	return seen
}

// BuildCallGraph constructs the call graph for the pass's package.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		pass:  pass,
		byObj: make(map[*types.Func]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
	}
	// Phase 1: a node per declared function, so calls resolve regardless
	// of declaration order.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			n := &FuncNode{Obj: obj, Decl: fd}
			g.Nodes = append(g.Nodes, n)
			if obj != nil {
				g.byObj[obj] = n
			}
		}
	}
	// Phase 2: walk bodies, creating literal nodes and edges.
	b := &graphBuilder{g: g, pass: pass, bindings: make(map[types.Object][]*FuncNode)}
	for _, n := range append([]*FuncNode(nil), g.Nodes...) {
		if n.Decl != nil && n.Decl.Body != nil {
			b.walkBody(n, n.Decl.Body)
		}
	}
	return g
}

// graphBuilder carries the state of phase 2. bindings maps local
// variables to the literals assigned to them, so `step := func(...)`
// followed by `step(x)` (and the recursive `step = func(...)` form)
// produce real edges.
type graphBuilder struct {
	g        *CallGraph
	pass     *Pass
	bindings map[types.Object][]*FuncNode
}

func (b *graphBuilder) walkBody(ctx *FuncNode, body *ast.BlockStmt) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			b.lit(ctx, n)
			return false // lit walks its own body
		case *ast.GoStmt:
			b.call(ctx, n.Call, KindGo, n, false)
			return false
		case *ast.DeferStmt:
			b.call(ctx, n.Call, KindCall, n, true)
			return false
		case *ast.CallExpr:
			b.call(ctx, n, KindCall, n, false)
			return false
		case *ast.AssignStmt:
			b.bindStmt(ctx, n.Lhs, n.Rhs)
			return false
		case *ast.ValueSpec:
			idents := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				idents[i] = id
			}
			b.bindStmt(ctx, idents, n.Values)
			return false
		}
		return true
	})
}

// lit creates the node and lexical edge for a literal and walks its body
// in its own context.
func (b *graphBuilder) lit(ctx *FuncNode, l *ast.FuncLit) *FuncNode {
	if n := b.g.byLit[l]; n != nil {
		return n
	}
	n := &FuncNode{Lit: l, Parent: ctx}
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.byLit[l] = n
	b.edge(&CallEdge{Caller: ctx, Callee: n, Site: l, Kind: KindLexical})
	b.walkBody(n, l.Body)
	return n
}

// bindStmt records `f := func(...)` / `f = func(...)` / `var f = func(...)`
// bindings and walks the non-literal parts of the statement.
func (b *graphBuilder) bindStmt(ctx *FuncNode, lhs, rhs []ast.Expr) {
	for i, r := range rhs {
		if l, ok := r.(*ast.FuncLit); ok && i < len(lhs) {
			if id, ok := lhs[i].(*ast.Ident); ok {
				obj := b.pass.Info.Defs[id]
				if obj == nil {
					obj = b.pass.Info.Uses[id]
				}
				// Bind before walking the body so `step = func(...)`
				// can call itself recursively through the binding.
				n := &FuncNode{Lit: l, Parent: ctx}
				b.g.Nodes = append(b.g.Nodes, n)
				b.g.byLit[l] = n
				if obj != nil {
					b.bindings[obj] = append(b.bindings[obj], n)
				}
				b.edge(&CallEdge{Caller: ctx, Callee: n, Site: l, Kind: KindLexical})
				b.walkBody(n, l.Body)
				continue
			}
		}
		b.walkExpr(ctx, r)
	}
	for _, l := range lhs {
		b.walkExpr(ctx, l)
	}
}

// walkExpr resumes the normal walk for a subexpression.
func (b *graphBuilder) walkExpr(ctx *FuncNode, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			b.lit(ctx, n)
			return false
		case *ast.CallExpr:
			b.call(ctx, n, KindCall, n, false)
			return false
		}
		return true
	})
}

// call resolves one call site and adds its edges, then walks Fun and the
// arguments (recording PassedTo for literal arguments).
func (b *graphBuilder) call(ctx *FuncNode, call *ast.CallExpr, kind CallKind, site ast.Node, deferred bool) {
	info := b.pass.Info
	fun := ast.Unparen(call.Fun)

	var target *types.Func
	switch f := fun.(type) {
	case *ast.FuncLit:
		n := b.lit(ctx, f)
		b.edge(&CallEdge{Caller: ctx, Callee: n, Site: site, Kind: kind, Deferred: deferred})
		if kind == KindGo {
			n.LaunchedByGo = true
		}
		if deferred {
			n.Deferred = true
		}
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			target = obj
		case *types.Var:
			for _, n := range b.bindings[obj] {
				b.edge(&CallEdge{Caller: ctx, Callee: n, Site: site, Kind: kind, Deferred: deferred})
				if kind == KindGo {
					n.LaunchedByGo = true
				}
				if deferred {
					n.Deferred = true
				}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if m, ok := sel.Obj().(*types.Func); ok {
				target = m
				if types.IsInterface(sel.Recv()) {
					b.dynamicEdges(ctx, m, sel.Recv(), site, kind, deferred)
				}
			}
		} else if m, ok := info.Uses[f.Sel].(*types.Func); ok {
			target = m // package-qualified call
		}
		b.walkExpr(ctx, f.X)
	}
	if target != nil {
		b.edge(&CallEdge{Caller: ctx, Callee: b.g.byObj[target], Target: target, Site: site, Kind: kind, Deferred: deferred})
		if callee := b.g.byObj[target]; callee != nil {
			if kind == KindGo {
				callee.LaunchedByGo = true
			}
		}
	}
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		if l, ok := arg.(*ast.FuncLit); ok {
			n := b.lit(ctx, l)
			if target != nil {
				n.PassedTo = append(n.PassedTo, target)
			}
			continue
		}
		// A bound literal handed onward by name inherits the escape route.
		if id, ok := arg.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok {
				for _, n := range b.bindings[obj] {
					if target != nil {
						n.PassedTo = append(n.PassedTo, target)
					}
				}
			}
		}
		b.walkExpr(ctx, arg)
	}
}

// dynamicEdges expands an interface-method call over the package-local
// method set: every named type in the package implementing the interface
// contributes a KindDynamic edge to its implementation of the method.
func (b *graphBuilder) dynamicEdges(ctx *FuncNode, m *types.Func, recv types.Type, site ast.Node, kind CallKind, deferred bool) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	scope := b.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		var impl types.Type
		if types.Implements(named, iface) {
			impl = named
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			impl = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if callee := b.g.byObj[fn]; callee != nil {
			k := kind
			if k == KindCall {
				k = KindDynamic
			}
			b.edge(&CallEdge{Caller: ctx, Callee: callee, Target: fn, Site: site, Kind: k, Deferred: deferred})
		}
	}
}

func (b *graphBuilder) edge(e *CallEdge) {
	if e.Caller != nil {
		e.Caller.Out = append(e.Caller.Out, e)
	}
	if e.Callee != nil {
		e.Callee.In = append(e.Callee.In, e)
	}
}

// CalleeOf resolves a call expression to the declared function or method
// it statically invokes, or nil for dynamic calls. Shared by analyzers
// that classify individual call sites without building a full graph.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Directive is one //lint:<name> <args> annotation. The vocabulary:
//
//	//lint:confine <label>     confine a type's (or field's) mutable state
//	//lint:entry <label>       a goroutine entrypoint for that label
//	//lint:guarded-by <mutex>  field may only be touched holding the mutex
//	//lint:holds <var>.<mutex> function is called with the mutex held
//	//lint:allocfree           function must not allocate on any path
//	//lint:allow-<analyzer> <reason>  suppress one finding (see Reportf)
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

// parseDirective parses one comment as a //lint: directive.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
	rest, ok := strings.CutPrefix(text, "lint:")
	if !ok {
		return Directive{}, false
	}
	name, args, _ := strings.Cut(rest, " ")
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// GroupDirectives extracts the //lint: directives from doc / line comment
// groups (nil groups are fine). This is how annotations attach to
// declarations: a directive in a FuncDecl's doc comment, a struct
// field's doc comment, or a field's trailing line comment.
func GroupDirectives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// HasDirective reports whether the groups carry //lint:<name>, returning
// its arguments.
func HasDirective(name string, groups ...*ast.CommentGroup) (args string, ok bool) {
	for _, d := range GroupDirectives(groups...) {
		if d.Name == name {
			return d.Args, true
		}
	}
	return "", false
}

// FuncDirective reports whether fn's declaration in pkg carries
// //lint:<name>. It is the cross-package summary hook: an analyzer
// checking squid/internal/chord can ask whether a wire.Encoder method it
// calls is itself annotated //lint:allocfree.
func FuncDirective(pkg *Package, fn *types.Func, name string) (args string, ok bool) {
	if pkg == nil || fn == nil {
		return "", false
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, okd := decl.(*ast.FuncDecl)
			if !okd {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return HasDirective(name, fd.Doc)
			}
		}
	}
	return "", false
}

// DirectiveError formats a malformed-directive error consistently.
func DirectiveError(fset *token.FileSet, d Directive, msg string) error {
	return fmt.Errorf("%s: //lint:%s: %s", fset.Position(d.Pos), d.Name, msg)
}
