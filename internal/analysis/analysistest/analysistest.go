// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against want-comments, in the style of
// golang.org/x/tools/go/analysis/analysistest but built on the in-repo
// loader (no external dependencies).
//
// Fixtures live under <testdata>/src/<importpath>/. A fixture file marks
// an expected diagnostic with a trailing comment on the offending line:
//
//	a < b // want `ring identifier`
//
// The backquoted (or double-quoted) string is a regexp matched against the
// diagnostic message; several per line are allowed. Lines without a want
// comment must produce no diagnostic. Fixture packages may import real
// module packages ("squid/internal/chord") — the loader grafts the fixture
// tree into the module's import space, so analyzers are exercised against
// the genuine types they police.
package analysistest

import (
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"squid/internal/analysis"
)

// Run loads each fixture package under testdata/src, applies a, and
// reports mismatches between diagnostics and want comments via t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	testdata, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	moduleRoot, err := analysis.FindModuleRoot(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(testdata, "src")
	if err := graftFixtures(loader, src); err != nil {
		t.Fatal(err)
	}

	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !consumeWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, res := range wants {
		for _, w := range res {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

// graftFixtures maps every package directory under src into the loader's
// import space, keyed by its path relative to src.
func graftFixtures(l *analysis.Loader, src string) error {
	return filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		if bp, err := build.Default.ImportDir(p, 0); err != nil || len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		l.ExtraDirs[filepath.ToSlash(rel)] = p
		return nil
	})
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE matches one expectation inside a want comment: a backquoted or
// double-quoted regexp.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans fixture comments for want markers.
func collectWants(pkgs []*analysis.Package) (map[wantKey][]*want, error) {
	wants := make(map[wantKey][]*want)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantRE.FindAllString(rest, -1) {
						expr := q[1 : len(q)-1]
						if q[0] == '"' {
							expr = strings.ReplaceAll(expr, `\"`, `"`)
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want regexp %s: %w", pos, q, err)
						}
						key := wantKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

// consumeWant marks the first unmatched want on d's line whose regexp
// matches d's message.
func consumeWant(wants map[wantKey][]*want, d analysis.Diagnostic) bool {
	for _, w := range wants[wantKey{d.Pos.Filename, d.Pos.Line}] {
		if !w.matched && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
