// Fixture: errors on the transport/chord RPC path must be checked or
// discarded with a stated reason.
package rpcerr

import (
	"squid/internal/chord"
	"squid/internal/transport"
)

func drops(ep transport.Endpoint, to transport.Addr) {
	ep.Send(to, "hi")     // want `dropped`
	_ = ep.Send(to, "hi") // want `discarded without a reason`
	_ = ep.Send(to, "hi") // best effort: the probe retries next tick
	defer ep.Close()      // want `defer`
	go retry(ep, to)
}

func spawn(ep transport.Endpoint, to transport.Addr) {
	go ep.Send(to, "x") // want `unobservable`
}

func retry(ep transport.Endpoint, to transport.Addr) {
	if err := ep.Send(to, "again"); err != nil {
		_ = err // handled upstream: the retry loop observes the counter
	}
}

func space() chord.Space {
	sp, _ := chord.NewSpace(16) // want `discarded without a reason`
	return sp
}

func spaceChecked() (chord.Space, error) {
	return chord.NewSpace(16)
}

func spaceReasoned() chord.Space {
	sp, _ := chord.NewSpace(16) // 16 is a compile-time constant in range
	return sp
}

func allowedStmt(ep transport.Endpoint, to transport.Addr) {
	//lint:allow-rpcerr fire-and-forget gossip, loss tolerated by design
	ep.Send(to, "gossip")
}
