// Fixture: inside a transport package, net and io error returns join the
// RPC contract — the negotiation path (preamble write, ack read) must
// never drop one.
package transport

import "io"

func negotiate(rw io.ReadWriter, preamble []byte) bool {
	rw.Write(preamble) // want `dropped`
	var ack [4]byte
	io.ReadFull(rw, ack[:])        // want `dropped`
	_, _ = io.ReadFull(rw, ack[:]) // want `discarded without a reason`
	_, _ = io.ReadFull(rw, ack[:]) // peer may close mid-negotiation; zero ack selects gob
	if _, err := io.ReadFull(rw, ack[:]); err != nil {
		return false
	}
	return ack[0] == 1
}
