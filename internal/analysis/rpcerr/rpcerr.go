// Package rpcerr forbids silently dropping errors on the RPC path.
//
// Every error returned along the transport.Endpoint / chord RPC surface —
// any function or method declared in a transport or chord package whose
// results include an error, plus net and io calls made from inside a
// transport package (the connection-negotiation path) — must be checked
// or explicitly discarded.
// Silent drops on this path were the root cause of the PR 1 hang class:
// a Send that fails unreachable, unobserved, leaves a subtree waiting on
// an ack that will never come.
//
// A drop is:
//
//   - a bare call statement (ep.Send(to, msg)),
//   - go/defer of such a call (defer ep.Close()),
//   - an assignment that lands the error in the blank identifier with no
//     same-line comment stating why.
//
// A blank discard with a reason comment is legitimate:
//
//	_ = ep.Send(to, msg) // destination may have died meanwhile
//
// (Directive comments — lint: or analysistest want markers — do not count
// as reasons.) Statement-form drops can also be excused with
// //lint:allow-rpcerr <reason>.
package rpcerr

import (
	"go/ast"
	"go/types"
	"strings"

	"squid/internal/analysis"
)

// Analyzer is the rpcerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "rpcerr",
	Doc:  "errors from transport/chord RPC calls must be checked or discarded with a stated reason",
	Run:  run,
}

// rpcPkgs are the package-path tails whose error returns form the RPC
// contract.
var rpcPkgs = map[string]bool{"transport": true, "chord": true}

// wirePkgs are standard-library packages whose error returns join the
// contract inside a transport package: the PR 7 negotiation path writes
// the preamble with net.Conn.Write and reads the ack with io.ReadFull,
// and a dropped error there silently downgrades a peer to gob.
var wirePkgs = map[string]bool{"net": true, "io": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		commented := commentLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if name, ok := rpcErrCall(pass, st.X); ok {
					pass.Reportf(st.Pos(), "error from %s dropped; check it or discard with `_ =` and a reason comment", name)
				}
			case *ast.GoStmt:
				if name, ok := rpcErrCall(pass, st.Call); ok {
					pass.Reportf(st.Pos(), "error from go %s is unobservable; wrap the call and handle the error in the goroutine", name)
				}
			case *ast.DeferStmt:
				if name, ok := rpcErrCall(pass, st.Call); ok {
					pass.Reportf(st.Pos(), "error from defer %s dropped; defer a closure that handles or reasons away the error", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, st, commented)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags RPC errors assigned to the blank identifier on lines
// without a reason comment.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt, commented map[int]bool) {
	flag := func(call ast.Expr, name string) {
		if commented[pass.Fset.Position(st.Pos()).Line] {
			return // _ = ... // <why this is safe to drop>
		}
		pass.Reportf(call.Pos(), "error from %s discarded without a reason; add a same-line comment saying why the drop is safe", name)
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value form: v, err := f() — find the error positions.
		name, ok := rpcErrCall(pass, st.Rhs[0])
		if !ok {
			return
		}
		call := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		sig := calleeSignature(pass, call)
		if sig == nil || sig.Results().Len() != len(st.Lhs) {
			return
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if !isErrorType(sig.Results().At(i).Type()) {
				continue
			}
			if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				flag(call, name)
				return
			}
		}
		return
	}
	for i, rhs := range st.Rhs {
		name, ok := rpcErrCall(pass, rhs)
		if !ok || i >= len(st.Lhs) {
			continue
		}
		if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			flag(rhs, name)
		}
	}
}

// rpcErrCall reports whether e is a call on the RPC path whose results
// include an error, returning a printable callee name.
func rpcErrCall(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	declPkg := fn.Pkg()
	if recv := sig.Recv(); recv != nil {
		t := types.Unalias(recv.Type())
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			declPkg = named.Obj().Pkg()
		}
	}
	if declPkg == nil {
		return "", false
	}
	if !rpcPkgs[analysis.PkgPathTail(declPkg.Path())] &&
		!(wirePkgs[declPkg.Path()] && analysis.PkgPathTail(pass.Pkg.Path()) == "transport") {
		return "", false
	}
	hasErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
		}
		return types.TypeString(types.Unalias(t), func(p *types.Package) string { return p.Name() }) + "." + fn.Name(), true
	}
	return declPkg.Name() + "." + fn.Name(), true
}

// calleeSignature returns the static signature of call's callee.
func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// commentLines maps source lines of file carrying a prose comment — one
// whose text is neither a lint/go directive nor an analysistest want
// marker. Those lines document why a blank discard is safe.
func commentLines(pass *analysis.Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
			if strings.HasPrefix(text, "want ") ||
				strings.HasPrefix(text, "lint:") ||
				strings.HasPrefix(text, "go:") {
				continue
			}
			if text == "" || text == "*/" {
				continue
			}
			lines[pass.Fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}
