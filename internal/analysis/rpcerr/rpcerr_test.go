package rpcerr_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/rpcerr"
)

func TestRPCErr(t *testing.T) {
	analysistest.Run(t, "testdata", rpcerr.Analyzer, "rpcerr", "transport")
}
