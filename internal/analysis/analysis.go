// Package analysis is a self-contained miniature of golang.org/x/tools'
// go/analysis framework: an Analyzer inspects one type-checked package at a
// time and reports Diagnostics. The toolchain here vendors nothing — the
// loader in load.go type-checks from source with only the standard library,
// so the suite builds in the same zero-dependency envelope as the rest of
// Squid.
//
// Squid's correctness rests on invariants the compiler cannot see: ring
// arithmetic must flow through the modular helpers of chord.Space, the
// zero-alloc ...Into refinement APIs have an aliasing contract, the
// simulation layer must draw all randomness and time from seeded sources,
// and errors on the RPC path must never be dropped silently. The analyzers
// in the subpackages (ringcmp, scratchalias, nodeterminism, rpcerr) make
// those invariants executable; cmd/squid-lint runs them all.
//
// Deliberate exceptions are annotated in source with
//
//	//lint:allow-<analyzer> <reason>
//
// on the offending line or the line above it. The reason is mandatory —
// a bare marker does not suppress the diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //lint:allow-<name> escape-comment convention.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package held by pass and reports findings via
	// pass.Reportf. A non-nil error aborts the whole run (it signals a
	// broken analyzer or loader, not a finding).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dep resolves an import path to another loaded package (nil when the
	// path was not loaded). Analyzers use it to read //lint: annotations
	// on functions declared in dependency packages.
	Dep func(path string) *Package

	diags *[]Diagnostic

	// allowLines caches, per file, the set of lines carrying a valid
	// //lint:allow-<name> comment for this pass's analyzer.
	allowLines map[*ast.File]map[int]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an escape comment
// (//lint:allow-<analyzer> <reason>) covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether the line holding pos — or the line directly
// above it — carries //lint:allow-<analyzer> with a non-empty reason.
func (p *Pass) allowedAt(pos token.Pos) bool {
	file := p.fileAt(pos)
	if file == nil {
		return false
	}
	if p.allowLines == nil {
		p.allowLines = make(map[*ast.File]map[int]bool)
	}
	lines, ok := p.allowLines[file]
	if !ok {
		lines = make(map[int]bool)
		marker := "lint:allow-" + p.Analyzer.Name
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, marker) {
					continue
				}
				reason := strings.TrimPrefix(text, marker)
				if reason == "" || strings.TrimSpace(reason) == "" {
					continue // a bare marker carries no rationale: not a valid escape
				}
				if reason[0] != ' ' && reason[0] != '\t' {
					continue // e.g. lint:allow-ringcmpX — different marker
				}
				lines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
		p.allowLines[file] = lines
	}
	line := p.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// fileAt returns the *ast.File of the pass containing pos.
func (p *Pass) fileAt(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Run applies each analyzer to each package and returns all findings
// sorted by position. Analyzer errors (not findings) abort the run.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Dep:      pkg.Dep,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, then analyzer —
// the stable order the driver prints. Exported so callers that run
// analyzers one at a time (e.g. for per-analyzer timing) can merge and
// re-sort their findings.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// PkgPathTail returns the last element of a package import path:
// "squid/internal/chord" → "chord". Analyzers match packages by tail so
// the same rules bind the real tree and the analysistest fixtures.
func PkgPathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
