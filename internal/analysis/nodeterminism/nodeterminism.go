// Package nodeterminism forbids wall-clock and global-randomness calls in
// the packages whose behaviour must replay bit-for-bit from a seed.
//
// The simulation substrates (internal/sim and the discrete-event
// internal/dessim, where virtual time is the only time), the curve kernels
// (internal/sfc), the telemetry registry (internal/telemetry, whose
// injectable clock is the whole point — reading the wall clock directly
// would leak nondeterminism into every instrumented package) and the
// fault-injection layer (internal/transport's faulty*.go files), and the
// membership-correctness surface (internal/chord's and internal/squid's
// invariant* and churn* files — the ring checker and the churn soaks must
// replay bit-for-bit so a violation is a protocol bug, never flake) are
// only reproducible if every random draw flows from the seeded *rand.Rand
// they were configured with and no decision reads the wall clock.
// time.Now/Since/After/Tick/NewTimer/NewTicker/AfterFunc and the
// package-level math/rand convenience functions (which share one global,
// unseeded source) are therefore banned there.
//
// Constructing seeded sources (rand.New, rand.NewSource) is always
// allowed, as are methods on an explicit *rand.Rand value. Deliberate
// wall-clock use carries //lint:allow-nondet <reason>.
package nodeterminism

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"squid/internal/analysis"
)

// Analyzer is the nodeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "forbids time.Now/timers and global math/rand in determinism-critical packages (sim, dessim, sfc, telemetry, wire, workload, transport's faulty layer, chord/squid invariant and churn files)",
	Run:  run,
}

// criticalPkgs lists package-path tails that are determinism-critical in
// their entirety. wire is here because codecs must be pure functions of
// their input (a timestamp in an encoder would break the gob/binary
// equivalence suite); workload because generators must replay their
// keyspaces and query mixes bit-for-bit from the configured seed; dessim
// because the discrete-event simulator's entire contract is that virtual
// time is the only time — one wall-clock read or global draw and the
// seed-reproducibility tests become flakes.
var criticalPkgs = map[string]bool{
	"sim": true, "dessim": true, "sfc": true, "telemetry": true,
	"wire": true, "workload": true,
}

// bannedTime are the time package functions that read or schedule against
// the wall clock.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Sleep": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allowedRand are the package-level math/rand functions that construct
// explicit sources rather than draw from the global one.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	tail := analysis.PkgPathTail(pass.Pkg.Path())
	for _, file := range pass.Files {
		if !criticalFile(pass, tail, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are explicit sources
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s is wall-clock and breaks seeded replay; thread the virtual clock / deterministic scheduling instead", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(call.Pos(), "global %s.%s draws from an unseeded shared source; use the seeded *rand.Rand threaded through the config", analysis.PkgPathTail(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// criticalFile reports whether file is under the determinism contract:
// every file of a critical package, the faulty*.go files of a transport
// package, and the invariant*/churn* files of a chord or squid package.
func criticalFile(pass *analysis.Pass, pkgTail string, file *ast.File) bool {
	if criticalPkgs[pkgTail] {
		return true
	}
	name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
	switch pkgTail {
	case "transport":
		return strings.HasPrefix(name, "faulty")
	case "chord", "squid":
		return strings.HasPrefix(name, "invariant") || strings.HasPrefix(name, "churn")
	}
	return false
}

// calleeFunc resolves the static callee of a call, if it is a declared
// function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
