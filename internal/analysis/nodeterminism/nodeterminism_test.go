package nodeterminism_test

import (
	"testing"

	"squid/internal/analysis/analysistest"
	"squid/internal/analysis/nodeterminism"
)

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterminism.Analyzer, "sim", "dessim", "telemetry", "transport", "chord", "other", "wire", "workload")
}
