// Fixture: wire codecs must be pure functions of their input — a
// timestamp or random pad in an encoder would break the binary/gob
// equivalence suite.
package wire

import (
	"math/rand"
	"time"
)

type encoder struct{ buf []byte }

func (e *encoder) stamp() {
	_ = time.Now() // want `wall-clock`
}

func (e *encoder) pad() {
	e.buf = append(e.buf, byte(rand.Int())) // want `unseeded shared source`
}

func (e *encoder) seeded(r *rand.Rand) {
	e.buf = append(e.buf, byte(r.Int())) // explicit source: allowed
}
