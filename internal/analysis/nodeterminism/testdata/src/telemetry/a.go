// Fixture: the telemetry registry is determinism-critical — its clock is
// injected, so reading the wall clock directly would leak nondeterminism
// into every instrumented package.
package telemetry

import "time"

type registry struct {
	clock func() time.Time
}

func (r *registry) now() time.Time {
	if r.clock == nil {
		return time.Time{}
	}
	return r.clock() // injected clock: allowed
}

func (r *registry) wallClock() time.Time {
	return time.Now() // want `wall-clock`
}

func (r *registry) wallElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock`
}
