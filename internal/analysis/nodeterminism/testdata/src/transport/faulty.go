// Fixture: in a transport package, only the faulty*.go files are under
// the determinism contract.
package transport

import "time"

func schedule(f func()) {
	time.AfterFunc(time.Millisecond, f) // want `wall-clock`
}
