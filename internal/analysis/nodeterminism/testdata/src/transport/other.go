package transport

import "time"

// stamp lives outside faulty*.go: the wall clock is fine here (real
// transports need deadlines).
func stamp() time.Time { return time.Now() }
