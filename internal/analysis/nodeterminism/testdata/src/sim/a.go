// Fixture: packages with tail "sim" are determinism-critical throughout.
package sim

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall-clock`
}

func globalRand() int {
	return rand.Intn(16) // want `unseeded shared source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

func timer(d time.Duration, f func()) {
	time.AfterFunc(d, f) // want `wall-clock`
}

func annotated() time.Time {
	//lint:allow-nondet operator-facing timestamp, not simulation state
	return time.Now()
}
