package other

import "time"

// now is in a non-critical package: no diagnostic.
func now() time.Time { return time.Now() }
