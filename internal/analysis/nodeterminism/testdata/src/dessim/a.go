// Fixture: packages with tail "dessim" are determinism-critical throughout
// — the discrete-event core must advance only virtual time, so any wall
// clock read or global random draw breaks seeded replay.
package dessim

import (
	"math/rand"
	"time"
)

type vclock struct{ now int64 }

func (c *vclock) advance(d time.Duration) { c.now += int64(d) }

func eventDelay() time.Duration {
	return time.Since(time.Unix(0, 0)) // want `wall-clock`
}

func jitter() int64 {
	return rand.Int63() // want `unseeded shared source`
}

func seededLink(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func sleepUntilQuiet() {
	time.Sleep(time.Millisecond) // want `wall-clock`
}

func telemetryEpoch() time.Time {
	//lint:allow-nondet fixed epoch mapping for operator-facing trace timestamps
	return time.Now()
}
