// Fixture: workload generators must replay their keyspaces and query
// mixes bit-for-bit from the configured seed.
package workload

import (
	"math/rand"
	"time"
)

func generate(seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed)) // constructing a seeded source: allowed
	z := rand.NewZipf(r, 1.2, 1, 1<<20)
	out := make([]uint64, 8)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

func jitter() time.Duration {
	return time.Duration(rand.Int63()) // want `unseeded shared source`
}

func deadline() time.Time {
	return time.Now() // want `wall-clock`
}
