// Fixture: in a chord package, the invariant* and churn* files are under
// the determinism contract.
package chord

import "math/rand"

func snapshotOrder() int {
	return rand.Intn(8) // want `unseeded shared source`
}
