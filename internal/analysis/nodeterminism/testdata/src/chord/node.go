package chord

import "time"

// deadline lives outside the invariant*/churn* files: the protocol proper
// may use the wall clock (RPC timeouts are real time).
func deadline() time.Time { return time.Now() }
