// Package suite registers every squid-lint analyzer in one place, so the
// cmd/squid-lint driver and any future callers agree on the set.
package suite

import (
	"squid/internal/analysis"
	"squid/internal/analysis/allocfree"
	"squid/internal/analysis/confine"
	"squid/internal/analysis/lockcheck"
	"squid/internal/analysis/nodeterminism"
	"squid/internal/analysis/ringcmp"
	"squid/internal/analysis/rpcerr"
	"squid/internal/analysis/scratchalias"
	"squid/internal/analysis/wirecodec"
)

// Analyzers returns the full squid-lint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ringcmp.Analyzer,
		scratchalias.Analyzer,
		nodeterminism.Analyzer,
		rpcerr.Analyzer,
		wirecodec.Analyzer,
		confine.Analyzer,
		lockcheck.Analyzer,
		allocfree.Analyzer,
	}
}
