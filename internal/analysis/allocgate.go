package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the escape-analysis half of the allocfree gate. The
// static analyzer (internal/analysis/allocfree) refuses allocation
// constructs it can see in the source; this half checks what only the
// compiler knows — which values escape to the heap — by mapping
// `go build -gcflags=-m` diagnostics onto the line spans of
// //lint:allocfree functions. cmd/squid-lint's -allocs mode runs the
// build and feeds the output through EscapeDiagnostics, turning the
// 0 allocs/op claims of the benchmark suite into a CI gate.

// AllocSpan is the source extent of one //lint:allocfree function.
type AllocSpan struct {
	File       string // path relative to the module root, OS separators
	Func       string
	Start, End int // line range, inclusive
}

// CollectAllocSpans returns the //lint:allocfree function spans of pkg,
// with file paths relative to moduleDir (matching the compiler's output
// when `go build` runs at the module root).
func CollectAllocSpans(pkg *Package, moduleDir string) []AllocSpan {
	var spans []AllocSpan
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := HasDirective("allocfree", fd.Doc); !ok {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			rel, err := filepath.Rel(moduleDir, start.Filename)
			if err != nil {
				rel = start.Filename
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
					name = t + "." + name
				}
			}
			spans = append(spans, AllocSpan{File: rel, Func: name, Start: start.Line, End: end.Line})
		}
	}
	return spans
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

// allowedEscapeLines collects, per module-relative file, the lines
// carrying //lint:allow-allocfree with a reason — the escape hatch for
// amortized scratch growth and documented cold paths.
func allowedEscapeLines(pkg *Package, moduleDir string) map[string]map[int]bool {
	allowed := make(map[string]map[int]bool)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				reason, ok := strings.CutPrefix(text, "lint:allow-allocfree")
				if !ok || strings.TrimSpace(reason) == "" {
					continue
				}
				if reason[0] != ' ' && reason[0] != '\t' {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rel, err := filepath.Rel(moduleDir, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				if allowed[rel] == nil {
					allowed[rel] = make(map[int]bool)
				}
				allowed[rel][pos.Line] = true
			}
		}
	}
	return allowed
}

// EscapeDiagnostics maps compiler escape-analysis output (the stderr of
// `go build -gcflags=-m`, run at the module root) onto pkg's
// //lint:allocfree spans. A "… escapes to heap" or "… moved to heap"
// line inside a span is a finding unless its line (or the line above)
// carries //lint:allow-allocfree <reason>.
func EscapeDiagnostics(pkg *Package, moduleDir string, buildOutput []byte) []Diagnostic {
	spans := CollectAllocSpans(pkg, moduleDir)
	if len(spans) == 0 {
		return nil
	}
	allowed := allowedEscapeLines(pkg, moduleDir)
	var diags []Diagnostic
	for _, raw := range strings.Split(string(buildOutput), "\n") {
		line := strings.TrimSpace(raw)
		if !strings.HasSuffix(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, lineNo, col, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		// Module-root files are printed as "./a.go"; spans store them
		// without the prefix.
		file = filepath.FromSlash(strings.TrimPrefix(file, "./"))
		var span *AllocSpan
		for i := range spans {
			s := &spans[i]
			if s.File == file && s.Start <= lineNo && lineNo <= s.End {
				span = s
				break
			}
		}
		if span == nil {
			continue
		}
		if al := allowed[file]; al != nil && (al[lineNo] || al[lineNo-1]) {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "allocfree",
			Pos:      token.Position{Filename: filepath.Join(moduleDir, file), Line: lineNo, Column: col},
			Message:  msg + " in //lint:allocfree function " + span.Func,
		})
	}
	SortDiagnostics(diags)
	return diags
}

// splitDiagLine parses "path:line:col: message" (the compiler's
// diagnostic format; "#" package headers and stdlib paths fail the span
// match downstream or the parse here).
func splitDiagLine(s string) (file string, line, col int, msg string, ok bool) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 {
		return "", 0, 0, "", false
	}
	line, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return parts[0], line, col, strings.TrimSpace(parts[3]), true
}
