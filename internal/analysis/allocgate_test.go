package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEscapeDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := `package tmp

//lint:allocfree
func Hot(n int) []int {
	s := make([]int, n)
	return s
}

//lint:allocfree
func Amortized(n int) []int {
	//lint:allow-allocfree grows at most once per doubling
	s := make([]int, n)
	return s
}

func Cold(n int) []int {
	return make([]int, n)
}
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("tmp")
	if err != nil {
		t.Fatal(err)
	}

	spans := CollectAllocSpans(pkg, dir)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0].Func != "Hot" || spans[1].Func != "Amortized" {
		t.Fatalf("span funcs = %s, %s", spans[0].Func, spans[1].Func)
	}

	// Synthetic compiler output: one escape in Hot (line 5), one on
	// Amortized's allowed line (12), one in unannotated Cold (17), one
	// stdlib line, one header line.
	output := strings.Join([]string{
		"# tmp",
		"a.go:5:11: make([]int, n) escapes to heap",
		"a.go:12:11: make([]int, n) escapes to heap",
		"a.go:17:13: make([]int, n) escapes to heap",
		"/usr/local/go/src/sync/map.go:10:2: x escapes to heap",
		"a.go:5:2: inlining call to something",
	}, "\n")
	diags := EscapeDiagnostics(pkg, dir, []byte(output))
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Line != 5 || !strings.Contains(d.Message, "Hot") || !strings.Contains(d.Message, "escapes to heap") {
		t.Errorf("unexpected diagnostic: %v", d)
	}
	if d.Analyzer != "allocfree" {
		t.Errorf("analyzer = %q", d.Analyzer)
	}
}
