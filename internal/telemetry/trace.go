package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// QueryID identifies one flexible query across the system: the engine
// issues it at the query root, every trace span and telemetry surface
// carries it, and squidctl feeds it back to the trace endpoint. It is a
// distinct type so query ids cannot be mixed up with span ids or ring
// keys at compile time; squid re-exports it as squid.QueryID. The wire
// representation is unchanged (gob encodes named integers structurally),
// so old peers interoperate.
type QueryID uint64

// TraceMode says what a message's trace context means. The zero value is
// deliberately TraceAbsent: old-format gob payloads that predate tracing
// decode to it, and OrRoot turns it into a sampled root context — the
// wire-compat default the protocol promises.
type TraceMode uint8

const (
	// TraceAbsent marks a ref decoded from a message with no trace context
	// (an old-format payload). OrRoot treats it as a fresh root span.
	TraceAbsent TraceMode = iota
	// TraceOff marks a query whose initiator is not collecting spans.
	TraceOff
	// TraceOn marks a sampled query: every hop records a span and ships it
	// back up the query tree.
	TraceOn
)

// TraceRef is the trace context a query-tree RPC carries downward: the
// parent span the receiver should attach under, the receiver's refinement
// depth, and whether spans are being collected at all. It is gob-friendly
// and cheap to copy.
type TraceRef struct {
	Parent uint64 // span id of the dispatching subtree; 0 at the root
	Depth  int    // refinement depth of the receiver (root children are 1)
	Mode   TraceMode
}

// Sampled reports whether the receiver should record and return spans.
func (r TraceRef) Sampled() bool { return r.Mode == TraceOn }

// OrRoot normalizes a ref decoded from the wire: a context-free old-format
// payload (zero ref) defaults to a sampled root span, so pre-tracing peers
// still yield observable subtrees instead of silently vanishing from the
// trace. Refs that carry explicit context pass through unchanged.
func (r TraceRef) OrRoot() TraceRef {
	if r.Mode == TraceAbsent {
		return TraceRef{Parent: 0, Depth: 0, Mode: TraceOn}
	}
	return r
}

// Child derives the context for a subtree dispatched from the span id
// owning this level.
func (r TraceRef) Child(spanID uint64) TraceRef {
	return TraceRef{Parent: spanID, Depth: r.Depth + 1, Mode: r.Mode}
}

// Span is one node's record of handling one slice of a query tree. All
// fields are value types so spans travel by gob inside SubResultMsg.
type Span struct {
	QID    QueryID // query id; doubles as the trace id
	ID     uint64 // unique within the trace
	Parent uint64 // parent span id; 0 for the root span
	Depth  int    // refinement depth (root is 0)

	Node uint64 // ring identifier of the recording node
	Addr string // transport address of the recording node

	// Kind classifies the span: "root" (query initiator), "cluster"
	// (refinement hop), "lookup" (exact-point leaf), "lost" (subtree
	// abandoned by the dispatcher after exhausting re-dispatch retries).
	Kind string

	Prefix   uint64 // representative cluster prefix handled (first in batch)
	Level    int    // refinement level of that prefix
	Clusters int    // clusters received in the batch
	Local    int    // clusters resolved locally (owned-run scan)
	Children int    // child subtrees dispatched onward
	Matches  int    // matching elements found locally
	Retries  int    // re-dispatches this span performed on its children

	Abandoned bool // true on "lost" spans: the subtree never reported back

	StartNS, EndNS int64 // clock-relative; 0 under the simulator's nil clock
}

// Trace is a reassembled query tree: every span the completed query
// reported, rooted at the initiator.
type Trace struct {
	QID     QueryID
	Partial bool // the query returned ErrPartialResult
	Spans   []Span
}

// Root returns the root span, or nil if the trace is empty/corrupt.
func (t *Trace) Root() *Span {
	for i := range t.Spans {
		if t.Spans[i].Parent == 0 && t.Spans[i].Kind == "root" {
			return &t.Spans[i]
		}
	}
	return nil
}

// Nodes returns the set of ring identifiers that recorded at least one
// non-lost span — the nodes the query tree provably visited.
func (t *Trace) Nodes() map[uint64]bool {
	out := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		if s.Kind != "lost" {
			out[s.Node] = true
		}
	}
	return out
}

// Visited reports whether node recorded a span in this trace.
func (t *Trace) Visited(node uint64) bool {
	for _, s := range t.Spans {
		if s.Kind != "lost" && s.Node == node {
			return true
		}
	}
	return false
}

// Lost returns the spans marking abandoned subtrees.
func (t *Trace) Lost() []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Abandoned {
			out = append(out, s)
		}
	}
	return out
}

// Matches sums the locally-found matches across all spans.
func (t *Trace) Matches() int {
	n := 0
	for _, s := range t.Spans {
		n += s.Matches
	}
	return n
}

// Render writes the trace as an indented tree, children ordered by span
// id, orphans (parent never reported) grouped at the end.
func (t *Trace) Render(w io.Writer) {
	byParent := make(map[uint64][]Span)
	ids := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		ids[s.ID] = true
	}
	for _, s := range t.Spans {
		byParent[s.Parent] = append(byParent[s.Parent], s)
	}
	for _, kids := range byParent {
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
	}
	status := "complete"
	if t.Partial {
		status = "PARTIAL"
	}
	fmt.Fprintf(w, "query %d: %s, %d spans, %d matches\n", t.QID, status, len(t.Spans), t.Matches())
	var walk func(parent uint64, indent string)
	walk = func(parent uint64, indent string) {
		for _, s := range byParent[parent] {
			fmt.Fprintf(w, "%s%s\n", indent, s.line())
			walk(s.ID, indent+"  ")
		}
	}
	walk(0, "  ")
	for parent, kids := range byParent {
		if parent == 0 || ids[parent] {
			continue
		}
		fmt.Fprintf(w, "  (orphaned under missing span %x)\n", parent)
		for _, s := range kids {
			fmt.Fprintf(w, "    %s\n", s.line())
			walk(s.ID, "      ")
		}
	}
}

// line renders one span for the tree dump.
func (s Span) line() string {
	switch s.Kind {
	case "lost":
		return fmt.Sprintf("LOST node=%x prefix=%x/%d depth=%d (abandoned after retries)",
			s.Node, s.Prefix, s.Level, s.Depth)
	case "lookup":
		return fmt.Sprintf("lookup node=%x depth=%d matches=%d", s.Node, s.Depth, s.Matches)
	default:
		return fmt.Sprintf("%s node=%x prefix=%x/%d depth=%d clusters=%d local=%d children=%d matches=%d retries=%d",
			s.Kind, s.Node, s.Prefix, s.Level, s.Depth, s.Clusters, s.Local, s.Children, s.Matches, s.Retries)
	}
}

// TraceStore holds completed traces in a bounded FIFO. Safe for concurrent
// use; the scrape goroutine reads while the node goroutine adds.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	byQID map[QueryID]*Trace
	order []QueryID
}

// NewTraceStore returns a store keeping at most capacity traces (oldest
// evicted first). capacity <= 0 defaults to 64.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceStore{
		cap:   capacity,
		byQID: make(map[QueryID]*Trace),
	}
}

// Add stores a completed trace, evicting the oldest if full. Re-adding a
// QID replaces the stored trace without consuming capacity.
func (s *TraceStore) Add(t Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byQID[t.QID]; ok {
		s.byQID[t.QID] = &t
		return
	}
	for len(s.order) >= s.cap {
		delete(s.byQID, s.order[0])
		s.order = s.order[1:]
	}
	s.byQID[t.QID] = &t
	s.order = append(s.order, t.QID)
}

// Get returns the trace for one query id.
func (s *TraceStore) Get(qid QueryID) (Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byQID[qid]; ok {
		return *t, true
	}
	return Trace{}, false
}

// Last returns the most recently added trace.
func (s *TraceStore) Last() (Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 {
		return Trace{}, false
	}
	return *s.byQID[s.order[len(s.order)-1]], true
}

// IDs returns the stored query ids, oldest first.
func (s *TraceStore) IDs() []QueryID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]QueryID(nil), s.order...)
}
