package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one line per
// child, cumulative _bucket/_sum/_count series for histograms. Families
// appear in registration order; children within a family are sorted by
// label values so successive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, typeName(f.kind))
		for _, ch := range f.snapshotChildren() {
			writeChild(bw, f, ch)
		}
	}
	return bw.Flush()
}

func typeName(k kind) string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelString renders {k1="v1",k2="v2"} for a child, with extra appended as
// a pre-rendered pair (used for histogram le labels). Empty when the family
// is unlabeled and extra is empty.
func labelString(labels, values []string, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func writeChild(w io.Writer, f *family, ch childEntry) {
	switch m := ch.metric.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, ch.values, ""), m.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, ch.values, ""), m.Value())
	case *Histogram:
		cum := m.Buckets()
		for i, b := range m.Bounds() {
			le := fmt.Sprintf(`le="%d"`, b)
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, le), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, `le="+Inf"`), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %d\n", f.name, labelString(f.labels, ch.values, ""), m.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, ch.values, ""), m.Count())
	}
}
