package telemetry

import (
	"strings"
	"testing"
)

func sampleTrace() Trace {
	return Trace{
		QID:     7,
		Partial: true,
		Spans: []Span{
			{QID: 7, ID: 1, Parent: 0, Kind: "root", Node: 0xa, Clusters: 4, Children: 2, Matches: 1},
			{QID: 7, ID: 2, Parent: 1, Depth: 1, Kind: "cluster", Node: 0xb, Clusters: 2, Matches: 3},
			{QID: 7, ID: 3, Parent: 1, Depth: 1, Kind: "lost", Node: 0xc, Abandoned: true},
			{QID: 7, ID: 4, Parent: 2, Depth: 2, Kind: "lookup", Node: 0xd, Matches: 2},
		},
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := sampleTrace()
	root := tr.Root()
	if root == nil || root.Node != 0xa {
		t.Fatalf("Root() = %+v, want the root span on node a", root)
	}
	nodes := tr.Nodes()
	for _, n := range []uint64{0xa, 0xb, 0xd} {
		if !nodes[n] {
			t.Fatalf("Nodes() missing %x: %v", n, nodes)
		}
	}
	if nodes[0xc] {
		t.Fatalf("lost spans must not count as visited nodes")
	}
	if !tr.Visited(0xb) || tr.Visited(0xc) {
		t.Fatalf("Visited misclassifies lost spans")
	}
	if lost := tr.Lost(); len(lost) != 1 || lost[0].Node != 0xc {
		t.Fatalf("Lost() = %+v, want the abandoned span on node c", lost)
	}
	if m := tr.Matches(); m != 6 {
		t.Fatalf("Matches() = %d, want 6", m)
	}
}

func TestTraceRender(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	tr.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"query 7: PARTIAL, 4 spans, 6 matches",
		"root node=a",
		"cluster node=b",
		"LOST node=c",
		"lookup node=d",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The lookup leaf sits two levels deep.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "lookup node=d") && !strings.HasPrefix(line, "      ") {
			t.Fatalf("lookup span not indented under its parent chain:\n%s", out)
		}
	}
}

func TestTraceRefDefaults(t *testing.T) {
	var legacy TraceRef // what an old-format gob payload decodes to
	if legacy.Sampled() {
		t.Fatalf("zero ref must not claim to be sampled")
	}
	root := legacy.OrRoot()
	if root.Parent != 0 || root.Depth != 0 || !root.Sampled() {
		t.Fatalf("OrRoot() of a legacy ref = %+v, want a sampled root context", root)
	}

	explicit := TraceRef{Parent: 9, Depth: 2, Mode: TraceOff}
	if got := explicit.OrRoot(); got != explicit {
		t.Fatalf("OrRoot must pass explicit contexts through, got %+v", got)
	}

	child := TraceRef{Parent: 9, Depth: 2, Mode: TraceOn}.Child(42)
	if child.Parent != 42 || child.Depth != 3 || !child.Sampled() {
		t.Fatalf("Child() = %+v, want parent 42 depth 3 sampled", child)
	}
}

func TestTraceStoreFIFOEviction(t *testing.T) {
	s := NewTraceStore(2)
	s.Add(Trace{QID: 1})
	s.Add(Trace{QID: 2})
	s.Add(Trace{QID: 3})
	if _, ok := s.Get(1); ok {
		t.Fatalf("oldest trace should have been evicted")
	}
	if _, ok := s.Get(2); !ok {
		t.Fatalf("trace 2 should survive")
	}
	if got := s.IDs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("IDs() = %v, want [2 3]", got)
	}
	last, ok := s.Last()
	if !ok || last.QID != 3 {
		t.Fatalf("Last() = %+v, want trace 3", last)
	}

	// Replacing an existing QID must not evict anything.
	s.Add(Trace{QID: 2, Partial: true})
	if got, _ := s.Get(2); !got.Partial {
		t.Fatalf("re-adding a QID should replace the stored trace")
	}
	if _, ok := s.Get(3); !ok {
		t.Fatalf("replacement must not evict other traces")
	}
}
