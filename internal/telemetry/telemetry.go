// Package telemetry is the repo's observability subsystem: a zero-alloc
// metrics registry (atomic counters, gauges, fixed-bucket histograms,
// labeled families) plus a span model for tracing distributed queries
// through the embedded query tree.
//
// The package is stdlib-only and deliberately deterministic: a Registry
// never reads the wall clock itself. Callers inject a clock (cmd binaries
// pass time.Now; the simulator passes nil) so instrumented code stays legal
// under the nondet analyzer and simulated runs stay reproducible.
//
// Hot-path contract: Counter.Inc/Add, Gauge.Set/Add and Histogram.Observe
// are single atomic operations — no locks, no allocation. Vec.With
// allocates on first use of a label set only; hot paths resolve their child
// once and hold the pointer.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// kind discriminates what a metric family holds.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

// Registry owns a set of metric families. All methods are safe for
// concurrent use. Registering the same name twice returns the existing
// family (so independently-constructed components can share one registry);
// re-registering under a different kind or label arity panics, because that
// is a programming error no caller can recover from.
type Registry struct {
	clock func() time.Time

	mu     sync.Mutex
	byName map[string]*family //lint:guarded-by mu
	order  []*family          //lint:guarded-by mu
}

// NewRegistry returns an empty registry. clock supplies wall time for
// Now/Since and histogram timing helpers; nil means "no clock" — Now
// returns the zero time and Since returns 0, which keeps instrumented code
// deterministic in simulation.
func NewRegistry(clock func() time.Time) *Registry {
	return &Registry{
		clock:  clock,
		byName: make(map[string]*family),
	}
}

// Now returns the registry's current time, or the zero time when no clock
// was injected.
func (r *Registry) Now() time.Time {
	if r.clock == nil {
		return time.Time{}
	}
	return r.clock()
}

// Since returns the elapsed time from t per the injected clock, or 0 when
// no clock was injected (so duration observations become no-cost zeros in
// simulation instead of nondeterministic wall-clock reads).
func (r *Registry) Since(t time.Time) time.Duration {
	if r.clock == nil {
		return 0
	}
	return r.clock().Sub(t)
}

// family is one named metric with zero or more label dimensions. Children
// are the concrete per-label-set instruments.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []int64 // histogram upper bounds, nil otherwise

	mu sync.Mutex
	// children maps joined label values to *Counter/*Gauge/*Histogram.
	children map[string]any //lint:guarded-by mu
	// order preserves insertion order for stable exposition.
	order []childEntry //lint:guarded-by mu
}

type childEntry struct {
	values []string
	metric any
}

// lookup returns the family registered under name, creating it if absent.
func (r *Registry) lookup(name, help string, k kind, labels []string, buckets []int64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic("telemetry: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]int64(nil), buckets...),
		children: make(map[string]any),
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// child returns the instrument for one label-value set, creating it via
// make if absent. Callers resolve children once and keep the pointer; this
// path locks and may allocate.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic("telemetry: metric " + f.name + " used with wrong label count")
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := make()
	f.children[key] = m
	f.order = append(f.order, childEntry{values: append([]string(nil), values...), metric: m})
	return m
}

// families snapshots the registered families in registration order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.order...)
}

// snapshotChildren returns a family's children in a stable order: label
// sets sorted lexicographically (registration order is concurrent-join
// dependent, so sorting keeps exposition diffable).
func (f *family) snapshotChildren() []childEntry {
	f.mu.Lock()
	out := append([]childEntry(nil), f.order...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
