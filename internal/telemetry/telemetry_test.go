package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("squid_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter("squid_test_total", "a counter"); again != c {
		t.Fatalf("re-registering a counter must return the same instance")
	}

	g := r.Gauge("squid_keys", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge value = %d, want 7", got)
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("squid_x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("squid_x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("squid_hops", "hops", []int64{1, 3, 8})
	for _, v := range []int64{0, 1, 2, 3, 4, 9, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 119 {
		t.Fatalf("sum = %d, want 119", got)
	}
	// Cumulative: <=1: {0,1} = 2; <=3: +{2,3} = 4; <=8: +{4} = 5; +Inf: 7.
	want := []uint64{2, 4, 5, 7}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestVecChildrenCachedAndLabeled(t *testing.T) {
	r := NewRegistry(nil)
	v := r.CounterVec("squid_rpc_total", "per-node RPCs", "node", "kind")
	a := v.With("n1", "find")
	b := v.With("n1", "find")
	if a != b {
		t.Fatalf("With must cache children per label set")
	}
	v.With("n2", "state").Add(3)
	a.Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE squid_rpc_total counter",
		`squid_rpc_total{node="n1",kind="find"} 1`,
		`squid_rpc_total{node="n2",kind="state"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry(nil)
	v := r.CounterVec("squid_y_total", "", "node")
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong label count should panic")
		}
	}()
	v.With("a", "b")
}

func TestPrometheusHistogramRendering(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("squid_lat_ns", "latency", []int64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE squid_lat_ns histogram",
		`squid_lat_ns_bucket{le="100"} 1`,
		`squid_lat_ns_bucket{le="1000"} 2`,
		`squid_lat_ns_bucket{le="+Inf"} 3`,
		"squid_lat_ns_sum 5550",
		"squid_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestInjectedClock(t *testing.T) {
	r := NewRegistry(nil)
	if !r.Now().IsZero() {
		t.Fatalf("nil clock: Now must be the zero time")
	}
	if d := r.Since(time.Time{}); d != 0 {
		t.Fatalf("nil clock: Since must be 0, got %v", d)
	}

	base := time.Unix(1000, 0)
	now := base
	r2 := NewRegistry(func() time.Time { return now })
	if !r2.Now().Equal(base) {
		t.Fatalf("injected clock not used")
	}
	now = base.Add(3 * time.Second)
	if d := r2.Since(base); d != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", d)
	}
}

// TestCounterIncAllocFree pins the hot-path contract: once a family
// child is resolved, increments and observes allocate nothing.
func TestCounterIncAllocFree(t *testing.T) {
	r := NewRegistry(nil)
	c := r.CounterVec("squid_test_total", "", "node").With("n1")
	g := r.Gauge("squid_keys", "")
	h := r.Histogram("squid_lat_ns", "", []int64{1, 2, 4, 8})
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		h.Observe(5)
	}); n != 0 {
		t.Fatalf("hot-path metric ops allocate: %v allocs/run", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry(nil)
	c := r.CounterVec("squid_bench_total", "", "node").With("n1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() == 0 {
		b.Fatal("counter did not count")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry(nil)
	h := r.Histogram("squid_bench_hist", "", []int64{1, 2, 4, 8, 16, 32})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 63))
	}
}
