package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("squid_http_total", "served").Add(2)
	h := NewHandler(reg, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "squid_http_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("/traces with nil store: status = %d, want 404", rec.Code)
	}
}

func TestHandlerTraces(t *testing.T) {
	reg := NewRegistry(nil)
	store := NewTraceStore(8)
	store.Add(sampleTrace())
	h := NewHandler(reg, store)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/traces status = %d", rec.Code)
	}
	var summaries []traceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &summaries); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(summaries) != 1 || summaries[0].QID != 7 || !summaries[0].Partial || summaries[0].Spans != 4 {
		t.Fatalf("/traces = %+v", summaries)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?id=7", nil))
	if rec.Code != 200 {
		t.Fatalf("/trace status = %d", rec.Code)
	}
	var tr Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if tr.QID != 7 || len(tr.Spans) != 4 {
		t.Fatalf("/trace = %+v", tr)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?id=99", nil))
	if rec.Code != 404 {
		t.Fatalf("/trace for unknown id: status = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 400 {
		t.Fatalf("/trace without id: status = %d, want 400", rec.Code)
	}
}
