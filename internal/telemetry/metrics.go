package telemetry

import "sync/atomic"

// Counter is a monotonically increasing value. Inc/Add are one atomic op:
// no locks, no allocation.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//lint:allocfree
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//lint:allocfree
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value snapshots the current count. Safe from any goroutine.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are one atomic op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
//
//lint:allocfree
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n (negative to decrease).
//
//lint:allocfree
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value snapshots the current value. Safe from any goroutine.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates int64 observations into fixed buckets chosen at
// registration. Observe is a short linear scan plus three atomic adds —
// no locks, no allocation. Bounds are inclusive upper limits; observations
// above the last bound land in an implicit +Inf bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	total  atomic.Uint64
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
//
//lint:allocfree
func (h *Histogram) Observe(v int64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count snapshots the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum snapshots the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets snapshots cumulative bucket counts aligned with Bounds, plus a
// final +Inf entry.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the inclusive upper bounds the histogram was built with.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, counterKind, nil, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, gaugeKind, nil, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// inclusive upper bounds (ascending).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	f := r.lookup(name, help, histogramKind, nil, bounds)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, counterKind, labels, nil)}
}

// With returns the counter for one label-value set, creating it on first
// use. Resolve once and hold the pointer on hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, gaugeKind, labels, nil)}
}

// With returns the gauge for one label-value set, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family. All
// children share one bucket layout.
func (r *Registry) HistogramVec(name, help string, bounds []int64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, histogramKind, labels, bounds)}
}

// With returns the histogram for one label-value set, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}
