package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// traceSummary is the /traces listing entry.
type traceSummary struct {
	QID     QueryID `json:"qid"`
	Partial bool   `json:"partial"`
	Spans   int    `json:"spans"`
	Matches int    `json:"matches"`
	Nodes   int    `json:"nodes"`
}

// NewHandler serves a registry and trace store over HTTP:
//
//	GET /metrics        Prometheus text exposition
//	GET /traces         JSON array of trace summaries (oldest first)
//	GET /trace?id=<qid> full JSON dump of one trace
//
// traces may be nil, in which case the trace routes answer 404.
func NewHandler(reg *Registry, traces *TraceStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		if traces == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		var out []traceSummary
		for _, qid := range traces.IDs() {
			t, ok := traces.Get(qid)
			if !ok {
				continue
			}
			out = append(out, traceSummary{
				QID:     t.QID,
				Partial: t.Partial,
				Spans:   len(t.Spans),
				Matches: t.Matches(),
				Nodes:   len(t.Nodes()),
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if traces == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		qid, err := strconv.ParseUint(req.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad or missing id parameter", http.StatusBadRequest)
			return
		}
		t, ok := traces.Get(QueryID(qid))
		if !ok {
			http.Error(w, "no trace for that query id", http.StatusNotFound)
			return
		}
		writeJSON(w, t)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
