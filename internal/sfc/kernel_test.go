package sfc

import (
	"math/rand"
	"reflect"
	"testing"
)

// kernelGeometries spans the table-driven range (dims <= kernelMaxDims,
// including the paper's production geometries 2x32 and 3x21) plus
// fallback geometries past the cap.
var kernelGeometries = []struct{ d, k int }{
	{1, 8}, {1, 64}, {2, 5}, {2, 16}, {2, 32}, {3, 4}, {3, 21},
	{4, 4}, {4, 16}, {5, 3}, {6, 2}, {6, 10}, {7, 2}, {8, 8},
}

// kernelRandomRegion builds a seeded region with up to two intervals per
// dimension (occasionally unconstrained, occasionally a single point) —
// the shapes keyword/partial/range queries produce. Unlike randomRegion
// (region_test.go) it supports 64-bit coordinates.
func kernelRandomRegion(rng *rand.Rand, d, k int) Region {
	maxc := maxCoord(k)
	dims := make([][]Interval, d)
	for i := range dims {
		switch rng.Intn(5) {
		case 0: // unconstrained
			dims[i] = []Interval{{0, maxc}}
		case 1: // single point
			p := rng.Uint64() & maxc
			dims[i] = []Interval{{p, p}}
		default:
			n := 1 + rng.Intn(2)
			for j := 0; j < n; j++ {
				a, b := rng.Uint64()&maxc, rng.Uint64()&maxc
				if a > b {
					a, b = b, a
				}
				dims[i] = append(dims[i], Interval{a, b})
			}
		}
	}
	return NewRegion(dims)
}

// alignedRandomRegion quantizes interval endpoints to a coarse 2^g-cell
// grid per dimension, with g*d capped so the exact decomposition stays
// small: the reference Clusters walk visits every boundary cell of the
// region, which for fine-grained regions in higher dimensions is
// astronomically many.
func alignedRandomRegion(rng *rand.Rand, d, k int) Region {
	g := 12 / d
	if g < 1 {
		g = 1
	}
	if g > k {
		g = k
	}
	shift := uint(k - g)
	r := kernelRandomRegion(rng, d, k)
	aligned := make([][]Interval, d)
	for i, set := range r {
		for _, iv := range set {
			aligned[i] = append(aligned[i], Interval{
				Lo: (iv.Lo >> shift) << shift,
				Hi: (iv.Hi>>shift)<<shift | (uint64(1)<<shift - 1),
			})
		}
	}
	return NewRegion(aligned)
}

// coarseClustersReference mirrors CoarseClusters on top of the reference
// refinement step.
func coarseClustersReference(c Curve, r Region, maxClusters int) []Refined {
	if r.Empty() || len(r) != c.Dims() {
		return nil
	}
	if fan := 1 << c.Dims(); maxClusters < fan {
		maxClusters = fan
	}
	frontier := []Refined{{Cluster: Cluster{}, Complete: r.coversCube(make([]uint64, c.Dims()), uint(c.Bits()))}}
	for {
		next := make([]Refined, 0, len(frontier)*2)
		done := true
		for _, cl := range frontier {
			if cl.Complete || cl.Level == c.Bits() {
				next = append(next, cl)
				continue
			}
			done = false
			next = append(next, RefineStepReference(c, cl.Cluster, r)...)
		}
		if len(next) > maxClusters {
			return frontier
		}
		frontier = next
		if done {
			return frontier
		}
	}
}

// TestKernelMatchesReference asserts the table-driven refinement is
// index-for-index identical to the Skilling reference over random regions
// and clusters on every supported geometry, for both curve families.
func TestKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, geo := range kernelGeometries {
		curves := []Curve{MustHilbert(geo.d, geo.k), MustMorton(geo.d, geo.k)}
		for _, c := range curves {
			var sc Scratch
			for trial := 0; trial < 40; trial++ {
				ar := alignedRandomRegion(rng, geo.d, geo.k)
				want := ClustersReference(c, ar)
				got := ClustersInto(nil, c, ar, &sc)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s d=%d k=%d trial %d: Clusters mismatch\nregion %v\n got %v\nwant %v",
						c.Name(), geo.d, geo.k, trial, ar, got, want)
				}

				r := kernelRandomRegion(rng, geo.d, geo.k)
				level := rng.Intn(geo.k + 1)
				prefix := rng.Uint64()
				if s := uint(geo.d * level); s < 64 {
					prefix &= uint64(1)<<s - 1
				}
				cl := Cluster{Prefix: prefix, Level: level}
				wantR := RefineStepReference(c, cl, r)
				gotR := RefineStepInto(nil, c, cl, r, &sc)
				if !reflect.DeepEqual(gotR, wantR) {
					t.Fatalf("%s d=%d k=%d trial %d: RefineStep(%v) mismatch\nregion %v\n got %v\nwant %v",
						c.Name(), geo.d, geo.k, trial, cl, r, gotR, wantR)
				}

				maxClusters := 1 << uint(rng.Intn(10))
				wantC := coarseClustersReference(c, r, maxClusters)
				gotC := CoarseClustersInto(nil, c, r, maxClusters, &sc)
				if !reflect.DeepEqual(gotC, wantC) {
					t.Fatalf("%s d=%d k=%d trial %d: CoarseClusters(%d) mismatch\nregion %v\n got %v\nwant %v",
						c.Name(), geo.d, geo.k, trial, maxClusters, r, gotC, wantC)
				}
			}
		}
	}
}

// TestKernelFallbackGeometry checks the generic fallback path (dims past
// the table cap) still matches the reference.
func TestKernelFallbackGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := MustHilbert(10, 4) // dims > kernelMaxDims: no tables
	if hilbertKernel(h) != nil {
		t.Fatal("geometry unexpectedly has tables; fallback untested")
	}
	var sc Scratch
	for trial := 0; trial < 10; trial++ {
		r := alignedRandomRegion(rng, 10, 4)
		want := ClustersReference(h, r)
		got := ClustersInto(nil, h, r, &sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback trial %d: mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestRefinementAllocFree pins the acceptance criterion: with warm scratch
// and destination buffers, the refinement inner loop performs zero
// allocations per operation.
func TestRefinementAllocFree(t *testing.T) {
	// Converted to the interface once, as the engine does (it holds the
	// space's Curve): a concrete Hilbert at the call site would heap-box
	// per call, because the generic-curve fallback path makes the
	// parameter escape.
	var h Curve = MustHilbert(3, 21)
	// Endpoints aligned to a 2^17-cell grid: the exact decomposition of an
	// unaligned region walks every boundary cell, which at 21 bits would be
	// millions of nodes per ClustersInto call (and AllocsPerRun repeats it
	// 100 times).
	const q = uint64(1) << 17
	r := NewRegion([][]Interval{
		{{0, 8*q - 1}},
		{{0, maxCoord(21)}},
		{{q, 2*q - 1}, {4 * q, 10*q - 1}},
	})
	var sc Scratch
	cl := Cluster{Prefix: 3, Level: 2}

	refined := RefineStepInto(nil, h, cl, r, &sc) // warm buffers + kernel tables
	if n := testing.AllocsPerRun(100, func() {
		refined = RefineStepInto(refined[:0], h, cl, r, &sc)
	}); n != 0 {
		t.Errorf("RefineStepInto allocates %.1f/op, want 0", n)
	}

	spans := ClustersInto(nil, h, r, &sc)
	if n := testing.AllocsPerRun(100, func() {
		spans = ClustersInto(spans[:0], h, r, &sc)
	}); n != 0 {
		t.Errorf("ClustersInto allocates %.1f/op, want 0", n)
	}

	coarse := CoarseClustersInto(nil, h, r, 64, &sc)
	if n := testing.AllocsPerRun(100, func() {
		coarse = CoarseClustersInto(coarse[:0], h, r, 64, &sc)
	}); n != 0 {
		t.Errorf("CoarseClustersInto allocates %.1f/op, want 0", n)
	}
}

// TestClustersIntoAppendBase checks that ClustersInto never merges its
// output with pre-existing entries of dst, even when spans are adjacent.
func TestClustersIntoAppendBase(t *testing.T) {
	h := MustHilbert(2, 4)
	full := FullRegion(2, 4)
	pre := []Interval{{200, 300}}
	got := ClustersInto(pre, h, full, nil)
	want := []Interval{{200, 300}, {0, 255}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Adjacent pre-existing tail must stay untouched too.
	r := NewRegion([][]Interval{{{0, 0}}, {{0, 0}}})
	spans := ClustersReference(h, r)
	if len(spans) != 1 {
		t.Fatalf("setup: %v", spans)
	}
	pre = []Interval{{0, spans[0].Lo - 1}}
	if spans[0].Lo == 0 {
		pre = []Interval{{5, 5}}
	}
	got = ClustersInto(pre, h, r, nil)
	if len(got) != 2 {
		t.Fatalf("merged across base: %v", got)
	}
}
