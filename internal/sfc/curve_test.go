package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// enumerate calls fn with every point of the cube, in lexicographic order.
func enumerate(dims, bits int, fn func(pt []uint64)) {
	pt := make([]uint64, dims)
	limit := uint64(1) << bits
	var rec func(i int)
	rec = func(i int) {
		if i == dims {
			fn(pt)
			return
		}
		for v := uint64(0); v < limit; v++ {
			pt[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

func testBijection(t *testing.T, c Curve) {
	t.Helper()
	total := uint64(1) << c.IndexBits()
	seen := make([]bool, total)
	back := make([]uint64, c.Dims())
	enumerate(c.Dims(), c.Bits(), func(pt []uint64) {
		idx := c.Encode(pt)
		if idx >= total {
			t.Fatalf("%s: Encode(%v) = %d out of range [0,%d)", c.Name(), pt, idx, total)
		}
		if seen[idx] {
			t.Fatalf("%s: index %d produced twice (second point %v)", c.Name(), idx, pt)
		}
		seen[idx] = true
		c.Decode(idx, back)
		for i := range pt {
			if back[i] != pt[i] {
				t.Fatalf("%s: Decode(Encode(%v)) = %v", c.Name(), pt, back)
			}
		}
	})
}

func TestHilbertBijectionExhaustive(t *testing.T) {
	for _, geo := range []struct{ d, k int }{
		{1, 1}, {1, 8}, {2, 1}, {2, 2}, {2, 4}, {2, 6}, {3, 1}, {3, 3}, {3, 4}, {4, 3}, {5, 2},
	} {
		testBijection(t, MustHilbert(geo.d, geo.k))
	}
}

func TestMortonBijectionExhaustive(t *testing.T) {
	for _, geo := range []struct{ d, k int }{
		{2, 4}, {2, 6}, {3, 3}, {3, 4}, {4, 3},
	} {
		testBijection(t, MustMorton(geo.d, geo.k))
	}
}

// TestHilbertAdjacency verifies the defining property of the Hilbert curve:
// consecutive indices map to points at L1 distance exactly 1.
func TestHilbertAdjacency(t *testing.T) {
	for _, geo := range []struct{ d, k int }{
		{2, 4}, {2, 6}, {3, 3}, {3, 4}, {4, 2},
	} {
		h := MustHilbert(geo.d, geo.k)
		prev := make([]uint64, geo.d)
		cur := make([]uint64, geo.d)
		h.Decode(0, prev)
		total := uint64(1) << h.IndexBits()
		for idx := uint64(1); idx < total; idx++ {
			h.Decode(idx, cur)
			dist := uint64(0)
			for i := range cur {
				d := cur[i] - prev[i]
				if cur[i] < prev[i] {
					d = prev[i] - cur[i]
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("d=%d k=%d: indices %d,%d map to %v,%v (L1 distance %d, want 1)",
					geo.d, geo.k, idx-1, idx, prev, cur, dist)
			}
			copy(prev, cur)
		}
	}
}

// TestHilbertDigitalCausality verifies that all points of a level-l subcube
// share the first l*d index bits (the property the whole query engine relies
// on, paper Section 3.1.1).
func TestHilbertDigitalCausality(t *testing.T) {
	h := MustHilbert(2, 6)
	pt := make([]uint64, 2)
	for level := 1; level <= 6; level++ {
		shift := uint(2 * (6 - level))
		coordShift := uint(6 - level)
		// Group every point by its subcube and check index prefixes agree.
		prefixes := map[[2]uint64]uint64{}
		enumerate(2, 6, func(p []uint64) {
			copy(pt, p)
			idx := h.Encode(pt)
			cell := [2]uint64{pt[0] >> coordShift, pt[1] >> coordShift}
			prefix := idx >> shift
			if prev, ok := prefixes[cell]; ok {
				if prev != prefix {
					t.Fatalf("level %d: subcube %v has index prefixes %x and %x", level, cell, prev, prefix)
				}
			} else {
				prefixes[cell] = prefix
			}
		})
		// Distinct subcubes must have distinct prefixes (bijection at the
		// subcube granularity).
		seen := map[uint64]bool{}
		for _, p := range prefixes {
			if seen[p] {
				t.Fatalf("level %d: prefix %x shared by two subcubes", level, p)
			}
			seen[p] = true
		}
	}
}

// TestHilbertRoundTripQuick property-tests round trips on large geometries
// that cannot be enumerated.
func TestHilbertRoundTripQuick(t *testing.T) {
	for _, geo := range []struct{ d, k int }{
		{2, 32}, {3, 21}, {4, 16}, {6, 10}, {1, 64}, {2, 31},
	} {
		h := MustHilbert(geo.d, geo.k)
		mask := maxCoord(geo.k)
		f := func(raw []uint64) bool {
			pt := make([]uint64, geo.d)
			for i := range pt {
				if i < len(raw) {
					pt[i] = raw[i] & mask
				}
			}
			idx := h.Encode(pt)
			back := make([]uint64, geo.d)
			h.Decode(idx, back)
			for i := range pt {
				if back[i] != pt[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("d=%d k=%d: %v", geo.d, geo.k, err)
		}
	}
}

// TestHilbertIndexRangeQuick checks that encoded indices stay within
// [0, 2^(d*k)) for non-degenerate geometries.
func TestHilbertIndexRangeQuick(t *testing.T) {
	h := MustHilbert(3, 15)
	limit := uint64(1) << h.IndexBits()
	mask := maxCoord(15)
	f := func(a, b, c uint64) bool {
		return h.Encode([]uint64{a & mask, b & mask, c & mask}) < limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMortonMatchesManualInterleave pins the Morton bit layout: dimension 0
// owns the most significant bit of each d-bit group.
func TestMortonMatchesManualInterleave(t *testing.T) {
	m := MustMorton(2, 8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		x := uint64(rng.Intn(256))
		y := uint64(rng.Intn(256))
		var want uint64
		for b := 7; b >= 0; b-- {
			want = want<<1 | (x>>uint(b))&1
			want = want<<1 | (y>>uint(b))&1
		}
		if got := m.Encode([]uint64{x, y}); got != want {
			t.Fatalf("Encode(%d,%d) = %b, want %b", x, y, got, want)
		}
	}
}

// TestHilbertLocalityBeatsMorton quantifies locality preservation: the mean
// L1 distance in space between curve neighbors must be exactly 1 for Hilbert
// and strictly larger for Morton.
func TestHilbertLocalityBeatsMorton(t *testing.T) {
	h := MustHilbert(2, 6)
	m := MustMorton(2, 6)
	meanJump := func(c Curve) float64 {
		prev := make([]uint64, 2)
		cur := make([]uint64, 2)
		c.Decode(0, prev)
		total := uint64(1) << c.IndexBits()
		sum := 0.0
		for idx := uint64(1); idx < total; idx++ {
			c.Decode(idx, cur)
			for i := range cur {
				if cur[i] > prev[i] {
					sum += float64(cur[i] - prev[i])
				} else {
					sum += float64(prev[i] - cur[i])
				}
			}
			copy(prev, cur)
		}
		return sum / float64(total-1)
	}
	hj, mj := meanJump(h), meanJump(m)
	if hj != 1 {
		t.Errorf("hilbert mean neighbor jump = %v, want 1", hj)
	}
	if mj <= hj {
		t.Errorf("morton mean neighbor jump = %v, expected > hilbert's %v", mj, hj)
	}
}

func TestCurveConstructorErrors(t *testing.T) {
	cases := []struct{ d, k int }{
		{0, 4}, {-1, 4}, {2, 0}, {2, -3}, {2, 33}, {65, 1}, {9, 8},
	}
	for _, c := range cases {
		if _, err := NewHilbert(c.d, c.k); err == nil {
			t.Errorf("NewHilbert(%d,%d): expected error", c.d, c.k)
		}
		if _, err := NewMorton(c.d, c.k); err == nil {
			t.Errorf("NewMorton(%d,%d): expected error", c.d, c.k)
		}
	}
	if _, err := NewHilbert(2, 32); err != nil {
		t.Errorf("NewHilbert(2,32): %v", err)
	}
	if _, err := NewHilbert(1, 64); err != nil {
		t.Errorf("NewHilbert(1,64): %v", err)
	}
}

func TestCurveAccessors(t *testing.T) {
	h := MustHilbert(3, 21)
	if h.Dims() != 3 || h.Bits() != 21 || h.IndexBits() != 63 || h.Name() != "hilbert" {
		t.Errorf("accessors: %d %d %d %q", h.Dims(), h.Bits(), h.IndexBits(), h.Name())
	}
	m := MustMorton(2, 16)
	if m.Dims() != 2 || m.Bits() != 16 || m.IndexBits() != 32 || m.Name() != "morton" {
		t.Errorf("accessors: %d %d %d %q", m.Dims(), m.Bits(), m.IndexBits(), m.Name())
	}
}

func TestEncodePanicsOnBadInput(t *testing.T) {
	h := MustHilbert(2, 4)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("wrong dims", func() { h.Encode([]uint64{1}) })
	mustPanic("coord too large", func() { h.Encode([]uint64{16, 0}) })
	mustPanic("decode wrong dims", func() { h.Decode(0, make([]uint64, 3)) })
	m := MustMorton(2, 4)
	mustPanic("morton wrong dims", func() { m.Encode([]uint64{1, 2, 3}) })
	mustPanic("morton decode wrong dims", func() { m.Decode(0, make([]uint64, 1)) })
}

// TestHilbert64BitFullSpace exercises the d*k == 64 boundary where shifts
// and masks are most fragile.
func TestHilbert64BitFullSpace(t *testing.T) {
	for _, geo := range []struct{ d, k int }{{2, 32}, {4, 16}, {8, 8}, {1, 64}} {
		h := MustHilbert(geo.d, geo.k)
		rng := rand.New(rand.NewSource(42))
		pt := make([]uint64, geo.d)
		back := make([]uint64, geo.d)
		mask := maxCoord(geo.k)
		for trial := 0; trial < 500; trial++ {
			for i := range pt {
				pt[i] = rng.Uint64() & mask
			}
			h.Decode(h.Encode(pt), back)
			for i := range pt {
				if back[i] != pt[i] {
					t.Fatalf("d=%d k=%d: round trip failed for %v -> %v", geo.d, geo.k, pt, back)
				}
			}
		}
		// Extremes.
		for i := range pt {
			pt[i] = mask
		}
		h.Decode(h.Encode(pt), back)
		for i := range pt {
			if back[i] != mask {
				t.Fatalf("d=%d k=%d: max corner round trip failed", geo.d, geo.k)
			}
		}
	}
}

func BenchmarkHilbertEncode2D32(b *testing.B) {
	h := MustHilbert(2, 32)
	pt := []uint64{123456789, 987654321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Encode(pt)
	}
}

func BenchmarkHilbertDecode3D21(b *testing.B) {
	h := MustHilbert(3, 21)
	pt := make([]uint64, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Decode(uint64(i)*2654435761, pt)
	}
}
