package sfc

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is an inclusive range [Lo, Hi] of coordinate values or curve
// indices. Lo <= Hi always holds for normalized intervals.
type Interval struct {
	Lo, Hi uint64
}

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v uint64) bool { return iv.Lo <= v && v <= iv.Hi }

// Overlaps reports whether the two intervals share at least one value.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Covers reports whether o is entirely within iv.
func (iv Interval) Covers(o Interval) bool { return iv.Lo <= o.Lo && o.Hi <= iv.Hi }

// Count returns the number of values in the interval. A full 64-bit interval
// would overflow; callers in this module only count intervals of at most
// 2^63 values (index spaces are capped at dims*bits <= 64 and counting is
// used for diagnostics only).
func (iv Interval) Count() uint64 { return iv.Hi - iv.Lo + 1 }

// String renders the interval as "[lo,hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// IntervalSet is a union of intervals over one dimension. Normalized sets
// are sorted by Lo, non-overlapping and non-adjacent (gaps of >= 1 between
// consecutive intervals).
type IntervalSet []Interval

// NormalizeIntervals sorts and merges an arbitrary collection of intervals
// into a normalized IntervalSet. Intervals with Lo > Hi are dropped.
func NormalizeIntervals(ivs []Interval) IntervalSet {
	set := make(IntervalSet, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Lo <= iv.Hi {
			set = append(set, iv)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i].Lo < set[j].Lo })
	out := set[:0]
	for _, iv := range set {
		if n := len(out); n > 0 && iv.Lo <= saturatingInc(out[n-1].Hi) {
			if iv.Hi > out[n-1].Hi {
				out[n-1].Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func saturatingInc(v uint64) uint64 {
	if v == ^uint64(0) {
		return v
	}
	return v + 1
}

// Overlaps reports whether any interval in the set overlaps iv.
// The set must be normalized.
func (s IntervalSet) Overlaps(iv Interval) bool {
	// First interval whose Hi >= iv.Lo is the only candidate.
	//lint:allow-allocfree non-escaping closure; sort.Search does not retain it
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= iv.Lo })
	return i < len(s) && s[i].Lo <= iv.Hi
}

// Covers reports whether iv is entirely within a single interval of the set.
// For a normalized set this is equivalent to the set covering iv.
func (s IntervalSet) Covers(iv Interval) bool {
	//lint:allow-allocfree non-escaping closure; sort.Search does not retain it
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= iv.Lo })
	return i < len(s) && s[i].Covers(iv)
}

// Contains reports whether v is in the set.
func (s IntervalSet) Contains(v uint64) bool {
	return s.Overlaps(Interval{v, v})
}

// Region is a subset of the cube [0,2^bits)^dims shaped as a product of
// per-dimension interval unions: a point belongs to the region iff every
// coordinate lies in its dimension's IntervalSet. This is exactly the shape
// of the paper's queries: each keyword, partial keyword, wildcard or range
// constrains one dimension independently.
type Region []IntervalSet

// NewRegion builds a normalized region from raw per-dimension intervals.
func NewRegion(dims [][]Interval) Region {
	r := make(Region, len(dims))
	for i, ivs := range dims {
		r[i] = NormalizeIntervals(ivs)
	}
	return r
}

// FullRegion returns the region covering the whole cube of the given curve
// geometry (every dimension unconstrained).
func FullRegion(dims, bits int) Region {
	full := Interval{0, maxCoord(bits)}
	r := make(Region, dims)
	for i := range r {
		r[i] = IntervalSet{full}
	}
	return r
}

func maxCoord(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// Empty reports whether the region contains no points (some dimension has an
// empty interval set).
func (r Region) Empty() bool {
	for _, s := range r {
		if len(s) == 0 {
			return true
		}
	}
	return len(r) == 0
}

// ContainsPoint reports whether the point lies in the region.
func (r Region) ContainsPoint(pt []uint64) bool {
	if len(pt) != len(r) {
		return false
	}
	for i, s := range r {
		if !s.Contains(pt[i]) {
			return false
		}
	}
	return true
}

// IsPoint reports whether the region is a single point, and returns it.
func (r Region) IsPoint() ([]uint64, bool) {
	pt := make([]uint64, len(r))
	for i, s := range r {
		if len(s) != 1 || s[0].Lo != s[0].Hi {
			return nil, false
		}
		pt[i] = s[0].Lo
	}
	return pt, true
}

// overlapsCube reports whether the region intersects the axis-aligned cube
// whose coordinates are cell[i]<<shift .. ((cell[i]+1)<<shift)-1.
func (r Region) overlapsCube(cell []uint64, shift uint) bool {
	for i, s := range r {
		lo := cell[i] << shift
		hi := lo | ((uint64(1) << shift) - 1)
		if !s.Overlaps(Interval{lo, hi}) {
			return false
		}
	}
	return true
}

// coversCube reports whether the cube (as in overlapsCube) lies entirely
// inside the region.
func (r Region) coversCube(cell []uint64, shift uint) bool {
	for i, s := range r {
		lo := cell[i] << shift
		hi := lo | ((uint64(1) << shift) - 1)
		if !s.Covers(Interval{lo, hi}) {
			return false
		}
	}
	return true
}

// String renders the region, one dimension per semicolon-separated group.
func (r Region) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range r {
		if i > 0 {
			b.WriteString("; ")
		}
		for j, iv := range s {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(iv.String())
		}
	}
	b.WriteByte('}')
	return b.String()
}
