// Package sfc implements d-dimensional space-filling curves and the
// region-to-cluster decomposition that Squid's query engine is built on.
//
// A curve maps points in the discrete cube [0,2^k)^d bijectively to indices
// in [0, 2^(d*k)). The Hilbert curve (the curve used by the paper) is
// locality preserving: points that are close on the curve are close in the
// cube. Both the Hilbert curve and, for comparison, the Z-order (Morton)
// curve are provided behind the Curve interface.
//
// The package also implements the recursive machinery of the paper's query
// engine (Schmidt & Parashar, HPDC 2003, Section 3.4):
//
//   - Region: a hyper-rectangular (per-dimension union of intervals) subset
//     of the cube, produced from a keyword/wildcard/range query.
//   - Clusters: the decomposition of a Region into maximal contiguous curve
//     segments ("clusters" in the paper's terminology).
//   - RefineStep: one level of the recursive refinement tree (paper Figs. 6-7),
//     the unit of work a peer performs when it receives a cluster it does not
//     fully own.
//
// Digital causality — all indices within the level-l subcube containing a
// point share their first l*d bits — is what lets clusters be identified by
// (prefix, level) pairs and refined independently on different peers.
package sfc
