package sfc_test

import (
	"fmt"

	"squid/internal/sfc"
)

// ExampleHilbert_Encode shows the basic point→index mapping.
func ExampleHilbert_Encode() {
	h := sfc.MustHilbert(2, 2) // 4x4 grid, 16 cells
	// Walk the whole curve: consecutive indices are adjacent cells.
	pt := make([]uint64, 2)
	for idx := uint64(0); idx < 4; idx++ {
		h.Decode(idx, pt)
		fmt.Printf("index %d -> (%d,%d)\n", idx, pt[0], pt[1])
	}
	fmt.Println("encode(1,1) =", h.Encode([]uint64{1, 1}))
	// Output:
	// index 0 -> (0,0)
	// index 1 -> (1,0)
	// index 2 -> (1,1)
	// index 3 -> (0,1)
	// encode(1,1) = 2
}

// ExampleClusters reproduces the paper's Figure 5: a column query crosses
// the curve several times (many clusters), an aligned square is one
// contiguous segment.
func ExampleClusters() {
	h := sfc.MustHilbert(2, 3) // 8x8 grid

	column := sfc.NewRegion([][]sfc.Interval{{{Lo: 0, Hi: 0}}, {{Lo: 0, Hi: 7}}})
	fmt.Println("column (0,*):", len(sfc.Clusters(h, column)), "clusters")

	square := sfc.NewRegion([][]sfc.Interval{{{Lo: 4, Hi: 7}}, {{Lo: 0, Hi: 7}}})
	fmt.Println("half-space (1*,*):", len(sfc.Clusters(h, square)), "cluster(s)")
	// Output:
	// column (0,*): 3 clusters
	// half-space (1*,*): 1 cluster(s)
}

// ExampleRefineStep shows one step of the paper's recursive query
// refinement (Figs. 6-7): the query (11,*) on a base-2 2-D space.
func ExampleRefineStep() {
	h := sfc.MustHilbert(2, 2)
	// x fixed to 11 (=3), y free: the rightmost column.
	region := sfc.NewRegion([][]sfc.Interval{{{Lo: 3, Hi: 3}}, {{Lo: 0, Hi: 3}}})
	for _, child := range sfc.RefineStep(h, sfc.Cluster{}, region) {
		span := child.Span(h)
		fmt.Printf("cluster %s covers indices [%d,%d]\n", child.Cluster, span.Lo, span.Hi)
	}
	// Output:
	// cluster 2/1 covers indices [8,11]
	// cluster 3/1 covers indices [12,15]
}
