package sfc

import "sync"

// This file implements the table-driven Hilbert refinement kernel.
//
// RefineStep and the cluster decompositions spend essentially all their
// time recovering the subcube of each child cluster: the straightforward
// implementation runs a full Skilling inverse transform — O(bits·dims) bit
// operations — for every one of the 2^dims children at every level of the
// refinement tree. But a Hilbert curve is self-similar: the order in which
// a node's children are visited, and the orientation of the curve inside
// each child, depend only on a bounded per-node "state" (a rotation/
// reflection of the canonical first-level curve — Butz's transformation
// matrices, Lawder's state diagrams). For a fixed geometry there are
// finitely many states, so enumerating a node's children reduces to two
// table lookups per child:
//
//	cell[state][digit] -> subcube position of that curve-order child
//	next[state][digit] -> state governing the child's own subtree
//
// Rather than hard-coding a published state diagram (which would describe
// some Hilbert variant, not necessarily Skilling's), the tables are
// derived once per (dims, bits) geometry from the Skilling reference
// transform itself: a tree node's state is identified with its
// digit->cell map, and the state graph is discovered by BFS from the
// root. This keeps the kernel index-for-index identical to the reference
// oracle by construction; the equivalence is asserted exhaustively by the
// property and fuzz tests in kernel_test.go.

const (
	// kernelMaxDims bounds the per-state table width (2^dims entries) and,
	// more importantly, the one-time build cost: discovering a state costs
	// 2^dims probe decodes, and up to dims*2^dims states exist, so build
	// work grows like dims*4^dims. Geometries beyond the cap — far past
	// Squid's 2-3 dimensional keyword spaces — fall back to the reference
	// transform.
	kernelMaxDims = 6
	// kernelMaxStates aborts table construction if the state count ever
	// escaped its d*2^d bound (it cannot for a self-similar curve; this is
	// a safety valve, not a tuning knob).
	kernelMaxStates = 1 << 13
)

// kernel holds the refinement state-transition tables of one geometry.
// cell and next are indexed [state*fan + digit]; a cell value packs one
// bit per dimension, dimension i at bit position dims-1-i (the same
// packing interleave uses for index digits).
type kernel struct {
	dims, bits int
	fan        int
	cell       []uint16
	next       []uint16
}

type geometry struct{ dims, bits int }

// kernels caches built tables per geometry (value is *kernel, nil when
// the geometry is out of table range). Curves are stateless values, so
// the cache is global.
var kernels sync.Map

// hilbertKernel returns the transition tables for h, building and caching
// them on first use; nil when the geometry is unsupported.
//
//lint:allow-allocfree memoized cold build; steady-state hits are lock-free map loads
func hilbertKernel(h Hilbert) *kernel {
	g := geometry{h.dims, h.bits}
	if v, ok := kernels.Load(g); ok {
		k, _ := v.(*kernel)
		return k
	}
	v, _ := kernels.LoadOrStore(g, buildKernel(h))
	k, _ := v.(*kernel)
	return k
}

// buildKernel derives the tables by breadth-first discovery of the state
// graph, probing the Skilling transform for each state's signature.
func buildKernel(h Hilbert) *kernel {
	d, bits := h.dims, h.bits
	if d > kernelMaxDims {
		return nil
	}
	fan := 1 << d
	k := &kernel{dims: d, bits: bits, fan: fan}
	pt := make([]uint64, d)
	// sigOf probes the digit->cell map of the tree node (prefix, level):
	// byte g is the subcube position of curve-order child g, recovered by
	// decoding the child's lowest index and keeping the one coordinate bit
	// that distinguishes it within the parent subcube.
	sigOf := func(prefix uint64, level int) string {
		idxShift := uint(d * (bits - level - 1))
		coordShift := uint(bits - level - 1)
		sig := make([]byte, fan)
		for g := 0; g < fan; g++ {
			h.Decode((prefix<<d|uint64(g))<<idxShift, pt)
			var z byte
			for i := 0; i < d; i++ {
				z |= byte((pt[i]>>coordShift)&1) << (d - 1 - i)
			}
			sig[g] = z
		}
		return string(sig)
	}
	type rep struct {
		prefix uint64
		level  int
		state  int
	}
	ids := make(map[string]int)
	var queue []rep
	add := func(prefix uint64, level int, sig string) int {
		if id, ok := ids[sig]; ok {
			return id
		}
		id := len(ids)
		ids[sig] = id
		for g := 0; g < fan; g++ {
			k.cell = append(k.cell, uint16(sig[g]))
		}
		k.next = append(k.next, make([]uint16, fan)...)
		queue = append(queue, rep{prefix, level, id})
		return id
	}
	add(0, 0, sigOf(0, 0))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.level+2 > bits {
			// The node's children are leaf cells, never refined further.
			// BFS visits representatives in level order, so a state first
			// seen this deep only ever occurs this deep: its next row is
			// never consulted and may stay zero.
			continue
		}
		for g := 0; g < fan; g++ {
			child := n.prefix<<d | uint64(g)
			id := add(child, n.level+1, sigOf(child, n.level+1))
			if len(ids) > kernelMaxStates {
				return nil
			}
			k.next[n.state*fan+g] = uint16(id)
		}
	}
	return k
}
