package sfc

// Allocation-free variants of the refinement entry points. The exported
// RefineStep/Clusters/CoarseClusters wrappers in cluster.go delegate here;
// hot callers (the query engine, the decomposition benchmarks) call the
// ...Into forms directly with a reused destination slice and Scratch so
// the refinement inner loop performs no allocation at all.

// Scratch holds the reusable buffers of the ...Into refinement entry
// points. The zero value is ready to use. A Scratch must not be shared by
// concurrent callers; buffers grow to the largest geometry seen and are
// retained across calls.
type Scratch struct {
	coords   []uint64 // bits+1 rows of dims cell coordinates
	frontier []Refined
	spill    []Refined
	rf       refiner // cached refiner of the last standard curve seen
	rfg      refiner // generic-curve refiner, rebuilt per call
}

// coordRows returns the coordinate arena: bits+1 rows of dims values, one
// row per refinement level (row l holds the cell coordinates, l
// significant bits each, of the tree node currently visited at level l).
func (sc *Scratch) coordRows(dims, bits int) []uint64 {
	n := (bits + 1) * dims
	if cap(sc.coords) < n {
		//lint:allow-allocfree amortized arena growth; sized once per curve geometry
		sc.coords = make([]uint64, n)
	}
	return sc.coords[:n]
}

// Refiner modes. The standard curves never store the Curve interface value
// in the (heap-resident) Scratch — that would make the interface parameter
// of every ...Into entry point escape, forcing callers that pass a concrete
// Hilbert/Morton to heap-allocate the conversion on each call.
const (
	modeGeneric = iota // unknown Curve implementation: interface Decode per child
	modeKernel         // table-driven Hilbert
	modeHilbert        // Hilbert past the table range: concrete Decode per child
	modeZorder         // Morton: cell == digit, stateless
)

// refiner enumerates the child subcubes of refinement-tree nodes for one
// curve: through the transition tables when available, through a decode of
// the child's lowest index otherwise.
type refiner struct {
	mode int
	kern *kernel // modeKernel
	hil  Hilbert // modeKernel, modeHilbert (cache key / fallback decoder)
	c    Curve   // modeGeneric only

	dims, bits int
	fan        int
}

func (sc *Scratch) hilbertRefiner(h Hilbert) *refiner {
	if (sc.rf.mode == modeKernel || sc.rf.mode == modeHilbert) && sc.rf.hil == h {
		return &sc.rf
	}
	rf := refiner{mode: modeHilbert, hil: h, dims: h.dims, bits: h.bits, fan: 1 << h.dims}
	if k := hilbertKernel(h); k != nil {
		rf.mode = modeKernel
		rf.kern = k
	}
	sc.rf = rf
	return &sc.rf
}

func (sc *Scratch) mortonRefiner(m Morton) *refiner {
	if sc.rf.mode == modeZorder && sc.rf.dims == m.dims && sc.rf.bits == m.bits {
		return &sc.rf
	}
	sc.rf = refiner{mode: modeZorder, dims: m.dims, bits: m.bits, fan: 1 << m.dims}
	return &sc.rf
}

// refinerSetup returns the refiner for c: sc's cached one for the standard
// curves. Foreign Curve implementations get sc.rfg rebuilt on every call —
// dynamic types need not be comparable, so the cache key test that would
// make reuse safe is unavailable (and the rebuild is a struct store).
func refinerSetup(c Curve, sc *Scratch) *refiner {
	switch cv := c.(type) {
	case Hilbert:
		return sc.hilbertRefiner(cv)
	case Morton:
		return sc.mortonRefiner(cv)
	}
	sc.rfg = refiner{mode: modeGeneric, c: c, dims: c.Dims(), bits: c.Bits(), fan: 1 << c.Dims()}
	return &sc.rfg
}

// stateAt fills coords with the cell coordinates of the tree node
// (prefix, level) — level significant bits per dimension — and returns
// the node's state: O(level) table lookups on the kernel path, one
// reference decode otherwise.
func (rf *refiner) stateAt(prefix uint64, level int, coords []uint64) int {
	d := rf.dims
	for i := 0; i < d; i++ {
		coords[i] = 0
	}
	if level == 0 {
		return 0
	}
	switch rf.mode {
	case modeKernel:
		state := 0
		for j := 0; j < level; j++ {
			g := int(prefix>>uint((level-1-j)*d)) & (rf.fan - 1)
			z := rf.kern.cell[state*rf.fan+g]
			for i := 0; i < d; i++ {
				coords[i] = coords[i]<<1 | uint64(z>>uint(d-1-i))&1
			}
			state = int(rf.kern.next[state*rf.fan+g])
		}
		return state
	case modeZorder:
		for j := 0; j < level; j++ {
			g := prefix >> uint((level-1-j)*d)
			for i := 0; i < d; i++ {
				coords[i] = coords[i]<<1 | (g>>uint(d-1-i))&1
			}
		}
		return 0
	case modeHilbert:
		rf.hil.Decode(prefix<<uint(d*(rf.bits-level)), coords)
	default:
		rf.c.Decode(prefix<<uint(d*(rf.bits-level)), coords)
	}
	for i := 0; i < d; i++ {
		coords[i] >>= uint(rf.bits - level)
	}
	return 0
}

// child fills cc with the cell coordinates of curve-order child g of the
// node (prefix, level, state) whose own coordinates are pc, and returns
// the child's state.
func (rf *refiner) child(prefix uint64, level, state, g int, pc, cc []uint64) int {
	d := rf.dims
	switch rf.mode {
	case modeKernel:
		z := rf.kern.cell[state*rf.fan+g]
		for i := 0; i < d; i++ {
			cc[i] = pc[i]<<1 | uint64(z>>uint(d-1-i))&1
		}
		return int(rf.kern.next[state*rf.fan+g])
	case modeZorder:
		for i := 0; i < d; i++ {
			cc[i] = pc[i]<<1 | uint64(g>>uint(d-1-i))&1
		}
		return 0
	}
	childLevel := level + 1
	idx := (prefix<<uint(d) | uint64(g)) << uint(d*(rf.bits-childLevel))
	if rf.mode == modeHilbert {
		rf.hil.Decode(idx, cc)
	} else {
		rf.c.Decode(idx, cc)
	}
	for i := 0; i < d; i++ {
		cc[i] >>= uint(rf.bits - childLevel)
	}
	return 0
}

// RefineStepInto is RefineStep appending into dst: children of cl whose
// subcube intersects r, in curve order. With a reused dst and sc the call
// allocates nothing. sc may be nil at the cost of a transient scratch.
//
//lint:allocfree
func RefineStepInto(dst []Refined, c Curve, cl Cluster, r Region, sc *Scratch) []Refined {
	k := c.Bits()
	if cl.Level >= k {
		return dst
	}
	if sc == nil {
		sc = &Scratch{}
	}
	d := c.Dims()
	rf := refinerSetup(c, sc)
	//lint:allow-allocfree amortized arena growth, inlined from coordRows
	rows := sc.coordRows(d, k)
	pc := rows[:d]
	cc := rows[d : 2*d]
	state := rf.stateAt(cl.Prefix, cl.Level, pc)
	childLevel := cl.Level + 1
	coordShift := uint(k - childLevel)
	for g := 0; g < rf.fan; g++ {
		rf.child(cl.Prefix, cl.Level, state, g, pc, cc)
		if !r.overlapsCube(cc, coordShift) {
			continue
		}
		dst = append(dst, Refined{
			Cluster:  Cluster{Prefix: cl.Prefix<<uint(d) | uint64(g), Level: childLevel},
			Complete: r.coversCube(cc, coordShift),
		})
	}
	return dst
}

// ClustersInto is Clusters appending into dst. The decomposition appended
// by one call is sorted, disjoint and non-adjacent; pre-existing entries
// of dst are never merged with. With a reused dst and sc the steady-state
// walk allocates nothing.
//
//lint:allocfree
func ClustersInto(dst []Interval, c Curve, r Region, sc *Scratch) []Interval {
	if r.Empty() || len(r) != c.Dims() {
		return dst
	}
	if sc == nil {
		//lint:allow-allocfree nil-sc convenience path; hot callers pass a reused Scratch
		sc = &Scratch{}
	}
	d, k := c.Dims(), c.Bits()
	//lint:allow-allocfree amortized arena growth, inlined from coordRows
	rows := sc.coordRows(d, k)
	root := rows[:d]
	for i := range root {
		root[i] = 0
	}
	if r.coversCube(root, uint(k)) {
		return append(dst, spanOf(0, uint(d*k)))
	}
	w := clusterWalk{rf: refinerSetup(c, sc), r: r, rows: rows, d: d, k: k, base: len(dst)}
	return w.walk(dst, 0, 0, 0)
}

// clusterWalk is the depth-first cluster decomposition: it descends the
// refinement tree in curve order carrying (state, cell coordinates) down,
// so each child costs two table lookups instead of a curve decode.
type clusterWalk struct {
	rf   *refiner
	r    Region
	rows []uint64
	d, k int
	base int // merge only above this dst index
}

func (w *clusterWalk) walk(dst []Interval, prefix uint64, level, state int) []Interval {
	d := w.d
	pc := w.rows[level*d : level*d+d]
	cc := w.rows[(level+1)*d : (level+1)*d+d]
	childLevel := level + 1
	shift := uint(w.k - childLevel)
	for g := 0; g < w.rf.fan; g++ {
		cs := w.rf.child(prefix, level, state, g, pc, cc)
		if !w.r.overlapsCube(cc, shift) {
			continue
		}
		childPrefix := prefix<<uint(d) | uint64(g)
		if childLevel == w.k || w.r.coversCube(cc, shift) {
			dst = w.emit(dst, spanOf(childPrefix, uint(d)*shift))
			continue
		}
		dst = w.walk(dst, childPrefix, childLevel, cs)
	}
	return dst
}

// emit appends iv, merging it with the previous span when adjacent (the
// walk emits in increasing index order, so merging the tail suffices).
func (w *clusterWalk) emit(dst []Interval, iv Interval) []Interval {
	if n := len(dst); n > w.base && dst[n-1].Hi != ^uint64(0) && dst[n-1].Hi+1 == iv.Lo {
		dst[n-1].Hi = iv.Hi
		return dst
	}
	return append(dst, iv)
}

// CoarseClustersInto is CoarseClusters appending into dst, refining the
// frontier level-synchronously in sc's double buffer until the next level
// would exceed maxClusters.
//
//lint:allocfree
func CoarseClustersInto(dst []Refined, c Curve, r Region, maxClusters int, sc *Scratch) []Refined {
	if r.Empty() || len(r) != c.Dims() {
		return dst
	}
	if sc == nil {
		sc = &Scratch{}
	}
	d, k := c.Dims(), c.Bits()
	if fan := 1 << d; maxClusters < fan {
		maxClusters = fan
	}
	//lint:allow-allocfree amortized arena growth, inlined from coordRows
	rows := sc.coordRows(d, k)
	root := rows[:d]
	for i := range root {
		root[i] = 0
	}
	frontier := append(sc.frontier[:0], Refined{Cluster: Cluster{}, Complete: r.coversCube(root, uint(k))})
	next := sc.spill[:0]
	for {
		next = next[:0]
		done := true
		for _, cl := range frontier {
			if cl.Complete || cl.Level == k {
				next = append(next, cl)
				continue
			}
			done = false
			next = RefineStepInto(next, c, cl.Cluster, r, sc)
		}
		if len(next) > maxClusters {
			break
		}
		frontier, next = next, frontier
		if done {
			break
		}
	}
	sc.frontier, sc.spill = frontier, next
	return append(dst, frontier...)
}
