package sfc

import "fmt"

// Cluster identifies a contiguous segment of the curve by digital causality:
// all indices whose first Level*Dims bits equal Prefix. Level 0 with Prefix 0
// is the whole curve; Level == Bits identifies a single cell.
//
// Clusters are the unit of work of the distributed query engine: a peer that
// receives a cluster either owns its whole span (and scans its local store)
// or refines it one level and forwards the children (paper Section 3.4.2).
type Cluster struct {
	Prefix uint64
	Level  int
}

// Span returns the inclusive index interval covered by the cluster on a
// curve with the given geometry.
func (cl Cluster) Span(c Curve) Interval {
	return spanOf(cl.Prefix, uint(c.IndexBits()-c.Dims()*cl.Level))
}

// String renders the cluster as "prefix/level".
func (cl Cluster) String() string { return fmt.Sprintf("%x/%d", cl.Prefix, cl.Level) }

// spanOf returns the index interval [prefix<<shift, prefix<<shift + 2^shift - 1].
func spanOf(prefix uint64, shift uint) Interval {
	if shift >= 64 {
		return Interval{0, ^uint64(0)}
	}
	lo := prefix << shift
	return Interval{lo, lo | (uint64(1)<<shift - 1)}
}

// Refined is a child cluster produced by RefineStep. Complete indicates the
// child's subcube lies entirely inside the query region, so no further
// refinement can prune anything below it: every point in its span matches.
type Refined struct {
	Cluster
	Complete bool
}

// RefineStep performs one level of the recursive refinement of the paper's
// query tree (Figs. 6-7): it expands cl into its 2^Dims children in curve
// order and keeps only those whose subcube intersects the region. It returns
// nil when cl is already at full resolution.
//
// The children's spans partition cl's span in increasing index order, so the
// result is sorted by span. This is the table-driven kernel path; hot
// callers use RefineStepInto directly to also avoid the allocations.
func RefineStep(c Curve, cl Cluster, r Region) []Refined {
	return RefineStepInto(nil, c, cl, r, nil)
}

// Clusters computes the exact decomposition of a region into maximal
// contiguous curve segments — the "clusters" of the paper's Figs. 3 and 5.
// The result is sorted, disjoint and non-adjacent.
//
// The walk descends the refinement tree depth-first in curve order, emitting
// whole spans as soon as a subcube is entirely inside the region; adjacent
// spans are merged on the fly. Cost is proportional to the boundary of the
// region, not its volume.
func Clusters(c Curve, r Region) []Interval {
	return ClustersInto(nil, c, r, nil)
}

// CoarseClusters decomposes the region level by level, stopping before the
// number of clusters would exceed maxClusters (or full resolution is
// reached). The result is an over-approximation: every matching index is
// covered, but covered spans may contain non-matching indices. This is how a
// query initiator bounds the number of initial cluster messages (the exact
// pruning then happens distributedly, on the peers that own the spans).
//
// maxClusters < 2^Dims is raised to 2^Dims so at least one refinement step
// can complete. The returned clusters are sorted by span.
func CoarseClusters(c Curve, r Region, maxClusters int) []Refined {
	return CoarseClustersInto(nil, c, r, maxClusters, nil)
}

// RefineStepReference is the reference implementation of RefineStep: one
// full Skilling inverse transform per child. The table-driven kernel is
// verified index-for-index against it (kernel_test.go, fuzz_test.go), and
// the benchmark harness reports both so the speedup stays measurable.
func RefineStepReference(c Curve, cl Cluster, r Region) []Refined {
	k := c.Bits()
	if cl.Level >= k {
		return nil
	}
	d := c.Dims()
	childLevel := cl.Level + 1
	shift := uint(d * (k - childLevel)) // index bits below a child prefix
	coordShift := uint(k - childLevel)  // coordinate bits below a child's subcube
	fan := 1 << d
	pt := make([]uint64, d)
	cell := make([]uint64, d)
	var out []Refined
	for g := 0; g < fan; g++ {
		prefix := cl.Prefix<<d | uint64(g)
		// The subcube of a cluster is recovered by decoding any index in its
		// span (the lowest is convenient) and truncating the coordinates to
		// childLevel bits.
		c.Decode(spanOf(prefix, shift).Lo, pt)
		for i, v := range pt {
			cell[i] = v >> coordShift
		}
		if !r.overlapsCube(cell, coordShift) {
			continue
		}
		out = append(out, Refined{
			Cluster:  Cluster{Prefix: prefix, Level: childLevel},
			Complete: r.coversCube(cell, coordShift),
		})
	}
	return out
}

// ClustersReference is the reference implementation of Clusters, built on
// RefineStepReference; the oracle for the kernel equivalence tests and the
// "before" side of the decomposition benchmarks.
func ClustersReference(c Curve, r Region) []Interval {
	if r.Empty() || len(r) != c.Dims() {
		return nil
	}
	var acc []Interval
	emit := func(iv Interval) {
		if n := len(acc); n > 0 && acc[n-1].Hi != ^uint64(0) && acc[n-1].Hi+1 == iv.Lo {
			acc[n-1].Hi = iv.Hi
			return
		}
		acc = append(acc, iv)
	}
	var walk func(cl Cluster)
	walk = func(cl Cluster) {
		for _, ch := range RefineStepReference(c, cl, r) {
			if ch.Complete || ch.Level == c.Bits() {
				emit(ch.Span(c))
				continue
			}
			walk(ch.Cluster)
		}
	}
	root := Cluster{}
	if r.coversCube(make([]uint64, c.Dims()), uint(c.Bits())) {
		return []Interval{root.Span(c)}
	}
	walk(root)
	return acc
}
