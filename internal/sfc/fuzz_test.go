package sfc

import "testing"

// FuzzHilbertRoundTrip checks encode/decode bijectivity on arbitrary
// coordinates across several geometries.
func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<32, uint64(1)<<21, uint64(12345))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		for _, geo := range []struct{ d, k int }{{2, 32}, {3, 21}, {4, 16}, {1, 64}} {
			h := MustHilbert(geo.d, geo.k)
			mask := maxCoord(geo.k)
			pt := make([]uint64, geo.d)
			raw := []uint64{a, b, c, a ^ b}
			for i := range pt {
				pt[i] = raw[i%len(raw)] & mask
			}
			idx := h.Encode(pt)
			back := make([]uint64, geo.d)
			h.Decode(idx, back)
			for i := range pt {
				if back[i] != pt[i] {
					t.Fatalf("d=%d k=%d: %v -> %d -> %v", geo.d, geo.k, pt, idx, back)
				}
			}
			// Morton must round-trip on the same input too.
			m := MustMorton(geo.d, geo.k)
			m.Decode(m.Encode(pt), back)
			for i := range pt {
				if back[i] != pt[i] {
					t.Fatalf("morton d=%d k=%d: %v", geo.d, geo.k, pt)
				}
			}
		}
	})
}

// FuzzRefineStepSound checks that for arbitrary regions and clusters,
// refinement children partition the parent span and never leak outside it.
func FuzzRefineStepSound(f *testing.F) {
	f.Add(uint64(0), uint64(15), uint64(3), uint64(12), uint64(2), 1)
	f.Add(uint64(5), uint64(5), uint64(0), uint64(31), uint64(0), 0)
	f.Fuzz(func(t *testing.T, lo1, hi1, lo2, hi2, prefix uint64, level int) {
		h := MustHilbert(2, 5)
		if level < 0 {
			level = -level
		}
		level %= 5
		prefix &= (uint64(1) << (2 * level)) - 1
		r := NewRegion([][]Interval{
			{{lo1 & 31, hi1 & 31}},
			{{lo2 & 31, hi2 & 31}},
		})
		cl := Cluster{Prefix: prefix, Level: level}
		parent := cl.Span(h)
		prev := parent.Lo
		for _, k := range RefineStep(h, cl, r) {
			s := k.Span(h)
			if s.Lo < parent.Lo || s.Hi > parent.Hi {
				t.Fatalf("child %v escapes parent %v", s, parent)
			}
			if s.Lo < prev {
				t.Fatalf("children out of order")
			}
			prev = s.Hi
		}
		_ = Clusters(h, r) // must not panic
	})
}

// FuzzKernelEquivalence checks that the table-driven refinement kernel is
// index-for-index identical to the Skilling reference for arbitrary
// geometries, regions and clusters.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(2, 32, uint64(100), uint64(1)<<30, uint64(7), uint64(90000), uint64(3), 2)
	f.Add(3, 21, uint64(0), uint64(5), uint64(5), uint64(0), uint64(0), 0)
	f.Add(6, 10, uint64(1), uint64(1000), uint64(2), uint64(900), uint64(12), 4)
	f.Add(8, 8, uint64(17), uint64(200), uint64(40), uint64(41), uint64(5), 1)
	f.Fuzz(func(t *testing.T, d, k int, lo1, hi1, lo2, hi2, prefix uint64, level int) {
		if d < 1 {
			d = -d
		}
		d = d%8 + 1 // 1..8: spans table-driven and fallback ranges
		if k < 1 {
			k = -k
		}
		k = k%16 + 1
		if d*k > 64 {
			k = 64 / d
		}
		h := MustHilbert(d, k)
		mask := maxCoord(k)
		if lo1&mask > hi1&mask {
			lo1, hi1 = hi1, lo1
		}
		if lo2&mask > hi2&mask {
			lo2, hi2 = hi2, lo2
		}
		dims := make([][]Interval, d)
		for i := range dims {
			if i%2 == 0 {
				dims[i] = []Interval{{lo1 & mask, hi1 & mask}}
			} else {
				dims[i] = []Interval{{lo2 & mask, hi2 & mask}}
			}
		}
		r := NewRegion(dims)
		if level < 0 {
			level = -level
		}
		level %= k + 1
		if s := uint(d * level); s < 64 {
			prefix &= uint64(1)<<s - 1
		}
		cl := Cluster{Prefix: prefix, Level: level}
		var sc Scratch
		got := RefineStepInto(nil, h, cl, r, &sc)
		want := RefineStepReference(h, cl, r)
		if len(got) != len(want) {
			t.Fatalf("d=%d k=%d %v over %v: got %v want %v", d, k, cl, r, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("d=%d k=%d %v over %v: child %d: got %v want %v", d, k, cl, r, i, got[i], want[i])
			}
		}
	})
}
