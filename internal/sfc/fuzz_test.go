package sfc

import "testing"

// FuzzHilbertRoundTrip checks encode/decode bijectivity on arbitrary
// coordinates across several geometries.
func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<32, uint64(1)<<21, uint64(12345))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		for _, geo := range []struct{ d, k int }{{2, 32}, {3, 21}, {4, 16}, {1, 64}} {
			h := MustHilbert(geo.d, geo.k)
			mask := maxCoord(geo.k)
			pt := make([]uint64, geo.d)
			raw := []uint64{a, b, c, a ^ b}
			for i := range pt {
				pt[i] = raw[i%len(raw)] & mask
			}
			idx := h.Encode(pt)
			back := make([]uint64, geo.d)
			h.Decode(idx, back)
			for i := range pt {
				if back[i] != pt[i] {
					t.Fatalf("d=%d k=%d: %v -> %d -> %v", geo.d, geo.k, pt, idx, back)
				}
			}
			// Morton must round-trip on the same input too.
			m := MustMorton(geo.d, geo.k)
			m.Decode(m.Encode(pt), back)
			for i := range pt {
				if back[i] != pt[i] {
					t.Fatalf("morton d=%d k=%d: %v", geo.d, geo.k, pt)
				}
			}
		}
	})
}

// FuzzRefineStepSound checks that for arbitrary regions and clusters,
// refinement children partition the parent span and never leak outside it.
func FuzzRefineStepSound(f *testing.F) {
	f.Add(uint64(0), uint64(15), uint64(3), uint64(12), uint64(2), 1)
	f.Add(uint64(5), uint64(5), uint64(0), uint64(31), uint64(0), 0)
	f.Fuzz(func(t *testing.T, lo1, hi1, lo2, hi2, prefix uint64, level int) {
		h := MustHilbert(2, 5)
		if level < 0 {
			level = -level
		}
		level %= 5
		prefix &= (uint64(1) << (2 * level)) - 1
		r := NewRegion([][]Interval{
			{{lo1 & 31, hi1 & 31}},
			{{lo2 & 31, hi2 & 31}},
		})
		cl := Cluster{Prefix: prefix, Level: level}
		parent := cl.Span(h)
		prev := parent.Lo
		for _, k := range RefineStep(h, cl, r) {
			s := k.Span(h)
			if s.Lo < parent.Lo || s.Hi > parent.Hi {
				t.Fatalf("child %v escapes parent %v", s, parent)
			}
			if s.Lo < prev {
				t.Fatalf("children out of order")
			}
			prev = s.Hi
		}
		_ = Clusters(h, r) // must not panic
	})
}
