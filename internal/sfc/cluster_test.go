package sfc

import (
	"math/rand"
	"reflect"
	"testing"
)

// bruteClusters computes the exact cluster decomposition by scanning every
// index of the (small) space. Ground truth for Clusters.
func bruteClusters(c Curve, r Region) []Interval {
	var out []Interval
	pt := make([]uint64, c.Dims())
	total := uint64(1) << c.IndexBits()
	inRun := false
	for idx := uint64(0); idx < total; idx++ {
		c.Decode(idx, pt)
		if r.ContainsPoint(pt) {
			if inRun {
				out[len(out)-1].Hi = idx
			} else {
				out = append(out, Interval{idx, idx})
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	return out
}

func TestClustersMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []Curve{MustHilbert(2, 5), MustHilbert(3, 3), MustMorton(2, 5)} {
		for trial := 0; trial < 60; trial++ {
			r := randomRegion(rng, c.Dims(), c.Bits())
			got := Clusters(c, r)
			want := bruteClusters(c, r)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: region %v\n got %v\nwant %v", c.Name(), trial, r, got, want)
			}
		}
	}
}

func TestClustersPaperFigure5(t *testing.T) {
	// Paper Fig. 5(a): on a 2-D base-2 space, a query fixing one coordinate
	// ("(0, *)" style: a 1-cell-wide column) crosses the curve several times,
	// producing multiple clusters; Fig. 5(b): an aligned square region
	// ("(1*, *)") is a single cluster.
	h := MustHilbert(2, 3)

	column := NewRegion([][]Interval{{{0, 0}}, {{0, 7}}}) // (000, *)
	colClusters := Clusters(h, column)
	if len(colClusters) < 2 {
		t.Errorf("column query should fragment into multiple clusters, got %v", colClusters)
	}
	total := uint64(0)
	for _, iv := range colClusters {
		total += iv.Count()
	}
	if total != 8 {
		t.Errorf("column clusters cover %d cells, want 8", total)
	}

	square := NewRegion([][]Interval{{{4, 7}}, {{0, 7}}}) // (1*, *): right half
	sqClusters := Clusters(h, square)
	if len(sqClusters) != 1 {
		t.Errorf("aligned half-space should be one cluster, got %v", sqClusters)
	}
	if sqClusters[0].Count() != 32 {
		t.Errorf("half-space cluster covers %d cells, want 32", sqClusters[0].Count())
	}
}

func TestClustersFullAndEmpty(t *testing.T) {
	h := MustHilbert(2, 4)
	full := Clusters(h, FullRegion(2, 4))
	if len(full) != 1 || full[0] != (Interval{0, 255}) {
		t.Errorf("full region = %v", full)
	}
	empty := Clusters(h, NewRegion([][]Interval{{}, {{0, 3}}}))
	if empty != nil {
		t.Errorf("empty region = %v", empty)
	}
	if got := Clusters(h, NewRegion([][]Interval{{{0, 1}}})); got != nil {
		t.Errorf("dims mismatch should yield nil, got %v", got)
	}
}

func TestClusterSpan(t *testing.T) {
	h := MustHilbert(2, 4) // 8 index bits
	cases := []struct {
		cl   Cluster
		want Interval
	}{
		{Cluster{0, 0}, Interval{0, 255}},
		{Cluster{0, 1}, Interval{0, 63}},
		{Cluster{3, 1}, Interval{192, 255}},
		{Cluster{5, 2}, Interval{80, 95}},
		{Cluster{255, 4}, Interval{255, 255}},
	}
	for _, c := range cases {
		if got := c.cl.Span(h); got != c.want {
			t.Errorf("Span(%v) = %v, want %v", c.cl, got, c.want)
		}
	}
	h64 := MustHilbert(2, 32)
	if got := (Cluster{0, 0}).Span(h64); got != (Interval{0, ^uint64(0)}) {
		t.Errorf("64-bit root span = %v", got)
	}
}

func TestRefineStepPartitionsParent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := MustHilbert(2, 5)
	r := FullRegion(2, 5) // no pruning: children must exactly partition parent
	for trial := 0; trial < 50; trial++ {
		level := rng.Intn(5)
		prefix := rng.Uint64() % (1 << uint(2*level))
		parent := Cluster{prefix, level}
		kids := RefineStep(h, parent, r)
		if len(kids) != 4 {
			t.Fatalf("full region: %d children, want 4", len(kids))
		}
		span := parent.Span(h)
		next := span.Lo
		for _, k := range kids {
			ks := k.Span(h)
			if ks.Lo != next {
				t.Fatalf("child spans not contiguous: got %v at expected lo %d", ks, next)
			}
			if !k.Complete {
				t.Fatalf("full region children must be Complete")
			}
			next = ks.Hi + 1
		}
		if next != span.Hi+1 {
			t.Fatalf("children do not cover parent: ended at %d, want %d", next, span.Hi+1)
		}
	}
}

func TestRefineStepPrunesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := MustHilbert(2, 4)
	pt := make([]uint64, 2)
	for trial := 0; trial < 80; trial++ {
		r := randomRegion(rng, 2, 4)
		level := rng.Intn(4)
		prefix := rng.Uint64() % (1 << uint(2*level))
		kids := RefineStep(h, Cluster{prefix, level}, r)
		kept := map[uint64]Refined{}
		for _, k := range kids {
			kept[k.Prefix] = k
		}
		// Every child subcube: pruned iff it has no matching point; Complete
		// iff every point matches.
		for g := uint64(0); g < 4; g++ {
			child := Cluster{prefix<<2 | g, level + 1}
			span := child.Span(h)
			any, all := false, true
			for idx := span.Lo; idx <= span.Hi; idx++ {
				h.Decode(idx, pt)
				if r.ContainsPoint(pt) {
					any = true
				} else {
					all = false
				}
			}
			k, ok := kept[child.Prefix]
			if ok != any {
				t.Fatalf("trial %d: child %v kept=%v but hasMatches=%v (region %v)", trial, child, ok, any, r)
			}
			if ok && k.Complete != all {
				t.Fatalf("trial %d: child %v Complete=%v but allMatch=%v", trial, child, k.Complete, all)
			}
		}
	}
}

func TestRefineStepAtLeafReturnsNil(t *testing.T) {
	h := MustHilbert(2, 3)
	if got := RefineStep(h, Cluster{5, 3}, FullRegion(2, 3)); got != nil {
		t.Errorf("refining a leaf returned %v", got)
	}
}

func TestCoarseClustersCoverAllMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := MustHilbert(2, 5)
	pt := make([]uint64, 2)
	for trial := 0; trial < 60; trial++ {
		r := randomRegion(rng, 2, 5)
		for _, budget := range []int{1, 4, 10, 100, 1 << 12} {
			coarse := CoarseClusters(h, r, budget)
			fan := 1 << 2
			limit := budget
			if limit < fan {
				limit = fan
			}
			if len(coarse) > limit {
				t.Fatalf("budget %d: %d clusters", budget, len(coarse))
			}
			// Every matching index must be covered by some coarse cluster.
			total := uint64(1) << h.IndexBits()
			for idx := uint64(0); idx < total; idx++ {
				h.Decode(idx, pt)
				if !r.ContainsPoint(pt) {
					continue
				}
				covered := false
				for _, cl := range coarse {
					if cl.Span(h).Contains(idx) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("budget %d: matching index %d not covered (region %v, clusters %v)", budget, idx, r, coarse)
				}
			}
		}
	}
}

func TestCoarseClustersExactWhenBudgetLarge(t *testing.T) {
	h := MustHilbert(2, 4)
	r := NewRegion([][]Interval{{{3, 3}}, {{0, 15}}})
	coarse := CoarseClusters(h, r, 1<<30)
	// With an unlimited budget the coarse decomposition reaches full
	// resolution: merged spans must equal the exact clusters.
	var merged []Interval
	for _, cl := range coarse {
		iv := cl.Span(h)
		if n := len(merged); n > 0 && merged[n-1].Hi+1 == iv.Lo {
			merged[n-1].Hi = iv.Hi
		} else {
			merged = append(merged, iv)
		}
	}
	if want := Clusters(h, r); !reflect.DeepEqual(merged, want) {
		t.Errorf("coarse/full mismatch:\n got %v\nwant %v", merged, want)
	}
}

func TestClusterString(t *testing.T) {
	if got := (Cluster{0x2b, 3}).String(); got != "2b/3" {
		t.Errorf("String = %q", got)
	}
}

// TestClusterCountsGrowWithDims reproduces the paper's observation (Section
// 4.1.2) that the same query shape fragments into more clusters in 3D than 2D.
func TestClusterCountsGrowWithDims(t *testing.T) {
	h2 := MustHilbert(2, 6)
	h3 := MustHilbert(3, 6)
	// Query fixing the first coordinate to one value, rest wildcards.
	r2 := NewRegion([][]Interval{{{17, 17}}, {{0, 63}}})
	r3 := NewRegion([][]Interval{{{17, 17}}, {{0, 63}}, {{0, 63}}})
	c2 := len(Clusters(h2, r2))
	c3 := len(Clusters(h3, r3))
	if c3 <= c2 {
		t.Errorf("expected more clusters in 3D: 2D=%d 3D=%d", c2, c3)
	}
}

func BenchmarkClusters2D(b *testing.B) {
	h := MustHilbert(2, 16)
	r := NewRegion([][]Interval{{{1000, 1200}}, {{0, 1<<16 - 1}}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Clusters(h, r)
	}
}

func BenchmarkRefineStep3D(b *testing.B) {
	h := MustHilbert(3, 21)
	r := NewRegion([][]Interval{{{5000, 6000}}, {{0, 1<<21 - 1}}, {{100, 100}}})
	cl := Cluster{3, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = RefineStep(h, cl, r)
	}
}
