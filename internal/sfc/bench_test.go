package sfc

import "testing"

// Benchmark geometries: the 2x32 keyword space of the paper's experiments
// and the 3-dimensional variant exercising a non-trivial state graph.
var benchGeometries = []struct {
	name string
	d, k int
}{
	{"2x32", 2, 32},
	{"3x21", 3, 21},
}

// benchRegion is a moderately complex query region for the geometry: a
// range in dimension 0, a wildcard dimension, a union elsewhere — endpoint-
// aligned so the exact decomposition stays small enough to iterate.
func benchRegion(d, k int) Region {
	q := uint64(1) << uint(k-4)
	dims := make([][]Interval, d)
	dims[0] = []Interval{{q, 5*q - 1}}
	for i := 1; i < d; i++ {
		switch i % 3 {
		case 1:
			dims[i] = []Interval{{0, maxCoord(k)}}
		case 2:
			dims[i] = []Interval{{0, 2*q - 1}, {8 * q, 11*q - 1}}
		default:
			dims[i] = []Interval{{3 * q, 9*q - 1}}
		}
	}
	return NewRegion(dims)
}

func BenchmarkEncode(b *testing.B) {
	for _, g := range benchGeometries {
		var h Curve = MustHilbert(g.d, g.k)
		pt := make([]uint64, g.d)
		for i := range pt {
			pt[i] = maxCoord(g.k) / uint64(3*(i+1))
		}
		b.Run(g.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink = h.Encode(pt)
			}
			_ = sink
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, g := range benchGeometries {
		var h Curve = MustHilbert(g.d, g.k)
		pt := make([]uint64, g.d)
		idx := spanOf(5, uint(h.IndexBits()-4)).Lo
		b.Run(g.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Decode(idx, pt)
			}
		})
	}
}

// BenchmarkRefineStep compares the table-driven kernel against the Skilling
// reference on one refinement step — the unit of work every peer performs
// per cluster message.
func BenchmarkRefineStep(b *testing.B) {
	for _, g := range benchGeometries {
		var h Curve = MustHilbert(g.d, g.k)
		r := benchRegion(g.d, g.k)
		cl := Cluster{Prefix: 6, Level: 3}
		b.Run(g.name+"/table", func(b *testing.B) {
			var sc Scratch
			dst := RefineStepInto(nil, h, cl, r, &sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = RefineStepInto(dst[:0], h, cl, r, &sc)
			}
		})
		b.Run(g.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = RefineStepReference(h, cl, r)
			}
		})
	}
}

// BenchmarkClusters compares the exact decomposition end to end.
func BenchmarkClusters(b *testing.B) {
	for _, g := range benchGeometries {
		var h Curve = MustHilbert(g.d, g.k)
		r := benchRegion(g.d, g.k)
		b.Run(g.name+"/table", func(b *testing.B) {
			var sc Scratch
			dst := ClustersInto(nil, h, r, &sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = ClustersInto(dst[:0], h, r, &sc)
			}
		})
		b.Run(g.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ClustersReference(h, r)
			}
		})
	}
}

// BenchmarkCoarseClusters measures the query initiator's bounded
// decomposition (Engine.Query's first step).
func BenchmarkCoarseClusters(b *testing.B) {
	for _, g := range benchGeometries {
		var h Curve = MustHilbert(g.d, g.k)
		r := benchRegion(g.d, g.k)
		b.Run(g.name, func(b *testing.B) {
			var sc Scratch
			dst := CoarseClustersInto(nil, h, r, 64, &sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = CoarseClustersInto(dst[:0], h, r, 64, &sc)
			}
		})
	}
}
