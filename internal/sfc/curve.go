package sfc

import "fmt"

// Curve is a bijection between points of the discrete cube [0,2^Bits)^Dims
// and indices in [0, 2^(Dims*Bits)).
//
// Implementations must be safe for concurrent use; both curves in this
// package are stateless values.
type Curve interface {
	// Dims returns the dimensionality d of the cube.
	Dims() int
	// Bits returns the number of bits k per coordinate.
	Bits() int
	// IndexBits returns d*k, the number of significant bits in an index.
	IndexBits() int
	// Encode maps a point to its index on the curve. The point must have
	// Dims coordinates, each < 2^Bits; Encode panics otherwise.
	Encode(pt []uint64) uint64
	// Decode maps an index back to the point it encodes, storing the
	// coordinates into pt, which must have length Dims.
	Decode(idx uint64, pt []uint64)
	// Name identifies the curve family ("hilbert" or "morton").
	Name() string
}

// validate checks the (dims, bits) pair shared by both curve constructors.
func validate(dims, bits int) error {
	if dims < 1 {
		return fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if bits < 1 {
		return fmt.Errorf("sfc: bits must be >= 1, got %d", bits)
	}
	if dims*bits > 64 {
		return fmt.Errorf("sfc: dims*bits must be <= 64, got %d*%d=%d", dims, bits, dims*bits)
	}
	return nil
}

// Hilbert is the d-dimensional Hilbert curve with k bits per dimension.
// The zero value is not valid; use NewHilbert.
type Hilbert struct {
	dims, bits int
}

// NewHilbert returns the Hilbert curve over [0,2^bits)^dims.
// dims*bits must not exceed 64 so indices fit in a uint64.
func NewHilbert(dims, bits int) (Hilbert, error) {
	if err := validate(dims, bits); err != nil {
		return Hilbert{}, err
	}
	return Hilbert{dims: dims, bits: bits}, nil
}

// MustHilbert is NewHilbert that panics on invalid parameters; intended for
// package-level variables and tests.
func MustHilbert(dims, bits int) Hilbert {
	h, err := NewHilbert(dims, bits)
	if err != nil {
		panic(err)
	}
	return h
}

// Dims returns the dimensionality of the cube.
func (h Hilbert) Dims() int { return h.dims }

// Bits returns the bits per coordinate.
func (h Hilbert) Bits() int { return h.bits }

// IndexBits returns the number of significant bits in a curve index.
func (h Hilbert) IndexBits() int { return h.dims * h.bits }

// Name returns "hilbert".
func (h Hilbert) Name() string { return "hilbert" }

// maxCurveDims bounds the scratch arrays used by Encode/Decode so they can
// live on the stack. dims*bits <= 64 and bits >= 1 already imply dims <= 64.
const maxCurveDims = 64

// Encode maps a point to its Hilbert index.
//
// The implementation is Skilling's transpose algorithm (J. Skilling,
// "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004): the
// coordinates are converted in place to the "transposed" Hilbert form and
// then bit-interleaved into a single integer, most significant bit first.
func (h Hilbert) Encode(pt []uint64) uint64 {
	h.check(pt)
	var x [maxCurveDims]uint64
	n := copy(x[:h.dims], pt)
	axesToTranspose(x[:n], h.bits)
	return interleave(x[:n], h.bits)
}

// Decode maps a Hilbert index back to the point it encodes.
func (h Hilbert) Decode(idx uint64, pt []uint64) {
	if len(pt) != h.dims {
		//lint:allow-allocfree panic path only
		panic(fmt.Sprintf("sfc: Decode target has %d coords, curve has %d dims", len(pt), h.dims))
	}
	var x [maxCurveDims]uint64
	deinterleave(idx, x[:h.dims], h.bits)
	transposeToAxes(x[:h.dims], h.bits)
	copy(pt, x[:h.dims])
}

func (h Hilbert) check(pt []uint64) {
	if len(pt) != h.dims {
		panic(fmt.Sprintf("sfc: point has %d coords, curve has %d dims", len(pt), h.dims))
	}
	if h.bits == 64 {
		return
	}
	limit := uint64(1) << h.bits
	for i, c := range pt {
		if c >= limit {
			panic(fmt.Sprintf("sfc: coordinate %d = %d out of range [0,%d)", i, c, limit))
		}
	}
}

// axesToTranspose converts coordinates to the transposed Hilbert
// representation in place (Skilling's forward transform).
func axesToTranspose(x []uint64, bits int) {
	n := len(x)
	m := uint64(1) << (bits - 1)
	// Inverse undo of the "excess work" rotations.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p // exchange low bits of x[0] and x[i]
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed Hilbert representation back to
// coordinates in place (Skilling's inverse transform).
func transposeToAxes(x []uint64, bits int) {
	n := len(x)
	big := uint64(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint64(2); q != big; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed form into a single index: bit b of
// dimension i lands at index bit (b*n + (n-1-i)), i.e. the curve's most
// significant refinement decision comes first.
func interleave(x []uint64, bits int) uint64 {
	n := len(x)
	var idx uint64
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			idx = idx<<1 | (x[i]>>uint(b))&1
		}
	}
	return idx
}

// deinterleave is the inverse of interleave.
func deinterleave(idx uint64, x []uint64, bits int) {
	n := len(x)
	for i := range x {
		x[i] = 0
	}
	shift := uint(n*bits - 1)
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			x[i] = x[i]<<1 | (idx>>shift)&1
			shift--
		}
	}
}

// Morton is the Z-order curve: plain bit interleaving with no rotation.
// It is cheaper than Hilbert but clusters regions into more, shorter curve
// segments; it exists for the curve-choice ablation (DESIGN.md A6).
type Morton struct {
	dims, bits int
}

// NewMorton returns the Z-order curve over [0,2^bits)^dims.
func NewMorton(dims, bits int) (Morton, error) {
	if err := validate(dims, bits); err != nil {
		return Morton{}, err
	}
	return Morton{dims: dims, bits: bits}, nil
}

// MustMorton is NewMorton that panics on invalid parameters.
func MustMorton(dims, bits int) Morton {
	m, err := NewMorton(dims, bits)
	if err != nil {
		panic(err)
	}
	return m
}

// Dims returns the dimensionality of the cube.
func (m Morton) Dims() int { return m.dims }

// Bits returns the bits per coordinate.
func (m Morton) Bits() int { return m.bits }

// IndexBits returns the number of significant bits in a curve index.
func (m Morton) IndexBits() int { return m.dims * m.bits }

// Name returns "morton".
func (m Morton) Name() string { return "morton" }

// Encode maps a point to its Z-order index.
func (m Morton) Encode(pt []uint64) uint64 {
	if len(pt) != m.dims {
		panic(fmt.Sprintf("sfc: point has %d coords, curve has %d dims", len(pt), m.dims))
	}
	var x [maxCurveDims]uint64
	copy(x[:m.dims], pt)
	return interleave(x[:m.dims], m.bits)
}

// Decode maps a Z-order index back to its point.
func (m Morton) Decode(idx uint64, pt []uint64) {
	if len(pt) != m.dims {
		//lint:allow-allocfree panic path only
		panic(fmt.Sprintf("sfc: Decode target has %d coords, curve has %d dims", len(pt), m.dims))
	}
	deinterleave(idx, pt, m.bits)
}

var (
	_ Curve = Hilbert{}
	_ Curve = Morton{}
)
