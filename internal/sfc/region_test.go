package sfc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalizeIntervals(t *testing.T) {
	cases := []struct {
		name string
		in   []Interval
		want IntervalSet
	}{
		{"empty", nil, IntervalSet{}},
		{"single", []Interval{{3, 7}}, IntervalSet{{3, 7}}},
		{"sorts", []Interval{{10, 12}, {1, 2}}, IntervalSet{{1, 2}, {10, 12}}},
		{"merges overlap", []Interval{{1, 5}, {4, 9}}, IntervalSet{{1, 9}}},
		{"merges adjacent", []Interval{{1, 4}, {5, 9}}, IntervalSet{{1, 9}}},
		{"keeps gap", []Interval{{1, 4}, {6, 9}}, IntervalSet{{1, 4}, {6, 9}}},
		{"drops inverted", []Interval{{5, 3}, {1, 2}}, IntervalSet{{1, 2}}},
		{"contained", []Interval{{1, 10}, {3, 4}}, IntervalSet{{1, 10}}},
		{"max uint64", []Interval{{^uint64(0), ^uint64(0)}, {0, 1}}, IntervalSet{{0, 1}, {^uint64(0), ^uint64(0)}}},
		{"adjacent at max", []Interval{{10, ^uint64(0)}, {5, 9}}, IntervalSet{{5, ^uint64(0)}}},
	}
	for _, c := range cases {
		got := NormalizeIntervals(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: NormalizeIntervals(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// TestNormalizeQuick checks the normalization invariants on random input:
// sorted, disjoint, non-adjacent, and membership-preserving.
func TestNormalizeQuick(t *testing.T) {
	f := func(raw []Interval) bool {
		// Shrink values into a small domain so collisions actually happen.
		in := make([]Interval, len(raw))
		for i, iv := range raw {
			in[i] = Interval{iv.Lo % 64, iv.Hi % 64}
		}
		set := NormalizeIntervals(in)
		for i := 1; i < len(set); i++ {
			if set[i].Lo <= set[i-1].Hi+1 {
				return false // overlapping or adjacent
			}
		}
		for v := uint64(0); v < 64; v++ {
			inRaw := false
			for _, iv := range in {
				if iv.Lo <= iv.Hi && iv.Contains(v) {
					inRaw = true
					break
				}
			}
			if set.Contains(v) != inRaw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntervalSetQueries(t *testing.T) {
	s := NormalizeIntervals([]Interval{{10, 20}, {30, 40}, {60, 60}})
	for _, c := range []struct {
		iv       Interval
		overlaps bool
		covers   bool
	}{
		{Interval{0, 5}, false, false},
		{Interval{0, 10}, true, false},
		{Interval{12, 18}, true, true},
		{Interval{10, 20}, true, true},
		{Interval{18, 32}, true, false},
		{Interval{21, 29}, false, false},
		{Interval{60, 60}, true, true},
		{Interval{61, 100}, false, false},
		{Interval{0, 100}, true, false},
	} {
		if got := s.Overlaps(c.iv); got != c.overlaps {
			t.Errorf("Overlaps(%v) = %v, want %v", c.iv, got, c.overlaps)
		}
		if got := s.Covers(c.iv); got != c.covers {
			t.Errorf("Covers(%v) = %v, want %v", c.iv, got, c.covers)
		}
	}
	if !s.Contains(15) || s.Contains(25) || !s.Contains(60) {
		t.Error("Contains misclassified a point")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{5, 9}
	if !iv.Contains(5) || !iv.Contains(9) || iv.Contains(4) || iv.Contains(10) {
		t.Error("Contains wrong at boundaries")
	}
	if iv.Count() != 5 {
		t.Errorf("Count = %d, want 5", iv.Count())
	}
	if !iv.Overlaps(Interval{9, 20}) || iv.Overlaps(Interval{10, 20}) {
		t.Error("Overlaps wrong at boundaries")
	}
	if !iv.Covers(Interval{5, 9}) || iv.Covers(Interval{5, 10}) {
		t.Error("Covers wrong at boundaries")
	}
	if iv.String() != "[5,9]" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestRegionBasics(t *testing.T) {
	r := NewRegion([][]Interval{
		{{2, 5}},
		{{0, 15}},
	})
	if r.Empty() {
		t.Fatal("region should not be empty")
	}
	if !r.ContainsPoint([]uint64{3, 7}) {
		t.Error("point (3,7) should be inside")
	}
	if r.ContainsPoint([]uint64{6, 7}) {
		t.Error("point (6,7) should be outside")
	}
	if r.ContainsPoint([]uint64{3}) {
		t.Error("dimension mismatch should be outside")
	}
	if _, ok := r.IsPoint(); ok {
		t.Error("region is not a point")
	}

	p := NewRegion([][]Interval{{{7, 7}}, {{9, 9}}})
	pt, ok := p.IsPoint()
	if !ok || pt[0] != 7 || pt[1] != 9 {
		t.Errorf("IsPoint = %v, %v", pt, ok)
	}

	empty := NewRegion([][]Interval{{{5, 2}}, {{0, 1}}})
	if !empty.Empty() {
		t.Error("region with an inverted interval should be empty")
	}
	if (Region{}).Empty() != true {
		t.Error("zero-dimension region should be empty")
	}
}

func TestFullRegion(t *testing.T) {
	r := FullRegion(3, 21)
	if len(r) != 3 {
		t.Fatalf("dims = %d", len(r))
	}
	want := Interval{0, 1<<21 - 1}
	for i, s := range r {
		if len(s) != 1 || s[0] != want {
			t.Errorf("dim %d = %v, want [%v]", i, s, want)
		}
	}
	r64 := FullRegion(1, 64)
	if r64[0][0].Hi != ^uint64(0) {
		t.Errorf("64-bit full region Hi = %d", r64[0][0].Hi)
	}
}

func TestRegionCubeTests(t *testing.T) {
	// Region x in [4,11], y in [0,3] on an 8x8 (bits=3)... use bits=4 space.
	r := NewRegion([][]Interval{{{4, 11}}, {{0, 3}}})
	// Cube (1,0) at shift 2 covers x in [4,7], y in [0,3]: inside.
	if !r.overlapsCube([]uint64{1, 0}, 2) || !r.coversCube([]uint64{1, 0}, 2) {
		t.Error("cube (1,0)/2 should be covered")
	}
	// Cube (0,0) at shift 2 covers x in [0,3]: disjoint in x.
	if r.overlapsCube([]uint64{0, 0}, 2) {
		t.Error("cube (0,0)/2 should not overlap")
	}
	// Cube (2,0) at shift 2 covers x in [8,11] y in [0,3]: covered.
	if !r.coversCube([]uint64{2, 0}, 2) {
		t.Error("cube (2,0)/2 should be covered")
	}
	// Cube (0,0) at shift 3 covers x,y in [0,7]: overlaps but not covered.
	if !r.overlapsCube([]uint64{0, 0}, 3) || r.coversCube([]uint64{0, 0}, 3) {
		t.Error("cube (0,0)/3 should overlap but not be covered")
	}
}

func TestRegionString(t *testing.T) {
	r := NewRegion([][]Interval{{{1, 2}, {5, 6}}, {{0, 9}}})
	if got := r.String(); got != "{[1,2],[5,6]; [0,9]}" {
		t.Errorf("String = %q", got)
	}
}

// randomRegion builds a random region over a dims x bits cube; used by the
// cluster tests too.
func randomRegion(rng *rand.Rand, dims, bits int) Region {
	limit := uint64(1) << bits
	raw := make([][]Interval, dims)
	for d := 0; d < dims; d++ {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			a := rng.Uint64() % limit
			b := rng.Uint64() % limit
			if a > b {
				a, b = b, a
			}
			raw[d] = append(raw[d], Interval{a, b})
		}
	}
	return NewRegion(raw)
}
