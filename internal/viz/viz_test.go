package viz

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]int{0, 1, 2, 4, 8})
	if runeLen(s) != 5 {
		t.Errorf("sparkline length = %d, want 5", runeLen(s))
	}
	runes := []rune(s)
	if runes[0] != ' ' {
		t.Errorf("zero should render blank, got %q", runes[0])
	}
	if runes[4] != '█' {
		t.Errorf("max should render full block, got %q", runes[4])
	}
	// Monotonic input renders monotonic glyphs.
	idx := func(r rune) int {
		for i, b := range blocks {
			if b == r {
				return i
			}
		}
		return -1
	}
	for i := 1; i < len(runes); i++ {
		if idx(runes[i]) < idx(runes[i-1]) {
			t.Errorf("sparkline not monotonic: %q", s)
		}
	}
	// All zeros stays blank, no panic.
	if z := Sparkline([]int{0, 0, 0}); strings.TrimSpace(z) != "" {
		t.Errorf("all-zero sparkline = %q", z)
	}
}

func runeLen(s string) int { return len([]rune(s)) }

func TestHistogram(t *testing.T) {
	var b strings.Builder
	Histogram(&b, "title", []string{"aa", "b"}, []int{10, 5}, 20)
	out := b.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "aa") {
		t.Errorf("histogram output missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	full := strings.Count(lines[1], "█")
	half := strings.Count(lines[2], "█")
	if full != 20 || half != 10 {
		t.Errorf("bar widths = %d, %d; want 20, 10", full, half)
	}
	// Zero width defaults; zero max safe.
	var b2 strings.Builder
	Histogram(&b2, "", []string{"x"}, []int{0}, 0)
	if !strings.Contains(b2.String(), "x") {
		t.Error("zero histogram should still print the label")
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "fig", []string{"1k", "5k"}, map[string][]int{
		"processing": {10, 20},
		"data":       {5, 9},
	}, []string{"processing", "data", "missing"})
	out := b.String()
	if !strings.Contains(out, "processing") || !strings.Contains(out, "10 → 20") {
		t.Errorf("series output:\n%s", out)
	}
	if strings.Contains(out, "missing") {
		t.Error("missing series should be skipped")
	}
}

func TestDownsample(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Errorf("downsample not increasing: %v", out)
		}
	}
	if got := Downsample(in, 200); len(got) != 100 {
		t.Errorf("upsample should copy: %d", len(got))
	}
	if got := Downsample(nil, 10); len(got) != 0 {
		t.Errorf("empty downsample: %v", got)
	}
}
