// Package viz renders the experiment harness's data as terminal charts, so
// cmd/squid-bench output visually mirrors the paper's figures: line-ish
// series for the scaling sweeps (Figs. 9-17), histograms for the index and
// load distributions (Figs. 18-19).
package viz

import (
	"fmt"
	"io"
	"strings"
)

// blocks are eighth-step bar glyphs, lowest to highest.
var blocks = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode bar chart scaled to the
// maximum value.
func Sparkline(values []int) string {
	if len(values) == 0 {
		return ""
	}
	max := 0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > 0 {
			i = v * (len(blocks) - 1) / max
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}

// Histogram prints a labelled horizontal bar chart, one row per value.
func Histogram(w io.Writer, title string, labels []string, values []int, width int) {
	if width <= 0 {
		width = 50
	}
	max := 0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if max > 0 {
			n = v * width / max
		}
		fmt.Fprintf(w, "%-*s │%s%s %d\n", labelW, label, strings.Repeat("█", n), strings.Repeat(" ", width-n), v)
	}
}

// Series prints one line per named series with a sparkline over the
// x-points and the first/last values, the terminal analogue of the paper's
// scaling plots.
func Series(w io.Writer, title string, xLabels []string, series map[string][]int, order []string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	if len(xLabels) > 0 {
		fmt.Fprintf(w, "%-16s %s .. %s\n", "x:", xLabels[0], xLabels[len(xLabels)-1])
	}
	for _, name := range order {
		vals, ok := series[name]
		if !ok {
			continue
		}
		first, last := 0, 0
		if len(vals) > 0 {
			first, last = vals[0], vals[len(vals)-1]
		}
		fmt.Fprintf(w, "%-16s %s  %d → %d\n", name, Sparkline(vals), first, last)
	}
}

// Downsample reduces values to at most buckets entries by averaging runs;
// used to fit 500-interval distributions into a terminal row.
func Downsample(values []int, buckets int) []int {
	if buckets <= 0 || len(values) <= buckets {
		return append([]int(nil), values...)
	}
	out := make([]int, buckets)
	for i := range out {
		lo := i * len(values) / buckets
		hi := (i + 1) * len(values) / buckets
		if hi == lo {
			hi = lo + 1
		}
		sum := 0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / (hi - lo)
	}
	return out
}
