package wire

import (
	"reflect"
	"testing"
)

// FuzzDecoderPrimitives drives the primitive readers over arbitrary bytes:
// whatever the input, they must terminate without panicking, never read
// past the buffer, and leave a sticky error on anything malformed.
func FuzzDecoderPrimitives(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	var seed Encoder
	seed.Uvarint(300)
	seed.String("seed")
	seed.U64(42)
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			// Rotate through every primitive; order is arbitrary — the
			// point is that no byte sequence can panic or overrun.
			d.Uvarint()
			d.Int()
			d.U64()
			d.Bool()
			_ = d.String() // vet's unusedresult knows String(); parity with the other readers
			d.Strings()
			d.RawBytes()
			d.Len(4)
		}
	})
}

// FuzzDecodeMessage feeds arbitrary frames to the registry decoder. Valid
// frames for the test codecs must re-encode to the same bytes; garbage
// must fail cleanly.
func FuzzDecodeMessage(f *testing.F) {
	var e Encoder
	EncodeMessage(&e, testMsg{A: "seed", B: 7})
	f.Add(append([]byte(nil), e.Bytes()...))
	f.Add([]byte{0x01})       // TagNil is not a valid top-level message
	f.Add([]byte{0x00})       // reserved transport tag
	f.Add([]byte{0x91, 0x4e}) // tag 10001, empty body
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Anything that decoded must survive a re-encode/re-decode round
		// trip unchanged. (Byte identity is too strong: stdlib varint
		// readers accept non-minimal encodings.)
		var e Encoder
		if !EncodeMessage(&e, v) {
			t.Fatalf("decoded %T but cannot re-encode", v)
		}
		back, err := DecodeMessage(e.Bytes())
		if err != nil {
			t.Fatalf("re-decode of %T failed: %v", v, err)
		}
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("round trip drifted for %T:\n first  %#v\n second %#v", v, v, back)
		}
	})
}
