package wire

import (
	"errors"
	"math"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var e Encoder
	e.Uvarint(0)
	e.Uvarint(300)
	e.Uvarint(math.MaxUint64)
	e.Int(0)
	e.Int(-1)
	e.Int(math.MinInt64)
	e.Int(math.MaxInt64)
	e.U64(0xdeadbeefcafebabe)
	e.Bool(true)
	e.Bool(false)
	e.String("")
	e.String("héllo, wörld")
	e.Strings(nil)
	e.Strings([]string{"a", "", "ccc"})
	e.RawBytes([]byte{0, 1, 2})
	if e.Err() != nil {
		t.Fatalf("encode error: %v", e.Err())
	}

	d := NewDecoder(e.Bytes())
	check := func(name string, got, want any) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("uvarint 0", d.Uvarint(), uint64(0))
	check("uvarint 300", d.Uvarint(), uint64(300))
	check("uvarint max", d.Uvarint(), uint64(math.MaxUint64))
	check("int 0", d.Int(), int64(0))
	check("int -1", d.Int(), int64(-1))
	check("int min", d.Int(), int64(math.MinInt64))
	check("int max", d.Int(), int64(math.MaxInt64))
	check("u64", d.U64(), uint64(0xdeadbeefcafebabe))
	check("bool t", d.Bool(), true)
	check("bool f", d.Bool(), false)
	check("string empty", d.String(), "")
	check("string", d.String(), "héllo, wörld")
	if got := d.Strings(); got != nil {
		t.Errorf("nil strings decoded as %v", got)
	}
	ss := d.Strings()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "ccc" {
		t.Errorf("strings = %v", ss)
	}
	b := d.RawBytes()
	if len(b) != 3 || b[0] != 0 || b[2] != 2 {
		t.Errorf("bytes = %v", b)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestEncoderReuseNoAlloc(t *testing.T) {
	var e Encoder
	encode := func() {
		e.Reset()
		e.Uvarint(42)
		e.U64(0x1234)
		e.String("warm the buffer with a reasonably long string")
		e.Strings([]string{"x", "y"})
		e.Bool(true)
	}
	encode() // warm: grows the buffer once
	allocs := testing.AllocsPerRun(100, encode)
	if allocs != 0 {
		t.Fatalf("encode allocates %v/op after warmup, want 0", allocs)
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.String("hello")
	e.U64(7)
	full := e.Bytes()
	// Every proper prefix must fail with a sticky error, never panic.
	for n := 0; n < len(full); n++ {
		d := NewDecoder(full[:n])
		_ = d.String()
		_ = d.U64()
		if d.Err() == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
		// Sticky: further reads stay zero-valued.
		if got := d.Uvarint(); got != 0 {
			t.Fatalf("read after error returned %d", got)
		}
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var e Encoder
	e.Uvarint(1)
	e.Uvarint(2)
	d := NewDecoder(e.Bytes())
	d.Uvarint()
	if err := d.Close(); err == nil {
		t.Fatal("Close accepted trailing bytes")
	}
}

func TestLenGuardsHostileCounts(t *testing.T) {
	// A frame claiming 2^40 elements in a few bytes must be rejected
	// before any allocation.
	var e Encoder
	e.Uvarint(1 << 40)
	d := NewDecoder(e.Bytes())
	if n := d.Len(1); n != 0 {
		t.Fatalf("Len accepted hostile count: %d", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}

	// Strings with a huge declared length likewise.
	e.Reset()
	e.Uvarint(1 << 40)
	d = NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("String accepted hostile length: %q, err=%v", s, d.Err())
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	d := NewDecoder([]byte{7})
	d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("byte 7 decoded as bool, err = %v", d.Err())
	}
}

// test-only codec types registered far above the protocol tag ranges.
type testMsg struct {
	A string
	B uint64
}

type testNested struct {
	Inner any
}

type testUnregistered struct{}

func init() {
	Register(10_001, testMsg{},
		func(e *Encoder, v any) {
			m := v.(testMsg)
			e.String(m.A)
			e.U64(m.B)
		},
		func(d *Decoder) any {
			var m testMsg
			m.A = d.String()
			m.B = d.U64()
			return m
		})
	Register(10_002, testNested{},
		func(e *Encoder, v any) { e.Any(v.(testNested).Inner) },
		func(d *Decoder) any { return testNested{Inner: d.Any()} })
}

func TestMessageRoundTrip(t *testing.T) {
	var e Encoder
	msg := testMsg{A: "x", B: 9}
	if !EncodeMessage(&e, msg) {
		t.Fatal("EncodeMessage declined a registered type")
	}
	v, err := DecodeMessage(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v != msg {
		t.Fatalf("got %#v want %#v", v, msg)
	}
}

func TestEncodeMessageDeclinesUnregistered(t *testing.T) {
	var e Encoder
	if EncodeMessage(&e, testUnregistered{}) {
		t.Fatal("EncodeMessage accepted an unregistered type")
	}
}

func TestNestedAny(t *testing.T) {
	var e Encoder
	msg := testNested{Inner: testMsg{A: "in", B: 1}}
	if !EncodeMessage(&e, msg) {
		t.Fatal("nested registered payload declined")
	}
	v, err := DecodeMessage(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v != msg {
		t.Fatalf("got %#v want %#v", v, msg)
	}

	// nil payload round trips as nil.
	e.Reset()
	if !EncodeMessage(&e, testNested{}) {
		t.Fatal("nil payload declined")
	}
	v, err = DecodeMessage(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v.(testNested).Inner != nil {
		t.Fatalf("nil payload decoded as %#v", v)
	}

	// An unregistered nested payload poisons the whole message so the
	// transport falls the envelope back to gob — never a spliced frame.
	e.Reset()
	if EncodeMessage(&e, testNested{Inner: testUnregistered{}}) {
		t.Fatal("unregistered nested payload accepted")
	}
}

func TestDecodeMessageUnknownTag(t *testing.T) {
	var e Encoder
	e.Uvarint(9_999_999)
	if _, err := DecodeMessage(e.Bytes()); err == nil {
		t.Fatal("unknown tag decoded")
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("reserved tag", func() {
		Register(TagNil, testMsg{}, func(*Encoder, any) {}, func(*Decoder) any { return nil })
	})
	expectPanic("duplicate tag", func() {
		Register(10_001, testUnregistered{}, func(*Encoder, any) {}, func(*Decoder) any { return nil })
	})
	expectPanic("duplicate type", func() {
		Register(10_003, testMsg{}, func(*Encoder, any) {}, func(*Decoder) any { return nil })
	})
}

func TestCodecsSortedAndComplete(t *testing.T) {
	cs := Codecs()
	if len(cs) < 2 {
		t.Fatalf("registry has %d codecs", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Tag >= cs[i].Tag {
			t.Fatalf("codecs not in ascending tag order at %d", i)
		}
	}
	seen := false
	for _, c := range cs {
		if c.Tag == 10_001 {
			seen = true
			if c.Type.Name() != "testMsg" {
				t.Fatalf("tag 10001 bound to %v", c.Type)
			}
		}
	}
	if !seen {
		t.Fatal("registered codec missing from Codecs()")
	}
}
