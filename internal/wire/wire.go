// Package wire is Squid's hand-rolled binary codec for the hot-path
// protocol messages. encoding/gob pays a per-connection type-description
// tax and a per-message type-name tax on every interface-valued field —
// measurable as 5-10x payload inflation on the cluster-query path (see
// BENCH_3.json). This package replaces it with a fixed-layout,
// zero-alloc-on-encode format while keeping gob as the compatibility
// oracle: every codec is equivalence-tested against gob round trips, and
// the TCP transport negotiates per connection so binary and gob-only peers
// interoperate (see internal/transport and DESIGN.md §4i).
//
// Layout discipline: each message type owns one tag (registry.go) and one
// fixed field order. Integers are unsigned varints (lengths, counts,
// small enums) or fixed 8-byte little-endian words (ring identifiers,
// tokens — uniformly distributed, so varints would *grow* them). Strings
// and slices are length-prefixed. There is no field skipping and no
// self-description: changing a message's layout means assigning a fresh
// tag and keeping the old decoder, exactly like bumping an RPC version.
//
// Encode is allocation-free: an Encoder is an append-only buffer owned by
// one connection and reused frame after frame. Decode allocates only what
// the decoded value itself needs, and every length read is bounds-checked
// against the remaining input before any allocation, so a corrupt or
// hostile frame fails fast instead of allocating unboundedly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports input that ended mid-value.
var ErrTruncated = errors.New("wire: truncated input")

// ErrCorrupt reports structurally invalid input (an impossible length, a
// varint overflow, trailing garbage).
var ErrCorrupt = errors.New("wire: corrupt input")

// Encoder is an append-only encode buffer. The zero value is ready to
// use; Reset between messages to reuse the backing array. Encoders are
// not safe for concurrent use — own one per connection.
type Encoder struct {
	buf []byte
	err error
}

// Reset truncates the buffer for a new message, keeping capacity, and
// clears any sticky error.
//
//lint:allocfree
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.err = nil
}

// Bytes returns the encoded frame. The slice aliases the encoder's
// buffer and is invalidated by the next Reset.
//
//lint:allocfree
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
//
//lint:allocfree
func (e *Encoder) Len() int { return len(e.buf) }

// Err returns the sticky encode error (an unregistered dynamic type hit
// by Any), or nil.
func (e *Encoder) Err() error { return e.err }

// Uvarint appends an unsigned varint (LEB128, as encoding/binary).
//
//lint:allocfree
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Int appends a signed integer as a zigzag varint.
//
//lint:allocfree
func (e *Encoder) Int(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// U64 appends a fixed 8-byte little-endian word. Use it for ring
// identifiers, curve prefixes and tokens: they are uniformly distributed
// over 64 bits, where a varint averages longer than the fixed form.
//
//lint:allocfree
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Bool appends one byte, 0 or 1.
//
//lint:allocfree
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
//
//lint:allocfree
func (e *Encoder) String(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends length-prefixed raw bytes.
//
//lint:allocfree
func (e *Encoder) RawBytes(b []byte) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Strings appends a length-prefixed slice of strings.
//
//lint:allocfree
func (e *Encoder) Strings(ss []string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// fail records the first encode error; later writes are still appended
// but the message is discarded by EncodeMessage.
func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Decoder consumes one encoded frame. Errors are sticky: after the first
// truncation or corruption, every subsequent read returns a zero value,
// so codecs can decode straight-line and check Err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps one frame's bytes.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset re-aims the decoder at a new frame, clearing state.
func (d *Decoder) Reset(b []byte) {
	d.buf = b
	d.off = 0
	d.err = nil
}

// Err returns the sticky decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrCorrupt)
		}
		return 0
	}
	d.off += n
	return v
}

// Int reads a zigzag varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrCorrupt)
		}
		return 0
	}
	d.off += n
	return v
}

// U64 reads a fixed 8-byte little-endian word.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Bool reads one byte; any value other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail(ErrTruncated)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail(ErrCorrupt)
		return false
	}
	return b == 1
}

// String reads a length-prefixed string. The length is validated against
// the remaining input before the string is allocated.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// RawBytes reads length-prefixed raw bytes (a fresh copy).
func (d *Decoder) RawBytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrTruncated)
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += int(n)
	return b
}

// Strings reads a length-prefixed string slice; a zero count decodes as
// nil, matching gob's omitted-empty semantics.
func (d *Decoder) Strings() []string {
	n := d.Len(1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Len reads an element count and validates it against the remaining
// input, assuming each element costs at least minBytes on the wire. It
// is the guard every slice decode must pass before allocating: a hostile
// count can never make the decoder allocate more than the frame's own
// size. Returns 0 (with the error set) on violation.
func (d *Decoder) Len(minBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(math.MaxInt32) || n*uint64(minBytes) > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, n, d.Remaining()))
		return 0
	}
	return int(n)
}

// Close verifies the frame was consumed exactly: undecoded trailing bytes
// are as corrupt as truncation.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.fail(fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off))
	}
	return d.err
}
