package wire

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Tag assignments. Tags are the wire-stable names of message layouts:
// once shipped, a tag's layout is frozen — a layout change means a new
// tag with the old decoder retained for compatibility (DESIGN.md §4i).
//
//	0        reserved by the transport for gob-fallback frames
//	1        nil interface value (Any)
//	2-7      reserved
//	8-31     internal/chord
//	32-63    internal/squid
//	64-      future subsystems
const (
	// TagNil encodes a nil interface value inside Any.
	TagNil = 1

	// Chord protocol messages (assigned in internal/chord).
	TagChordBase = 8
	// Squid protocol messages (assigned in internal/squid).
	TagSquidBase = 32
)

// EncodeFunc appends one registered type's fixed layout. v's dynamic type
// is guaranteed to be the codec's registered type.
type EncodeFunc func(e *Encoder, v any)

// DecodeFunc parses one registered type's layout and returns the decoded
// value (same concrete type that was encoded). Errors surface through the
// decoder's sticky error.
type DecodeFunc func(d *Decoder) any

// Codec binds a tag to one concrete type's encode/decode pair.
type Codec struct {
	Tag    uint64
	Type   reflect.Type
	Encode EncodeFunc
	Decode DecodeFunc
}

var (
	regMu sync.RWMutex
	//lint:guarded-by regMu
	byType = map[reflect.Type]*Codec{}
	//lint:guarded-by regMu
	byTag = map[uint64]*Codec{}
)

// Register binds tag to prototype's concrete type. It is called from
// protocol packages' init functions, next to the matching
// transport.Register call (the squid-lint wirecodec analyzer enforces the
// pairing). Duplicate tags or types panic: the registry is a compile-time
// contract, not runtime configuration.
func Register(tag uint64, prototype any, enc EncodeFunc, dec DecodeFunc) {
	if tag <= TagNil {
		panic(fmt.Sprintf("wire: tag %d is reserved", tag))
	}
	t := reflect.TypeOf(prototype)
	if t == nil {
		panic("wire: nil prototype")
	}
	if enc == nil || dec == nil {
		panic(fmt.Sprintf("wire: nil codec func for %v", t))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if c, ok := byTag[tag]; ok {
		panic(fmt.Sprintf("wire: tag %d already bound to %v", tag, c.Type))
	}
	if c, ok := byType[t]; ok {
		panic(fmt.Sprintf("wire: type %v already bound to tag %d", t, c.Tag))
	}
	c := &Codec{Tag: tag, Type: t, Encode: enc, Decode: dec}
	byTag[tag] = c
	byType[t] = c
}

// Lookup returns the codec for v's dynamic type, or nil.
//
//lint:allow-allocfree RLock and map read allocate nothing; reflect.TypeOf of a non-pointer interface is a header read
func Lookup(v any) *Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	return byType[reflect.TypeOf(v)]
}

// ByTag returns the codec for a wire tag, or nil.
//
//lint:allow-allocfree RLock and map read allocate nothing
func ByTag(tag uint64) *Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	return byTag[tag]
}

// Codecs returns every registered codec in ascending tag order. The
// equivalence tests iterate it so a codec registered without test
// coverage fails loudly instead of rotting silently.
func Codecs() []*Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Codec, 0, len(byTag))
	for _, c := range byTag {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// EncodeMessage appends tag + body for msg. It reports false — leaving
// possibly partial bytes in the buffer, so Reset before reuse — when
// msg's type, or a nested dynamic value inside it, has no codec; the
// transport then falls back to a gob frame for this message.
//
//lint:allocfree
func EncodeMessage(e *Encoder, msg any) bool {
	c := Lookup(msg)
	if c == nil {
		return false
	}
	e.Uvarint(c.Tag)
	c.Encode(e, msg)
	return e.err == nil
}

// DecodeMessage parses one tagged message from a complete frame.
func DecodeMessage(b []byte) (any, error) {
	d := NewDecoder(b)
	tag := d.Uvarint()
	if d.err != nil {
		return nil, d.err
	}
	c := ByTag(tag)
	if c == nil {
		return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
	}
	v := c.Decode(d)
	if err := d.Close(); err != nil {
		return nil, err
	}
	return v, nil
}

// Any encodes a dynamically typed value (an interface field such as
// chord.RouteMsg.Payload): tag + body, or TagNil for nil. An
// unregistered dynamic type poisons the encoder so EncodeMessage reports
// false and the whole envelope falls back to gob — a message is either
// fully binary or fully gob, never spliced.
//
//lint:allocfree
func (e *Encoder) Any(v any) {
	if v == nil {
		e.Uvarint(TagNil)
		return
	}
	c := Lookup(v)
	if c == nil {
		//lint:allow-allocfree error path: the message falls back to gob
		e.fail(fmt.Errorf("wire: no codec for %T", v))
		return
	}
	e.Uvarint(c.Tag)
	c.Encode(e, v)
}

// Any decodes a dynamically typed value written by Encoder.Any.
func (d *Decoder) Any() any {
	tag := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if tag == TagNil {
		return nil
	}
	c := ByTag(tag)
	if c == nil {
		d.fail(fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag))
		return nil
	}
	return c.Decode(d)
}
