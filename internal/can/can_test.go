package can

import (
	"math/rand"
	"testing"
)

func TestBuildPartitionsSpace(t *testing.T) {
	nw, err := Build(2, 8, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 40 {
		t.Fatalf("size = %d", nw.Size())
	}
	// Zones must partition the space: total volume matches and every
	// sampled point lies in exactly one zone.
	var volume uint64
	for _, z := range nw.Zones() {
		v := uint64(1)
		for i := range z.Lo {
			if z.Hi[i] < z.Lo[i] {
				t.Fatalf("zone %d inverted on axis %d", z.ID, i)
			}
			v *= z.Hi[i] - z.Lo[i] + 1
		}
		volume += v
	}
	if volume != 1<<16 {
		t.Errorf("zones cover volume %d, want %d", volume, 1<<16)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		pt := []uint64{rng.Uint64() & 255, rng.Uint64() & 255}
		owners := 0
		for _, z := range nw.Zones() {
			if z.contains(pt) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %v owned by %d zones", pt, owners)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(0, 8, 4, 1); err == nil {
		t.Error("0 dims should fail")
	}
	if _, err := Build(2, 40, 4, 1); err == nil {
		t.Error("oversize geometry should fail")
	}
	if _, err := Build(2, 8, 0, 1); err == nil {
		t.Error("0 nodes should fail")
	}
}

func TestNeighborsAreAdjacent(t *testing.T) {
	nw, err := Build(2, 8, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range nw.Zones() {
		if nw.NeighborCount(z.ID) == 0 && nw.Size() > 1 {
			t.Errorf("zone %d has no neighbors", z.ID)
		}
		for o := range nw.neighbors[z.ID] {
			if !zonesAdjacent(z, nw.zones[o]) {
				t.Errorf("zones %d and %d linked but not adjacent", z.ID, o)
			}
			if !nw.neighbors[o][z.ID] {
				t.Errorf("asymmetric neighbor link %d -> %d", z.ID, o)
			}
		}
	}
}

func TestRouteReachesTarget(t *testing.T) {
	nw, err := Build(2, 10, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	maxHops := 0
	for trial := 0; trial < 200; trial++ {
		src := []uint64{rng.Uint64() & 1023, rng.Uint64() & 1023}
		dst := []uint64{rng.Uint64() & 1023, rng.Uint64() & 1023}
		hops := nw.Route(src, dst)
		if hops > maxHops {
			maxHops = hops
		}
	}
	// CAN path length is O(d n^{1/d}) = O(2*8) here; allow generous slack.
	if maxHops > 40 {
		t.Errorf("max hops %d too large for 64 zones", maxHops)
	}
	if maxHops == 0 {
		t.Error("all routes were local; suspicious")
	}
}

func TestVisitRegionCoversExactly(t *testing.T) {
	nw, err := Build(2, 8, 50, 17)
	if err != nil {
		t.Fatal(err)
	}
	lo := []uint64{40, 100}
	hi := []uint64{90, 130}
	zones, msgs := nw.VisitRegion([]uint64{0, 0}, lo, hi)
	visited := map[int]bool{}
	for _, z := range zones {
		visited[z] = true
	}
	for _, z := range nw.Zones() {
		if z.overlaps(lo, hi) != visited[z.ID] {
			t.Errorf("zone %d overlap=%v visited=%v", z.ID, z.overlaps(lo, hi), visited[z.ID])
		}
	}
	if msgs < len(zones)-1 {
		t.Errorf("messages %d cannot reach %d zones", msgs, len(zones))
	}
}

func TestAddAndItems(t *testing.T) {
	nw, err := Build(2, 8, 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		nw.Add([]uint64{rng.Uint64() & 255, rng.Uint64() & 255})
	}
	for _, z := range nw.Zones() {
		total += nw.Items(z.ID)
	}
	if total != 300 {
		t.Errorf("items lost: %d", total)
	}
}
