// Package can implements a Content-Addressable Network overlay
// (Ratnasamy et al., SIGCOMM 2001): the d-dimensional coordinate space is
// partitioned into zones, one per node; routing is a greedy walk through
// zone neighbors. It exists as the substrate of the Andrzejak-Xu
// inverse-SFC range-query baseline (paper related work [1]), which the
// benchmarks compare against Squid.
//
// The implementation models the overlay's structure and cost (zones,
// neighbor hops) directly in memory; it is a deterministic analytical
// simulator rather than a message-passing deployment, which is all the
// baseline comparison needs.
package can

import (
	"fmt"
	"math/rand"
)

// Zone is one node's axis-aligned region of the coordinate space,
// inclusive on both ends.
type Zone struct {
	ID     int
	Lo, Hi []uint64
}

// contains reports whether the point lies in the zone.
func (z *Zone) contains(pt []uint64) bool {
	for i := range pt {
		if pt[i] < z.Lo[i] || pt[i] > z.Hi[i] {
			return false
		}
	}
	return true
}

// overlaps reports whether the zone intersects the box [lo, hi].
func (z *Zone) overlaps(lo, hi []uint64) bool {
	for i := range lo {
		if z.Hi[i] < lo[i] || hi[i] < z.Lo[i] {
			return false
		}
	}
	return true
}

// Network is a CAN overlay over [0,2^bits)^dims.
type Network struct {
	dims, bits int
	zones      []*Zone
	neighbors  map[int]map[int]bool
	items      map[int]int // zone -> stored item count
}

// Build grows a CAN of n zones: each join picks a random point and splits
// the zone containing it in half along its longest axis (the classic CAN
// bootstrap).
func Build(dims, bits, n int, seed int64) (*Network, error) {
	if dims < 1 || bits < 1 || dims*bits > 64 {
		return nil, fmt.Errorf("can: invalid geometry %dx%d", dims, bits)
	}
	if n < 1 {
		return nil, fmt.Errorf("can: need at least one node")
	}
	nw := &Network{
		dims: dims, bits: bits,
		neighbors: map[int]map[int]bool{0: {}},
		items:     map[int]int{},
	}
	root := &Zone{ID: 0, Lo: make([]uint64, dims), Hi: make([]uint64, dims)}
	for i := range root.Hi {
		root.Hi[i] = (uint64(1) << bits) - 1
	}
	nw.zones = []*Zone{root}
	rng := rand.New(rand.NewSource(seed))
	pt := make([]uint64, dims)
	for len(nw.zones) < n {
		for i := range pt {
			pt[i] = rng.Uint64() & ((uint64(1) << bits) - 1)
		}
		z := nw.Locate(pt)
		if !nw.split(z) {
			continue // zone already a single cell; retry elsewhere
		}
	}
	return nw, nil
}

// split halves zone z along its longest axis, creating a new zone, and
// repairs the neighbor sets. Returns false if z is a single cell.
func (nw *Network) split(z *Zone) bool {
	axis, width := -1, uint64(0)
	for i := 0; i < nw.dims; i++ {
		if w := z.Hi[i] - z.Lo[i]; w > width || axis == -1 {
			axis, width = i, w
		}
	}
	if width == 0 {
		return false
	}
	mid := z.Lo[axis] + width/2
	nz := &Zone{
		ID: len(nw.zones),
		Lo: append([]uint64(nil), z.Lo...),
		Hi: append([]uint64(nil), z.Hi...),
	}
	nz.Lo[axis] = mid + 1
	z.Hi[axis] = mid
	nw.zones = append(nw.zones, nz)

	// Rebuild neighbor relations for the two affected zones.
	nw.neighbors[nz.ID] = map[int]bool{}
	affected := []int{z.ID}
	for o := range nw.neighbors[z.ID] {
		affected = append(affected, o)
	}
	// The new zone may neighbor the old zone's former neighbors and the old
	// zone itself.
	for _, a := range affected {
		nw.relink(nz.ID, a)
	}
	nw.relink(z.ID, nz.ID)
	// Old neighbors may no longer touch the shrunken zone.
	for o := range nw.neighbors[z.ID] {
		nw.relink(z.ID, o)
	}
	return true
}

// relink sets or clears adjacency between two zones based on geometry.
func (nw *Network) relink(a, b int) {
	if a == b {
		return
	}
	za, zb := nw.zones[a], nw.zones[b]
	if zonesAdjacent(za, zb) {
		nw.neighbors[a][b] = true
		nw.neighbors[b][a] = true
	} else {
		delete(nw.neighbors[a], b)
		delete(nw.neighbors[b], a)
	}
}

// zonesAdjacent reports whether the zones share a (d-1)-dimensional face.
func zonesAdjacent(a, b *Zone) bool {
	touching := -1
	for i := range a.Lo {
		overlap := a.Lo[i] <= b.Hi[i] && b.Lo[i] <= a.Hi[i]
		abut := a.Hi[i]+1 == b.Lo[i] || b.Hi[i]+1 == a.Lo[i]
		switch {
		case overlap:
			// fine: shared extent on this axis
		case abut:
			if touching >= 0 {
				return false // can only abut on one axis
			}
			touching = i
		default:
			return false
		}
	}
	return touching >= 0
}

// Size returns the number of zones (nodes).
func (nw *Network) Size() int { return len(nw.zones) }

// Locate returns the zone containing the point.
func (nw *Network) Locate(pt []uint64) *Zone {
	for _, z := range nw.zones {
		if z.contains(pt) {
			return z
		}
	}
	return nw.zones[0] // unreachable: zones partition the space
}

// Add stores an item at the zone containing the point.
func (nw *Network) Add(pt []uint64) { nw.items[nw.Locate(pt).ID]++ }

// Items returns the item count of a zone.
func (nw *Network) Items(zoneID int) int { return nw.items[zoneID] }

// Route walks greedily from the zone containing src toward dst, returning
// the hop count (the CAN O(d·n^(1/d)) path). Each hop picks the neighbor
// zone closest to the destination point; because zones partition the space
// into axis-aligned boxes, the neighbor across the face toward the
// destination is always strictly closer, so the walk terminates.
func (nw *Network) Route(src, dst []uint64) int {
	cur := nw.Locate(src)
	hops := 0
	for !cur.contains(dst) {
		best, bestDist := -1, ^uint64(0)
		for o := range nw.neighbors[cur.ID] {
			if d := boxDist(nw.zones[o], dst); d < bestDist {
				best, bestDist = o, d
			}
		}
		if best < 0 || bestDist >= boxDist(cur, dst) {
			break // isolated or non-progressing (cannot happen on a valid partition)
		}
		cur = nw.zones[best]
		hops++
		if hops > 4*len(nw.zones) {
			break // safety net
		}
	}
	return hops
}

// boxDist is the L1 distance from a point to the zone's box (0 inside).
func boxDist(z *Zone, pt []uint64) uint64 {
	var d uint64
	for i := range pt {
		switch {
		case pt[i] < z.Lo[i]:
			d += z.Lo[i] - pt[i]
		case pt[i] > z.Hi[i]:
			d += pt[i] - z.Hi[i]
		}
	}
	return d
}

// VisitRegion returns the zones intersecting the box [lo, hi] and the
// number of overlay messages needed to reach them all: one greedy route to
// the first zone plus a constrained flood along neighbor links inside the
// region (how CAN resolves a multicast to a region).
func (nw *Network) VisitRegion(from, lo, hi []uint64) (zones []int, messages int) {
	entry := nw.Locate(lo)
	messages = nw.Route(from, lo)
	seen := map[int]bool{entry.ID: true}
	queue := []int{entry.ID}
	zones = append(zones, entry.ID)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for o := range nw.neighbors[cur] {
			if seen[o] || !nw.zones[o].overlaps(lo, hi) {
				continue
			}
			seen[o] = true
			messages++
			queue = append(queue, o)
			zones = append(zones, o)
		}
	}
	return zones, messages
}

// Zones exposes the zone list (read-only use).
func (nw *Network) Zones() []*Zone { return nw.zones }

// NeighborCount returns a zone's degree.
func (nw *Network) NeighborCount(zoneID int) int { return len(nw.neighbors[zoneID]) }
