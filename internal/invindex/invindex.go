// Package invindex implements the structured keyword-search baseline the
// paper positions itself against (related work [7, 18]: "structured
// keyword search systems extend the data lookup protocol with a
// distributed inverted index").
//
// Each keyword hashes to a home node that stores the postings list of
// every element containing that keyword. A conjunctive query fetches one
// postings list per keyword and intersects them at the initiator. Two
// structural costs follow, which the benchmarks quantify against Squid:
// every element is indexed once per keyword (k-fold storage and publish
// messages), and queries move whole postings lists (bandwidth scales with
// the most popular keyword, not the result). Partial keywords, wildcards
// and ranges are not supported at all — the gap Squid's SFC index fills.
package invindex

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"squid/internal/chord"
	"squid/internal/squid"
	"squid/internal/transport"
)

// postMsg adds an element to a keyword's postings list.
type postMsg struct {
	Word string
	Elem squid.Element
}

// getMsg fetches a keyword's postings list.
type getMsg struct {
	QID     uint64
	Word    string
	ReplyTo transport.Addr
}

// postingsMsg answers a getMsg.
type postingsMsg struct {
	QID   uint64
	Word  string
	Elems []squid.Element
}

// bucket is the stored value for one hash key (handover unit).
type bucket map[string][]squid.Element

func init() {
	transport.Register(postMsg{})
	transport.Register(getMsg{})
	transport.Register(postingsMsg{})
	transport.Register(bucket{})
}

// App is the per-node inverted-index application.
type App struct {
	space chord.Space

	mu       sync.Mutex
	postings map[chord.ID]bucket
	node     *chord.Node

	pending map[uint64]*gather
}

type gather struct {
	want    int
	byWord  map[string][]squid.Element
	replies int
	done    func(map[string][]squid.Element)
}

// NewApp creates the application for a ring of the given geometry.
func NewApp(space chord.Space) *App {
	return &App{
		space:    space,
		postings: make(map[chord.ID]bucket),
		pending:  make(map[uint64]*gather),
	}
}

// Attach binds the app to its node.
func (a *App) Attach(n *chord.Node) { a.node = n }

// HashWord maps a keyword to its home identifier (FNV-1a folded into the
// ring).
func HashWord(space chord.Space, w string) chord.ID {
	h := fnv.New64a()
	h.Write([]byte(w))
	return space.Fold(h.Sum64())
}

// Deliver implements chord.App.
func (a *App) Deliver(from transport.Addr, key chord.ID, payload any) {
	switch m := payload.(type) {
	case postMsg:
		id := HashWord(a.space, m.Word)
		a.mu.Lock()
		b, ok := a.postings[id]
		if !ok {
			b = bucket{}
			a.postings[id] = b
		}
		b[m.Word] = append(b[m.Word], m.Elem)
		a.mu.Unlock()
	case getMsg:
		id := HashWord(a.space, m.Word)
		a.mu.Lock()
		elems := append([]squid.Element(nil), a.postings[id][m.Word]...)
		a.mu.Unlock()
		a.node.SendApp(m.ReplyTo, postingsMsg{QID: m.QID, Word: m.Word, Elems: elems})
	case postingsMsg:
		g, ok := a.pending[m.QID]
		if !ok {
			return
		}
		g.byWord[m.Word] = m.Elems
		g.replies++
		if g.replies == g.want {
			delete(a.pending, m.QID)
			g.done(g.byWord)
		}
	}
}

// Publish indexes an element under every keyword (one routed message per
// keyword — the k-fold publish cost). Goroutine-confined like all node
// methods.
func (a *App) Publish(e squid.Element, trace uint64) {
	for _, w := range e.Values {
		if w == "" {
			continue
		}
		a.node.Route(HashWord(a.space, w), postMsg{Word: w, Elem: e}, trace)
	}
}

// Lookup fetches postings for every keyword and calls done with the
// per-word lists. Goroutine-confined.
func (a *App) Lookup(qid uint64, words []string, done func(map[string][]squid.Element)) {
	words = dedup(words)
	if len(words) == 0 {
		done(nil)
		return
	}
	a.pending[qid] = &gather{want: len(words), byWord: map[string][]squid.Element{}, done: done}
	for _, w := range words {
		a.node.Route(HashWord(a.space, w), getMsg{QID: qid, Word: w, ReplyTo: a.node.Self().Addr}, qid)
	}
}

func dedup(ws []string) []string {
	seen := map[string]bool{}
	out := ws[:0:0]
	for _, w := range ws {
		if w != "" && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// Intersect computes the conjunctive result from per-word postings,
// identifying elements by payload.
func Intersect(byWord map[string][]squid.Element) []squid.Element {
	if len(byWord) == 0 {
		return nil
	}
	counts := map[string]int{}
	rep := map[string]squid.Element{}
	for _, list := range byWord {
		seen := map[string]bool{}
		for _, e := range list {
			if !seen[e.Data] {
				seen[e.Data] = true
				counts[e.Data]++
				rep[e.Data] = e
			}
		}
	}
	var out []squid.Element
	for id, c := range counts {
		if c == len(byWord) {
			out = append(out, rep[id])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Data < out[j].Data })
	return out
}

// HandoverOut implements chord.App.
func (a *App) HandoverOut(x, y chord.ID) []chord.Item {
	a.mu.Lock()
	defer a.mu.Unlock()
	var items []chord.Item
	for id, b := range a.postings {
		if a.space.Between(id, x, y) {
			items = append(items, chord.Item{Key: id, Value: b})
			delete(a.postings, id)
		}
	}
	return items
}

// HandoverIn implements chord.App.
func (a *App) HandoverIn(items []chord.Item) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, it := range items {
		b, ok := it.Value.(bucket)
		if !ok {
			continue
		}
		dst, ok := a.postings[it.Key]
		if !ok {
			a.postings[it.Key] = b
			continue
		}
		for w, es := range b {
			dst[w] = append(dst[w], es...)
		}
	}
}

// Load implements chord.App: number of posting keys stored.
func (a *App) Load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.postings)
}

// PostingsSize returns the total number of posting entries at this node —
// the storage-blowup metric (each element appears once per keyword).
func (a *App) PostingsSize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.postings {
		for _, es := range b {
			n += len(es)
		}
	}
	return n
}

var _ chord.App = (*App)(nil)

// Network is an inverted-index deployment over an oracle-bootstrapped
// Chord ring, for the baseline benchmarks.
type Network struct {
	Inproc *transport.Inproc
	space  chord.Space
	peers  []*peer
	qid    uint64
	mu     sync.Mutex

	msgMu    sync.Mutex
	messages map[uint64]int
}

type peer struct {
	node *chord.Node
	app  *App
}

// BuildNetwork constructs n nodes with the given ring width.
func BuildNetwork(bits, n int, seed int64) (*Network, error) {
	space, err := chord.NewSpace(bits)
	if err != nil {
		return nil, err
	}
	nw := &Network{Inproc: transport.NewInproc(), space: space, messages: make(map[uint64]int)}
	nw.Inproc.SetObserver(func(from, to transport.Addr, msg any) {
		trace := uint64(0)
		switch m := msg.(type) {
		case chord.RouteMsg:
			trace = m.Trace
		case chord.AppMsg:
			if p, ok := m.Payload.(postingsMsg); ok {
				trace = p.QID
			}
		}
		if trace != 0 {
			nw.msgMu.Lock()
			nw.messages[trace]++
			nw.msgMu.Unlock()
		}
	})

	ids := map[uint64]bool{}
	rng := newRand(seed)
	for len(ids) < n {
		ids[rng.Uint64()&space.Mask()] = true
	}
	for id := range ids {
		app := NewApp(space)
		node := chord.NewNode(chord.Config{Space: space}, chord.ID(id), app)
		app.Attach(node)
		addr := transport.Addr(fmt.Sprintf("iv%d", len(nw.peers)))
		ep, err := nw.Inproc.Listen(addr, node)
		if err != nil {
			return nil, err
		}
		node.Start(ep)
		nw.peers = append(nw.peers, &peer{node: node, app: app})
	}
	//lint:allow-ringcmp canonical linear order of the bootstrap table; the wrap-around successor is index 0, taken below
	sort.Slice(nw.peers, func(i, j int) bool { return nw.peers[i].node.Self().ID < nw.peers[j].node.Self().ID })
	for i, p := range nw.peers {
		pred := nw.peers[(i+len(nw.peers)-1)%len(nw.peers)].node.Self()
		var succs []chord.NodeRef
		for k := 1; k <= 4 && k <= len(nw.peers); k++ {
			succs = append(succs, nw.peers[(i+k)%len(nw.peers)].node.Self())
		}
		fingers := make([]chord.NodeRef, bits)
		for b := 0; b < bits; b++ {
			target := space.Add(p.node.Self().ID, uint64(1)<<uint(b))
			//lint:allow-ringcmp binary search over the sorted bootstrap table; wrap handled by the j == len reset below
			j := sort.Search(len(nw.peers), func(j int) bool { return nw.peers[j].node.Self().ID >= target })
			if j == len(nw.peers) {
				j = 0
			}
			fingers[b] = nw.peers[j].node.Self()
		}
		p := p
		pr, ss, fg := pred, succs, fingers
		done := make(chan struct{})
		if err := p.node.Invoke(func() { p.node.InstallRing(pr, ss, fg); close(done) }); err != nil {
			return nil, fmt.Errorf("invindex: bootstrap invoke: %w", err)
		}
		<-done
	}
	return nw, nil
}

// mustInvoke schedules fn on n's delivery goroutine. The baseline network
// never detaches peers, so a refused Invoke is a harness bug; panicking
// beats the silent channel-wait deadlock the dropped error would become.
func mustInvoke(n *chord.Node, fn func()) {
	if err := n.Invoke(fn); err != nil {
		panic(fmt.Sprintf("invindex: Invoke on %x: %v", uint64(n.Self().ID), err))
	}
}

// Publish indexes an element (k routed messages for k keywords).
func (nw *Network) Publish(via int, e squid.Element) {
	p := nw.peers[via%len(nw.peers)]
	mustInvoke(p.node, func() { p.app.Publish(e, 0) })
}

// QueryResult reports one conjunctive query's outcome and cost.
type QueryResult struct {
	Matches  []squid.Element
	Messages int
}

// Query resolves a conjunctive exact-keyword query from the given peer.
func (nw *Network) Query(via int, words []string) QueryResult {
	nw.mu.Lock()
	nw.qid++
	qid := nw.qid
	nw.mu.Unlock()

	p := nw.peers[via%len(nw.peers)]
	ch := make(chan map[string][]squid.Element, 1)
	mustInvoke(p.node, func() {
		p.app.Lookup(qid, words, func(m map[string][]squid.Element) { ch <- m })
	})
	byWord := <-ch
	nw.Inproc.Quiesce()
	nw.msgMu.Lock()
	msgs := nw.messages[qid]
	nw.msgMu.Unlock()
	return QueryResult{Matches: Intersect(byWord), Messages: msgs}
}

// Quiesce waits for the network to drain (e.g. after publishes).
func (nw *Network) Quiesce() { nw.Inproc.Quiesce() }

// TotalPostings sums posting entries across nodes (storage blowup).
func (nw *Network) TotalPostings() int {
	total := 0
	for _, p := range nw.peers {
		total += p.app.PostingsSize()
	}
	return total
}

// Size returns the number of peers.
func (nw *Network) Size() int { return len(nw.peers) }

// newRand isolates the package's randomness.
func newRand(seed int64) *randSource { return &randSource{state: uint64(seed)*2654435761 + 1} }

// randSource is a tiny splitmix64 generator (enough for identifier
// sampling without importing math/rand state shared elsewhere).
type randSource struct{ state uint64 }

// Uint64 returns the next pseudo-random value.
func (r *randSource) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
