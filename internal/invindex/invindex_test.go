package invindex

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"squid/internal/chord"
	"squid/internal/squid"
)

func TestHashWordStable(t *testing.T) {
	sp := chord.MustSpace(32)
	if HashWord(sp, "computer") != HashWord(sp, "computer") {
		t.Error("hash not stable")
	}
	if HashWord(sp, "computer") == HashWord(sp, "network") {
		t.Error("suspicious collision")
	}
	if uint64(HashWord(sp, "x")) > sp.Mask() {
		t.Error("hash outside space")
	}
}

func TestIntersect(t *testing.T) {
	e := func(id string) squid.Element { return squid.Element{Data: id} }
	byWord := map[string][]squid.Element{
		"a": {e("1"), e("2"), e("3")},
		"b": {e("2"), e("3"), e("4")},
		"c": {e("3"), e("2")},
	}
	got := Intersect(byWord)
	var ids []string
	for _, m := range got {
		ids = append(ids, m.Data)
	}
	sort.Strings(ids)
	if !reflect.DeepEqual(ids, []string{"2", "3"}) {
		t.Errorf("intersect = %v", ids)
	}
	if Intersect(nil) != nil {
		t.Error("empty intersect")
	}
	// Duplicate postings within one list must not double count.
	dup := map[string][]squid.Element{
		"a": {e("1"), e("1")},
		"b": {e("2")},
	}
	if got := Intersect(dup); len(got) != 0 {
		t.Errorf("dup intersect = %v", got)
	}
}

func TestPublishAndQuery(t *testing.T) {
	nw, err := BuildNetwork(32, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 25 {
		t.Fatalf("size = %d", nw.Size())
	}
	both, onlyA := 0, 0
	for i := 0; i < 120; i++ {
		var vals []string
		switch i % 3 {
		case 0:
			vals = []string{"computer", "network"}
			both++
		case 1:
			vals = []string{"computer", "storage"}
			onlyA++
		default:
			vals = []string{"grid", "peer"}
		}
		nw.Publish(i, squid.Element{Values: vals, Data: fmt.Sprintf("d%d", i)})
	}
	nw.Quiesce()

	res := nw.Query(0, []string{"computer", "network"})
	if len(res.Matches) != both {
		t.Errorf("conjunctive query found %d, want %d", len(res.Matches), both)
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}

	resA := nw.Query(3, []string{"computer"})
	if len(resA.Matches) != both+onlyA {
		t.Errorf("single keyword found %d, want %d", len(resA.Matches), both+onlyA)
	}

	none := nw.Query(1, []string{"computer", "zebra"})
	if len(none.Matches) != 0 {
		t.Errorf("impossible conjunction found %d", len(none.Matches))
	}

	empty := nw.Query(2, nil)
	if len(empty.Matches) != 0 {
		t.Errorf("empty query found %d", len(empty.Matches))
	}

	// Storage blowup: every element was posted once per keyword.
	if got := nw.TotalPostings(); got != 240 {
		t.Errorf("total postings = %d, want 240", got)
	}
}

func TestQueryCostScalesWithPostings(t *testing.T) {
	nw, err := BuildNetwork(32, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	// A popular word's postings travel in full even when the conjunction
	// is tiny — the bandwidth defect vs Squid.
	for i := 0; i < 300; i++ {
		nw.Publish(i, squid.Element{Values: []string{"popular", fmt.Sprintf("rare%d", i)}, Data: fmt.Sprintf("d%d", i)})
	}
	nw.Quiesce()
	res := nw.Query(0, []string{"popular", "rare7"})
	if len(res.Matches) != 1 {
		t.Fatalf("conjunction found %d", len(res.Matches))
	}
}
