package keyspace

import (
	"testing"
)

// BenchmarkWordEncode measures word→coordinate encoding.
func BenchmarkWordEncode(b *testing.B) {
	d := MustWordDim("kw", 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode("computer"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceIndex measures tuple→curve-index encoding (the publish
// hot path).
func BenchmarkSpaceIndex(b *testing.B) {
	s, err := NewWordSpace(2, 32)
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"computer", "network"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Index(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceRegion measures query→region translation (the query hot
// path).
func BenchmarkSpaceRegion(b *testing.B) {
	s, err := NewWordSpace(3, 21)
	if err != nil {
		b.Fatal(err)
	}
	q := MustParse("(comp*, net*, *)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Region(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceMatches measures the exact final filter.
func BenchmarkSpaceMatches(b *testing.B) {
	s, err := NewWordSpace(2, 32)
	if err != nil {
		b.Fatal(err)
	}
	q := MustParse("(comp*, net*)")
	vals := []string{"computer", "network"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Matches(q, vals) {
			b.Fatal("should match")
		}
	}
}
