package keyspace_test

import (
	"fmt"

	"squid/internal/keyspace"
	"squid/internal/sfc"
)

// ExampleParse shows the paper's query syntax.
func ExampleParse() {
	for _, s := range []string{
		"(computer, network)",
		"(comp*, *)",
		"(256-512, *, 10-*)",
	} {
		q, err := keyspace.Parse(s)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s exact=%v\n", q, q.IsExact())
	}
	// Output:
	// (computer, network) exact=true
	// (comp*, *) exact=false
	// (256-512, *, 10-*) exact=false
}

// ExampleSpace_Index maps a keyword tuple to its DHT key.
func ExampleSpace_Index() {
	space, _ := keyspace.NewWordSpace(2, 16)
	idx, _ := space.Index([]string{"computer", "network"})
	idx2, _ := space.Index([]string{"computer", "networks"})
	// Lexicographically close tuples land close on the curve — the
	// locality the whole system is built on.
	diff := int64(idx) - int64(idx2)
	if diff < 0 {
		diff = -diff
	}
	fmt.Println("indices within 1% of the space:", diff < 1<<32/100)
	// Output:
	// indices within 1% of the space: true
}

// ExampleSpace_Region translates a flexible query into a curve region and
// checks an element against it.
func ExampleSpace_Region() {
	space, _ := keyspace.NewWordSpace(2, 16)
	q := keyspace.MustParse("(comp*, net*)")
	region, _ := space.Region(q)

	pt, _ := space.Point([]string{"computer", "network"})
	fmt.Println("computer/network inside:", region.ContainsPoint(pt))
	fmt.Println("matches exactly:", space.Matches(q, []string{"computer", "network"}))
	fmt.Println("matches wrong prefix:", space.Matches(q, []string{"data", "network"}))
	// Output:
	// computer/network inside: true
	// matches exactly: true
	// matches wrong prefix: false
}

// ExampleNew builds the paper's grid-resource space: numeric and
// categorical attributes on a Hilbert curve.
func ExampleNew() {
	space, _ := keyspace.New(sfc.MustHilbert(3, 16),
		keyspace.MustNumericDim("memoryMB", 16, 0, 8192),
		keyspace.MustNumericDim("cpuMHz", 16, 0, 4000),
		keyspace.MustEnumDim("os", 16, []string{"linux", "freebsd", "darwin"}),
	)
	q := keyspace.MustParse("(256-512, *, linux)")
	fmt.Println("512MB linux matches:", space.Matches(q, []string{"512", "2400", "linux"}))
	fmt.Println("128MB linux matches:", space.Matches(q, []string{"128", "2400", "linux"}))
	fmt.Println("512MB darwin matches:", space.Matches(q, []string{"512", "2400", "darwin"}))
	// Output:
	// 512MB linux matches: true
	// 128MB linux matches: false
	// 512MB darwin matches: false
}
