package keyspace

import (
	"math/rand"
	"strings"
	"testing"

	"squid/internal/sfc"
)

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want Query
	}{
		{"(computer, network)", Query{Exact("computer"), Exact("network")}},
		{"computer, network", Query{Exact("computer"), Exact("network")}},
		{"(comp*, net*)", Query{Prefix("comp"), Prefix("net")}},
		{"(computer, *)", Query{Exact("computer"), Wildcard()}},
		{"(comp*, *, *)", Query{Prefix("comp"), Wildcard(), Wildcard()}},
		{"(256-512, *, 10-*)", Query{Range("256", "512"), Wildcard(), Range("10", "")}},
		{"(*-100)", Query{Range("", "100")}},
		{"(*-*)", Query{Wildcard()}},
		{"( a ,  b )", Query{Exact("a"), Exact("b")}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Parse(%q)[%d] = %+v, want %+v", c.in, i, got[i], c.want[i])
			}
		}
	}
	for _, bad := range []string{"", "()", "a,,b", "(a*b*, c)"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Exact("computer"), Prefix("net"), Wildcard(), Range("10", ""), Range("", "5"), Range("1", "9")}
	if got := q.String(); got != "(computer, net*, *, 10-*, *-5, 1-9)" {
		t.Errorf("String = %q", got)
	}
}

func TestQueryIsExact(t *testing.T) {
	if !(Query{Exact("a"), Exact("b")}).IsExact() {
		t.Error("all-exact query should be exact")
	}
	if (Query{Exact("a"), Wildcard()}).IsExact() {
		t.Error("wildcard query should not be exact")
	}
	if (Query{}).IsExact() {
		t.Error("empty query should not be exact")
	}
}

func TestWordDimOrderPreserving(t *testing.T) {
	d := MustWordDim("kw", 32)
	words := []string{"", "a", "aa", "ab", "b", "ba", "comp", "compa", "computation", "computer", "z", "z9", "0", "42"}
	// Encoding must preserve the base-37 lexicographic order (letters before
	// digits, shorter before extensions).
	var prev uint64
	for i, w := range words {
		c, err := d.Encode(w)
		if err != nil {
			t.Fatalf("Encode(%q): %v", w, err)
		}
		if i > 0 && c < prev {
			t.Errorf("order violated: Encode(%q)=%d < Encode(%q)=%d", w, c, words[i-1], prev)
		}
		prev = c
	}
}

func TestWordDimTruncation(t *testing.T) {
	d := MustWordDim("kw", 32)
	if d.Slots() != 6 {
		t.Fatalf("32-bit axis should discriminate 6 chars, got %d", d.Slots())
	}
	a, _ := d.Encode("computation")
	b, _ := d.Encode("computer")
	if a != b {
		t.Errorf("words sharing their first 6 chars should share a coordinate: %d vs %d", a, b)
	}
	c, _ := d.Encode("comput")
	if a != c {
		t.Errorf("truncation should equal the 6-char word: %d vs %d", a, c)
	}
}

func TestWordDimPrefixInterval(t *testing.T) {
	d := MustWordDim("kw", 32)
	iv, err := d.Interval(Prefix("comp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"comp", "compa", "computer", "computation", "comp99"} {
		c, _ := d.Encode(w)
		if !iv.Contains(c) {
			t.Errorf("prefix interval %v should contain Encode(%q)=%d", iv, w, c)
		}
	}
	for _, w := range []string{"com", "comq", "con", "b", "d"} {
		c, _ := d.Encode(w)
		if iv.Contains(c) {
			t.Errorf("prefix interval %v should not contain Encode(%q)=%d", iv, w, c)
		}
	}
}

func TestWordDimRangeInterval(t *testing.T) {
	d := MustWordDim("kw", 32)
	iv, err := d.Interval(Range("cat", "dog"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"cat", "cow", "dig", "dog", "dogs"} {
		c, _ := d.Encode(w)
		if !iv.Contains(c) {
			t.Errorf("[cat,dog] should contain %q", w)
		}
	}
	for _, w := range []string{"car", "doh", "e", "a"} {
		c, _ := d.Encode(w)
		if iv.Contains(c) {
			t.Errorf("[cat,dog] should not contain %q", w)
		}
	}
	// Open ends.
	from, _ := d.Interval(Range("m", ""))
	if from.Hi != (uint64(1)<<32)-1 {
		t.Errorf("open upper end should reach axis max, got %v", from)
	}
	to, _ := d.Interval(Range("", "m"))
	if to.Lo != 0 {
		t.Errorf("open lower end should reach 0, got %v", to)
	}
}

func TestWordDimMatches(t *testing.T) {
	d := MustWordDim("kw", 32)
	cases := []struct {
		t    Term
		v    string
		want bool
	}{
		{Wildcard(), "anything", true},
		{Wildcard(), "", true},
		{Exact("computer"), "computer", true},
		{Exact("computer"), "Computer", true},
		{Exact("computer"), "computation", false},
		{Prefix("comp"), "computer", true},
		{Prefix("comp"), "company", true},
		{Prefix("comp"), "con", false},
		{Prefix("comp"), "", false},
		{Range("cat", "dog"), "cow", true},
		{Range("cat", "dog"), "cat", true},
		{Range("cat", "dog"), "dog", true},
		{Range("cat", "dog"), "car", false},
		{Range("cat", "dog"), "elephant", false},
		{Range("m", ""), "zebra", true},
		{Range("m", ""), "apple", false},
		{Range("", "m"), "apple", true},
		{Range("", "m"), "zebra", false},
	}
	for _, c := range cases {
		if got := d.Matches(c.t, c.v); got != c.want {
			t.Errorf("Matches(%v, %q) = %v, want %v", c.t, c.v, got, c.want)
		}
	}
}

func TestWordDimErrors(t *testing.T) {
	if _, err := NewWordDim("x", 0); err == nil {
		t.Error("0-bit dim should fail")
	}
	if _, err := NewWordDim("x", 64); err == nil {
		t.Error("64-bit dim should fail")
	}
	d := MustWordDim("kw", 21)
	if d.Slots() != 4 {
		t.Errorf("21-bit axis slots = %d, want 4", d.Slots())
	}
	if _, err := d.Encode("héllo"); err == nil {
		t.Error("non-ascii should fail to encode")
	}
	if _, err := d.Interval(Prefix("a_b")); err == nil {
		t.Error("bad prefix chars should fail")
	}
}

func TestNumericDim(t *testing.T) {
	d := MustNumericDim("memory", 21, 0, 1024)
	lo, err := d.Encode("0")
	if err != nil || lo != 0 {
		t.Errorf("Encode(0) = %d, %v", lo, err)
	}
	hi, _ := d.Encode("1024")
	if hi != (uint64(1)<<21)-1 {
		t.Errorf("Encode(max) = %d", hi)
	}
	mid, _ := d.Encode("512")
	if mid == 0 || mid == hi {
		t.Errorf("Encode(512) = %d should be interior", mid)
	}
	under, _ := d.Encode("-5")
	over, _ := d.Encode("99999")
	if under != 0 || over != hi {
		t.Errorf("out-of-bounds should clamp: %d, %d", under, over)
	}
	if _, err := d.Encode("abc"); err == nil {
		t.Error("non-numeric should fail")
	}

	iv, err := d.Interval(Range("256", "512"))
	if err != nil {
		t.Fatal(err)
	}
	c300, _ := d.Encode("300")
	if !iv.Contains(c300) {
		t.Error("range interval should contain 300")
	}
	c100, _ := d.Encode("100")
	if iv.Contains(c100) {
		t.Error("range interval should not contain 100")
	}

	if !d.Matches(Range("256", "512"), "300") || d.Matches(Range("256", "512"), "100") {
		t.Error("range Matches wrong")
	}
	if !d.Matches(Range("256", ""), "999999") {
		t.Error("open range should match")
	}
	if !d.Matches(Exact("512"), "512.0") || d.Matches(Exact("512"), "513") {
		t.Error("exact Matches wrong")
	}
	if d.Matches(Range("1", "2"), "junk") {
		t.Error("non-numeric value should not match")
	}
	if _, err := d.Interval(Prefix("12")); err == nil {
		t.Error("prefix on numeric dim should fail")
	}
	if _, err := d.Interval(Range("512", "256")); err == nil {
		t.Error("empty numeric range should fail")
	}
}

func TestNumericDimErrors(t *testing.T) {
	if _, err := NewNumericDim("x", 21, 5, 5); err == nil {
		t.Error("min == max should fail")
	}
	if _, err := NewNumericDim("x", 21, 9, 5); err == nil {
		t.Error("min > max should fail")
	}
	if _, err := NewNumericDim("x", 0, 0, 1); err == nil {
		t.Error("0 bits should fail")
	}
}

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceIndexAndRegion(t *testing.T) {
	s := newTestSpace(t)
	idx, err := s.Index([]string{"computer", "network"})
	if err != nil {
		t.Fatal(err)
	}
	// The element's index must be covered by any query it matches.
	for _, qs := range []string{
		"(computer, network)", "(comp*, net*)", "(computer, *)", "(*, network)", "(*, *)",
		"(c-d, *)", "(comp*, *)",
	} {
		q := MustParse(qs)
		region, err := s.Region(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		clusters := sfc.Clusters(s.Curve(), region)
		covered := false
		for _, iv := range clusters {
			if iv.Contains(idx) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("query %s should cover the element's index", qs)
		}
		if !s.Matches(q, []string{"computer", "network"}) {
			t.Errorf("query %s should match the element", qs)
		}
	}
	for _, qs := range []string{"(data, *)", "(*, x*)", "(computer, networks)"} {
		q := MustParse(qs)
		if s.Matches(q, []string{"computer", "network"}) {
			t.Errorf("query %s should not match", qs)
		}
	}
}

func TestSpacePadding(t *testing.T) {
	s := newTestSpace(t)
	// Short queries pad with wildcards; short value tuples pad with "".
	q := MustParse("(computer)")
	region, err := s.Region(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(region) != 2 {
		t.Fatalf("region dims = %d", len(region))
	}
	if !s.Matches(q, []string{"computer"}) {
		t.Error("padded query should match padded values")
	}
	if !s.Matches(q, []string{"computer", "anything"}) {
		t.Error("wildcard pad should match any second value")
	}
	if _, err := s.Region(MustParse("(a, b, c)")); err == nil {
		t.Error("over-long query should fail")
	}
	if _, err := s.Point([]string{"a", "b", "c"}); err == nil {
		t.Error("over-long tuple should fail")
	}
	if s.Matches(MustParse("(a, b, c)"), []string{"a", "b"}) {
		t.Error("over-long query should not match")
	}
}

func TestSpaceValidation(t *testing.T) {
	curve := sfc.MustHilbert(2, 16)
	w16 := MustWordDim("a", 16)
	w8 := MustWordDim("b", 8)
	if _, err := New(curve, w16); err == nil {
		t.Error("dimension count mismatch should fail")
	}
	if _, err := New(curve, w16, w8); err == nil {
		t.Error("bit width mismatch should fail")
	}
	if _, err := New(curve, w16, w16); err != nil {
		t.Errorf("valid space: %v", err)
	}
}

// randomWord draws a word over [a-z] with geometric-ish length.
func randomWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + rng.Intn(26)))
	}
	return b.String()
}

// TestSoundnessProperty is the load-bearing invariant of the whole system:
// for random elements and random queries, Matches(q, values) implies the
// element's curve index lies inside the query's region. (This is what makes
// "all existing data elements that match a query are found" true end to
// end.)
func TestSoundnessProperty(t *testing.T) {
	s, err := NewWordSpace(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	randomTerm := func() Term {
		switch rng.Intn(4) {
		case 0:
			return Wildcard()
		case 1:
			return Exact(randomWord(rng))
		case 2:
			w := randomWord(rng)
			return Prefix(w[:1+rng.Intn(len(w))])
		default:
			a, b := randomWord(rng), randomWord(rng)
			return Range(a, b) // possibly empty range; fine
		}
	}
	for trial := 0; trial < 3000; trial++ {
		values := []string{randomWord(rng), randomWord(rng)}
		q := Query{randomTerm(), randomTerm()}
		if !s.Matches(q, values) {
			continue
		}
		region, err := s.Region(q)
		if err != nil {
			t.Fatalf("Region(%s): %v", q, err)
		}
		pt, err := s.Point(values)
		if err != nil {
			t.Fatal(err)
		}
		if !region.ContainsPoint(pt) {
			t.Fatalf("trial %d: %s matches %v but point %v outside region %v",
				trial, q, values, pt, region)
		}
	}
}

func TestMixedSpaceGridResources(t *testing.T) {
	// The paper's grid example: (memory, cpu frequency, bandwidth) with
	// range queries like (256-512 MB, *, 10Mbps-*).
	curve := sfc.MustHilbert(3, 21)
	s := MustNew(curve,
		MustNumericDim("memory", 21, 0, 4096),
		MustNumericDim("cpu", 21, 0, 4000),
		MustNumericDim("bandwidth", 21, 0, 1000),
	)
	idx, err := s.Index([]string{"384", "2400", "100"})
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse("(256-512, *, 10-*)")
	region, err := s.Region(q)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Matches(q, []string{"384", "2400", "100"}) {
		t.Error("resource should match")
	}
	pt := make([]uint64, 3)
	curve.Decode(idx, pt)
	if !region.ContainsPoint(pt) {
		t.Error("resource index outside query region")
	}
	if s.Matches(q, []string{"128", "2400", "100"}) {
		t.Error("128MB should not match 256-512")
	}
	if s.Matches(q, []string{"384", "2400", "5"}) {
		t.Error("5Mbps should not match 10-*")
	}
}

func TestNumericDimNegativeRange(t *testing.T) {
	// Attributes like temperature or price deltas span negative values.
	d := MustNumericDim("delta", 21, -1000, 1000)
	lo, _ := d.Encode("-1000")
	mid, _ := d.Encode("0")
	hi, _ := d.Encode("1000")
	if !(lo < mid && mid < hi) {
		t.Fatalf("ordering broken: %d %d %d", lo, mid, hi)
	}
	iv, err := d.Interval(Range("-500", "500"))
	if err != nil {
		t.Fatal(err)
	}
	cNeg, _ := d.Encode("-250")
	cPos, _ := d.Encode("250")
	cOut, _ := d.Encode("-750")
	if !iv.Contains(cNeg) || !iv.Contains(cPos) || iv.Contains(cOut) {
		t.Errorf("negative range interval wrong: %v", iv)
	}
	if !d.Matches(Range("-500", "500"), "-250") || d.Matches(Range("-500", "500"), "-750") {
		t.Error("negative range Matches wrong")
	}
}

func TestWordDimValueHighEdges(t *testing.T) {
	d := MustWordDim("kw", 63)
	if d.Slots() != 12 {
		t.Errorf("63-bit axis slots = %d, want 12", d.Slots())
	}
	// A full-'z' prefix interval must still be ordered and non-empty.
	iv, err := d.Interval(Prefix("zzzzzzzzzzzz"))
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Hi {
		t.Errorf("inverted interval %v", iv)
	}
	c, _ := d.Encode("zzzzzzzzzzzzzz") // longer than slots
	if !iv.Contains(c) {
		t.Error("overlong z-word outside its truncation's prefix interval")
	}
}
