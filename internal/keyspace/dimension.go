package keyspace

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"squid/internal/sfc"
)

// Dimension encodes the values of one axis of the keyword space into
// coordinates in [0, 2^Bits) and translates query terms into coordinate
// intervals. Implementations must be immutable values safe for concurrent
// use.
type Dimension interface {
	// Name labels the axis ("keyword", "memory", ...).
	Name() string
	// Bits returns the coordinate width; must equal the curve's Bits.
	Bits() int
	// Encode maps a value to its coordinate.
	Encode(value string) (uint64, error)
	// Interval returns the coordinate interval containing every value the
	// term can match. It may over-approximate (include coordinates of values
	// that do not match); Matches provides the exact filter.
	Interval(t Term) (sfc.Interval, error)
	// Matches reports whether a concrete value satisfies the term exactly.
	Matches(t Term, value string) bool
}

// wordRadix is the base of the lexicographic word encoding: digit 0 is the
// end-of-string sentinel (so shorter words sort before their extensions),
// digits 1-26 are 'a'-'z' and 27-36 are '0'-'9'.
const wordRadix = 37

// WordDim encodes words lexicographically, the paper's "keywords viewed as
// base-n numbers". A word over [a-z0-9] (case folded) is read as a base-37
// number with a fixed number of digit slots — as many as fit in the axis
// width — then scaled to spread over the whole coordinate range. Longer
// words are truncated to the slot count; they still match exactly because
// data nodes re-filter against the stored strings.
type WordDim struct {
	name  string
	bits  int
	slots int    // digit slots: max s with 37^s <= 2^bits
	max   uint64 // 37^slots
}

// NewWordDim returns a lexicographic word dimension of the given coordinate
// width (1..63 bits).
func NewWordDim(name string, bitWidth int) (WordDim, error) {
	if bitWidth < 1 || bitWidth > 63 {
		return WordDim{}, fmt.Errorf("keyspace: word dimension width must be 1..63 bits, got %d", bitWidth)
	}
	slots := 0
	max := uint64(1)
	for max <= (uint64(1)<<bitWidth)/wordRadix {
		max *= wordRadix
		slots++
	}
	if slots == 0 {
		// Axis narrower than one base-37 digit: still usable, one slot that
		// only partially discriminates; clamp handled by scale().
		slots, max = 1, wordRadix
	}
	return WordDim{name: name, bits: bitWidth, slots: slots, max: max}, nil
}

// MustWordDim is NewWordDim that panics on error.
func MustWordDim(name string, bitWidth int) WordDim {
	d, err := NewWordDim(name, bitWidth)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the axis label.
func (d WordDim) Name() string { return d.name }

// Bits returns the coordinate width.
func (d WordDim) Bits() int { return d.bits }

// Slots returns how many leading characters of a word the axis
// discriminates.
func (d WordDim) Slots() int { return d.slots }

func wordDigit(c byte) (uint64, bool) {
	switch {
	case c >= 'a' && c <= 'z':
		return uint64(c-'a') + 1, true
	case c >= 'A' && c <= 'Z':
		return uint64(c-'A') + 1, true
	case c >= '0' && c <= '9':
		return uint64(c-'0') + 27, true
	default:
		return 0, false
	}
}

// value reads up to slots leading characters of w as a base-37 integer,
// padding short words with the 0 sentinel (low end) — so value(w) is the
// smallest value of any word with prefix w.
func (d WordDim) value(w string) (uint64, error) {
	var v uint64
	n := len(w)
	if n > d.slots {
		n = d.slots
	}
	for i := 0; i < n; i++ {
		dig, ok := wordDigit(w[i])
		if !ok {
			return 0, fmt.Errorf("keyspace: %s: unsupported character %q in %q (want [a-z0-9])", d.name, w[i], w)
		}
		v = v*wordRadix + dig
	}
	for i := n; i < d.slots; i++ {
		v *= wordRadix
	}
	return v, nil
}

// valueHigh is like value but pads with the largest digit: the largest value
// of any word with prefix w.
func (d WordDim) valueHigh(w string) (uint64, error) {
	var v uint64
	n := len(w)
	if n > d.slots {
		n = d.slots
	}
	for i := 0; i < n; i++ {
		dig, ok := wordDigit(w[i])
		if !ok {
			return 0, fmt.Errorf("keyspace: %s: unsupported character %q in %q (want [a-z0-9])", d.name, w[i], w)
		}
		v = v*wordRadix + dig
	}
	for i := n; i < d.slots; i++ {
		v = v*wordRadix + (wordRadix - 1)
	}
	return v, nil
}

// scale spreads a base-37 value over the axis: floor(v * 2^bits / 37^slots).
// Strictly monotonic and injective because 2^bits >= 37^slots.
func (d WordDim) scale(v uint64) uint64 {
	if v >= d.max {
		v = d.max - 1
	}
	hi, lo := bits.Mul64(v, uint64(1)<<d.bits)
	q, _ := bits.Div64(hi, lo, d.max)
	return q
}

// Encode maps a word to its coordinate.
func (d WordDim) Encode(value string) (uint64, error) {
	v, err := d.value(value)
	if err != nil {
		return 0, err
	}
	return d.scale(v), nil
}

// Interval translates a term into the coordinate interval covering all its
// possible matches.
func (d WordDim) Interval(t Term) (sfc.Interval, error) {
	full := sfc.Interval{Lo: 0, Hi: (uint64(1) << d.bits) - 1}
	switch t.Kind {
	case KindWildcard:
		return full, nil
	case KindExact:
		// Words beyond the slot count share the coordinate of their
		// truncation, so the exact interval is the truncation's prefix span
		// when the word overflows the slots, else the single coordinate.
		if len(t.Value) > d.slots {
			return d.prefixInterval(t.Value[:d.slots])
		}
		v, err := d.value(t.Value)
		if err != nil {
			return sfc.Interval{}, err
		}
		c := d.scale(v)
		return sfc.Interval{Lo: c, Hi: c}, nil
	case KindPrefix:
		if t.Value == "" {
			return full, nil
		}
		return d.prefixInterval(t.Value)
	case KindRange:
		lo, hi := uint64(0), full.Hi
		if t.Lo != "" {
			v, err := d.value(t.Lo)
			if err != nil {
				return sfc.Interval{}, err
			}
			lo = d.scale(v)
		}
		if t.Hi != "" {
			v, err := d.valueHigh(t.Hi)
			if err != nil {
				return sfc.Interval{}, err
			}
			hi = d.scale(v)
		}
		return sfc.Interval{Lo: lo, Hi: hi}, nil
	}
	return sfc.Interval{}, fmt.Errorf("keyspace: unknown term kind %d", t.Kind)
}

func (d WordDim) prefixInterval(p string) (sfc.Interval, error) {
	lo, err := d.value(p)
	if err != nil {
		return sfc.Interval{}, err
	}
	hi, err := d.valueHigh(p)
	if err != nil {
		return sfc.Interval{}, err
	}
	return sfc.Interval{Lo: d.scale(lo), Hi: d.scale(hi)}, nil
}

// Matches applies the term exactly to a concrete word (case-insensitive).
func (d WordDim) Matches(t Term, value string) bool {
	v := strings.ToLower(value)
	switch t.Kind {
	case KindWildcard:
		return true
	case KindExact:
		return v == strings.ToLower(t.Value)
	case KindPrefix:
		return strings.HasPrefix(v, strings.ToLower(t.Value))
	case KindRange:
		// Compare in encoding order (base-37 digit sequences truncated to
		// the axis resolution) so the exact filter agrees with Interval: a
		// word matches iff its coordinate falls inside the range's
		// coordinate interval.
		w, err := d.value(v)
		if err != nil {
			return false
		}
		if t.Lo != "" {
			lo, err := d.value(t.Lo)
			if err != nil || w < lo {
				return false
			}
		}
		if t.Hi != "" {
			hi, err := d.valueHigh(t.Hi)
			if err != nil || w > hi {
				return false
			}
		}
		return true
	}
	return false
}

// NumericDim encodes a numeric attribute (memory, CPU frequency, bandwidth,
// cost, ...) linearly between configured bounds, so numeric range queries
// become contiguous coordinate intervals — the mechanism the paper proposes
// for resource discovery in computational grids.
type NumericDim struct {
	name     string
	bits     int
	min, max float64
}

// NewNumericDim returns a linear numeric dimension over [min, max].
func NewNumericDim(name string, bitWidth int, min, max float64) (NumericDim, error) {
	if bitWidth < 1 || bitWidth > 63 {
		return NumericDim{}, fmt.Errorf("keyspace: numeric dimension width must be 1..63 bits, got %d", bitWidth)
	}
	if !(min < max) || math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) {
		return NumericDim{}, fmt.Errorf("keyspace: numeric dimension needs finite min < max, got [%v, %v]", min, max)
	}
	return NumericDim{name: name, bits: bitWidth, min: min, max: max}, nil
}

// MustNumericDim is NewNumericDim that panics on error.
func MustNumericDim(name string, bitWidth int, min, max float64) NumericDim {
	d, err := NewNumericDim(name, bitWidth, min, max)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the axis label.
func (d NumericDim) Name() string { return d.name }

// Bits returns the coordinate width.
func (d NumericDim) Bits() int { return d.bits }

// Bounds returns the configured [min, max] value range.
func (d NumericDim) Bounds() (min, max float64) { return d.min, d.max }

// Encode maps a numeric value (decimal string) to its coordinate; values
// outside [min, max] clamp to the boundary.
func (d NumericDim) Encode(value string) (uint64, error) {
	x, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil {
		return 0, fmt.Errorf("keyspace: %s: %q is not numeric: %v", d.name, value, err)
	}
	return d.coord(x), nil
}

func (d NumericDim) coord(x float64) uint64 {
	if x <= d.min {
		return 0
	}
	top := (uint64(1) << d.bits) - 1
	if x >= d.max {
		return top
	}
	frac := (x - d.min) / (d.max - d.min)
	c := uint64(frac * float64(top))
	if c > top {
		c = top
	}
	return c
}

// Interval translates a term into the coordinate interval covering its
// matches.
func (d NumericDim) Interval(t Term) (sfc.Interval, error) {
	full := sfc.Interval{Lo: 0, Hi: (uint64(1) << d.bits) - 1}
	switch t.Kind {
	case KindWildcard:
		return full, nil
	case KindExact:
		c, err := d.Encode(t.Value)
		if err != nil {
			return sfc.Interval{}, err
		}
		return sfc.Interval{Lo: c, Hi: c}, nil
	case KindPrefix:
		return sfc.Interval{}, fmt.Errorf("keyspace: %s: prefix terms are not defined on numeric dimensions", d.name)
	case KindRange:
		lo, hi := uint64(0), full.Hi
		if t.Lo != "" {
			c, err := d.Encode(t.Lo)
			if err != nil {
				return sfc.Interval{}, err
			}
			lo = c
		}
		if t.Hi != "" {
			c, err := d.Encode(t.Hi)
			if err != nil {
				return sfc.Interval{}, err
			}
			hi = c
		}
		if lo > hi {
			return sfc.Interval{}, fmt.Errorf("keyspace: %s: empty range %s", d.name, t)
		}
		return sfc.Interval{Lo: lo, Hi: hi}, nil
	}
	return sfc.Interval{}, fmt.Errorf("keyspace: unknown term kind %d", t.Kind)
}

// Matches applies the term exactly to a concrete numeric value.
func (d NumericDim) Matches(t Term, value string) bool {
	x, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil {
		return false
	}
	switch t.Kind {
	case KindWildcard:
		return true
	case KindExact:
		y, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
		return err == nil && x == y
	case KindRange:
		if t.Lo != "" {
			lo, err := strconv.ParseFloat(t.Lo, 64)
			if err != nil || x < lo {
				return false
			}
		}
		if t.Hi != "" {
			hi, err := strconv.ParseFloat(t.Hi, 64)
			if err != nil || x > hi {
				return false
			}
		}
		return true
	}
	return false
}

var (
	_ Dimension = WordDim{}
	_ Dimension = NumericDim{}
)
