package keyspace

import (
	"testing"

	"squid/internal/sfc"
)

// FuzzParse ensures the query parser never panics and that parsed queries
// either round-trip through String->Parse or fail cleanly.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(computer, network)", "(comp*, *)", "(256-512, *, 10-*)", "(*-*)",
		"a,b", "()", "(,)", "(a**, b)", "(-)", "(--)", "(*, *, *, *, *)",
		"(a-b-c)", "  ( x , y )  ", "(*)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		// A successfully parsed query must re-parse from its rendering to
		// the same structure.
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", q.String(), input, err)
		}
		if len(again) != len(q) {
			t.Fatalf("re-parse changed arity: %v vs %v", again, q)
		}
		for i := range q {
			if again[i].Kind != q[i].Kind {
				t.Fatalf("term %d kind changed: %v vs %v", i, again[i], q[i])
			}
		}
	})
}

// FuzzWordDimConsistency ensures Interval/Matches agree for arbitrary
// inputs: if a value matches a term, its coordinate lies in the term's
// interval (soundness of the region over-approximation).
func FuzzWordDimConsistency(f *testing.F) {
	f.Add("computer", "comp")
	f.Add("a", "b")
	f.Add("zz9", "z")
	f.Add("", "x")
	f.Fuzz(func(t *testing.T, value, pat string) {
		d := MustWordDim("kw", 20)
		coord, err := d.Encode(value)
		if err != nil {
			return // unencodable values are rejected at publish time
		}
		for _, term := range []Term{Exact(pat), Prefix(pat), Range(pat, ""), Range("", pat)} {
			iv, err := d.Interval(term)
			if err != nil {
				continue
			}
			if d.Matches(term, value) && !iv.Contains(coord) {
				t.Fatalf("term %v matches %q but interval %v misses coord %d", term, value, iv, coord)
			}
		}
	})
}

// FuzzSpaceSoundness extends the soundness property to whole 2-D queries.
func FuzzSpaceSoundness(f *testing.F) {
	f.Add("computer", "network", "comp", "net")
	f.Add("a", "b", "", "")
	f.Add("x1", "y2", "x", "y2")
	f.Fuzz(func(t *testing.T, v1, v2, p1, p2 string) {
		s, err := NewWordSpace(2, 12)
		if err != nil {
			t.Fatal(err)
		}
		values := []string{v1, v2}
		pt, err := s.Point(values)
		if err != nil {
			return
		}
		for _, q := range []Query{
			{Exact(p1), Exact(p2)},
			{Prefix(p1), Wildcard()},
			{Range(p1, p2), Wildcard()},
		} {
			region, err := s.Region(q)
			if err != nil {
				continue
			}
			if s.Matches(q, values) && !region.ContainsPoint(pt) {
				t.Fatalf("query %s matches %v but region excludes its point", q, values)
			}
			_ = sfc.Clusters(s.Curve(), region) // must not panic
		}
	})
}
