package keyspace

import (
	"fmt"
	"strings"
)

// TermKind enumerates the constraint types a query can place on one
// dimension, matching the paper's query language.
type TermKind int

const (
	// KindWildcard matches any value ("*").
	KindWildcard TermKind = iota
	// KindExact matches one value exactly ("computer").
	KindExact
	// KindPrefix matches values sharing a prefix ("comp*").
	KindPrefix
	// KindRange matches values in a closed interval ("256-512"); either end
	// may be open ("1-*", "*-100"), constraining only one side.
	KindRange
)

// Term is the constraint a query places on a single dimension.
type Term struct {
	Kind TermKind
	// Value holds the exact word or the prefix (without the trailing '*').
	Value string
	// Lo/Hi hold range bounds; empty means open on that side.
	Lo, Hi string
}

// Wildcard returns the unconstrained term.
func Wildcard() Term { return Term{Kind: KindWildcard} }

// Exact returns a term matching v exactly.
func Exact(v string) Term { return Term{Kind: KindExact, Value: v} }

// Prefix returns a term matching any value starting with p.
func Prefix(p string) Term { return Term{Kind: KindPrefix, Value: p} }

// Range returns a term matching values in [lo, hi]; pass "" to leave an end
// open.
func Range(lo, hi string) Term { return Term{Kind: KindRange, Lo: lo, Hi: hi} }

// String renders the term in query syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindWildcard:
		return "*"
	case KindExact:
		return t.Value
	case KindPrefix:
		return t.Value + "*"
	case KindRange:
		lo, hi := t.Lo, t.Hi
		if lo == "" {
			lo = "*"
		}
		if hi == "" {
			hi = "*"
		}
		return lo + "-" + hi
	}
	return "?"
}

// Query is one term per dimension. Queries shorter than the space's
// dimensionality are padded with wildcards by Space.Region, mirroring the
// paper's "(computer, *)" examples.
type Query []Term

// String renders the query as "(t1, t2, ...)".
func (q Query) String() string {
	parts := make([]string, len(q))
	for i, t := range q {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// IsExact reports whether every term is exact, i.e. the query identifies a
// single point of the keyword space and resolves with one DHT lookup.
func (q Query) IsExact() bool {
	if len(q) == 0 {
		return false
	}
	for _, t := range q {
		if t.Kind != KindExact {
			return false
		}
	}
	return true
}

// Parse parses the textual query syntax used throughout the paper:
//
//	(computer, network)    exact keywords
//	(comp*, net*)          partial keywords
//	(computer, *)          wildcard
//	(256-512, *, 10-*)     ranges, possibly open-ended
//
// The surrounding parentheses are optional. Terms are comma separated; "-"
// inside a term denotes a range (use Exact directly to construct terms
// containing literal dashes).
func Parse(s string) (Query, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("keyspace: empty query")
	}
	parts := strings.Split(s, ",")
	q := make(Query, 0, len(parts))
	for _, part := range parts {
		t, err := parseTerm(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		q = append(q, t)
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

func parseTerm(s string) (Term, error) {
	switch {
	case s == "":
		return Term{}, fmt.Errorf("keyspace: empty term")
	case s == "*":
		return Wildcard(), nil
	case strings.Contains(s, "-"):
		lo, hi, _ := strings.Cut(s, "-")
		lo, hi = strings.TrimSpace(lo), strings.TrimSpace(hi)
		if lo == "*" {
			lo = ""
		}
		if hi == "*" {
			hi = ""
		}
		if lo == "" && hi == "" {
			return Wildcard(), nil
		}
		return Range(lo, hi), nil
	case strings.HasSuffix(s, "*"):
		p := strings.TrimSuffix(s, "*")
		if strings.Contains(p, "*") {
			return Term{}, fmt.Errorf("keyspace: %q: '*' is only valid alone or as a suffix", s)
		}
		return Prefix(p), nil
	default:
		return Exact(s), nil
	}
}
