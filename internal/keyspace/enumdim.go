package keyspace

import (
	"fmt"
	"math/bits"
	"strings"

	"squid/internal/sfc"
)

// EnumDim encodes a categorical attribute with a fixed, ordered set of
// values — the paper's resource-discovery examples include attributes like
// operating-system type. Each category owns an equal contiguous slice of
// the axis, so exact matches are single slices and (by category order)
// range terms are contiguous too.
type EnumDim struct {
	name   string
	bits   int
	values []string
	index  map[string]int
	slice  uint64 // coordinates per category
}

// NewEnumDim returns a categorical dimension over the given ordered
// values (case-insensitive, at most 2^bitWidth categories).
func NewEnumDim(name string, bitWidth int, values []string) (EnumDim, error) {
	if bitWidth < 1 || bitWidth > 63 {
		return EnumDim{}, fmt.Errorf("keyspace: enum dimension width must be 1..63 bits, got %d", bitWidth)
	}
	if len(values) == 0 {
		return EnumDim{}, fmt.Errorf("keyspace: enum dimension %s needs at least one value", name)
	}
	if bits.Len(uint(len(values)-1)) > bitWidth {
		return EnumDim{}, fmt.Errorf("keyspace: %d categories exceed a %d-bit axis", len(values), bitWidth)
	}
	d := EnumDim{
		name:   name,
		bits:   bitWidth,
		values: make([]string, len(values)),
		index:  make(map[string]int, len(values)),
		slice:  (uint64(1) << bitWidth) / uint64(len(values)),
	}
	for i, v := range values {
		v = strings.ToLower(strings.TrimSpace(v))
		if v == "" {
			return EnumDim{}, fmt.Errorf("keyspace: enum dimension %s has an empty value", name)
		}
		if _, dup := d.index[v]; dup {
			return EnumDim{}, fmt.Errorf("keyspace: enum dimension %s has duplicate value %q", name, v)
		}
		d.values[i] = v
		d.index[v] = i
	}
	return d, nil
}

// MustEnumDim is NewEnumDim that panics on error.
func MustEnumDim(name string, bitWidth int, values []string) EnumDim {
	d, err := NewEnumDim(name, bitWidth, values)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the axis label.
func (d EnumDim) Name() string { return d.name }

// Bits returns the coordinate width.
func (d EnumDim) Bits() int { return d.bits }

// Values returns the category order.
func (d EnumDim) Values() []string { return append([]string(nil), d.values...) }

func (d EnumDim) lookup(v string) (int, error) {
	i, ok := d.index[strings.ToLower(strings.TrimSpace(v))]
	if !ok {
		return 0, fmt.Errorf("keyspace: %s: unknown category %q (want one of %v)", d.name, v, d.values)
	}
	return i, nil
}

// Encode maps a category to the start of its axis slice.
func (d EnumDim) Encode(value string) (uint64, error) {
	i, err := d.lookup(value)
	if err != nil {
		return 0, err
	}
	return uint64(i) * d.slice, nil
}

// categorySpan is the coordinate interval owned by category i.
func (d EnumDim) categorySpan(i int) sfc.Interval {
	lo := uint64(i) * d.slice
	hi := lo + d.slice - 1
	if i == len(d.values)-1 {
		hi = (uint64(1) << d.bits) - 1 // last category absorbs the remainder
	}
	return sfc.Interval{Lo: lo, Hi: hi}
}

// Interval translates a term into its coordinate interval. Prefix terms
// match categories by name prefix; because categories are contiguous only
// in declaration order, a prefix that matches non-adjacent categories
// over-approximates to the covering interval (Matches filters exactly).
func (d EnumDim) Interval(t Term) (sfc.Interval, error) {
	full := sfc.Interval{Lo: 0, Hi: (uint64(1) << d.bits) - 1}
	switch t.Kind {
	case KindWildcard:
		return full, nil
	case KindExact:
		i, err := d.lookup(t.Value)
		if err != nil {
			return sfc.Interval{}, err
		}
		return d.categorySpan(i), nil
	case KindPrefix:
		lo, hi := -1, -1
		p := strings.ToLower(t.Value)
		for i, v := range d.values {
			if strings.HasPrefix(v, p) {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
		}
		if lo < 0 {
			return sfc.Interval{}, fmt.Errorf("keyspace: %s: no category matches prefix %q", d.name, t.Value)
		}
		return sfc.Interval{Lo: d.categorySpan(lo).Lo, Hi: d.categorySpan(hi).Hi}, nil
	case KindRange:
		lo, hi := 0, len(d.values)-1
		if t.Lo != "" {
			i, err := d.lookup(t.Lo)
			if err != nil {
				return sfc.Interval{}, err
			}
			lo = i
		}
		if t.Hi != "" {
			i, err := d.lookup(t.Hi)
			if err != nil {
				return sfc.Interval{}, err
			}
			hi = i
		}
		if lo > hi {
			return sfc.Interval{}, fmt.Errorf("keyspace: %s: empty category range %s", d.name, t)
		}
		return sfc.Interval{Lo: d.categorySpan(lo).Lo, Hi: d.categorySpan(hi).Hi}, nil
	}
	return sfc.Interval{}, fmt.Errorf("keyspace: unknown term kind %d", t.Kind)
}

// Matches applies the term exactly to a category value.
func (d EnumDim) Matches(t Term, value string) bool {
	i, err := d.lookup(value)
	if err != nil {
		return false
	}
	switch t.Kind {
	case KindWildcard:
		return true
	case KindExact:
		j, err := d.lookup(t.Value)
		return err == nil && i == j
	case KindPrefix:
		return strings.HasPrefix(d.values[i], strings.ToLower(t.Value))
	case KindRange:
		if t.Lo != "" {
			j, err := d.lookup(t.Lo)
			if err != nil || i < j {
				return false
			}
		}
		if t.Hi != "" {
			j, err := d.lookup(t.Hi)
			if err != nil || i > j {
				return false
			}
		}
		return true
	}
	return false
}

var _ Dimension = EnumDim{}
