package keyspace

import (
	"fmt"

	"squid/internal/sfc"
)

// Space is a d-dimensional keyword space tied to a space-filling curve: the
// "locality preserving mapping" of the paper's architecture (component 1 of
// Section 3). It is immutable and safe for concurrent use.
type Space struct {
	curve sfc.Curve
	dims  []Dimension
}

// New builds a Space from a curve and one Dimension per curve axis. Every
// dimension's Bits must equal the curve's Bits.
func New(curve sfc.Curve, dims ...Dimension) (*Space, error) {
	if len(dims) != curve.Dims() {
		return nil, fmt.Errorf("keyspace: curve has %d dims, got %d dimension codecs", curve.Dims(), len(dims))
	}
	for i, d := range dims {
		if d.Bits() != curve.Bits() {
			return nil, fmt.Errorf("keyspace: dimension %d (%s) is %d bits, curve axes are %d bits",
				i, d.Name(), d.Bits(), curve.Bits())
		}
	}
	s := &Space{curve: curve, dims: append([]Dimension(nil), dims...)}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(curve sfc.Curve, dims ...Dimension) *Space {
	s, err := New(curve, dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// NewWordSpace returns the common storage-system configuration: d word
// dimensions over a Hilbert curve with the given bits per axis (paper
// Section 4.1 uses d = 2 and 3).
func NewWordSpace(d, bitsPerAxis int) (*Space, error) {
	curve, err := sfc.NewHilbert(d, bitsPerAxis)
	if err != nil {
		return nil, err
	}
	dims := make([]Dimension, d)
	for i := range dims {
		wd, err := NewWordDim(fmt.Sprintf("keyword%d", i), bitsPerAxis)
		if err != nil {
			return nil, err
		}
		dims[i] = wd
	}
	return New(curve, dims...)
}

// Curve returns the space-filling curve the space is built on.
func (s *Space) Curve() sfc.Curve { return s.curve }

// Dims returns the dimensionality.
func (s *Space) Dims() int { return len(s.dims) }

// Dimension returns the codec of axis i.
func (s *Space) Dimension(i int) Dimension { return s.dims[i] }

// IndexBits returns the number of significant bits in curve indices; the
// overlay's identifier space must be at least this wide.
func (s *Space) IndexBits() int { return s.curve.IndexBits() }

// Point encodes a data element's values (one per dimension) into cube
// coordinates. Missing trailing values encode as the empty string.
func (s *Space) Point(values []string) ([]uint64, error) {
	if len(values) > len(s.dims) {
		return nil, fmt.Errorf("keyspace: %d values for a %d-dimensional space", len(values), len(s.dims))
	}
	pt := make([]uint64, len(s.dims))
	for i, d := range s.dims {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		c, err := d.Encode(v)
		if err != nil {
			return nil, err
		}
		pt[i] = c
	}
	return pt, nil
}

// Index maps a data element's values to its curve index — the element's DHT
// key.
func (s *Space) Index(values []string) (uint64, error) {
	pt, err := s.Point(values)
	if err != nil {
		return 0, err
	}
	return s.curve.Encode(pt), nil
}

// Region translates a query into the coordinate region its matches occupy.
// Queries shorter than the dimensionality are padded with wildcards; longer
// queries are an error.
func (s *Space) Region(q Query) (sfc.Region, error) {
	if len(q) > len(s.dims) {
		return nil, fmt.Errorf("keyspace: query %s has %d terms for a %d-dimensional space", q, len(q), len(s.dims))
	}
	raw := make([][]sfc.Interval, len(s.dims))
	for i, d := range s.dims {
		t := Wildcard()
		if i < len(q) {
			t = q[i]
		}
		iv, err := d.Interval(t)
		if err != nil {
			return nil, err
		}
		raw[i] = []sfc.Interval{iv}
	}
	return sfc.NewRegion(raw), nil
}

// Matches applies the query exactly to a data element's values — the final
// filter run by data nodes so coordinate truncation never causes false
// positives. Values shorter than the query are treated as empty strings.
func (s *Space) Matches(q Query, values []string) bool {
	if len(q) > len(s.dims) {
		return false
	}
	for i, t := range q {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		if !s.dims[i].Matches(t, v) {
			return false
		}
	}
	return true
}
