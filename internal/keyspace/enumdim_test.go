package keyspace

import (
	"testing"

	"squid/internal/sfc"
)

var osValues = []string{"linux", "freebsd", "darwin", "windows", "solaris"}

func TestEnumDimBasics(t *testing.T) {
	d := MustEnumDim("os", 16, osValues)
	if d.Name() != "os" || d.Bits() != 16 {
		t.Error("accessors wrong")
	}
	if got := d.Values(); len(got) != 5 || got[2] != "darwin" {
		t.Errorf("Values = %v", got)
	}

	// Encoding is ordered and case/space-insensitive.
	var prev uint64
	for i, v := range osValues {
		c, err := d.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && c <= prev {
			t.Errorf("categories not ordered: %q at %d after %d", v, c, prev)
		}
		prev = c
		c2, err := d.Encode("  " + string(v[0]-32) + v[1:] + " ")
		if err != nil || c2 != c {
			t.Errorf("case folding failed for %q", v)
		}
	}
	if _, err := d.Encode("plan9"); err == nil {
		t.Error("unknown category should fail")
	}
}

func TestEnumDimErrors(t *testing.T) {
	if _, err := NewEnumDim("x", 0, osValues); err == nil {
		t.Error("0 bits should fail")
	}
	if _, err := NewEnumDim("x", 16, nil); err == nil {
		t.Error("no values should fail")
	}
	if _, err := NewEnumDim("x", 2, osValues); err == nil {
		t.Error("5 categories need >2 bits")
	}
	if _, err := NewEnumDim("x", 16, []string{"a", "A"}); err == nil {
		t.Error("case-duplicate values should fail")
	}
	if _, err := NewEnumDim("x", 16, []string{"a", ""}); err == nil {
		t.Error("empty value should fail")
	}
}

func TestEnumDimIntervalAndMatches(t *testing.T) {
	d := MustEnumDim("os", 16, osValues)

	// Exact: each category's interval contains its own coordinate only.
	for i, v := range osValues {
		iv, err := d.Interval(Exact(v))
		if err != nil {
			t.Fatal(err)
		}
		for j, w := range osValues {
			c, _ := d.Encode(w)
			if iv.Contains(c) != (i == j) {
				t.Errorf("Exact(%s) interval vs %s wrong", v, w)
			}
			if d.Matches(Exact(v), w) != (i == j) {
				t.Errorf("Exact(%s) matches %s wrong", v, w)
			}
		}
	}

	// Range over declaration order.
	iv, err := d.Interval(Range("freebsd", "windows"))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range osValues {
		c, _ := d.Encode(v)
		want := i >= 1 && i <= 3
		if iv.Contains(c) != want {
			t.Errorf("range interval vs %s wrong", v)
		}
		if d.Matches(Range("freebsd", "windows"), v) != want {
			t.Errorf("range matches %s wrong", v)
		}
	}
	if _, err := d.Interval(Range("windows", "freebsd")); err == nil {
		t.Error("inverted category range should fail")
	}

	// Prefix.
	if !d.Matches(Prefix("lin"), "linux") || d.Matches(Prefix("lin"), "darwin") {
		t.Error("prefix matches wrong")
	}
	pv, err := d.Interval(Prefix("lin"))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := d.Encode("linux")
	if !pv.Contains(c) {
		t.Error("prefix interval misses linux")
	}
	if _, err := d.Interval(Prefix("zzz")); err == nil {
		t.Error("prefix matching nothing should fail")
	}

	// Wildcard covers the whole axis.
	wv, _ := d.Interval(Wildcard())
	if wv.Lo != 0 || wv.Hi != (1<<16)-1 {
		t.Errorf("wildcard interval = %v", wv)
	}
	if !d.Matches(Wildcard(), "solaris") || d.Matches(Wildcard(), "plan9") {
		t.Error("wildcard matches wrong")
	}
}

// TestEnumDimInSpace runs the soundness check with a mixed enum/numeric
// space — the paper's grid resource scenario with an OS-type attribute.
func TestEnumDimInSpace(t *testing.T) {
	s := MustNew(sfc.MustHilbert(3, 16),
		MustEnumDim("os", 16, osValues),
		MustNumericDim("memory", 16, 0, 4096),
		MustNumericDim("cpu", 16, 0, 4000),
	)
	values := []string{"linux", "512", "2400"}
	idx, err := s.Index(values)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Exact("linux"), Range("256", "1024"), Wildcard()},
		{Range("linux", "darwin"), Wildcard(), Range("2000", "3000")},
		{Prefix("li"), Wildcard(), Wildcard()},
	} {
		if !s.Matches(q, values) {
			t.Errorf("%s should match %v", q, values)
			continue
		}
		region, err := s.Region(q)
		if err != nil {
			t.Fatal(err)
		}
		pt := make([]uint64, 3)
		s.Curve().Decode(idx, pt)
		if !region.ContainsPoint(pt) {
			t.Errorf("%s region excludes the matching resource", q)
		}
	}
	if s.Matches(Query{Exact("windows")}, values) {
		t.Error("wrong OS should not match")
	}
}
