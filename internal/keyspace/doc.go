// Package keyspace models the multidimensional keyword space of the paper
// (Schmidt & Parashar, HPDC 2003, Section 3.1): data elements are described
// by a tuple of keywords or attribute values, each tuple is a point in a
// d-dimensional discrete cube, and queries (exact keywords, partial keywords,
// wildcards, numeric ranges) are regions of that cube.
//
// A Space combines one Dimension codec per axis with a space-filling curve:
//
//   - WordDim encodes words lexicographically ("the keywords can be viewed as
//     base-n numbers"): strings over [a-z0-9] become base-37 integers (0 is
//     the end-of-string sentinel, so "comp" < "compute" < "computer" and the
//     prefix comp* is exactly one contiguous coordinate interval), scaled to
//     fill the axis. Words longer than the axis can discriminate are
//     truncated; exactness is preserved because data nodes re-filter matches
//     against the original strings (Space.Matches).
//   - NumericDim encodes attribute values (memory, bandwidth, cost, ...)
//     linearly between configured bounds, making range queries contiguous
//     coordinate intervals.
//
// Space.Index places a data element on the curve; Space.Region translates a
// Query into the sfc.Region that the distributed query engine refines.
package keyspace
