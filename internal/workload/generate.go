package workload

import (
	"fmt"
	"math/rand"

	"squid/internal/keyspace"
	"squid/internal/squid"
)

// KeyTuples draws n distinct keyword tuples of the given dimensionality
// with Zipf-weighted words ("keys" in the paper's terminology: unique
// keyword combinations).
func KeyTuples(v *Vocabulary, seed int64, n, dims int) [][]string {
	s := v.Sampler(seed)
	seen := make(map[string]bool, n)
	out := make([][]string, 0, n)
	for len(out) < n {
		tuple := make([]string, dims)
		for d := range tuple {
			tuple[d] = s.Word()
		}
		k := fmt.Sprint(tuple)
		if !seen[k] {
			seen[k] = true
			out = append(out, tuple)
		}
	}
	return out
}

// Elements wraps tuples as publishable data elements with synthetic
// payload names.
func Elements(tuples [][]string) []squid.Element {
	out := make([]squid.Element, len(tuples))
	for i, tu := range tuples {
		out[i] = squid.Element{Values: tu, Data: fmt.Sprintf("elem-%06d", i)}
	}
	return out
}

// Resource draws numeric grid-resource tuples (memory MB, cpu MHz,
// bandwidth Mbps), clustered around common hardware configurations like a
// real machine population (the sparse non-uniform distribution the paper
// assumes).
func Resources(seed int64, n int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	mem := []float64{128, 256, 512, 1024, 2048, 4096}
	cpu := []float64{800, 1200, 1800, 2400, 3000, 3600}
	bw := []float64{10, 100, 1000}
	out := make([][]string, n)
	for i := range out {
		m := mem[rng.Intn(len(mem))] * (0.9 + 0.2*rng.Float64())
		c := cpu[rng.Intn(len(cpu))] * (0.95 + 0.1*rng.Float64())
		b := bw[rng.Intn(len(bw))]
		out[i] = []string{
			fmt.Sprintf("%.0f", m),
			fmt.Sprintf("%.0f", c),
			fmt.Sprintf("%.0f", b),
		}
	}
	return out
}

// QueryGen draws the paper's query classes against a vocabulary, biased
// toward popular words so queries actually hit data.
type QueryGen struct {
	s    *Sampler
	dims int
}

// NewQueryGen returns a generator for queries over a dims-dimensional word
// space.
func NewQueryGen(v *Vocabulary, seed int64, dims int) *QueryGen {
	return &QueryGen{s: v.Sampler(seed), dims: dims}
}

// prefixOf cuts a word to a query prefix of 3..len(w) characters.
func (g *QueryGen) prefixOf(w string) string {
	if len(w) <= 3 {
		return w
	}
	return w[:3+g.s.Rng().Intn(len(w)-2)]
}

// Q1 is the paper's first class: one keyword or partial keyword, the rest
// wildcards — e.g. (comp*, *) in 2D, (computer, *, *) in 3D.
func (g *QueryGen) Q1() keyspace.Query {
	q := make(keyspace.Query, g.dims)
	for i := range q {
		q[i] = keyspace.Wildcard()
	}
	w := g.s.Word()
	if g.s.Rng().Intn(2) == 0 {
		q[0] = keyspace.Exact(w)
	} else {
		q[0] = keyspace.Prefix(g.prefixOf(w))
	}
	return q
}

// Q2 is the second class: two to three keywords or partial keywords with
// at least one partial — e.g. (comp*, net*) in 2D, (computer, network, *)
// in 3D.
func (g *QueryGen) Q2() keyspace.Query {
	q := make(keyspace.Query, g.dims)
	for i := range q {
		q[i] = keyspace.Wildcard()
	}
	terms := 2
	if g.dims > 2 && g.s.Rng().Intn(2) == 0 {
		terms = 3
	}
	for i := 0; i < terms && i < g.dims; i++ {
		w := g.s.Word()
		if i == 0 {
			q[i] = keyspace.Prefix(g.prefixOf(w)) // guarantee >=1 partial
		} else if g.s.Rng().Intn(2) == 0 {
			q[i] = keyspace.Exact(w)
		} else {
			q[i] = keyspace.Prefix(g.prefixOf(w))
		}
	}
	return q
}

// Q3Keyword is the first range-query form of Section 4.1.3:
// (keyword, range, *).
func (g *QueryGen) Q3Keyword() keyspace.Query {
	q := make(keyspace.Query, g.dims)
	for i := range q {
		q[i] = keyspace.Wildcard()
	}
	q[0] = keyspace.Exact(g.s.Word())
	if g.dims > 1 {
		q[1] = g.wordRange()
	}
	return q
}

// Q3Ranges is the second form: a range on every dimension.
func (g *QueryGen) Q3Ranges() keyspace.Query {
	q := make(keyspace.Query, g.dims)
	for i := range q {
		q[i] = g.wordRange()
	}
	return q
}

// wordRange draws a lexicographic range around a popular word.
func (g *QueryGen) wordRange() keyspace.Term {
	a, b := g.s.Word(), g.s.Word()
	if a > b {
		a, b = b, a
	}
	return keyspace.Range(a, b)
}

// Pool draws n queries up front (the paper's Q1/Q2 mix), forming the
// candidate set a browsing population revisits.
func (g *QueryGen) Pool(n int) []keyspace.Query {
	out := make([]keyspace.Query, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = g.Q1()
		} else {
			out[i] = g.Q2()
		}
	}
	return out
}

// ZipfRepeats replays a query pool Zipf(s)-weighted: the head of the pool
// dominates the draw sequence the way popular searches dominate real
// traffic. This is the repetition a popular-cluster result cache feeds on —
// a uniform replay would make every cache look useless.
func ZipfRepeats(pool []keyspace.Query, seed int64, s float64, n int) []keyspace.Query {
	if s <= 1 {
		// math/rand's Zipf needs s > 1; this is the closest draw to the
		// experiments' nominal Zipf(1.0) popularity.
		s = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(len(pool)-1))
	out := make([]keyspace.Query, n)
	for i := range out {
		out[i] = pool[zipf.Uint64()]
	}
	return out
}

// StreamStorm is a browsing-style streaming workload: a Zipf-repeated
// query sequence with a per-query top-k limit (0 = full drain). Feed each
// (Queries[i], Limits[i]) pair to QueryStream.
type StreamStorm struct {
	Queries []keyspace.Query
	Limits  []int
}

// NewStreamStorm draws a streaming storm: pool distinct queries replayed
// Zipf(zipfS)-weighted n times, where every other draw streams with
// Limit(topK) and the rest drain fully — the mixed browsing population the
// streaming experiments measure (top-k savings on the limited half, cache
// hits on the repeats).
func NewStreamStorm(v *Vocabulary, seed int64, dims, pool, n, topK int, zipfS float64) StreamStorm {
	gen := NewQueryGen(v, seed, dims)
	st := StreamStorm{
		Queries: ZipfRepeats(gen.Pool(pool), seed+1, zipfS, n),
		Limits:  make([]int, n),
	}
	for i := range st.Limits {
		if i%2 == 1 {
			st.Limits[i] = topK
		}
	}
	return st
}
