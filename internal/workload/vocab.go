// Package workload generates the synthetic corpora and query mixes for the
// paper's experiments (Section 4): keyword tuples for 2-D and 3-D storage
// systems, numeric resource attributes for grid discovery, and the three
// query classes Q1 (single keyword/partial), Q2 (multiple keywords, at
// least one partial) and Q3 (range queries).
//
// The paper does not publish its corpus, only its shape: a sparse keyword
// space with non-uniform clusters (shared prefixes) and 2*10^5..10^6
// unique keys. We approximate it deterministically: words are drawn from a
// letter-bigram model estimated over a small embedded English word list
// (giving realistic prefix sharing, which drives cluster counts and
// pruning behaviour) and weighted by a Zipf distribution (giving the skew
// that drives load imbalance). See DESIGN.md "Substitutions".
package workload

import (
	"math/rand"
	"sort"
	"strings"
)

// seedCorpus estimates the bigram model. Ordinary technical English,
// chosen for letter-transition realism rather than meaning.
const seedCorpus = `the be to of and a in that have it for not on with he as you do
at this but his by from they we say her she or an will my one all would
there their what so up out if about who get which go me when make can like
time no just him know take people into year your good some could them see
other than then now look only come its over think also back after use two
how our work first well way even new want because any these give day most
us computer computation company compile compiler network node data database
storage system systems grid peer peers discovery discover index query
queries curve space filling hilbert chord overlay message messages route
routing cluster clusters keyword keywords search searches wildcard range
ranges partial flexible information decentralized distributed resource
resources memory bandwidth frequency processor machine machines document
documents file files share sharing retrieve retrieval locate location
mapping dimension dimensions load balance balancing virtual join leave
failure guarantee bounded cost costs scalable scale self organize dynamic
fault tolerant application applications service services internet protocol
table tables finger successor predecessor identifier hash consistent`

// Vocabulary is a deterministic synthetic word list with Zipf-distributed
// popularity (rank 0 is the most popular word).
type Vocabulary struct {
	Words []string
	zipfS float64
}

// NewVocabulary builds size distinct words of length 3..10 from the bigram
// model, deterministically from seed. zipfS (>1) sets the popularity skew
// used by Sampler (typical: 1.2).
func NewVocabulary(seed int64, size int, zipfS float64) *Vocabulary {
	if zipfS <= 1 {
		zipfS = 1.2
	}
	rng := rand.New(rand.NewSource(seed))
	model := newBigramModel()
	seen := make(map[string]bool, size)
	words := make([]string, 0, size)
	for len(words) < size {
		w := model.word(rng)
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return &Vocabulary{Words: words, zipfS: zipfS}
}

// Sampler returns a deterministic Zipf sampler over the vocabulary: calls
// yield word indices with rank-frequency skew.
func (v *Vocabulary) Sampler(seed int64) *Sampler {
	rng := rand.New(rand.NewSource(seed))
	return &Sampler{
		rng:  rng,
		zipf: rand.NewZipf(rng, v.zipfS, 1, uint64(len(v.Words)-1)),
		v:    v,
	}
}

// Sampler draws words from a Vocabulary with Zipf popularity.
type Sampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	v    *Vocabulary
}

// Word draws one word.
func (s *Sampler) Word() string { return s.v.Words[s.zipf.Uint64()] }

// Rng exposes the sampler's random source for auxiliary draws.
func (s *Sampler) Rng() *rand.Rand { return s.rng }

// bigramModel holds letter-transition cumulative distributions. State 26
// is the start-of-word state.
type bigramModel struct {
	// cum[s][c] is the cumulative count of transitions from state s to
	// letter c; cum[s][26] doubles as the row total.
	cum [27][27]int
	// endProb[s] is the per-letter chance (scaled by 1000) that a word ends
	// after state s, given length constraints already allow ending.
	end [27]int
}

func newBigramModel() *bigramModel {
	m := &bigramModel{}
	var counts [27][26]int
	var ends [27]int
	var totals [27]int
	for _, w := range strings.Fields(seedCorpus) {
		prev := 26
		for i := 0; i < len(w); i++ {
			c := int(w[i] - 'a')
			if c < 0 || c > 25 {
				continue
			}
			counts[prev][c]++
			totals[prev]++
			prev = c
		}
		ends[prev]++
		totals[prev]++
	}
	for s := 0; s < 27; s++ {
		acc := 0
		for c := 0; c < 26; c++ {
			// Weight observed transitions strongly; the +1 smoothing only
			// keeps every letter reachable without flattening the skew that
			// produces realistic shared prefixes.
			acc += counts[s][c]*10 + 1
			m.cum[s][c] = acc
		}
		m.cum[s][26] = acc
		if totals[s] > 0 {
			m.end[s] = 1000 * ends[s] / totals[s]
		}
	}
	return m
}

// word samples one word of length 3..10.
func (m *bigramModel) word(rng *rand.Rand) string {
	var b strings.Builder
	state := 26
	for {
		n := b.Len()
		if n >= 10 {
			break
		}
		if n >= 3 && rng.Intn(1000) < m.end[state]+100 {
			break
		}
		r := rng.Intn(m.cum[state][26])
		c := sort.Search(26, func(c int) bool { return m.cum[state][c] > r })
		b.WriteByte(byte('a' + c))
		state = c
	}
	return b.String()
}
