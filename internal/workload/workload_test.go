package workload

import (
	"strconv"
	"strings"
	"testing"

	"squid/internal/keyspace"
)

func TestVocabularyDeterministicAndDistinct(t *testing.T) {
	a := NewVocabulary(1, 500, 1.2)
	b := NewVocabulary(1, 500, 1.2)
	if len(a.Words) != 500 {
		t.Fatalf("size = %d", len(a.Words))
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatal("vocabulary not deterministic")
		}
	}
	seen := map[string]bool{}
	for _, w := range a.Words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < 3 || len(w) > 10 {
			t.Fatalf("word %q length out of range", w)
		}
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				t.Fatalf("word %q has invalid char", w)
			}
		}
	}
}

func TestVocabularySharesPrefixes(t *testing.T) {
	// The bigram model must produce prefix clustering (what makes partial
	// keyword queries interesting). Check that a noticeable fraction of
	// words share a 3-char prefix with another word.
	v := NewVocabulary(2, 1000, 1.2)
	prefixes := map[string]int{}
	for _, w := range v.Words {
		prefixes[w[:3]]++
	}
	shared := 0
	for _, c := range prefixes {
		if c > 1 {
			shared += c
		}
	}
	if frac := float64(shared) / float64(len(v.Words)); frac < 0.3 {
		t.Errorf("only %.0f%% of words share a 3-prefix; corpus too uniform", frac*100)
	}
}

func TestSamplerZipfSkew(t *testing.T) {
	v := NewVocabulary(3, 200, 1.3)
	s := v.Sampler(9)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[s.Word()]++
	}
	if counts[v.Words[0]] < counts[v.Words[len(v.Words)-1]] {
		t.Error("rank-0 word should be sampled more than last-rank word")
	}
	if counts[v.Words[0]] < 20000/20 {
		t.Errorf("head word drawn only %d times; skew too weak", counts[v.Words[0]])
	}
}

func TestKeyTuplesUnique(t *testing.T) {
	v := NewVocabulary(4, 500, 1.2)
	tuples := KeyTuples(v, 5, 2000, 2)
	if len(tuples) != 2000 {
		t.Fatalf("got %d tuples", len(tuples))
	}
	seen := map[string]bool{}
	for _, tu := range tuples {
		if len(tu) != 2 {
			t.Fatal("wrong dims")
		}
		k := tu[0] + "|" + tu[1]
		if seen[k] {
			t.Fatalf("duplicate tuple %v", tu)
		}
		seen[k] = true
	}
	elems := Elements(tuples)
	if len(elems) != 2000 || elems[7].Values[0] != tuples[7][0] {
		t.Error("Elements mismatch")
	}
}

func TestResources(t *testing.T) {
	rs := Resources(6, 500)
	if len(rs) != 500 {
		t.Fatal("wrong count")
	}
	for _, r := range rs {
		if len(r) != 3 {
			t.Fatal("resource dims")
		}
		mem, err := strconv.ParseFloat(r[0], 64)
		if err != nil || mem < 100 || mem > 5000 {
			t.Fatalf("memory %q out of range", r[0])
		}
		if _, err := strconv.ParseFloat(r[1], 64); err != nil {
			t.Fatalf("cpu %q", r[1])
		}
		if _, err := strconv.ParseFloat(r[2], 64); err != nil {
			t.Fatalf("bw %q", r[2])
		}
	}
}

func TestQueryGenerators(t *testing.T) {
	v := NewVocabulary(7, 300, 1.2)
	for _, dims := range []int{2, 3} {
		g := NewQueryGen(v, 11, dims)
		for i := 0; i < 200; i++ {
			q1 := g.Q1()
			if len(q1) != dims {
				t.Fatal("Q1 dims")
			}
			nonWild := 0
			for _, term := range q1 {
				if term.Kind != keyspace.KindWildcard {
					nonWild++
				}
			}
			if nonWild != 1 {
				t.Fatalf("Q1 must constrain exactly one dim, got %d (%s)", nonWild, q1)
			}

			q2 := g.Q2()
			partials, constrained := 0, 0
			for _, term := range q2 {
				if term.Kind == keyspace.KindPrefix {
					partials++
				}
				if term.Kind != keyspace.KindWildcard {
					constrained++
				}
			}
			if constrained < 2 || partials < 1 {
				t.Fatalf("Q2 needs >=2 terms with >=1 partial: %s", q2)
			}

			q3 := g.Q3Keyword()
			if q3[0].Kind != keyspace.KindExact || q3[1].Kind != keyspace.KindRange {
				t.Fatalf("Q3Keyword shape wrong: %s", q3)
			}
			q3r := g.Q3Ranges()
			for _, term := range q3r {
				if term.Kind != keyspace.KindRange {
					t.Fatalf("Q3Ranges shape wrong: %s", q3r)
				}
				if strings.Compare(term.Lo, term.Hi) > 0 {
					t.Fatalf("inverted range %s", term)
				}
			}
		}
	}
}
