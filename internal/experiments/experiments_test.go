package experiments

import (
	"io"
	"strings"
	"testing"
)

// Tiny scales keep the suite fast; the shapes under test are the paper's
// qualitative claims, which hold at any scale.
var tiny = []Scale{{Nodes: 40, Keys: 3000}, {Nodes: 80, Keys: 6000}}

func TestPaperScales(t *testing.T) {
	full := PaperScales(1)
	if full[0].Nodes != 1000 || full[4].Keys != 1_000_000 {
		t.Errorf("full scales wrong: %+v", full)
	}
	small := PaperScales(0.01)
	if small[0].Nodes != 10 || small[4].Nodes != 54 {
		t.Errorf("scaled wrong: %+v", small)
	}
	for _, s := range PaperScales(0.000001) {
		if s.Nodes < 2 || s.Keys < 10 {
			t.Errorf("degenerate scale %+v", s)
		}
	}
}

func TestSweepShapeMatchesPaper(t *testing.T) {
	pts, err := Sweep(SweepConfig{
		Dims: 2, Bits: bits2D, Scales: tiny, Kind: Q1, Queries: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		for _, r := range pt.Rows {
			// Paper Fig 9: processing nodes are a fraction of the network;
			// data nodes are a subset of processing nodes.
			if r.ProcessingNodes >= pt.Scale.Nodes {
				t.Errorf("%v: processing %d >= network %d", r.Query, r.ProcessingNodes, pt.Scale.Nodes)
			}
			if r.DataNodes > r.ProcessingNodes {
				t.Errorf("%v: data %d > processing %d", r.Query, r.DataNodes, r.ProcessingNodes)
			}
			if r.Matches > 0 && r.DataNodes == 0 {
				t.Errorf("%v: matches without data nodes", r.Query)
			}
			if r.Transmissions < r.Messages {
				t.Errorf("%v: transmissions < messages", r.Query)
			}
		}
	}
	// Same queries tracked across scales (the paper's methodology).
	for i := range pts[0].Rows {
		if pts[0].Rows[i].Query != pts[1].Rows[i].Query {
			t.Errorf("query set changed across scales")
		}
	}
	var sb strings.Builder
	WriteTable(&sb, "test", pts)
	if !strings.Contains(sb.String(), "processing") {
		t.Error("table missing header")
	}
}

// TestQ2CheaperThanQ1 checks the paper's Fig 11 observation: "the results
// are significantly better than those for type Q1 queries" because both
// keywords being (partially) known tightens pruning.
func TestQ2CheaperThanQ1(t *testing.T) {
	sc := []Scale{{Nodes: 60, Keys: 6000}}
	q1, err := Sweep(SweepConfig{Dims: 2, Bits: bits2D, Scales: sc, Kind: Q1, Queries: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Sweep(SweepConfig{Dims: 2, Bits: bits2D, Scales: sc, Kind: Q2, Queries: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(rows []Row) float64 {
		s := 0
		for _, r := range rows {
			s += r.ProcessingNodes
		}
		return float64(s) / float64(len(rows))
	}
	a1, a2 := avg(q1[0].Rows), avg(q2[0].Rows)
	t.Logf("avg processing nodes: Q1=%.1f Q2=%.1f", a1, a2)
	if a2 > a1 {
		t.Errorf("Q2 should be cheaper than Q1: %.1f vs %.1f", a2, a1)
	}
}

// Test3DCostsMoreThan2D checks the paper's Section 4.1.2 claim: the same
// query class costs two-to-three times more in 3D (longer curve, more
// clusters).
func Test3DCostsMoreThan2D(t *testing.T) {
	sc := []Scale{{Nodes: 80, Keys: 6000}}
	d2, err := Sweep(SweepConfig{Dims: 2, Bits: bits2D, Scales: sc, Kind: Q1, Queries: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	d3, err := Sweep(SweepConfig{Dims: 3, Bits: bits3D, Scales: sc, Kind: Q1, Queries: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(rows []Row) (p int) {
		for _, r := range rows {
			p += r.ProcessingNodes
		}
		return
	}
	p2, p3 := sum(d2[0].Rows), sum(d3[0].Rows)
	t.Logf("total processing nodes: 2D=%d 3D=%d", p2, p3)
	if p3 <= p2 {
		t.Errorf("3D should cost more than 2D: %d vs %d", p3, p2)
	}
}

func TestFigureFunctionsRunTiny(t *testing.T) {
	// Every figure function must execute end to end at tiny scale.
	figures := []struct {
		name string
		fn   func(float64, io.Writer) ([]Point, error)
	}{
		{"Fig09", Fig09}, {"Fig10", Fig10}, {"Fig11", Fig11}, {"Fig12", Fig12},
		{"Fig13", Fig13}, {"Fig14", Fig14}, {"Fig15", Fig15}, {"Fig16", Fig16},
		{"Fig17", Fig17},
	}
	for _, f := range figures {
		pts, err := f.fn(0.004, io.Discard)
		if err != nil {
			t.Errorf("%s: %v", f.name, err)
			continue
		}
		if len(pts) == 0 || len(pts[0].Rows) == 0 {
			t.Errorf("%s: empty results", f.name)
		}
	}
	// And they render, tables plus scaling sparklines.
	pts, err := Fig09(0.004, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteTable(&sb, "render", pts)
	if !strings.Contains(sb.String(), "processing nodes across scales") {
		t.Error("scaling charts missing from multi-scale table")
	}
	var csv strings.Builder
	WriteCSV(&csv, "fig9", pts)
	if !strings.Contains(csv.String(), "fig9,") {
		t.Error("csv rows missing")
	}
}

func TestFig18Skewed(t *testing.T) {
	dist, err := Fig18(20000, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Counts) != 500 {
		t.Fatalf("intervals = %d", len(dist.Counts))
	}
	total := 0
	for _, c := range dist.Counts {
		total += c
	}
	if total != 20000 {
		t.Errorf("keys lost in bucketing: %d", total)
	}
	// The paper's whole Section 3.5 premise: the distribution is NOT
	// uniform.
	if dist.Gini < 0.2 {
		t.Errorf("index distribution suspiciously uniform: gini=%.3f", dist.Gini)
	}
	if float64(dist.Summary.Max) < 3*dist.Summary.Mean {
		t.Errorf("no hot intervals: max=%d mean=%.1f", dist.Summary.Max, dist.Summary.Mean)
	}
}

func TestFig19BalanceOrdering(t *testing.T) {
	dists, err := Fig19(30, 4000, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	gu := gini(dists.Uniform)
	gj := gini(dists.JoinOnly)
	gr := gini(dists.JoinAndRun)
	t.Logf("gini uniform=%.3f joinOnly=%.3f join+runtime=%.3f", gu, gj, gr)
	// Paper Fig 19: join-time LB improves on the raw distribution; adding
	// runtime LB improves it significantly further.
	if gj >= gu {
		t.Errorf("join-time LB should improve balance: %.3f vs %.3f", gj, gu)
	}
	if gr >= gj {
		t.Errorf("runtime LB should improve further: %.3f vs %.3f", gr, gj)
	}
}

func gini(v []int) float64 {
	// small local wrapper to keep the test readable
	return giniOf(v)
}

func TestAblationAggregationSaves(t *testing.T) {
	rows, err := AblationAggregation(Scale{Nodes: 60, Keys: 6000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	onPayload, offPayload := 0, 0
	for _, r := range rows {
		onPayload += r.On.PayloadHops
		offPayload += r.Off.PayloadHops
		if r.On.Matches != r.Off.Matches {
			t.Errorf("%s: aggregation changed results: %d vs %d", r.Label, r.On.Matches, r.Off.Matches)
		}
	}
	t.Logf("payload messages: aggregated=%d per-cluster=%d", onPayload, offPayload)
	if onPayload >= offPayload {
		t.Errorf("aggregation should reduce payload messages: %d vs %d", onPayload, offPayload)
	}
}

func TestAblationPruningSaves(t *testing.T) {
	rows, err := AblationPruning(Scale{Nodes: 60, Keys: 6000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	onMsgs, offMsgs := 0, 0
	for _, r := range rows {
		onMsgs += r.On.Messages
		offMsgs += r.Off.Messages
		if r.On.Matches != r.Off.Matches {
			t.Errorf("%s: strategies disagree on results: %d vs %d", r.Label, r.On.Matches, r.Off.Matches)
		}
	}
	t.Logf("messages: distributed=%d central=%d", onMsgs, offMsgs)
	if onMsgs >= offMsgs {
		t.Errorf("distributed refinement should beat central enumeration: %d vs %d", onMsgs, offMsgs)
	}
}

func TestBaselinesCompare(t *testing.T) {
	rows, err := BaselinesCompare(50, 3000, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	if byName["squid"].Recall < 1 {
		t.Errorf("squid recall %.2f, want 1.0 (the guarantee)", byName["squid"].Recall)
	}
	if byName["inverted index"].Recall < 1 {
		t.Errorf("inverted index recall %.2f on exact query", byName["inverted index"].Recall)
	}
	full := byName["flooding (full TTL)"]
	if full.Recall < 1 {
		t.Errorf("full flood recall %.2f", full.Recall)
	}
	if full.Messages <= byName["squid"].Messages {
		t.Errorf("flooding should cost more than squid: %d vs %d", full.Messages, byName["squid"].Messages)
	}
	if full.Visited < 50 {
		t.Errorf("full flood should visit every peer: %d", full.Visited)
	}
}

func TestBaselineInverseSFC(t *testing.T) {
	rows, err := BaselineInverseSFC(60, 4000, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 {
			t.Errorf("%s touched no nodes", r.System)
		}
	}
}

func TestAblationLoadBalance(t *testing.T) {
	rows, err := AblationLoadBalance(25, 3000, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LoadBalanceRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	if byName["join sampling J=10"].Gini >= byName["join sampling J=1"].Gini {
		t.Errorf("more samples should improve balance: J=10 %.3f vs J=1 %.3f",
			byName["join sampling J=10"].Gini, byName["join sampling J=1"].Gini)
	}
}

func TestAblationHotSpot(t *testing.T) {
	rows, err := AblationHotSpot(Scale{Nodes: 50, Keys: 5000}, 3, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Matches != rows[2].Matches {
		t.Errorf("cache changed results: %d vs %d", rows[0].Matches, rows[2].Matches)
	}
	t.Logf("probes per run: %d, %d, %d", rows[0].Probes, rows[1].Probes, rows[2].Probes)
	if rows[0].Probes > 0 && rows[2].Probes >= rows[0].Probes {
		t.Errorf("warm run should probe less: %d vs %d", rows[2].Probes, rows[0].Probes)
	}
}

func TestAblationCurve(t *testing.T) {
	rows, err := AblationCurve(Scale{Nodes: 50, Keys: 5000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var hilbert, morton CurveRow
	for _, r := range rows {
		if r.Curve == "hilbert" {
			hilbert = r
		} else {
			morton = r
		}
	}
	t.Logf("clusters/query: hilbert=%.1f morton=%.1f", hilbert.AvgClusters, morton.AvgClusters)
	if hilbert.AvgClusters > morton.AvgClusters {
		t.Errorf("hilbert should cluster better than morton: %.1f vs %.1f",
			hilbert.AvgClusters, morton.AvgClusters)
	}
	if hilbert.AvgMatchesFound != morton.AvgMatchesFound {
		t.Errorf("curves disagree on matches: %.1f vs %.1f", hilbert.AvgMatchesFound, morton.AvgMatchesFound)
	}
}

// giniOf duplicates stats.Gini locally so the test reads standalone.
func giniOf(values []int) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sortInts(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += float64(v) * float64(2*(i+1)-n-1)
		total += float64(v)
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
