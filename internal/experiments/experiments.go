// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4) on simulated networks, at configurable scale. The
// full-scale runs (1 000-5 400 nodes, 2*10^5-10^6 keys) are driven by
// cmd/squid-bench; the benchmark suite runs the same code at reduced scale.
// See DESIGN.md Section 4 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/viz"
	"squid/internal/workload"
)

// Scale is one (network size, stored keys) point of the paper's sweep.
type Scale struct {
	Nodes int
	Keys  int
}

// PaperScales returns the paper's five sweep points scaled by factor
// (factor 1 = the paper's 1 000-5 400 nodes and 2*10^5-10^6 keys).
func PaperScales(factor float64) []Scale {
	full := []Scale{
		{1000, 200_000},
		{2100, 400_000},
		{3200, 600_000},
		{4300, 800_000},
		{5400, 1_000_000},
	}
	out := make([]Scale, len(full))
	for i, s := range full {
		out[i] = Scale{Nodes: max(2, int(float64(s.Nodes)*factor)), Keys: max(10, int(float64(s.Keys)*factor))}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Row is one query's cost at one scale — the paper's per-query metrics.
type Row struct {
	Query           string
	Matches         int
	RoutingNodes    int
	ProcessingNodes int
	DataNodes       int
	Messages        int
	PayloadHops     int
	Transmissions   int
	// ClusteringRatio is matches per data node — the paper's locality
	// measure (Section 4.1.1).
	ClusteringRatio float64
}

// Point is all queries' rows at one scale.
type Point struct {
	Scale Scale
	Rows  []Row
}

// QueryKind selects the paper's query classes.
type QueryKind int

const (
	// Q1: one keyword or partial keyword (Section 4.1, type Q1).
	Q1 QueryKind = iota
	// Q2: two-three keywords, at least one partial.
	Q2
	// Q3Keyword: range query of the form (keyword, range, *).
	Q3Keyword
	// Q3Ranges: range query with a range on every dimension.
	Q3Ranges
)

func (k QueryKind) String() string {
	switch k {
	case Q1:
		return "Q1"
	case Q2:
		return "Q2"
	case Q3Keyword:
		return "Q3(keyword,range,*)"
	case Q3Ranges:
		return "Q3(range,range,range)"
	}
	return "?"
}

// SweepConfig parameterizes a query-cost sweep.
type SweepConfig struct {
	// Dims and Bits set the keyword-space geometry (paper: 2x32, 3x21).
	Dims, Bits int
	// Scales to evaluate; data and ring are rebuilt per scale.
	Scales []Scale
	// Kind selects the query class; Queries how many distinct queries.
	Kind    QueryKind
	Queries int
	// VocabSize controls the synthetic corpus (0: scaled from keys).
	VocabSize int
	// Seed drives all randomness.
	Seed int64
	// Engine overrides the per-peer engine options (ablations).
	Engine squid.Options
	// Progress, when non-nil, receives status lines.
	Progress io.Writer
}

func (c SweepConfig) vocabSize(keys int) int {
	if c.VocabSize > 0 {
		return c.VocabSize
	}
	// Enough words that `keys` distinct tuples exist comfortably under the
	// Zipf skew.
	v := keys / 20
	if v < 200 {
		v = 200
	}
	if v > 60_000 {
		v = 60_000
	}
	return v
}

// Sweep runs the configured query set at every scale. The same queries are
// evaluated at each scale, as in the paper ("query1".."query6" tracked
// across system sizes).
func Sweep(cfg SweepConfig) ([]Point, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 6
	}
	var points []Point
	var queries []keyspace.Query
	for _, sc := range cfg.Scales {
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "# scale: %d nodes, %d keys\n", sc.Nodes, sc.Keys)
		}
		nw, vocab, err := BuildNetwork(cfg, sc)
		if err != nil {
			return nil, err
		}
		if queries == nil {
			queries = makeQueries(cfg, vocab)
		}
		pt := Point{Scale: sc}
		for qi, q := range queries {
			res, qm := nw.Query(qi%len(nw.Peers), q)
			if res.Err != nil {
				return nil, fmt.Errorf("experiments: query %s: %w", q, res.Err)
			}
			pt.Rows = append(pt.Rows, Row{
				Query:           q.String(),
				Matches:         len(res.Matches),
				RoutingNodes:    len(qm.RoutingNodes),
				ProcessingNodes: len(qm.ProcessingNodes),
				DataNodes:       len(qm.DataNodes),
				Messages:        qm.Messages(),
				PayloadHops:     qm.PayloadHops,
				Transmissions:   qm.TotalTransmissions(),
				ClusteringRatio: qm.ClusteringRatio(),
			})
		}
		points = append(points, pt)
	}
	return points, nil
}

// BuildNetwork constructs a network at one scale with the sweep's word
// workload preloaded.
func BuildNetwork(cfg SweepConfig, sc Scale) (*sim.Network, *workload.Vocabulary, error) {
	space, err := keyspace.NewWordSpace(cfg.Dims, cfg.Bits)
	if err != nil {
		return nil, nil, err
	}
	nw, err := sim.Build(sim.Config{
		Nodes:  sc.Nodes,
		Space:  space,
		Seed:   cfg.Seed,
		Engine: cfg.Engine,
	})
	if err != nil {
		return nil, nil, err
	}
	vocab := workload.NewVocabulary(cfg.Seed+1, cfg.vocabSize(sc.Keys), 1.2)
	tuples := workload.KeyTuples(vocab, cfg.Seed+2, sc.Keys, cfg.Dims)
	if err := nw.Preload(workload.Elements(tuples)); err != nil {
		return nil, nil, err
	}
	return nw, vocab, nil
}

func makeQueries(cfg SweepConfig, vocab *workload.Vocabulary) []keyspace.Query {
	gen := workload.NewQueryGen(vocab, cfg.Seed+3, cfg.Dims)
	out := make([]keyspace.Query, cfg.Queries)
	for i := range out {
		switch cfg.Kind {
		case Q1:
			out[i] = gen.Q1()
		case Q2:
			out[i] = gen.Q2()
		case Q3Keyword:
			out[i] = gen.Q3Keyword()
		default:
			out[i] = gen.Q3Ranges()
		}
	}
	return out
}

// WriteCSV renders sweep points as CSV (one row per query per scale) for
// external plotting tools.
func WriteCSV(w io.Writer, figure string, points []Point) {
	fmt.Fprintln(w, "figure,nodes,keys,query,matches,routing,processing,data,messages,payload,transmissions,clustering")
	for _, pt := range points {
		for _, r := range pt.Rows {
			fmt.Fprintf(w, "%s,%d,%d,%q,%d,%d,%d,%d,%d,%d,%d,%.2f\n",
				figure, pt.Scale.Nodes, pt.Scale.Keys, r.Query, r.Matches, r.RoutingNodes,
				r.ProcessingNodes, r.DataNodes, r.Messages, r.PayloadHops, r.Transmissions, r.ClusteringRatio)
		}
	}
}

// WriteTable renders sweep points as aligned text, one block per scale —
// the rows the paper plots in its figures — followed by per-query scaling
// sparklines when the sweep has more than one scale.
func WriteTable(w io.Writer, title string, points []Point) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, pt := range points {
		fmt.Fprintf(w, "-- %d nodes, %d keys --\n", pt.Scale.Nodes, pt.Scale.Keys)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "query\tmatches\trouting\tprocessing\tdata\tmessages\ttransmissions\tclustering")
		for _, r := range pt.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
				r.Query, r.Matches, r.RoutingNodes, r.ProcessingNodes, r.DataNodes, r.Messages, r.Transmissions, r.ClusteringRatio)
		}
		tw.Flush()
	}
	if len(points) > 1 {
		writeScalingCharts(w, points)
	}
}

// writeScalingCharts renders each query's processing-node growth across
// scales as a sparkline — the visual shape of the paper's line plots.
func writeScalingCharts(w io.Writer, points []Point) {
	xLabels := make([]string, len(points))
	for i, pt := range points {
		xLabels[i] = fmt.Sprintf("%dn/%dk", pt.Scale.Nodes, pt.Scale.Keys/1000)
	}
	series := map[string][]int{}
	var order []string
	for qi, r := range points[0].Rows {
		name := r.Query
		if len(name) > 16 {
			name = name[:13] + "..."
		}
		order = append(order, name)
		vals := make([]int, len(points))
		for pi, pt := range points {
			if qi < len(pt.Rows) {
				vals[pi] = pt.Rows[qi].ProcessingNodes
			}
		}
		series[name] = vals
	}
	viz.Series(w, "processing nodes across scales:", xLabels, series, order)
}
