package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/loadbalance"
	"squid/internal/sfc"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/stats"
	"squid/internal/workload"
)

// LoadBalanceRow is one configuration's balance quality.
type LoadBalanceRow struct {
	Config string
	Gini   float64
	CoV    float64
	MaxAvg float64
}

// AblationLoadBalance (A5) sweeps the join-time sample count J and adds
// the virtual-node configuration, measuring final balance quality on the
// same skewed corpus.
func AblationLoadBalance(nodes, keys int, w io.Writer) ([]LoadBalanceRow, error) {
	grow := func(samples int) (*sim.Network, error) {
		space, err := keyspace.NewWordSpace(2, bits2D)
		if err != nil {
			return nil, err
		}
		nw, err := sim.Build(sim.Config{Nodes: 1, Space: space, Seed: 61})
		if err != nil {
			return nil, err
		}
		vocab := workload.NewVocabulary(62, maxi(200, keys/20), 1.2)
		tuples := workload.KeyTuples(vocab, 63, keys, 2)
		if err := nw.Preload(workload.Elements(tuples)); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(64))
		randID := func() chord.ID {
			return chord.ID(rng.Uint64() & ((uint64(1) << space.IndexBits()) - 1))
		}
		for len(nw.Peers) < nodes {
			var err error
			if samples <= 1 {
				_, err = nw.AddPeer(randID())
			} else {
				_, err = loadbalance.SampledJoin(nw, samples, randID)
			}
			if err != nil {
				return nil, err
			}
		}
		return nw, nil
	}

	row := func(name string, loads []int) LoadBalanceRow {
		s := stats.Summarize(loads)
		r := LoadBalanceRow{Config: name, Gini: stats.Gini(loads), CoV: s.CoV}
		if s.Mean > 0 {
			r.MaxAvg = float64(s.Max) / s.Mean
		}
		return r
	}

	var rows []LoadBalanceRow
	for _, j := range []int{1, 2, 5, 10} {
		nw, err := grow(j)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row(fmt.Sprintf("join sampling J=%d", j), nw.LoadVector()))
	}
	// Join sampling + runtime neighbor balancing.
	nw, err := grow(5)
	if err != nil {
		return nil, err
	}
	if _, err := loadbalance.Balance(nw, 2.0, 10); err != nil {
		return nil, err
	}
	rows = append(rows, row("J=5 + neighbor runtime LB", nw.LoadVector()))

	// Virtual nodes: same total virtual count spread over nodes/4 hosts.
	nwv, err := grow(1)
	if err != nil {
		return nil, err
	}
	vp, err := loadbalance.NewVirtualPool(nwv, maxi(2, nodes/4))
	if err != nil {
		return nil, err
	}
	vp.MigrateAll(10 * nodes)
	rows = append(rows, row(fmt.Sprintf("virtual nodes (%d hosts)", maxi(2, nodes/4)), vp.HostLoads()))

	if w != nil {
		fmt.Fprintf(w, "== Ablation A5: load balancing (%d nodes, %d keys) ==\n", nodes, keys)
		for _, r := range rows {
			fmt.Fprintf(w, "%-28s gini=%.3f cov=%.2f max/avg=%.1f\n", r.Config, r.Gini, r.CoV, r.MaxAvg)
		}
	}
	return rows, nil
}

// HotSpotRow reports one repetition's cost of a hot query.
type HotSpotRow struct {
	Run      int
	Probes   int
	Messages int
	Matches  int
}

// AblationHotSpot (A7, extension) measures the probe cache: the same
// popular query repeated from one peer. The first run pays the full
// FindSuccessor handshakes; warm runs skip them — the hot-spot mitigation
// the paper lists as future work.
func AblationHotSpot(sc Scale, repeats int, w io.Writer) ([]HotSpotRow, error) {
	if repeats < 2 {
		repeats = 2
	}
	cfg := SweepConfig{
		Dims: 2, Bits: bits2D, Scales: []Scale{sc}, Kind: Q1, Queries: 1, Seed: 81,
		Engine: squid.Options{ProbeCacheSize: 512},
	}
	nw, vocab, err := BuildNetwork(cfg, sc)
	if err != nil {
		return nil, err
	}
	gen := workload.NewQueryGen(vocab, 82, 2)
	q := gen.Q1()
	var rows []HotSpotRow
	for i := 0; i < repeats; i++ {
		res, qm := nw.Query(0, q)
		if res.Err != nil {
			return nil, res.Err
		}
		rows = append(rows, HotSpotRow{
			Run: i, Probes: qm.ProbeMessages, Messages: qm.Messages(), Matches: len(res.Matches),
		})
	}
	if w != nil {
		fmt.Fprintf(w, "== Ablation A7: probe cache under a hot query %s (%d nodes, %d keys) ==\n", q, sc.Nodes, sc.Keys)
		for _, r := range rows {
			fmt.Fprintf(w, "run %d: probes=%d messages=%d matches=%d\n", r.Run, r.Probes, r.Messages, r.Matches)
		}
	}
	return rows, nil
}

// CurveRow is one curve's clustering quality and query cost.
type CurveRow struct {
	Curve           string
	AvgClusters     float64
	AvgProcessing   float64
	AvgMessages     float64
	AvgMatchesFound float64
}

// AblationCurve (A6) compares Hilbert against Z-order (Morton) as the
// dimension-reducing mapping: clusters per query and the resulting query
// cost on identical data. Hilbert's better locality should yield fewer
// clusters and cheaper queries — the reason the paper picks it.
func AblationCurve(sc Scale, w io.Writer) ([]CurveRow, error) {
	const dims, axisBits = 2, 16
	vocab := workload.NewVocabulary(71, maxi(200, sc.Keys/20), 1.2)
	tuples := workload.KeyTuples(vocab, 72, sc.Keys, dims)
	gen := workload.NewQueryGen(vocab, 73, dims)
	queries := make([]keyspace.Query, 5)
	for i := range queries {
		queries[i] = gen.Q1()
	}

	var rows []CurveRow
	for _, curve := range []sfc.Curve{sfc.MustHilbert(dims, axisBits), sfc.MustMorton(dims, axisBits)} {
		dimsCodec := make([]keyspace.Dimension, dims)
		for i := range dimsCodec {
			dimsCodec[i] = keyspace.MustWordDim(fmt.Sprintf("kw%d", i), axisBits)
		}
		space, err := keyspace.New(curve, dimsCodec...)
		if err != nil {
			return nil, err
		}
		nw, err := sim.Build(sim.Config{Nodes: sc.Nodes, Space: space, Seed: 74})
		if err != nil {
			return nil, err
		}
		if err := nw.Preload(workload.Elements(tuples)); err != nil {
			return nil, err
		}
		r := CurveRow{Curve: curve.Name()}
		for qi, q := range queries {
			region, err := space.Region(q)
			if err != nil {
				return nil, err
			}
			r.AvgClusters += float64(len(sfc.Clusters(curve, region)))
			res, qm := nw.Query(qi%len(nw.Peers), q)
			if res.Err != nil {
				return nil, res.Err
			}
			r.AvgProcessing += float64(len(qm.ProcessingNodes))
			r.AvgMessages += float64(qm.Messages())
			r.AvgMatchesFound += float64(len(res.Matches))
		}
		n := float64(len(queries))
		r.AvgClusters /= n
		r.AvgProcessing /= n
		r.AvgMessages /= n
		r.AvgMatchesFound /= n
		rows = append(rows, r)
	}
	if w != nil {
		fmt.Fprintf(w, "== Ablation A6: curve choice (%d nodes, %d keys) ==\n", sc.Nodes, sc.Keys)
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s clusters/query=%.1f processing=%.1f messages=%.1f matches=%.1f\n",
				r.Curve, r.AvgClusters, r.AvgProcessing, r.AvgMessages, r.AvgMatchesFound)
		}
	}
	return rows, nil
}
