package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"squid/internal/chord"
	"squid/internal/gnutella"
	"squid/internal/invindex"
	"squid/internal/isfc"
	"squid/internal/keyspace"
	"squid/internal/loadbalance"
	"squid/internal/sfc"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/stats"
	"squid/internal/viz"
	"squid/internal/workload"

	"squid/internal/can"
)

// The paper's geometries: 2-D keyword spaces use 32 bits per axis (64-bit
// index), 3-D use 21 (63-bit index).
const (
	bits2D = 32
	bits3D = 21
)

// Fig09 reproduces Figure 9: six Q1 queries over the 2-D keyword space as
// the system grows (matches, processing nodes, data nodes per scale).
func Fig09(factor float64, w io.Writer) ([]Point, error) {
	pts, err := Sweep(SweepConfig{
		Dims: 2, Bits: bits2D, Scales: PaperScales(factor),
		Kind: Q1, Queries: 6, Seed: 9, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 9: Q1 queries, 2D keyword space", pts)
	}
	return pts, err
}

// Fig10 reproduces Figure 10: all metrics for the Q1 queries at the two
// largest 2-D scales (paper: 3 200 nodes/6*10^5 keys and 5 400/10^6).
func Fig10(factor float64, w io.Writer) ([]Point, error) {
	all := PaperScales(factor)
	pts, err := Sweep(SweepConfig{
		Dims: 2, Bits: bits2D, Scales: []Scale{all[2], all[4]},
		Kind: Q1, Queries: 6, Seed: 9, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 10: all metrics, 2D", pts)
	}
	return pts, err
}

// Fig11 reproduces Figure 11: five Q2 queries, 2-D.
func Fig11(factor float64, w io.Writer) ([]Point, error) {
	pts, err := Sweep(SweepConfig{
		Dims: 2, Bits: bits2D, Scales: PaperScales(factor),
		Kind: Q2, Queries: 5, Seed: 11, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 11: Q2 queries, 2D", pts)
	}
	return pts, err
}

// Fig12 reproduces Figure 12: six Q1 queries, 3-D sweep.
func Fig12(factor float64, w io.Writer) ([]Point, error) {
	pts, err := Sweep(SweepConfig{
		Dims: 3, Bits: bits3D, Scales: PaperScales(factor),
		Kind: Q1, Queries: 6, Seed: 12, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 12: Q1 queries, 3D", pts)
	}
	return pts, err
}

// Fig13 reproduces Figure 13: all metrics at the paper's two 3-D scales
// (3 000/6*10^5 and 5 300/10^6).
func Fig13(factor float64, w io.Writer) ([]Point, error) {
	all := PaperScales(factor)
	pts, err := Sweep(SweepConfig{
		Dims: 3, Bits: bits3D, Scales: []Scale{all[2], all[4]},
		Kind: Q1, Queries: 6, Seed: 12, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 13: all metrics, 3D", pts)
	}
	return pts, err
}

// Fig14 reproduces Figure 14: five Q2 queries, 3-D.
func Fig14(factor float64, w io.Writer) ([]Point, error) {
	pts, err := Sweep(SweepConfig{
		Dims: 3, Bits: bits3D, Scales: PaperScales(factor),
		Kind: Q2, Queries: 5, Seed: 14, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 14: Q2 queries, 3D", pts)
	}
	return pts, err
}

// Fig15 reproduces Figure 15: range queries (keyword, range, *), 3-D.
func Fig15(factor float64, w io.Writer) ([]Point, error) {
	pts, err := Sweep(SweepConfig{
		Dims: 3, Bits: bits3D, Scales: PaperScales(factor),
		Kind: Q3Keyword, Queries: 4, Seed: 15, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 15: range queries (keyword, range, *), 3D", pts)
	}
	return pts, err
}

// Fig16 reproduces Figure 16: all metrics for range queries at the paper's
// two scales (2 750/6*10^5 and 4 700/10^6).
func Fig16(factor float64, w io.Writer) ([]Point, error) {
	s1 := Scale{Nodes: max(2, int(2750*factor)), Keys: max(10, int(600_000*factor))}
	s2 := Scale{Nodes: max(2, int(4700*factor)), Keys: max(10, int(1_000_000*factor))}
	pts, err := Sweep(SweepConfig{
		Dims: 3, Bits: bits3D, Scales: []Scale{s1, s2},
		Kind: Q3Keyword, Queries: 4, Seed: 15, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 16: all metrics, range queries", pts)
	}
	return pts, err
}

// Fig17 reproduces Figure 17: range queries (range, range, range), 3-D.
func Fig17(factor float64, w io.Writer) ([]Point, error) {
	pts, err := Sweep(SweepConfig{
		Dims: 3, Bits: bits3D, Scales: PaperScales(factor),
		Kind: Q3Ranges, Queries: 5, Seed: 17, Progress: w,
	})
	if err == nil && w != nil {
		WriteTable(w, "Fig 17: range queries (range, range, range), 3D", pts)
	}
	return pts, err
}

// IndexDistribution is Fig. 18's data: keys bucketed over the index space.
type IndexDistribution struct {
	Counts  []int
	Summary stats.Summary
	Gini    float64
}

// Fig18 reproduces Figure 18: the distribution of keys over 500 equal
// intervals of the index space — the locality-preserving mapping's
// inherent skew, before any load balancing.
func Fig18(keys int, w io.Writer) (IndexDistribution, error) {
	space, err := keyspace.NewWordSpace(2, bits2D)
	if err != nil {
		return IndexDistribution{}, err
	}
	vocab := workload.NewVocabulary(18, maxi(200, keys/20), 1.2)
	tuples := workload.KeyTuples(vocab, 19, keys, 2)
	idxs := make([]uint64, 0, len(tuples))
	for _, tu := range tuples {
		idx, err := space.Index(tu)
		if err != nil {
			return IndexDistribution{}, err
		}
		idxs = append(idxs, idx)
	}
	counts := stats.IntervalCounts(idxs, space.IndexBits(), 500)
	dist := IndexDistribution{Counts: counts, Summary: stats.Summarize(counts), Gini: stats.Gini(counts)}
	if w != nil {
		fmt.Fprintf(w, "== Fig 18: key distribution over 500 index-space intervals ==\n")
		fmt.Fprintf(w, "keys=%d  mean/interval=%.1f  max=%d  median=%.0f  gini=%.3f  empty=%d\n",
			keys, dist.Summary.Mean, dist.Summary.Max, dist.Summary.Median, dist.Gini, countZeros(counts))
		fmt.Fprintf(w, "index space → %s\n", viz.Sparkline(viz.Downsample(counts, 100)))
	}
	return dist, nil
}

func countZeros(v []int) int {
	z := 0
	for _, x := range v {
		if x == 0 {
			z++
		}
	}
	return z
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LoadDistributions is Fig. 19's data: per-node key loads under the three
// regimes.
type LoadDistributions struct {
	Uniform    []int // random node ids, no balancing (Fig 18's consequence)
	JoinOnly   []int // join-time sampling only (Fig 19a)
	JoinAndRun []int // join-time + runtime neighbor balancing (Fig 19b)
}

// Fig19 reproduces Figure 19: grow a network over skewed data with (a)
// join-time load balancing only and (b) join-time plus runtime balancing,
// reporting per-node load distributions.
func Fig19(nodes, keys int, w io.Writer) (LoadDistributions, error) {
	build := func(sampled bool, runtimeLB bool) ([]int, error) {
		space, err := keyspace.NewWordSpace(2, bits2D)
		if err != nil {
			return nil, err
		}
		nw, err := sim.Build(sim.Config{Nodes: 1, Space: space, Seed: 19})
		if err != nil {
			return nil, err
		}
		vocab := workload.NewVocabulary(20, maxi(200, keys/20), 1.2)
		tuples := workload.KeyTuples(vocab, 21, keys, 2)
		if err := nw.Preload(workload.Elements(tuples)); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(22))
		randID := func() chord.ID {
			return chord.ID(rng.Uint64() & ((uint64(1) << space.IndexBits()) - 1))
		}
		for len(nw.Peers) < nodes {
			var err error
			if sampled {
				_, err = loadbalance.SampledJoin(nw, 8, randID)
			} else {
				_, err = nw.AddPeer(randID())
			}
			if err != nil {
				return nil, err
			}
		}
		if runtimeLB {
			if _, err := loadbalance.Balance(nw, 2.0, 10); err != nil {
				return nil, err
			}
		}
		return nw.LoadVector(), nil
	}

	var out LoadDistributions
	var err error
	if out.Uniform, err = build(false, false); err != nil {
		return out, err
	}
	if out.JoinOnly, err = build(true, false); err != nil {
		return out, err
	}
	if out.JoinAndRun, err = build(true, true); err != nil {
		return out, err
	}
	if w != nil {
		fmt.Fprintf(w, "== Fig 19: load balance (%d nodes, %d keys) ==\n", nodes, keys)
		for _, row := range []struct {
			name  string
			loads []int
		}{
			{"uniform ids (no LB)", out.Uniform},
			{"join-time LB only (19a)", out.JoinOnly},
			{"join-time + runtime LB (19b)", out.JoinAndRun},
		} {
			s := stats.Summarize(row.loads)
			sorted := append([]int(nil), row.loads...)
			sort.Ints(sorted)
			fmt.Fprintf(w, "%-30s mean=%.1f max=%d p95=%.0f cov=%.2f gini=%.3f\n",
				row.name, s.Mean, s.Max, s.P95, s.CoV, stats.Gini(row.loads))
			fmt.Fprintf(w, "%-30s %s\n", "  nodes by load:", viz.Sparkline(viz.Downsample(sorted, 80)))
		}
	}
	return out, nil
}

// AblationResult is a pair of cost rows for an on/off comparison.
type AblationResult struct {
	Label    string
	On, Off  Row
	OnLabel  string
	OffLabel string
}

// AblationAggregation (DESIGN.md A1) quantifies the sibling-aggregation
// optimization: messages with and without batching, same data and queries.
func AblationAggregation(sc Scale, w io.Writer) ([]AblationResult, error) {
	run := func(disable bool) ([]Point, error) {
		return Sweep(SweepConfig{
			Dims: 2, Bits: bits2D, Scales: []Scale{sc},
			Kind: Q1, Queries: 5, Seed: 31,
			Engine: squid.Options{DisableAggregation: disable},
		})
	}
	on, err := run(false)
	if err != nil {
		return nil, err
	}
	off, err := run(true)
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for i := range on[0].Rows {
		out = append(out, AblationResult{
			Label: on[0].Rows[i].Query, On: on[0].Rows[i], Off: off[0].Rows[i],
			OnLabel: "aggregated", OffLabel: "per-cluster",
		})
	}
	if w != nil {
		fmt.Fprintln(w, "== Ablation A1: sibling aggregation ==")
		for _, r := range out {
			fmt.Fprintf(w, "%-28s payload msgs %5d (on) vs %5d (off)  total %5d vs %5d\n",
				r.Label, r.On.PayloadHops, r.Off.PayloadHops, r.On.Messages, r.Off.Messages)
		}
	}
	return out, nil
}

// AblationPruning (A2) contrasts distributed refinement against the
// paper's strawman (Section 3.4.1): computing every exact cluster at the
// initiator and sending one message per cluster.
func AblationPruning(sc Scale, w io.Writer) ([]AblationResult, error) {
	run := func(initial int) ([]Point, error) {
		return Sweep(SweepConfig{
			Dims: 2, Bits: bits2D, Scales: []Scale{sc},
			Kind: Q1, Queries: 5, Seed: 37,
			Engine: squid.Options{InitialClusters: initial, DisableAggregation: initial > 1000},
		})
	}
	distributed, err := run(0) // default: one refinement step at the root
	if err != nil {
		return nil, err
	}
	central, err := run(1 << 17) // effectively full central decomposition
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for i := range distributed[0].Rows {
		out = append(out, AblationResult{
			Label: distributed[0].Rows[i].Query,
			On:    distributed[0].Rows[i], Off: central[0].Rows[i],
			OnLabel: "distributed refinement", OffLabel: "central clusters",
		})
	}
	if w != nil {
		fmt.Fprintln(w, "== Ablation A2: distributed refinement+pruning vs central cluster enumeration ==")
		for _, r := range out {
			fmt.Fprintf(w, "%-28s messages %5d vs %5d   processing nodes %4d vs %4d\n",
				r.Label, r.On.Messages, r.Off.Messages, r.On.ProcessingNodes, r.Off.ProcessingNodes)
		}
	}
	return out, nil
}

// BaselineRow is one system's cost on the shared baseline workload.
type BaselineRow struct {
	System   string
	Recall   float64
	Messages int
	Visited  int
}

// BaselinesCompare (A3) runs Squid, Gnutella-style flooding (full TTL and
// TTL=3) and the distributed inverted index on the same corpus and an
// exact two-keyword query, reporting recall and message cost.
func BaselinesCompare(nodes, elems int, w io.Writer) ([]BaselineRow, error) {
	space, err := keyspace.NewWordSpace(2, bits2D)
	if err != nil {
		return nil, err
	}
	vocab := workload.NewVocabulary(41, 500, 1.2)
	tuples := workload.KeyTuples(vocab, 42, elems, 2)
	elemsList := workload.Elements(tuples)
	target := tuples[0] // query the most natural tuple
	query := keyspace.Query{keyspace.Exact(target[0]), keyspace.Exact(target[1])}

	truth := 0
	for _, tu := range tuples {
		if space.Matches(query, tu) {
			truth++
		}
	}
	if truth == 0 {
		truth = 1
	}
	var rows []BaselineRow

	// Squid.
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 43})
	if err != nil {
		return nil, err
	}
	if err := nw.Preload(elemsList); err != nil {
		return nil, err
	}
	res, qm := nw.Query(0, query)
	if res.Err != nil {
		return nil, res.Err
	}
	rows = append(rows, BaselineRow{
		System: "squid", Recall: float64(len(res.Matches)) / float64(truth),
		Messages: qm.Messages(), Visited: len(qm.RoutingNodes) + len(qm.ProcessingNodes),
	})

	// Flooding.
	fl, err := gnutella.Build(space, nodes, 4, 44)
	if err != nil {
		return nil, err
	}
	for i, e := range elemsList {
		fl.Publish(i%nodes, e)
	}
	full := fl.Query(0, query, nodes)
	rows = append(rows, BaselineRow{
		System: "flooding (full TTL)", Recall: float64(len(full.Matches)) / float64(truth),
		Messages: full.Messages, Visited: full.Visited,
	})
	short := fl.Query(0, query, 3)
	rows = append(rows, BaselineRow{
		System: "flooding (TTL=3)", Recall: float64(len(short.Matches)) / float64(truth),
		Messages: short.Messages, Visited: short.Visited,
	})

	// Inverted index.
	iv, err := invindex.BuildNetwork(bits2D*2, nodes, 45)
	if err != nil {
		return nil, err
	}
	for i, e := range elemsList {
		iv.Publish(i, e)
	}
	iv.Quiesce()
	ir := iv.Query(0, target)
	rows = append(rows, BaselineRow{
		System: "inverted index", Recall: float64(len(ir.Matches)) / float64(truth),
		Messages: ir.Messages, Visited: 0,
	})

	if w != nil {
		fmt.Fprintf(w, "== Baselines (A3): exact query %s on %d nodes, %d elements ==\n", query, nodes, elems)
		for _, r := range rows {
			fmt.Fprintf(w, "%-22s recall=%.2f messages=%d visited=%d\n", r.System, r.Recall, r.Messages, r.Visited)
		}
	}
	return rows, nil
}

// InverseSFCRow compares Squid and the Andrzejak-Xu index on a one-
// attribute range query.
type InverseSFCRow struct {
	System   string
	Nodes    int // nodes/zones touched
	Messages int
}

// BaselineInverseSFC (A4) resolves the same single-attribute range on
// Squid (attribute + wildcard dimensions over Chord) and on the
// inverse-SFC-over-CAN comparator.
func BaselineInverseSFC(nodes, values int, w io.Writer) ([]InverseSFCRow, error) {
	// Shared attribute workload: memory sizes in [0, 4096).
	rng := rand.New(rand.NewSource(51))
	attrs := make([]float64, values)
	for i := range attrs {
		attrs[i] = float64(rng.Intn(4096))
	}
	rangeLo, rangeHi := 256.0, 512.0

	// Squid: 2-D space (memory, name-wildcard), range on the attribute.
	space, err := keyspace.New(sfc.MustHilbert(2, 16),
		keyspace.MustNumericDim("memory", 16, 0, 4096),
		keyspace.MustWordDim("name", 16),
	)
	if err != nil {
		return nil, err
	}
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 52})
	if err != nil {
		return nil, err
	}
	elems := make([]squid.Element, values)
	for i, a := range attrs {
		elems[i] = squid.Element{Values: []string{fmt.Sprintf("%.0f", a), fmt.Sprintf("host%d", i)}, Data: fmt.Sprintf("r%d", i)}
	}
	if err := nw.Preload(elems); err != nil {
		return nil, err
	}
	q := keyspace.Query{keyspace.Range("256", "512"), keyspace.Wildcard()}
	res, qm := nw.Query(0, q)
	if res.Err != nil {
		return nil, res.Err
	}
	rows := []InverseSFCRow{{
		System: "squid (SFC->Chord)", Nodes: len(qm.ProcessingNodes), Messages: qm.Messages(),
	}}

	// Andrzejak-Xu: inverse SFC over CAN, 2-D zones, same value width.
	network, err := can.Build(2, 8, nodes, 53)
	if err != nil {
		return nil, err
	}
	ix, err := isfc.New(network, 2, 8)
	if err != nil {
		return nil, err
	}
	scale := float64(uint64(1)<<ix.ValueBits()) / 4096.0
	for _, a := range attrs {
		ix.Add(uint64(a * scale))
	}
	cost, err := ix.Query(0, uint64(rangeLo*scale), uint64(rangeHi*scale))
	if err != nil {
		return nil, err
	}
	rows = append(rows, InverseSFCRow{
		System: "andrzejak-xu (inverse SFC->CAN)", Nodes: cost.Zones, Messages: cost.Messages,
	})

	if w != nil {
		fmt.Fprintf(w, "== Baseline A4: 1-attribute range [256,512] of %d values on %d nodes ==\n", values, nodes)
		for _, r := range rows {
			fmt.Fprintf(w, "%-34s nodes=%d messages=%d\n", r.System, r.Nodes, r.Messages)
		}
		fmt.Fprintf(w, "(matches found by squid: %d)\n", len(res.Matches))
	}
	return rows, nil
}
