// Package dessim is the discrete-event simulation backend: a virtual clock,
// a single-threaded event heap, and a transport whose every message is a
// scheduled future event. Where internal/sim runs one goroutine mailbox per
// peer over real channels — faithful but capped around a hundred nodes —
// dessim runs the same protocol code with zero goroutines per node, so
// planet-scale rings (10⁴–10⁵ peers) bootstrap, churn, and answer query
// storms in seconds of wall time, exactly as the paper's own simulator
// measured its figures.
//
// Everything in this package is confined to one goroutine (the test or
// experiment driver) and reads no wall clock: time is the event heap's
// cursor and every random draw flows from a seeded source, so a run is a
// pure function of its seed. The nondet analyzer enforces the discipline.
package dessim

import "time"

// VTime is a point in virtual time, in nanoseconds since the simulation
// started. It advances only when the event loop executes a scheduled event;
// wall-clock progress never moves it.
type VTime int64

// event is one heap entry. Entries are pooled: executed and cancelled
// events return to a free list and are reused by later schedules, with gen
// bumped on each release so a stale timer handle can never cancel the
// entry's next occupant.
type event struct {
	at  VTime
	seq uint64
	gen uint32
	idx int32 // position in the heap; -1 while on the free list
	fn  func()
}

// Core is the event loop: a virtual clock and a binary min-heap of events
// ordered by (time, sequence). The sequence tie-break makes same-instant
// execution order the scheduling order, so a run is fully deterministic.
//
// Core is not safe for concurrent use; the simulation owns it from a single
// goroutine and all protocol code runs inside event callbacks on that same
// goroutine.
type Core struct {
	now   VTime
	seq   uint64
	heap  []*event
	free  []*event
	steps uint64 // events executed since creation
}

// NewCore returns an event core at virtual time zero.
func NewCore() *Core { return &Core{} }

// Now returns the current virtual time.
func (c *Core) Now() VTime { return c.now }

// Elapsed returns the virtual time as a duration since the simulation
// started.
func (c *Core) Elapsed() time.Duration { return time.Duration(c.now) }

// Steps returns the total number of events executed — the simulator's unit
// of work, and the numerator of the events/sec throughput benchmark.
func (c *Core) Steps() uint64 { return c.steps }

// Pending returns the number of scheduled events. Cancellation removes its
// entry eagerly, so this is exactly the live count.
func (c *Core) Pending() int { return len(c.heap) }

// After schedules fn to run after d of virtual time. A non-positive d runs
// fn at the current instant, after already-scheduled same-instant events.
func (c *Core) After(d time.Duration, fn func()) {
	c.schedule(c.deadline(d), fn)
}

// deadline converts a relative delay to an absolute virtual instant,
// clamping non-positive delays to now.
func (c *Core) deadline(d time.Duration) VTime {
	if d < 0 {
		d = 0
	}
	return c.now + VTime(d)
}

// schedule inserts an event at absolute virtual time at and returns its
// handle plus the generation that makes the handle valid for cancel. at
// must not be in the past.
func (c *Core) schedule(at VTime, fn func()) (*event, uint32) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	var ev *event
	if n := len(c.free); n > 0 {
		ev = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn = at, c.seq, fn
	ev.idx = int32(len(c.heap))
	c.heap = append(c.heap, ev)
	c.siftUp(len(c.heap) - 1)
	return ev, ev.gen
}

// cancel removes a pending event, reporting whether it was still pending.
// The generation check rejects handles whose entry already fired or was
// cancelled and reused; removal is eager so dead entries never occupy heap
// slots (every completed RPC cancels its timeout, so at planet scale dead
// entries would otherwise dominate the heap and its sift costs).
func (c *Core) cancel(ev *event, gen uint32) bool {
	if ev == nil || ev.gen != gen || ev.fn == nil {
		return false
	}
	c.remove(int(ev.idx))
	c.release(ev)
	return true
}

// release returns a removed entry to the free list, invalidating any
// outstanding handles to it.
func (c *Core) release(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.idx = -1
	c.free = append(c.free, ev)
}

// Step executes the next event, advancing the virtual clock to its instant.
// It returns false when no event remains.
func (c *Core) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	ev := c.heap[0]
	c.remove(0)
	c.now = ev.at
	fn := ev.fn
	c.release(ev) // before fn: the callback may schedule and reuse this entry
	c.steps++
	fn()
	return true
}

// Run executes events until none are live — the event core's quiesce: with
// every message and timer a scheduled event, an empty heap is exactly "no
// message in flight and no timer pending". It returns the number of events
// executed by this call.
//
// Run terminates because the simulated protocols do: timers are armed only
// as RPC timeouts, retry backoff, and recovery deadlines, all of which are
// cancelled or bounded once their protocol exchange settles. A periodic
// self-rescheduling timer would loop forever; drive such designs with Step
// or bounded scheduling instead.
func (c *Core) Run() uint64 {
	start := c.steps
	for c.Step() {
	}
	return c.steps - start
}

// remove deletes the entry at heap index i, restoring the invariant. The
// caller still holds the *event and must release it.
//
//lint:allocfree
func (c *Core) remove(i int) {
	last := len(c.heap) - 1
	if i != last {
		c.swap(i, last)
	}
	c.heap[last] = nil // release the reference for the collector
	c.heap = c.heap[:last]
	if i < last {
		c.siftDown(i)
		c.siftUp(i)
	}
}

// before is the heap order: earlier instant first, scheduling order within
// an instant.
//
//lint:allocfree
func (c *Core) before(i, j int) bool {
	a, b := c.heap[i], c.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// swap exchanges two heap entries, keeping their back-indices current.
//
//lint:allocfree
func (c *Core) swap(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].idx = int32(i)
	c.heap[j].idx = int32(j)
}

// siftUp restores the heap invariant from a freshly appended leaf. This and
// siftDown are the simulator's hottest path — two heap operations per
// message at 10⁶+ events per experiment — and are pinned allocation-free.
//
//lint:allocfree
func (c *Core) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.before(i, parent) {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap invariant downward from index i.
//
//lint:allocfree
func (c *Core) siftDown(i int) {
	n := len(c.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		next := left
		if right := left + 1; right < n && c.before(right, left) {
			next = right
		}
		if !c.before(next, i) {
			return
		}
		c.swap(i, next)
		i = next
	}
}
