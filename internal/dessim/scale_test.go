package dessim_test

import (
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/dessim"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/workload"
)

// paperScaleRun is the full planet-scale experiment at a given size:
// bootstrap the ring, preload a Zipf corpus, run 10 stabilization rounds
// with global invariant checks, then a 1 000-query churn storm over lossy
// links. It returns the storm result and the network for assertions.
func paperScaleRun(t *testing.T, nodes, keys int, seed int64) (dessim.StormResult, *dessim.Network) {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := dessim.Build(dessim.Config{
		Nodes: nodes,
		Space: space,
		Seed:  seed,
		Net: dessim.NetConfig{
			Seed:       seed + 1,
			MinLatency: 5 * time.Millisecond,
			MaxLatency: 80 * time.Millisecond,
			DropRate:   0.005,
		},
		Chord: chord.Config{
			RPCTimeout: 400 * time.Millisecond,
			RPCRetries: 3,
			RPCBackoff: 10 * time.Millisecond,
		},
		Engine: squid.Options{
			// The recovery deadline must comfortably exceed a deep range
			// query's honest completion time (dozens of sequential hops at
			// up to 80 ms each), or the engine re-dispatches subtrees that
			// are still working and the duplicate storm quadruples the
			// event count. Virtual seconds are free; spurious retries are
			// not.
			SubtreeTimeout: 8 * time.Second,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Minute,
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(seed+2, 2000, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, seed+3, keys, 2))); err != nil {
		t.Fatal(err)
	}
	nw.StabilizeAll(10) // invariant-checked: CheckRing runs every round
	storm := nw.RunStorm(dessim.StormConfig{
		Seed:            seed + 4,
		Queries:         1000,
		Vocab:           vocab,
		Dims:            2,
		Joins:           25,
		Kills:           25,
		StabilizeRounds: 10,
	})
	nw.CheckRing()
	return storm, nw
}

// TestDesScale is the CI smoke for the event core's whole point: a
// 5 000-node ring — 50× past where the goroutine backend tops out — runs
// the full paper-scale experiment (bootstrap, 10 invariant-checked
// stabilization rounds, a 1 000-query churn storm) inside a strict
// wall-clock budget, single-threaded and race-free by construction.
func TestDesScale(t *testing.T) {
	start := time.Now()
	storm, nw := paperScaleRun(t, 5000, 20000, 9001)
	elapsed := time.Since(start)

	if storm.Complete == 0 {
		t.Error("no query completed")
	}
	if storm.Incomplete > storm.Complete/10 {
		t.Errorf("too many stranded queries: %v", storm)
	}
	if v := nw.RingViolations(); v != 0 {
		t.Errorf("hard ring violations = %d", v)
	}
	t.Logf("5k-node experiment: %v in %v (%d events, %.0f events/sec, virtual %v)",
		storm, elapsed.Round(time.Millisecond), nw.Core.Steps(),
		float64(nw.Core.Steps())/elapsed.Seconds(), nw.Core.Elapsed().Round(time.Second))

	// The wall-clock budget is the acceptance bar: if the event core ever
	// regresses to where planet scale takes minutes, this fails loudly.
	if elapsed > 60*time.Second {
		t.Fatalf("5k-node experiment took %v, budget 60s", elapsed)
	}
}

// TestDesPaperScale is the 10⁴-node acceptance experiment, run twice to
// pin seed-reproducibility at full scale. Skipped in -short runs: it is
// the slowest test in the repository (though still well under a minute per
// run — that is the tentpole).
func TestDesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-node paper-scale experiment skipped in short mode")
	}
	start := time.Now()
	storm1, nw1 := paperScaleRun(t, 10_000, 40_000, 9101)
	oneRun := time.Since(start)
	if oneRun > 60*time.Second {
		t.Fatalf("10⁴-node experiment took %v, budget 60s", oneRun)
	}
	if v := nw1.RingViolations(); v != 0 {
		t.Errorf("hard ring violations = %d", v)
	}

	storm2, nw2 := paperScaleRun(t, 10_000, 40_000, 9101)
	if storm1 != storm2 {
		t.Fatalf("same seed diverged at 10⁴ nodes:\n run1 %v\n run2 %v", storm1, storm2)
	}
	if nw1.Core.Steps() != nw2.Core.Steps() || nw1.Core.Elapsed() != nw2.Core.Elapsed() {
		t.Fatalf("event counts diverged: %d/%v vs %d/%v",
			nw1.Core.Steps(), nw1.Core.Elapsed(), nw2.Core.Steps(), nw2.Core.Elapsed())
	}
	t.Logf("10⁴-node experiment: %v in %v (%d events, %.0f events/sec)",
		storm1, oneRun.Round(time.Millisecond), nw1.Core.Steps(),
		float64(nw1.Core.Steps())/oneRun.Seconds())
}
