package dessim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/transport"
	"squid/internal/workload"
)

func testSpace(t testing.TB) *keyspace.Space {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func TestCoreRunsEventsInOrder(t *testing.T) {
	c := NewCore()
	var got []int
	c.After(30*time.Millisecond, func() { got = append(got, 3) })
	c.After(10*time.Millisecond, func() { got = append(got, 1) })
	c.After(20*time.Millisecond, func() {
		got = append(got, 2)
		// Nested scheduling: relative to the current virtual instant.
		c.After(5*time.Millisecond, func() { got = append(got, 25) })
	})
	if n := c.Run(); n != 4 {
		t.Errorf("Run executed %d events, want 4", n)
	}
	want := []int{1, 2, 25, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if c.Elapsed() != 30*time.Millisecond {
		t.Errorf("Elapsed = %v, want 30ms", c.Elapsed())
	}
}

func TestCoreSameInstantFIFO(t *testing.T) {
	c := NewCore()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(0, func() { got = append(got, i) })
	}
	c.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
	if c.Elapsed() != 0 {
		t.Errorf("zero-delay events advanced the clock to %v", c.Elapsed())
	}
}

func TestCoreTimerStopReset(t *testing.T) {
	c := NewCore()
	clock := c.Clock()
	fired := 0
	tm := clock.AfterFunc(10*time.Millisecond, func() { fired++ })
	if !tm.Stop() {
		t.Error("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	c.Run()
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}

	tm = clock.AfterFunc(10*time.Millisecond, func() { fired++ })
	if !tm.Reset(20 * time.Millisecond) {
		t.Error("Reset on pending timer should report true")
	}
	c.Run()
	if fired != 1 {
		t.Errorf("reset timer fired %d times, want 1", fired)
	}
	// The stopped timer's drain must not have advanced the clock (a
	// cancelled event is skipped, not executed), so only the reset timer's
	// 20ms elapsed.
	if c.Elapsed() != 20*time.Millisecond {
		t.Errorf("Elapsed = %v, want 20ms", c.Elapsed())
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d after drain", c.Pending())
	}
}

func TestBuildProducesConsistentRing(t *testing.T) {
	nw, err := Build(Config{Nodes: 50, Space: testSpace(t), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Peers) != 50 {
		t.Fatalf("peers = %d", len(nw.Peers))
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatal(err)
	}
	if vs := nw.CheckRing(); len(vs) != 0 {
		t.Fatalf("fresh ring has violations: %v", vs)
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	nw, err := Build(Config{Nodes: 40, Space: testSpace(t), Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(1, 300, 1.2)
	tuples := workload.KeyTuples(vocab, 2, 2000, 2)
	if err := nw.Preload(workload.Elements(tuples)); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewQueryGen(vocab, 3, 2)
	queries := []keyspace.Query{gen.Q1(), gen.Q2(), gen.Q3Keyword(), gen.Q3Ranges()}
	for qi, q := range queries {
		res, qm := nw.Query(qi%len(nw.Peers), q)
		if res.Err != nil {
			t.Fatalf("query %s: %v", q, res.Err)
		}
		want := nw.BruteForceMatches(q)
		if len(res.Matches) != len(want) {
			t.Errorf("query %s: %d matches, brute force %d", q, len(res.Matches), len(want))
		}
		if len(want) > 0 && qm.Messages() == 0 {
			t.Errorf("query %s: matches found with zero messages", q)
		}
	}
}

func TestChurnOperations(t *testing.T) {
	nw, err := Build(Config{Nodes: 15, Space: testSpace(t), Seed: 7, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(1, 200, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, 2, 300, 2))); err != nil {
		t.Fatal(err)
	}
	keys := nw.TotalKeys()
	rng := rand.New(rand.NewSource(9))

	if _, err := nw.AddPeer(chord.ID(rng.Uint64() & ((1 << 32) - 1))); err != nil {
		t.Fatal(err)
	}
	if len(nw.Peers) != 16 {
		t.Errorf("peers = %d after add", len(nw.Peers))
	}
	if nw.TotalKeys() != keys {
		t.Errorf("add changed keys: %d -> %d", keys, nw.TotalKeys())
	}

	nw.RemovePeer(3)
	if nw.TotalKeys() != keys {
		t.Errorf("leave lost keys: %d -> %d", keys, nw.TotalKeys())
	}

	victim := 5
	victimLoad := nw.LoadVector()[victim]
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not healed after kill: %v", err)
	}
	if got := nw.TotalKeys(); got != keys-victimLoad {
		t.Errorf("after kill: keys = %d, want %d", got, keys-victimLoad)
	}
	if v := nw.RingViolations(); v != 0 {
		t.Errorf("hard ring violations = %d", v)
	}
}

func TestPublishRoutesThroughOverlay(t *testing.T) {
	nw, err := Build(Config{Nodes: 10, Space: testSpace(t), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Publish(0, squid.Element{Values: []string{"hello", "world"}, Data: "x"}); err != nil {
		t.Fatal(err)
	}
	idx, err := nw.Space.Index([]string{"hello", "world"})
	if err != nil {
		t.Fatal(err)
	}
	owner := nw.SuccessorOf(idx)
	found := false
	nw.invoke(owner, func() { found = len(owner.Engine.LocalStore().At(idx)) == 1 })
	nw.Run()
	if !found {
		t.Error("published element not at oracle owner")
	}
}

// TestLatencyAndFaults drives queries over lossy, slow links, all on
// virtual time: chord RPC retries, subtree recovery, and the query deadline
// fire as scheduled events. The contract is the chaos soak's — results are
// always sound (a subset of ground truth, no duplicates) and a nil-error
// result has full recall — plus the DES-specific checks that latency
// advanced the virtual clock and the fault lottery is accounted.
func TestLatencyAndFaults(t *testing.T) {
	nw, err := Build(Config{
		Nodes: 25,
		Space: testSpace(t),
		Seed:  21,
		Net: NetConfig{
			Seed:       22,
			MinLatency: 10 * time.Millisecond,
			MaxLatency: 120 * time.Millisecond,
			DropRate:   0.15,
		},
		Chord: chord.Config{
			RPCTimeout: 500 * time.Millisecond,
			RPCRetries: 4,
			RPCBackoff: 20 * time.Millisecond,
		},
		Engine: squid.Options{
			SubtreeTimeout: 2 * time.Second,
			SubtreeRetries: 2,
			QueryDeadline:  60 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(1, 200, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, 2, 1000, 2))); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewQueryGen(vocab, 3, 2)
	complete := 0
	for i := 0; i < 40; i++ {
		q := gen.Q2()
		truth := make(map[string]bool)
		for _, e := range nw.BruteForceMatches(q) {
			truth[e.Data] = true
		}
		res, _ := nw.Query(i%len(nw.Peers), q)
		seen := make(map[string]bool, len(res.Matches))
		for _, m := range res.Matches {
			if !truth[m.Data] {
				t.Fatalf("query %d %s: phantom match %q", i, q, m.Data)
			}
			if seen[m.Data] {
				t.Fatalf("query %d %s: duplicate match %q", i, q, m.Data)
			}
			seen[m.Data] = true
		}
		if res.Err == nil {
			if len(seen) != len(truth) {
				t.Fatalf("query %d %s: silent partial %d/%d", i, q, len(seen), len(truth))
			}
			complete++
		}
	}
	if complete == 0 {
		t.Error("no query completed despite full recovery stack")
	}
	if nw.Core.Elapsed() == 0 {
		t.Error("latency injection did not advance virtual time")
	}
	st := nw.Net.Stats()
	if st.Delayed == 0 {
		t.Error("no messages recorded as delayed")
	}
	if st.Dropped == 0 {
		t.Errorf("drop lottery never fired at 15%% (stats %+v)", st)
	}
}

// TestCrashPartitionFaults exercises the black-hole and partition surface:
// traffic into a crashed or partitioned-away peer is lost and accounted.
// No stabilization runs while the partition is up (a split ring cannot be
// re-merged by Chord), so after healing the untouched ring state is still
// consistent.
func TestCrashPartitionFaults(t *testing.T) {
	nw, err := Build(Config{
		Nodes: 8,
		Space: testSpace(t),
		Seed:  5,
		Chord: chord.Config{RPCTimeout: 200 * time.Millisecond, RPCRetries: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Crash phase. No stabilization runs while the victim is down: in
	// virtual time a round is complete — every RPC timeout inside it fires —
	// so a crashed-but-stabilizing victim would burn through its entire
	// successor list in one round and isolate itself, which no wall-clock
	// round can do. The chaos contract (and the goroutine soak) crash nodes
	// under query traffic, not under their own stabilization.
	victim := nw.Peers[1].Addr()
	nw.Net.Crash(victim)
	if !nw.Net.Crashed(victim) {
		t.Fatal("Crashed = false after Crash")
	}
	if res, _ := nw.Query(4, keyspace.MustParse("(*, *)")); res.Err == nil {
		t.Error("whole-space query with a crashed owner reported success")
	}
	if nw.Net.Stats().CrashDrops == 0 {
		t.Error("traffic into a crashed peer not accounted as crash drops")
	}
	nw.Net.Restart(victim)
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not consistent after crash restart: %v", err)
	}

	var half []transport.Addr
	for _, p := range nw.Peers[:4] {
		half = append(half, p.Addr())
	}
	nw.Net.Partition(half)
	// A whole-space query from inside one partition half needs peers in the
	// other half; with no recovery timers configured its result path is
	// severed outright, so the event queue drains without a completion and
	// Query surfaces ErrIncomplete.
	res, _ := nw.Query(0, keyspace.MustParse("(*, *)"))
	if res.Err == nil {
		t.Error("whole-space query across an active partition reported success")
	}
	if nw.Net.Stats().PartitionDrops == 0 {
		t.Error("cross-partition traffic not accounted")
	}
	nw.Net.Heal()
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not consistent after heal: %v", err)
	}
}
