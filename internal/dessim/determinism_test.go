package dessim_test

import (
	"fmt"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/dessim"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/workload"
)

// stormFixture builds a 1 000-node ring over lossy, slow links, preloads a
// Zipf corpus, and runs a churn + query storm, returning a byte-exact
// transcript of everything observable: the storm result (with its folded
// per-query fingerprint), event counts, final virtual time, fault
// accounting, ring size, and total stored keys.
func stormFixture(t *testing.T, seed int64) string {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := dessim.Build(dessim.Config{
		Nodes: 1000,
		Space: space,
		Seed:  seed,
		Net: dessim.NetConfig{
			Seed:       seed + 1,
			MinLatency: 5 * time.Millisecond,
			MaxLatency: 80 * time.Millisecond,
			DropRate:   0.01,
		},
		Chord: chord.Config{
			RPCTimeout: 400 * time.Millisecond,
			RPCRetries: 3,
			RPCBackoff: 10 * time.Millisecond,
		},
		Engine: squid.Options{
			// Comfortably above a deep query's honest completion time, so
			// retries mean real loss rather than impatience (see the scale
			// test for the full rationale).
			SubtreeTimeout: 8 * time.Second,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Minute,
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(seed+2, 500, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, seed+3, 5000, 2))); err != nil {
		t.Fatal(err)
	}
	storm := nw.RunStorm(dessim.StormConfig{
		Seed:            seed + 4,
		Queries:         300,
		Vocab:           vocab,
		Dims:            2,
		Joins:           15,
		Kills:           15,
		StabilizeRounds: 5,
	})
	return fmt.Sprintf("storm{%v} steps=%d vtime=%v faults=%+v peers=%d keys=%d hardViolations=%d",
		storm, nw.Core.Steps(), nw.Core.Elapsed(), nw.Net.Stats(), len(nw.Peers), nw.TotalKeys(),
		nw.RingViolations())
}

// streamStormFixture runs a smaller storm where every other query streams
// with Limit(TopK): delivery and batch counts fold into the fingerprint,
// so any nondeterminism in the streaming path (windowed dispatch, cancel
// teardown, partial forwarding) breaks replay equality.
func streamStormFixture(t *testing.T, seed int64) (dessim.StormResult, string) {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := dessim.Build(dessim.Config{
		Nodes: 200,
		Space: space,
		Seed:  seed,
		Net: dessim.NetConfig{
			Seed:       seed + 1,
			MinLatency: 5 * time.Millisecond,
			MaxLatency: 60 * time.Millisecond,
		},
		Engine: squid.Options{QueryDeadline: 2 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(seed+2, 300, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, seed+3, 3000, 2))); err != nil {
		t.Fatal(err)
	}
	storm := nw.RunStorm(dessim.StormConfig{
		Seed:    seed + 4,
		Queries: 120,
		Vocab:   vocab,
		Dims:    2,
		TopK:    5,
	})
	return storm, fmt.Sprintf("storm{%v} steps=%d vtime=%v", storm, nw.Core.Steps(), nw.Core.Elapsed())
}

// TestStreamStormDeterminism extends the determinism contract to the
// streaming mix: Limit(k) streams replay byte-identically, every query
// resolves, and the streamed half is exactly half the storm.
func TestStreamStormDeterminism(t *testing.T) {
	sa, a := streamStormFixture(t, 9001)
	_, b := streamStormFixture(t, 9001)
	if a != b {
		t.Fatalf("same seed diverged:\n run1 %s\n run2 %s", a, b)
	}
	if sa.Streamed != 60 {
		t.Errorf("streamed %d of 120 queries, want 60", sa.Streamed)
	}
	if sa.Incomplete != 0 || sa.Partial != 0 {
		t.Errorf("lossless streaming storm left partial=%d incomplete=%d", sa.Partial, sa.Incomplete)
	}
	t.Logf("stream storm transcript: %s", a)
}

// TestStormDeterminism is the virtual-time determinism contract: the same
// 1k-node churn + query storm replays byte-identically from one seed, and
// two different seeds produce observably different runs (if they did not,
// the fingerprint would be vacuous).
func TestStormDeterminism(t *testing.T) {
	a := stormFixture(t, 7001)
	b := stormFixture(t, 7001)
	if a != b {
		t.Fatalf("same seed diverged:\n run1 %s\n run2 %s", a, b)
	}
	c := stormFixture(t, 7002)
	if a == c {
		t.Fatalf("different seeds replayed identically: %s", a)
	}
	t.Logf("storm transcript: %s", a)
}
