package dessim

import (
	"time"

	"squid/internal/transport"
)

// desEpoch anchors the virtual timeline to a fixed calendar instant for the
// telemetry registry's injected clock. Any nonzero constant works (the
// registry treats the zero time as "clockless"); this one is the opening
// day of HPDC 2003, where the paper was presented.
var desEpoch = time.Date(2003, time.June, 22, 0, 0, 0, 0, time.UTC)

// Clock returns a transport.Clock over the core's virtual timeline. Inject
// it into chord.Config.Clock and squid's Options.Clock so RPC timeouts,
// retry backoff, and recovery deadlines fire as scheduled events instead of
// runtime timers. Callbacks run on the event loop — which in this backend
// is the delivery context itself, so the usual hand-off-via-Invoke contract
// is trivially satisfied.
func (c *Core) Clock() transport.Clock { return virtualClock{c} }

// WallClock returns a time.Time-valued view of virtual time for
// telemetry.NewRegistry: a fixed epoch plus the virtual elapsed time.
// Timestamps in traces and metrics then carry meaningful (and fully
// deterministic) simulated times instead of the clockless registry's zeros.
func (c *Core) WallClock() func() time.Time {
	return func() time.Time { return desEpoch.Add(c.Elapsed()) }
}

type virtualClock struct{ core *Core }

func (vc virtualClock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	t := &virtualTimer{core: vc.core, fn: fn}
	t.ev, t.gen = vc.core.schedule(vc.core.deadline(d), fn)
	return t
}

var _ transport.Clock = virtualClock{}

// virtualTimer adapts a scheduled event to the transport.Timer surface.
// Stop and Reset report whether the timer was still pending, matching the
// time package's semantics. The generation pins the handle to this timer's
// occupancy of the pooled heap entry: once the event fires or is cancelled
// the entry may be reused, and a stale Stop must not touch its new owner.
type virtualTimer struct {
	core *Core
	ev   *event
	gen  uint32
	fn   func()
}

func (t *virtualTimer) Stop() bool { return t.core.cancel(t.ev, t.gen) }

func (t *virtualTimer) Reset(d time.Duration) bool {
	was := t.core.cancel(t.ev, t.gen)
	t.ev, t.gen = t.core.schedule(t.core.deadline(d), t.fn)
	return was
}
