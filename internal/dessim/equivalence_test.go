package dessim_test

import (
	"fmt"
	"sort"
	"testing"

	"squid/internal/dessim"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/workload"
)

// TestCrossBackendEquivalence pins the property that makes the event core a
// drop-in backend: for the same seed, the goroutine and discrete-event
// simulators build the identical ring (same identifiers, same addresses),
// place the identical data, and give the identical answers — matches and
// message counts — to the identical queries. Experiments validated at
// debuggable scale on one backend are then trustworthy at paper scale on
// the other.
func TestCrossBackendEquivalence(t *testing.T) {
	const (
		nodes = 30
		keys  = 1500
		seed  = 42
	)
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	goro, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	des, err := dessim.Build(dessim.Config{Nodes: nodes, Space: space, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	if len(goro.Peers) != len(des.Peers) {
		t.Fatalf("peer counts differ: %d vs %d", len(goro.Peers), len(des.Peers))
	}
	for i := range goro.Peers {
		if goro.Peers[i].ID() != des.Peers[i].ID() || goro.Peers[i].Addr() != des.Peers[i].Addr() {
			t.Fatalf("peer %d differs: %v@%s vs %v@%s", i,
				goro.Peers[i].ID(), goro.Peers[i].Addr(), des.Peers[i].ID(), des.Peers[i].Addr())
		}
	}

	vocab := workload.NewVocabulary(7, 300, 1.2)
	elems := workload.Elements(workload.KeyTuples(vocab, 8, keys, 2))
	if err := goro.Preload(elems); err != nil {
		t.Fatal(err)
	}
	if err := des.Preload(elems); err != nil {
		t.Fatal(err)
	}
	if g, d := fmt.Sprint(goro.LoadVector()), fmt.Sprint(des.LoadVector()); g != d {
		t.Fatalf("load vectors differ:\n goroutine %s\n event     %s", g, d)
	}

	gen := workload.NewQueryGen(vocab, 9, 2)
	queries := []keyspace.Query{
		gen.Q1(), gen.Q1(),
		gen.Q2(), gen.Q2(),
		gen.Q3Keyword(), gen.Q3Ranges(),
	}
	for qi, q := range queries {
		via := qi % nodes
		gRes, gQM := goro.Query(via, q)
		dRes, dQM := des.Query(via, q)
		if (gRes.Err == nil) != (dRes.Err == nil) {
			t.Fatalf("query %s: errors differ: %v vs %v", q, gRes.Err, dRes.Err)
		}
		if g, d := matchSet(gRes), matchSet(dRes); g != d {
			t.Errorf("query %s: matches differ:\n goroutine %s\n event     %s", q, g, d)
		}
		if gQM.Messages() != dQM.Messages() {
			t.Errorf("query %s: message counts differ: %d vs %d", q, gQM.Messages(), dQM.Messages())
		}
		if gQM.TotalTransmissions() != dQM.TotalTransmissions() {
			t.Errorf("query %s: transmissions differ: %d vs %d",
				q, gQM.TotalTransmissions(), dQM.TotalTransmissions())
		}
		if g, d := len(gQM.ProcessingNodes), len(dQM.ProcessingNodes); g != d {
			t.Errorf("query %s: processing-node counts differ: %d vs %d", q, g, d)
		}
	}
}

// matchSet collapses a result to its sorted payload tags.
func matchSet(res squid.Result) string {
	tags := make([]string, len(res.Matches))
	for i, m := range res.Matches {
		tags[i] = m.Data
	}
	sort.Strings(tags)
	return fmt.Sprint(tags)
}
