package dessim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// Config describes a simulated network on the event core. It mirrors
// sim.Config so experiments port between backends by swapping the
// constructor; the transport knobs live in Net (latency and faults are
// native to the event transport rather than a wrapping layer).
type Config struct {
	// Nodes is the initial network size.
	Nodes int
	// Space is the keyword space shared by all peers.
	Space *keyspace.Space
	// Seed drives all randomness (node identifiers, churn targets). The
	// transport's fault/latency lottery is seeded separately via Net.Seed.
	Seed int64
	// SuccListLen is each node's successor-list length (default 4).
	SuccListLen int
	// Engine configures every peer's Squid engine. Sink, Telemetry, Traces,
	// Clock, and Workers are managed by the simulator: engines always run
	// serially (Workers = -1), because a worker pool's goroutines would
	// reintroduce scheduling nondeterminism the event core exists to remove.
	Engine squid.Options
	// Chord tunes every peer's RPC behavior. Space, SuccListLen, Telemetry,
	// and Clock are managed by the simulator and ignored here.
	Chord chord.Config
	// Net tunes the simulated links: latency distribution, drop rate, and
	// the fault lottery's seed. The zero value is instant reliable delivery.
	Net NetConfig
	// Trace enables distributed query tracing into Network.Traces.
	Trace bool
	// CheckInvariants asserts the global ring invariants (chord.CheckRing)
	// after every StabilizeAll round, as in the goroutine backend.
	CheckInvariants bool
}

// ErrIncomplete reports that a query's completion callback had not fired
// when the event queue drained — the query lost its result path (e.g. its
// initiator was killed) and no timer remained to recover it.
var ErrIncomplete = errors.New("dessim: query did not complete before the event queue drained")

// Network is a simulated Squid deployment on the discrete-event core: the
// sim.Network surface with zero goroutines per peer and virtual time. All
// methods must be called from the single simulation goroutine; drivers that
// in the goroutine backend block on channels instead schedule events and
// run the loop to quiescence.
type Network struct {
	cfg Config
	// Core is the event loop; its Steps counter is the experiment's work
	// metric and its clock the virtual timeline.
	Core *Core
	// Net is the event-core transport with its native fault injection.
	Net     *Net
	Space   *keyspace.Space
	Metrics *sim.Metrics
	// Telemetry aggregates every peer's instruments on the virtual clock:
	// timestamps are deterministic simulated times, not wall-clock reads.
	Telemetry *telemetry.Registry
	// Traces holds reassembled query traces; nil unless Config.Trace.
	Traces *telemetry.TraceStore
	// Peers is sorted by ring identifier.
	Peers []*sim.Peer

	rng     *rand.Rand
	nextIdx int

	ringViolations *telemetry.CounterVec
	hardViolations uint64
}

// Build constructs a network of cfg.Nodes peers with uniformly random
// identifiers, installs a consistent ring directly (oracle bootstrap — no
// join messages), and wires metrics. Identifier assignment is
// sim.UniqueIDs, so the same seed yields the same ring as the goroutine
// backend.
func Build(cfg Config) (*Network, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("dessim: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Space == nil {
		return nil, fmt.Errorf("dessim: nil keyword space")
	}
	nw := newNetwork(cfg)
	space := chord.Space{Bits: cfg.Space.IndexBits()}
	for _, id := range sim.UniqueIDs(nw.rng, cfg.Nodes, space) {
		p, err := nw.newPeer(chord.ID(id))
		if err != nil {
			return nil, err
		}
		nw.Peers = append(nw.Peers, p)
	}
	nw.sortPeers()
	nw.installRing()
	return nw, nil
}

// BuildWithIDs is Build with explicit node identifiers (tests).
func BuildWithIDs(cfg Config, ids []uint64) (*Network, error) {
	if cfg.Space == nil {
		return nil, fmt.Errorf("dessim: nil keyword space")
	}
	nw := newNetwork(cfg)
	for _, id := range ids {
		p, err := nw.newPeer(chord.ID(id))
		if err != nil {
			return nil, err
		}
		nw.Peers = append(nw.Peers, p)
	}
	nw.sortPeers()
	nw.installRing()
	return nw, nil
}

func newNetwork(cfg Config) *Network {
	core := NewCore()
	nw := &Network{
		cfg:       cfg,
		Core:      core,
		Net:       NewNet(core, cfg.Net),
		Space:     cfg.Space,
		Metrics:   sim.NewMetrics(),
		Telemetry: telemetry.NewRegistry(core.WallClock()),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	nw.Net.SetObserver(nw.Metrics.Observe)
	if cfg.Trace {
		nw.Traces = telemetry.NewTraceStore(0)
	}
	nw.ringViolations = nw.Telemetry.CounterVec("squid_ring_violations_total",
		"ring invariant violations observed by the global checker", "kind")
	return nw
}

func (nw *Network) newPeer(id chord.ID) (*sim.Peer, error) {
	opts := nw.cfg.Engine
	opts.Sink = nw.Metrics
	opts.Telemetry = nw.Telemetry
	opts.Traces = nw.Traces
	opts.Clock = nw.Core.Clock()
	// Serial engines: refinement runs inline on the delivery event. A
	// worker pool would hand jobs to free-running goroutines and break the
	// single-threaded determinism contract.
	opts.Workers = -1
	if opts.MaxInflight == 0 {
		// As in the goroutine backend: deterministic experiments assert
		// exact results, which admission-control shedding would perturb.
		opts.MaxInflight = 1 << 30
	}
	eng := squid.New(nw.Space, squid.FromOptions(opts))
	ccfg := nw.cfg.Chord
	ccfg.Space = chord.Space{Bits: nw.Space.IndexBits()}
	ccfg.SuccListLen = nw.cfg.SuccListLen
	ccfg.Telemetry = nw.Telemetry
	ccfg.Clock = nw.Core.Clock()
	node := chord.NewNode(ccfg, id, eng)
	eng.Attach(node)
	addr := transport.Addr(fmt.Sprintf("p%d", nw.nextIdx))
	nw.nextIdx++
	ep, err := nw.Net.Listen(addr, node)
	if err != nil {
		return nil, err
	}
	node.Start(ep)
	nw.Metrics.RegisterAddr(addr, id)
	return &sim.Peer{Node: node, Engine: eng}, nil
}

// invoke schedules fn on p's delivery context (a self-send event) and
// panics if the peer is dead — the event-core analogue of sim.MustInvoke:
// a driver addressing a dead peer fails loudly instead of silently never
// running its continuation.
func (nw *Network) invoke(p *sim.Peer, fn func()) {
	if err := p.Node.Invoke(fn); err != nil {
		panic(fmt.Sprintf("dessim: Invoke on dead peer %s: %v", p.Addr(), err))
	}
}

func (nw *Network) sortPeers() {
	// The ring is kept as a linearly sorted snapshot; successorPeer handles
	// the wrap point by taking index 0 past the last peer.
	//lint:allow-ringcmp canonical linear order of the snapshot table; wrap handled in successorPeer
	sort.Slice(nw.Peers, func(i, j int) bool { return nw.Peers[i].ID() < nw.Peers[j].ID() })
}

// installRing writes consistent pred/succ/finger state into every peer
// directly, then runs the install events.
func (nw *Network) installRing() {
	n := len(nw.Peers)
	succLen := nw.cfg.SuccListLen
	if succLen <= 0 {
		succLen = 4
	}
	space := chord.Space{Bits: nw.Space.IndexBits()}
	for i, p := range nw.Peers {
		pred := nw.Peers[(i+n-1)%n].Node.Self()
		var succs []chord.NodeRef
		for k := 1; k <= succLen && k < n+1; k++ {
			succs = append(succs, nw.Peers[(i+k)%n].Node.Self())
		}
		if len(succs) == 0 {
			succs = []chord.NodeRef{p.Node.Self()}
		}
		fingers := make([]chord.NodeRef, space.Bits)
		for b := 0; b < space.Bits; b++ {
			target := space.Add(p.ID(), uint64(1)<<uint(b))
			fingers[b] = nw.successorPeer(target).Node.Self()
		}
		p := p
		nw.invoke(p, func() { p.Node.InstallRing(pred, succs, fingers) })
	}
	nw.Run()
}

// successorPeer returns the live peer owning the given identifier.
func (nw *Network) successorPeer(id chord.ID) *sim.Peer {
	//lint:allow-ringcmp binary search over the sorted snapshot; the wrap-around successor is index 0, taken below
	i := sort.Search(len(nw.Peers), func(i int) bool { return nw.Peers[i].ID() >= id })
	if i == len(nw.Peers) {
		i = 0
	}
	return nw.Peers[i]
}

// SuccessorOf exposes the oracle owner of a curve index.
func (nw *Network) SuccessorOf(idx uint64) *sim.Peer { return nw.successorPeer(chord.ID(idx)) }

// PeerList returns the live peers in ring order — the backend-independent
// accessor surface shared with sim.Network, through which squid-sim's REPL
// drives either simulator behind one interface.
func (nw *Network) PeerList() []*sim.Peer { return nw.Peers }

// KeySpace returns the keyword space the network indexes.
func (nw *Network) KeySpace() *keyspace.Space { return nw.Space }

// Registry returns the network's telemetry registry.
func (nw *Network) Registry() *telemetry.Registry { return nw.Telemetry }

// TraceStore returns the query trace store, nil unless tracing was enabled.
func (nw *Network) TraceStore() *telemetry.TraceStore { return nw.Traces }

// Run drains the event heap — the event core's quiesce. Every driver below
// ends with one, so the network is idle between driver calls.
func (nw *Network) Run() { nw.Core.Run() }

// Schedule runs fn on the event loop after d of virtual time. Use it to
// overlap work before a single Run — e.g. a query storm launching hundreds
// of concurrent queries at staggered virtual instants.
func (nw *Network) Schedule(d time.Duration, fn func()) { nw.Core.After(d, fn) }

// Preload bulk-inserts elements at their owners directly (no routing
// messages), grouping by owner for efficiency — the paper simulator's
// pre-placed keys.
func (nw *Network) Preload(elems []squid.Element) error {
	groups := make(map[*sim.Peer][]squid.Element)
	for _, e := range elems {
		idx, err := nw.Space.Index(e.Values)
		if err != nil {
			return err
		}
		owner := nw.successorPeer(chord.ID(idx))
		groups[owner] = append(groups[owner], e)
	}
	for p, batch := range groups {
		p, batch := p, batch
		nw.invoke(p, func() { _ = p.Engine.StoreDirectBatch(batch) })
	}
	nw.Run()
	return nil
}

// Publish routes an element through the overlay from the given peer.
func (nw *Network) Publish(via int, elem squid.Element) error {
	p := nw.Peers[via]
	var err error
	nw.invoke(p, func() { err = p.Engine.Publish(elem) })
	nw.Run()
	return err
}

// Query runs a flexible query from the given peer to completion and
// returns it with the query's cost metrics. If the completion callback
// never fires — possible only under faults that strand the result path —
// the returned Result carries ErrIncomplete.
func (nw *Network) Query(via int, q keyspace.Query) (squid.Result, sim.QueryMetrics) {
	p := nw.Peers[via]
	var (
		qid  squid.QueryID
		res  squid.Result
		done bool
	)
	nw.invoke(p, func() {
		qid = p.Engine.Query(q, func(r squid.Result) { res, done = r, true })
	})
	nw.Run()
	if !done {
		res = squid.Result{QID: qid, Query: q, Err: ErrIncomplete}
	}
	return res, nw.Metrics.ForQuery(qid)
}

// QueryKeywords runs a position-free keyword query (combination tuples)
// from the given peer to completion, as Query does for flexible queries.
func (nw *Network) QueryKeywords(via int, words []string) squid.Result {
	p := nw.Peers[via]
	var (
		res  squid.Result
		done bool
	)
	nw.invoke(p, func() {
		p.Engine.QueryKeywords(words, func(r squid.Result) { res, done = r, true })
	})
	nw.Run()
	if !done {
		res = squid.Result{Err: ErrIncomplete}
	}
	return res
}

// StartQuery launches a query at a future virtual instant without waiting
// for it; cb (which may be nil) receives the result when it completes.
// Pair with Run to drive overlapping query storms.
func (nw *Network) StartQuery(at time.Duration, via int, q keyspace.Query, cb func(squid.Result)) {
	nw.Schedule(at, func() {
		p := nw.Peers[via]
		nw.invoke(p, func() {
			p.Engine.Query(q, func(r squid.Result) {
				if cb != nil {
					cb(r)
				}
			})
		})
	})
}

// BruteForceMatches scans every peer's store directly — the ground truth
// for the "all matches are found" guarantee.
func (nw *Network) BruteForceMatches(q keyspace.Query) []squid.Element {
	var out []squid.Element
	for _, p := range nw.Peers {
		p := p
		nw.invoke(p, func() {
			st := p.Engine.LocalStore()
			st.ScanSpan(fullSpan(nw.Space.IndexBits()), func(_ uint64, e squid.Element) {
				if nw.Space.Matches(q, e.Values) {
					out = append(out, e)
				}
			})
		})
	}
	nw.Run()
	return out
}

// fullSpan is the whole index space as a scan interval.
func fullSpan(bits int) sfc.Interval {
	if bits >= 64 {
		return sfc.Interval{Lo: 0, Hi: ^uint64(0)}
	}
	return sfc.Interval{Lo: 0, Hi: (uint64(1) << bits) - 1}
}

// LoadVector returns the number of stored keys per peer, in ring order —
// the paper's Fig. 19 load-distribution data.
func (nw *Network) LoadVector() []int {
	out := make([]int, len(nw.Peers))
	for i, p := range nw.Peers {
		i, p := i, p
		nw.invoke(p, func() { out[i] = p.Engine.LocalStore().Keys() })
	}
	nw.Run()
	return out
}

// AddPeer joins a new peer with the given identifier through the protocol
// (seeded at a random existing peer) and returns it.
func (nw *Network) AddPeer(id chord.ID) (*sim.Peer, error) {
	p, err := nw.newPeer(id)
	if err != nil {
		return nil, err
	}
	seed := nw.Peers[nw.rng.Intn(len(nw.Peers))]
	joinErr := error(nil)
	nw.invoke(p, func() { p.Node.Join(seed.Addr(), func(e error) { joinErr = e }) })
	nw.Run()
	if joinErr != nil {
		nw.Net.Kill(p.Addr())
		return nil, joinErr
	}
	nw.Peers = append(nw.Peers, p)
	nw.sortPeers()
	return p, nil
}

// RemovePeer makes the peer at index i (in current ring order) leave
// voluntarily.
func (nw *Network) RemovePeer(i int) {
	p := nw.Peers[i]
	nw.invoke(p, func() { p.Node.Leave() })
	nw.Run()
	nw.Net.Kill(p.Addr())
	nw.Peers = append(nw.Peers[:i], nw.Peers[i+1:]...)
}

// KillPeer fails the peer at index i abruptly (no handover).
func (nw *Network) KillPeer(i int) {
	p := nw.Peers[i]
	nw.Net.Kill(p.Addr())
	nw.Peers = append(nw.Peers[:i], nw.Peers[i+1:]...)
}

// StabilizeAll runs the given number of stabilization rounds on every peer
// (stabilize + finger fix + predecessor check), draining the event queue
// between rounds. With Config.CheckInvariants set, the global ring checker
// runs after every round.
func (nw *Network) StabilizeAll(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, p := range nw.Peers {
			p := p
			nw.invoke(p, func() {
				p.Node.CheckPredecessor()
				p.Node.Stabilize()
				p.Node.FixFingers()
			})
		}
		nw.Run()
		if nw.cfg.CheckInvariants {
			nw.CheckRing()
		}
	}
}

// SnapshotRing captures every reachable peer's neighbor state. Crashed
// (black-holed) peers are skipped: they are not ring members and their
// frozen state would read as stale garbage.
func (nw *Network) SnapshotRing() []chord.Snapshot {
	snaps := make([]chord.Snapshot, 0, len(nw.Peers))
	for _, p := range nw.Peers {
		p := p
		if nw.Net.Crashed(p.Addr()) {
			continue
		}
		i := len(snaps)
		snaps = append(snaps, chord.Snapshot{})
		nw.invoke(p, func() { snaps[i] = p.Node.Snapshot() })
	}
	nw.Run()
	return snaps
}

// CheckRing snapshots the network and verifies the global ring invariants,
// recording every violation to the squid_ring_violations_total telemetry
// family and accumulating hard ones in RingViolations.
func (nw *Network) CheckRing() []chord.Violation {
	space := chord.Space{Bits: nw.Space.IndexBits()}
	vs := chord.CheckRing(space, nw.SnapshotRing())
	for _, v := range vs {
		nw.ringViolations.With(string(v.Kind)).Inc()
	}
	nw.hardViolations += uint64(len(chord.HardViolations(vs)))
	return vs
}

// RingViolations returns the cumulative count of hard (non-transient)
// invariant violations observed by CheckRing since the network was built.
func (nw *Network) RingViolations() uint64 { return nw.hardViolations }

// PushReplicasAll makes every peer push replicas of its store to its
// successors (run after Preload when the engines have Replicas > 0).
func (nw *Network) PushReplicasAll() {
	for _, p := range nw.Peers {
		p := p
		nw.invoke(p, func() { p.Engine.PushReplicas() })
	}
	nw.Run()
}

// VerifyConsistent checks that every peer's predecessor and successor
// match the oracle ring order and that every stored key lies within its
// holder's arc. It returns the first inconsistency found, or nil.
func (nw *Network) VerifyConsistent() error {
	n := len(nw.Peers)
	type snap struct {
		pred, succ chord.NodeRef
		keys       []uint64
	}
	snaps := make([]snap, n)
	for i, p := range nw.Peers {
		i, p := i, p
		nw.invoke(p, func() {
			var keys []uint64
			p.Engine.LocalStore().ScanSpan(fullSpan(nw.Space.IndexBits()), func(k uint64, _ squid.Element) {
				if len(keys) == 0 || keys[len(keys)-1] != k {
					keys = append(keys, k)
				}
			})
			snaps[i] = snap{pred: p.Node.Pred(), succ: p.Node.Succ(), keys: keys}
		})
	}
	nw.Run()
	space := chord.Space{Bits: nw.Space.IndexBits()}
	for i, p := range nw.Peers {
		st := snaps[i]
		wantPred := nw.Peers[(i+n-1)%n].Node.Self()
		wantSucc := nw.Peers[(i+1)%n].Node.Self()
		if st.pred.Addr != wantPred.Addr {
			return fmt.Errorf("dessim: peer %s pred=%s want %s", p.Node.Self(), st.pred, wantPred)
		}
		if st.succ.Addr != wantSucc.Addr {
			return fmt.Errorf("dessim: peer %s succ=%s want %s", p.Node.Self(), st.succ, wantSucc)
		}
		for _, k := range st.keys {
			if !space.Between(chord.ID(k), wantPred.ID, p.ID()) {
				return fmt.Errorf("dessim: peer %s holds key %x outside its arc (%x, %x]",
					p.Node.Self(), k, uint64(wantPred.ID), uint64(p.ID()))
			}
		}
	}
	return nil
}

// TotalKeys sums stored keys across peers.
func (nw *Network) TotalKeys() int {
	total := 0
	for _, n := range nw.LoadVector() {
		total += n
	}
	return total
}

// ChordCounters sums every live peer's RPC retry/backoff counters.
func (nw *Network) ChordCounters() chord.Counters {
	var out chord.Counters
	for _, p := range nw.Peers {
		out.Add(p.Node.Counters())
	}
	return out
}

// RecoveryCounters sums every live peer's query-recovery counters.
func (nw *Network) RecoveryCounters() squid.RecoveryCounters {
	var out squid.RecoveryCounters
	for _, p := range nw.Peers {
		out.Add(p.Engine.Recovery())
	}
	return out
}

// TraceForQuery returns a query's reassembled refinement-tree trace.
// Requires Config.Trace.
func (nw *Network) TraceForQuery(qid squid.QueryID) (telemetry.Trace, bool) {
	if nw.Traces == nil {
		return telemetry.Trace{}, false
	}
	return nw.Traces.Get(qid)
}
