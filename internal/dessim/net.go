package dessim

import (
	"fmt"
	"hash/fnv"
	"time"

	"squid/internal/transport"
)

// NetConfig tunes the simulated links. The zero value delivers every
// message instantly and reliably — the event-core equivalent of the bare
// in-process transport.
type NetConfig struct {
	// Seed drives every fault and latency decision. As in the goroutine
	// backend's fault layer, each directed link owns a random sequence
	// derived from Seed, consumed one (drop, latency) pair per message, so
	// the schedule is stable per link regardless of cross-link ordering.
	Seed int64
	// MinLatency/MaxLatency bound a uniform per-message delivery latency on
	// the virtual timeline. MaxLatency <= 0 delivers at the sending instant
	// (ordered after already-scheduled same-instant events).
	MinLatency, MaxLatency time.Duration
	// DropRate is the default probability in [0, 1) that a message is
	// silently lost (the sender sees success). Per-link overrides win.
	DropRate float64
}

// Net is the discrete-event transport: endpoints attached by symbolic name
// whose sends become delivery events on the core's heap. It carries the
// fault-injection surface of transport.Faulty — seeded drops, latency,
// partitions, crash/restart — natively on virtual time, so the chaos soaks
// run unchanged at planet scale.
//
// Self-sends are exempt from all faults and latency, for the same reason as
// in the goroutine stack: both node layers use them to inject work into
// their own delivery context, and faulting them would wedge the node rather
// than the network.
//
// Net is confined to the simulation goroutine, like everything in this
// package; handlers run inside delivery events on that goroutine.
type Net struct {
	core *Core
	seed int64

	boxes    map[transport.Addr]transport.Handler
	observer transport.Observer

	dropRate float64
	minLat   time.Duration
	maxLat   time.Duration
	linkRate map[linkKey]float64
	links    map[linkKey]*linkState
	group    map[transport.Addr]int
	split    bool
	crashed  map[transport.Addr]bool

	stats transport.FaultStats
}

type linkKey struct{ from, to transport.Addr }

// linkState is everything one directed link owns: its private random
// sequence and its FIFO arrival floor. The generator is splitmix64 rather
// than math/rand's lagged-Fibonacci source because a planet-scale ring
// touches 10⁵+ directed links and each math/rand source carries ~5 KB of
// state — hundreds of megabytes the collector would rescan forever — while
// splitmix64 is 8 bytes and a few arithmetic ops per draw, with the same
// determinism guarantee: a link's schedule depends only on the seed and its
// own message order.
type linkState struct {
	rng   uint64
	floor VTime
}

// next advances the splitmix64 sequence (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
func (s *linkState) next() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1) from the link's sequence.
func (s *linkState) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// NewNet attaches a discrete-event transport to the core.
func NewNet(core *Core, cfg NetConfig) *Net {
	return &Net{
		core:     core,
		seed:     cfg.Seed,
		boxes:    make(map[transport.Addr]transport.Handler),
		dropRate: cfg.DropRate,
		minLat:   cfg.MinLatency,
		maxLat:   cfg.MaxLatency,
		linkRate: make(map[linkKey]float64),
		links:    make(map[linkKey]*linkState),
		group:    make(map[transport.Addr]int),
		crashed:  make(map[transport.Addr]bool),
	}
}

// SetObserver installs the message observer, called for every message
// accepted for delivery (after the fault lottery). Pass nil to remove.
func (n *Net) SetObserver(o transport.Observer) { n.observer = o }

// Listen attaches a handler under the given name and returns its endpoint.
// The name must be unused.
func (n *Net) Listen(name transport.Addr, h transport.Handler) (transport.Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("dessim: nil handler for %q", name)
	}
	if _, dup := n.boxes[name]; dup {
		return nil, fmt.Errorf("dessim: address %q already in use", name)
	}
	n.boxes[name] = h
	return &endpoint{net: n, addr: name}, nil
}

// Kill permanently detaches the named endpoint: scheduled deliveries to it
// evaporate and future sends fail with ErrUnreachable.
func (n *Net) Kill(name transport.Addr) {
	delete(n.boxes, name)
	delete(n.crashed, name)
}

// SetDropRate changes the default drop probability. 0 heals drop faults.
func (n *Net) SetDropRate(p float64) { n.dropRate = p }

// SetLinkDrop overrides the drop probability of one directed link.
func (n *Net) SetLinkDrop(from, to transport.Addr, p float64) {
	n.linkRate[linkKey{from, to}] = p
}

// ClearLinkDrops removes all per-link drop overrides.
func (n *Net) ClearLinkDrops() { n.linkRate = make(map[linkKey]float64) }

// SetDelay changes the injected latency range. max <= 0 disables latency.
func (n *Net) SetDelay(min, max time.Duration) { n.minLat, n.maxLat = min, max }

// Partition splits the network: each listed group talks only within
// itself, unlisted addresses form one implicit group of their own, and
// messages crossing group boundaries are silently lost.
func (n *Net) Partition(groups ...[]transport.Addr) {
	n.group = make(map[transport.Addr]int)
	for i, g := range groups {
		for _, a := range g {
			n.group[a] = i + 1
		}
	}
	n.split = true
}

// Heal removes any partition.
func (n *Net) Heal() {
	n.group = make(map[transport.Addr]int)
	n.split = false
}

// Crash black-holes an endpoint without detaching it: messages to and from
// it are lost at the sending instant, modelling a frozen process. State
// survives; Restart reconnects it.
func (n *Net) Crash(name transport.Addr) { n.crashed[name] = true }

// Crashed reports whether the named endpoint is currently black-holed.
func (n *Net) Crashed(name transport.Addr) bool { return n.crashed[name] }

// Restart reconnects a crashed endpoint.
func (n *Net) Restart(name transport.Addr) { delete(n.crashed, name) }

// Stats snapshots the fault counters, in the same shape as the goroutine
// stack's fault layer.
func (n *Net) Stats() transport.FaultStats { return n.stats }

// link returns the state of one directed link, seeding its random sequence
// on first use from the net seed and the link's name — as in
// transport.Faulty, a link's fault schedule depends only on the seed and
// its own message order, never on cross-link interleaving.
func (n *Net) link(k linkKey) *linkState {
	if s, ok := n.links[k]; ok {
		return s
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(k.from)) // hash.Hash.Write never fails
	_, _ = h.Write([]byte{0})      // hash.Hash.Write never fails
	_, _ = h.Write([]byte(k.to))   // hash.Hash.Write never fails
	s := &linkState{rng: uint64(n.seed) ^ h.Sum64()}
	n.links[k] = s
	return s
}

// send runs one message through the fault plan and schedules a delivery
// event for the survivors.
func (n *Net) send(from, to transport.Addr, msg any) error {
	if _, ok := n.boxes[to]; !ok {
		return transport.ErrUnreachable
	}
	if from == to {
		// Self-delivery: exempt from faults and latency; the sequence
		// tie-break keeps it FIFO after earlier same-instant work.
		n.accept(from, to, msg)
		n.deliverAt(n.core.now, from, to, msg)
		return nil
	}
	if n.crashed[from] || n.crashed[to] {
		n.stats.CrashDrops++
		return nil
	}
	if n.split && n.group[from] != n.group[to] {
		n.stats.PartitionDrops++
		return nil
	}
	k := linkKey{from, to}
	rate := n.dropRate
	if len(n.linkRate) > 0 {
		if r, ok := n.linkRate[k]; ok {
			rate = r
		}
	}
	st := n.link(k)
	// Always consume both draws so the link's schedule does not shift when
	// latency settings change mid-run.
	dropDraw := st.float64()
	latDraw := st.float64()
	if rate > 0 && dropDraw < rate {
		n.stats.Dropped++
		return nil
	}
	at := n.core.now
	if n.maxLat > 0 {
		at += VTime(n.minLat + time.Duration(latDraw*float64(n.maxLat-n.minLat)))
		n.stats.Delayed++
	}
	// FIFO per directed link: a message never overtakes an earlier one on
	// the same link, as on an ordered connection. Cross-link reordering is
	// the latency model working as intended.
	if at < st.floor {
		at = st.floor
	}
	st.floor = at
	n.stats.Delivered++
	n.accept(from, to, msg)
	n.deliverAt(at, from, to, msg)
	return nil
}

// accept notifies the observer of a message that survived the fault plan.
func (n *Net) accept(from, to transport.Addr, msg any) {
	if n.observer != nil {
		n.observer(from, to, msg)
	}
}

// deliverAt schedules the delivery event. Liveness is re-checked at the
// delivery instant: a destination killed while the message was in flight
// swallows it, exactly like the goroutine stack.
func (n *Net) deliverAt(at VTime, from, to transport.Addr, msg any) {
	n.core.schedule(at, func() {
		if h, ok := n.boxes[to]; ok {
			h.Deliver(from, msg)
		}
	})
}

// endpoint is one peer's attachment to the event-core network.
type endpoint struct {
	net    *Net
	addr   transport.Addr
	closed bool
}

func (e *endpoint) Addr() transport.Addr { return e.addr }

func (e *endpoint) Send(to transport.Addr, msg any) error {
	if e.closed {
		return transport.ErrClosed
	}
	return e.net.send(e.addr, to, msg)
}

func (e *endpoint) Close() error {
	e.closed = true
	e.net.Kill(e.addr)
	return nil
}

var _ transport.Endpoint = (*endpoint)(nil)
