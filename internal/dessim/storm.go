package dessim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/workload"
)

// StormConfig drives a churn + query storm: queries, joins, kills, and
// stabilization rounds interleaved across a window of virtual time, all
// scheduled up front and executed by one Run. This is the planet-scale
// workload of the paper's experiments — thousands of concurrent queries
// against a ring that is losing and gaining members while they run.
type StormConfig struct {
	// Seed drives every storm decision: query mix, initiating peers, churn
	// victims, join identifiers.
	Seed int64
	// Queries is the number of queries launched, spread evenly over Span.
	Queries int
	// Vocab and Dims configure the Zipf query generator; the mix cycles
	// Q1/Q2/Q3 like the paper's workload.
	Vocab *workload.Vocabulary
	Dims  int
	// Joins and Kills are protocol-level churn events spread over Span.
	Joins, Kills int
	// StabilizeRounds full stabilization sweeps are interleaved over Span
	// so the ring heals around the churn while queries are in flight.
	StabilizeRounds int
	// TopK > 0 runs every other query as a streaming Limit(TopK) query
	// (QueryStreamFunc) instead of a full drain — the browsing-style storm
	// mix. Batch and delivery counts fold into the fingerprint, so a
	// nondeterministic streaming path breaks replay equality.
	TopK int
	// Span is the virtual-time window everything is scheduled across
	// (default 10 minutes of virtual time).
	Span time.Duration
}

// StormResult summarizes a storm deterministically: identical seeds must
// reproduce it field for field, and Fingerprint folds the full per-query
// outcome sequence, so two runs agree byte-for-byte iff the simulation
// replayed exactly.
type StormResult struct {
	Complete    int    // queries that finished with nil error
	Partial     int    // queries that finished with an error
	Incomplete  int    // query callbacks that never fired (initiator died)
	Matches     int    // total matches across completed queries
	Streamed    int    // queries run as Limit(TopK) streams
	JoinErrs    int    // protocol joins that failed (e.g. id collision)
	Steps       uint64 // events executed during the storm
	Fingerprint uint64
}

func (r StormResult) String() string {
	return fmt.Sprintf("complete=%d partial=%d incomplete=%d matches=%d streamed=%d joinErrs=%d steps=%d fp=%016x",
		r.Complete, r.Partial, r.Incomplete, r.Matches, r.Streamed, r.JoinErrs, r.Steps, r.Fingerprint)
}

// RunStorm schedules the whole storm and runs the event loop to
// quiescence. Every decision that depends on network state (which peer
// initiates, who dies) is made at its event's virtual instant from the
// storm's seeded rng, so the run is a pure function of (network state,
// config).
func (nw *Network) RunStorm(cfg StormConfig) StormResult {
	if cfg.Span <= 0 {
		cfg.Span = 10 * time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := workload.NewQueryGen(cfg.Vocab, cfg.Seed+1, cfg.Dims)
	queries := make([]keyspace.Query, cfg.Queries)
	for i := range queries {
		// Paper-style mix: mostly selective lookups (Q2) and partial
		// keywords (Q1/Q3 keyword), with an occasional broad range sweep.
		// Q3 range queries refine into orders of magnitude more clusters
		// than the rest, so an even split would make the storm's cost be
		// "how many range sweeps" rather than a blended workload.
		switch i % 8 {
		case 0, 4:
			queries[i] = gen.Q1()
		case 1, 3, 5:
			queries[i] = gen.Q2()
		case 2, 6:
			queries[i] = gen.Q3Keyword()
		case 7:
			queries[i] = gen.Q3Ranges()
		}
	}

	var res StormResult
	h := fnv.New64a()
	fold := func(vals ...int) {
		var buf [8]byte
		for _, v := range vals {
			for i := range buf {
				buf[i] = byte(uint64(v) >> (8 * i))
			}
			_, _ = h.Write(buf[:]) // hash.Hash.Write never fails
		}
	}

	startBase := nw.Core.Steps()
	space := chord.Space{Bits: nw.Space.IndexBits()}

	for i, q := range queries {
		i, q := i, q
		at := cfg.Span * time.Duration(i) / time.Duration(max(cfg.Queries, 1))
		nw.Schedule(at, func() {
			if len(nw.Peers) == 0 {
				return
			}
			p := nw.Peers[rng.Intn(len(nw.Peers))]
			if cfg.TopK > 0 && i%2 == 1 {
				nw.invoke(p, func() {
					res.Streamed++
					batches, delivered := 0, 0
					_, err := p.Engine.QueryStreamFunc(context.Background(), q, func(ev squid.StreamEvent) {
						if !ev.Done {
							batches++
							delivered += len(ev.Matches)
							return
						}
						if ev.Err != nil {
							res.Partial++
							fold(i, -1, batches)
							return
						}
						res.Complete++
						res.Matches += delivered
						fold(i, delivered, batches)
					}, squid.Limit(cfg.TopK))
					if err != nil {
						res.Partial++
						fold(i, -1, -1)
					}
				})
				return
			}
			nw.invoke(p, func() {
				p.Engine.Query(q, func(r squid.Result) {
					if r.Err != nil {
						res.Partial++
						fold(i, -1)
						return
					}
					res.Complete++
					res.Matches += len(r.Matches)
					fold(i, len(r.Matches))
				})
			})
		})
	}

	for k := 0; k < cfg.Kills; k++ {
		at := cfg.Span * time.Duration(k+1) / time.Duration(cfg.Kills+1)
		nw.Schedule(at, func() {
			if len(nw.Peers) < 2 {
				return
			}
			i := rng.Intn(len(nw.Peers))
			nw.Net.Kill(nw.Peers[i].Addr())
			nw.Peers = append(nw.Peers[:i], nw.Peers[i+1:]...)
		})
	}

	for j := 0; j < cfg.Joins; j++ {
		at := cfg.Span*time.Duration(j+1)/time.Duration(cfg.Joins+1) + time.Millisecond
		nw.Schedule(at, func() {
			id := chord.ID(rng.Uint64() & space.Mask())
			p, err := nw.newPeer(id)
			if err != nil {
				res.JoinErrs++
				return
			}
			seed := nw.Peers[rng.Intn(len(nw.Peers))]
			nw.invoke(p, func() {
				p.Node.Join(seed.Addr(), func(e error) {
					if e != nil {
						res.JoinErrs++
						nw.Net.Kill(p.Addr())
						return
					}
					nw.Peers = append(nw.Peers, p)
					nw.sortPeers()
				})
			})
		})
	}

	for r := 0; r < cfg.StabilizeRounds; r++ {
		at := cfg.Span*time.Duration(r+1)/time.Duration(cfg.StabilizeRounds+1) + 2*time.Millisecond
		nw.Schedule(at, func() {
			for _, p := range nw.Peers {
				p := p
				nw.invoke(p, func() {
					p.Node.CheckPredecessor()
					p.Node.Stabilize()
					p.Node.FixFingers()
				})
			}
		})
	}

	nw.Run()
	res.Incomplete = cfg.Queries - res.Complete - res.Partial
	res.Steps = nw.Core.Steps() - startBase
	fold(res.Complete, res.Partial, res.Incomplete, res.Matches, res.Streamed, res.JoinErrs, int(res.Steps), len(nw.Peers))
	res.Fingerprint = h.Sum64()
	return res
}
