package chord

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"squid/internal/transport"
)

func TestSpaceArithmetic(t *testing.T) {
	s := MustSpace(4) // ring of 16
	if s.Mask() != 15 {
		t.Errorf("Mask = %d", s.Mask())
	}
	if s.Fold(17) != 1 {
		t.Errorf("Fold(17) = %d", s.Fold(17))
	}
	if s.Add(14, 3) != 1 {
		t.Errorf("Add(14,3) = %d", s.Add(14, 3))
	}
	if s.Dist(14, 2) != 4 {
		t.Errorf("Dist(14,2) = %d", s.Dist(14, 2))
	}
	if s.Dist(2, 14) != 12 {
		t.Errorf("Dist(2,14) = %d", s.Dist(2, 14))
	}

	// Between: (a, b] clockwise.
	cases := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 3, 8, true},
		{3, 3, 8, false},
		{8, 3, 8, true},
		{9, 3, 8, false},
		{1, 14, 2, true},  // wraps
		{15, 14, 2, true}, // wraps
		{14, 14, 2, false},
		{2, 14, 2, true},
		{7, 14, 2, false},
		{9, 9, 9, true}, // full ring
		{0, 9, 9, true},
	}
	for _, c := range cases {
		if got := s.Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%d, %d, %d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}

	// BetweenOpen: (a, b) strict.
	openCases := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 3, 8, true},
		{8, 3, 8, false},
		{3, 3, 8, false},
		{15, 14, 2, true},
		{2, 14, 2, false},
		{9, 9, 9, false},
		{0, 9, 9, true},
	}
	for _, c := range openCases {
		if got := s.BetweenOpen(c.x, c.a, c.b); got != c.want {
			t.Errorf("BetweenOpen(%d, %d, %d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}

	if _, err := NewSpace(0); err == nil {
		t.Error("NewSpace(0) should fail")
	}
	if _, err := NewSpace(65); err == nil {
		t.Error("NewSpace(65) should fail")
	}
	s64 := MustSpace(64)
	if s64.Mask() != ^uint64(0) {
		t.Error("64-bit mask wrong")
	}
	if s64.Dist(ID(^uint64(0)), 0) != 1 {
		t.Errorf("64-bit wrap distance wrong")
	}
}

// kvApp is a tiny storage application: it records routed strings under
// their keys and supports handover, so tests can verify data ownership
// migrates correctly.
type kvApp struct {
	space Space
	mu    sync.Mutex
	store map[ID][]string
}

func newKVApp(space Space) *kvApp {
	return &kvApp{space: space, store: make(map[ID][]string)}
}

func (a *kvApp) Deliver(from transport.Addr, key ID, payload any) {
	s, ok := payload.(string)
	if !ok {
		return
	}
	a.mu.Lock()
	a.store[key] = append(a.store[key], s)
	a.mu.Unlock()
}

func (a *kvApp) HandoverOut(x, y ID) []Item {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Item
	for k, vals := range a.store {
		if x == y || a.space.Between(k, x, y) {
			for _, v := range vals {
				out = append(out, Item{Key: k, Value: v})
			}
			delete(a.store, k)
		}
	}
	return out
}

func (a *kvApp) HandoverIn(items []Item) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, it := range items {
		if s, ok := it.Value.(string); ok {
			a.store[it.Key] = append(a.store[it.Key], s)
		}
	}
}

func (a *kvApp) Load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.store)
}

func (a *kvApp) keys() []ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ID, 0, len(a.store))
	for k := range a.store {
		out = append(out, k)
	}
	return out
}

// testRing bundles an in-process network of protocol-joined nodes.
type testRing struct {
	t     *testing.T
	net   *transport.Inproc
	space Space
	nodes []*Node
	apps  map[transport.Addr]*kvApp
}

func newTestRing(t *testing.T, bits int, ids []uint64) *testRing {
	t.Helper()
	r := &testRing{
		t:     t,
		net:   transport.NewInproc(),
		space: MustSpace(bits),
		apps:  map[transport.Addr]*kvApp{},
	}
	for i, id := range ids {
		app := newKVApp(r.space)
		n := NewNode(Config{Space: r.space}, ID(id), app)
		ep, err := r.net.Listen(transport.Addr(fmt.Sprintf("n%d", i)), n)
		if err != nil {
			t.Fatal(err)
		}
		n.Start(ep)
		r.apps[n.Self().Addr] = app
		if i == 0 {
			if err := n.Invoke(n.Create); err != nil {
				t.Fatal(err)
			}
			r.net.Quiesce()
		} else {
			r.join(n, r.nodes[0].Self().Addr)
		}
		r.nodes = append(r.nodes, n)
	}
	return r
}

func (r *testRing) join(n *Node, seed transport.Addr) {
	r.t.Helper()
	done := make(chan error, 1)
	if err := n.Invoke(func() { n.Join(seed, func(err error) { done <- err }) }); err != nil {
		r.t.Fatal(err)
	}
	if err := <-done; err != nil {
		r.t.Fatalf("join %s: %v", n.Self(), err)
	}
	r.net.Quiesce()
}

type nodeState struct {
	self, pred, succ NodeRef
	succs            []NodeRef
	running          bool
}

func (r *testRing) state(n *Node) nodeState {
	r.t.Helper()
	ch := make(chan nodeState, 1)
	if err := n.Invoke(func() {
		ch <- nodeState{self: n.Self(), pred: n.Pred(), succ: n.Succ(), succs: n.SuccList(), running: n.Running()}
	}); err != nil {
		r.t.Fatal(err)
	}
	return <-ch
}

// verifyRing checks that the live nodes form one consistent cycle in ID
// order with correct predecessors.
func (r *testRing) verifyRing(live []*Node) {
	r.t.Helper()
	sorted := append([]*Node(nil), live...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Self().ID < sorted[j].Self().ID })
	for i, n := range sorted {
		next := sorted[(i+1)%len(sorted)]
		prev := sorted[(i+len(sorted)-1)%len(sorted)]
		st := r.state(n)
		if st.succ.Addr != next.Self().Addr {
			r.t.Errorf("node %s: succ = %s, want %s", n.Self(), st.succ, next.Self())
		}
		if st.pred.Addr != prev.Self().Addr {
			r.t.Errorf("node %s: pred = %s, want %s", n.Self(), st.pred, prev.Self())
		}
	}
}

// ownerOf computes the expected successor of key among the given nodes.
func (r *testRing) ownerOf(key ID, live []*Node) *Node {
	best := live[0]
	bestDist := r.space.Dist(key, live[0].Self().ID)
	for _, n := range live[1:] {
		if d := r.space.Dist(key, n.Self().ID); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

func TestJoinBuildsCorrectRing(t *testing.T) {
	ids := []uint64{100, 500, 900, 300, 700, 50, 650, 999, 205}
	r := newTestRing(t, 10, ids)
	r.verifyRing(r.nodes)
}

func TestRoutingReachesOwner(t *testing.T) {
	ids := []uint64{100, 500, 900, 300, 700, 50, 650}
	r := newTestRing(t, 10, ids)
	rng := rand.New(rand.NewSource(5))
	type placed struct {
		key  ID
		want *Node
	}
	var all []placed
	for i := 0; i < 200; i++ {
		key := ID(rng.Uint64() & r.space.Mask())
		src := r.nodes[rng.Intn(len(r.nodes))]
		if err := src.Invoke(func() { src.Route(key, fmt.Sprintf("v%d", i), 0) }); err != nil {
			t.Fatal(err)
		}
		all = append(all, placed{key, r.ownerOf(key, r.nodes)})
	}
	r.net.Quiesce()
	for _, p := range all {
		app := r.apps[p.want.Self().Addr]
		app.mu.Lock()
		_, ok := app.store[p.key]
		app.mu.Unlock()
		if !ok {
			t.Errorf("key %d not stored at expected owner %s", p.key, p.want.Self())
		}
	}
}

func TestFindSuccessorAgreesWithOracle(t *testing.T) {
	ids := []uint64{100, 500, 900, 300, 700}
	r := newTestRing(t, 10, ids)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		key := ID(rng.Uint64() & r.space.Mask())
		src := r.nodes[rng.Intn(len(r.nodes))]
		ch := make(chan FoundMsg, 1)
		src.Invoke(func() {
			src.FindSuccessor(key, 0, func(m FoundMsg, err error) {
				if err != nil {
					t.Errorf("find: %v", err)
				}
				ch <- m
			})
		})
		got := <-ch
		want := r.ownerOf(key, r.nodes)
		if got.Owner.Addr != want.Self().Addr {
			t.Errorf("successor(%d) = %s, want %s", key, got.Owner, want.Self())
		}
	}
}

func TestJoinTransfersData(t *testing.T) {
	r := newTestRing(t, 10, []uint64{100, 900})
	// Store keys throughout the space.
	n0 := r.nodes[0]
	for k := uint64(0); k < 1024; k += 32 {
		key := ID(k)
		n0.Invoke(func() { n0.Route(key, "x", 0) })
	}
	r.net.Quiesce()

	// A node joining at 500 must take over (100, 500].
	app := newKVApp(r.space)
	n := NewNode(Config{Space: r.space}, 500, app)
	ep, err := r.net.Listen("n500", n)
	if err != nil {
		t.Fatal(err)
	}
	n.Start(ep)
	r.apps[n.Self().Addr] = app
	r.join(n, n0.Self().Addr)
	r.nodes = append(r.nodes, n)
	r.verifyRing(r.nodes)

	for _, k := range app.keys() {
		if !(uint64(k) > 100 && uint64(k) <= 500) {
			t.Errorf("node 500 holds key %d outside its arc (100,500]", k)
		}
	}
	if len(app.keys()) == 0 {
		t.Error("node 500 received no keys")
	}
	// Every key must still be owned by exactly the oracle owner.
	for k := uint64(0); k < 1024; k += 32 {
		want := r.ownerOf(ID(k), r.nodes)
		got := 0
		for addr, a := range r.apps {
			a.mu.Lock()
			_, ok := a.store[ID(k)]
			a.mu.Unlock()
			if ok {
				got++
				if addr != want.Self().Addr {
					t.Errorf("key %d stored at %s, want %s", k, addr, want.Self())
				}
			}
		}
		if got != 1 {
			t.Errorf("key %d stored %d times", k, got)
		}
	}
}

func TestLeaveTransfersDataAndSplicesRing(t *testing.T) {
	ids := []uint64{100, 300, 500, 700, 900}
	r := newTestRing(t, 10, ids)
	n0 := r.nodes[0]
	for k := uint64(0); k < 1024; k += 16 {
		key := ID(k)
		n0.Invoke(func() { n0.Route(key, "x", 0) })
	}
	r.net.Quiesce()

	leaver := r.nodes[2] // id 500
	before := len(r.apps[leaver.Self().Addr].keys())
	if before == 0 {
		t.Fatal("leaver should hold keys")
	}
	leaver.Invoke(leaver.Leave)
	r.net.Quiesce()

	live := []*Node{r.nodes[0], r.nodes[1], r.nodes[3], r.nodes[4]}
	r.verifyRing(live)
	if got := len(r.apps[leaver.Self().Addr].keys()); got != 0 {
		t.Errorf("leaver still holds %d keys", got)
	}
	// Its keys moved to the successor (id 700).
	succApp := r.apps[r.nodes[3].Self().Addr]
	for k := uint64(301); k <= 500; k += 16 {
		key := ID(((k + 15) / 16) * 16)
		if uint64(key) > 500 {
			break
		}
		succApp.mu.Lock()
		_, ok := succApp.store[key]
		succApp.mu.Unlock()
		if uint64(key) > 300 && !ok {
			t.Errorf("key %d not at successor after leave", key)
		}
	}
}

func TestStabilizationRepairsFailure(t *testing.T) {
	ids := []uint64{100, 300, 500, 700, 900, 50, 950, 600}
	r := newTestRing(t, 10, ids)

	// Kill two nodes abruptly.
	dead := map[int]bool{2: true, 5: true}
	for i := range dead {
		r.net.Kill(r.nodes[i].Self().Addr)
	}
	var live []*Node
	for i, n := range r.nodes {
		if !dead[i] {
			live = append(live, n)
		}
	}

	// Run stabilization rounds until the ring heals.
	for round := 0; round < 12; round++ {
		for _, n := range live {
			n := n
			n.Invoke(func() {
				n.CheckPredecessor()
				n.Stabilize()
				n.FixFingers()
			})
		}
		r.net.Quiesce()
	}
	r.verifyRing(live)

	// Routing works again end to end.
	rng := rand.New(rand.NewSource(3))
	type placed struct {
		key  ID
		want *Node
	}
	var all []placed
	for i := 0; i < 50; i++ {
		key := ID(rng.Uint64() & r.space.Mask())
		src := live[rng.Intn(len(live))]
		src.Invoke(func() { src.Route(key, "post-failure", 0) })
		all = append(all, placed{key, r.ownerOf(key, live)})
	}
	r.net.Quiesce()
	for _, p := range all {
		app := r.apps[p.want.Self().Addr]
		app.mu.Lock()
		vals := app.store[p.key]
		app.mu.Unlock()
		found := false
		for _, v := range vals {
			if v == "post-failure" {
				found = true
			}
		}
		if !found {
			t.Errorf("key %d not delivered to %s after failure repair", p.key, p.want.Self())
		}
	}
}

func TestJoinCollisionRefused(t *testing.T) {
	r := newTestRing(t, 10, []uint64{100, 500})
	n := NewNode(Config{Space: r.space}, 500, newKVApp(r.space))
	ep, err := r.net.Listen("dup", n)
	if err != nil {
		t.Fatal(err)
	}
	n.Start(ep)
	done := make(chan error, 1)
	n.Invoke(func() { n.Join(r.nodes[0].Self().Addr, func(err error) { done <- err }) })
	if err := <-done; err == nil {
		t.Error("duplicate-ID join should be refused")
	}
}

func TestJoinUnreachableSeed(t *testing.T) {
	net := transport.NewInproc()
	n := NewNode(Config{Space: MustSpace(10)}, 1, nil)
	ep, _ := net.Listen("solo", n)
	n.Start(ep)
	done := make(chan error, 1)
	n.Invoke(func() { n.Join("ghost", func(err error) { done <- err }) })
	if err := <-done; err == nil {
		t.Error("join via unreachable seed should fail")
	}
}

func TestSequentialGrowthKeepsLookupLogarithmic(t *testing.T) {
	// Grow a ring to 64 nodes and confirm lookups resolve with hop counts
	// far below N (finger tables work).
	rng := rand.New(rand.NewSource(77))
	ids := map[uint64]bool{}
	for len(ids) < 64 {
		ids[rng.Uint64()&((1<<16)-1)] = true
	}
	var list []uint64
	for id := range ids {
		list = append(list, id)
	}
	r := newTestRing(t, 16, list)
	r.verifyRing(r.nodes)

	maxHops := 0
	for i := 0; i < 100; i++ {
		key := ID(rng.Uint64() & r.space.Mask())
		src := r.nodes[rng.Intn(len(r.nodes))]
		ch := make(chan FoundMsg, 1)
		src.Invoke(func() {
			src.FindSuccessor(key, 0, func(m FoundMsg, err error) { ch <- m })
		})
		m := <-ch
		want := r.ownerOf(key, r.nodes)
		if m.Owner.Addr != want.Self().Addr {
			t.Errorf("successor(%d) = %s, want %s", key, m.Owner, want.Self())
		}
		if m.Hops > maxHops {
			maxHops = m.Hops
		}
	}
	if maxHops > 20 {
		t.Errorf("max hops %d too large for 64 nodes (fingers broken?)", maxHops)
	}
}

func TestNodeAccessors(t *testing.T) {
	r := newTestRing(t, 10, []uint64{100, 500})
	n := r.nodes[0]
	if n.Space().Bits != 10 {
		t.Error("Space accessor wrong")
	}
	if n.App() == nil {
		t.Error("App accessor nil")
	}
	ch := make(chan bool, 1)
	n.Invoke(func() {
		ch <- n.Owns(50) && n.Owns(100) && !n.Owns(101) && len(n.Fingers()) == 10
	})
	if !<-ch {
		t.Error("Owns/Fingers wrong for node 100 with pred 500")
	}
	_ = n.String()
	if (NodeRef{}).String() != "<none>" {
		t.Error("zero NodeRef String")
	}
}

// TestSpaceQuickProperties property-tests the ring arithmetic laws the
// protocol relies on.
func TestSpaceQuickProperties(t *testing.T) {
	s := MustSpace(32)
	mask := s.Mask()

	// Dist is a metric-ish cyclic distance: Dist(a,b) + Dist(b,a) == ring
	// size (mod ring) unless a == b.
	f1 := func(a, b uint64) bool {
		x, y := ID(a&mask), ID(b&mask)
		if x == y {
			return s.Dist(x, y) == 0
		}
		return s.Dist(x, y)+s.Dist(y, x) == mask+1
	}
	if err := quick.Check(f1, nil); err != nil {
		t.Error(err)
	}

	// Between partitions the ring: for a != b, any x is in exactly one of
	// (a, b] and (b, a].
	f2 := func(a, b, c uint64) bool {
		x, y, z := ID(a&mask), ID(b&mask), ID(c&mask)
		if x == y {
			return true
		}
		return s.Between(z, x, y) != s.Between(z, y, x)
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Error(err)
	}

	// Add is the inverse of Dist: b == Add(a, Dist(a,b)).
	f3 := func(a, b uint64) bool {
		x, y := ID(a&mask), ID(b&mask)
		return s.Add(x, s.Dist(x, y)) == y
	}
	if err := quick.Check(f3, nil); err != nil {
		t.Error(err)
	}

	// BetweenOpen implies Between, never contains the endpoints.
	f4 := func(a, b, c uint64) bool {
		x, y, z := ID(a&mask), ID(b&mask), ID(c&mask)
		if s.BetweenOpen(z, x, y) {
			return s.Between(z, x, y) && z != x && z != y
		}
		return true
	}
	if err := quick.Check(f4, nil); err != nil {
		t.Error(err)
	}
}
