package chord

import (
	"fmt"

	"squid/internal/transport"
)

// Join makes the node a member of the ring reachable through seed. done is
// called (in the node's goroutine) with nil on success, ErrJoinRefused on an
// identifier collision, or a transport/timeout error. The join cost is
// O(log N) messages to locate the admission point (paper Section 3.2) plus
// the eager finger-table construction.
func (n *Node) Join(seed transport.Addr, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if n.running {
		done(fmt.Errorf("chord: node %s already in a ring", n.self))
		return
	}
	if n.joinDone != nil {
		done(fmt.Errorf("chord: node %s join already in progress", n.self))
		return
	}
	n.joinDone = done
	tok := n.token()
	n.pendingFinds[tok] = &pendingCall[FoundMsg]{cb: func(m FoundMsg, err error) {
		if err != nil {
			n.finishJoin(err)
			return
		}
		if m.Owner.ID == n.self.ID {
			n.finishJoin(fmt.Errorf("%w: identifier %x already taken", ErrJoinRefused, uint64(n.self.ID)))
			return
		}
		if !n.send(m.Owner.Addr, JoinReqMsg{New: n.self}) {
			n.finishJoin(transport.ErrUnreachable)
		}
	}}
	if !n.send(seed, FindMsg{Target: n.self.ID, Token: tok, ReplyTo: n.self.Addr, Hops: 1}) {
		delete(n.pendingFinds, tok)
		n.finishJoin(transport.ErrUnreachable)
	}
}

func (n *Node) finishJoin(err error) {
	if n.joinDone == nil {
		return
	}
	done := n.joinDone
	n.joinDone = nil
	done(err)
}

func (n *Node) handleJoinReq(m JoinReqMsg) {
	if !n.running {
		return
	}
	if m.New.ID == n.self.ID {
		n.send(m.New.Addr, JoinNackMsg{Reason: "identifier collision"})
		return
	}
	if !n.Owns(m.New.ID) {
		// Ownership moved (concurrent join); route the request onward to the
		// current owner, bounding detours like any other routed message.
		if m.Hops >= n.maxHops() {
			n.send(m.New.Addr, JoinNackMsg{Reason: "ring unstable, retry"})
			return
		}
		m.Hops++
		n.forwardToward(m.New.ID, m)
		return
	}
	if !n.pred.IsZero() && m.New.ID == n.pred.ID && m.New.Addr != n.pred.Addr {
		n.send(m.New.Addr, JoinNackMsg{Reason: "identifier collision with predecessor"})
		return
	}
	oldPred := n.pred
	items := n.app.HandoverOut(oldPred.ID, m.New.ID)
	n.setPred(m.New)
	succs := n.trimSuccs(append([]NodeRef{n.self}, n.succs...))
	if !n.send(m.New.Addr, JoinAckMsg{Pred: oldPred, Succs: succs, Items: items}) {
		// The joiner vanished between request and admission: reclaim.
		n.setPred(oldPred)
		n.app.HandoverIn(items)
		return
	}
	if oldPred.Addr == n.self.Addr {
		// We were a singleton; the joiner is now both pred and succ.
		n.succs = n.trimSuccs([]NodeRef{m.New, n.self})
	} else if !oldPred.IsZero() {
		n.send(oldPred.Addr, SuccChangedMsg{NewSucc: m.New})
	}
}

func (n *Node) handleJoinAck(m JoinAckMsg) {
	if n.running || n.joinDone == nil {
		return
	}
	if m.Pred.Addr == "" {
		m.Pred = NodeRef{}
	}
	n.setPred(m.Pred)
	n.succs = n.trimSuccs(m.Succs)
	for i := range n.fingers {
		n.fingers[i] = n.succs[0]
	}
	n.app.HandoverIn(m.Items)
	n.running = true
	// Eagerly resolve the finger table; correctness does not depend on it
	// (stabilization repairs fingers), only routing speed.
	n.RebuildFingers()
	n.finishJoin(nil)
}

func (n *Node) handleJoinNack(m JoinNackMsg) {
	if n.running {
		return
	}
	n.finishJoin(fmt.Errorf("%w: %s", ErrJoinRefused, m.Reason))
}

// RebuildFingers issues FindSuccessor for every finger target and installs
// the answers as they arrive.
func (n *Node) RebuildFingers() {
	for i := 0; i < n.cfg.Space.Bits; i++ {
		i := i
		target := n.cfg.Space.Add(n.self.ID, uint64(1)<<uint(i))
		n.FindSuccessor(target, 0, func(m FoundMsg, err error) {
			if err == nil && !m.Owner.IsZero() {
				n.fingers[i] = m.Owner
			}
		})
	}
}

// Leave removes the node from the ring voluntarily, handing its stored
// items to its successor and splicing its neighbors together (paper:
// departure costs O(log N) messages to repair affected finger tables, which
// stabilization performs lazily).
func (n *Node) Leave() {
	if !n.running {
		return
	}
	n.running = false
	succ := n.Succ()
	if succ.Addr == n.self.Addr {
		return // singleton: nothing to hand over
	}
	items := n.app.HandoverOut(n.pred.ID, n.self.ID)
	n.send(succ.Addr, LeaveMsg{Leaving: n.self, Pred: n.pred, Items: items})
	if !n.pred.IsZero() && n.pred.Addr != n.self.Addr {
		n.send(n.pred.Addr, SuccChangedMsg{NewSucc: succ})
	}
}

func (n *Node) handleLeave(m LeaveMsg) {
	n.app.HandoverIn(m.Items)
	if n.pred.Addr == m.Leaving.Addr {
		n.setPred(m.Pred)
	}
	n.dropDead(m.Leaving)
}

func (n *Node) handleSuccChanged(m SuccChangedMsg) {
	if m.NewSucc.IsZero() {
		return
	}
	if m.NewSucc.Addr == n.self.Addr {
		n.succs = n.trimSuccs([]NodeRef{n.self})
		return
	}
	n.succs = n.trimSuccs(append([]NodeRef{m.NewSucc}, n.succs...))
}

// Stabilize runs one round of Chord's stabilization: learn the successor's
// predecessor, adopt it if it sits between, refresh the successor list and
// notify the successor of our existence. Run periodically.
func (n *Node) Stabilize() {
	if !n.running {
		return
	}
	succ := n.Succ()
	if succ.Addr == n.self.Addr {
		return
	}
	n.ctr.stabilizeRounds.Inc()
	n.getState(succ.Addr, func(st StateMsg, err error) {
		if err != nil {
			n.dropDead(succ)
			return
		}
		cur := n.Succ()
		if x := st.Pred; !x.IsZero() && x.Addr != n.self.Addr && n.cfg.Space.BetweenOpen(x.ID, n.self.ID, cur.ID) {
			n.succs = n.trimSuccs(append([]NodeRef{x, cur}, st.Succs...))
		} else {
			n.succs = n.trimSuccs(append([]NodeRef{cur}, st.Succs...))
		}
		n.send(n.Succ().Addr, NotifyMsg{Candidate: n.self})
	})
}

func (n *Node) handleNotify(m NotifyMsg) {
	if !n.running || m.Candidate.Addr == n.self.Addr {
		return
	}
	if n.pred.IsZero() || n.pred.Addr == n.self.Addr ||
		n.cfg.Space.BetweenOpen(m.Candidate.ID, n.pred.ID, n.self.ID) {
		n.setPred(m.Candidate)
	}
}

// FixFingers refreshes one finger table entry per call, cycling through the
// table — Chord's periodic finger repair ("each node periodically runs a
// stabilization algorithm where it chooses a random entry in its finger
// table, checks for its state, and updates it", paper Section 3.2).
func (n *Node) FixFingers() {
	if !n.running {
		return
	}
	i := n.fixNext
	n.fixNext = (n.fixNext + 1) % n.cfg.Space.Bits
	n.ctr.fingerFixes.Inc()
	target := n.cfg.Space.Add(n.self.ID, uint64(1)<<uint(i))
	n.FindSuccessor(target, 0, func(m FoundMsg, err error) {
		if err == nil && !m.Owner.IsZero() {
			n.fingers[i] = m.Owner
		}
	})
}

// CheckPredecessor probes the predecessor and clears it if unreachable, so
// a later Notify can install a live one.
func (n *Node) CheckPredecessor() {
	if !n.running || n.pred.IsZero() || n.pred.Addr == n.self.Addr {
		return
	}
	pred := n.pred
	n.getState(pred.Addr, func(st StateMsg, err error) {
		if err != nil && n.pred.Addr == pred.Addr {
			n.setPred(NodeRef{})
		}
	})
}
