package chord

import (
	"fmt"

	"squid/internal/transport"
)

// Membership follows Zave's corrected Chord rules ("How To Make Chord
// Correct", arXiv:1502.06461) by default:
//
//   - Stabilization adopts a successor candidate only after a reachability
//     probe answers, failing over through the successor list in-round when
//     the current successor is dead.
//   - Notify is the rectify rule: a node never clears its predecessor
//     unilaterally — failed probes mark it suspect, and the next live
//     candidate replaces it, retreating the arc boundary when the candidate
//     sits behind the dead predecessor.
//   - Join is three-phase (request → deferred ack → confirm): the owner
//     changes no state until the joiner, already listening, confirms it is
//     live; only then does ownership splice and the arc's items move via a
//     HandoffMsg.
//
// Config.LegacyRules reverts to the original pseudo-code so the regression
// tests can reproduce the invariant violations the corrections prevent.

// Join makes the node a member of the ring reachable through seed. done is
// called (in the node's goroutine) with nil on success, ErrJoinRefused on an
// identifier collision, or a transport/timeout error. The join cost is
// O(log N) messages to locate the admission point (paper Section 3.2) plus
// the eager finger-table construction.
func (n *Node) Join(seed transport.Addr, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if n.running {
		done(fmt.Errorf("chord: node %s already in a ring", n.self))
		return
	}
	if n.joinDone != nil {
		done(fmt.Errorf("chord: node %s join already in progress", n.self))
		return
	}
	n.joinDone = done
	tok := n.token()
	n.pendingFinds[tok] = &pendingCall[FoundMsg]{cb: func(m FoundMsg, err error) {
		if err != nil {
			n.finishJoin(err)
			return
		}
		if m.Owner.ID == n.self.ID {
			n.finishJoin(fmt.Errorf("%w: identifier %x already taken", ErrJoinRefused, uint64(n.self.ID)))
			return
		}
		if !n.send(m.Owner.Addr, JoinReqMsg{New: n.self}) {
			n.finishJoin(transport.ErrUnreachable)
		}
	}}
	if !n.send(seed, FindMsg{Target: n.self.ID, Token: tok, ReplyTo: n.self.Addr, Hops: 1}) {
		delete(n.pendingFinds, tok)
		n.finishJoin(transport.ErrUnreachable)
	}
}

func (n *Node) finishJoin(err error) {
	if n.joinDone == nil {
		return
	}
	done := n.joinDone
	n.joinDone = nil
	done(err)
}

func (n *Node) handleJoinReq(m JoinReqMsg) {
	if !n.running {
		return
	}
	if m.New.ID == n.self.ID {
		n.send(m.New.Addr, JoinNackMsg{Reason: "identifier collision"})
		return
	}
	if !n.Owns(m.New.ID) {
		// Ownership moved (concurrent join); route the request onward to the
		// current owner, bounding detours like any other routed message.
		if m.Hops >= n.maxHops() {
			n.send(m.New.Addr, JoinNackMsg{Reason: "ring unstable, retry"})
			return
		}
		m.Hops++
		n.forwardToward(m.New.ID, m)
		return
	}
	if !n.pred.IsZero() && m.New.ID == n.pred.ID && m.New.Addr != n.pred.Addr {
		n.send(m.New.Addr, JoinNackMsg{Reason: "identifier collision with predecessor"})
		return
	}
	if n.cfg.LegacyRules {
		// Original splice-at-admission: ownership and items move before the
		// joiner has proven it is alive. A joiner that vanished between
		// request and admission leaves a dead predecessor holding our items
		// (the regression tests reproduce exactly that).
		oldPred := n.pred
		items := n.app.HandoverOut(oldPred.ID, m.New.ID)
		n.setPred(m.New)
		succs := n.trimSuccs(append([]NodeRef{n.self}, n.succs...))
		if !n.send(m.New.Addr, JoinAckMsg{Pred: oldPred, Succs: succs, Items: items}) {
			// The joiner vanished between request and admission: reclaim.
			n.setPred(oldPred)
			n.app.HandoverIn(items)
			return
		}
		if oldPred.Addr == n.self.Addr {
			// We were a singleton; the joiner is now both pred and succ.
			n.succs = n.trimSuccs([]NodeRef{m.New, n.self})
		} else if !oldPred.IsZero() {
			n.send(oldPred.Addr, SuccChangedMsg{NewSucc: m.New})
		}
		return
	}
	// Corrected admission: answer with our view of the ring but change no
	// state. The joiner links itself in as an appendage and confirms with a
	// JoinConfirmMsg once it is live; ownership moves only then.
	succs := n.trimSuccs(append([]NodeRef{n.self}, n.succs...))
	n.send(m.New.Addr, JoinAckMsg{Pred: n.pred, Succs: succs, Deferred: true})
}

func (n *Node) handleJoinAck(m JoinAckMsg) {
	if n.running || n.joinDone == nil {
		return
	}
	succs := n.trimSuccs(m.Succs)
	if succs[0].Addr == n.self.Addr {
		// trimSuccs filtered every entry and padded with self: the ack named
		// no usable successor. Refuse rather than start a one-node "ring"
		// that shadows the real one (a crafted or truncated ack used to
		// index succs[0] straight into a corrupt state here).
		n.finishJoin(fmt.Errorf("%w: malformed join ack (no usable successor)", ErrJoinRefused))
		return
	}
	if m.Pred.Addr == "" {
		m.Pred = NodeRef{}
	}
	n.setPred(m.Pred)
	n.succs = succs
	for i := range n.fingers {
		n.fingers[i] = n.succs[0]
	}
	n.app.HandoverIn(m.Items)
	n.running = true
	if m.Deferred {
		// Phase three of the corrected join: we are listening and linked in
		// as an appendage; ask the owner to splice us in. Items arrive in
		// the HandoffMsg the owner sends on adoption. If the owner died
		// since acking, any live successor forwards the confirmation to the
		// current owner of our identifier.
		for _, s := range n.succs {
			if s.Addr == n.self.Addr {
				continue
			}
			if n.send(s.Addr, JoinConfirmMsg{New: n.self, Hops: 1}) {
				break
			}
		}
	}
	// Eagerly resolve the finger table; correctness does not depend on it
	// (stabilization repairs fingers), only routing speed.
	n.RebuildFingers()
	n.finishJoin(nil)
}

func (n *Node) handleJoinNack(m JoinNackMsg) {
	if n.running {
		return
	}
	n.finishJoin(fmt.Errorf("%w: %s", ErrJoinRefused, m.Reason))
}

func (n *Node) handleJoinConfirm(m JoinConfirmMsg) {
	if !n.running || m.New.IsZero() || m.New.Addr == n.self.Addr {
		return
	}
	if !n.Owns(m.New.ID) {
		// Ownership moved between ack and confirm (concurrent admission):
		// route the confirmation to the current owner, bounded like any
		// other forwarded message. On overflow the joiner stays an
		// appendage; stabilization's rectify splices it in later.
		if m.Hops >= n.maxHops() {
			return
		}
		m.Hops++
		n.forwardToward(m.New.ID, m)
		return
	}
	if m.New.ID == n.self.ID ||
		(!n.pred.IsZero() && m.New.ID == n.pred.ID && m.New.Addr != n.pred.Addr) {
		return // identifier collision surfaced after the ack; refuse
	}
	if n.pred.Addr == m.New.Addr {
		return // already spliced (duplicate confirmation)
	}
	n.adoptPredHandoff(m.New)
}

// adoptPredHandoff installs p as the predecessor. When the arc boundary
// advances (p inside our current arc), ownership of (old, p] transfers to p
// via a HandoffMsg before the splice — if p is unreachable the handoff is
// reclaimed and nothing changes. When the boundary retreats (our
// predecessor died and p closes the ring from further back) no items move:
// our arc only grows. Reports whether p was adopted.
func (n *Node) adoptPredHandoff(p NodeRef) bool {
	if p.IsZero() || p.Addr == n.self.Addr || p.Addr == n.pred.Addr {
		return false
	}
	old := n.pred
	from := old
	if from.IsZero() || from.Addr == n.self.Addr {
		from = n.self
	}
	if !n.cfg.Space.BetweenOpen(p.ID, from.ID, n.self.ID) {
		n.setPred(p)
		return true
	}
	items := n.app.HandoverOut(from.ID, p.ID)
	if !n.send(p.Addr, HandoffMsg{Pred: from, Items: items}) {
		// The candidate vanished between confirmation and splice: reclaim.
		n.app.HandoverIn(items)
		return false
	}
	wasSingleton := n.Succ().Addr == n.self.Addr
	n.setPred(p)
	if wasSingleton {
		// The adopted predecessor is also our only successor.
		n.succs = n.trimSuccs([]NodeRef{p, n.self})
	}
	if !old.IsZero() && old.Addr != n.self.Addr && old.Addr != p.Addr {
		n.send(old.Addr, SuccChangedMsg{NewSucc: p})
	}
	return true
}

func (n *Node) handleHandoff(m HandoffMsg) {
	n.app.HandoverIn(m.Items)
	if m.Pred.IsZero() || m.Pred.Addr == n.self.Addr {
		return
	}
	sp := n.cfg.Space
	if n.pred.IsZero() || n.pred.Addr == n.self.Addr {
		n.setPred(m.Pred)
		return
	}
	if n.pred.Addr == m.Pred.Addr {
		return
	}
	if sp.BetweenOpen(m.Pred.ID, n.pred.ID, n.self.ID) {
		// The sender knew a tighter arc boundary than we do (a predecessor
		// admitted while our ack was in flight): adopt it.
		n.setPred(m.Pred)
		return
	}
	if sp.BetweenOpen(n.pred.ID, m.Pred.ID, n.self.ID) {
		// Our boundary is tighter than the sender knew: the low end of the
		// transferred arc belongs to our predecessor — spill it forward.
		spill := n.app.HandoverOut(m.Pred.ID, n.pred.ID)
		if len(spill) > 0 && !n.send(n.pred.Addr, HandoffMsg{Pred: m.Pred, Items: spill}) {
			n.app.HandoverIn(spill)
		}
	}
}

// RebuildFingers issues FindSuccessor for every finger target and installs
// the answers as they arrive.
func (n *Node) RebuildFingers() {
	for i := 0; i < n.cfg.Space.Bits; i++ {
		i := i
		target := n.cfg.Space.Add(n.self.ID, uint64(1)<<uint(i))
		n.FindSuccessor(target, 0, func(m FoundMsg, err error) {
			if err == nil && !m.Owner.IsZero() {
				n.fingers[i] = m.Owner
			}
		})
	}
}

// Leave removes the node from the ring voluntarily, handing its stored
// items to the first reachable successor-list entry and splicing its
// neighbors together (paper: departure costs O(log N) messages to repair
// affected finger tables, which stabilization performs lazily).
func (n *Node) Leave() {
	if !n.running {
		return
	}
	n.running = false
	if n.Succ().Addr == n.self.Addr {
		return // singleton: nothing to hand over
	}
	items := n.app.HandoverOut(n.pred.ID, n.self.ID)
	var adopted NodeRef
	for _, s := range n.succs {
		if s.IsZero() || s.Addr == n.self.Addr {
			continue
		}
		if n.send(s.Addr, LeaveMsg{Leaving: n.self, Pred: n.pred, Items: items}) {
			adopted = s
			break
		}
	}
	if adopted.IsZero() {
		// No live successor to inherit the arc: keep the items locally
		// rather than dropping them — a restart or manual recovery can
		// still reach them.
		n.app.HandoverIn(items)
		return
	}
	if !n.pred.IsZero() && n.pred.Addr != n.self.Addr {
		n.send(n.pred.Addr, SuccChangedMsg{NewSucc: adopted})
	}
}

func (n *Node) handleLeave(m LeaveMsg) {
	n.app.HandoverIn(m.Items)
	if n.pred.Addr == m.Leaving.Addr {
		n.setPred(m.Pred)
	}
	n.dropDead(m.Leaving)
}

func (n *Node) handleSuccChanged(m SuccChangedMsg) {
	if m.NewSucc.IsZero() {
		return
	}
	if m.NewSucc.Addr == n.self.Addr {
		n.succs = n.trimSuccs([]NodeRef{n.self})
		return
	}
	n.succs = n.trimSuccs(append([]NodeRef{m.NewSucc}, n.succs...))
}

// Stabilize runs one round of stabilization: learn the successor's
// predecessor, adopt it if it sits between, refresh the successor list and
// notify the successor of our existence. Run periodically.
//
// Under the corrected rules the round probes a dead successor away and
// fails over to the next successor-list entry within the same round, and a
// candidate learned from the successor is adopted only after its own
// reachability probe answers (rejections are counted in
// squid_chord_succ_candidates_rejected_total). Under LegacyRules the
// candidate is adopted sight unseen — the Zave paper's counterexamples live
// in exactly that gap.
func (n *Node) Stabilize() {
	if !n.running {
		return
	}
	if n.Succ().Addr == n.self.Addr {
		return
	}
	n.ctr.stabilizeRounds.Inc()
	if n.cfg.LegacyRules {
		n.stabilizeLegacy()
		return
	}
	n.stabilizeStep(0)
}

// stabilizeLegacy is the original rule: trust the successor's reported
// predecessor without probing it.
func (n *Node) stabilizeLegacy() {
	succ := n.Succ()
	n.getState(succ.Addr, func(st StateMsg, err error) {
		if err != nil {
			n.dropDead(succ)
			return
		}
		cur := n.Succ()
		if x := st.Pred; !x.IsZero() && x.Addr != n.self.Addr && n.cfg.Space.BetweenOpen(x.ID, n.self.ID, cur.ID) {
			n.succs = n.trimSuccs(append([]NodeRef{x, cur}, st.Succs...))
		} else {
			n.succs = n.trimSuccs(append([]NodeRef{cur}, st.Succs...))
		}
		n.send(n.Succ().Addr, NotifyMsg{Candidate: n.self})
	})
}

// stabilizeStep probes the current successor, failing over through the
// successor list (depth bounds the cascade) when it is dead.
func (n *Node) stabilizeStep(depth int) {
	succ := n.Succ()
	if succ.Addr == n.self.Addr {
		return
	}
	n.getState(succ.Addr, func(st StateMsg, err error) {
		if err != nil {
			n.dropDead(succ)
			if depth+1 < n.cfg.SuccListLen {
				n.stabilizeStep(depth + 1)
			}
			return
		}
		// Refresh the successor list from the probed successor, keeping any
		// closer successor installed while the probe was in flight.
		cur := n.Succ()
		base := []NodeRef{cur}
		if cur.Addr != succ.Addr {
			base = append(base, succ)
		}
		n.succs = n.trimSuccs(append(base, st.Succs...))
		cur = n.Succ()
		x := st.Pred
		if x.IsZero() || x.Addr == n.self.Addr || x.Addr == cur.Addr ||
			!n.cfg.Space.BetweenOpen(x.ID, n.self.ID, cur.ID) {
			n.notifySucc()
			return
		}
		// The successor names a closer predecessor: adopt it only once its
		// own probe answers (Zave's correction — the original rule adopts a
		// possibly-dead candidate here and strands the ring).
		n.getState(x.Addr, func(xst StateMsg, err error) {
			if err != nil {
				n.ctr.succRejects.Inc()
				n.notifySucc()
				return
			}
			if c := n.Succ(); n.cfg.Space.BetweenOpen(x.ID, n.self.ID, c.ID) {
				n.succs = n.trimSuccs(append(append([]NodeRef{x}, xst.Succs...), n.succs...))
			}
			n.notifySucc()
		})
	})
}

func (n *Node) notifySucc() {
	if s := n.Succ(); s.Addr != n.self.Addr {
		n.send(s.Addr, NotifyMsg{Candidate: n.self})
	}
}

// handleNotify is Zave's rectify rule: the candidate replaces the
// predecessor when it tightens the arc, and also when the current
// predecessor is suspect or proven dead — retreating the boundary rather
// than clearing it, because a zero predecessor would claim the entire ring.
// Adoption goes through adoptPredHandoff so any items the candidate now
// owns travel with the splice. Under LegacyRules the original unguarded
// between-check runs instead.
func (n *Node) handleNotify(m NotifyMsg) {
	if !n.running || m.Candidate.Addr == n.self.Addr {
		return
	}
	if n.cfg.LegacyRules {
		if n.pred.IsZero() || n.pred.Addr == n.self.Addr ||
			n.cfg.Space.BetweenOpen(m.Candidate.ID, n.pred.ID, n.self.ID) {
			n.setPred(m.Candidate)
		}
		return
	}
	if m.Candidate.Addr == n.pred.Addr {
		n.predSuspect = false // our predecessor is alive and still claims us
		return
	}
	if m.Candidate.ID == n.self.ID {
		return // identifier collision; refuse
	}
	if n.pred.IsZero() || n.pred.Addr == n.self.Addr || n.predSuspect ||
		n.cfg.Space.BetweenOpen(m.Candidate.ID, n.pred.ID, n.self.ID) {
		n.adoptPredHandoff(m.Candidate)
		return
	}
	// The candidate does not tighten the arc and the predecessor is not
	// under suspicion. Probe the predecessor before deciding: if it is
	// dead, the candidate is a live replacement path (rectify's fallback).
	pred := n.pred
	cand := m.Candidate
	n.getState(pred.Addr, func(st StateMsg, err error) {
		if n.pred.Addr != pred.Addr {
			return // predecessor changed while probing; decision is stale
		}
		if err != nil {
			n.predSuspect = true
			n.adoptPredHandoff(cand)
			return
		}
		n.predSuspect = false
	})
}

// FixFingers refreshes one finger table entry per call, cycling through the
// table — Chord's periodic finger repair ("each node periodically runs a
// stabilization algorithm where it chooses a random entry in its finger
// table, checks for its state, and updates it", paper Section 3.2).
func (n *Node) FixFingers() {
	if !n.running {
		return
	}
	i := n.fixNext
	n.fixNext = (n.fixNext + 1) % n.cfg.Space.Bits
	n.ctr.fingerFixes.Inc()
	target := n.cfg.Space.Add(n.self.ID, uint64(1)<<uint(i))
	n.FindSuccessor(target, 0, func(m FoundMsg, err error) {
		if err == nil && !m.Owner.IsZero() {
			n.fingers[i] = m.Owner
		}
	})
}

// CheckPredecessor probes the predecessor. Under the corrected rules an
// unreachable predecessor is marked suspect — kept as the arc boundary so
// ownership stays a partition — until rectify installs a live replacement.
// Under LegacyRules it is cleared outright, which momentarily widens this
// node's arc over the whole ring.
func (n *Node) CheckPredecessor() {
	if !n.running || n.pred.IsZero() || n.pred.Addr == n.self.Addr {
		return
	}
	pred := n.pred
	n.getState(pred.Addr, func(st StateMsg, err error) {
		if n.pred.Addr != pred.Addr {
			return
		}
		if err != nil {
			if n.cfg.LegacyRules {
				n.setPred(NodeRef{})
			} else {
				n.predSuspect = true
			}
			return
		}
		n.predSuspect = false
	})
}
