package chord

import (
	"strconv"

	"squid/internal/telemetry"
)

// Counters is a snapshot of a node's cumulative fault-recovery counters.
// They quantify recovery cost under churn: every retry is a failed RPC the
// backoff policy absorbed instead of surfacing to the caller.
type Counters struct {
	// FindRetries counts FindSuccessor attempts beyond each call's first.
	FindRetries uint64
	// StateRetries counts state-probe attempts beyond each call's first.
	StateRetries uint64
	// FindFailures counts FindSuccessor calls that failed after all
	// configured retries.
	FindFailures uint64
	// StateFailures counts state probes that failed after all retries.
	StateFailures uint64
	// SuccRejects counts successor candidates stabilization refused to
	// adopt because their reachability probe failed (Zave's corrected
	// adopt-after-probe rule; always zero under LegacyRules).
	SuccRejects uint64
}

// Add accumulates another snapshot (for network-wide aggregation).
func (c *Counters) Add(o Counters) {
	c.FindRetries += o.FindRetries
	c.StateRetries += o.StateRetries
	c.FindFailures += o.FindFailures
	c.StateFailures += o.StateFailures
	c.SuccRejects += o.SuccRejects
}

// lookupHopBuckets bounds the lookup-hop histogram: a consistent ring
// resolves in O(log N) hops, so small powers of two cover realistic rings
// and the +Inf bucket catches churn detours.
var lookupHopBuckets = []int64{1, 2, 4, 8, 16, 32, 64}

// nodeMetrics holds this node's children of the shared telemetry families.
// The instruments are atomic, so any goroutine (metric scrapers, the
// simulator) may snapshot them without entering the delivery goroutine.
type nodeMetrics struct {
	findRetries     *telemetry.Counter
	stateRetries    *telemetry.Counter
	findFailures    *telemetry.Counter
	stateFailures   *telemetry.Counter
	lookupHops      *telemetry.Histogram
	stabilizeRounds *telemetry.Counter
	fingerFixes     *telemetry.Counter
	routeForwards   *telemetry.Counter
	succRejects     *telemetry.Counter
}

// newNodeMetrics resolves the node's metric children once, so every
// increment on the hot path is a single lock-free atomic op.
func newNodeMetrics(reg *telemetry.Registry, id ID) nodeMetrics {
	node := strconv.FormatUint(uint64(id), 16)
	retries := reg.CounterVec("squid_chord_rpc_retries_total",
		"ring RPC attempts beyond each call's first, by operation", "node", "op")
	failures := reg.CounterVec("squid_chord_rpc_failures_total",
		"ring RPCs that failed after all configured retries, by operation", "node", "op")
	return nodeMetrics{
		findRetries:   retries.With(node, "find"),
		stateRetries:  retries.With(node, "state"),
		findFailures:  failures.With(node, "find"),
		stateFailures: failures.With(node, "state"),
		lookupHops: reg.HistogramVec("squid_chord_lookup_hops",
			"ring hops per resolved FindSuccessor lookup", lookupHopBuckets, "node").With(node),
		stabilizeRounds: reg.CounterVec("squid_chord_stabilize_rounds_total",
			"stabilization rounds that probed the successor", "node").With(node),
		fingerFixes: reg.CounterVec("squid_chord_finger_fixes_total",
			"periodic finger-table refresh probes issued", "node").With(node),
		routeForwards: reg.CounterVec("squid_chord_route_forwards_total",
			"routed messages forwarded one hop toward their key", "node").With(node),
		succRejects: reg.CounterVec("squid_chord_succ_candidates_rejected_total",
			"successor candidates refused by stabilization because their reachability probe failed", "node").With(node),
	}
}

// Counters snapshots the node's recovery counters. Safe from any goroutine.
//
// The same data is published per node through the telemetry registry as
// the squid_chord_rpc_retries_total and squid_chord_rpc_failures_total
// families; scrape-based consumers should read those instead of polling
// this accessor.
func (n *Node) Counters() Counters {
	return Counters{
		FindRetries:   n.ctr.findRetries.Value(),
		StateRetries:  n.ctr.stateRetries.Value(),
		FindFailures:  n.ctr.findFailures.Value(),
		StateFailures: n.ctr.stateFailures.Value(),
		SuccRejects:   n.ctr.succRejects.Value(),
	}
}
