package chord

import "sync/atomic"

// Counters is a snapshot of a node's cumulative fault-recovery counters.
// They quantify recovery cost under churn: every retry is a failed RPC the
// backoff policy absorbed instead of surfacing to the caller.
type Counters struct {
	// FindRetries counts FindSuccessor attempts beyond each call's first.
	FindRetries uint64
	// StateRetries counts state-probe attempts beyond each call's first.
	StateRetries uint64
	// FindFailures counts FindSuccessor calls that failed after all
	// configured retries.
	FindFailures uint64
	// StateFailures counts state probes that failed after all retries.
	StateFailures uint64
}

// Add accumulates another snapshot (for network-wide aggregation).
func (c *Counters) Add(o Counters) {
	c.FindRetries += o.FindRetries
	c.StateRetries += o.StateRetries
	c.FindFailures += o.FindFailures
	c.StateFailures += o.StateFailures
}

// counters is the node-internal atomic representation; atomics so any
// goroutine (metric scrapers, the simulator) may snapshot without entering
// the node's delivery goroutine.
type counters struct {
	findRetries   atomic.Uint64
	stateRetries  atomic.Uint64
	findFailures  atomic.Uint64
	stateFailures atomic.Uint64
}

// Counters snapshots the node's recovery counters. Safe from any goroutine.
func (n *Node) Counters() Counters {
	return Counters{
		FindRetries:   n.ctr.findRetries.Load(),
		StateRetries:  n.ctr.stateRetries.Load(),
		FindFailures:  n.ctr.findFailures.Load(),
		StateFailures: n.ctr.stateFailures.Load(),
	}
}
