package chord

import (
	"fmt"
	"sort"

	"squid/internal/transport"
)

// This file is the machine check for the ring invariants Zave proved the
// original Chord rules violate ("How To Make Chord Correct",
// arXiv:1502.06461): Ordered Ring, At Most One Ring, Connected Appendages,
// Valid Successor Lists, and — because Squid's recall guarantee rides on
// every key having exactly one owner — completeness of the ownership
// partition. CheckRing consumes a global snapshot of every node's neighbor
// state and returns typed violations; the simulator asserts it after every
// stabilization round, and squid-sim exposes it as the `check` command.

// Snapshot is one node's neighbor state at a point in time, captured in its
// delivery goroutine by Node.Snapshot.
type Snapshot struct {
	Self    NodeRef
	Pred    NodeRef
	Succs   []NodeRef
	Fingers []NodeRef
	// Running reports ring membership; stopped nodes are ignored by the
	// checker.
	Running bool
	// PredSuspect reports that the node's predecessor failed a liveness
	// probe and is retained only as the arc boundary.
	PredSuspect bool
}

// Snapshot captures the node's neighbor state. Like every accessor of
// goroutine-confined state it must be called from the delivery goroutine
// (via Invoke or an upcall).
func (n *Node) Snapshot() Snapshot {
	return Snapshot{
		Self:        n.self,
		Pred:        n.pred,
		Succs:       n.SuccList(),
		Fingers:     n.Fingers(),
		Running:     n.running,
		PredSuspect: n.predSuspect,
	}
}

// ViolationKind names one broken ring invariant.
type ViolationKind string

const (
	// ViolationOrderedRing: two adjacent cycle members have a third cycle
	// member strictly between their identifiers — the ring is not in
	// identifier order.
	ViolationOrderedRing ViolationKind = "ordered-ring"
	// ViolationMultipleRings: the effective-successor graph contains a
	// cycle disjoint from the principal ring ("At Most One Ring").
	ViolationMultipleRings ViolationKind = "multiple-rings"
	// ViolationDisconnected: a node's successor chain cannot reach the
	// principal ring because some link has no live successor ("Connected
	// Appendages").
	ViolationDisconnected ViolationKind = "disconnected"
	// ViolationSuccList: a successor list is structurally invalid (empty,
	// zero entries, out of ring order, or self before the end).
	ViolationSuccList ViolationKind = "succ-list"
	// ViolationOwnershipOverlap: a node's claimed arc overlaps another live
	// node's arc (zero or wildly stale predecessor) — a routed key could be
	// accepted by two owners.
	ViolationOwnershipOverlap ViolationKind = "ownership-overlap"
	// ViolationOwnershipGap: part of the identifier space has no live
	// owner because a node's arc boundary is a dead node. Transient by
	// design under the corrected rules: the boundary is retained (suspect)
	// until rectify installs a live one, and no node over-claims meanwhile.
	ViolationOwnershipGap ViolationKind = "ownership-gap"
)

// Violation is one broken invariant, anchored at the node exhibiting it.
type Violation struct {
	Kind   ViolationKind
	Node   NodeRef
	Detail string
}

// Error renders the violation; Violation satisfies error so test helpers
// can return one directly.
func (v Violation) Error() string {
	return fmt.Sprintf("ring invariant %s at %s: %s", v.Kind, v.Node, v.Detail)
}

// Transient reports whether the violation is expected to self-heal under
// the corrected rules without any node over-claiming ownership. Only
// ownership gaps qualify: a dead arc boundary is retained deliberately
// until rectify replaces it.
func (v Violation) Transient() bool { return v.Kind == ViolationOwnershipGap }

// HardViolations filters out transient violations, leaving those that
// indicate genuine protocol failure.
func HardViolations(vs []Violation) []Violation {
	out := vs[:0:0]
	for _, v := range vs {
		if !v.Transient() {
			out = append(out, v)
		}
	}
	return out
}

// CheckRing verifies the global ring invariants over a snapshot of every
// node. Stopped nodes are ignored; a ring of zero or one members is
// trivially correct. The returned violations are deterministic for a given
// snapshot (sorted by node identifier within each phase of the check).
func CheckRing(space Space, snaps []Snapshot) []Violation {
	members := make(map[transport.Addr]Snapshot)
	for _, s := range snaps {
		if s.Running && !s.Self.IsZero() {
			members[s.Self.Addr] = s
		}
	}
	if len(members) <= 1 {
		return nil
	}
	order := make([]Snapshot, 0, len(members))
	for _, s := range members {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Self.ID != order[j].Self.ID {
			//lint:allow-ringcmp absolute oracle ordering of the partition, not ring-relative
			return order[i].Self.ID < order[j].Self.ID
		}
		return order[i].Self.Addr < order[j].Self.Addr
	})

	var out []Violation

	// Valid Successor Lists, and the effective successor of each member:
	// the first live-member entry scanning up to the first self-reference
	// (which marks one full loop around the node's view of the ring —
	// entries past it are lap-stale tombstones). Dead entries are legal
	// anywhere (they are dropped lazily and preserve failover depth), but
	// the live entries before the loop closure must be in ring order, and
	// the list must lead somewhere alive. This is Zave's continuous
	// formulation: the invariant holds at every reachable state, not just
	// after healing, so the simulator can assert it after every round.
	eff := make(map[transport.Addr]transport.Addr, len(order))
	for _, s := range order {
		if len(s.Succs) == 0 {
			out = append(out, Violation{ViolationSuccList, s.Self, "empty successor list"})
			continue
		}
		prev, ok := uint64(0), true
		for i, e := range s.Succs {
			if e.IsZero() {
				out = append(out, Violation{ViolationSuccList, s.Self,
					fmt.Sprintf("zero entry at index %d", i)})
				ok = false
				break
			}
			if e.Addr == s.Self.Addr {
				break // loop closure: the rest is one lap stale
			}
			if _, live := members[e.Addr]; !live {
				continue // tombstone awaiting lazy removal
			}
			d := space.Dist(s.Self.ID, e.ID)
			if d == 0 || (prev != 0 && d <= prev) {
				out = append(out, Violation{ViolationSuccList, s.Self,
					fmt.Sprintf("live entry %s at index %d not in ring order", e, i)})
				ok = false
				break
			}
			prev = d
			if _, found := eff[s.Self.Addr]; !found {
				eff[s.Self.Addr] = e.Addr
			}
		}
		if !ok {
			continue
		}
		if _, found := eff[s.Self.Addr]; !found {
			out = append(out, Violation{ViolationDisconnected, s.Self,
				"no live successor: every successor-list entry is dead"})
		}
	}

	// At Most One Ring + Connected Appendages: walk the effective-successor
	// functional graph. Every chain must reach one principal cycle; extra
	// cycles and dead-end chains are violations (flagged at their root
	// cause — the cycle, or the node with no live successor).
	const (
		unvisited = 0
		onPath    = 1
		done      = 2
	)
	state := make(map[transport.Addr]int, len(order))
	var cycles [][]Snapshot
	for _, start := range order {
		if state[start.Self.Addr] != unvisited {
			continue
		}
		var path []transport.Addr
		u := start.Self.Addr
		for u != "" && state[u] == unvisited {
			state[u] = onPath
			path = append(path, u)
			u = eff[u]
		}
		if u != "" && state[u] == onPath {
			// New cycle: the path suffix starting at u.
			i := 0
			for path[i] != u {
				i++
			}
			cyc := make([]Snapshot, 0, len(path)-i)
			for _, a := range path[i:] {
				cyc = append(cyc, members[a])
			}
			cycles = append(cycles, cyc)
		}
		for _, a := range path {
			state[a] = done
		}
	}
	principal := -1
	for i, c := range cycles {
		if principal < 0 || len(c) > len(cycles[principal]) {
			principal = i
			continue
		}
		if len(c) != len(cycles[principal]) {
			continue
		}
		//lint:allow-ringcmp deterministic tie-break between equal-size cycles, not ring-relative
		if c[0].Self.ID < cycles[principal][0].Self.ID {
			principal = i
		}
	}
	for i, c := range cycles {
		if i == principal {
			continue
		}
		names := make([]string, len(c))
		for j, s := range c {
			names[j] = s.Self.String()
		}
		out = append(out, Violation{ViolationMultipleRings, c[0].Self,
			fmt.Sprintf("cycle of %d nodes disjoint from the principal ring: %v", len(c), names)})
	}

	// Ordered Ring: along the principal cycle, no cycle member may sit
	// strictly between a node and its effective successor. It suffices to
	// test the nearest clockwise cycle member: if any member lies strictly
	// inside (u, succ(u)), the nearest one does, so one binary search per
	// node replaces the quadratic all-pairs scan (which at 10⁴ members cost
	// more than the stabilization round it was checking).
	if principal >= 0 {
		cyc := cycles[principal]
		byID := make([]Snapshot, len(cyc))
		copy(byID, cyc)
		sort.Slice(byID, func(i, j int) bool {
			//lint:allow-ringcmp absolute oracle ordering for the witness search, not ring-relative
			return byID[i].Self.ID < byID[j].Self.ID
		})
		for _, u := range cyc {
			sAddr := eff[u.Self.Addr]
			s := members[sAddr]
			j := sort.Search(len(byID), func(k int) bool {
				//lint:allow-ringcmp finding the next identifier clockwise of u in the sorted oracle order
				return byID[k].Self.ID > u.Self.ID
			})
			if j == len(byID) {
				j = 0 // wrap: the nearest clockwise member is the smallest ID
			}
			w := byID[j]
			if w.Self.Addr == u.Self.Addr || w.Self.Addr == sAddr {
				continue
			}
			if space.BetweenOpen(w.Self.ID, u.Self.ID, s.Self.ID) {
				out = append(out, Violation{ViolationOrderedRing, u.Self,
					fmt.Sprintf("successor %s skips ring member %s", s.Self, w.Self)})
			}
		}
	}

	// Ownership partition: live members sorted by identifier define the
	// oracle arcs; each member's predecessor pointer must match its oracle
	// predecessor (complete partition), may lag behind a dead node inside
	// its oracle arc (gap, transient), and must never reach past the oracle
	// predecessor (overlap — two nodes would accept the same key).
	for i, s := range order {
		oracle := order[(i+len(order)-1)%len(order)].Self
		p := s.Pred
		switch {
		case p.IsZero():
			out = append(out, Violation{ViolationOwnershipOverlap, s.Self,
				"zero predecessor claims the entire ring"})
		case p.Addr == s.Self.Addr:
			out = append(out, Violation{ViolationOwnershipOverlap, s.Self,
				"self-predecessor claims the entire ring"})
		case p.ID == oracle.ID:
			// Exact partition boundary.
		case space.BetweenOpen(p.ID, oracle.ID, s.Self.ID):
			suspect := ""
			if s.PredSuspect {
				suspect = " (marked suspect)"
			}
			out = append(out, Violation{ViolationOwnershipGap, s.Self,
				fmt.Sprintf("arc starts at dead %s%s, leaving (%s, %s] unowned", p, suspect, oracle, p)})
		default:
			out = append(out, Violation{ViolationOwnershipOverlap, s.Self,
				fmt.Sprintf("claimed arc (%s, %s] reaches past oracle predecessor %s", p, s.Self, oracle)})
		}
	}
	return out
}
