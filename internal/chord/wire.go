package chord

import (
	"squid/internal/transport"
	"squid/internal/wire"
)

// Binary wire codecs for the chord protocol messages — the stabilize and
// finger/lookup RPCs are hot-path (every tick, every query hop), the join
// family rides along so a whole membership handshake stays on one codec.
// Tags live in the chord range (8-31, see wire.TagChordBase) and are
// frozen: a layout change means a new tag, not a new layout under the old
// one. Each codec is equivalence-tested against gob in wire_equiv_test.go.
//
// Layout conventions: ring identifiers (ID) and trace tags are fixed
// 8-byte words; hop counts, loads and element counts are varints;
// addresses are length-prefixed strings; interface-valued payloads go
// through Encoder.Any (registered dynamic types only — an unregistered
// payload falls the whole envelope back to gob at the transport).
const (
	tagFindMsg = wire.TagChordBase + iota
	tagFoundMsg
	tagRouteMsg
	tagJoinReqMsg
	tagJoinAckMsg
	tagJoinNackMsg
	tagJoinConfirmMsg
	tagHandoffMsg
	tagNotifyMsg
	tagGetStateMsg
	tagStateMsg
	tagLeaveMsg
	tagSuccChangedMsg
	tagAppMsg
	tagNodeRef
	tagItems
)

//lint:allocfree
func encodeNodeRef(e *wire.Encoder, r NodeRef) {
	e.U64(uint64(r.ID))
	e.String(string(r.Addr))
}

func decodeNodeRef(d *wire.Decoder) NodeRef {
	id := ID(d.U64())
	addr := d.String()
	return NodeRef{ID: id, Addr: transport.Addr(addr)}
}

//lint:allocfree
func encodeNodeRefs(e *wire.Encoder, rs []NodeRef) {
	e.Uvarint(uint64(len(rs)))
	for _, r := range rs {
		encodeNodeRef(e, r)
	}
}

func decodeNodeRefs(d *wire.Decoder) []NodeRef {
	n := d.Len(9) // 8-byte id + ≥1-byte addr length
	if n == 0 {
		return nil
	}
	out := make([]NodeRef, n)
	for i := range out {
		out[i] = decodeNodeRef(d)
	}
	return out
}

//lint:allocfree
func encodeItems(e *wire.Encoder, items []Item) {
	e.Uvarint(uint64(len(items)))
	for _, it := range items {
		e.U64(uint64(it.Key))
		e.Any(it.Value)
	}
}

func decodeItems(d *wire.Decoder) []Item {
	n := d.Len(9) // 8-byte key + ≥1-byte value tag
	if n == 0 {
		return nil
	}
	out := make([]Item, n)
	for i := range out {
		out[i] = Item{Key: ID(d.U64()), Value: d.Any()}
	}
	return out
}

func init() {
	wire.Register(tagFindMsg, FindMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(FindMsg)
			e.U64(uint64(m.Target))
			e.Uvarint(m.Token)
			e.String(string(m.ReplyTo))
			e.Int(int64(m.Hops))
			e.U64(m.Trace)
		},
		func(d *wire.Decoder) any {
			var m FindMsg
			m.Target = ID(d.U64())
			m.Token = d.Uvarint()
			m.ReplyTo = transport.Addr(d.String())
			m.Hops = int(d.Int())
			m.Trace = d.U64()
			return m
		})
	wire.Register(tagFoundMsg, FoundMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(FoundMsg)
			e.Uvarint(m.Token)
			encodeNodeRef(e, m.Owner)
			encodeNodeRef(e, m.Pred)
			e.Int(int64(m.Hops))
			e.U64(m.Trace)
		},
		func(d *wire.Decoder) any {
			var m FoundMsg
			m.Token = d.Uvarint()
			m.Owner = decodeNodeRef(d)
			m.Pred = decodeNodeRef(d)
			m.Hops = int(d.Int())
			m.Trace = d.U64()
			return m
		})
	wire.Register(tagRouteMsg, RouteMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(RouteMsg)
			e.U64(uint64(m.Key))
			e.String(string(m.From))
			e.Any(m.Payload)
			e.Int(int64(m.Hops))
			e.U64(m.Trace)
		},
		func(d *wire.Decoder) any {
			var m RouteMsg
			m.Key = ID(d.U64())
			m.From = transport.Addr(d.String())
			m.Payload = d.Any()
			m.Hops = int(d.Int())
			m.Trace = d.U64()
			return m
		})
	wire.Register(tagJoinReqMsg, JoinReqMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(JoinReqMsg)
			encodeNodeRef(e, m.New)
			e.Int(int64(m.Hops))
		},
		func(d *wire.Decoder) any {
			var m JoinReqMsg
			m.New = decodeNodeRef(d)
			m.Hops = int(d.Int())
			return m
		})
	wire.Register(tagJoinAckMsg, JoinAckMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(JoinAckMsg)
			encodeNodeRef(e, m.Pred)
			encodeNodeRefs(e, m.Succs)
			encodeItems(e, m.Items)
			e.Bool(m.Deferred)
		},
		func(d *wire.Decoder) any {
			var m JoinAckMsg
			m.Pred = decodeNodeRef(d)
			m.Succs = decodeNodeRefs(d)
			m.Items = decodeItems(d)
			m.Deferred = d.Bool()
			return m
		})
	wire.Register(tagJoinNackMsg, JoinNackMsg{},
		func(e *wire.Encoder, v any) {
			e.String(v.(JoinNackMsg).Reason)
		},
		func(d *wire.Decoder) any {
			return JoinNackMsg{Reason: d.String()}
		})
	wire.Register(tagJoinConfirmMsg, JoinConfirmMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(JoinConfirmMsg)
			encodeNodeRef(e, m.New)
			e.Int(int64(m.Hops))
		},
		func(d *wire.Decoder) any {
			var m JoinConfirmMsg
			m.New = decodeNodeRef(d)
			m.Hops = int(d.Int())
			return m
		})
	wire.Register(tagHandoffMsg, HandoffMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(HandoffMsg)
			encodeNodeRef(e, m.Pred)
			encodeItems(e, m.Items)
		},
		func(d *wire.Decoder) any {
			var m HandoffMsg
			m.Pred = decodeNodeRef(d)
			m.Items = decodeItems(d)
			return m
		})
	wire.Register(tagNotifyMsg, NotifyMsg{},
		func(e *wire.Encoder, v any) {
			encodeNodeRef(e, v.(NotifyMsg).Candidate)
		},
		func(d *wire.Decoder) any {
			return NotifyMsg{Candidate: decodeNodeRef(d)}
		})
	wire.Register(tagGetStateMsg, GetStateMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(GetStateMsg)
			e.Uvarint(m.Token)
			e.String(string(m.ReplyTo))
		},
		func(d *wire.Decoder) any {
			var m GetStateMsg
			m.Token = d.Uvarint()
			m.ReplyTo = transport.Addr(d.String())
			return m
		})
	wire.Register(tagStateMsg, StateMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(StateMsg)
			e.Uvarint(m.Token)
			encodeNodeRef(e, m.Self)
			encodeNodeRef(e, m.Pred)
			encodeNodeRefs(e, m.Succs)
			e.Int(int64(m.Load))
		},
		func(d *wire.Decoder) any {
			var m StateMsg
			m.Token = d.Uvarint()
			m.Self = decodeNodeRef(d)
			m.Pred = decodeNodeRef(d)
			m.Succs = decodeNodeRefs(d)
			m.Load = int(d.Int())
			return m
		})
	wire.Register(tagLeaveMsg, LeaveMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(LeaveMsg)
			encodeNodeRef(e, m.Leaving)
			encodeNodeRef(e, m.Pred)
			encodeItems(e, m.Items)
		},
		func(d *wire.Decoder) any {
			var m LeaveMsg
			m.Leaving = decodeNodeRef(d)
			m.Pred = decodeNodeRef(d)
			m.Items = decodeItems(d)
			return m
		})
	wire.Register(tagSuccChangedMsg, SuccChangedMsg{},
		func(e *wire.Encoder, v any) {
			encodeNodeRef(e, v.(SuccChangedMsg).NewSucc)
		},
		func(d *wire.Decoder) any {
			return SuccChangedMsg{NewSucc: decodeNodeRef(d)}
		})
	wire.Register(tagAppMsg, AppMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(AppMsg)
			e.String(string(m.From))
			e.Any(m.Payload)
		},
		func(d *wire.Decoder) any {
			var m AppMsg
			m.From = transport.Addr(d.String())
			m.Payload = d.Any()
			return m
		})
	wire.Register(tagNodeRef, NodeRef{},
		func(e *wire.Encoder, v any) { encodeNodeRef(e, v.(NodeRef)) },
		func(d *wire.Decoder) any { return decodeNodeRef(d) })
	wire.Register(tagItems, []Item{},
		func(e *wire.Encoder, v any) { encodeItems(e, v.([]Item)) },
		func(d *wire.Decoder) any { return decodeItems(d) })
}
