// Package chord implements the Chord distributed hash table overlay
// (Stoica et al., SIGCOMM 2001) that Squid uses as its index-to-peer
// mapping (paper Section 3.2): an m-bit identifier ring, finger tables for
// O(log N) routing, successor lists for fault tolerance, and the
// join/departure/failure/stabilization protocol.
//
// The protocol is fully asynchronous and message driven: a Node is a
// transport.Handler whose state is confined to its delivery goroutine.
// External callers inject work with Node.Invoke; applications layered on
// the ring (the Squid engine) receive upcalls through the App interface in
// that same goroutine and may therefore call Node methods directly.
package chord

import "fmt"

// ID is an identifier on the Chord ring. Only the low Space.Bits bits are
// significant.
type ID uint64

// Space describes the identifier ring: identifiers are integers modulo
// 2^Bits. Squid sets Bits to the curve's index width so data indices and
// node identifiers share one space.
type Space struct {
	Bits int
}

// NewSpace returns a Space with the given identifier width (1..64 bits).
func NewSpace(bits int) (Space, error) {
	if bits < 1 || bits > 64 {
		return Space{}, fmt.Errorf("chord: identifier space must be 1..64 bits, got %d", bits)
	}
	return Space{Bits: bits}, nil
}

// MustSpace is NewSpace that panics on error.
func MustSpace(bits int) Space {
	s, err := NewSpace(bits)
	if err != nil {
		panic(err)
	}
	return s
}

// Mask returns the bitmask of valid identifier bits.
func (s Space) Mask() uint64 {
	if s.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << s.Bits) - 1
}

// Fold truncates v into the identifier space.
func (s Space) Fold(v uint64) ID { return ID(v & s.Mask()) }

// Add returns a + delta modulo the ring size.
func (s Space) Add(a ID, delta uint64) ID { return s.Fold(uint64(a) + delta) }

// Dist returns the clockwise distance from a to b.
func (s Space) Dist(a, b ID) uint64 { return (uint64(b) - uint64(a)) & s.Mask() }

// Between reports whether x lies in the clockwise-open, right-closed arc
// (a, b]. When a == b the arc is the full ring (every x qualifies),
// matching Chord's single-node convention.
func (s Space) Between(x, a, b ID) bool {
	if a == b {
		return true
	}
	d := s.Dist(a, x)
	return d != 0 && d <= s.Dist(a, b)
}

// BetweenOpen reports whether x lies strictly inside the clockwise arc
// (a, b). When a == b the arc is the full ring minus a.
func (s Space) BetweenOpen(x, a, b ID) bool {
	if x == b {
		return false
	}
	if a == b {
		return x != a
	}
	d := s.Dist(a, x)
	return d != 0 && d < s.Dist(a, b)
}
