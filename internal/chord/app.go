package chord

import "squid/internal/transport"

// Item is a stored (key, value) pair handed between nodes when ring
// ownership changes (joins, departures, load balancing).
type Item struct {
	Key   ID
	Value any
}

// App is the application layered on a ring node — for Squid, the query
// engine and its local store. All upcalls run in the node's delivery
// goroutine, so implementations may call the owning Node's methods directly
// and need no locking of per-node state.
type App interface {
	// Deliver handles an application payload routed to this node as the
	// successor of key.
	Deliver(from transport.Addr, key ID, payload any)
	// HandoverOut removes and returns the locally stored items whose keys
	// lie in the arc (a, b]; they are being transferred to a new owner.
	HandoverOut(a, b ID) []Item
	// HandoverIn ingests items transferred from another node.
	HandoverIn(items []Item)
	// Load reports the node's current storage load (number of keys), used
	// by the load-balancing protocols.
	Load() int
}

// ArcWatcher is an optional App extension: implementations are notified
// whenever the node's predecessor — and therefore its owned arc — changes.
// Squid's replication uses this to promote replicas of keys the node has
// just become responsible for (after a predecessor failed).
type ArcWatcher interface {
	ArcChanged(oldPred, newPred NodeRef)
}

// NopApp is an App that stores nothing and drops deliveries; useful for
// overlay-only tests and tools.
type NopApp struct{}

// Deliver drops the payload.
func (NopApp) Deliver(transport.Addr, ID, any) {}

// HandoverOut returns nothing.
func (NopApp) HandoverOut(ID, ID) []Item { return nil }

// HandoverIn drops the items.
func (NopApp) HandoverIn([]Item) {}

// Load reports zero.
func (NopApp) Load() int { return 0 }
