package chord

import (
	"testing"
	"time"

	"squid/internal/transport"
)

// TestRetryExhaustion: against a black-hole successor every attempt times
// out; the caller sees the final error and the counters record the cost.
func TestRetryExhaustion(t *testing.T) {
	net := transport.NewInproc()
	space := MustSpace(10)
	if _, err := net.Listen("hole", transport.HandlerFunc(func(transport.Addr, any) {})); err != nil {
		t.Fatal(err)
	}
	n := NewNode(Config{
		Space:      space,
		RPCTimeout: 20 * time.Millisecond,
		RPCRetries: 2,
		RPCBackoff: time.Millisecond,
	}, 5, nil)
	ep, err := net.Listen("n", n)
	if err != nil {
		t.Fatal(err)
	}
	n.Start(ep)
	n.Invoke(n.Create)
	net.Quiesce()
	n.Invoke(func() {
		n.InstallRing(NodeRef{ID: 1, Addr: "hole"}, []NodeRef{{ID: 6, Addr: "hole"}}, nil)
	})
	net.Quiesce()

	errs := make(chan error, 2)
	n.Invoke(func() {
		n.FindSuccessor(8, 0, func(m FoundMsg, err error) { errs <- err })
		n.GetStateOf("hole", func(st StateMsg, err error) { errs <- err })
	})
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			t.Fatalf("request %d against black hole should fail after retries", i)
		}
	}
	c := n.Counters()
	if c.FindRetries != 2 || c.FindFailures != 1 {
		t.Errorf("find counters = %+v, want 2 retries / 1 failure", c)
	}
	if c.StateRetries != 2 || c.StateFailures != 1 {
		t.Errorf("state counters = %+v, want 2 retries / 1 failure", c)
	}
}

// TestRetryRecovers: a lookup whose first attempts are eaten by a lossy
// link succeeds once the fault clears — the backoff policy rides out the
// outage instead of surfacing it.
func TestRetryRecovers(t *testing.T) {
	net := transport.NewFaulty(transport.NewInproc(), transport.FaultConfig{Seed: 9})
	space := MustSpace(10)

	mk := func(name transport.Addr, id ID) *Node {
		n := NewNode(Config{
			Space:      space,
			RPCTimeout: 25 * time.Millisecond,
			RPCRetries: 8,
			RPCBackoff: 5 * time.Millisecond,
		}, id, nil)
		ep, err := net.Listen(name, n)
		if err != nil {
			t.Fatal(err)
		}
		n.Start(ep)
		return n
	}
	a := mk("a", 100)
	b := mk("b", 600)
	a.Invoke(func() {
		a.InstallRing(b.Self(), []NodeRef{b.Self()}, nil)
	})
	b.Invoke(func() {
		b.InstallRing(a.Self(), []NodeRef{a.Self()}, nil)
	})
	net.Quiesce()

	// Everything a sends to b vanishes; the find must fail over to the
	// retry path rather than resolve.
	net.SetLinkDrop("a", "b", 1.0)
	done := make(chan FoundMsg, 1)
	a.Invoke(func() {
		a.FindSuccessor(500, 0, func(m FoundMsg, err error) {
			if err != nil {
				t.Errorf("find failed despite retries: %v", err)
			}
			done <- m
		})
	})
	// Let at least one attempt time out, then heal the link.
	time.Sleep(40 * time.Millisecond)
	net.SetLinkDrop("a", "b", 0)

	select {
	case m := <-done:
		if m.Owner.ID != 600 {
			t.Fatalf("successor(500) = %v, want id 600", m.Owner)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("find never completed after the link healed")
	}
	if c := a.Counters(); c.FindRetries == 0 {
		t.Error("recovery consumed no retries — fault was not exercised")
	}
}
