package chord

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"squid/internal/transport"
)

// TestConcurrentJoins starts many nodes joining through the same seed at
// once. Concurrent admissions race (ownership moves mid-join, requests are
// forwarded or nacked); after stabilization the ring must contain every
// successfully joined node exactly once, in order, with no lost data
// (there is none yet) and correct neighbors.
func TestConcurrentJoins(t *testing.T) {
	net := transport.NewInproc()
	space := MustSpace(16)
	seedApp := newKVApp(space)
	seed := NewNode(Config{Space: space}, 1, seedApp)
	ep, err := net.Listen("seed", seed)
	if err != nil {
		t.Fatal(err)
	}
	seed.Start(ep)
	seed.Invoke(seed.Create)
	net.Quiesce()

	const joiners = 24
	rng := rand.New(rand.NewSource(4))
	nodes := []*Node{seed}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var failed int
	for i := 0; i < joiners; i++ {
		n := NewNode(Config{Space: space}, ID(rng.Uint64()&0xffff), newKVApp(space))
		nep, err := net.Listen(transport.Addr(fmt.Sprintf("j%d", i)), n)
		if err != nil {
			t.Fatal(err)
		}
		n.Start(nep)
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := make(chan error, 1)
			n.Invoke(func() { n.Join("seed", func(e error) { done <- e }) })
			if e := <-done; e != nil {
				// Concurrent churn can legitimately refuse a join (stale
				// owner beyond the hop bound, or an id collision); count it.
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			mu.Lock()
			nodes = append(nodes, n)
			mu.Unlock()
		}()
	}
	wg.Wait()
	net.Quiesce()

	if len(nodes) < joiners/2 {
		t.Fatalf("only %d/%d joins succeeded (%d refused)", len(nodes)-1, joiners, failed)
	}
	t.Logf("%d joins succeeded, %d refused", len(nodes)-1, failed)

	// Stabilize until consistent.
	for round := 0; round < 30; round++ {
		for _, n := range nodes {
			n := n
			n.Invoke(func() {
				n.CheckPredecessor()
				n.Stabilize()
				n.FixFingers()
			})
		}
		net.Quiesce()
	}

	// Verify ring order.
	sorted := append([]*Node(nil), nodes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Self().ID < sorted[j-1].Self().ID; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i, n := range sorted {
		next := sorted[(i+1)%len(sorted)]
		prev := sorted[(i+len(sorted)-1)%len(sorted)]
		st := make(chan [2]NodeRef, 1)
		n.Invoke(func() { st <- [2]NodeRef{n.Pred(), n.Succ()} })
		got := <-st
		if got[1].Addr != next.Self().Addr {
			t.Errorf("node %s succ=%s want %s", n.Self(), got[1], next.Self())
		}
		if got[0].Addr != prev.Self().Addr {
			t.Errorf("node %s pred=%s want %s", n.Self(), got[0], prev.Self())
		}
	}

	// Routing resolves to the oracle owner for random keys.
	for trial := 0; trial < 60; trial++ {
		key := ID(rng.Uint64() & 0xffff)
		want := sorted[0]
		bestDist := space.Dist(key, sorted[0].Self().ID)
		for _, n := range sorted[1:] {
			if d := space.Dist(key, n.Self().ID); d < bestDist {
				want, bestDist = n, d
			}
		}
		src := nodes[rng.Intn(len(nodes))]
		ch := make(chan FoundMsg, 1)
		src.Invoke(func() {
			src.FindSuccessor(key, 0, func(m FoundMsg, err error) { ch <- m })
		})
		if got := <-ch; got.Owner.Addr != want.Self().Addr {
			t.Errorf("successor(%d) = %s, want %s", key, got.Owner, want.Self())
		}
	}
}

// TestSimultaneousLeaves makes several non-adjacent nodes leave at the
// same time; the ring must splice itself back together.
func TestSimultaneousLeaves(t *testing.T) {
	ids := []uint64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	r := newTestRing(t, 12, ids)
	n0 := r.nodes[0]
	for k := uint64(0); k < 4096; k += 64 {
		key := ID(k)
		n0.Invoke(func() { n0.Route(key, "x", 0) })
	}
	r.net.Quiesce()
	keysBefore := 0
	for _, app := range r.apps {
		keysBefore += app.Load()
	}

	// Nodes at indices 1, 4, 7 leave concurrently (non-adjacent ids 200,
	// 500, 800).
	for _, i := range []int{1, 4, 7} {
		n := r.nodes[i]
		n.Invoke(n.Leave)
	}
	r.net.Quiesce()

	var live []*Node
	for i, n := range r.nodes {
		if i != 1 && i != 4 && i != 7 {
			live = append(live, n)
		}
	}
	for round := 0; round < 10; round++ {
		for _, n := range live {
			n := n
			n.Invoke(func() { n.CheckPredecessor(); n.Stabilize(); n.FixFingers() })
		}
		r.net.Quiesce()
	}
	r.verifyRing(live)

	keysAfter := 0
	for _, n := range live {
		keysAfter += r.apps[n.Self().Addr].Load()
	}
	if keysAfter != keysBefore {
		t.Errorf("simultaneous leaves lost keys: %d -> %d", keysBefore, keysAfter)
	}
}

// TestRPCTimeouts exercises the timer path: finds and state probes against
// a black-hole peer must fail with ErrTimeout rather than leak.
func TestRPCTimeouts(t *testing.T) {
	net := transport.NewInproc()
	space := MustSpace(10)
	// A handler that swallows everything: the black hole.
	_, err := net.Listen("hole", transport.HandlerFunc(func(transport.Addr, any) {}))
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(Config{Space: space, RPCTimeout: 30 * 1e6}, 5, nil) // 30ms
	ep, err := net.Listen("n", n)
	if err != nil {
		t.Fatal(err)
	}
	n.Start(ep)
	n.Invoke(n.Create)
	net.Quiesce()

	// Install the black hole as successor so probes go nowhere.
	n.Invoke(func() {
		n.InstallRing(NodeRef{ID: 1, Addr: "hole"}, []NodeRef{{ID: 6, Addr: "hole"}}, nil)
	})
	net.Quiesce()

	errs := make(chan error, 2)
	n.Invoke(func() {
		// Target 8 is outside the node's own arc (1, 5], so the find must
		// be forwarded into the black hole.
		n.FindSuccessor(8, 0, func(m FoundMsg, err error) { errs <- err })
		n.GetStateOf("hole", func(st StateMsg, err error) { errs <- err })
	})
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			t.Errorf("request %d against black hole should time out", i)
		}
	}
}
