package chord

import (
	"errors"
	"fmt"
	"testing"

	"squid/internal/transport"
)

// Deterministic reproductions of the Zave counterexamples ("How To Make
// Chord Correct", arXiv:1502.06461): each scenario runs twice, once under
// Config.LegacyRules (the original pseudo-code) where the invariant checker
// must catch the failure, and once under the corrected rules (the default)
// where the same schedule must stay violation-free.

// regRing wires white-box nodes onto one in-process network so tests can
// drive individual protocol steps and inspect confined state.
type regRing struct {
	t      *testing.T
	net    *transport.Inproc
	space  Space
	legacy bool
	nodes  []*Node
	apps   map[transport.Addr]*kvApp
}

func newRegRing(t *testing.T, legacy bool) *regRing {
	t.Helper()
	return &regRing{
		t:      t,
		net:    transport.NewInproc(),
		space:  MustSpace(10),
		legacy: legacy,
		apps:   map[transport.Addr]*kvApp{},
	}
}

func (r *regRing) node(id uint64, addr string) *Node {
	r.t.Helper()
	app := newKVApp(r.space)
	n := NewNode(Config{Space: r.space, LegacyRules: r.legacy}, ID(id), app)
	ep, err := r.net.Listen(transport.Addr(addr), n)
	if err != nil {
		r.t.Fatal(err)
	}
	n.Start(ep)
	r.apps[n.Self().Addr] = app
	r.nodes = append(r.nodes, n)
	return n
}

// install seeds a node's neighbor state through the oracle hook, in the
// node's goroutine.
func (r *regRing) install(n *Node, pred NodeRef, succs ...NodeRef) {
	r.t.Helper()
	if err := n.Invoke(func() { n.InstallRing(pred, succs, nil) }); err != nil {
		r.t.Fatal(err)
	}
	r.net.Quiesce()
}

// snapshots collects the state of every reachable node.
func (r *regRing) snapshots(nodes ...*Node) []Snapshot {
	r.t.Helper()
	var out []Snapshot
	for _, n := range nodes {
		ch := make(chan Snapshot, 1)
		if err := n.Invoke(func() { ch <- n.Snapshot() }); err != nil {
			continue // killed: not a member
		}
		out = append(out, <-ch)
	}
	return out
}

func (r *regRing) check(nodes ...*Node) []Violation {
	r.t.Helper()
	return CheckRing(r.space, r.snapshots(nodes...))
}

// store routes value under key and quiesces.
func (r *regRing) store(via *Node, key uint64) {
	r.t.Helper()
	if err := via.Invoke(func() { via.Route(ID(key), fmt.Sprintf("v%d", key), 0) }); err != nil {
		r.t.Fatal(err)
	}
	r.net.Quiesce()
}

func (r *regRing) pred(n *Node) NodeRef {
	r.t.Helper()
	ch := make(chan NodeRef, 1)
	if err := n.Invoke(func() { ch <- n.Pred() }); err != nil {
		r.t.Fatal(err)
	}
	return <-ch
}

func (r *regRing) holds(n *Node, key uint64) bool {
	r.t.Helper()
	app := r.apps[n.Self().Addr]
	app.mu.Lock()
	defer app.mu.Unlock()
	_, ok := app.store[ID(key)]
	return ok
}

// TestRegressionDeadSuccessorAdoption is Zave's stabilization
// counterexample: node s still names a dead node x as predecessor. The
// original rule makes u adopt x as successor sight unseen, so u's notify
// forever chases the corpse and s never learns u exists — the ownership gap
// at s persists indefinitely. The corrected rule probes x first, rejects
// it, and rectify at s installs u within one round.
func TestRegressionDeadSuccessorAdoption(t *testing.T) {
	run := func(t *testing.T, legacy bool) (healedAt int, final []Violation, rejects uint64) {
		r := newRegRing(t, legacy)
		u := r.node(100, "u")
		s := r.node(500, "s")
		dead := ref(300, "x") // never listened: every send to it fails
		r.install(u, s.Self(), s.Self(), u.Self())
		r.install(s, dead, u.Self(), s.Self())

		// Stabilize+notify only — Zave's counterexample needs no failures
		// beyond the stale pointer, and the predecessor probe would let the
		// legacy rules escape through their own zero-pred over-claim.
		healedAt = -1
		for round := 1; round <= 6; round++ {
			for _, n := range []*Node{u, s} {
				n := n
				if err := n.Invoke(n.Stabilize); err != nil {
					t.Fatal(err)
				}
				r.net.Quiesce()
			}
			if healedAt < 0 && r.pred(s).Addr == u.Self().Addr {
				healedAt = round
			}
		}
		return healedAt, r.check(u, s), u.Counters().SuccRejects
	}

	t.Run("legacy", func(t *testing.T) {
		healedAt, final, _ := run(t, true)
		if healedAt >= 0 {
			t.Fatalf("legacy rules unexpectedly healed at round %d: the notify chain "+
				"should chase the dead candidate forever", healedAt)
		}
		if len(final) == 0 {
			t.Fatal("legacy rules left no violation: expected a persistent ownership gap")
		}
	})
	t.Run("corrected", func(t *testing.T) {
		healedAt, final, rejects := run(t, false)
		if healedAt < 0 || healedAt > 2 {
			t.Fatalf("corrected rules healed at round %d, want within 2", healedAt)
		}
		if len(final) != 0 {
			t.Fatalf("corrected rules left violations: %v", final)
		}
		if rejects == 0 {
			t.Fatal("corrected rules should have counted the rejected dead candidate")
		}
	})
}

// TestRegressionUnilateralPredClear kills a node and runs the predecessor
// probe. The original rule clears the dead predecessor to zero, and a zero
// predecessor owns the entire ring — an ownership overlap every concurrent
// lookup can observe. The corrected rule only marks the boundary suspect
// (a transient gap, never an over-claim) until rectify installs the live
// replacement.
func TestRegressionUnilateralPredClear(t *testing.T) {
	run := func(t *testing.T, legacy bool) (afterProbe, final []Violation) {
		r := newRegRing(t, legacy)
		a := r.node(100, "a")
		b := r.node(500, "b")
		c := r.node(900, "c")
		r.install(a, c.Self(), b.Self(), c.Self(), a.Self())
		r.install(b, a.Self(), c.Self(), a.Self(), b.Self())
		r.install(c, b.Self(), a.Self(), b.Self(), c.Self())

		r.net.Kill(a.Self().Addr)
		for _, n := range []*Node{b, c} {
			n := n
			if err := n.Invoke(n.CheckPredecessor); err != nil {
				t.Fatal(err)
			}
		}
		r.net.Quiesce()
		afterProbe = r.check(b, c)

		for round := 0; round < 4; round++ {
			for _, n := range []*Node{b, c} {
				n := n
				if err := n.Invoke(func() {
					n.CheckPredecessor()
					n.Stabilize()
				}); err != nil {
					t.Fatal(err)
				}
				r.net.Quiesce()
			}
		}
		return afterProbe, r.check(b, c)
	}

	t.Run("legacy", func(t *testing.T) {
		afterProbe, _ := run(t, true)
		if len(HardViolations(afterProbe)) == 0 {
			t.Fatalf("legacy probe should over-claim via a zero predecessor, got %v", afterProbe)
		}
	})
	t.Run("corrected", func(t *testing.T) {
		afterProbe, final := run(t, false)
		if hard := HardViolations(afterProbe); len(hard) != 0 {
			t.Fatalf("corrected probe produced hard violations: %v", hard)
		}
		if len(final) != 0 {
			t.Fatalf("corrected rules did not heal cleanly: %v", final)
		}
	})
}

// TestRegressionJoinSpliceUnconfirmed is the lost-joiner counterexample: a
// joiner requests admission and then freezes (its endpoint swallows every
// message). The original rule splices it in and ships the arc's items
// before any sign of life — the items vanish and the owner's predecessor
// points at a ghost. The corrected three-phase join changes nothing until
// the joiner confirms, so the frozen joiner costs nothing.
func TestRegressionJoinSpliceUnconfirmed(t *testing.T) {
	keys := []uint64{150, 200, 250, 300, 400}
	arcKeys := []uint64{150, 200, 250, 300} // inside (100, 300], the ghost's would-be arc

	run := func(t *testing.T, legacy bool) (*regRing, *Node, *Node) {
		r := newRegRing(t, legacy)
		a := r.node(100, "a")
		b := r.node(500, "b")
		r.install(a, b.Self(), b.Self(), a.Self())
		r.install(b, a.Self(), a.Self(), b.Self())
		for _, k := range keys {
			r.store(b, k)
		}
		// The frozen joiner: listening, so sends to it succeed, but it
		// never acts on anything.
		if _, err := r.net.Listen("hole", transport.HandlerFunc(func(transport.Addr, any) {})); err != nil {
			t.Fatal(err)
		}
		if err := b.Invoke(func() { b.handleJoinReq(JoinReqMsg{New: ref(300, "hole")}) }); err != nil {
			t.Fatal(err)
		}
		r.net.Quiesce()
		return r, a, b
	}

	t.Run("legacy", func(t *testing.T) {
		r, a, b := run(t, true)
		if got := r.pred(b); got.Addr != "hole" {
			t.Fatalf("legacy admission should have spliced the ghost, pred = %s", got)
		}
		for _, k := range arcKeys {
			if r.holds(b, k) {
				t.Fatalf("legacy admission should have shipped key %d into the hole", k)
			}
		}
		if vs := r.check(a, b); len(vs) == 0 {
			t.Fatal("legacy admission left no violation: expected an ownership gap at the ghost boundary")
		}
	})
	t.Run("corrected", func(t *testing.T) {
		r, a, b := run(t, false)
		if got := r.pred(b); got.Addr != a.Self().Addr {
			t.Fatalf("corrected admission must not splice before confirmation, pred = %s", got)
		}
		for _, k := range keys {
			if !r.holds(b, k) {
				t.Fatalf("corrected admission lost key %d without a confirmed joiner", k)
			}
		}
		if vs := r.check(a, b); len(vs) != 0 {
			t.Fatalf("corrected admission left violations: %v", vs)
		}
	})
}

// TestJoinReqReclaimJoinerVanished covers the legacy reclaim path: the
// joiner's endpoint is gone by admission time (send fails), so the owner
// must restore its predecessor and take its items back.
func TestJoinReqReclaimJoinerVanished(t *testing.T) {
	keys := []uint64{150, 250, 300}
	r := newRegRing(t, true)
	a := r.node(100, "a")
	b := r.node(500, "b")
	r.install(a, b.Self(), b.Self(), a.Self())
	r.install(b, a.Self(), a.Self(), b.Self())
	for _, k := range keys {
		r.store(b, k)
	}
	if err := b.Invoke(func() { b.handleJoinReq(JoinReqMsg{New: ref(300, "ghost")}) }); err != nil {
		t.Fatal(err)
	}
	r.net.Quiesce()
	if got := r.pred(b); got.Addr != a.Self().Addr {
		t.Fatalf("pred not restored after vanished joiner: %s", got)
	}
	for _, k := range keys {
		if !r.holds(b, k) {
			t.Fatalf("key %d not reclaimed after vanished joiner", k)
		}
	}
	if vs := r.check(a, b); len(vs) != 0 {
		t.Fatalf("reclaim left violations: %v", vs)
	}
}

// TestConfirmReclaimJoinerVanished is the corrected-rules twin: the joiner
// confirmed but dies before the handoff lands. The owner reclaims the items
// and keeps its predecessor.
func TestConfirmReclaimJoinerVanished(t *testing.T) {
	keys := []uint64{150, 250, 300}
	r := newRegRing(t, false)
	a := r.node(100, "a")
	b := r.node(500, "b")
	r.install(a, b.Self(), b.Self(), a.Self())
	r.install(b, a.Self(), a.Self(), b.Self())
	for _, k := range keys {
		r.store(b, k)
	}
	if err := b.Invoke(func() { b.handleJoinConfirm(JoinConfirmMsg{New: ref(300, "ghost")}) }); err != nil {
		t.Fatal(err)
	}
	r.net.Quiesce()
	if got := r.pred(b); got.Addr != a.Self().Addr {
		t.Fatalf("pred changed after failed handoff: %s", got)
	}
	for _, k := range keys {
		if !r.holds(b, k) {
			t.Fatalf("key %d not reclaimed after failed handoff", k)
		}
	}
	if vs := r.check(a, b); len(vs) != 0 {
		t.Fatalf("failed handoff left violations: %v", vs)
	}
}

// TestJoinAckMalformedGuard: an ack whose successor list names no usable
// peer must refuse the join instead of silently starting a shadow ring
// whose only successor is the joiner itself.
func TestJoinAckMalformedGuard(t *testing.T) {
	r := newRegRing(t, false)
	app := newKVApp(r.space)
	j := NewNode(Config{Space: r.space}, 300, app)
	ep, err := r.net.Listen("j", j)
	if err != nil {
		t.Fatal(err)
	}
	j.Start(ep)

	for _, tc := range []struct {
		name  string
		succs []NodeRef
	}{
		{"empty", nil},
		{"all-zero", []NodeRef{{}, {}}},
		{"only-self", []NodeRef{{ID: 300, Addr: "j"}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			if err := j.Invoke(func() {
				j.joinDone = func(err error) { done <- err }
				j.handleJoinAck(JoinAckMsg{Succs: tc.succs})
			}); err != nil {
				t.Fatal(err)
			}
			if err := <-done; !errors.Is(err, ErrJoinRefused) {
				t.Fatalf("malformed ack: err = %v, want ErrJoinRefused", err)
			}
			ch := make(chan bool, 1)
			if err := j.Invoke(func() { ch <- j.Running() }); err != nil {
				t.Fatal(err)
			}
			if <-ch {
				t.Fatal("node started running on a malformed ack")
			}
		})
	}
}

// TestLeaveFallsBackThroughSuccList: the immediate successor is dead when a
// node leaves gracefully, so the leave (and its items) must land on the
// next live successor-list entry instead of being silently lost.
func TestLeaveFallsBackThroughSuccList(t *testing.T) {
	keys := []uint64{150, 250, 300}
	r := newRegRing(t, false)
	a := r.node(100, "a")
	b := r.node(300, "b")
	c := r.node(500, "c")
	d := r.node(900, "d")
	r.install(a, d.Self(), b.Self(), c.Self(), d.Self(), a.Self())
	r.install(b, a.Self(), c.Self(), d.Self(), a.Self(), b.Self())
	r.install(c, b.Self(), d.Self(), a.Self(), b.Self(), c.Self())
	r.install(d, c.Self(), a.Self(), b.Self(), c.Self(), d.Self())
	for _, k := range keys {
		r.store(b, k)
	}

	r.net.Kill(c.Self().Addr) // b's immediate successor dies first
	if err := b.Invoke(b.Leave); err != nil {
		t.Fatal(err)
	}
	r.net.Quiesce()

	for _, k := range keys {
		if !r.holds(d, k) {
			t.Fatalf("key %d did not reach the fallback successor", k)
		}
	}
	// The leaver's predecessor was told about the surviving successor.
	ch := make(chan NodeRef, 1)
	if err := a.Invoke(func() { ch <- a.Succ() }); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; got.Addr != d.Self().Addr {
		t.Fatalf("predecessor's successor = %s, want the fallback %s", got, d.Self())
	}
}

// TestLeaveKeepsItemsWhenRingGone: every successor-list entry is dead at
// leave time. The items must stay in the local store rather than vanish.
func TestLeaveKeepsItemsWhenRingGone(t *testing.T) {
	keys := []uint64{150, 250, 300}
	r := newRegRing(t, false)
	a := r.node(100, "a")
	b := r.node(300, "b")
	c := r.node(500, "c")
	r.install(a, c.Self(), b.Self(), c.Self(), a.Self())
	r.install(b, a.Self(), c.Self(), a.Self(), b.Self())
	r.install(c, b.Self(), a.Self(), b.Self(), c.Self())
	for _, k := range keys {
		r.store(b, k)
	}

	r.net.Kill(a.Self().Addr)
	r.net.Kill(c.Self().Addr)
	if err := b.Invoke(b.Leave); err != nil {
		t.Fatal(err)
	}
	r.net.Quiesce()

	for _, k := range keys {
		if !r.holds(b, k) {
			t.Fatalf("key %d dropped on the floor with no live successor", k)
		}
	}
}
