package chord

import (
	"fmt"

	"squid/internal/transport"
)

// NodeRef names a ring node: its identifier and transport address. The zero
// value means "unknown".
type NodeRef struct {
	ID   ID
	Addr transport.Addr
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr == "" }

// String renders the reference as "id@addr".
func (r NodeRef) String() string {
	if r.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("%x@%s", uint64(r.ID), r.Addr)
}

// Protocol messages. All are sent through the transport and registered for
// gob so the same protocol runs over TCP.

// FindMsg asks the ring to locate successor(Target). It is routed greedily
// via finger tables; the owner replies to ReplyTo with a FoundMsg carrying
// Token. Hops counts forwards; Trace tags the originating operation for
// metrics (0 = untraced).
type FindMsg struct {
	Target  ID
	Token   uint64
	ReplyTo transport.Addr
	Hops    int
	Trace   uint64
}

// FoundMsg answers a FindMsg: Owner is successor(Target), Pred the owner's
// predecessor at reply time. Trace carries the originating FindMsg's trace
// tag for metrics.
type FoundMsg struct {
	Token uint64
	Owner NodeRef
	Pred  NodeRef
	Hops  int
	Trace uint64
}

// RouteMsg carries an application payload to successor(Key); the owner's
// App.Deliver receives it.
type RouteMsg struct {
	Key     ID
	From    transport.Addr
	Payload any
	Hops    int
	Trace   uint64
}

// JoinReqMsg asks the owner of New.ID to admit New as its predecessor. Hops
// counts forwards when ownership moved mid-join.
type JoinReqMsg struct {
	New  NodeRef
	Hops int
}

// JoinAckMsg admits a joiner: Pred is its new predecessor, Succs its new
// successor list (starting with the admitting node), Items the keys it now
// owns. Deferred marks the corrected three-phase admission: the owner has
// not yet spliced the joiner in, and no items travel with the ack — the
// joiner must confirm liveness with a JoinConfirmMsg, after which ownership
// moves via a HandoffMsg.
type JoinAckMsg struct {
	Pred     NodeRef
	Succs    []NodeRef
	Items    []Item
	Deferred bool
}

// JoinConfirmMsg is phase three of the corrected join: the joiner, now
// listening and linked into the ring as an appendage, asks the owner of its
// identifier to adopt it as predecessor and transfer its arc. Hops bounds
// re-forwarding when ownership moved between ack and confirm.
type JoinConfirmMsg struct {
	New  NodeRef
	Hops int
}

// HandoffMsg transfers ownership of the arc (Pred, receiver's pred] to the
// receiver: Items are the keys now owned by the receiver, Pred the sender's
// view of the arc's lower boundary (used to spill-forward items that belong
// to a predecessor admitted concurrently).
type HandoffMsg struct {
	Pred  NodeRef
	Items []Item
}

// JoinNackMsg refuses a join (identifier collision).
type JoinNackMsg struct {
	Reason string
}

// NotifyMsg tells a node that Candidate believes it is the node's
// predecessor (Chord's stabilization notify).
type NotifyMsg struct {
	Candidate NodeRef
}

// GetStateMsg asks a node for its predecessor and successor list
// (stabilization probe). The reply is a StateMsg with the same Token.
type GetStateMsg struct {
	Token   uint64
	ReplyTo transport.Addr
}

// StateMsg reports a node's neighbor state.
type StateMsg struct {
	Token uint64
	Self  NodeRef
	Pred  NodeRef
	Succs []NodeRef
	Load  int
}

// LeaveMsg announces a voluntary departure to the successor, transferring
// the leaver's items and naming its predecessor so the ring closes.
type LeaveMsg struct {
	Leaving NodeRef
	Pred    NodeRef
	Items   []Item
}

// SuccChangedMsg tells a predecessor that its successor is now NewSucc
// (sent by a leaving node and during joins).
type SuccChangedMsg struct {
	NewSucc NodeRef
}

// AppMsg wraps an application payload sent directly to a known peer
// (bypassing ring routing); the receiving node hands Payload to its App.
// Squid's aggregation optimization uses this to ship a batched sub-query
// to the owner it just probed.
type AppMsg struct {
	From    transport.Addr
	Payload any
}

// invokeMsg injects a closure into the node's delivery goroutine. It never
// crosses the wire: Invoke sends it only to the node's own address, which
// both transports deliver locally.
type invokeMsg struct {
	fn func()
}

func init() {
	transport.Register(FindMsg{})
	transport.Register(FoundMsg{})
	transport.Register(RouteMsg{})
	transport.Register(JoinReqMsg{})
	transport.Register(JoinAckMsg{})
	transport.Register(JoinNackMsg{})
	transport.Register(JoinConfirmMsg{})
	transport.Register(HandoffMsg{})
	transport.Register(NotifyMsg{})
	transport.Register(GetStateMsg{})
	transport.Register(StateMsg{})
	transport.Register(LeaveMsg{})
	transport.Register(SuccChangedMsg{})
	transport.Register(AppMsg{})
	transport.Register([]Item{})
	transport.Register(NodeRef{})
}
