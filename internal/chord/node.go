package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"squid/internal/telemetry"
	"squid/internal/transport"
)

// Config tunes a ring node.
type Config struct {
	// Space is the identifier ring geometry.
	Space Space
	// SuccListLen is the successor-list length kept for fault tolerance
	// (default 4).
	SuccListLen int
	// RPCTimeout bounds how long pending find/state requests wait for a
	// reply before failing (0 disables timeouts; the in-process simulator
	// relies on reliable delivery instead).
	RPCTimeout time.Duration
	// RPCRetries is how many times a failed FindSuccessor or state probe
	// is retried before its error reaches the caller (0 = fail fast).
	// Retries target transient faults: timeouts, unstable-ring lookup
	// failures and unreachable destinations — a stabilization round often
	// repairs the route between attempts.
	RPCRetries int
	// RPCBackoff is the delay before the first retry; each further retry
	// doubles it, with ±50% jitter drawn from a per-node deterministic
	// source. Zero retries immediately.
	RPCBackoff time.Duration
	// Telemetry receives the node's metrics (RPC retries/failures, lookup
	// hops, stabilization activity) as per-node labeled children. Nil gets
	// a private clock-less registry, so instrumentation always has one code
	// path and Node.Counters keeps working standalone.
	Telemetry *telemetry.Registry
	// Clock supplies the node's timers (RPC timeouts, retry backoff). Nil
	// uses the runtime timers (transport.RealClock); the discrete-event
	// simulator injects its virtual clock so timeouts and backoff advance
	// in virtual time.
	Clock transport.Clock
	// LegacyRules reverts membership to the original Chord pseudo-code:
	// successors adopted without a reachability probe, predecessors cleared
	// unilaterally when a probe fails, and joins that splice ownership before
	// the joiner confirms it is live. Zave ("How To Make Chord Correct",
	// arXiv:1502.06461) showed these rules break the ring invariants under
	// concurrent churn; the toggle exists only so the regression tests can
	// demonstrate the failures the corrected rules (the default) prevent.
	LegacyRules bool
}

func (c Config) withDefaults() Config {
	if c.SuccListLen <= 0 {
		c.SuccListLen = 4
	}
	if c.Clock == nil {
		c.Clock = transport.RealClock{}
	}
	return c
}

// ErrJoinRefused reports that the ring refused a join (identifier
// collision).
var ErrJoinRefused = errors.New("chord: join refused")

// ErrTimeout reports that an operation's reply did not arrive in time.
var ErrTimeout = errors.New("chord: operation timed out")

// ErrLookupFailed reports that a lookup was dropped by the ring, typically
// because churn left a transient routing loop; retry after stabilization.
var ErrLookupFailed = errors.New("chord: lookup failed (ring unstable)")

// Node is one Chord peer.
//
// Concurrency contract: a Node's state is confined to its delivery
// goroutine. Every method except Self, Invoke and Deliver must be called
// from that goroutine — i.e. from an App upcall, from a callback passed to
// one of the Node's own async methods, or from a closure passed to Invoke.
type Node struct {
	cfg  Config
	self NodeRef
	app  App
	ep   transport.Endpoint

	pred    NodeRef
	succs   []NodeRef
	fingers []NodeRef
	fixNext int

	// predSuspect marks the predecessor as unreachable without forgetting
	// it. Under the corrected rules a node never clears its predecessor
	// outright — a zero predecessor claims ownership of the whole ring,
	// which overlaps every other node's arc — so failed probes only raise
	// this flag, and rectify (handleNotify) adopts the next live candidate
	// unconditionally while it is set.
	predSuspect bool

	nextToken     uint64
	pendingFinds  map[uint64]*pendingCall[FoundMsg]
	pendingStates map[uint64]*pendingCall[StateMsg]
	joinDone      func(error)

	// rng drives retry jitter; seeded by the node identifier so backoff
	// schedules are deterministic per node. Confined to the delivery
	// goroutine like the rest of the mutable state.
	rng *rand.Rand
	ctr nodeMetrics

	running bool
}

type pendingCall[T any] struct {
	cb    func(T, error)
	timer transport.Timer
}

// NewNode creates a node with the given identifier. app may be nil (NopApp).
func NewNode(cfg Config, id ID, app App) *Node {
	cfg = cfg.withDefaults()
	if app == nil {
		app = NopApp{}
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry(nil)
	}
	folded := cfg.Space.Fold(uint64(id))
	return &Node{
		cfg:           cfg,
		self:          NodeRef{ID: folded},
		app:           app,
		fingers:       make([]NodeRef, cfg.Space.Bits),
		pendingFinds:  make(map[uint64]*pendingCall[FoundMsg]),
		pendingStates: make(map[uint64]*pendingCall[StateMsg]),
		rng:           rand.New(rand.NewSource(int64(uint64(id)) + 1)),
		ctr:           newNodeMetrics(cfg.Telemetry, folded),
	}
}

// Start attaches the node to its endpoint. It must be called before the
// node sends or receives any traffic (Listen on the transport with the node
// as handler, then Start with the returned endpoint).
func (n *Node) Start(ep transport.Endpoint) {
	n.ep = ep
	n.self.Addr = ep.Addr()
}

// Self returns the node's own reference. Safe from any goroutine: the
// reference is immutable after Start.
func (n *Node) Self() NodeRef { return n.self }

// Space returns the ring geometry.
func (n *Node) Space() Space { return n.cfg.Space }

// App returns the application attached to the node.
func (n *Node) App() App { return n.app }

// Invoke schedules fn to run in the node's delivery goroutine. Safe from
// any goroutine; this is how external drivers call the goroutine-confined
// API.
func (n *Node) Invoke(fn func()) error {
	return n.ep.Send(n.self.Addr, invokeMsg{fn: fn})
}

// Deliver implements transport.Handler; it dispatches protocol messages.
func (n *Node) Deliver(from transport.Addr, msg any) {
	switch m := msg.(type) {
	case invokeMsg:
		m.fn()
	case FindMsg:
		n.handleFind(m)
	case FoundMsg:
		n.handleFound(m)
	case RouteMsg:
		n.handleRoute(m)
	case JoinReqMsg:
		n.handleJoinReq(m)
	case JoinAckMsg:
		n.handleJoinAck(m)
	case JoinNackMsg:
		n.handleJoinNack(m)
	case JoinConfirmMsg:
		n.handleJoinConfirm(m)
	case HandoffMsg:
		n.handleHandoff(m)
	case NotifyMsg:
		n.handleNotify(m)
	case GetStateMsg:
		n.handleGetState(m)
	case StateMsg:
		n.handleState(m)
	case LeaveMsg:
		n.handleLeave(m)
	case SuccChangedMsg:
		n.handleSuccChanged(m)
	case AppMsg:
		n.app.Deliver(m.From, n.self.ID, m.Payload)
	}
}

// SendApp sends an application payload directly to the peer at to,
// bypassing ring routing; it arrives at that peer's App.Deliver. Reports
// whether the transport accepted the message.
func (n *Node) SendApp(to transport.Addr, payload any) bool {
	return n.send(to, AppMsg{From: n.self.Addr, Payload: payload})
}

// Running reports whether the node is an active ring member.
func (n *Node) Running() bool { return n.running }

// Pred returns the current predecessor (zero if unknown).
func (n *Node) Pred() NodeRef { return n.pred }

// Succ returns the current immediate successor (self on a singleton ring).
func (n *Node) Succ() NodeRef {
	if len(n.succs) == 0 {
		return n.self
	}
	return n.succs[0]
}

// SuccList returns a copy of the successor list.
func (n *Node) SuccList() []NodeRef { return append([]NodeRef(nil), n.succs...) }

// Fingers returns a copy of the finger table.
func (n *Node) Fingers() []NodeRef { return append([]NodeRef(nil), n.fingers...) }

// Create initializes the node as the first member of a new ring.
func (n *Node) Create() {
	n.setPred(n.self)
	n.succs = []NodeRef{n.self}
	for i := range n.fingers {
		n.fingers[i] = n.self
	}
	n.running = true
}

// InstallRing overwrites the node's neighbor state directly. It is the
// oracle-bootstrap hook used by the simulator to construct large static
// rings without running O(N log^2 N) join messages, exactly as the paper's
// simulator does; the protocol paths (Join/Leave/Stabilize) remain the
// source of truth for dynamic behaviour.
func (n *Node) InstallRing(pred NodeRef, succs, fingers []NodeRef) {
	n.setPred(pred)
	n.succs = append([]NodeRef(nil), succs...)
	if len(n.succs) == 0 {
		n.succs = []NodeRef{n.self}
	}
	copy(n.fingers, fingers)
	for i := range n.fingers {
		if n.fingers[i].IsZero() {
			n.fingers[i] = n.succs[0]
		}
	}
	n.running = true
}

// Owns reports whether this node is the successor of key, i.e. key lies in
// (pred, self].
func (n *Node) Owns(key ID) bool {
	if n.pred.IsZero() {
		return true
	}
	return n.cfg.Space.Between(key, n.pred.ID, n.self.ID)
}

// maxHops bounds how many times a routed message may be forwarded. A
// consistent ring resolves any target within Space.Bits hops; the slack
// absorbs detours around failures. Messages exceeding it are dropped (finds
// reply with a zero Owner) — transient routing loops during churn must not
// live forever, or stabilization could never catch up.
func (n *Node) maxHops() int { return 3*n.cfg.Space.Bits + 32 }

// setPred updates the predecessor, notifying an ArcWatcher application of
// the ownership change. Any change clears the suspicion flag: the new
// reference has not failed a probe yet.
func (n *Node) setPred(p NodeRef) {
	if n.pred == p {
		return
	}
	old := n.pred
	n.pred = p
	n.predSuspect = false
	if aw, ok := n.app.(ArcWatcher); ok {
		aw.ArcChanged(old, p)
	}
}

// token issues a correlation token for request/reply exchanges.
func (n *Node) token() uint64 {
	n.nextToken++
	return n.nextToken
}

// send transmits msg, reporting whether the destination accepted it.
func (n *Node) send(to transport.Addr, msg any) bool {
	return n.ep.Send(to, msg) == nil
}

// closestPreceding returns the live candidate most closely preceding
// target from the finger table and successor list (Chord's
// closest_preceding_node).
func (n *Node) closestPreceding(target ID) NodeRef {
	sp := n.cfg.Space
	best := NodeRef{}
	bestDist := uint64(0)
	consider := func(c NodeRef) {
		if c.IsZero() || c.ID == n.self.ID {
			return
		}
		if !sp.BetweenOpen(c.ID, n.self.ID, target) {
			return
		}
		if d := sp.Dist(n.self.ID, c.ID); best.IsZero() || d > bestDist {
			best, bestDist = c, d
		}
	}
	for _, f := range n.fingers {
		consider(f)
	}
	for _, s := range n.succs {
		consider(s)
	}
	if best.IsZero() {
		return n.Succ()
	}
	return best
}

// forwardToward sends msg one hop toward successor(target), skipping dead
// candidates. It reports whether the message was handed to someone.
func (n *Node) forwardToward(target ID, msg any) bool {
	// Primary candidate, then progressively safer fallbacks.
	tried := map[transport.Addr]bool{n.self.Addr: true}
	try := func(c NodeRef) bool {
		if c.IsZero() || tried[c.Addr] {
			return false
		}
		tried[c.Addr] = true
		if n.send(c.Addr, msg) {
			return true
		}
		n.dropDead(c)
		return false
	}
	if sp := n.cfg.Space; sp.Between(target, n.self.ID, n.Succ().ID) {
		if try(n.Succ()) {
			return true
		}
	}
	if try(n.closestPreceding(target)) {
		return true
	}
	// Fall back through the successor list.
	for _, s := range n.SuccList() {
		if try(s) {
			return true
		}
	}
	// Last resort: any live finger.
	for _, f := range n.Fingers() {
		if try(f) {
			return true
		}
	}
	return false
}

// dropDead removes a dead reference from the node's neighbor state. Under
// the corrected rules the predecessor is only marked suspect, never cleared:
// a zero predecessor widens this node's arc over everyone else's, and the
// dead boundary stays valid for ownership until rectify installs a live one.
func (n *Node) dropDead(dead NodeRef) {
	if n.pred.Addr == dead.Addr {
		if n.cfg.LegacyRules {
			n.setPred(NodeRef{})
		} else {
			n.predSuspect = true
		}
	}
	kept := n.succs[:0]
	for _, s := range n.succs {
		if s.Addr != dead.Addr {
			kept = append(kept, s)
		}
	}
	n.succs = kept
	if len(n.succs) == 0 {
		n.succs = []NodeRef{n.self}
	}
	for i, f := range n.fingers {
		if f.Addr == dead.Addr {
			n.fingers[i] = n.succs[0]
		}
	}
}

// Route delivers payload to App.Deliver on successor(key). trace tags the
// message for per-operation metrics (0 = untraced).
func (n *Node) Route(key ID, payload any, trace uint64) {
	n.handleRoute(RouteMsg{Key: n.cfg.Space.Fold(uint64(key)), From: n.self.Addr, Payload: payload, Trace: trace})
}

func (n *Node) handleRoute(m RouteMsg) {
	if n.Owns(m.Key) {
		n.app.Deliver(m.From, m.Key, m.Payload)
		return
	}
	if m.Hops >= n.maxHops() {
		return // transient routing loop; drop rather than spin forever
	}
	m.Hops++
	n.ctr.routeForwards.Inc()
	n.forwardToward(m.Key, m)
}

// retryable reports whether a failed RPC is worth repeating: transient
// routing and delivery faults, which stabilization repairs.
func retryable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrLookupFailed) ||
		errors.Is(err, transport.ErrUnreachable)
}

// backoffDelay computes the wait before retry number attempt+1: bounded
// exponential growth from RPCBackoff with ±50% jitter.
func (n *Node) backoffDelay(attempt int) time.Duration {
	if n.cfg.RPCBackoff <= 0 {
		return 0
	}
	if attempt > 16 {
		attempt = 16 // cap the shift; beyond this the ring is gone anyway
	}
	d := n.cfg.RPCBackoff << uint(attempt)
	return time.Duration(float64(d) * (0.5 + n.rng.Float64()))
}

// retryAfter schedules fn in the node's goroutine after the backoff for
// the given attempt. Must be called from the delivery goroutine (it draws
// jitter from the confined rng).
func (n *Node) retryAfter(attempt int, fn func()) {
	d := n.backoffDelay(attempt)
	if d <= 0 {
		fn()
		return
	}
	n.cfg.Clock.AfterFunc(d, func() {
		_ = n.Invoke(fn) // endpoint closed: the retry dies with the node
	})
}

// FindSuccessor resolves successor(target) and calls cb with the owner (and
// the owner's predecessor, which Squid's aggregation optimization uses to
// batch sub-queries). Transient failures (timeout, unstable ring,
// unreachable next hop) are retried up to Config.RPCRetries times with
// jittered exponential backoff before cb receives the error.
func (n *Node) FindSuccessor(target ID, trace uint64, cb func(FoundMsg, error)) {
	n.findAttempt(target, trace, 0, cb)
}

func (n *Node) findAttempt(target ID, trace uint64, attempt int, cb func(FoundMsg, error)) {
	n.findOnce(target, trace, func(m FoundMsg, err error) {
		if err == nil {
			cb(m, err)
			return
		}
		if attempt >= n.cfg.RPCRetries || !retryable(err) {
			n.ctr.findFailures.Inc()
			cb(m, err)
			return
		}
		n.ctr.findRetries.Inc()
		n.retryAfter(attempt, func() { n.findAttempt(target, trace, attempt+1, cb) })
	})
}

// findOnce performs a single FindSuccessor attempt.
func (n *Node) findOnce(target ID, trace uint64, cb func(FoundMsg, error)) {
	target = n.cfg.Space.Fold(uint64(target))
	if n.Owns(target) {
		cb(FoundMsg{Owner: n.self, Pred: n.pred}, nil)
		return
	}
	tok := n.token()
	pc := &pendingCall[FoundMsg]{cb: cb}
	if n.cfg.RPCTimeout > 0 {
		pc.timer = n.cfg.Clock.AfterFunc(n.cfg.RPCTimeout, func() {
			_ = n.Invoke(func() { // endpoint closed: the node is detached, its pending map dies with it
				if _, ok := n.pendingFinds[tok]; ok {
					delete(n.pendingFinds, tok)
					cb(FoundMsg{}, ErrTimeout)
				}
			})
		})
	}
	n.pendingFinds[tok] = pc
	msg := FindMsg{Target: target, Token: tok, ReplyTo: n.self.Addr, Hops: 1, Trace: trace}
	if !n.forwardToward(target, msg) {
		delete(n.pendingFinds, tok)
		if pc.timer != nil {
			pc.timer.Stop()
		}
		cb(FoundMsg{}, ErrTimeout)
	}
}

func (n *Node) handleFind(m FindMsg) {
	if n.Owns(m.Target) {
		n.send(m.ReplyTo, FoundMsg{Token: m.Token, Owner: n.self, Pred: n.pred, Hops: m.Hops, Trace: m.Trace})
		return
	}
	if m.Hops >= n.maxHops() {
		// Routing loop during churn: fail the lookup so the caller can
		// retry after stabilization repairs the ring.
		n.send(m.ReplyTo, FoundMsg{Token: m.Token, Hops: m.Hops, Trace: m.Trace})
		return
	}
	m.Hops++
	n.forwardToward(m.Target, m)
}

func (n *Node) handleFound(m FoundMsg) {
	pc, ok := n.pendingFinds[m.Token]
	if !ok {
		return
	}
	delete(n.pendingFinds, m.Token)
	if pc.timer != nil {
		pc.timer.Stop()
	}
	if m.Owner.IsZero() {
		pc.cb(m, ErrLookupFailed)
		return
	}
	n.ctr.lookupHops.Observe(int64(m.Hops))
	pc.cb(m, nil)
}

// getState asks peer for its neighbor state, retrying transient failures
// per the node's retry policy.
func (n *Node) getState(peer transport.Addr, cb func(StateMsg, error)) {
	n.stateAttempt(peer, 0, cb)
}

func (n *Node) stateAttempt(peer transport.Addr, attempt int, cb func(StateMsg, error)) {
	n.stateOnce(peer, func(m StateMsg, err error) {
		if err == nil {
			cb(m, err)
			return
		}
		if attempt >= n.cfg.RPCRetries || !retryable(err) {
			n.ctr.stateFailures.Inc()
			cb(m, err)
			return
		}
		n.ctr.stateRetries.Inc()
		n.retryAfter(attempt, func() { n.stateAttempt(peer, attempt+1, cb) })
	})
}

// stateOnce performs a single state probe.
func (n *Node) stateOnce(peer transport.Addr, cb func(StateMsg, error)) {
	tok := n.token()
	pc := &pendingCall[StateMsg]{cb: cb}
	if n.cfg.RPCTimeout > 0 {
		pc.timer = n.cfg.Clock.AfterFunc(n.cfg.RPCTimeout, func() {
			_ = n.Invoke(func() { // endpoint closed: the node is detached, its pending map dies with it
				if _, ok := n.pendingStates[tok]; ok {
					delete(n.pendingStates, tok)
					cb(StateMsg{}, ErrTimeout)
				}
			})
		})
	}
	n.pendingStates[tok] = pc
	if !n.send(peer, GetStateMsg{Token: tok, ReplyTo: n.self.Addr}) {
		delete(n.pendingStates, tok)
		if pc.timer != nil {
			pc.timer.Stop()
		}
		cb(StateMsg{}, transport.ErrUnreachable)
	}
}

// GetStateOf exposes the state probe for drivers and the load-balancing
// protocols.
func (n *Node) GetStateOf(peer transport.Addr, cb func(StateMsg, error)) {
	n.getState(peer, cb)
}

func (n *Node) handleGetState(m GetStateMsg) {
	n.send(m.ReplyTo, StateMsg{
		Token: m.Token,
		Self:  n.self,
		Pred:  n.pred,
		Succs: n.SuccList(),
		Load:  n.app.Load(),
	})
}

func (n *Node) handleState(m StateMsg) {
	pc, ok := n.pendingStates[m.Token]
	if !ok {
		return
	}
	delete(n.pendingStates, m.Token)
	if pc.timer != nil {
		pc.timer.Stop()
	}
	pc.cb(m, nil)
}

// trimSuccs bounds a successor list to the configured length, dropping
// zeros and duplicates. Dead and lap-stale entries (including a mid-list
// self-reference, which marks one full loop around the node's view of the
// ring) are kept deliberately: they are tombstones that preserve failover
// depth while healing, dropped lazily by dropDead. The invariant checker
// mirrors this by validating ring order only over live entries up to the
// first self-reference.
func (n *Node) trimSuccs(list []NodeRef) []NodeRef {
	out := make([]NodeRef, 0, n.cfg.SuccListLen)
	seen := map[transport.Addr]bool{}
	for _, s := range list {
		if s.IsZero() || seen[s.Addr] {
			continue
		}
		seen[s.Addr] = true
		out = append(out, s)
		if len(out) == n.cfg.SuccListLen {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, n.self)
	}
	return out
}

func (n *Node) String() string {
	return fmt.Sprintf("chord.Node(%s pred=%s succ=%s)", n.self, n.pred, n.Succ())
}
