package chord

import (
	"strings"
	"testing"

	"squid/internal/transport"
)

// Checker unit tests over hand-constructed snapshots: each case builds a
// global state that breaks exactly one invariant and asserts the checker
// names it (and nothing else).

func ref(id uint64, addr string) NodeRef {
	return NodeRef{ID: ID(id), Addr: transport.Addr(addr)}
}

func kinds(vs []Violation) map[ViolationKind]int {
	out := map[ViolationKind]int{}
	for _, v := range vs {
		out[v.Kind]++
	}
	return out
}

// healthySnaps builds a correct 4-node ring in a 10-bit space.
func healthySnaps() []Snapshot {
	a, b, c, d := ref(100, "a"), ref(300, "b"), ref(600, "c"), ref(900, "d")
	mk := func(self, pred NodeRef, succs ...NodeRef) Snapshot {
		return Snapshot{Self: self, Pred: pred, Succs: succs, Running: true}
	}
	return []Snapshot{
		mk(a, d, b, c, d, a),
		mk(b, a, c, d, a, b),
		mk(c, b, d, a, b, c),
		mk(d, c, a, b, c, d),
	}
}

func TestCheckRingHealthy(t *testing.T) {
	sp := MustSpace(10)
	if vs := CheckRing(sp, healthySnaps()); len(vs) != 0 {
		t.Fatalf("healthy ring reported violations: %v", vs)
	}
}

func TestCheckRingTrivialRings(t *testing.T) {
	sp := MustSpace(10)
	if vs := CheckRing(sp, nil); vs != nil {
		t.Fatalf("empty snapshot: %v", vs)
	}
	solo := ref(100, "a")
	one := []Snapshot{{Self: solo, Pred: solo, Succs: []NodeRef{solo}, Running: true}}
	if vs := CheckRing(sp, one); vs != nil {
		t.Fatalf("singleton: %v", vs)
	}
	// Stopped nodes are invisible, whatever garbage they hold.
	stopped := Snapshot{Self: ref(500, "z"), Running: false}
	if vs := CheckRing(sp, append(one, stopped)); vs != nil {
		t.Fatalf("stopped node counted: %v", vs)
	}
}

func TestCheckRingSuccListViolations(t *testing.T) {
	sp := MustSpace(10)
	snaps := healthySnaps()

	// Zero entry mid-list.
	bad := snaps
	bad[0].Succs = []NodeRef{{}, ref(300, "b")}
	vs := CheckRing(sp, bad)
	if kinds(vs)[ViolationSuccList] == 0 {
		t.Fatalf("zero entry not flagged: %v", vs)
	}

	// Out of ring order: a later entry closer than an earlier one.
	bad = healthySnaps()
	bad[0].Succs = []NodeRef{ref(600, "c"), ref(300, "b")}
	vs = CheckRing(sp, bad)
	if kinds(vs)[ViolationSuccList] == 0 {
		t.Fatalf("out-of-order list not flagged: %v", vs)
	}

	// Empty list.
	bad = healthySnaps()
	bad[0].Succs = nil
	vs = CheckRing(sp, bad)
	if kinds(vs)[ViolationSuccList] == 0 {
		t.Fatalf("empty list not flagged: %v", vs)
	}

	// Leading self closes the loop immediately: the live entries after it
	// are lap-stale, so the node has no effective successor at all.
	bad = healthySnaps()
	bad[0].Succs = []NodeRef{ref(100, "a"), ref(300, "b")}
	vs = CheckRing(sp, bad)
	if kinds(vs)[ViolationDisconnected] == 0 {
		t.Fatalf("self-closed list with no live successor not flagged: %v", vs)
	}

	// Lenient cases the protocol produces while healing: dead tombstones
	// out of order, and stale entries after a mid-list self-reference.
	ok := healthySnaps()
	ok[0].Succs = []NodeRef{ref(999, "dead1"), ref(300, "b"), ref(150, "dead2"), ref(600, "c")}
	if vs := CheckRing(sp, ok); len(vs) != 0 {
		t.Fatalf("dead tombstones wrongly flagged: %v", vs)
	}
	ok = healthySnaps()
	ok[0].Succs = []NodeRef{ref(300, "b"), ref(100, "a"), ref(600, "c")}
	if vs := CheckRing(sp, ok); len(vs) != 0 {
		t.Fatalf("lap-stale entries after loop closure wrongly flagged: %v", vs)
	}
}

func TestCheckRingDisconnected(t *testing.T) {
	sp := MustSpace(10)
	snaps := healthySnaps()
	// Node a's successors are all dead (not members): its chain cannot
	// reach the ring.
	snaps[0].Succs = []NodeRef{ref(150, "dead1"), ref(200, "dead2")}
	vs := CheckRing(sp, snaps)
	if kinds(vs)[ViolationDisconnected] == 0 {
		t.Fatalf("dead-end chain not flagged: %v", vs)
	}
}

func TestCheckRingMultipleRings(t *testing.T) {
	sp := MustSpace(10)
	a, b := ref(100, "a"), ref(300, "b")
	c, d := ref(600, "c"), ref(900, "d")
	mk := func(self, pred, succ NodeRef) Snapshot {
		return Snapshot{Self: self, Pred: pred, Succs: []NodeRef{succ, self}, Running: true}
	}
	// Two disjoint 2-cycles: {a,b} and {c,d}.
	snaps := []Snapshot{mk(a, b, b), mk(b, a, a), mk(c, d, d), mk(d, c, c)}
	vs := CheckRing(sp, snaps)
	if kinds(vs)[ViolationMultipleRings] != 1 {
		t.Fatalf("expected exactly one multiple-rings violation: %v", vs)
	}
}

func TestCheckRingOrderedRingViolation(t *testing.T) {
	sp := MustSpace(10)
	a, b, c := ref(100, "a"), ref(300, "b"), ref(600, "c")
	// Cycle a→c→b→a: all three on the ring, but a's successor skips b.
	snaps := []Snapshot{
		{Self: a, Pred: c, Succs: []NodeRef{c, a}, Running: true},
		{Self: c, Pred: b, Succs: []NodeRef{b, c}, Running: true},
		{Self: b, Pred: a, Succs: []NodeRef{a, b}, Running: true},
	}
	vs := CheckRing(sp, snaps)
	if kinds(vs)[ViolationOrderedRing] == 0 {
		t.Fatalf("out-of-order cycle not flagged: %v", vs)
	}
}

func TestCheckRingOwnershipViolations(t *testing.T) {
	sp := MustSpace(10)

	// Zero predecessor: the node claims the entire ring.
	snaps := healthySnaps()
	snaps[1].Pred = NodeRef{}
	vs := CheckRing(sp, snaps)
	if kinds(vs)[ViolationOwnershipOverlap] != 1 {
		t.Fatalf("zero pred not flagged as overlap: %v", vs)
	}
	if len(HardViolations(vs)) != 1 {
		t.Fatalf("overlap should be hard: %v", vs)
	}

	// Self predecessor on a multi-node ring: same over-claim.
	snaps = healthySnaps()
	snaps[1].Pred = snaps[1].Self
	if vs := CheckRing(sp, snaps); kinds(vs)[ViolationOwnershipOverlap] != 1 {
		t.Fatalf("self pred not flagged as overlap: %v", vs)
	}

	// Predecessor behind the oracle predecessor: arcs overlap.
	snaps = healthySnaps()
	snaps[2].Pred = ref(100, "a") // c's oracle pred is b(300); claiming from a(100) swallows b's arc
	if vs := CheckRing(sp, snaps); kinds(vs)[ViolationOwnershipOverlap] != 1 {
		t.Fatalf("stale far pred not flagged as overlap: %v", vs)
	}

	// Dead node inside the oracle arc as boundary: a gap, transient.
	snaps = healthySnaps()
	snaps[2].Pred = ref(450, "gone")
	snaps[2].PredSuspect = true
	vs = CheckRing(sp, snaps)
	if kinds(vs)[ViolationOwnershipGap] != 1 {
		t.Fatalf("dead boundary not flagged as gap: %v", vs)
	}
	if !vs[0].Transient() {
		t.Fatalf("gap should be transient: %v", vs[0])
	}
	if len(HardViolations(vs)) != 0 {
		t.Fatalf("gap should be filtered by HardViolations: %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "suspect") {
		t.Fatalf("gap detail should mention suspicion: %v", vs[0])
	}
	if vs[0].Error() == "" {
		t.Fatal("Violation.Error empty")
	}
}
