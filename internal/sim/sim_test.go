package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
)

func testSpace(t testing.TB) *keyspace.Space {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func TestBuildProducesConsistentRing(t *testing.T) {
	nw, err := Build(Config{Nodes: 50, Space: testSpace(t), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Peers) != 50 {
		t.Fatalf("peers = %d", len(nw.Peers))
	}
	for i := 1; i < len(nw.Peers); i++ {
		if nw.Peers[i].ID() <= nw.Peers[i-1].ID() {
			t.Fatal("peers not sorted by id")
		}
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{Nodes: 0, Space: testSpace(t)}); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := Build(Config{Nodes: 5}); err == nil {
		t.Error("nil space should fail")
	}
	if _, err := BuildWithIDs(Config{}, []uint64{1, 2}); err == nil {
		t.Error("BuildWithIDs with nil space should fail")
	}
}

func TestBuildWithIDs(t *testing.T) {
	nw, err := BuildWithIDs(Config{Space: testSpace(t)}, []uint64{100, 900, 500})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 500, 900}
	for i, p := range nw.Peers {
		if uint64(p.ID()) != want[i] {
			t.Errorf("peer %d id = %d, want %d", i, p.ID(), want[i])
		}
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestPreloadPlacesAtOracleOwner(t *testing.T) {
	nw, err := Build(Config{Nodes: 20, Space: testSpace(t), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]squid.Element, 0, 100)
	for i := 0; i < 100; i++ {
		elems = append(elems, squid.Element{
			Values: []string{fmt.Sprintf("w%03d", i), "x"},
			Data:   fmt.Sprintf("e%d", i),
		})
	}
	if err := nw.Preload(elems); err != nil {
		t.Fatal(err)
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range nw.LoadVector() {
		total += l
	}
	if total != nw.TotalKeys() {
		t.Errorf("load vector sum %d != total keys %d", total, nw.TotalKeys())
	}
	if total == 0 {
		t.Error("nothing stored")
	}
}

func TestSuccessorOfMatchesRing(t *testing.T) {
	nw, err := BuildWithIDs(Config{Space: testSpace(t)}, []uint64{100, 500, 900})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		idx  uint64
		want uint64
	}{
		{50, 100}, {100, 100}, {101, 500}, {500, 500}, {700, 900}, {901, 100}, {4_000_000_000, 100},
	}
	for _, c := range cases {
		if got := nw.SuccessorOf(c.idx); uint64(got.ID()) != c.want {
			t.Errorf("SuccessorOf(%d) = %d, want %d", c.idx, got.ID(), c.want)
		}
	}
}

func TestChurnOperations(t *testing.T) {
	nw, err := Build(Config{Nodes: 15, Space: testSpace(t), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]squid.Element, 300)
	rng := rand.New(rand.NewSource(9))
	for i := range elems {
		elems[i] = squid.Element{Values: []string{randWord(rng), randWord(rng)}, Data: fmt.Sprintf("d%d", i)}
	}
	if err := nw.Preload(elems); err != nil {
		t.Fatal(err)
	}
	keys := nw.TotalKeys()

	p, err := nw.AddPeer(chord.ID(rng.Uint64() & ((1 << 32) - 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Peers) != 16 {
		t.Errorf("peers = %d after add", len(nw.Peers))
	}
	if nw.TotalKeys() != keys {
		t.Errorf("add changed keys: %d -> %d", keys, nw.TotalKeys())
	}
	// Adding the same id again collides.
	if _, err := nw.AddPeer(p.ID()); err == nil {
		t.Error("duplicate AddPeer should fail")
	}

	nw.RemovePeer(3)
	if len(nw.Peers) != 15 {
		t.Errorf("peers = %d after remove", len(nw.Peers))
	}
	if nw.TotalKeys() != keys {
		t.Errorf("leave lost keys: %d -> %d", keys, nw.TotalKeys())
	}

	// Abrupt failure loses that node's keys but the ring heals.
	victim := 5
	victimLoad := nw.LoadVector()[victim]
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not healed after kill: %v", err)
	}
	if got := nw.TotalKeys(); got != keys-victimLoad {
		t.Errorf("after kill: keys = %d, want %d", got, keys-victimLoad)
	}
}

func randWord(rng *rand.Rand) string {
	b := make([]byte, 3+rng.Intn(5))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestQueryMetricsHelpers(t *testing.T) {
	qm := newQueryMetrics(7)
	qm.RouteMessages = 3
	qm.ProbeMessages = 2
	qm.ClusterMessages = 4
	qm.ProbeReplies = 2
	qm.ResultMessages = 5
	if qm.Messages() != 9 {
		t.Errorf("Messages = %d", qm.Messages())
	}
	if qm.TotalTransmissions() != 16 {
		t.Errorf("TotalTransmissions = %d", qm.TotalTransmissions())
	}
	qm.RoutingNodes[1] = true
	c := qm.clone()
	c.RoutingNodes[2] = true
	if qm.RoutingNodes[2] {
		t.Error("clone shares maps")
	}
}

func TestMetricsReset(t *testing.T) {
	ms := NewMetrics()
	ms.Processed(1, 42, 1, 3)
	if got := ms.ForQuery(1); got.Matches != 3 {
		t.Errorf("Matches = %d", got.Matches)
	}
	ms.Reset()
	if got := ms.ForQuery(1); got.Matches != 0 {
		t.Error("Reset did not clear")
	}
	// Untraced events are dropped.
	ms.Processed(0, 42, 1, 3)
	if got := ms.ForQuery(0); got.Matches != 0 {
		t.Error("qid 0 should not be recorded")
	}
}

func TestPublishRoutesThroughOverlay(t *testing.T) {
	nw, err := Build(Config{Nodes: 10, Space: testSpace(t), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Publish(0, squid.Element{Values: []string{"hello", "world"}, Data: "x"}); err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()
	idx, err := nw.Space.Index([]string{"hello", "world"})
	if err != nil {
		t.Fatal(err)
	}
	owner := nw.SuccessorOf(idx)
	found := make(chan bool, 1)
	owner.Node.Invoke(func() { found <- len(owner.Engine.LocalStore().At(idx)) == 1 })
	if !<-found {
		t.Error("published element not at oracle owner")
	}
	// Bad values error synchronously.
	if err := nw.Publish(0, squid.Element{Values: []string{"b_d", "x"}}); err == nil {
		t.Error("unencodable publish should fail")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Config{Nodes: 30, Space: testSpace(t), Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Nodes: 30, Space: testSpace(t), Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Peers {
		if a.Peers[i].ID() != b.Peers[i].ID() {
			t.Fatalf("same seed produced different rings at %d", i)
		}
	}
	c, err := Build(Config{Nodes: 30, Space: testSpace(t), Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Peers {
		if a.Peers[i].ID() != c.Peers[i].ID() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical rings")
	}
}

func TestInstalledFingersCorrect(t *testing.T) {
	nw, err := Build(Config{Nodes: 25, Space: testSpace(t), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	space := chord.Space{Bits: nw.Space.IndexBits()}
	for _, p := range nw.Peers {
		p := p
		ch := make(chan []chord.NodeRef, 1)
		p.Node.Invoke(func() { ch <- p.Node.Fingers() })
		fingers := <-ch
		for b, f := range fingers {
			target := space.Add(p.ID(), uint64(1)<<uint(b))
			want := nw.SuccessorOf(uint64(target))
			if f.Addr != want.Addr() {
				t.Fatalf("peer %x finger %d -> %s, want %s", uint64(p.ID()), b, f, want.Node.Self())
			}
		}
	}
}

// Regression for the silent-Invoke-drop hang class (squid-lint rpcerr):
// driver helpers pair Invoke with a blocking channel read, so an Invoke
// refused by a dead endpoint must fail loudly instead of deadlocking.
func TestMustInvokePanicsOnDeadPeer(t *testing.T) {
	nw, err := Build(Config{Nodes: 3, Space: testSpace(t), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := nw.Peers[0]
	nw.kill(p.Addr())
	defer func() {
		if recover() == nil {
			t.Fatal("MustInvoke on a killed peer did not panic")
		}
	}()
	MustInvoke(p, func() {})
}

func TestMustInvokeRunsOnLivePeer(t *testing.T) {
	nw, err := Build(Config{Nodes: 1, Space: testSpace(t), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	MustInvoke(nw.Peers[0], func() { close(done) })
	<-done
}
