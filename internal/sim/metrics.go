package sim

import (
	"sync"

	"squid/internal/chord"
	"squid/internal/squid"
	"squid/internal/transport"
)

// QueryMetrics aggregates one query's cost, mirroring the paper's
// evaluation metrics (Section 4.1): the nodes that route it, the nodes
// that process it, the nodes holding matches, and the messages used.
type QueryMetrics struct {
	QID squid.QueryID

	// RouteMessages counts routed message transmissions (every hop of the
	// initial cluster dispatches and exact lookups).
	RouteMessages int
	// ProbeMessages counts FindSuccessor transmissions (every hop) issued
	// by the aggregation optimization's owner probes.
	ProbeMessages int
	// ProbeReplies counts FoundMsg replies to those probes.
	ProbeReplies int
	// ClusterMessages counts direct batched sub-query messages.
	ClusterMessages int
	// PayloadHops counts transmissions that carry cluster payloads: the
	// direct batched messages plus every routed hop of a blind-routed
	// cluster. This is what the paper's aggregation optimization reduces
	// (probe handshakes carry no payload).
	PayloadHops int
	// ResultMessages counts result reports back to the initiator.
	ResultMessages int
	// BatchMessages counts BatchMsg transmissions. Each batch entry is
	// already tallied in ClusterMessages/PayloadHops exactly as if it had
	// been sent alone, so the paper's message counts are unchanged by
	// batching; this counter measures transmissions saved (entries minus
	// batches).
	BatchMessages int
	// PartialMessages counts PartialResultMsg transmissions — early result
	// batches flowing up a streaming query's tree ahead of subtree
	// completion.
	PartialMessages int
	// CancelMessages counts QueryCancelMsg transmissions — the teardown a
	// top-k stream sends when Limit is reached before refinement finishes.
	CancelMessages int

	// RoutingNodes received at least one forwarded message for the query
	// without necessarily processing it.
	RoutingNodes map[chord.ID]bool
	// ProcessingNodes refined clusters and searched their stores.
	ProcessingNodes map[chord.ID]bool
	// DataNodes are processing nodes that found at least one match.
	DataNodes map[chord.ID]bool
	// Matches is the total number of matching elements reported.
	Matches int

	// Redispatches counts child subtrees re-sent after missing their
	// recovery deadline (engine fault recovery).
	Redispatches int
	// Abandoned counts child subtrees given up on after exhausting
	// re-dispatch retries.
	Abandoned int
	// Partial marks a query that completed with squid.ErrPartialResult.
	Partial bool
}

// Messages is the paper's headline message count: the forward-path
// transmissions that resolve the query (routing hops, owner probes and
// sub-query messages). Replies are tallied separately; including them is
// TotalTransmissions.
func (m *QueryMetrics) Messages() int {
	return m.RouteMessages + m.ProbeMessages + m.ClusterMessages
}

// TotalTransmissions counts every message transmission attributable to the
// query, replies included.
func (m *QueryMetrics) TotalTransmissions() int {
	return m.Messages() + m.ProbeReplies + m.ResultMessages +
		m.PartialMessages + m.CancelMessages
}

// ClusteringRatio is the paper's measure of the Hilbert mapping's locality
// (Section 4.1.1): the number of matches divided by the number of data
// nodes storing them. High values mean matching data is packed onto few
// nodes. Zero when the query matched nothing.
func (m *QueryMetrics) ClusteringRatio() float64 {
	if len(m.DataNodes) == 0 {
		return 0
	}
	return float64(m.Matches) / float64(len(m.DataNodes))
}

func newQueryMetrics(qid squid.QueryID) *QueryMetrics {
	return &QueryMetrics{
		QID:             qid,
		RoutingNodes:    make(map[chord.ID]bool),
		ProcessingNodes: make(map[chord.ID]bool),
		DataNodes:       make(map[chord.ID]bool),
	}
}

func (m *QueryMetrics) clone() QueryMetrics {
	c := *m
	c.RoutingNodes = copySet(m.RoutingNodes)
	c.ProcessingNodes = copySet(m.ProcessingNodes)
	c.DataNodes = copySet(m.DataNodes)
	return c
}

func copySet(s map[chord.ID]bool) map[chord.ID]bool {
	out := make(map[chord.ID]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Metrics collects per-query metrics across the whole simulated network.
// It implements squid.MetricsSink and doubles as the transport observer.
// Safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	byQuery  map[squid.QueryID]*QueryMetrics
	idByAddr map[transport.Addr]chord.ID
}

// NewMetrics returns an empty collector. The address table maps transport
// addresses to ring identifiers for node attribution.
func NewMetrics() *Metrics {
	return &Metrics{
		byQuery:  make(map[squid.QueryID]*QueryMetrics),
		idByAddr: make(map[transport.Addr]chord.ID),
	}
}

// RegisterAddr records the ring identifier behind a transport address.
func (ms *Metrics) RegisterAddr(addr transport.Addr, id chord.ID) {
	ms.mu.Lock()
	ms.idByAddr[addr] = id
	ms.mu.Unlock()
}

func (ms *Metrics) query(qid squid.QueryID) *QueryMetrics {
	qm, ok := ms.byQuery[qid]
	if !ok {
		qm = newQueryMetrics(qid)
		ms.byQuery[qid] = qm
	}
	return qm
}

// Processed implements squid.MetricsSink.
func (ms *Metrics) Processed(qid squid.QueryID, node chord.ID, clusters, matches int) {
	if qid == 0 {
		return
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	qm := ms.query(qid)
	qm.ProcessingNodes[node] = true
	if matches > 0 {
		qm.DataNodes[node] = true
	}
	qm.Matches += matches
}

// Redispatched implements squid.RecoverySink.
func (ms *Metrics) Redispatched(qid squid.QueryID) {
	if qid == 0 {
		return
	}
	ms.mu.Lock()
	ms.query(qid).Redispatches++
	ms.mu.Unlock()
}

// Abandoned implements squid.RecoverySink.
func (ms *Metrics) Abandoned(qid squid.QueryID) {
	if qid == 0 {
		return
	}
	ms.mu.Lock()
	ms.query(qid).Abandoned++
	ms.mu.Unlock()
}

// Partial implements squid.RecoverySink.
func (ms *Metrics) Partial(qid squid.QueryID) {
	if qid == 0 {
		return
	}
	ms.mu.Lock()
	ms.query(qid).Partial = true
	ms.mu.Unlock()
}

// Observe implements the transport.Observer contract: it classifies every
// message the simulated network carries and attributes traced ones to
// their query.
func (ms *Metrics) Observe(from, to transport.Addr, msg any) {
	switch m := msg.(type) {
	case chord.RouteMsg:
		if m.Trace == 0 {
			return
		}
		ms.mu.Lock()
		qm := ms.query(squid.QueryID(m.Trace))
		qm.RouteMessages++
		switch m.Payload.(type) {
		case squid.ClusterQueryMsg:
			qm.PayloadHops++
		case squid.QueryCancelMsg:
			// Teardown rides the ring (the child's owner may have moved);
			// count every hop as cancel traffic.
			qm.CancelMessages++
		}
		qm.RoutingNodes[ms.idByAddr[to]] = true
		ms.mu.Unlock()
	case chord.FindMsg:
		if m.Trace == 0 {
			return
		}
		ms.mu.Lock()
		qm := ms.query(squid.QueryID(m.Trace))
		qm.ProbeMessages++
		qm.RoutingNodes[ms.idByAddr[to]] = true
		ms.mu.Unlock()
	case chord.FoundMsg:
		if m.Trace == 0 {
			return
		}
		ms.mu.Lock()
		ms.query(squid.QueryID(m.Trace)).ProbeReplies++
		ms.mu.Unlock()
	case chord.AppMsg:
		switch p := m.Payload.(type) {
		case squid.ClusterQueryMsg:
			ms.mu.Lock()
			qm := ms.query(p.QID)
			qm.ClusterMessages++
			qm.PayloadHops++
			ms.mu.Unlock()
		case squid.BatchMsg:
			// Count each entry as if it had been its own transmission:
			// batching must not perturb the experiments' exact counts.
			ms.mu.Lock()
			for _, cq := range p.Queries {
				qm := ms.query(cq.QID)
				qm.ClusterMessages++
				qm.PayloadHops++
			}
			if len(p.Queries) > 0 {
				ms.query(p.Queries[0].QID).BatchMessages++
			}
			ms.mu.Unlock()
		case squid.SubResultMsg:
			ms.mu.Lock()
			ms.query(p.QID).ResultMessages++
			ms.mu.Unlock()
		case squid.PartialResultMsg:
			ms.mu.Lock()
			ms.query(p.QID).PartialMessages++
			ms.mu.Unlock()
		case squid.QueryCancelMsg:
			ms.mu.Lock()
			ms.query(p.QID).CancelMessages++
			ms.mu.Unlock()
		}
	}
}

// ForQuery returns a snapshot of one query's metrics.
func (ms *Metrics) ForQuery(qid squid.QueryID) QueryMetrics {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if qm, ok := ms.byQuery[qid]; ok {
		return qm.clone()
	}
	return *newQueryMetrics(qid)
}

// Reset discards all recorded queries (the address table is kept).
func (ms *Metrics) Reset() {
	ms.mu.Lock()
	ms.byQuery = make(map[squid.QueryID]*QueryMetrics)
	ms.mu.Unlock()
}

var (
	_ squid.MetricsSink  = (*Metrics)(nil)
	_ squid.RecoverySink = (*Metrics)(nil)
)
