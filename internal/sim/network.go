// Package sim builds and drives simulated Squid networks: N peers with
// goroutine mailboxes over the in-process transport, oracle ring bootstrap
// and bulk data preload (as the paper's simulator does for its static
// experiments), protocol-level churn, and the paper's per-query metrics.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// Config describes a simulated network.
type Config struct {
	// Nodes is the initial network size.
	Nodes int
	// Space is the keyword space shared by all peers.
	Space *keyspace.Space
	// Seed drives all randomness (node identifiers).
	Seed int64
	// SuccListLen is each node's successor-list length (default 4).
	SuccListLen int
	// Engine configures every peer's Squid engine; its Sink is overridden
	// with the network's metrics collector.
	Engine squid.Options
	// Chord tunes every peer's RPC behavior (RPCTimeout, RPCRetries,
	// RPCBackoff, StabilizeEvery, ...). Space and SuccListLen are managed by
	// the simulator and ignored here.
	Chord chord.Config
	// Faults, when non-nil, wraps the in-process transport in a
	// deterministic fault-injecting layer (drops, delays, partitions,
	// crashes) exposed as Network.Faulty.
	Faults *transport.FaultConfig
	// Trace enables distributed query tracing: every Query records its
	// reassembled refinement-tree spans in Network.Traces.
	Trace bool
	// CheckInvariants asserts the global ring invariants (chord.CheckRing)
	// after every StabilizeAll round. Violations are recorded to the
	// squid_ring_violations_total telemetry family; hard (non-transient)
	// violations also accumulate in Network.RingViolations, so a churn test
	// can drive arbitrary rounds and assert a single zero at the end.
	CheckInvariants bool
}

// Peer is one simulated participant.
type Peer struct {
	Node   *chord.Node
	Engine *squid.Engine
}

// ID returns the peer's ring identifier.
func (p *Peer) ID() chord.ID { return p.Node.Self().ID }

// Addr returns the peer's transport address.
func (p *Peer) Addr() transport.Addr { return p.Node.Self().Addr }

// Network is a simulated Squid deployment.
type Network struct {
	cfg    Config
	Inproc *transport.Inproc
	// Faulty is the fault-injection layer; nil unless Config.Faults was set.
	Faulty  *transport.Faulty
	Space   *keyspace.Space
	Metrics *Metrics
	// Telemetry aggregates every peer's and transport layer's instruments.
	// It runs clock-less (timestamps read as zero) so simulated runs stay
	// deterministic.
	Telemetry *telemetry.Registry
	// Traces holds reassembled query traces; nil unless Config.Trace was set.
	Traces *telemetry.TraceStore
	// Peers is sorted by ring identifier.
	Peers []*Peer

	rng     *rand.Rand
	nextIdx int

	ringViolations *telemetry.CounterVec
	hardViolations uint64
}

// Build constructs a network of cfg.Nodes peers with uniformly random
// identifiers, installs a consistent ring directly (oracle bootstrap — no
// join messages), and wires metrics. Use AddPeer/RemovePeer/KillPeer for
// protocol-level dynamics afterwards.
func Build(cfg Config) (*Network, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("sim: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Space == nil {
		return nil, fmt.Errorf("sim: nil keyword space")
	}
	nw := newNetwork(cfg)

	space := chord.Space{Bits: cfg.Space.IndexBits()}
	ids := nw.uniqueIDs(cfg.Nodes, space)
	for _, id := range ids {
		p, err := nw.newPeer(chord.ID(id))
		if err != nil {
			return nil, err
		}
		nw.Peers = append(nw.Peers, p)
	}
	nw.sortPeers()
	nw.installRing()
	return nw, nil
}

// BuildWithIDs is Build with explicit node identifiers (tests).
func BuildWithIDs(cfg Config, ids []uint64) (*Network, error) {
	if cfg.Space == nil {
		return nil, fmt.Errorf("sim: nil keyword space")
	}
	nw := newNetwork(cfg)
	for _, id := range ids {
		p, err := nw.newPeer(chord.ID(id))
		if err != nil {
			return nil, err
		}
		nw.Peers = append(nw.Peers, p)
	}
	nw.sortPeers()
	nw.installRing()
	return nw, nil
}

// newNetwork builds the transport stack, metrics collector, and telemetry
// shared by Build and BuildWithIDs.
func newNetwork(cfg Config) *Network {
	nw := &Network{
		cfg:       cfg,
		Inproc:    transport.NewInproc(),
		Space:     cfg.Space,
		Metrics:   NewMetrics(),
		Telemetry: telemetry.NewRegistry(nil),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	nw.Inproc.SetObserver(nw.Metrics.Observe)
	nw.Inproc.Instrument(nw.Telemetry)
	if cfg.Faults != nil {
		nw.Faulty = transport.NewFaulty(nw.Inproc, *cfg.Faults)
		nw.Faulty.Instrument(nw.Telemetry)
	}
	if cfg.Trace {
		nw.Traces = telemetry.NewTraceStore(0)
	}
	nw.ringViolations = nw.Telemetry.CounterVec("squid_ring_violations_total",
		"ring invariant violations observed by the global checker", "kind")
	return nw
}

func (nw *Network) uniqueIDs(n int, space chord.Space) []uint64 {
	return UniqueIDs(nw.rng, n, space)
}

// UniqueIDs draws n distinct ring identifiers from rng over space. It is
// the single identifier-assignment rule shared by the goroutine and
// discrete-event backends, so the same seed builds the same ring on either —
// the property the cross-backend equivalence test pins.
func UniqueIDs(rng *rand.Rand, n int, space chord.Space) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		id := rng.Uint64() & space.Mask()
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func (nw *Network) newPeer(id chord.ID) (*Peer, error) {
	opts := nw.cfg.Engine
	opts.Sink = nw.Metrics
	opts.Telemetry = nw.Telemetry
	opts.Traces = nw.Traces
	if opts.MaxInflight == 0 {
		// The deterministic experiments assert exact results and message
		// counts, which shedding would perturb: simulated peers run
		// effectively uncapped unless a test opts into admission control
		// explicitly. (On one CPU the delivery goroutine can outrun the
		// worker pool by far more than the production default allows.)
		opts.MaxInflight = 1 << 30
	}
	eng := squid.New(nw.Space, squid.FromOptions(opts))
	ccfg := nw.cfg.Chord
	ccfg.Space = chord.Space{Bits: nw.Space.IndexBits()}
	ccfg.SuccListLen = nw.cfg.SuccListLen
	ccfg.Telemetry = nw.Telemetry
	node := chord.NewNode(ccfg, id, eng)
	eng.Attach(node)
	addr := transport.Addr(fmt.Sprintf("p%d", nw.nextIdx))
	nw.nextIdx++
	ep, err := nw.listen(addr, node)
	if err != nil {
		return nil, err
	}
	node.Start(ep)
	nw.Metrics.RegisterAddr(addr, id)
	return &Peer{Node: node, Engine: eng}, nil
}

// listen registers a handler on the network's outermost transport layer.
func (nw *Network) listen(addr transport.Addr, h transport.Handler) (transport.Endpoint, error) {
	if nw.Faulty != nil {
		return nw.Faulty.Listen(addr, h)
	}
	return nw.Inproc.Listen(addr, h)
}

// kill removes an address from the transport permanently.
func (nw *Network) kill(addr transport.Addr) {
	if nw.Faulty != nil {
		nw.Faulty.Kill(addr)
		return
	}
	nw.Inproc.Kill(addr)
}

// MustInvoke schedules fn on p's delivery goroutine and panics if the
// node's endpoint refuses the work. Driver helpers pair an Invoke with a
// blocking channel read; a silently dropped Invoke error turns into a
// deadlock (the hang class rpcerr exists to prevent), so in the
// deterministic harness a refused Invoke — the driver addressing a dead
// peer — fails loudly instead.
func MustInvoke(p *Peer, fn func()) {
	if err := p.Node.Invoke(fn); err != nil {
		panic(fmt.Sprintf("sim: Invoke on dead peer %s: %v", p.Addr(), err))
	}
}

func (nw *Network) sortPeers() {
	// The ring is kept as a linearly sorted snapshot; successorPeer handles
	// the wrap point by taking index 0 past the last peer.
	//lint:allow-ringcmp canonical linear order of the snapshot table; wrap handled in successorPeer
	sort.Slice(nw.Peers, func(i, j int) bool { return nw.Peers[i].ID() < nw.Peers[j].ID() })
}

// installRing writes consistent pred/succ/finger state into every peer
// directly.
func (nw *Network) installRing() {
	n := len(nw.Peers)
	succLen := nw.cfg.SuccListLen
	if succLen <= 0 {
		succLen = 4
	}
	space := chord.Space{Bits: nw.Space.IndexBits()}
	for i, p := range nw.Peers {
		pred := nw.Peers[(i+n-1)%n].Node.Self()
		var succs []chord.NodeRef
		for k := 1; k <= succLen && k < n+1; k++ {
			succs = append(succs, nw.Peers[(i+k)%n].Node.Self())
		}
		if len(succs) == 0 {
			succs = []chord.NodeRef{p.Node.Self()}
		}
		fingers := make([]chord.NodeRef, space.Bits)
		for b := 0; b < space.Bits; b++ {
			target := space.Add(p.ID(), uint64(1)<<uint(b))
			fingers[b] = nw.successorPeer(target).Node.Self()
		}
		p := p
		done := make(chan struct{})
		MustInvoke(p, func() {
			p.Node.InstallRing(pred, succs, fingers)
			close(done)
		})
		<-done
	}
}

// successorPeer returns the live peer owning the given identifier.
func (nw *Network) successorPeer(id chord.ID) *Peer {
	//lint:allow-ringcmp binary search over the sorted snapshot; the wrap-around successor is index 0, taken below
	i := sort.Search(len(nw.Peers), func(i int) bool { return nw.Peers[i].ID() >= id })
	if i == len(nw.Peers) {
		i = 0
	}
	return nw.Peers[i]
}

// SuccessorOf exposes the oracle owner of a curve index.
func (nw *Network) SuccessorOf(idx uint64) *Peer { return nw.successorPeer(chord.ID(idx)) }

// PeerList returns the live peers in ring order. Together with KeySpace,
// Registry, and TraceStore it is the backend-independent accessor surface
// through which squid-sim's REPL drives either simulator — this goroutine
// backend or the discrete-event one — behind one interface.
func (nw *Network) PeerList() []*Peer { return nw.Peers }

// KeySpace returns the keyword space the network indexes.
func (nw *Network) KeySpace() *keyspace.Space { return nw.Space }

// Registry returns the network's telemetry registry.
func (nw *Network) Registry() *telemetry.Registry { return nw.Telemetry }

// TraceStore returns the query trace store, nil unless tracing was enabled.
func (nw *Network) TraceStore() *telemetry.TraceStore { return nw.Traces }

// Quiesce waits for the network to go idle: no message in flight (including
// messages parked in the fault layer's delay queue, when one is installed)
// and no refinement job pending on any peer's query scheduler. The loop
// closes the handoff race between the two: a scheduler completion is a
// self-send that re-activates the transport, and a delivered message may
// admit new scheduler jobs — so the network is only idle once a full
// transport-and-scheduler sweep observed no new send at all (the in-process
// transport's activity counter is monotonic).
func (nw *Network) Quiesce() {
	for {
		before := nw.Inproc.Activity()
		nw.transportQuiesce()
		for _, p := range nw.Peers {
			p.Engine.WaitIdle()
		}
		nw.transportQuiesce()
		if nw.Inproc.Activity() == before {
			return
		}
	}
}

// transportQuiesce drains the transport stack alone.
func (nw *Network) transportQuiesce() {
	if nw.Faulty != nil {
		nw.Faulty.Quiesce()
		return
	}
	nw.Inproc.Quiesce()
}

// Preload bulk-inserts elements at their owners directly (no routing
// messages), grouping by owner for efficiency. This mirrors the paper's
// simulator setup of 2*10^5..10^6 pre-placed keys.
func (nw *Network) Preload(elems []squid.Element) error {
	groups := make(map[*Peer][]squid.Element)
	for _, e := range elems {
		idx, err := nw.Space.Index(e.Values)
		if err != nil {
			return err
		}
		owner := nw.successorPeer(chord.ID(idx))
		groups[owner] = append(groups[owner], e)
	}
	for p, batch := range groups {
		p, batch := p, batch
		if err := p.Node.Invoke(func() {
			_ = p.Engine.StoreDirectBatch(batch)
		}); err != nil {
			return err
		}
	}
	nw.Quiesce()
	return nil
}

// Publish routes an element through the overlay from the given peer.
func (nw *Network) Publish(via int, elem squid.Element) error {
	p := nw.Peers[via]
	errCh := make(chan error, 1)
	if err := p.Node.Invoke(func() { errCh <- p.Engine.Publish(elem) }); err != nil {
		return err
	}
	return <-errCh
}

// Query runs a flexible query from the given peer, waits for its complete
// result, and returns it with the query's cost metrics.
func (nw *Network) Query(via int, q keyspace.Query) (squid.Result, QueryMetrics) {
	p := nw.Peers[via]
	resCh := make(chan squid.Result, 1)
	qidCh := make(chan squid.QueryID, 1)
	MustInvoke(p, func() {
		qid, err := p.Engine.QueryCtx(context.Background(), q, func(r squid.Result) { resCh <- r })
		if err != nil {
			resCh <- squid.Result{QID: qid, Query: q, Err: err}
		}
		qidCh <- qid
	})
	qid := <-qidCh
	res := <-resCh
	nw.Quiesce() // let trailing replies settle so counts are exact
	return res, nw.Metrics.ForQuery(qid)
}

// StreamResult captures one streaming query run end to end: the delivered
// batches in arrival order (Matches is their concatenation), the terminal
// error, and the resume cursor.
type StreamResult struct {
	QID     squid.QueryID
	Batches [][]squid.Element
	Matches []squid.Element
	Err     error
	Cursor  squid.Cursor
}

// QueryStream runs a streaming query from the given peer, drains it to
// completion, and returns the delivered batches with the query's cost
// metrics. Options pass through to the engine (Limit, WithCursor).
func (nw *Network) QueryStream(via int, q keyspace.Query, opts ...squid.QueryOption) (StreamResult, QueryMetrics) {
	p := nw.Peers[via]
	done := make(chan StreamResult, 1)
	qidCh := make(chan squid.QueryID, 1)
	errCh := make(chan error, 1)
	MustInvoke(p, func() {
		var sr StreamResult
		qid, err := p.Engine.QueryStreamFunc(nil, q, func(ev squid.StreamEvent) {
			if ev.Done {
				sr.Err = ev.Err
				sr.Cursor = ev.Cursor
				done <- sr
				return
			}
			sr.Batches = append(sr.Batches, ev.Matches)
			sr.Matches = append(sr.Matches, ev.Matches...)
		}, opts...)
		qidCh <- qid
		errCh <- err
	})
	qid := <-qidCh
	if err := <-errCh; err != nil {
		return StreamResult{QID: qid, Err: err}, nw.Metrics.ForQuery(qid)
	}
	sr := <-done
	sr.QID = qid
	nw.Quiesce() // let teardown and trailing replies settle so counts are exact
	return sr, nw.Metrics.ForQuery(qid)
}

// CancelQuery cancels an in-flight query rooted at the given peer and
// reports whether it was still running. Quiesces so the teardown traffic is
// fully counted before the caller inspects metrics.
func (nw *Network) CancelQuery(via int, qid squid.QueryID) bool {
	p := nw.Peers[via]
	ch := make(chan bool, 1)
	MustInvoke(p, func() { ch <- p.Engine.CancelQuery(qid) })
	found := <-ch
	nw.Quiesce()
	return found
}

// QueryKeywords runs a position-free keyword query (combination tuples)
// from the given peer and waits for its complete result.
func (nw *Network) QueryKeywords(via int, words []string) squid.Result {
	p := nw.Peers[via]
	resCh := make(chan squid.Result, 1)
	MustInvoke(p, func() {
		p.Engine.QueryKeywords(words, func(r squid.Result) { resCh <- r })
	})
	res := <-resCh
	nw.Quiesce()
	return res
}

// BruteForceMatches scans every peer's store directly — the ground truth
// for the "all matches are found" guarantee.
func (nw *Network) BruteForceMatches(q keyspace.Query) []squid.Element {
	var out []squid.Element
	for _, p := range nw.Peers {
		p := p
		done := make(chan []squid.Element, 1)
		MustInvoke(p, func() {
			var local []squid.Element
			st := p.Engine.LocalStore()
			st.ScanSpan(fullSpan(nw.Space.IndexBits()), func(_ uint64, e squid.Element) {
				if nw.Space.Matches(q, e.Values) {
					local = append(local, e)
				}
			})
			done <- local
		})
		out = append(out, <-done...)
	}
	return out
}

// fullSpan is the whole index space as a scan interval.
func fullSpan(bits int) sfc.Interval {
	if bits >= 64 {
		return sfc.Interval{Lo: 0, Hi: ^uint64(0)}
	}
	return sfc.Interval{Lo: 0, Hi: (uint64(1) << bits) - 1}
}

// LoadVector returns the number of stored keys per peer, in ring order —
// the paper's Fig. 19 load-distribution data.
func (nw *Network) LoadVector() []int {
	out := make([]int, len(nw.Peers))
	for i, p := range nw.Peers {
		p := p
		ch := make(chan int, 1)
		MustInvoke(p, func() { ch <- p.Engine.LocalStore().Keys() })
		out[i] = <-ch
	}
	return out
}

// AddPeer joins a new peer with the given identifier through the protocol
// (seeded at a random existing peer) and returns it.
func (nw *Network) AddPeer(id chord.ID) (*Peer, error) {
	p, err := nw.newPeer(id)
	if err != nil {
		return nil, err
	}
	seed := nw.Peers[nw.rng.Intn(len(nw.Peers))]
	errCh := make(chan error, 1)
	MustInvoke(p, func() { p.Node.Join(seed.Addr(), func(e error) { errCh <- e }) })
	if err := <-errCh; err != nil {
		nw.kill(p.Addr())
		return nil, err
	}
	nw.Quiesce()
	nw.Peers = append(nw.Peers, p)
	nw.sortPeers()
	return p, nil
}

// RemovePeer makes the peer at index i (in current ring order) leave
// voluntarily.
func (nw *Network) RemovePeer(i int) {
	p := nw.Peers[i]
	done := make(chan struct{})
	MustInvoke(p, func() { p.Node.Leave(); close(done) })
	<-done
	nw.Quiesce()
	nw.kill(p.Addr())
	nw.Peers = append(nw.Peers[:i], nw.Peers[i+1:]...)
}

// KillPeer fails the peer at index i abruptly (no handover).
func (nw *Network) KillPeer(i int) {
	p := nw.Peers[i]
	nw.kill(p.Addr())
	nw.Peers = append(nw.Peers[:i], nw.Peers[i+1:]...)
}

// StabilizeAll runs the given number of stabilization rounds on every
// peer (stabilize + finger fix + predecessor check), quiescing between
// rounds. With Config.CheckInvariants set, the global ring checker runs
// after every round.
func (nw *Network) StabilizeAll(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, p := range nw.Peers {
			p := p
			MustInvoke(p, func() {
				p.Node.CheckPredecessor()
				p.Node.Stabilize()
				p.Node.FixFingers()
			})
		}
		nw.Quiesce()
		if nw.cfg.CheckInvariants {
			nw.CheckRing()
		}
	}
}

// SnapshotRing captures every reachable peer's neighbor state. Peers
// currently black-holed by the fault layer are skipped: a crashed process
// is not a ring member, and its frozen state would read as stale garbage.
func (nw *Network) SnapshotRing() []chord.Snapshot {
	snaps := make([]chord.Snapshot, 0, len(nw.Peers))
	for _, p := range nw.Peers {
		p := p
		if nw.Faulty != nil && nw.Faulty.Crashed(p.Addr()) {
			continue
		}
		ch := make(chan chord.Snapshot, 1)
		MustInvoke(p, func() { ch <- p.Node.Snapshot() })
		snaps = append(snaps, <-ch)
	}
	return snaps
}

// CheckRing snapshots the network and verifies the global ring invariants,
// recording every violation to the squid_ring_violations_total telemetry
// family and accumulating hard ones in RingViolations. It returns the
// round's violations (transient ones included) for callers that want the
// detail.
func (nw *Network) CheckRing() []chord.Violation {
	space := chord.Space{Bits: nw.Space.IndexBits()}
	vs := chord.CheckRing(space, nw.SnapshotRing())
	for _, v := range vs {
		nw.ringViolations.With(string(v.Kind)).Inc()
	}
	nw.hardViolations += uint64(len(chord.HardViolations(vs)))
	return vs
}

// RingViolations returns the cumulative count of hard (non-transient)
// invariant violations observed by CheckRing since the network was built.
// A churn test asserts this is zero after driving arbitrary rounds.
func (nw *Network) RingViolations() uint64 { return nw.hardViolations }

// PushReplicasAll makes every peer push replicas of its store to its
// successors (run after Preload when the engines have Replicas > 0).
func (nw *Network) PushReplicasAll() {
	for _, p := range nw.Peers {
		p := p
		MustInvoke(p, func() { p.Engine.PushReplicas() })
	}
	nw.Quiesce()
}

// VerifyConsistent checks that every peer's predecessor and successor
// match the oracle ring order and that every stored key lies within its
// holder's arc. It returns the first inconsistency found, or nil. Useful in
// tests after churn: queries are only guaranteed complete on a consistent
// ring with correctly placed data.
func (nw *Network) VerifyConsistent() error {
	n := len(nw.Peers)
	type snap struct {
		pred, succ chord.NodeRef
		keys       []uint64
	}
	for i, p := range nw.Peers {
		p := p
		ch := make(chan snap, 1)
		MustInvoke(p, func() {
			var keys []uint64
			p.Engine.LocalStore().ScanSpan(fullSpan(nw.Space.IndexBits()), func(k uint64, _ squid.Element) {
				if len(keys) == 0 || keys[len(keys)-1] != k {
					keys = append(keys, k)
				}
			})
			ch <- snap{pred: p.Node.Pred(), succ: p.Node.Succ(), keys: keys}
		})
		st := <-ch
		wantPred := nw.Peers[(i+n-1)%n].Node.Self()
		wantSucc := nw.Peers[(i+1)%n].Node.Self()
		if st.pred.Addr != wantPred.Addr {
			return fmt.Errorf("sim: peer %s pred=%s want %s", p.Node.Self(), st.pred, wantPred)
		}
		if st.succ.Addr != wantSucc.Addr {
			return fmt.Errorf("sim: peer %s succ=%s want %s", p.Node.Self(), st.succ, wantSucc)
		}
		space := chord.Space{Bits: nw.Space.IndexBits()}
		for _, k := range st.keys {
			if !space.Between(chord.ID(k), wantPred.ID, p.ID()) {
				return fmt.Errorf("sim: peer %s holds key %x outside its arc (%x, %x]",
					p.Node.Self(), k, uint64(wantPred.ID), uint64(p.ID()))
			}
		}
	}
	return nil
}

// TotalKeys sums stored keys across peers.
func (nw *Network) TotalKeys() int {
	total := 0
	for _, n := range nw.LoadVector() {
		total += n
	}
	return total
}

// ChordCounters sums every live peer's RPC retry/backoff counters — the
// ring-level recovery cost under churn and faults. It is a convenience
// aggregation over per-node state; code that already holds
// Network.Telemetry can read the chord_rpc_* families directly.
func (nw *Network) ChordCounters() chord.Counters {
	var out chord.Counters
	for _, p := range nw.Peers {
		out.Add(p.Node.Counters())
	}
	return out
}

// TraceForQuery returns a query's reassembled refinement-tree trace.
// Requires Config.Trace; the trace is complete once Query has returned
// (result delivery happens-after the root records the trace).
func (nw *Network) TraceForQuery(qid squid.QueryID) (telemetry.Trace, bool) {
	if nw.Traces == nil {
		return telemetry.Trace{}, false
	}
	return nw.Traces.Get(qid)
}

// RecoveryCounters sums every live peer's query-recovery counters — the
// engine-level cost of riding out lost subtrees. Like ChordCounters it is a
// convenience aggregation; the squid_engine_recovery_total family in
// Network.Telemetry carries the same data per node.
func (nw *Network) RecoveryCounters() squid.RecoveryCounters {
	var out squid.RecoveryCounters
	for _, p := range nw.Peers {
		out.Add(p.Engine.Recovery())
	}
	return out
}
