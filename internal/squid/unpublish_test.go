package squid_test

import (
	"fmt"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

func TestUnpublishRemovesElement(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 20, Space: space, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]squid.Element, 30)
	for i := range elems {
		elems[i] = squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i*3)%len(testVocab)]},
			Data:   fmt.Sprintf("u%d", i),
		}
		if err := nw.Publish(i%len(nw.Peers), elems[i]); err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()

	unpublish := func(e squid.Element, via int) {
		p := nw.Peers[via]
		errCh := make(chan error, 1)
		p.Node.Invoke(func() { errCh <- p.Engine.Unpublish(e) })
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	unpublish(elems[7], 3)
	unpublish(elems[12], 9)
	nw.Quiesce()

	res, _ := nw.Query(0, keyspace.MustParse("(*, *)"))
	if len(res.Matches) != 28 {
		t.Fatalf("after 2 unpublishes: %d elements, want 28", len(res.Matches))
	}
	for _, m := range res.Matches {
		if m.Data == "u7" || m.Data == "u12" {
			t.Errorf("unpublished element %s still discoverable", m.Data)
		}
	}

	// Unpublishing something absent is harmless; bad values error.
	unpublish(squid.Element{Values: []string{"ghost", "ghost"}, Data: "none"}, 0)
	nw.Quiesce()
	p := nw.Peers[0]
	errCh := make(chan error, 1)
	p.Node.Invoke(func() { errCh <- p.Engine.Unpublish(squid.Element{Values: []string{"b_d"}}) })
	if err := <-errCh; err == nil {
		t.Error("unencodable unpublish should error")
	}
}

// TestUnpublishClearsReplicas verifies the removal reaches replica holders:
// after the owner fails, the unpublished element must not resurrect via
// promotion.
func TestUnpublishClearsReplicas(t *testing.T) {
	nw := buildReplicated(t, 20, 500, 2)
	q := keyspace.MustParse("(*, *)")
	res, _ := nw.Query(0, q)
	total := len(res.Matches)
	victimElem := res.Matches[0]

	// Unpublish one element, then kill its owner and heal.
	idx, err := nw.Space.Index(victimElem.Values)
	if err != nil {
		t.Fatal(err)
	}
	owner := nw.SuccessorOf(idx)
	errCh := make(chan error, 1)
	owner.Node.Invoke(func() { errCh <- owner.Engine.Unpublish(victimElem) })
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()

	for i, p := range nw.Peers {
		if p == owner {
			nw.KillPeer(i)
			break
		}
	}
	nw.StabilizeAll(8)

	res2, _ := nw.Query(0, q)
	for _, m := range res2.Matches {
		if m.Data == victimElem.Data && m.Values[0] == victimElem.Values[0] && m.Values[1] == victimElem.Values[1] {
			t.Fatalf("unpublished element %s resurrected after owner failure", m.Data)
		}
	}
	// Everything else survived via replication (the owner held >= 1
	// element: the unpublished one; the rest of its load was replicated).
	if len(res2.Matches) < total-1-50 { // generous slack: owner's other elements must mostly survive
		t.Errorf("too much data lost: %d of %d", len(res2.Matches), total-1)
	}
	want := len(nw.BruteForceMatches(q))
	if len(res2.Matches) != want {
		t.Errorf("query %d vs brute force %d", len(res2.Matches), want)
	}
}
