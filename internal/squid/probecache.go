package squid

import (
	"squid/internal/chord"
	"squid/internal/transport"
)

// cachedArc remembers one owner probe result: the node `owner` owned
// (pred, owner] when last heard from.
type cachedArc struct {
	pred, owner chord.NodeRef
}

// cacheLookup finds a cached arc containing the index, returning its
// owner.
func (e *Engine) cacheLookup(lo chord.ID) (cachedArc, bool) {
	sp := e.node.Space()
	for _, c := range e.arcCache {
		if sp.Between(lo, c.pred.ID, c.owner.ID) {
			return c, true
		}
	}
	return cachedArc{}, false
}

// cacheInsert records a probe result, evicting FIFO beyond the configured
// size and replacing entries for the same owner.
func (e *Engine) cacheInsert(pred, owner chord.NodeRef) {
	if e.opts.ProbeCacheSize <= 0 || owner.IsZero() || pred.IsZero() {
		return
	}
	for i, c := range e.arcCache {
		if c.owner.Addr == owner.Addr {
			e.arcCache[i] = cachedArc{pred: pred, owner: owner}
			return
		}
	}
	if len(e.arcCache) >= e.opts.ProbeCacheSize {
		e.arcCache = e.arcCache[1:]
	}
	e.arcCache = append(e.arcCache, cachedArc{pred: pred, owner: owner})
}

// cacheDrop forgets entries owned by a peer that stopped answering.
func (e *Engine) cacheDrop(owner transport.Addr) {
	kept := e.arcCache[:0]
	for _, c := range e.arcCache {
		if c.owner.Addr != owner {
			kept = append(kept, c)
		}
	}
	e.arcCache = kept
}
