package squid

import (
	"strconv"

	"squid/internal/telemetry"
)

// RecoveryCounters is a snapshot of an engine's cumulative query-recovery
// counters. Together with chord.Counters they quantify what failures cost:
// every re-dispatch is a subtree the deadline machinery saved, every
// abandonment a subtree it could not.
type RecoveryCounters struct {
	// Redispatches counts child subtrees re-sent after missing their
	// deadline.
	Redispatches uint64
	// Abandoned counts child subtrees given up on after exhausting
	// re-dispatch retries.
	Abandoned uint64
	// Partials counts root queries that completed with ErrPartialResult.
	Partials uint64
	// Acks counts child-receipt confirmations that re-armed a deadline.
	Acks uint64
}

// Add accumulates another snapshot (for network-wide aggregation).
func (c *RecoveryCounters) Add(o RecoveryCounters) {
	c.Redispatches += o.Redispatches
	c.Abandoned += o.Abandoned
	c.Partials += o.Partials
	c.Acks += o.Acks
}

// engineMetrics holds this engine's children of the shared telemetry
// families. Instruments are atomic: any goroutine (metric scrapers, the
// simulator) may snapshot them without entering the node's delivery
// goroutine.
type engineMetrics struct {
	queries      *telemetry.Counter
	clustersDone *telemetry.Counter
	matches      *telemetry.Counter
	subtreesSent *telemetry.Counter

	redispatches *telemetry.Counter
	abandoned    *telemetry.Counter
	partials     *telemetry.Counter
	acks         *telemetry.Counter

	probeHits   *telemetry.Counter
	probeMisses *telemetry.Counter

	keysHeld     *telemetry.Gauge
	replicaItems *telemetry.Counter
	replicaFulls *telemetry.Counter
}

// newEngineMetrics resolves the engine's metric children once (per-node
// labels), so hot-path increments are single lock-free atomic ops.
func newEngineMetrics(reg *telemetry.Registry, id uint64) engineMetrics {
	node := strconv.FormatUint(id, 16)
	recovery := reg.CounterVec("squid_engine_recovery_total",
		"query-recovery events: redispatch, abandon, partial, ack", "node", "event")
	probe := reg.CounterVec("squid_engine_probe_cache_total",
		"owner-probe cache lookups at the query root", "node", "outcome")
	return engineMetrics{
		queries: reg.CounterVec("squid_engine_queries_total",
			"flexible queries initiated at this node", "node").With(node),
		clustersDone: reg.CounterVec("squid_engine_clusters_processed_total",
			"refinement-tree clusters resolved against the local store", "node").With(node),
		matches: reg.CounterVec("squid_engine_matches_total",
			"matching elements found in the local store", "node").With(node),
		subtreesSent: reg.CounterVec("squid_engine_subtrees_dispatched_total",
			"child subtrees dispatched to other nodes", "node").With(node),
		redispatches: recovery.With(node, "redispatch"),
		abandoned:    recovery.With(node, "abandon"),
		partials:     recovery.With(node, "partial"),
		acks:         recovery.With(node, "ack"),
		probeHits:    probe.With(node, "hit"),
		probeMisses:  probe.With(node, "miss"),
		keysHeld: reg.GaugeVec("squid_store_keys_held",
			"distinct curve indices in the node's primary store", "node").With(node),
		replicaItems: reg.CounterVec("squid_replication_items_pushed_total",
			"items pushed to successor replicas (delta and full pushes)", "node").With(node),
		replicaFulls: reg.CounterVec("squid_replication_full_pushes_total",
			"full replica-set pushes (replica membership changed)", "node").With(node),
	}
}

// Recovery snapshots the engine's recovery counters. Safe from any
// goroutine. Zero before the engine is attached to its node.
func (e *Engine) Recovery() RecoveryCounters {
	if e.met.redispatches == nil {
		return RecoveryCounters{}
	}
	return RecoveryCounters{
		Redispatches: e.met.redispatches.Value(),
		Abandoned:    e.met.abandoned.Value(),
		Partials:     e.met.partials.Value(),
		Acks:         e.met.acks.Value(),
	}
}
