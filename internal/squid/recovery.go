package squid

import (
	"strconv"

	"squid/internal/telemetry"
)

// RecoveryCounters is a snapshot of an engine's cumulative query-recovery
// counters. Together with chord.Counters they quantify what failures cost:
// every re-dispatch is a subtree the deadline machinery saved, every
// abandonment a subtree it could not.
type RecoveryCounters struct {
	// Redispatches counts child subtrees re-sent after missing their
	// deadline.
	Redispatches uint64
	// Abandoned counts child subtrees given up on after exhausting
	// re-dispatch retries.
	Abandoned uint64
	// Partials counts root queries that completed with ErrPartialResult.
	Partials uint64
	// Acks counts child-receipt confirmations that re-armed a deadline.
	Acks uint64
}

// Add accumulates another snapshot (for network-wide aggregation).
func (c *RecoveryCounters) Add(o RecoveryCounters) {
	c.Redispatches += o.Redispatches
	c.Abandoned += o.Abandoned
	c.Partials += o.Partials
	c.Acks += o.Acks
}

// engineMetrics holds this engine's children of the shared telemetry
// families. Instruments are atomic: any goroutine (metric scrapers, the
// simulator) may snapshot them without entering the node's delivery
// goroutine.
type engineMetrics struct {
	queries      *telemetry.Counter
	clustersDone *telemetry.Counter
	matches      *telemetry.Counter
	subtreesSent *telemetry.Counter

	redispatches *telemetry.Counter
	abandoned    *telemetry.Counter
	partials     *telemetry.Counter
	acks         *telemetry.Counter

	probeHits   *telemetry.Counter
	probeMisses *telemetry.Counter

	// Query-scheduler instruments: pool depth, queue wait, admission sheds
	// (by where the shed was observed) and batched-dispatch coalescing.
	schedDepth  *telemetry.Gauge
	schedWait   *telemetry.Histogram
	shedRoot    *telemetry.Counter
	shedRemote  *telemetry.Counter
	shedChild   *telemetry.Counter
	batchesSent *telemetry.Counter
	batchedMsgs *telemetry.Counter

	keysHeld     *telemetry.Gauge
	replicaItems *telemetry.Counter
	replicaFulls *telemetry.Counter

	// Streaming-delivery instruments: streams opened, batches pushed to
	// consumers, increments forwarded upstream, cancel teardown traffic in
	// both directions, and popular-cluster result-cache outcomes.
	streams       *telemetry.Counter
	streamBatches *telemetry.Counter
	partialsSent  *telemetry.Counter
	cancelsSent   *telemetry.Counter
	cancelsRecv   *telemetry.Counter
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	cacheBypass   *telemetry.Counter
}

// schedWaitBounds buckets scheduler queue wait in nanoseconds: 100µs, 1ms,
// 10ms, 100ms, 1s (an +Inf bucket is implicit).
var schedWaitBounds = []int64{100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}

// newEngineMetrics resolves the engine's metric children once (per-node
// labels), so hot-path increments are single lock-free atomic ops.
func newEngineMetrics(reg *telemetry.Registry, id uint64) engineMetrics {
	node := strconv.FormatUint(id, 16)
	recovery := reg.CounterVec("squid_engine_recovery_total",
		"query-recovery events: redispatch, abandon, partial, ack", "node", "event")
	probe := reg.CounterVec("squid_engine_probe_cache_total",
		"owner-probe cache lookups at the query root", "node", "outcome")
	shed := reg.CounterVec("squid_sched_shed_total",
		"refinement jobs refused under admission control: root (local query), remote (incoming subtree), child (shed notice received for a dispatched child)",
		"node", "kind")
	cancel := reg.CounterVec("squid_stream_cancels_total",
		"QueryCancelMsg teardown traffic: sent (this node cut a child subtree) and recv (a dispatcher cut a subtree running here)",
		"node", "dir")
	rcache := reg.CounterVec("squid_result_cache_total",
		"popular-cluster result-cache lookups on incoming cluster batches: hit (answered from cache), miss (cacheable leaf, now cached), bypass (inner subtree, never cacheable)",
		"node", "outcome")
	return engineMetrics{
		queries: reg.CounterVec("squid_engine_queries_total",
			"flexible queries initiated at this node", "node").With(node),
		clustersDone: reg.CounterVec("squid_engine_clusters_processed_total",
			"refinement-tree clusters resolved against the local store", "node").With(node),
		matches: reg.CounterVec("squid_engine_matches_total",
			"matching elements found in the local store", "node").With(node),
		subtreesSent: reg.CounterVec("squid_engine_subtrees_dispatched_total",
			"child subtrees dispatched to other nodes", "node").With(node),
		redispatches: recovery.With(node, "redispatch"),
		abandoned:    recovery.With(node, "abandon"),
		partials:     recovery.With(node, "partial"),
		acks:         recovery.With(node, "ack"),
		probeHits:    probe.With(node, "hit"),
		probeMisses:  probe.With(node, "miss"),
		schedDepth: reg.GaugeVec("squid_sched_pending_jobs",
			"refinement jobs admitted to the query scheduler but not yet completed", "node").With(node),
		schedWait: reg.HistogramVec("squid_sched_queue_wait_ns", "nanoseconds a refinement job waited between admission and a worker picking it up (0 under the simulator's nil clock)",
			schedWaitBounds, "node").With(node),
		shedRoot:   shed.With(node, "root"),
		shedRemote: shed.With(node, "remote"),
		shedChild:  shed.With(node, "child"),
		batchesSent: reg.CounterVec("squid_dispatch_batches_total",
			"BatchMsg transmissions (dispatch rounds that coalesced >1 message to one destination)", "node").With(node),
		batchedMsgs: reg.CounterVec("squid_dispatch_batched_queries_total",
			"ClusterQueryMsg entries shipped inside BatchMsg transmissions", "node").With(node),
		keysHeld: reg.GaugeVec("squid_store_keys_held",
			"distinct curve indices in the node's primary store", "node").With(node),
		replicaItems: reg.CounterVec("squid_replication_items_pushed_total",
			"items pushed to successor replicas (delta and full pushes)", "node").With(node),
		replicaFulls: reg.CounterVec("squid_replication_full_pushes_total",
			"full replica-set pushes (replica membership changed)", "node").With(node),
		streams: reg.CounterVec("squid_stream_queries_total",
			"streaming queries (QueryStream/QueryStreamFunc) initiated at this node", "node").With(node),
		streamBatches: reg.CounterVec("squid_stream_batches_total",
			"partial match batches delivered to local stream consumers", "node").With(node),
		partialsSent: reg.CounterVec("squid_stream_partials_sent_total",
			"PartialResultMsg increments forwarded toward a remote query root", "node").With(node),
		cancelsSent: cancel.With(node, "sent"),
		cancelsRecv: cancel.With(node, "recv"),
		cacheHits:   rcache.With(node, "hit"),
		cacheMisses: rcache.With(node, "miss"),
		cacheBypass: rcache.With(node, "bypass"),
	}
}

// Recovery snapshots the engine's recovery counters. Safe from any
// goroutine. Zero before the engine is attached to its node.
//
// This is a convenience snapshot over the telemetry registry; new code that
// already holds the shared *telemetry.Registry should read the
// squid_engine_recovery_total family directly instead.
func (e *Engine) Recovery() RecoveryCounters {
	if e.met.redispatches == nil {
		return RecoveryCounters{}
	}
	return RecoveryCounters{
		Redispatches: e.met.redispatches.Value(),
		Abandoned:    e.met.abandoned.Value(),
		Partials:     e.met.partials.Value(),
		Acks:         e.met.acks.Value(),
	}
}
