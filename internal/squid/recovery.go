package squid

import "sync/atomic"

// RecoveryCounters is a snapshot of an engine's cumulative query-recovery
// counters. Together with chord.Counters they quantify what failures cost:
// every re-dispatch is a subtree the deadline machinery saved, every
// abandonment a subtree it could not.
type RecoveryCounters struct {
	// Redispatches counts child subtrees re-sent after missing their
	// deadline.
	Redispatches uint64
	// Abandoned counts child subtrees given up on after exhausting
	// re-dispatch retries.
	Abandoned uint64
	// Partials counts root queries that completed with ErrPartialResult.
	Partials uint64
	// Acks counts child-receipt confirmations that re-armed a deadline.
	Acks uint64
}

// Add accumulates another snapshot (for network-wide aggregation).
func (c *RecoveryCounters) Add(o RecoveryCounters) {
	c.Redispatches += o.Redispatches
	c.Abandoned += o.Abandoned
	c.Partials += o.Partials
	c.Acks += o.Acks
}

// recoveryCounters is the engine-internal atomic representation; atomics so
// any goroutine (metric scrapers, the simulator) may snapshot without
// entering the node's delivery goroutine.
type recoveryCounters struct {
	redispatches atomic.Uint64
	abandoned    atomic.Uint64
	partials     atomic.Uint64
	acks         atomic.Uint64
}

// Recovery snapshots the engine's recovery counters. Safe from any
// goroutine.
func (e *Engine) Recovery() RecoveryCounters {
	return RecoveryCounters{
		Redispatches: e.ctr.redispatches.Load(),
		Abandoned:    e.ctr.abandoned.Load(),
		Partials:     e.ctr.partials.Load(),
		Acks:         e.ctr.acks.Load(),
	}
}
