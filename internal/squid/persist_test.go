package squid

import (
	"bytes"
	"strings"
	"testing"

	"squid/internal/chord"
	"squid/internal/sfc"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	s.Add(100, Element{Values: []string{"a", "b"}, Data: "one"})
	s.Add(100, Element{Values: []string{"a", "b"}, Data: "two"})
	s.Add(7, Element{Values: []string{"x"}, Data: "three"})
	s.Add(60000, Element{Values: []string{"z", "z"}, Data: "four"})

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(chord.Space{Bits: 16})
	restored.Add(999, Element{Data: "stale"}) // must be replaced, not merged
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Keys() != 3 || restored.Elements() != 4 {
		t.Fatalf("restored %d keys / %d elements", restored.Keys(), restored.Elements())
	}
	if len(restored.At(999)) != 0 {
		t.Error("load must replace prior contents")
	}
	if got := restored.At(100); len(got) != 2 || got[0].Data != "one" {
		t.Errorf("bucket 100 = %v", got)
	}
	// Scan order intact.
	var keys []uint64
	restored.ScanSpan(sfc.Interval{Lo: 0, Hi: 1<<16 - 1}, func(k uint64, _ Element) {
		if len(keys) == 0 || keys[len(keys)-1] != k {
			keys = append(keys, k)
		}
	})
	want := []uint64{7, 100, 60000}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan order %v", keys)
		}
	}
}

func TestStoreLoadRejectsGarbage(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	if _, err := s.ReadFrom(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := s.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail to load")
	}
}

func TestStoreSaveLoadEmpty(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewStore(chord.Space{Bits: 16})
	if _, err := r.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Keys() != 0 {
		t.Errorf("empty round trip has %d keys", r.Keys())
	}
}
