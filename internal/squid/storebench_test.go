package squid

import (
	"testing"

	"squid/internal/chord"
	"squid/internal/sfc"
)

func benchStore(n int) *Store {
	s := NewStore(chord.Space{Bits: 32})
	for i := 0; i < n; i++ {
		s.Add(uint64(i)*2654435761%(1<<32), Element{Data: "x"})
	}
	return s
}

// BenchmarkStoreAdd measures ordered insertion at a realistic per-node
// store size (a peer holds hundreds to a few thousand keys; the sorted
// slice is rebuilt per batch so cost stays representative rather than
// quadratic in b.N).
func BenchmarkStoreAdd(b *testing.B) {
	const storeSize = 2048
	s := NewStore(chord.Space{Bits: 32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%storeSize == 0 {
			s = NewStore(chord.Space{Bits: 32})
		}
		s.Add(uint64(i)*2654435761%(1<<32), Element{Data: "x"})
	}
}

// BenchmarkStoreScanSpan measures a 1% span scan over 100k keys.
func BenchmarkStoreScanSpan(b *testing.B) {
	s := benchStore(100_000)
	span := sfc.Interval{Lo: 1 << 24, Hi: 1<<24 + 1<<25}
	b.ReportAllocs()
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		s.ScanSpan(span, func(uint64, Element) { count++ })
	}
	_ = count
}

// BenchmarkStoreHandover measures arc extraction plus re-ingestion.
func BenchmarkStoreHandover(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchStore(10_000)
		b.StartTimer()
		items := s.HandoverOut(1<<30, 1<<31)
		other := NewStore(chord.Space{Bits: 32})
		other.HandoverIn(items)
	}
}
