package squid_test

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/sim"
	"squid/internal/squid"
)

// TestPublishCombinations indexes documents with more keywords than
// dimensions; any 2-keyword (sorted) exact query and any 1-keyword query
// must find them, and Dedup collapses multi-tuple hits.
func TestPublishCombinations(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 20, Space: space, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := nw.Peers[0]
	type pub struct {
		n   int
		err error
	}
	ch := make(chan pub, 1)
	p.Node.Invoke(func() {
		n, err := p.Engine.PublishCombinations(
			[]string{"Storage", "network", "distributed", "storage"}, // dup + case fold
			"paper.pdf")
		ch <- pub{n, err}
	})
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.n != 3 { // C(3,2) after dedup/fold: {distributed, network, storage}
		t.Fatalf("published %d tuples, want 3", got.n)
	}
	nw.Quiesce()

	for _, qs := range []string{
		"(distributed, network)", // sorted pairs hit their combination tuple
		"(distributed, storage)",
		"(network, storage)",
		"(network, *)", // positional queries work when the position is right
		"(*, storage)",
	} {
		res, _ := nw.Query(1, keyspace.MustParse(qs))
		if res.Err != nil {
			t.Fatalf("%s: %v", qs, res.Err)
		}
		unique := squid.Dedup(res.Matches)
		if len(unique) != 1 || unique[0].Data != "paper.pdf" {
			t.Errorf("%s: found %d unique (%d raw)", qs, len(unique), len(res.Matches))
		}
	}

	// QueryKeywords handles position-free keyword search (a word may sit
	// on any axis of a sorted combination tuple).
	askWords := func(words ...string) squid.Result {
		rch := make(chan squid.Result, 1)
		p1 := nw.Peers[1]
		p1.Node.Invoke(func() {
			p1.Engine.QueryKeywords(words, func(r squid.Result) { rch <- r })
		})
		return <-rch
	}
	for _, words := range [][]string{
		{"storage"}, {"network"}, {"distributed"},
		{"storage", "distributed"}, // unsorted input is fine
		{"Network", "storage"},
	} {
		r := askWords(words...)
		if r.Err != nil {
			t.Fatalf("QueryKeywords(%v): %v", words, r.Err)
		}
		if len(r.Matches) != 1 || r.Matches[0].Data != "paper.pdf" {
			t.Errorf("QueryKeywords(%v): %d matches", words, len(r.Matches))
		}
	}
	if r := askWords("zebra"); len(r.Matches) != 0 {
		t.Errorf("QueryKeywords(zebra) found %d", len(r.Matches))
	}
	if r := askWords(); r.Err == nil {
		t.Error("empty QueryKeywords should error")
	}
	if r := askWords("a", "b", "c"); r.Err == nil {
		t.Error("too many keywords should error")
	}
	// A broad query may hit several tuples; Dedup must collapse them.
	res, _ := nw.Query(0, keyspace.MustParse("(*, *)"))
	if len(res.Matches) != 3 {
		t.Errorf("wildcard saw %d raw tuples, want 3", len(res.Matches))
	}
	if got := squid.Dedup(res.Matches); len(got) != 1 {
		t.Errorf("Dedup left %d", len(got))
	}

	// Few keywords: published as a single (padded) tuple.
	p.Node.Invoke(func() {
		n, err := p.Engine.PublishCombinations([]string{"solo"}, "single.txt")
		ch <- pub{n, err}
	})
	if got := <-ch; got.err != nil || got.n != 1 {
		t.Errorf("single keyword publish: %+v", got)
	}
	// No keywords: error.
	p.Node.Invoke(func() {
		n, err := p.Engine.PublishCombinations([]string{"  ", ""}, "none")
		ch <- pub{n, err}
	})
	if got := <-ch; got.err == nil {
		t.Error("empty keywords should error")
	}
}

// TestQueryKeywordsStream exercises the streaming keyword multiplexer:
// placement sub-streams merge into one deduplicated delivery, Limit
// applies to the distinct union, keyword streams refuse cursors, and
// QueryKeywordsCtx honours an already-done context.
func TestQueryKeywordsStream(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 20, Space: space, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := nw.Peers[0]
	errCh := make(chan error, 1)
	for _, doc := range []struct {
		data  string
		words []string
	}{
		{"a.txt", []string{"alpha", "storage", "network"}},
		{"b.txt", []string{"beta", "storage", "mesh"}},
		{"c.txt", []string{"gamma", "storage", "grid"}},
	} {
		doc := doc
		p.Node.Invoke(func() {
			_, err := p.Engine.PublishCombinations(doc.words, doc.data)
			errCh <- err
		})
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()

	run := func(words []string, opts ...squid.QueryOption) ([]string, error) {
		t.Helper()
		evCh := make(chan squid.StreamEvent, 64)
		startCh := make(chan error, 1)
		p1 := nw.Peers[1]
		p1.Node.Invoke(func() {
			_, err := p1.Engine.QueryKeywordsStream(context.Background(), words,
				func(ev squid.StreamEvent) { evCh <- ev }, opts...)
			startCh <- err
		})
		if err := <-startCh; err != nil {
			t.Fatalf("QueryKeywordsStream(%v): %v", words, err)
		}
		nw.Quiesce()
		var got []string
		for {
			select {
			case ev := <-evCh:
				if ev.Done {
					return got, ev.Err
				}
				for _, m := range ev.Matches {
					got = append(got, m.Data)
				}
			default:
				t.Fatalf("QueryKeywordsStream(%v) never delivered Done", words)
			}
		}
	}

	// Unlimited: every matching document exactly once, despite each living
	// on several combination tuples and matching several placements.
	got, streamErr := run([]string{"storage"})
	if streamErr != nil {
		t.Fatalf("stream error: %v", streamErr)
	}
	sort.Strings(got)
	if want := []string{"a.txt", "b.txt", "c.txt"}; !equalSets(got, want) {
		t.Errorf("streamed union = %v, want %v", got, want)
	}

	// Limit applies to the deduplicated union.
	got, streamErr = run([]string{"storage"}, squid.Limit(2))
	if streamErr != nil {
		t.Fatalf("limited stream error: %v", streamErr)
	}
	if len(got) != 2 {
		t.Errorf("Limit(2) delivered %d distinct: %v", len(got), got)
	}

	// Cursors do not compose across placements: WithCursor is a start error.
	full, _ := nw.QueryStream(0, keyspace.MustParse("(storage, *)"))
	startCh := make(chan error, 1)
	p.Node.Invoke(func() {
		_, err := p.Engine.QueryKeywordsStream(context.Background(), []string{"storage"},
			func(squid.StreamEvent) { t.Error("cursor-resumed keyword stream delivered") },
			squid.WithCursor(full.Cursor))
		startCh <- err
	})
	if err := <-startCh; err == nil {
		t.Error("WithCursor on a keyword stream should be rejected")
	}

	// A context that is already done stops QueryKeywordsCtx before start.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Node.Invoke(func() {
		errCh <- p.Engine.QueryKeywordsCtx(ctx, []string{"storage"},
			func(squid.Result) { t.Error("callback fired after pre-cancelled start") })
	})
	if err := <-errCh; err == nil {
		t.Error("QueryKeywordsCtx with done context should error")
	}
}

// TestProbeCacheReducesProbes runs the same query twice from one peer;
// with the cache enabled the second run needs (almost) no probe messages
// and returns identical results.
func TestProbeCacheReducesProbes(t *testing.T) {
	nw := buildNetwork(t, 60, 5000, squid.Options{ProbeCacheSize: 256})
	q := keyspace.MustParse("(comp*, *)")

	res1, qm1 := nw.Query(0, q)
	res2, qm2 := nw.Query(0, q)
	if res1.Err != nil || res2.Err != nil {
		t.Fatal(res1.Err, res2.Err)
	}
	if len(res1.Matches) != len(res2.Matches) {
		t.Fatalf("cache changed results: %d vs %d", len(res1.Matches), len(res2.Matches))
	}
	t.Logf("probes: first=%d second=%d", qm1.ProbeMessages, qm2.ProbeMessages)
	if qm2.ProbeMessages >= qm1.ProbeMessages && qm1.ProbeMessages > 0 {
		t.Errorf("cached run should probe less: %d vs %d", qm2.ProbeMessages, qm1.ProbeMessages)
	}

	// Results stay complete against ground truth.
	want := len(nw.BruteForceMatches(q))
	if len(res2.Matches) != want {
		t.Errorf("cached query incomplete: %d vs %d", len(res2.Matches), want)
	}
}

// TestProbeCacheSurvivesChurn: after the cached owner dies, queries still
// complete correctly (stale entries fall back to probing).
func TestProbeCacheSurvivesChurn(t *testing.T) {
	nw := buildNetwork(t, 30, 3000, squid.Options{ProbeCacheSize: 64, Replicas: 2})
	nw.PushReplicasAll()
	q := keyspace.MustParse("(d*, *)")
	res1, _ := nw.Query(0, q)
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}

	// Kill a peer that likely serves this query, heal, re-query.
	nw.KillPeer(len(nw.Peers) / 2)
	nw.StabilizeAll(8)
	want := len(nw.BruteForceMatches(q))
	res2, _ := nw.Query(0, q)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if len(res2.Matches) != want {
		t.Errorf("post-churn cached query found %d, want %d", len(res2.Matches), want)
	}
}

// TestEngineStateRoundTripAndReconcile saves a node's state, moves
// ownership, and verifies ReconcileOwnership re-routes stale items.
func TestEngineStateRoundTripAndReconcile(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.BuildWithIDs(sim.Config{Space: space}, []uint64{1 << 20, 1 << 28})
	if err != nil {
		t.Fatal(err)
	}
	p := nw.Peers[0]
	for i := 0; i < 50; i++ {
		if err := nw.Publish(0, squid.Element{
			Values: []string{fmt.Sprintf("w%02d", i), "x"}, Data: fmt.Sprintf("d%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()

	var buf bytes.Buffer
	done := make(chan error, 1)
	p.Node.Invoke(func() { done <- p.Engine.SaveState(&buf) })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	before := make(chan int, 1)
	p.Node.Invoke(func() { before <- p.Engine.LocalStore().Keys() })
	savedKeys := <-before
	if savedKeys == 0 {
		t.Fatal("nothing saved")
	}

	// Restore into a fresh engine on a different node whose arc does NOT
	// cover everything; reconcile must re-route what it no longer owns.
	p2 := nw.Peers[1]
	p2.Node.Invoke(func() { done <- p2.Engine.LoadState(&buf) })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	moved := make(chan int, 1)
	p2.Node.Invoke(func() { moved <- p2.Engine.ReconcileOwnership() })
	reRouted := <-moved
	nw.Quiesce()

	// Every item must now be exactly at its oracle owner... p1 still has
	// originals, so check p2 holds only owned keys and re-routed the rest.
	check := make(chan bool, 1)
	p2.Node.Invoke(func() {
		ok := true
		st := p2.Engine.LocalStore()
		st.ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(k uint64, _ squid.Element) {
			if !p2.Node.Owns(chord.ID(k)) {
				ok = false
			}
		})
		check <- ok
	})
	if !<-check {
		t.Error("reconcile left foreign keys in place")
	}
	if reRouted == 0 {
		t.Error("expected some keys to be re-routed")
	}
}
