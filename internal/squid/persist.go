package squid

import (
	"encoding/gob"
	"fmt"
	"io"

	"squid/internal/chord"
	"squid/internal/sfc"
)

// storeImage is the serialized form of a Store.
type storeImage struct {
	Version int
	Keys    []uint64
	Buckets [][]Element
}

const storeImageVersion = 1

// WriteTo serializes the store (gob). Implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	img := storeImage{Version: storeImageVersion, Keys: append([]uint64(nil), s.sorted...)}
	img.Buckets = make([][]Element, len(img.Keys))
	for i, k := range img.Keys {
		img.Buckets[i] = s.byKey[k]
	}
	s.mu.RUnlock()
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(img); err != nil {
		return cw.n, fmt.Errorf("squid: store save: %w", err)
	}
	return cw.n, nil
}

// ReadFrom replaces the store's contents with a serialized image.
// Implements io.ReaderFrom.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	var img storeImage
	if err := gob.NewDecoder(cr).Decode(&img); err != nil {
		return cr.n, fmt.Errorf("squid: store load: %w", err)
	}
	if img.Version != storeImageVersion {
		return cr.n, fmt.Errorf("squid: store image version %d unsupported", img.Version)
	}
	if len(img.Keys) != len(img.Buckets) {
		return cr.n, fmt.Errorf("squid: corrupt store image: %d keys, %d buckets", len(img.Keys), len(img.Buckets))
	}
	s.mu.Lock()
	s.byKey = make(map[uint64][]Element, len(img.Keys))
	s.sorted = s.sorted[:0]
	s.mu.Unlock()
	for i, k := range img.Keys {
		for _, e := range img.Buckets[i] {
			s.Add(k, e)
		}
	}
	return cr.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// SaveState serializes the engine's primary store (replicas are soft state
// rebuilt by PushReplicas). squid-node uses it to survive restarts.
func (e *Engine) SaveState(w io.Writer) error {
	_, err := e.store.WriteTo(w)
	return err
}

// LoadState restores a saved store. Call before joining a ring; after the
// join completes, run ReconcileOwnership so items whose arc moved while
// the node was down are re-routed to their current owners.
func (e *Engine) LoadState(r io.Reader) error {
	_, err := e.store.ReadFrom(r)
	return err
}

// ReconcileOwnership re-publishes every stored item this node no longer
// owns (after a restart-and-rejoin, ownership may have shifted). Returns
// how many items were re-routed.
func (e *Engine) ReconcileOwnership() int {
	var stale []chord.Item
	e.store.ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(key uint64, elem Element) {
		if !e.node.Owns(chord.ID(key)) {
			stale = append(stale, chord.Item{Key: chord.ID(key), Value: elem})
		}
	})
	for _, it := range stale {
		elem := it.Value.(Element)
		e.node.Route(it.Key, PublishMsg{Elem: elem}, 0)
	}
	// Drop the re-routed keys locally; arcs (pred, self] keep the rest.
	if len(stale) > 0 {
		keep := NewStore(e.store.space)
		e.store.ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(key uint64, elem Element) {
			if e.node.Owns(chord.ID(key)) {
				keep.Add(key, elem)
			}
		})
		e.store.replaceWith(keep)
	}
	return len(stale)
}
