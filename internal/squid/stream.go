package squid

import (
	"context"
	"encoding/base64"
	"fmt"
	"sync"

	"squid/internal/keyspace"
	"squid/internal/wire"
)

// QueryOption tunes one streaming query (as opposed to Option, which tunes
// the whole engine).
type QueryOption func(*queryConfig)

type queryConfig struct {
	limit     int
	afterPos  uint64
	afterSkip int
	hasPos    bool
	exhausted bool
}

// Limit stops the query after k matches have been delivered: the stream
// completes early and every outstanding subtree is torn down with
// QueryCancelMsg, so the long tail of refinement messages is never sent.
// k <= 0 means unlimited.
//
// A limited stream delivers in curve order: matches are held back until
// every lower curve span has resolved, so the k delivered matches are the
// k lowest undelivered positions and the resume cursor advances strictly
// page over page (unlimited streams deliver in completion order instead,
// trading order for latency).
func Limit(k int) QueryOption {
	return func(c *queryConfig) { c.limit = k }
}

// WithCursor resumes a query from a cursor taken on an earlier stream over
// the same query: refinement restarts at the cursor's curve position,
// skipping clusters that were already fully delivered. Matches at or past
// the position that had already been delivered when the cursor was taken
// may be delivered again (at-least-once pagination); deduplicate pages with
// Dedup when that matters. An invalid cursor is ignored; an exhausted one
// yields an immediately-done empty stream.
func WithCursor(cur Cursor) QueryOption {
	return func(c *queryConfig) {
		st, err := cur.decode()
		if err != nil {
			return
		}
		if st.exhausted {
			c.exhausted = true
			return
		}
		c.afterPos = st.pos
		c.afterSkip = st.skip
		c.hasPos = true
	}
}

// Cursor is an opaque, resumable position in a query's result stream,
// keyed on curve position: it captures the query, the lowest curve index
// whose results had not been fully delivered when the stream ended, and —
// because distinct elements can share a curve index (identical keyword
// tuples) — how many elements at that index were already delivered, in
// their owner's stable store order. Feed it back via WithCursor (the query
// itself is recoverable with CursorQuery) to continue a browsing-style
// iteration where the previous page stopped.
type Cursor string

// cursorState is the decoded form: version-tagged so the format can evolve.
type cursorState struct {
	q         keyspace.Query
	pos       uint64
	skip      int // elements at pos already delivered (store order)
	exhausted bool
}

const cursorVersion = 1

func encodeCursor(q keyspace.Query, pos uint64, skip int, exhausted bool) Cursor {
	var e wire.Encoder
	e.Uvarint(cursorVersion)
	e.Bool(exhausted)
	e.U64(pos)
	e.Uvarint(uint64(skip))
	e.Uvarint(uint64(len(q)))
	for _, t := range q {
		e.Uvarint(uint64(t.Kind))
		e.String(t.Value)
		e.String(t.Lo)
		e.String(t.Hi)
	}
	return Cursor(base64.RawURLEncoding.EncodeToString(e.Bytes()))
}

func (c Cursor) decode() (cursorState, error) {
	raw, err := base64.RawURLEncoding.DecodeString(string(c))
	if err != nil {
		return cursorState{}, fmt.Errorf("squid: bad cursor: %w", err)
	}
	d := wire.NewDecoder(raw)
	if v := d.Uvarint(); v != cursorVersion {
		return cursorState{}, fmt.Errorf("squid: bad cursor: unknown version %d", v)
	}
	var st cursorState
	st.exhausted = d.Bool()
	st.pos = d.U64()
	st.skip = int(d.Uvarint())
	n := d.Len(4)
	for i := 0; i < n; i++ {
		var t keyspace.Term
		t.Kind = keyspace.TermKind(d.Uvarint())
		t.Value = d.String()
		t.Lo = d.String()
		t.Hi = d.String()
		st.q = append(st.q, t)
	}
	if err := d.Close(); err != nil {
		return cursorState{}, fmt.Errorf("squid: bad cursor: %w", err)
	}
	return st, nil
}

// CursorQuery recovers the query a cursor was taken over, so a caller can
// resume a browse without holding the original query alongside the cursor.
func CursorQuery(cur Cursor) (keyspace.Query, error) {
	st, err := cur.decode()
	if err != nil {
		return nil, err
	}
	return st.q, nil
}

// Exhausted reports whether the cursor marks a fully delivered stream:
// resuming from it yields an empty, immediately-done stream.
func (c Cursor) Exhausted() bool {
	st, err := c.decode()
	return err == nil && st.exhausted
}

// StreamEvent is one delivery of a streaming query: a batch of fresh
// matches, or the terminal event (Done true) carrying the stream's error
// and resume cursor. Matches batches arrive in subtree-completion order,
// not curve order.
type StreamEvent struct {
	QID     QueryID
	Matches []Element
	Done    bool
	Err     error
	Cursor  Cursor
}

// streamSink receives a streaming root subtree's deliveries on the node's
// delivery goroutine. ResultStream bridges them to a consumer goroutine;
// funcSink hands them to a callback in place (the simulators' deterministic
// path).
type streamSink interface {
	pushBatch(qid QueryID, batch []Element)
	finishStream(qid QueryID, err error, cur Cursor)
}

// funcSink adapts a StreamEvent callback to the streamSink contract.
type funcSink func(StreamEvent)

func (f funcSink) pushBatch(qid QueryID, batch []Element) {
	f(StreamEvent{QID: qid, Matches: batch})
}

func (f funcSink) finishStream(qid QueryID, err error, cur Cursor) {
	f(StreamEvent{QID: qid, Done: true, Err: err, Cursor: cur})
}

// ResultStream is the consumer side of QueryStream: partial result batches
// flow in as subtrees of the refinement tree complete, and the consumer
// pulls them with Next from any goroutine. The engine never blocks on a
// slow consumer — batches buffer inside the stream.
type ResultStream struct {
	qid QueryID
	q   keyspace.Query

	mu      sync.Mutex
	cond    *sync.Cond
	batches [][]Element
	total   int
	done    bool
	err     error
	cursor  Cursor
	cancel  context.CancelFunc
}

func newResultStream(qid QueryID, q keyspace.Query, cancel context.CancelFunc) *ResultStream {
	s := &ResultStream{qid: qid, q: q, cancel: cancel}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// QID returns the stream's query identifier (for metrics and traces).
func (s *ResultStream) QID() QueryID { return s.qid }

// Next blocks until the next batch of matches is available and returns it;
// ok is false once the stream has completed and every batch was consumed.
// Batches are never empty.
func (s *ResultStream) Next() (batch []Element, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.batches) == 0 && !s.done {
		s.cond.Wait()
	}
	if len(s.batches) == 0 {
		return nil, false
	}
	batch = s.batches[0]
	s.batches = s.batches[1:]
	return batch, true
}

// Err returns the stream's terminal error: nil for a complete result set,
// ErrPartialResult when subtrees were lost to failures, or the context's
// error when the query was cancelled. Valid once Next has returned false
// (it reports the current state before then).
func (s *ResultStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Cursor returns the stream's resume cursor: after early termination
// (Limit reached, Cancel, context done) it marks where refinement was cut
// so a follow-up query continues from there; after full delivery it is
// exhausted. Empty until the stream completes.
func (s *ResultStream) Cursor() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Cancel stops the query: outstanding subtrees are torn down with
// QueryCancelMsg and the stream completes with the cancellation as its
// error. Safe from any goroutine; idempotent.
func (s *ResultStream) Cancel() {
	if s.cancel != nil {
		s.cancel()
	}
}

// Collect drains the stream and returns every delivered match with the
// terminal error — the bridge from streaming back to the one-shot Result
// shape.
func (s *ResultStream) Collect() ([]Element, error) {
	var all []Element
	for {
		batch, ok := s.Next()
		if !ok {
			return all, s.Err()
		}
		all = append(all, batch...)
	}
}

// pushBatch implements streamSink (delivery goroutine side).
func (s *ResultStream) pushBatch(_ QueryID, batch []Element) {
	s.mu.Lock()
	s.batches = append(s.batches, batch)
	s.total += len(batch)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// finishStream implements streamSink (delivery goroutine side). The
// stream's derived context is released here so a fully consumed stream
// does not pin its parent context's cancellation list.
func (s *ResultStream) finishStream(_ QueryID, err error, cur Cursor) {
	s.mu.Lock()
	s.done = true
	s.err = err
	s.cursor = cur
	s.mu.Unlock()
	s.cond.Broadcast()
	if s.cancel != nil {
		s.cancel()
	}
}

// QueryStream resolves a flexible query as a stream: partial results are
// delivered to the returned ResultStream as subtrees of the refinement
// tree complete, instead of one terminal callback with the assembled set.
// An unlimited stream delivers exactly the match set Query would; Limit(k)
// additionally terminates early after k matches, cancelling outstanding
// subtrees so their refinement traffic is never sent, and WithCursor
// resumes a previous stream's position for browsing-style iteration.
//
// A non-nil error means the query was not started (invalid query, context
// already done, admission shed — see QueryCtx). Like all engine entry
// points, call it from App upcalls or through node.Invoke; the returned
// stream itself may then be consumed from any goroutine.
//
//lint:entry delivery
func (e *Engine) QueryStream(ctx context.Context, q keyspace.Query, opts ...QueryOption) (*ResultStream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	qid := nextQID()
	s := newResultStream(qid, q, cancel)
	if err := e.queryStream(ctx, qid, q, s, opts...); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// QueryStreamFunc is QueryStream with callback delivery: every event —
// match batches, then exactly one Done — fires on the node's delivery
// goroutine, which keeps streaming consumable inside the simulators'
// deterministic event loops (a ResultStream consumer needs its own
// goroutine; a funcSink does not). Cancel mid-stream with CancelQuery or
// through ctx. A non-nil error means the query was not started and deliver
// will never fire.
//
//lint:entry delivery
func (e *Engine) QueryStreamFunc(ctx context.Context, q keyspace.Query, deliver func(StreamEvent), opts ...QueryOption) (QueryID, error) {
	qid := nextQID()
	return qid, e.queryStream(ctx, qid, q, funcSink(deliver), opts...)
}

// queryStream is the shared streaming root: configure the subtree, start
// it, surface start failures synchronously.
func (e *Engine) queryStream(ctx context.Context, qid QueryID, q keyspace.Query, sink streamSink, opts ...QueryOption) error {
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	e.met.queries.Inc()
	e.met.streams.Inc()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := &subtree{
		qid: qid, q: q, kind: "root",
		stream: sink, limit: cfg.limit,
		afterPos: cfg.afterPos, afterSkip: cfg.afterSkip, hasPos: cfg.hasPos,
	}
	if cfg.exhausted {
		// Resuming past the end: an empty, already-done stream.
		st.dispatched = true
		e.sampleRoot(st)
		e.finishSubtree(st)
		return nil
	}
	return e.startRoot(ctx, q, st)
}

// CancelQuery cancels a query rooted at this engine before it completes:
// gathered results are delivered (callback roots fire with
// context.Canceled; stream roots finish with it), and — for streaming
// queries — outstanding remote subtrees are torn down with QueryCancelMsg.
// Reports whether the query was found still in flight. Like all engine
// entry points, call it from App upcalls or through node.Invoke.
//
//lint:entry delivery
func (e *Engine) CancelQuery(qid QueryID) bool {
	st, ok := e.roots[qid]
	if !ok || st.finished {
		return false
	}
	e.cancelQuery(st, context.Canceled)
	return true
}
