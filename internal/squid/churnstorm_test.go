package squid_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

// TestChurnStormInvariants is the membership-correctness soak: bursts of
// overlapping joins, graceful leaves, and abrupt kills land between
// stabilization sweeps, so repairs for one event run while another is still
// in flight. The global ring checker (chord.CheckRing) runs after every
// stabilization round via sim's CheckInvariants hook; under the corrected
// membership rules the cumulative hard-violation count must be exactly
// zero — Zave's invariants hold at every reachable state, not just after
// the ring settles. Query exactness is re-asserted after each storm heals.
//
// Scaling knobs (for the scheduled CI soak):
//
//	SQUID_CHURN_STORMS=n  number of churn storms (default 3)
//	SQUID_CHURN_LEGACY=1  run under the original pseudo-code rules and
//	                      report the violation count instead of asserting
//	                      zero (the EXPERIMENTS.md comparison numbers)
func TestChurnStormInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("churn storm soak skipped in short mode")
	}
	storms := 3
	if s := os.Getenv("SQUID_CHURN_STORMS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SQUID_CHURN_STORMS=%q", s)
		}
		storms = n
	}
	legacy := os.Getenv("SQUID_CHURN_LEGACY") == "1"

	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: 16, Space: space, Seed: 91,
		Engine:          squid.Options{Replicas: 2},
		Chord:           chord.Config{LegacyRules: legacy},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))

	published := 0
	publish := func(n int) {
		for i := 0; i < n; i++ {
			e := squid.Element{
				Values: []string{randSoakWord(rng), randSoakWord(rng)},
				Data:   fmt.Sprintf("storm-%05d", published),
			}
			if err := nw.Publish(rng.Intn(len(nw.Peers)), e); err != nil {
				t.Fatal(err)
			}
			published++
		}
		nw.Quiesce()
		nw.PushReplicasAll()
	}
	publish(300)

	queries := []keyspace.Query{
		keyspace.MustParse("(a*, *)"),
		keyspace.MustParse("(*, m*)"),
		keyspace.MustParse("(*, *)"),
	}
	verify := func(storm int) {
		if err := nw.VerifyConsistent(); err != nil {
			t.Fatalf("storm %d: %v", storm, err)
		}
		for _, q := range queries {
			want := len(nw.BruteForceMatches(q))
			res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
			if res.Err != nil {
				t.Fatalf("storm %d: %s: %v", storm, q, res.Err)
			}
			if len(res.Matches) != want {
				t.Fatalf("storm %d: %s found %d, ground truth %d",
					storm, q, len(res.Matches), want)
			}
		}
	}

	for storm := 0; storm < storms; storm++ {
		// A storm is a burst of membership events with NO stabilization in
		// between: each event's repair overlaps the next event. At most one
		// abrupt kill per storm so replication (Replicas: 2) can always
		// recover the lost primaries.
		killed := false
		for ev := 0; ev < 3; ev++ {
			switch rng.Intn(3) {
			case 0: // join
				id := chord.ID(rng.Uint64() & ((1 << 32) - 1))
				if _, err := nw.AddPeer(id); err != nil {
					t.Logf("storm %d: join refused: %v", storm, err)
				}
			case 1: // graceful leave (keep a quorum)
				if len(nw.Peers) > 10 {
					nw.RemovePeer(rng.Intn(len(nw.Peers)))
				}
			case 2: // abrupt failure
				if !killed && len(nw.Peers) > 10 {
					nw.KillPeer(rng.Intn(len(nw.Peers)))
					killed = true
				}
			}
		}
		// Every round of this sweep runs the global checker; hard
		// violations accumulate in nw.RingViolations.
		nw.StabilizeAll(10)
		nw.PushReplicasAll()
		if legacy {
			t.Logf("storm %d: %d peers, %d cumulative hard violations",
				storm, len(nw.Peers), nw.RingViolations())
			continue
		}
		verify(storm)
	}

	if legacy {
		var buf strings.Builder
		if err := nw.Telemetry.WritePrometheus(&buf); err == nil {
			for _, line := range strings.Split(buf.String(), "\n") {
				if strings.HasPrefix(line, "squid_ring_violations_total") {
					t.Log(line)
				}
			}
		}
		t.Logf("legacy rules: %d hard ring violations across %d storms (expected nonzero — the comparison baseline)",
			nw.RingViolations(), storms)
		return
	}
	if n := nw.RingViolations(); n != 0 {
		t.Fatalf("corrected rules: %d hard ring violations — membership invariants broken under churn", n)
	}
	t.Logf("churn storm soak: %d storms, %d peers, %d elements, zero hard violations",
		storms, len(nw.Peers), published)
}
