package squid

import (
	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/telemetry"
	"squid/internal/transport"
	"squid/internal/wire"
)

// Binary wire codecs for the squid engine's message set — ClusterQueryMsg,
// BatchMsg and SubResultMsg are the per-query hot path, ReplicaMsg the
// replication delta, the rest ride along so a whole client interaction
// stays binary. Tags live in the squid range (32-63, see
// wire.TagSquidBase) and are frozen like the chord set; gob remains the
// compatibility oracle via the equivalence tests in wire_equiv_test.go.
//
// Layout conventions follow internal/chord/wire.go: uniform 64-bit hashes
// (ring and node IDs) are fixed 8-byte words; cluster prefixes are
// varints — a prefix is the right-aligned first Level*Dims bits of a
// curve index (sfc.Cluster), so at hot-path refinement depths it is a
// small integer, not a uniform word; QIDs/tokens/counts/levels are
// varints, strings are length-prefixed. TraceRef and Span are nested
// typed fields, encoded inline without a tag.
const (
	tagPublishMsg = wire.TagSquidBase + iota
	tagUnpublishMsg
	tagLookupMsg
	tagClusterQueryMsg
	tagQueryAckMsg
	tagBatchMsg
	tagQueryShedMsg
	tagSubResultMsg
	tagReplicaMsg
	tagClientPublishMsg
	tagClientUnpublishMsg
	tagClientQueryMsg
	tagClientResultMsg
	tagElement
	tagElements
	tagKeyspaceQuery
	tagKeyspaceTerm
	tagPartialResultMsg
	tagQueryCancelMsg
)

//lint:allocfree
func encodeElement(e *wire.Encoder, el Element) {
	e.Strings(el.Values)
	e.String(el.Data)
}

func decodeElement(d *wire.Decoder) Element {
	var el Element
	el.Values = d.Strings()
	el.Data = d.String()
	return el
}

//lint:allocfree
func encodeElements(e *wire.Encoder, els []Element) {
	e.Uvarint(uint64(len(els)))
	for _, el := range els {
		encodeElement(e, el)
	}
}

func decodeElements(d *wire.Decoder) []Element {
	n := d.Len(2) // ≥ values count + data length
	if n == 0 {
		return nil
	}
	out := make([]Element, n)
	for i := range out {
		out[i] = decodeElement(d)
	}
	return out
}

//lint:allocfree
func encodeTerm(e *wire.Encoder, t keyspace.Term) {
	e.Uvarint(uint64(t.Kind))
	e.String(t.Value)
	e.String(t.Lo)
	e.String(t.Hi)
}

func decodeTerm(d *wire.Decoder) keyspace.Term {
	var t keyspace.Term
	t.Kind = keyspace.TermKind(d.Uvarint())
	t.Value = d.String()
	t.Lo = d.String()
	t.Hi = d.String()
	return t
}

//lint:allocfree
func encodeQuery(e *wire.Encoder, q keyspace.Query) {
	e.Uvarint(uint64(len(q)))
	for _, t := range q {
		encodeTerm(e, t)
	}
}

func decodeQuery(d *wire.Decoder) keyspace.Query {
	n := d.Len(4) // kind + three string lengths
	if n == 0 {
		return nil
	}
	q := make(keyspace.Query, n)
	for i := range q {
		q[i] = decodeTerm(d)
	}
	return q
}

//lint:allocfree
func encodeTraceRef(e *wire.Encoder, r telemetry.TraceRef) {
	e.Uvarint(r.Parent)
	e.Int(int64(r.Depth))
	e.Uvarint(uint64(r.Mode))
}

func decodeTraceRef(d *wire.Decoder) telemetry.TraceRef {
	var r telemetry.TraceRef
	r.Parent = d.Uvarint()
	r.Depth = int(d.Int())
	r.Mode = telemetry.TraceMode(d.Uvarint())
	return r
}

//lint:allocfree
func encodeSpans(e *wire.Encoder, spans []telemetry.Span) {
	e.Uvarint(uint64(len(spans)))
	for _, s := range spans {
		e.Uvarint(uint64(s.QID))
		e.Uvarint(s.ID)
		e.Uvarint(s.Parent)
		e.Int(int64(s.Depth))
		e.U64(s.Node)
		e.String(s.Addr)
		e.String(s.Kind)
		e.Uvarint(s.Prefix)
		e.Int(int64(s.Level))
		e.Int(int64(s.Clusters))
		e.Int(int64(s.Local))
		e.Int(int64(s.Children))
		e.Int(int64(s.Matches))
		e.Int(int64(s.Retries))
		e.Bool(s.Abandoned)
		e.Int(s.StartNS)
		e.Int(s.EndNS)
	}
}

func decodeSpans(d *wire.Decoder) []telemetry.Span {
	n := d.Len(24) // one fixed word (Node) plus the varint/flag floor
	if n == 0 {
		return nil
	}
	out := make([]telemetry.Span, n)
	for i := range out {
		s := &out[i]
		s.QID = telemetry.QueryID(d.Uvarint())
		s.ID = d.Uvarint()
		s.Parent = d.Uvarint()
		s.Depth = int(d.Int())
		s.Node = d.U64()
		s.Addr = d.String()
		s.Kind = d.String()
		s.Prefix = d.Uvarint()
		s.Level = int(d.Int())
		s.Clusters = int(d.Int())
		s.Local = int(d.Int())
		s.Children = int(d.Int())
		s.Matches = int(d.Int())
		s.Retries = int(d.Int())
		s.Abandoned = d.Bool()
		s.StartNS = d.Int()
		s.EndNS = d.Int()
	}
	return out
}

//lint:allocfree
func encodeClusterQuery(e *wire.Encoder, m ClusterQueryMsg) {
	e.Uvarint(uint64(m.QID))
	encodeQuery(e, m.Query)
	e.Uvarint(uint64(len(m.Clusters)))
	for _, c := range m.Clusters {
		e.Uvarint(c.Prefix)
		e.Int(int64(c.Level))
		e.Bool(c.Complete)
	}
	e.String(string(m.ReplyTo))
	e.Uvarint(m.Token)
	e.Bool(m.Ack)
	e.Bool(m.Stream)
	encodeTraceRef(e, m.Trace)
}

func decodeClusterQuery(d *wire.Decoder) ClusterQueryMsg {
	var m ClusterQueryMsg
	m.QID = QueryID(d.Uvarint())
	m.Query = decodeQuery(d)
	if n := d.Len(3); n > 0 { // prefix varint + level + flag
		m.Clusters = make([]ClusterRef, n)
		for i := range m.Clusters {
			m.Clusters[i] = ClusterRef{
				Prefix:   d.Uvarint(),
				Level:    int(d.Int()),
				Complete: d.Bool(),
			}
		}
	}
	m.ReplyTo = transport.Addr(d.String())
	m.Token = d.Uvarint()
	m.Ack = d.Bool()
	m.Stream = d.Bool()
	m.Trace = decodeTraceRef(d)
	return m
}

func init() {
	wire.Register(tagPublishMsg, PublishMsg{},
		func(e *wire.Encoder, v any) { encodeElement(e, v.(PublishMsg).Elem) },
		func(d *wire.Decoder) any { return PublishMsg{Elem: decodeElement(d)} })
	wire.Register(tagUnpublishMsg, UnpublishMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(UnpublishMsg)
			encodeElement(e, m.Elem)
			e.Bool(m.Replica)
		},
		func(d *wire.Decoder) any {
			var m UnpublishMsg
			m.Elem = decodeElement(d)
			m.Replica = d.Bool()
			return m
		})
	wire.Register(tagLookupMsg, LookupMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(LookupMsg)
			e.Uvarint(uint64(m.QID))
			encodeQuery(e, m.Query)
			e.U64(m.Key)
			e.String(string(m.ReplyTo))
			e.Uvarint(m.Token)
			encodeTraceRef(e, m.Trace)
		},
		func(d *wire.Decoder) any {
			var m LookupMsg
			m.QID = QueryID(d.Uvarint())
			m.Query = decodeQuery(d)
			m.Key = d.U64()
			m.ReplyTo = transport.Addr(d.String())
			m.Token = d.Uvarint()
			m.Trace = decodeTraceRef(d)
			return m
		})
	wire.Register(tagClusterQueryMsg, ClusterQueryMsg{},
		func(e *wire.Encoder, v any) { encodeClusterQuery(e, v.(ClusterQueryMsg)) },
		func(d *wire.Decoder) any { return decodeClusterQuery(d) })
	wire.Register(tagQueryAckMsg, QueryAckMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(QueryAckMsg)
			e.Uvarint(uint64(m.QID))
			e.Uvarint(m.Token)
		},
		func(d *wire.Decoder) any {
			var m QueryAckMsg
			m.QID = QueryID(d.Uvarint())
			m.Token = d.Uvarint()
			return m
		})
	wire.Register(tagBatchMsg, BatchMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(BatchMsg)
			e.Uvarint(uint64(len(m.Queries)))
			for _, q := range m.Queries {
				encodeClusterQuery(e, q)
			}
		},
		func(d *wire.Decoder) any {
			var m BatchMsg
			if n := d.Len(8); n > 0 {
				m.Queries = make([]ClusterQueryMsg, n)
				for i := range m.Queries {
					m.Queries[i] = decodeClusterQuery(d)
				}
			}
			return m
		})
	wire.Register(tagQueryShedMsg, QueryShedMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(QueryShedMsg)
			e.Uvarint(uint64(m.QID))
			e.Uvarint(m.Token)
			e.Int(m.RetryAfterMS)
		},
		func(d *wire.Decoder) any {
			var m QueryShedMsg
			m.QID = QueryID(d.Uvarint())
			m.Token = d.Uvarint()
			m.RetryAfterMS = d.Int()
			return m
		})
	wire.Register(tagSubResultMsg, SubResultMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(SubResultMsg)
			e.Uvarint(uint64(m.QID))
			e.Uvarint(m.Token)
			encodeElements(e, m.Matches)
			e.Bool(m.Incomplete)
			encodeSpans(e, m.Spans)
		},
		func(d *wire.Decoder) any {
			var m SubResultMsg
			m.QID = QueryID(d.Uvarint())
			m.Token = d.Uvarint()
			m.Matches = decodeElements(d)
			m.Incomplete = d.Bool()
			m.Spans = decodeSpans(d)
			return m
		})
	wire.Register(tagReplicaMsg, ReplicaMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(ReplicaMsg)
			e.Uvarint(uint64(len(m.Items)))
			for _, it := range m.Items {
				e.U64(uint64(it.Key))
				e.Any(it.Value)
			}
		},
		func(d *wire.Decoder) any {
			var m ReplicaMsg
			if n := d.Len(9); n > 0 {
				m.Items = make([]chord.Item, n)
				for i := range m.Items {
					m.Items[i] = chord.Item{Key: chord.ID(d.U64()), Value: d.Any()}
				}
			}
			return m
		})
	wire.Register(tagClientPublishMsg, ClientPublishMsg{},
		func(e *wire.Encoder, v any) { encodeElement(e, v.(ClientPublishMsg).Elem) },
		func(d *wire.Decoder) any { return ClientPublishMsg{Elem: decodeElement(d)} })
	wire.Register(tagClientUnpublishMsg, ClientUnpublishMsg{},
		func(e *wire.Encoder, v any) { encodeElement(e, v.(ClientUnpublishMsg).Elem) },
		func(d *wire.Decoder) any { return ClientUnpublishMsg{Elem: decodeElement(d)} })
	wire.Register(tagClientQueryMsg, ClientQueryMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(ClientQueryMsg)
			e.String(m.Query)
			e.String(string(m.ReplyTo))
			e.Uvarint(m.Token)
			e.Uvarint(uint64(m.Limit))
		},
		func(d *wire.Decoder) any {
			var m ClientQueryMsg
			m.Query = d.String()
			m.ReplyTo = transport.Addr(d.String())
			m.Token = d.Uvarint()
			m.Limit = int(d.Uvarint())
			return m
		})
	wire.Register(tagClientResultMsg, ClientResultMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(ClientResultMsg)
			e.Uvarint(m.Token)
			e.Uvarint(uint64(m.QID))
			encodeElements(e, m.Matches)
			e.String(m.Err)
		},
		func(d *wire.Decoder) any {
			var m ClientResultMsg
			m.Token = d.Uvarint()
			m.QID = QueryID(d.Uvarint())
			m.Matches = decodeElements(d)
			m.Err = d.String()
			return m
		})
	wire.Register(tagElement, Element{},
		func(e *wire.Encoder, v any) { encodeElement(e, v.(Element)) },
		func(d *wire.Decoder) any { return decodeElement(d) })
	wire.Register(tagElements, []Element{},
		func(e *wire.Encoder, v any) { encodeElements(e, v.([]Element)) },
		func(d *wire.Decoder) any { return decodeElements(d) })
	wire.Register(tagKeyspaceQuery, keyspace.Query{},
		func(e *wire.Encoder, v any) { encodeQuery(e, v.(keyspace.Query)) },
		func(d *wire.Decoder) any { return decodeQuery(d) })
	wire.Register(tagKeyspaceTerm, keyspace.Term{},
		func(e *wire.Encoder, v any) { encodeTerm(e, v.(keyspace.Term)) },
		func(d *wire.Decoder) any { return decodeTerm(d) })
	wire.Register(tagPartialResultMsg, PartialResultMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(PartialResultMsg)
			e.Uvarint(uint64(m.QID))
			e.Uvarint(m.Token)
			encodeElements(e, m.Matches)
		},
		func(d *wire.Decoder) any {
			var m PartialResultMsg
			m.QID = QueryID(d.Uvarint())
			m.Token = d.Uvarint()
			m.Matches = decodeElements(d)
			return m
		})
	wire.Register(tagQueryCancelMsg, QueryCancelMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(QueryCancelMsg)
			e.Uvarint(uint64(m.QID))
			e.Uvarint(m.Token)
			e.String(string(m.ReplyTo))
		},
		func(d *wire.Decoder) any {
			var m QueryCancelMsg
			m.QID = QueryID(d.Uvarint())
			m.Token = d.Uvarint()
			m.ReplyTo = transport.Addr(d.String())
			return m
		})
}
