package squid_test

import (
	"fmt"
	"sort"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

// Example demonstrates the complete public flow: build a simulated
// network, publish, query flexibly, and read the cost metrics.
func Example() {
	space, _ := keyspace.NewWordSpace(2, 32)
	nw, _ := sim.Build(sim.Config{Nodes: 8, Space: space, Seed: 1})

	docs := []squid.Element{
		{Values: []string{"computer", "network"}, Data: "networking.pdf"},
		{Values: []string{"computer", "graphics"}, Data: "rendering.pdf"},
		{Values: []string{"database", "systems"}, Data: "transactions.pdf"},
	}
	for i, d := range docs {
		_ = nw.Publish(i, d)
	}
	nw.Quiesce()

	res, _ := nw.Query(0, keyspace.MustParse("(comp*, *)"))
	names := make([]string, 0, len(res.Matches))
	for _, m := range res.Matches {
		names = append(names, m.Data)
	}
	sort.Strings(names)
	fmt.Println(len(res.Matches), "matches:", names)
	// Output:
	// 2 matches: [networking.pdf rendering.pdf]
}

// ExampleEngine_Unpublish removes an element from the distributed index.
func ExampleEngine_Unpublish() {
	space, _ := keyspace.NewWordSpace(2, 32)
	nw, _ := sim.Build(sim.Config{Nodes: 4, Space: space, Seed: 1})
	doc := squid.Element{Values: []string{"grid", "resource"}, Data: "r1"}
	_ = nw.Publish(0, doc)
	nw.Quiesce()

	p := nw.Peers[0]
	done := make(chan error, 1)
	p.Node.Invoke(func() { done <- p.Engine.Unpublish(doc) })
	<-done
	nw.Quiesce()

	res, _ := nw.Query(0, keyspace.MustParse("(grid, *)"))
	fmt.Println("matches after unpublish:", len(res.Matches))
	// Output:
	// matches after unpublish: 0
}

// ExampleDedup collapses results of combination-published documents.
func ExampleDedup() {
	matches := []squid.Element{
		{Values: []string{"a", "b"}, Data: "doc1"},
		{Values: []string{"a", "c"}, Data: "doc1"},
		{Values: []string{"x", "y"}, Data: "doc2"},
	}
	unique := squid.Dedup(matches)
	fmt.Println(len(unique), "unique documents")
	// Output:
	// 2 unique documents
}
