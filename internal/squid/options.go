package squid

import (
	"errors"
	"fmt"
	"time"

	"squid/internal/keyspace"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// QueryID identifies one flexible query across the system. It is
// telemetry.QueryID re-exported: the engine issues it, Result and every
// trace surface carry it, and the distinct type keeps query ids from being
// mixed up with span ids, tokens, or ring keys at compile time.
type QueryID = telemetry.QueryID

// ErrOverloaded is the sentinel behind admission-control rejections: the
// node's in-flight refinement cap is reached, so the query (or subtree) is
// shed instead of queued without bound. Shed subtrees are retried through
// the recovery path; shed root queries surface the error directly —
// match with errors.Is and back off. The concrete error is *OverloadError,
// which carries a retry-after hint.
var ErrOverloaded = errors.New("squid: overloaded: refinement admission cap reached")

// OverloadError is the concrete admission-control rejection. It unwraps to
// ErrOverloaded; RetryAfter is the shedding node's backoff hint, derived
// from its queue depth.
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrOverloaded, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Option configures an Engine built by New.
type Option func(*Options)

// New creates an engine over the given keyword space, configured by
// functional options. Attach it to its node before use:
//
//	eng := squid.New(space, squid.WithReplication(2), squid.WithQueryDeadline(time.Minute))
//	node := chord.NewNode(chordCfg, id, eng)
//	eng.Attach(node)
func New(space *keyspace.Space, opts ...Option) *Engine {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return newEngine(space, o)
}

// FromOptions applies a whole Options struct as one option — the bridge
// for callers that assemble configuration programmatically (the simulator's
// Config.Engine) before handing it to New.
func FromOptions(o Options) Option {
	return func(dst *Options) { *dst = o }
}

// WithReplication keeps n successor copies of every stored item.
// See Options.Replicas.
func WithReplication(n int) Option {
	return func(o *Options) { o.Replicas = n }
}

// WithQueryDeadline bounds every query rooted at this engine.
// See Options.QueryDeadline.
func WithQueryDeadline(d time.Duration) Option {
	return func(o *Options) { o.QueryDeadline = d }
}

// WithSubtreeTimeout arms the per-child recovery deadline.
// See Options.SubtreeTimeout.
func WithSubtreeTimeout(d time.Duration) Option {
	return func(o *Options) { o.SubtreeTimeout = d }
}

// WithSubtreeRetries caps re-dispatches per child subtree.
// See Options.SubtreeRetries.
func WithSubtreeRetries(n int) Option {
	return func(o *Options) { o.SubtreeRetries = n }
}

// WithWorkers sets the query scheduler's pool size. See Options.Workers;
// WithSerialProcessing disables the pool entirely.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithSerialProcessing disables the query scheduler: refinement runs inline
// on the delivery goroutine, as before the scheduler existed. The ablation
// baseline for the concurrent-load benchmark.
func WithSerialProcessing() Option {
	return func(o *Options) { o.Workers = -1 }
}

// WithMaxInflight caps admitted-but-unfinished refinement jobs; beyond it
// the engine sheds with ErrOverloaded. See Options.MaxInflight.
func WithMaxInflight(n int) Option {
	return func(o *Options) { o.MaxInflight = n }
}

// WithProbeCache caches owner-probe results at the query root.
// See Options.ProbeCacheSize.
func WithProbeCache(size int) Option {
	return func(o *Options) { o.ProbeCacheSize = size }
}

// WithResultCache bounds the popular-cluster result cache: completed leaf
// subtrees are remembered by (query, cluster set) and repeat queries answer
// from the cache until a covered key mutates. See Options.ResultCacheSize.
func WithResultCache(size int) Option {
	return func(o *Options) { o.ResultCacheSize = size }
}

// WithInitialClusters caps the initiator's local refinement breadth.
// See Options.InitialClusters.
func WithInitialClusters(n int) Option {
	return func(o *Options) { o.InitialClusters = n }
}

// WithoutAggregation disables the sibling-cluster aggregation optimization.
// See Options.DisableAggregation.
func WithoutAggregation() Option {
	return func(o *Options) { o.DisableAggregation = true }
}

// WithSink feeds per-query processing metrics to sink.
// See Options.Sink.
func WithSink(sink MetricsSink) Option {
	return func(o *Options) { o.Sink = sink }
}

// WithTelemetry shares a metrics registry with the engine.
// See Options.Telemetry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *Options) { o.Telemetry = reg }
}

// WithTraces enables query tracing at this node.
// See Options.Traces.
func WithTraces(store *telemetry.TraceStore) Option {
	return func(o *Options) { o.Traces = store }
}

// WithClock supplies the engine's recovery and deadline timers.
// See Options.Clock.
func WithClock(c transport.Clock) Option {
	return func(o *Options) { o.Clock = c }
}
