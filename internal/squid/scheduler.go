package squid

import (
	"sync"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
)

// scheduler runs the CPU-heavy half of query handling — Hilbert refinement
// and local store matching — on a bounded worker pool, so one expensive
// wildcard query no longer head-of-line-blocks every other message on the
// node's delivery goroutine.
//
// The concurrency contract (DESIGN.md §4g):
//
//   - Jobs are submitted only from the delivery goroutine, which captures
//     an immutable arcView of the node's owned arc at submit time. Workers
//     read only that snapshot, the Store (whose readers are lock-protected)
//     and the immutable keyword space — never live engine or node state.
//   - Results return to the delivery goroutine via node.Invoke; all
//     engine/subtree mutation stays confined there. Self-sends are exempt
//     from fault injection, so a completion can only be lost if the node
//     itself died — in which case finish() still runs, keeping the pending
//     count exact for the simulator's quiesce protocol.
//   - Admission control: at most cap jobs may be admitted-but-unfinished;
//     beyond that trySubmit refuses and the caller sheds the work with
//     ErrOverloaded instead of queueing without bound.
//
// A stale arcView is harmless for the same reason a stale probe-cache
// entry is: the store only holds keys the node owns, scans of handed-over
// spans find nothing, and clusters misclassified as remote are re-routed
// by the ring to the current owner, which re-probes authoritatively.
type scheduler struct {
	e       *Engine
	workers int
	cap     int

	mu       sync.Mutex
	jobsCond *sync.Cond   // signaled when queue gains a job (workers wait here)
	idleCond *sync.Cond   // broadcast when pending returns to zero (waitIdle)
	queue    []*refineJob //lint:guarded-by mu
	// pending counts admitted jobs whose completion has not yet run.
	pending int //lint:guarded-by mu
	// started flips when the workers are spawned (lazily, on first submit).
	started bool //lint:guarded-by mu
}

// refineJob carries one batch of clusters from the delivery goroutine to a
// worker, and its completion back.
type refineJob struct {
	qid      QueryID
	q        keyspace.Query
	region   sfc.Region
	clusters []sfc.Refined
	arc      arcView
	enqueued time.Time // registry clock; zero (and wait reads 0) in simulation
	complete func(matches []Element, remote []sfc.Refined, local int)
}

// arcView is the immutable snapshot of a node's owned arc a worker
// classifies clusters against; it mirrors chord.Node.Owns and
// Engine.ownedRunEnd exactly.
type arcView struct {
	node     chord.ID
	space    chord.Space
	self     uint64
	pred     uint64
	predZero bool
	maxIdx   uint64
}

func (a arcView) owns(key uint64) bool {
	if a.predZero {
		return true // transient sole-owner view, as in chord.Node.Owns
	}
	return a.space.Between(chord.ID(key), chord.ID(a.pred), chord.ID(a.self))
}

// runEnd returns the last index of the contiguous owned run containing lo
// (which must be owned): up to the node's identifier for the low/linear
// segment, or the top of the index space when lo lies in the wrap segment
// of an arc that crosses zero.
func (a arcView) runEnd(lo uint64) uint64 {
	if a.predZero {
		return a.maxIdx
	}
	if lo <= a.self {
		return a.self
	}
	return a.maxIdx
}

// arcView snapshots the node's current arc; delivery goroutine only.
func (e *Engine) arcView() arcView {
	maxIdx := ^uint64(0)
	if b := e.space.IndexBits(); b < 64 {
		maxIdx = (uint64(1) << b) - 1
	}
	pred := e.node.Pred()
	return arcView{
		node:     e.node.Self().ID,
		space:    e.node.Space(),
		self:     uint64(e.node.Self().ID),
		pred:     uint64(pred.ID),
		predZero: pred.IsZero(),
		maxIdx:   maxIdx,
	}
}

func newScheduler(e *Engine, workers, cap int) *scheduler {
	s := &scheduler{e: e, workers: workers, cap: cap}
	s.jobsCond = sync.NewCond(&s.mu)
	s.idleCond = sync.NewCond(&s.mu)
	return s
}

// trySubmit admits a job unless the in-flight cap is reached; it never
// blocks (the queue is a slice, not a bounded channel, so very large caps —
// the simulator runs effectively uncapped — cost nothing up front).
// Delivery goroutine only.
func (s *scheduler) trySubmit(j *refineJob) bool {
	s.mu.Lock()
	if s.pending >= s.cap {
		s.mu.Unlock()
		return false
	}
	s.pending++
	depth := s.pending
	s.queue = append(s.queue, j)
	if !s.started {
		s.started = true
		for i := 0; i < s.workers; i++ {
			go s.worker()
		}
	}
	s.jobsCond.Signal()
	s.mu.Unlock()
	s.e.met.schedDepth.Set(int64(depth))
	return true
}

// next blocks until a job is queued and pops it (FIFO: submission order is
// processing order, the scheduling fairness the tests pin).
func (s *scheduler) next() *refineJob {
	s.mu.Lock()
	for len(s.queue) == 0 {
		s.jobsCond.Wait()
	}
	j := s.queue[0]
	s.queue[0] = nil
	s.queue = s.queue[1:]
	s.mu.Unlock()
	return j
}

// finish retires one admitted job. It runs on the delivery goroutine for
// live nodes (inside the completion Invoke), or synchronously in the worker
// when the node is already detached — either way exactly once per job.
func (s *scheduler) finish() {
	s.mu.Lock()
	s.pending--
	depth := s.pending
	if s.pending == 0 {
		s.idleCond.Broadcast()
	}
	s.mu.Unlock()
	s.e.met.schedDepth.Set(int64(depth))
}

// waitIdle blocks until no admitted job is outstanding. Used by the
// simulator's quiesce protocol; safe from any goroutine.
func (s *scheduler) waitIdle() {
	s.mu.Lock()
	for s.pending > 0 {
		s.idleCond.Wait()
	}
	s.mu.Unlock()
}

// depth returns the number of admitted-but-unfinished jobs.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// worker drains the job channel with its own refinement scratch (the
// per-worker counterpart of the engine's zero-alloc buffers).
func (s *scheduler) worker() {
	var scratch sfc.Scratch
	var frontier []sfc.Refined
	e := s.e
	for {
		j := s.next()
		e.met.schedWait.Observe(int64(e.opts.Telemetry.Since(j.enqueued)))
		var matches []Element
		var remote []sfc.Refined
		var local int
		matches, remote, local, frontier = refineClusters(
			e.store, e.space, j.arc, j.qid, j.clusters, j.q, j.region, &scratch, frontier)
		if err := e.node.Invoke(func() {
			j.complete(matches, remote, local)
			s.finish()
		}); err != nil {
			s.finish() // node detached: the query died with its node
		}
	}
}

// refineClusters is processClusters detached from live engine state: it
// resolves the locally owned parts of cls against store and collects the
// parts to forward, classifying ownership against the arc snapshot. It is
// pure with respect to the engine — safe on any goroutine — and returns
// the (reusable) frontier stack to its caller. See Engine.processClusters
// for the run-boundary rationale.
func refineClusters(store *Store, space *keyspace.Space, arc arcView, qid QueryID, cls []sfc.Refined, q keyspace.Query, region sfc.Region, scratch *sfc.Scratch, frontier []sfc.Refined) (matches []Element, remote []sfc.Refined, local int, frontierOut []sfc.Refined) {
	curve := space.Curve()
	frontier = frontier[:0]
	for _, c := range cls {
		if !arc.owns(c.Span(curve).Lo) {
			remote = append(remote, c)
			continue
		}
		local++
		frontier = append(frontier, c)
	}
	for len(frontier) > 0 {
		x := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		span := x.Span(curve)
		if !arc.owns(span.Lo) {
			remote = append(remote, x)
			continue
		}
		if span.Hi <= arc.runEnd(span.Lo) {
			if debugScan != nil {
				debugScan(arc.node, qid, span)
			}
			// The store holds only keys this node owns; the final filter
			// applies the query's exact semantics (paper: only elements
			// matching all terms are returned).
			store.ScanSpan(span, func(_ uint64, elem Element) {
				if space.Matches(q, elem.Values) {
					matches = append(matches, elem)
				}
			})
			continue
		}
		// Starts inside the owned run but extends beyond it: refine (with
		// region pruning) and reclassify the children.
		frontier = sfc.RefineStepInto(frontier, curve, x.Cluster, region, scratch)
	}
	return matches, remote, local, frontier[:0]
}
