package squid

import (
	"strings"

	"squid/internal/chord"
	"squid/internal/sfc"
	"squid/internal/transport"
)

// ReplicaMsg pushes copies of stored items to a successor for fault
// tolerance. Replicas live outside the main store (queries never see them
// and they do not count as load); when the replica holder's arc grows —
// its predecessor failed — the replicas of newly owned keys are promoted
// into the main store, so data survives node failures.
type ReplicaMsg struct {
	Items []chord.Item
}

func init() {
	transport.Register(ReplicaMsg{})
	//lint:allow-wirecodec []chord.Item's binary codec is registered in package chord, next to the type
	transport.Register([]chord.Item{})
}

// replicate pushes the given items to the first Options.Replicas live
// successors.
func (e *Engine) replicate(items []chord.Item) {
	if e.opts.Replicas <= 0 || len(items) == 0 {
		return
	}
	sent := 0
	for _, s := range e.node.SuccList() {
		if s.Addr == e.node.Self().Addr {
			continue
		}
		if e.send(s.Addr, ReplicaMsg{Items: items}) {
			sent++
			if sent == e.opts.Replicas {
				return
			}
		}
	}
}

// PushReplicas replicates to the current successors, pushing only the
// delta — items whose keys changed since the last push. A full Snapshot
// is pushed only when the replica set itself changed (successors joined,
// failed or reordered), so steady-state ticks cost nothing when nothing
// happened. It returns the number of items pushed and whether the push
// was a full one. Run it after bulk loads and periodically alongside
// stabilization so replica placement tracks ring changes.
//
//lint:entry delivery
func (e *Engine) PushReplicas() (items int, full bool) {
	if e.opts.Replicas <= 0 {
		return 0, false
	}
	if e.replicaSet() != e.lastReplicaSet {
		return e.PushReplicasFull(), true
	}
	e.dirtyKeys = e.store.TakeDirty(e.dirtyKeys[:0])
	if len(e.dirtyKeys) == 0 {
		return 0, false
	}
	delta := e.store.SnapshotKeys(e.dirtyKeys)
	e.replicate(delta)
	e.met.replicaItems.Add(uint64(len(delta)))
	return len(delta), false
}

// PushReplicasFull unconditionally re-replicates every locally owned item
// to the current successors and records the replica set it went to.
//
//lint:entry delivery
func (e *Engine) PushReplicasFull() int {
	if e.opts.Replicas <= 0 {
		return 0
	}
	// The full snapshot covers everything; pending dirty keys are hereby
	// consumed too.
	e.dirtyKeys = e.store.TakeDirty(e.dirtyKeys[:0])
	snap := e.store.Snapshot()
	e.replicate(snap)
	e.lastReplicaSet = e.replicaSet()
	e.met.replicaFulls.Inc()
	e.met.replicaItems.Add(uint64(len(snap)))
	return len(snap)
}

// replicaSet fingerprints the nodes a push would currently go to: the
// first Replicas non-self live successors, in order. Order matters — it is
// what replicate traverses — so any reordering triggers a full push.
func (e *Engine) replicaSet() string {
	var b strings.Builder
	n := 0
	for _, s := range e.node.SuccList() {
		if s.Addr == e.node.Self().Addr {
			continue
		}
		b.WriteString(string(s.Addr))
		b.WriteByte(';')
		n++
		if n == e.opts.Replicas {
			break
		}
	}
	return b.String()
}

// handleReplica stores pushed copies, or promotes them straight into the
// main store if this node already owns them (the pusher's view was stale).
func (e *Engine) handleReplica(m ReplicaMsg) {
	var owned, held []chord.Item
	for _, it := range m.Items {
		if _, ok := it.Value.([]Element); !ok {
			continue
		}
		if e.node.Owns(it.Key) {
			owned = append(owned, it)
		} else {
			held = append(held, it)
		}
	}
	e.store.AddBatchUnique(owned)
	if len(owned) > 0 {
		e.noteBulkMutation()
	}
	e.replicas.AddBatchUnique(held)
	e.syncKeys()
}

// ArcChanged implements chord.ArcWatcher and keeps the primary/replica
// split converged with the ring: when the arc grows (the predecessor
// failed or moved back), replicas of newly owned keys are promoted into
// the main store; when it shrinks, items outside the arc are demoted back
// to replicas. During churn the predecessor pointer can be transiently
// wrong (stabilization adopts candidates incrementally), so promotion and
// demotion may both fire several times — the symmetry makes the stores
// self-stabilizing: once the pointer converges, exactly the owned keys are
// primary, everything else is soft state.
//
//lint:entry delivery
func (e *Engine) ArcChanged(oldPred, newPred chord.NodeRef) {
	if e.opts.Replicas <= 0 {
		return
	}
	// A cleared predecessor (failure just detected) makes the node claim
	// the whole ring transiently; reshuffling now would steal other nodes'
	// keys. Wait for stabilization to install a concrete predecessor.
	if newPred.IsZero() {
		return
	}
	// Demote: everything outside (newPred, self] stops being primary.
	e.replicas.AddBatchUnique(e.store.HandoverOut(e.node.Self().ID, newPred.ID))
	e.noteBulkMutation()
	e.syncKeys()
	// Promote: replicas inside the (possibly grown) arc become primary.
	if e.replicas.Keys() == 0 {
		return
	}
	var promoted []chord.Item
	e.replicas.ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(key uint64, elem Element) {
		if e.node.Owns(chord.ID(key)) {
			promoted = append(promoted, chord.Item{Key: chord.ID(key), Value: []Element{elem}})
		}
	})
	if len(promoted) == 0 {
		return
	}
	e.store.AddBatchUnique(promoted)
	e.syncKeys()
	// Remove the promoted keys from the replica set and push fresh copies
	// of the newly owned data onward so the replication degree recovers.
	e.replicas.HandoverOut(newPred.ID, e.node.Self().ID)
	e.replicate(promoted)
}

var _ chord.ArcWatcher = (*Engine)(nil)
