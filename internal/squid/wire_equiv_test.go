package squid_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
	"squid/internal/wire"
)

// The binary codec's compatibility oracle: every registered codec must
// round-trip randomized instances identically through (a) the binary
// format and (b) gob-as-the-transport-frames-it, and both decodes must
// agree. The generator table below is keyed by concrete type; the test
// FAILS if a codec is registered without a generator, so a message type
// added to the wire registry cannot dodge equivalence coverage (the same
// discipline as the sfc table kernel vs the Skilling reference).

// wireGen builds one randomized instance of a registered codec's type.
type wireGen func(r *rand.Rand) any

func genWord(r *rand.Rand) string {
	words := []string{"", "computer", "network", "grid", "storage", "q", "résumé", "a-very-long-keyword-value-for-padding"}
	return words[r.Intn(len(words))]
}

func genAddr(r *rand.Rand) transport.Addr {
	return transport.Addr(fmt.Sprintf("10.0.%d.%d:%d", r.Intn(256), r.Intn(256), 1024+r.Intn(60000)))
}

func genNodeRef(r *rand.Rand) chord.NodeRef {
	if r.Intn(8) == 0 {
		return chord.NodeRef{}
	}
	return chord.NodeRef{ID: chord.ID(r.Uint64()), Addr: genAddr(r)}
}

func genNodeRefs(r *rand.Rand) []chord.NodeRef {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([]chord.NodeRef, n)
	for i := range out {
		out[i] = genNodeRef(r)
	}
	return out
}

func genElement(r *rand.Rand) squid.Element {
	vals := make([]string, 1+r.Intn(3))
	for i := range vals {
		vals[i] = genWord(r)
	}
	return squid.Element{Values: vals, Data: genWord(r)}
}

func genElements(r *rand.Rand) []squid.Element {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([]squid.Element, n)
	for i := range out {
		out[i] = genElement(r)
	}
	return out
}

func genItems(r *rand.Rand) []chord.Item {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([]chord.Item, n)
	for i := range out {
		out[i] = chord.Item{Key: chord.ID(r.Uint64()), Value: genElements(r)}
		if out[i].Value.([]squid.Element) == nil {
			// gob cannot carry a nil interface-typed slice value
			// distinguishably; keep the dynamic value non-nil.
			out[i].Value = []squid.Element{genElement(r)}
		}
	}
	return out
}

func genTerm(r *rand.Rand) keyspace.Term {
	switch r.Intn(4) {
	case 0:
		return keyspace.Wildcard()
	case 1:
		return keyspace.Exact(genWord(r))
	case 2:
		return keyspace.Prefix(genWord(r))
	default:
		return keyspace.Range(genWord(r), genWord(r))
	}
}

func genQuery(r *rand.Rand) keyspace.Query {
	n := 1 + r.Intn(3)
	q := make(keyspace.Query, n)
	for i := range q {
		q[i] = genTerm(r)
	}
	return q
}

func genTraceRef(r *rand.Rand) telemetry.TraceRef {
	return telemetry.TraceRef{
		Parent: uint64(r.Intn(1 << 20)),
		Depth:  r.Intn(12),
		Mode:   telemetry.TraceMode(r.Intn(3)),
	}
}

func genSpans(r *rand.Rand) []telemetry.Span {
	n := r.Intn(3)
	if n == 0 {
		return nil
	}
	out := make([]telemetry.Span, n)
	for i := range out {
		out[i] = telemetry.Span{
			QID: telemetry.QueryID(r.Intn(1 << 16)), ID: uint64(r.Intn(1 << 16)),
			Parent: uint64(r.Intn(1 << 16)), Depth: r.Intn(10),
			Node: r.Uint64(), Addr: string(genAddr(r)), Kind: "cluster",
			Prefix: r.Uint64(), Level: r.Intn(32), Clusters: r.Intn(10),
			Local: r.Intn(10), Children: r.Intn(10), Matches: r.Intn(100),
			Retries: r.Intn(3), Abandoned: r.Intn(4) == 0,
			StartNS: r.Int63(), EndNS: r.Int63(),
		}
	}
	return out
}

func genClusters(r *rand.Rand) []squid.ClusterRef {
	n := 1 + r.Intn(5)
	out := make([]squid.ClusterRef, n)
	for i := range out {
		out[i] = squid.ClusterRef{Prefix: r.Uint64(), Level: r.Intn(64), Complete: r.Intn(2) == 0}
	}
	return out
}

func genClusterQuery(r *rand.Rand) squid.ClusterQueryMsg {
	return squid.ClusterQueryMsg{
		QID: telemetry.QueryID(r.Intn(1 << 20)), Query: genQuery(r),
		Clusters: genClusters(r), ReplyTo: genAddr(r),
		Token: uint64(r.Intn(1 << 20)), Ack: r.Intn(2) == 0, Stream: r.Intn(2) == 0,
		Trace: genTraceRef(r),
	}
}

// wireGens covers every registered codec tag. Adding a codec without
// adding a generator fails TestWireEquivalence's completeness check.
var wireGens = map[reflect.Type]wireGen{
	reflect.TypeOf(chord.FindMsg{}): func(r *rand.Rand) any {
		return chord.FindMsg{Target: chord.ID(r.Uint64()), Token: uint64(r.Intn(1 << 20)),
			ReplyTo: genAddr(r), Hops: r.Intn(40), Trace: r.Uint64()}
	},
	reflect.TypeOf(chord.FoundMsg{}): func(r *rand.Rand) any {
		return chord.FoundMsg{Token: uint64(r.Intn(1 << 20)), Owner: genNodeRef(r),
			Pred: genNodeRef(r), Hops: r.Intn(40), Trace: r.Uint64()}
	},
	reflect.TypeOf(chord.RouteMsg{}): func(r *rand.Rand) any {
		return chord.RouteMsg{Key: chord.ID(r.Uint64()), From: genAddr(r),
			Payload: squid.PublishMsg{Elem: genElement(r)}, Hops: r.Intn(40), Trace: r.Uint64()}
	},
	reflect.TypeOf(chord.JoinReqMsg{}): func(r *rand.Rand) any {
		return chord.JoinReqMsg{New: genNodeRef(r), Hops: r.Intn(8)}
	},
	reflect.TypeOf(chord.JoinAckMsg{}): func(r *rand.Rand) any {
		return chord.JoinAckMsg{Pred: genNodeRef(r), Succs: genNodeRefs(r),
			Items: genItems(r), Deferred: r.Intn(2) == 0}
	},
	reflect.TypeOf(chord.JoinNackMsg{}): func(r *rand.Rand) any {
		return chord.JoinNackMsg{Reason: genWord(r)}
	},
	reflect.TypeOf(chord.JoinConfirmMsg{}): func(r *rand.Rand) any {
		return chord.JoinConfirmMsg{New: genNodeRef(r), Hops: r.Intn(8)}
	},
	reflect.TypeOf(chord.HandoffMsg{}): func(r *rand.Rand) any {
		return chord.HandoffMsg{Pred: genNodeRef(r), Items: genItems(r)}
	},
	reflect.TypeOf(chord.NotifyMsg{}): func(r *rand.Rand) any {
		return chord.NotifyMsg{Candidate: genNodeRef(r)}
	},
	reflect.TypeOf(chord.GetStateMsg{}): func(r *rand.Rand) any {
		return chord.GetStateMsg{Token: uint64(r.Intn(1 << 20)), ReplyTo: genAddr(r)}
	},
	reflect.TypeOf(chord.StateMsg{}): func(r *rand.Rand) any {
		return chord.StateMsg{Token: uint64(r.Intn(1 << 20)), Self: genNodeRef(r),
			Pred: genNodeRef(r), Succs: genNodeRefs(r), Load: r.Intn(10000)}
	},
	reflect.TypeOf(chord.LeaveMsg{}): func(r *rand.Rand) any {
		return chord.LeaveMsg{Leaving: genNodeRef(r), Pred: genNodeRef(r), Items: genItems(r)}
	},
	reflect.TypeOf(chord.SuccChangedMsg{}): func(r *rand.Rand) any {
		return chord.SuccChangedMsg{NewSucc: genNodeRef(r)}
	},
	reflect.TypeOf(chord.AppMsg{}): func(r *rand.Rand) any {
		return chord.AppMsg{From: genAddr(r), Payload: genClusterQuery(r)}
	},
	reflect.TypeOf(chord.NodeRef{}): func(r *rand.Rand) any { return genNodeRef(r) },
	reflect.TypeOf([]chord.Item{}): func(r *rand.Rand) any {
		items := genItems(r)
		if items == nil {
			items = []chord.Item{{Key: chord.ID(r.Uint64()), Value: []squid.Element{genElement(r)}}}
		}
		return items
	},

	reflect.TypeOf(squid.PublishMsg{}): func(r *rand.Rand) any {
		return squid.PublishMsg{Elem: genElement(r)}
	},
	reflect.TypeOf(squid.UnpublishMsg{}): func(r *rand.Rand) any {
		return squid.UnpublishMsg{Elem: genElement(r), Replica: r.Intn(2) == 0}
	},
	reflect.TypeOf(squid.LookupMsg{}): func(r *rand.Rand) any {
		return squid.LookupMsg{QID: telemetry.QueryID(r.Intn(1 << 20)), Query: genQuery(r),
			Key: r.Uint64(), ReplyTo: genAddr(r), Token: uint64(r.Intn(1 << 20)), Trace: genTraceRef(r)}
	},
	reflect.TypeOf(squid.ClusterQueryMsg{}): func(r *rand.Rand) any { return genClusterQuery(r) },
	reflect.TypeOf(squid.QueryAckMsg{}): func(r *rand.Rand) any {
		return squid.QueryAckMsg{QID: telemetry.QueryID(r.Intn(1 << 20)), Token: uint64(r.Intn(1 << 20))}
	},
	reflect.TypeOf(squid.BatchMsg{}): func(r *rand.Rand) any {
		qs := make([]squid.ClusterQueryMsg, 1+r.Intn(4))
		for i := range qs {
			qs[i] = genClusterQuery(r)
		}
		return squid.BatchMsg{Queries: qs}
	},
	reflect.TypeOf(squid.QueryShedMsg{}): func(r *rand.Rand) any {
		return squid.QueryShedMsg{QID: telemetry.QueryID(r.Intn(1 << 20)),
			Token: uint64(r.Intn(1 << 20)), RetryAfterMS: int64(r.Intn(5000))}
	},
	reflect.TypeOf(squid.SubResultMsg{}): func(r *rand.Rand) any {
		return squid.SubResultMsg{QID: telemetry.QueryID(r.Intn(1 << 20)),
			Token: uint64(r.Intn(1 << 20)), Matches: genElements(r),
			Incomplete: r.Intn(4) == 0, Spans: genSpans(r)}
	},
	reflect.TypeOf(squid.PartialResultMsg{}): func(r *rand.Rand) any {
		return squid.PartialResultMsg{QID: telemetry.QueryID(r.Intn(1 << 20)),
			Token: uint64(r.Intn(1 << 20)), Matches: genElements(r)}
	},
	reflect.TypeOf(squid.QueryCancelMsg{}): func(r *rand.Rand) any {
		return squid.QueryCancelMsg{QID: telemetry.QueryID(r.Intn(1 << 20)),
			Token: uint64(r.Intn(1 << 20)), ReplyTo: genAddr(r)}
	},
	reflect.TypeOf(squid.ReplicaMsg{}): func(r *rand.Rand) any {
		return squid.ReplicaMsg{Items: genItems(r)}
	},
	reflect.TypeOf(squid.ClientPublishMsg{}): func(r *rand.Rand) any {
		return squid.ClientPublishMsg{Elem: genElement(r)}
	},
	reflect.TypeOf(squid.ClientUnpublishMsg{}): func(r *rand.Rand) any {
		return squid.ClientUnpublishMsg{Elem: genElement(r)}
	},
	reflect.TypeOf(squid.ClientQueryMsg{}): func(r *rand.Rand) any {
		return squid.ClientQueryMsg{Query: "(comp*, *)", ReplyTo: genAddr(r), Token: uint64(r.Intn(1 << 20)), Limit: r.Intn(16)}
	},
	reflect.TypeOf(squid.ClientResultMsg{}): func(r *rand.Rand) any {
		return squid.ClientResultMsg{Token: uint64(r.Intn(1 << 20)),
			QID: telemetry.QueryID(r.Intn(1 << 20)), Matches: genElements(r), Err: genWord(r)}
	},
	reflect.TypeOf(squid.Element{}):   func(r *rand.Rand) any { return genElement(r) },
	reflect.TypeOf([]squid.Element{}): func(r *rand.Rand) any { return genElements(r) },
	reflect.TypeOf(keyspace.Query{}):  func(r *rand.Rand) any { return genQuery(r) },
	reflect.TypeOf(keyspace.Term{}):   func(r *rand.Rand) any { return genTerm(r) },
}

// protocolCodec reports whether a codec belongs to the protocol tag
// ranges (as opposed to test-only registrations far above them).
func protocolCodec(c *wire.Codec) bool { return c.Tag < 1000 }

func TestWireEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, c := range wire.Codecs() {
		if !protocolCodec(c) {
			continue
		}
		gen, ok := wireGens[c.Type]
		if !ok {
			t.Errorf("codec tag %d (%v) has no generator: every registered wire codec must be equivalence-tested", c.Tag, c.Type)
			continue
		}
		t.Run(c.Type.String(), func(t *testing.T) {
			for i := 0; i < 200; i++ {
				msg := gen(r)
				if reflect.TypeOf(msg) != c.Type {
					t.Fatalf("generator for %v built %T", c.Type, msg)
				}

				// Binary round trip.
				var e wire.Encoder
				if !wire.EncodeMessage(&e, msg) {
					t.Fatalf("EncodeMessage declined %#v", msg)
				}
				gotBin, err := wire.DecodeMessage(e.Bytes())
				if err != nil {
					t.Fatalf("binary decode: %v\nmsg: %#v", err, msg)
				}
				if !reflect.DeepEqual(gotBin, msg) {
					t.Fatalf("binary round trip mismatch:\n got %#v\nwant %#v", gotBin, msg)
				}

				// Gob round trip, framed as the transport frames it
				// (an interface-valued envelope payload).
				var buf bytes.Buffer
				env := struct{ Payload any }{Payload: msg}
				if err := gob.NewEncoder(&buf).Encode(env); err != nil {
					t.Fatalf("gob encode: %v", err)
				}
				var back struct{ Payload any }
				if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
					t.Fatalf("gob decode: %v", err)
				}
				if !reflect.DeepEqual(back.Payload, msg) {
					t.Fatalf("gob round trip mismatch:\n got %#v\nwant %#v", back.Payload, msg)
				}

				// And the two decodes agree with each other.
				if !reflect.DeepEqual(gotBin, back.Payload) {
					t.Fatalf("codecs disagree:\n binary %#v\n gob    %#v", gotBin, back.Payload)
				}
			}
		})
	}
}

// TestWireEncodeZeroAlloc pins the tentpole claim: steady-state encode of
// the hot-path messages allocates nothing.
func TestWireEncodeZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	msgs := []any{
		genClusterQuery(r),
		squid.BatchMsg{Queries: []squid.ClusterQueryMsg{genClusterQuery(r), genClusterQuery(r)}},
		squid.SubResultMsg{QID: 9, Token: 4, Matches: genElements(r)},
		squid.PartialResultMsg{QID: 9, Token: 4, Matches: genElements(r)},
		squid.QueryCancelMsg{QID: 9, Token: 4, ReplyTo: "10.0.0.1:4000"},
		chord.AppMsg{From: "10.0.0.1:4000", Payload: genClusterQuery(r)},
		chord.StateMsg{Token: 1, Self: genNodeRef(r), Pred: genNodeRef(r), Succs: genNodeRefs(r), Load: 12},
	}
	var e wire.Encoder
	for _, msg := range msgs {
		e.Reset()
		wire.EncodeMessage(&e, msg) // warm the buffer
		allocs := testing.AllocsPerRun(100, func() {
			e.Reset()
			if !wire.EncodeMessage(&e, msg) {
				t.Fatalf("EncodeMessage declined %T", msg)
			}
		})
		if allocs != 0 {
			t.Errorf("%T: %v allocs/op on encode, want 0", msg, allocs)
		}
	}
}

// FuzzWireCluster round-trips fuzzer-shaped ClusterQueryMsg values
// through the binary codec (nightly fuzz cron).
func FuzzWireCluster(f *testing.F) {
	f.Add(uint64(1), "computer", uint64(6), 3, true, "10.0.0.1:9", uint64(7), false)
	f.Add(uint64(0), "", uint64(0), 0, false, "", uint64(0), true)
	f.Fuzz(func(t *testing.T, qid uint64, word string, prefix uint64, level int, complete bool, reply string, token uint64, ack bool) {
		msg := squid.ClusterQueryMsg{
			QID:      telemetry.QueryID(qid),
			Query:    keyspace.Query{keyspace.Exact(word), keyspace.Wildcard()},
			Clusters: []squid.ClusterRef{{Prefix: prefix, Level: level, Complete: complete}},
			ReplyTo:  transport.Addr(reply),
			Token:    token,
			Ack:      ack,
			Trace:    telemetry.TraceRef{Parent: qid, Depth: level & 0xff, Mode: telemetry.TraceOn},
		}
		var e wire.Encoder
		if !wire.EncodeMessage(&e, msg) {
			t.Fatalf("EncodeMessage declined %#v", msg)
		}
		got, err := wire.DecodeMessage(e.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
		}
	})
}

// FuzzWireSubResult round-trips fuzzer-shaped SubResultMsg values
// through the binary codec (nightly fuzz cron).
func FuzzWireSubResult(f *testing.F) {
	f.Add(uint64(1), uint64(2), "doc.pdf", "computer", false)
	f.Add(uint64(0), uint64(0), "", "", true)
	f.Fuzz(func(t *testing.T, qid, token uint64, data, value string, incomplete bool) {
		msg := squid.SubResultMsg{
			QID:        telemetry.QueryID(qid),
			Token:      token,
			Matches:    []squid.Element{{Values: []string{value}, Data: data}},
			Incomplete: incomplete,
		}
		var e wire.Encoder
		if !wire.EncodeMessage(&e, msg) {
			t.Fatalf("EncodeMessage declined %#v", msg)
		}
		got, err := wire.DecodeMessage(e.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
		}
	})
}

// FuzzWireFrame hammers the registry decoder with arbitrary frames: no
// input may panic or allocate past the frame's own size (nightly fuzz
// cron; the primitive-level twin lives in internal/wire).
func FuzzWireFrame(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	for _, c := range wire.Codecs() {
		if !protocolCodec(c) {
			continue
		}
		if gen, ok := wireGens[c.Type]; ok {
			var e wire.Encoder
			if wire.EncodeMessage(&e, gen(r)) {
				f.Add(append([]byte(nil), e.Bytes()...))
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := wire.DecodeMessage(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same value.
		var e wire.Encoder
		if !wire.EncodeMessage(&e, v) {
			return // e.g. decoded a nil-payload variant that re-encode declines
		}
		back, err := wire.DecodeMessage(e.Bytes())
		if err != nil {
			t.Fatalf("re-decode of %T failed: %v", v, err)
		}
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("round trip drifted for %T", v)
		}
	})
}
