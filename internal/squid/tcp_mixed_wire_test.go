package squid_test

import (
	"fmt"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// startWireNode is startTCPNode plus a pinned wire mode and an attached
// metrics registry, for the mixed-version interop test.
func startWireNode(t *testing.T, space *keyspace.Space, id uint64, mode transport.WireMode) (*tcpNode, *telemetry.Registry) {
	t.Helper()
	eng := squid.New(space)
	node := chord.NewNode(chord.Config{
		Space:      chord.Space{Bits: space.IndexBits()},
		RPCTimeout: 5 * time.Second,
	}, chord.ID(id), eng)
	eng.Attach(node)
	ep, err := transport.ListenTCP("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	ep.SetWireMode(mode)
	reg := telemetry.NewRegistry(time.Now)
	ep.Instrument(reg)
	node.Start(ep)
	return &tcpNode{node: node, eng: eng, ep: ep}, reg
}

// counterValue reads a named counter back out of a registry (families are
// looked up by name, so this returns the same counter Instrument created).
func counterValue(reg *telemetry.Registry, name string) uint64 {
	return reg.Counter(name, "").Value()
}

func counterVecValue(reg *telemetry.Registry, name, label, value string) uint64 {
	return reg.CounterVec(name, "", label).With(value).Value()
}

// TestTCPMixedWireRing proves the compatibility story end to end: a ring
// where one member emulates a pre-binary build (WireLegacy: gob streams
// only, rejects the binary preamble) and the rest run the negotiated
// binary codec. Joins, publishes and a flexible query must behave exactly
// as in the all-binary ring, with the binary members falling back to gob
// on their legacy-bound connections and staying binary among themselves.
func TestTCPMixedWireRing(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}

	// The legacy build bootstraps the ring; both binary members join
	// through it, so every binary member negotiates against it at least
	// once.
	legacy, legacyReg := startWireNode(t, space, 1111, transport.WireLegacy)
	if err := legacy.node.Invoke(legacy.node.Create); err != nil {
		t.Fatal(err)
	}
	binA, regA := startWireNode(t, space, 22222, transport.WireAuto)
	binB, regB := startWireNode(t, space, 44444, transport.WireAuto)
	for i, n := range []*tcpNode{binA, binB} {
		n := n
		done := make(chan error, 1)
		n.node.Invoke(func() {
			n.node.Join(legacy.ep.Addr(), func(err error) { done <- err })
		})
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("join %d timed out", i)
		}
	}

	// Publish and query through a BINARY member, so client traffic and the
	// fan-out both cross the codec boundary on their way to the legacy
	// node's clusters.
	sink := &clientSink{results: make(chan any, 4)}
	client, err := transport.ListenTCP("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	docs := [][2]string{
		{"computer", "network"},
		{"computer", "graphics"},
		{"compiler", "design"},
		{"database", "systems"},
	}
	for i, d := range docs {
		msg := chord.AppMsg{From: client.Addr(), Payload: squid.ClientPublishMsg{
			Elem: squid.Element{Values: []string{d[0], d[1]}, Data: fmt.Sprintf("doc%d", i)},
		}}
		if err := client.Send(binA.ep.Addr(), msg); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	var got squid.ClientResultMsg
	for time.Now().Before(deadline) {
		q := chord.AppMsg{From: client.Addr(), Payload: squid.ClientQueryMsg{
			Query: "(comp*, *)", ReplyTo: client.Addr(), Token: uint64(time.Now().UnixNano()),
		}}
		if err := client.Send(binA.ep.Addr(), q); err != nil {
			t.Fatal(err)
		}
		select {
		case raw := <-sink.results:
			res, ok := raw.(squid.ClientResultMsg)
			if !ok {
				continue
			}
			got = res
		case <-time.After(2 * time.Second):
			continue
		}
		if len(got.Matches) == 3 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got.Err != "" {
		t.Fatalf("query error: %s", got.Err)
	}
	if len(got.Matches) != 3 {
		t.Fatalf("mixed-version query found %d matches, want 3 (%v)", len(got.Matches), got.Matches)
	}

	// Codec accounting tells the interop story. Each binary member dialed
	// the legacy node (join target), so each fell back to gob at least
	// once and pushed gob frames...
	for name, reg := range map[string]*telemetry.Registry{"binA": regA, "binB": regB} {
		if n := counterValue(reg, "squid_transport_tcp_negotiation_fallback_total"); n < 1 {
			t.Errorf("%s: negotiation fallbacks = %d, want >= 1 (legacy peer must decline binary)", name, n)
		}
		if n := counterVecValue(reg, "squid_transport_tcp_frames_total", "codec", "gob"); n < 1 {
			t.Errorf("%s: gob frames = %d, want >= 1 (traffic to the legacy node)", name, n)
		}
	}
	// ...while traffic between the binary members negotiated the codec.
	if a := counterVecValue(regA, "squid_transport_tcp_frames_total", "codec", "binary"); a < 1 {
		t.Errorf("binA sent %d binary frames, want >= 1 (binary members must negotiate)", a)
	}
	// The legacy build itself never speaks binary.
	if n := counterVecValue(legacyReg, "squid_transport_tcp_frames_total", "codec", "binary"); n != 0 {
		t.Errorf("legacy node sent %d binary frames, want 0", n)
	}
}
