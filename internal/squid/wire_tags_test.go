package squid_test

import (
	"testing"

	"squid/internal/wire"
)

// TestWireTagRegistry pins the squid tag block's tag ↔ type binding.
// Mixed-version interop (see the TCP mixed-wire test) depends on these
// numbers never moving: a renumbered tag decodes as the wrong type on an
// older peer. Adding a message appends a row here; reordering or deleting
// one is a wire break and must fail loudly.
func TestWireTagRegistry(t *testing.T) {
	want := map[uint64]string{
		wire.TagSquidBase + 0:  "squid.PublishMsg",
		wire.TagSquidBase + 1:  "squid.UnpublishMsg",
		wire.TagSquidBase + 2:  "squid.LookupMsg",
		wire.TagSquidBase + 3:  "squid.ClusterQueryMsg",
		wire.TagSquidBase + 4:  "squid.QueryAckMsg",
		wire.TagSquidBase + 5:  "squid.BatchMsg",
		wire.TagSquidBase + 6:  "squid.QueryShedMsg",
		wire.TagSquidBase + 7:  "squid.SubResultMsg",
		wire.TagSquidBase + 8:  "squid.ReplicaMsg",
		wire.TagSquidBase + 9:  "squid.ClientPublishMsg",
		wire.TagSquidBase + 10: "squid.ClientUnpublishMsg",
		wire.TagSquidBase + 11: "squid.ClientQueryMsg",
		wire.TagSquidBase + 12: "squid.ClientResultMsg",
		wire.TagSquidBase + 13: "squid.Element",
		wire.TagSquidBase + 14: "[]squid.Element",
		wire.TagSquidBase + 15: "keyspace.Query",
		wire.TagSquidBase + 16: "keyspace.Term",
		wire.TagSquidBase + 17: "squid.PartialResultMsg",
		wire.TagSquidBase + 18: "squid.QueryCancelMsg",
	}
	got := map[uint64]string{}
	for _, c := range wire.Codecs() {
		if c.Tag >= wire.TagSquidBase {
			got[c.Tag] = c.Type.String()
		}
	}
	for tag, typ := range want {
		if got[tag] != typ {
			t.Errorf("tag %d: bound to %q, want %q", tag, got[tag], typ)
		}
	}
	for tag, typ := range got {
		if _, ok := want[tag]; !ok {
			t.Errorf("tag %d (%s) is not in the pinned registry — append it (never renumber)", tag, typ)
		}
	}
}
