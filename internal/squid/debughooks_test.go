package squid

import (
	"squid/internal/chord"
	"squid/internal/transport"
)

// SetDebugDispatch (test hook) reports each flushed dispatch round as the
// per-destination entry counts.
func SetDebugDispatch(fn func(node chord.ID, entries []int)) {
	if fn == nil {
		debugDispatch = nil
		return
	}
	debugDispatch = func(node chord.ID, dests []transport.Addr, byDest map[transport.Addr][]pendingDispatch) {
		sizes := make([]int, len(dests))
		for i, d := range dests {
			sizes[i] = len(byDest[d])
		}
		fn(node, sizes)
	}
}
