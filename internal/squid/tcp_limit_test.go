package squid_test

import (
	"fmt"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/transport"
)

// TestTCPClientQueryLimit drives the client protocol's top-k path over real
// TCP sockets and the real clock: a ClientQueryMsg with Limit set must come
// back with at most Limit matches, promptly — not after recovery deadlines.
// The streaming machinery behaves differently here than under the simulator
// (scheduler workers, wall-clock deadlines, concurrent delivery), which is
// exactly what this test pins.
func TestTCPClientQueryLimit(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Match squid-node's engine configuration: wall-clock recovery deadlines
	// and replication are what distinguish a real deployment from the
	// simulator's quiesced rings.
	startNode := func(id uint64) *tcpNode {
		t.Helper()
		eng := squid.New(space,
			squid.WithReplication(1),
			squid.WithSubtreeTimeout(5*time.Second),
			squid.WithQueryDeadline(60*time.Second),
		)
		node := chord.NewNode(chord.Config{
			Space:      chord.Space{Bits: space.IndexBits()},
			RPCTimeout: 5 * time.Second,
		}, chord.ID(id), eng)
		eng.Attach(node)
		ep, err := transport.ListenTCP("127.0.0.1:0", node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		node.Start(ep)
		return &tcpNode{node: node, eng: eng, ep: ep}
	}

	a := startNode(1111)
	if err := a.node.Invoke(a.node.Create); err != nil {
		t.Fatal(err)
	}
	for i, id := range []uint64{22222, 44444} {
		n := startNode(id)
		done := make(chan error, 1)
		n.node.Invoke(func() {
			n.node.Join(a.ep.Addr(), func(err error) { done <- err })
		})
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("join %d timed out", i)
		}
	}

	sink := &clientSink{results: make(chan any, 4)}
	client, err := transport.ListenTCP("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	docs := [][2]string{
		{"computer", "network"},
		{"computer", "networks"},
		{"computer", "graphics"},
		{"compiler", "design"},
		{"computation", "theory"},
	}
	for i, d := range docs {
		msg := chord.AppMsg{From: client.Addr(), Payload: squid.ClientPublishMsg{
			Elem: squid.Element{Values: []string{d[0], d[1]}, Data: fmt.Sprintf("doc%d", i)},
		}}
		if err := client.Send(a.ep.Addr(), msg); err != nil {
			t.Fatal(err)
		}
	}

	// Publishes route asynchronously; wait until an unlimited query sees the
	// whole corpus before asserting on the limited one.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		q := chord.AppMsg{From: client.Addr(), Payload: squid.ClientQueryMsg{
			Query: "(comp*, *)", ReplyTo: client.Addr(), Token: 1,
		}}
		if err := client.Send(a.ep.Addr(), q); err != nil {
			t.Fatal(err)
		}
		var n int
		select {
		case raw := <-sink.results:
			if res, ok := raw.(squid.ClientResultMsg); ok {
				n = len(res.Matches)
			}
		case <-time.After(2 * time.Second):
		}
		if n == len(docs) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	for _, limit := range []int{1, 2, 10} {
		q := chord.AppMsg{From: client.Addr(), Payload: squid.ClientQueryMsg{
			Query: "(comp*, *)", ReplyTo: client.Addr(), Token: uint64(100 + limit), Limit: limit,
		}}
		if err := client.Send(a.ep.Addr(), q); err != nil {
			t.Fatal(err)
		}
		select {
		case raw := <-sink.results:
			res, ok := raw.(squid.ClientResultMsg)
			if !ok {
				t.Fatalf("limit %d: unexpected reply %T", limit, raw)
			}
			if res.Err != "" {
				t.Fatalf("limit %d: query error: %s", limit, res.Err)
			}
			want := limit
			if want > len(docs) {
				want = len(docs)
			}
			if len(res.Matches) != want {
				t.Fatalf("limit %d: got %d matches, want %d (%v)", limit, len(res.Matches), want, res.Matches)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("limit %d: no reply within 5s (stream stalled)", limit)
		}
	}
}
