package squid_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
)

// TestWireRoundTrip pushes every protocol message the system sends across
// TCP through gob (as interface values, the way the transport frames
// them) and checks exact reconstruction. A type that fails here would
// work in simulation and silently break real deployments.
func TestWireRoundTrip(t *testing.T) {
	ref := chord.NodeRef{ID: 42, Addr: "127.0.0.1:9999"}
	elem := squid.Element{Values: []string{"computer", "network"}, Data: "doc.pdf"}
	query := keyspace.Query{keyspace.Exact("a"), keyspace.Prefix("b"), keyspace.Wildcard(), keyspace.Range("1", "9")}

	msgs := []any{
		chord.FindMsg{Target: 7, Token: 1, ReplyTo: "x", Hops: 3, Trace: 9},
		chord.FoundMsg{Token: 1, Owner: ref, Pred: ref, Hops: 2, Trace: 9},
		chord.RouteMsg{Key: 5, From: "y", Payload: squid.PublishMsg{Elem: elem}, Hops: 1, Trace: 4},
		chord.JoinReqMsg{New: ref, Hops: 1},
		chord.JoinAckMsg{Pred: ref, Succs: []chord.NodeRef{ref, ref}, Items: []chord.Item{{Key: 3, Value: []squid.Element{elem}}}},
		chord.JoinNackMsg{Reason: "collision"},
		chord.NotifyMsg{Candidate: ref},
		chord.GetStateMsg{Token: 2, ReplyTo: "z"},
		chord.StateMsg{Token: 2, Self: ref, Pred: ref, Succs: []chord.NodeRef{ref}, Load: 7},
		chord.LeaveMsg{Leaving: ref, Pred: ref, Items: []chord.Item{{Key: 1, Value: []squid.Element{elem}}}},
		chord.SuccChangedMsg{NewSucc: ref},
		chord.AppMsg{From: "c", Payload: squid.ClusterQueryMsg{
			QID: 3, Query: query, Clusters: []squid.ClusterRef{{Prefix: 9, Level: 2, Complete: true}},
			ReplyTo: "r", Token: 8,
		}},
		chord.AppMsg{From: "c", Payload: squid.BatchMsg{Queries: []squid.ClusterQueryMsg{
			{QID: 3, Query: query, Clusters: []squid.ClusterRef{{Prefix: 9, Level: 2, Complete: true}}, ReplyTo: "r", Token: 8},
			{QID: 3, Query: query, Clusters: []squid.ClusterRef{{Prefix: 12, Level: 1}}, ReplyTo: "r", Token: 9, Ack: true},
		}}},
		chord.AppMsg{From: "c", Payload: squid.QueryShedMsg{QID: 3, Token: 8, RetryAfterMS: 25}},
		chord.AppMsg{From: "c", Payload: squid.SubResultMsg{QID: 3, Token: 8, Matches: []squid.Element{elem}}},
		chord.AppMsg{From: "c", Payload: squid.LookupMsg{QID: 1, Query: query, Key: 77, ReplyTo: "r", Token: 5}},
		chord.AppMsg{From: "c", Payload: squid.ReplicaMsg{Items: []chord.Item{{Key: 4, Value: []squid.Element{elem}}}}},
		chord.AppMsg{From: "c", Payload: squid.ClientPublishMsg{Elem: elem}},
		chord.AppMsg{From: "c", Payload: squid.ClientQueryMsg{Query: "(a*, *)", ReplyTo: "r", Token: 6}},
		chord.AppMsg{From: "c", Payload: squid.ClientResultMsg{Token: 6, Matches: []squid.Element{elem}, Err: "no"}},
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		// Encode as an interface value, matching the transport's framing.
		envelope := struct{ Payload any }{Payload: msg}
		if err := gob.NewEncoder(&buf).Encode(envelope); err != nil {
			t.Errorf("%T: encode: %v", msg, err)
			continue
		}
		var back struct{ Payload any }
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Errorf("%T: decode: %v", msg, err)
			continue
		}
		if !reflect.DeepEqual(back.Payload, msg) {
			t.Errorf("%T: round trip mismatch:\n got %#v\nwant %#v", msg, back.Payload, msg)
		}
	}
}
