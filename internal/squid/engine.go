package squid

import (
	"fmt"
	"sort"
	"sync/atomic"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/transport"
)

// MetricsSink observes query processing for experiment accounting. The
// paper's per-query metrics (processing nodes, data nodes, matches) are
// produced by a sink shared across the simulated network; pass nil to
// disable. Implementations must be safe for concurrent use (engines of
// different nodes run in different goroutines).
type MetricsSink interface {
	// Processed records that a node processed clusters of query qid and
	// found the given number of matching elements there.
	Processed(qid uint64, node chord.ID, clusters, matches int)
}

// Options tunes an Engine.
type Options struct {
	// DisableAggregation turns off the paper's second query optimization
	// (sibling clusters batched per owner via a probe handshake); each
	// remote cluster is then routed in its own message. For the ablation
	// benchmark.
	DisableAggregation bool
	// InitialClusters caps how many clusters the initiator computes
	// locally before dispatching (the first levels of the refinement
	// tree). Defaults to 2^d — one refinement step, as in the paper's
	// Fig. 7 root.
	InitialClusters int
	// ProbeCacheSize enables caching of owner-probe results at the query
	// root (0 disables): repeated queries over popular regions skip the
	// FindSuccessor handshake — the hot-spot mitigation the paper lists as
	// future work. Stale entries are harmless: a mis-directed batch is
	// re-dispatched by its receiver, which always probes authoritatively.
	ProbeCacheSize int
	// Replicas is the number of successor copies kept of every stored
	// item (0 disables replication). With r replicas the system tolerates
	// up to r simultaneous adjacent-node failures without losing data,
	// provided PushReplicas runs between failures.
	Replicas int
	// Sink receives per-query processing metrics; may be nil.
	Sink MetricsSink
}

// Result is the outcome of a flexible query: every stored element matching
// the query, gathered from all data nodes.
type Result struct {
	QID     uint64
	Query   keyspace.Query
	Matches []Element
	Err     error
}

// qidCounter issues process-wide unique query identifiers (results are
// correlated per initiating engine, but metrics need global uniqueness).
var qidCounter atomic.Uint64

func nextQID() uint64 { return qidCounter.Add(1) }

// Engine is the Squid application attached to one chord node. Like the
// node, its state is confined to the node's delivery goroutine: call
// Publish/Query from App upcalls or through node.Invoke.
type Engine struct {
	space    *keyspace.Space
	store    *Store
	replicas *Store
	node     *chord.Node
	opts     Options

	pending   map[uint64]*subtree
	nextToken uint64
	arcCache  []cachedArc
}

// subtree tracks one node's in-flight piece of a query's refinement tree:
// the matches found locally plus the results still expected from child
// messages. When complete, the aggregate flows to the parent (or, at the
// root, to the query's callback).
type subtree struct {
	qid         uint64
	q           keyspace.Query
	parent      transport.Addr // empty at the query root
	parentToken uint64
	matches     []Element
	sent        int  // child messages dispatched
	done        int  // child results received
	dispatched  bool // all child messages have been sent
	cb          func(Result)
}

// NewEngine creates an engine over the given keyword space. Attach it to
// its node before use:
//
//	eng := squid.NewEngine(space, opts)
//	node := chord.NewNode(chordCfg, id, eng)
//	eng.Attach(node)
func NewEngine(space *keyspace.Space, opts Options) *Engine {
	if opts.InitialClusters <= 0 {
		opts.InitialClusters = 1 << space.Dims()
	}
	return &Engine{
		space:    space,
		store:    NewStore(chord.Space{Bits: space.IndexBits()}),
		replicas: NewStore(chord.Space{Bits: space.IndexBits()}),
		opts:     opts,
		pending:  make(map[uint64]*subtree),
	}
}

// Attach binds the engine to its ring node.
func (e *Engine) Attach(n *chord.Node) { e.node = n }

// Node returns the ring node the engine is attached to.
func (e *Engine) Node() *chord.Node { return e.node }

// Space returns the engine's keyword space.
func (e *Engine) Space() *keyspace.Space { return e.space }

// LocalStore exposes the node's local index fragment (for inspection and
// oracle preloading by the simulator).
func (e *Engine) LocalStore() *Store { return e.store }

// Publish routes a data element to the node owning its curve index.
func (e *Engine) Publish(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return fmt.Errorf("squid: publish %v: %w", elem.Values, err)
	}
	e.node.Route(chord.ID(idx), PublishMsg{Elem: elem}, 0)
	return nil
}

// Unpublish removes a previously published element (matched by values and
// payload) from the system, including any replicas. Like Publish it is
// fire-and-forget: the removal is routed to the index owner, which fans it
// out to its replica holders.
func (e *Engine) Unpublish(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return fmt.Errorf("squid: unpublish %v: %w", elem.Values, err)
	}
	e.node.Route(chord.ID(idx), UnpublishMsg{Elem: elem}, 0)
	return nil
}

// StoreDirect inserts an element into the local store bypassing routing —
// the simulator's bulk-preload hook. The caller is responsible for having
// picked the owning node.
func (e *Engine) StoreDirect(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return err
	}
	e.store.Add(idx, elem)
	return nil
}

// Query resolves a flexible query and calls cb exactly once with the
// complete result set (all matching elements in the system). It returns
// the query's id for metrics correlation.
func (e *Engine) Query(q keyspace.Query, cb func(Result)) uint64 {
	qid := nextQID()
	region, err := e.space.Region(q)
	if err != nil {
		cb(Result{QID: qid, Query: q, Err: err})
		return qid
	}
	if region.Empty() {
		cb(Result{QID: qid, Query: q})
		return qid
	}

	// Exact queries identify one point: a plain DHT lookup (paper
	// Section 3.4.1).
	if pt, ok := region.IsPoint(); ok {
		idx := e.space.Curve().Encode(pt)
		st := &subtree{qid: qid, q: q, cb: cb, sent: 1, dispatched: true}
		tok := e.addSubtree(st)
		e.node.Route(chord.ID(idx), LookupMsg{
			QID: qid, Query: q, Key: idx, ReplyTo: e.node.Self().Addr, Token: tok,
		}, qid)
		return qid
	}

	// Compute the first levels of the refinement tree locally, then act as
	// the root of the distributed refinement: process locally rooted
	// clusters here and dispatch the rest.
	initial := sfc.CoarseClusters(e.space.Curve(), region, e.opts.InitialClusters)
	matches, remote, local := e.processClusters(qid, initial, q, region)
	if local > 0 && e.opts.Sink != nil {
		e.opts.Sink.Processed(qid, e.node.Self().ID, local, len(matches))
	}
	st := &subtree{qid: qid, q: q, cb: cb, matches: matches}
	tok := e.addSubtree(st)
	e.dispatchRemote(remote, q, qid, tok, true, func(sent int) {
		st.sent = sent
		st.dispatched = true
		e.checkSubtree(tok, st)
	})
	return qid
}

// addSubtree registers in-flight subtree state under a fresh token.
func (e *Engine) addSubtree(st *subtree) uint64 {
	e.nextToken++
	e.pending[e.nextToken] = st
	return e.nextToken
}

// checkSubtree completes a subtree whose children have all reported,
// forwarding the aggregate to the parent or firing the root callback.
func (e *Engine) checkSubtree(tok uint64, st *subtree) {
	if !st.dispatched || st.done < st.sent {
		return
	}
	delete(e.pending, tok)
	if st.parent == "" {
		if st.cb != nil {
			st.cb(Result{QID: st.qid, Query: st.q, Matches: st.matches})
		}
		return
	}
	e.send(st.parent, SubResultMsg{QID: st.qid, Token: st.parentToken, Matches: st.matches})
}

// debugScan, when set (tests only), observes every cluster scan.
var debugScan func(node chord.ID, qid uint64, span sfc.Interval)

// processClusters resolves the locally owned parts of the given clusters
// and collects the parts that must be forwarded (pruned by the query
// region). It walks each cluster's refinement subtree: a subtree whose
// span lies entirely inside the node's contiguous owned run is scanned
// (exactly once — subtree spans are disjoint); a subtree rooted outside
// the arc is forwarded; a subtree that starts owned but extends past the
// owned run is refined one level and reclassified.
//
// The "owned run" subtlety matters for the node whose arc wraps the top of
// the index space: a low cluster may cover both its low segment and,
// higher up, its wrap segment. Scanning the full span would count the wrap
// segment now AND again when the refinement routes those subspans back —
// the run boundary keeps every key in exactly one scanned subtree.
func (e *Engine) processClusters(qidDebug uint64, cls []sfc.Refined, q keyspace.Query, region sfc.Region) (matches []Element, remote []sfc.Refined, local int) {
	curve := e.space.Curve()
	var frontier []sfc.Refined
	for _, c := range cls {
		if !e.node.Owns(chord.ID(c.Span(curve).Lo)) {
			remote = append(remote, c)
			continue
		}
		local++
		frontier = append(frontier, c)
	}
	for len(frontier) > 0 {
		x := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		span := x.Span(curve)
		if !e.node.Owns(chord.ID(span.Lo)) {
			remote = append(remote, x)
			continue
		}
		if span.Hi <= e.ownedRunEnd(span.Lo) {
			if debugScan != nil {
				debugScan(e.node.Self().ID, qidDebug, span)
			}
			// The store holds only keys this node owns; the final filter
			// applies the query's exact semantics (paper: only elements
			// matching all terms are returned).
			e.store.ScanSpan(span, func(_ uint64, elem Element) {
				if e.space.Matches(q, elem.Values) {
					matches = append(matches, elem)
				}
			})
			continue
		}
		// Starts inside the owned run but extends beyond it: refine (with
		// region pruning) and reclassify the children.
		frontier = append(frontier, sfc.RefineStep(curve, x.Cluster, region)...)
	}
	return matches, remote, local
}

// ownedRunEnd returns the last index of the node's contiguous owned run
// containing lo (which must be owned): up to the node's identifier for the
// low/linear segment, or the top of the index space when lo lies in the
// wrap segment of an arc that crosses zero.
func (e *Engine) ownedRunEnd(lo uint64) uint64 {
	maxIdx := ^uint64(0)
	if b := e.space.IndexBits(); b < 64 {
		maxIdx = (uint64(1) << b) - 1
	}
	if e.node.Pred().IsZero() {
		return maxIdx // transient sole-owner view: one run covers everything
	}
	self := uint64(e.node.Self().ID)
	if lo <= self {
		return self
	}
	return maxIdx
}

// dispatchRemote forwards clusters rooted at other nodes and calls done
// with the number of child messages sent; their replies will carry token.
// With aggregation enabled it probes the owner of the first (lowest)
// cluster, then ships every sibling owned by that node's arc as one
// message (the paper's second optimization); without it, each cluster is
// routed independently.
//
// root marks dispatches from the query initiator: only there may the
// probe cache short-circuit the handshake. Receivers always probe, so a
// stale cache entry costs one extra forward and can never loop.
func (e *Engine) dispatchRemote(remote []sfc.Refined, q keyspace.Query, qid, token uint64, root bool, done func(sent int)) {
	if len(remote) == 0 {
		done(0)
		return
	}
	curve := e.space.Curve()
	self := e.node.Self().Addr
	if e.opts.DisableAggregation {
		for _, c := range remote {
			lo := c.Span(curve).Lo
			e.node.Route(chord.ID(lo), ClusterQueryMsg{
				QID: qid, Query: q, Clusters: toRefs([]sfc.Refined{c}), ReplyTo: self, Token: token,
			}, qid)
		}
		done(len(remote))
		return
	}

	sort.Slice(remote, func(i, j int) bool { return remote[i].Span(curve).Lo < remote[j].Span(curve).Lo })
	sent := 0
	var step func(rem []sfc.Refined)
	step = func(rem []sfc.Refined) {
		if len(rem) == 0 {
			done(sent)
			return
		}
		head := chord.ID(rem[0].Span(curve).Lo)
		if root && e.opts.ProbeCacheSize > 0 {
			if arc, ok := e.cacheLookup(head); ok {
				n := 1
				sp := e.node.Space()
				for n < len(rem) && sp.Between(chord.ID(rem[n].Span(curve).Lo), arc.pred.ID, arc.owner.ID) {
					n++
				}
				msg := ClusterQueryMsg{QID: qid, Query: q, Clusters: toRefs(rem[:n]), ReplyTo: self, Token: token}
				if e.send(arc.owner.Addr, msg) {
					sent++
					step(rem[n:])
					return
				}
				e.cacheDrop(arc.owner.Addr) // dead peer: fall through to probing
			}
		}
		e.node.FindSuccessor(head, qid, func(m chord.FoundMsg, err error) {
			if err != nil {
				// Ring unstable: fall back to blind routing for the head
				// cluster and keep going.
				e.node.Route(head, ClusterQueryMsg{
					QID: qid, Query: q, Clusters: toRefs(rem[:1]), ReplyTo: self, Token: token,
				}, qid)
				sent++
				step(rem[1:])
				return
			}
			e.cacheInsert(m.Pred, m.Owner)
			// Batch the run of siblings falling inside the owner's arc
			// (pred, owner]. The list is sorted, so the run is a prefix.
			n := 1
			if !m.Pred.IsZero() {
				sp := e.node.Space()
				for n < len(rem) && sp.Between(chord.ID(rem[n].Span(curve).Lo), m.Pred.ID, m.Owner.ID) {
					n++
				}
			}
			msg := ClusterQueryMsg{QID: qid, Query: q, Clusters: toRefs(rem[:n]), ReplyTo: self, Token: token}
			if !e.send(m.Owner.Addr, msg) {
				// Owner died between probe and send: blind-route each.
				for _, c := range rem[:n] {
					e.node.Route(chord.ID(c.Span(curve).Lo), ClusterQueryMsg{
						QID: qid, Query: q, Clusters: toRefs([]sfc.Refined{c}), ReplyTo: self, Token: token,
					}, qid)
					sent++
				}
				step(rem[n:])
				return
			}
			sent++
			step(rem[n:])
		})
	}
	step(remote)
}

func (e *Engine) send(to transport.Addr, msg any) bool {
	return e.node.SendApp(to, msg)
}

// Deliver implements chord.App: application payloads routed to this node.
func (e *Engine) Deliver(from transport.Addr, key chord.ID, payload any) {
	switch m := payload.(type) {
	case PublishMsg:
		idx, err := e.space.Index(m.Elem.Values)
		if err != nil {
			return
		}
		e.store.Add(idx, m.Elem)
		e.replicate([]chord.Item{{Key: chord.ID(idx), Value: []Element{m.Elem}}})
	case UnpublishMsg:
		e.handleUnpublish(m)
	case LookupMsg:
		e.handleLookup(m)
	case ClusterQueryMsg:
		e.handleClusterQuery(m)
	case SubResultMsg:
		e.handleSubResult(m)
	case ReplicaMsg:
		e.handleReplica(m)
	case ClientPublishMsg:
		_ = e.Publish(m.Elem)
	case ClientUnpublishMsg:
		_ = e.Unpublish(m.Elem)
	case ClientQueryMsg:
		e.handleClientQuery(m)
	}
}

// handleUnpublish removes the element locally (from the primary store at
// the owner, from the replica store at replica holders) and, at the owner,
// fans the removal out to the successors that may hold replicas.
func (e *Engine) handleUnpublish(m UnpublishMsg) {
	idx, err := e.space.Index(m.Elem.Values)
	if err != nil {
		return
	}
	if m.Replica {
		e.replicas.Remove(idx, m.Elem)
		// The arc may have shifted since replication: clear a promoted copy
		// too so owner changes cannot resurrect the element.
		e.store.Remove(idx, m.Elem)
		return
	}
	e.store.Remove(idx, m.Elem)
	if e.opts.Replicas > 0 {
		fanned := 0
		for _, s := range e.node.SuccList() {
			if s.Addr == e.node.Self().Addr {
				continue
			}
			if e.send(s.Addr, UnpublishMsg{Elem: m.Elem, Replica: true}) {
				fanned++
				if fanned == e.opts.Replicas {
					break
				}
			}
		}
	}
}

// handleClientQuery serves a non-member client: parse, run the query as
// root, and ship the complete result back.
func (e *Engine) handleClientQuery(m ClientQueryMsg) {
	q, err := keyspace.Parse(m.Query)
	if err != nil {
		e.send(m.ReplyTo, ClientResultMsg{Token: m.Token, Err: err.Error()})
		return
	}
	e.Query(q, func(r Result) {
		out := ClientResultMsg{Token: m.Token, Matches: r.Matches}
		if r.Err != nil {
			out.Err = r.Err.Error()
		}
		e.send(m.ReplyTo, out)
	})
}

func (e *Engine) handleLookup(m LookupMsg) {
	var matches []Element
	for _, elem := range e.store.At(m.Key) {
		if e.space.Matches(m.Query, elem.Values) {
			matches = append(matches, elem)
		}
	}
	if e.opts.Sink != nil {
		e.opts.Sink.Processed(m.QID, e.node.Self().ID, 1, len(matches))
	}
	e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token, Matches: matches})
}

func (e *Engine) handleClusterQuery(m ClusterQueryMsg) {
	region, err := e.space.Region(m.Query)
	if err != nil {
		e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token})
		return
	}
	matches, remote, local := e.processClusters(m.QID, fromRefs(m.Clusters), m.Query, region)
	if e.opts.Sink != nil {
		e.opts.Sink.Processed(m.QID, e.node.Self().ID, local, len(matches))
	}
	if len(remote) == 0 {
		e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token, Matches: matches})
		return
	}
	st := &subtree{qid: m.QID, q: m.Query, parent: m.ReplyTo, parentToken: m.Token, matches: matches}
	tok := e.addSubtree(st)
	e.dispatchRemote(remote, m.Query, m.QID, tok, false, func(sent int) {
		st.sent = sent
		st.dispatched = true
		e.checkSubtree(tok, st)
	})
}

func (e *Engine) handleSubResult(m SubResultMsg) {
	st, ok := e.pending[m.Token]
	if !ok {
		return
	}
	st.matches = append(st.matches, m.Matches...)
	st.done++
	e.checkSubtree(m.Token, st)
}

// HandoverOut implements chord.App. When replication is enabled the
// departing items are retained locally as replicas (this node is now one
// of the new owner's successors).
func (e *Engine) HandoverOut(a, b chord.ID) []chord.Item {
	items := e.store.HandoverOut(a, b)
	if e.opts.Replicas > 0 {
		for _, it := range items {
			for _, elem := range it.Value.([]Element) {
				e.replicas.AddUnique(uint64(it.Key), elem)
			}
		}
	}
	return items
}

// HandoverIn implements chord.App.
func (e *Engine) HandoverIn(items []chord.Item) { e.store.HandoverIn(items) }

// Load implements chord.App: the number of stored keys.
func (e *Engine) Load() int { return e.store.Keys() }

var _ chord.App = (*Engine)(nil)
