package squid

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// MetricsSink observes query processing for experiment accounting. The
// paper's per-query metrics (processing nodes, data nodes, matches) are
// produced by a sink shared across the simulated network; pass nil to
// disable. Implementations must be safe for concurrent use (engines of
// different nodes run in different goroutines).
type MetricsSink interface {
	// Processed records that a node processed clusters of query qid and
	// found the given number of matching elements there.
	Processed(qid uint64, node chord.ID, clusters, matches int)
}

// Options tunes an Engine.
type Options struct {
	// DisableAggregation turns off the paper's second query optimization
	// (sibling clusters batched per owner via a probe handshake); each
	// remote cluster is then routed in its own message. For the ablation
	// benchmark.
	DisableAggregation bool
	// InitialClusters caps how many clusters the initiator computes
	// locally before dispatching (the first levels of the refinement
	// tree). Defaults to 2^d — one refinement step, as in the paper's
	// Fig. 7 root.
	InitialClusters int
	// ProbeCacheSize enables caching of owner-probe results at the query
	// root (0 disables): repeated queries over popular regions skip the
	// FindSuccessor handshake — the hot-spot mitigation the paper lists as
	// future work. Stale entries are harmless: a mis-directed batch is
	// re-dispatched by its receiver, which always probes authoritatively.
	ProbeCacheSize int
	// Replicas is the number of successor copies kept of every stored
	// item (0 disables replication). With r replicas the system tolerates
	// up to r simultaneous adjacent-node failures without losing data,
	// provided PushReplicas runs between failures.
	Replicas int
	// Sink receives per-query processing metrics; may be nil.
	Sink MetricsSink
	// SubtreeTimeout arms a recovery deadline on every dispatched child
	// subtree of a query. A child that has neither replied nor acked
	// within the deadline is re-dispatched through ring routing, which
	// resolves to the *current* owner — after a crash that is the dead
	// node's successor, which holds promoted replicas when Replicas > 0.
	// 0 disables recovery tracking entirely (the simulator's quiesce-based
	// experiments rely on exact message counts).
	SubtreeTimeout time.Duration
	// SubtreeRetries caps re-dispatches per child subtree; once exhausted
	// the child is abandoned and the query degrades to an explicit partial
	// result. Defaults to 3 when SubtreeTimeout > 0.
	SubtreeRetries int
	// QueryDeadline bounds a whole query at its root: on expiry the
	// callback fires once with every match gathered so far and
	// Err = ErrPartialResult. 0 disables; queries then complete only via
	// subtree accounting.
	QueryDeadline time.Duration
	// Telemetry receives the engine's metrics as per-node labeled children.
	// Nil gets a private clock-less registry so instrumentation has one
	// code path; share one registry across node and engine to scrape both.
	Telemetry *telemetry.Registry
	// Traces enables query tracing at this node: every query rooted here is
	// sampled, its refinement hops record spans that flow back up the query
	// tree, and the reassembled tree lands in the store on completion. Nil
	// disables sampling for queries rooted here (subtrees of queries rooted
	// at tracing peers are still recorded and shipped up).
	Traces *telemetry.TraceStore
}

// ErrPartialResult marks a Result gathered under failures: some subtree of
// the query's refinement tree was lost and re-dispatch retries were
// exhausted (or the query deadline expired). Matches are still sound —
// every returned element matches the query — but the set may be missing
// elements held by unreachable nodes.
var ErrPartialResult = errors.New("squid: partial result: query subtree lost to failures")

// RecoverySink is an optional MetricsSink extension: sinks that implement
// it also receive fault-recovery events, correlated by query id.
type RecoverySink interface {
	// Redispatched records that a lost or overdue child subtree was sent
	// again through ring routing.
	Redispatched(qid uint64)
	// Abandoned records that a child subtree exhausted its re-dispatches.
	Abandoned(qid uint64)
	// Partial records that the query completed with an incomplete result.
	Partial(qid uint64)
}

// Result is the outcome of a flexible query: every stored element matching
// the query, gathered from all data nodes.
type Result struct {
	QID     uint64
	Query   keyspace.Query
	Matches []Element
	Err     error
}

// qidCounter issues process-wide unique query identifiers (results are
// correlated per initiating engine, but metrics need global uniqueness).
var qidCounter atomic.Uint64

func nextQID() uint64 { return qidCounter.Add(1) }

// Engine is the Squid application attached to one chord node. Like the
// node, its state is confined to the node's delivery goroutine: call
// Publish/Query from App upcalls or through node.Invoke.
type Engine struct {
	space    *keyspace.Space
	store    *Store
	replicas *Store
	node     *chord.Node
	opts     Options

	children  map[uint64]*childCall
	nextToken uint64
	arcCache  []cachedArc
	met       engineMetrics
	spanSeq   uint64

	// Per-engine refinement scratch. Engine state is confined to the
	// node's delivery goroutine, so the buffers are reused across queries:
	// the refinement inner loop of processClusters and the coarse
	// decomposition in Query allocate nothing in steady state.
	scratch  sfc.Scratch
	coarse   []sfc.Refined
	frontier []sfc.Refined

	// Delta-replication state: the keys mutated since the last push and
	// the fingerprint of the replica set the last full push went to.
	dirtyKeys      []uint64
	lastReplicaSet string
}

// subtree tracks one node's in-flight piece of a query's refinement tree:
// the matches found locally plus the results still expected from child
// messages. When complete, the aggregate flows to the parent (or, at the
// root, to the query's callback).
type subtree struct {
	qid         uint64
	q           keyspace.Query
	parent      transport.Addr // empty at the query root
	parentToken uint64
	matches     []Element
	sent        int  // child messages dispatched
	done        int  // child results received (or abandoned)
	dispatched  bool // all child messages have been sent
	incomplete  bool // some part of the subtree was lost to failures
	finished    bool // result already delivered; ignore stragglers
	deadline    *time.Timer
	cb          func(Result)

	// Tracing state. spanID is 0 when the query is not sampled; when set,
	// this subtree records one span on completion (attached under ref's
	// parent) and accumulates its children's spans for the trip upward.
	spanID       uint64
	ref          telemetry.TraceRef
	kind         string // "root" or "cluster"
	prefix       uint64 // representative cluster (first of the batch)
	level        int
	clustersIn   int // clusters this subtree received
	localDone    int // clusters resolved against the local store
	localMatches int // matches found locally (st.matches also aggregates children)
	retries      int // re-dispatches this subtree performed on its children
	startNS      int64
	spans        []telemetry.Span
}

// childRef derives the trace context for a child subtree dispatched from
// st: sampled children attach under st's span one level deeper.
func (st *subtree) childRef() telemetry.TraceRef {
	if st.spanID == 0 {
		return telemetry.TraceRef{Mode: telemetry.TraceOff}
	}
	return telemetry.TraceRef{Parent: st.spanID, Depth: st.ref.Depth + 1, Mode: telemetry.TraceOn}
}

// childCall tracks one dispatched child subtree awaiting its SubResultMsg.
// Each child owns a token — replies and acks correlate to the child, so a
// lost child can be re-dispatched individually while the original, if it
// was merely slow, is harmlessly deduplicated (first reply wins, the
// second finds no pending call).
type childCall struct {
	st       *subtree
	token    uint64
	clusters []ClusterRef // re-dispatch payload; nil for exact lookups
	key      uint64       // curve index the re-dispatch routes to
	attempts int
	acked    bool
	timer    *time.Timer
}

// NewEngine creates an engine over the given keyword space. Attach it to
// its node before use:
//
//	eng := squid.NewEngine(space, opts)
//	node := chord.NewNode(chordCfg, id, eng)
//	eng.Attach(node)
func NewEngine(space *keyspace.Space, opts Options) *Engine {
	if opts.InitialClusters <= 0 {
		opts.InitialClusters = 1 << space.Dims()
	}
	if opts.SubtreeTimeout > 0 && opts.SubtreeRetries <= 0 {
		opts.SubtreeRetries = 3
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewRegistry(nil)
	}
	e := &Engine{
		space:    space,
		store:    NewStore(chord.Space{Bits: space.IndexBits()}),
		replicas: NewStore(chord.Space{Bits: space.IndexBits()}),
		opts:     opts,
		children: make(map[uint64]*childCall),
	}
	if opts.Replicas > 0 {
		// Replication pushes deltas: track which keys change between ticks.
		e.store.TrackDirty()
	}
	return e
}

// Attach binds the engine to its ring node and resolves the engine's
// per-node metric children (the node identifier is the metric label).
func (e *Engine) Attach(n *chord.Node) {
	e.node = n
	e.met = newEngineMetrics(e.opts.Telemetry, uint64(n.Self().ID))
}

// newSpanID issues a span identifier unique across the query tree: a
// splitmix64-style mix of the node identifier and a per-engine sequence,
// deterministic under the simulator and allocation-free.
func (e *Engine) newSpanID() uint64 {
	e.spanSeq++
	x := uint64(e.node.Self().ID) ^ mix64(e.spanSeq)
	if id := mix64(x); id != 0 {
		return id
	}
	return 1
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nowNS reads the registry's injected clock as Unix nanoseconds; 0 under
// the simulator's nil clock, so span timing never perturbs determinism.
func (e *Engine) nowNS() int64 {
	t := e.opts.Telemetry.Now()
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// span builds this subtree's own completed span.
func (e *Engine) span(st *subtree) telemetry.Span {
	return telemetry.Span{
		QID:      st.qid,
		ID:       st.spanID,
		Parent:   st.ref.Parent,
		Depth:    st.ref.Depth,
		Node:     uint64(e.node.Self().ID),
		Addr:     string(e.node.Self().Addr),
		Kind:     st.kind,
		Prefix:   st.prefix,
		Level:    st.level,
		Clusters: st.clustersIn,
		Local:    st.localDone,
		Children: st.sent,
		Matches:  st.localMatches,
		Retries:  st.retries,
		StartNS:  st.startNS,
		EndNS:    e.nowNS(),
	}
}

// lostSpan marks a child subtree the dispatcher gave up on: the subtree
// never reported, so the dispatcher records a synthetic placeholder in its
// place (the node that should have answered is unknown by definition).
func (e *Engine) lostSpan(st *subtree, c *childCall) telemetry.Span {
	s := telemetry.Span{
		QID:       st.qid,
		ID:        e.newSpanID(),
		Parent:    st.spanID,
		Depth:     st.ref.Depth + 1,
		Kind:      "lost",
		Prefix:    c.key,
		Abandoned: true,
		StartNS:   e.nowNS(),
		EndNS:     e.nowNS(),
	}
	if len(c.clusters) > 0 {
		s.Prefix = c.clusters[0].Prefix
		s.Level = c.clusters[0].Level
		s.Clusters = len(c.clusters)
	}
	return s
}

// Node returns the ring node the engine is attached to.
func (e *Engine) Node() *chord.Node { return e.node }

// Space returns the engine's keyword space.
func (e *Engine) Space() *keyspace.Space { return e.space }

// LocalStore exposes the node's local index fragment (for inspection and
// oracle preloading by the simulator).
func (e *Engine) LocalStore() *Store { return e.store }

// ReplicaStore exposes the node's replica buffer (for inspection by tests
// and the simulator's consistency checks).
func (e *Engine) ReplicaStore() *Store { return e.replicas }

// Publish routes a data element to the node owning its curve index.
func (e *Engine) Publish(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return fmt.Errorf("squid: publish %v: %w", elem.Values, err)
	}
	e.node.Route(chord.ID(idx), PublishMsg{Elem: elem}, 0)
	return nil
}

// Unpublish removes a previously published element (matched by values and
// payload) from the system, including any replicas. Like Publish it is
// fire-and-forget: the removal is routed to the index owner, which fans it
// out to its replica holders.
func (e *Engine) Unpublish(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return fmt.Errorf("squid: unpublish %v: %w", elem.Values, err)
	}
	e.node.Route(chord.ID(idx), UnpublishMsg{Elem: elem}, 0)
	return nil
}

// StoreDirect inserts an element into the local store bypassing routing —
// the simulator's bulk-preload hook. The caller is responsible for having
// picked the owning node.
func (e *Engine) StoreDirect(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return err
	}
	e.store.Add(idx, elem)
	e.syncKeys()
	return nil
}

// StoreDirectBatch bulk-loads elements into the local store bypassing
// routing, through the store's sorted-merge path — seeding n elements
// costs O(n log n) instead of the O(n²) of n StoreDirect calls.
func (e *Engine) StoreDirectBatch(elems []Element) error {
	items := make([]chord.Item, 0, len(elems))
	for _, elem := range elems {
		idx, err := e.space.Index(elem.Values)
		if err != nil {
			return err
		}
		items = append(items, chord.Item{Key: chord.ID(idx), Value: []Element{elem}})
	}
	e.store.AddBatch(items)
	e.syncKeys()
	return nil
}

// Query resolves a flexible query and calls cb exactly once with the
// complete result set (all matching elements in the system). It returns
// the query's id for metrics correlation.
func (e *Engine) Query(q keyspace.Query, cb func(Result)) uint64 {
	qid := nextQID()
	e.met.queries.Inc()
	region, err := e.space.Region(q)
	if err != nil {
		cb(Result{QID: qid, Query: q, Err: err})
		return qid
	}
	if region.Empty() {
		cb(Result{QID: qid, Query: q})
		return qid
	}

	// Exact queries identify one point: a plain DHT lookup (paper
	// Section 3.4.1).
	if pt, ok := region.IsPoint(); ok {
		idx := e.space.Curve().Encode(pt)
		st := &subtree{qid: qid, q: q, cb: cb, dispatched: true, kind: "root"}
		e.sampleRoot(st)
		e.startDeadline(st)
		tok := e.addChild(st, idx, nil)
		e.node.Route(chord.ID(idx), LookupMsg{
			QID: qid, Query: q, Key: idx, ReplyTo: e.node.Self().Addr, Token: tok,
			Trace: st.childRef(),
		}, qid)
		return qid
	}

	// Compute the first levels of the refinement tree locally, then act as
	// the root of the distributed refinement: process locally rooted
	// clusters here and dispatch the rest.
	e.coarse = sfc.CoarseClustersInto(e.coarse[:0], e.space.Curve(), region, e.opts.InitialClusters, &e.scratch)
	matches, remote, local := e.processClusters(qid, e.coarse, q, region)
	e.noteProcessed(qid, local, len(matches), e.opts.Sink != nil && local > 0)
	st := &subtree{
		qid: qid, q: q, cb: cb, matches: matches, kind: "root",
		clustersIn: len(e.coarse), localDone: local, localMatches: len(matches),
	}
	e.sampleRoot(st)
	e.startDeadline(st)
	e.dispatchRemote(remote, q, qid, st, true, func() {
		st.dispatched = true
		e.checkSubtree(st)
	})
	return qid
}

// sampleRoot turns tracing on for a root subtree when this node collects
// traces.
func (e *Engine) sampleRoot(st *subtree) {
	if e.opts.Traces == nil {
		return
	}
	st.spanID = e.newSpanID()
	st.ref = telemetry.TraceRef{Mode: telemetry.TraceOn}
	st.startNS = e.nowNS()
}

// noteProcessed feeds the local processing counters and, when sink is set,
// the per-query metrics sink.
func (e *Engine) noteProcessed(qid uint64, clusters, matches int, sink bool) {
	e.met.clustersDone.Add(uint64(clusters))
	e.met.matches.Add(uint64(matches))
	if sink {
		e.opts.Sink.Processed(qid, e.node.Self().ID, clusters, matches)
	}
}

// addChild registers one dispatched child of st under a fresh token and
// arms its recovery deadline. clusters is the re-dispatch payload (nil for
// an exact lookup of key).
func (e *Engine) addChild(st *subtree, key uint64, clusters []ClusterRef) uint64 {
	e.nextToken++
	c := &childCall{st: st, token: e.nextToken, key: key, clusters: clusters}
	e.children[c.token] = c
	st.sent++
	e.met.subtreesSent.Inc()
	e.armChild(c)
	return c.token
}

// dropChild unregisters a child whose dispatch failed before it left the
// node (it will be delivered some other way and re-registered).
func (e *Engine) dropChild(tok uint64) {
	c, ok := e.children[tok]
	if !ok {
		return
	}
	delete(e.children, tok)
	if c.timer != nil {
		c.timer.Stop()
	}
	c.st.sent--
}

// armChild starts (or restarts) a child's recovery deadline.
func (e *Engine) armChild(c *childCall) {
	if e.opts.SubtreeTimeout <= 0 {
		return
	}
	tok := c.token
	c.timer = time.AfterFunc(e.opts.SubtreeTimeout, func() {
		_ = e.node.Invoke(func() { e.childExpired(tok) }) // node detached: no children left to expire
	})
}

// childExpired handles a child subtree that missed its deadline: it is
// re-dispatched through ring routing (which resolves to the current owner,
// i.e. the next live successor after a crash), or abandoned once its
// retries are exhausted, degrading the query to an explicit partial
// result.
func (e *Engine) childExpired(tok uint64) {
	c, ok := e.children[tok]
	if !ok || c.st.finished {
		return
	}
	if c.attempts >= e.opts.SubtreeRetries {
		delete(e.children, tok)
		e.met.abandoned.Inc()
		if rs, ok := e.opts.Sink.(RecoverySink); ok {
			rs.Abandoned(c.st.qid)
		}
		if c.st.spanID != 0 {
			c.st.spans = append(c.st.spans, e.lostSpan(c.st, c))
		}
		c.st.incomplete = true
		c.st.done++
		e.checkSubtree(c.st)
		return
	}
	c.attempts++
	c.acked = false
	e.met.redispatches.Inc()
	if rs, ok := e.opts.Sink.(RecoverySink); ok {
		rs.Redispatched(c.st.qid)
	}
	st := c.st
	st.retries++
	if c.clusters == nil {
		e.node.Route(chord.ID(c.key), LookupMsg{
			QID: st.qid, Query: st.q, Key: c.key, ReplyTo: e.node.Self().Addr, Token: c.token,
			Trace: st.childRef(),
		}, st.qid)
	} else {
		e.node.Route(chord.ID(c.key), ClusterQueryMsg{
			QID: st.qid, Query: st.q, Clusters: c.clusters,
			ReplyTo: e.node.Self().Addr, Token: c.token, Ack: true,
			Trace: st.childRef(),
		}, st.qid)
	}
	e.armChild(c)
}

// handleAck marks a child as received by its target and grants it a fresh
// deadline window: the subtree is in progress, not lost.
func (e *Engine) handleAck(m QueryAckMsg) {
	c, ok := e.children[m.Token]
	if !ok {
		return
	}
	c.acked = true
	e.met.acks.Inc()
	if c.timer != nil {
		c.timer.Reset(e.opts.SubtreeTimeout)
	}
}

// startDeadline arms the overall query deadline on a root subtree.
func (e *Engine) startDeadline(st *subtree) {
	if e.opts.QueryDeadline <= 0 || st.parent != "" {
		return
	}
	st.deadline = time.AfterFunc(e.opts.QueryDeadline, func() {
		_ = e.node.Invoke(func() { e.queryExpired(st) }) // node detached: the query died with its node
	})
}

// queryExpired force-completes a root subtree whose overall deadline
// passed: outstanding children are cancelled and the callback fires with
// whatever was gathered, marked partial.
func (e *Engine) queryExpired(st *subtree) {
	if st.finished {
		return
	}
	for tok, c := range e.children {
		if c.st == st {
			delete(e.children, tok)
			if c.timer != nil {
				c.timer.Stop()
			}
			// Cancelled children never reported: mark them lost in the
			// trace so the dump shows where the deadline cut the tree.
			if st.spanID != 0 {
				st.spans = append(st.spans, e.lostSpan(st, c))
			}
		}
	}
	st.incomplete = true
	e.finishSubtree(st)
}

// checkSubtree completes a subtree whose children have all reported.
func (e *Engine) checkSubtree(st *subtree) {
	if st.finished || !st.dispatched || st.done < st.sent {
		return
	}
	e.finishSubtree(st)
}

// finishSubtree delivers a subtree's aggregate exactly once: to the parent
// node, or — at the root — to the query callback, surfacing lost subtrees
// as ErrPartialResult rather than a silently short match set.
func (e *Engine) finishSubtree(st *subtree) {
	if st.finished {
		return
	}
	st.finished = true
	if st.deadline != nil {
		st.deadline.Stop()
	}
	if st.spanID != 0 {
		st.spans = append(st.spans, e.span(st))
	}
	if st.parent == "" {
		var err error
		if st.incomplete {
			err = ErrPartialResult
			e.met.partials.Inc()
			if rs, ok := e.opts.Sink.(RecoverySink); ok {
				rs.Partial(st.qid)
			}
		}
		if st.spanID != 0 && e.opts.Traces != nil {
			e.opts.Traces.Add(telemetry.Trace{QID: st.qid, Partial: st.incomplete, Spans: st.spans})
		}
		if st.cb != nil {
			st.cb(Result{QID: st.qid, Query: st.q, Matches: st.matches, Err: err})
		}
		return
	}
	e.send(st.parent, SubResultMsg{
		QID: st.qid, Token: st.parentToken, Matches: st.matches, Incomplete: st.incomplete,
		Spans: st.spans,
	})
}

// debugScan, when set (tests only), observes every cluster scan.
var debugScan func(node chord.ID, qid uint64, span sfc.Interval)

// processClusters resolves the locally owned parts of the given clusters
// and collects the parts that must be forwarded (pruned by the query
// region). It walks each cluster's refinement subtree: a subtree whose
// span lies entirely inside the node's contiguous owned run is scanned
// (exactly once — subtree spans are disjoint); a subtree rooted outside
// the arc is forwarded; a subtree that starts owned but extends past the
// owned run is refined one level and reclassified.
//
// The "owned run" subtlety matters for the node whose arc wraps the top of
// the index space: a low cluster may cover both its low segment and,
// higher up, its wrap segment. Scanning the full span would count the wrap
// segment now AND again when the refinement routes those subspans back —
// the run boundary keeps every key in exactly one scanned subtree.
func (e *Engine) processClusters(qidDebug uint64, cls []sfc.Refined, q keyspace.Query, region sfc.Region) (matches []Element, remote []sfc.Refined, local int) {
	curve := e.space.Curve()
	// The frontier is a per-engine stack (reused across queries; matches
	// and remote escape to async dispatch, so they stay per-call).
	frontier := e.frontier[:0]
	for _, c := range cls {
		if !e.node.Owns(chord.ID(c.Span(curve).Lo)) {
			remote = append(remote, c)
			continue
		}
		local++
		frontier = append(frontier, c)
	}
	for len(frontier) > 0 {
		x := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		span := x.Span(curve)
		if !e.node.Owns(chord.ID(span.Lo)) {
			remote = append(remote, x)
			continue
		}
		if span.Hi <= e.ownedRunEnd(span.Lo) {
			if debugScan != nil {
				debugScan(e.node.Self().ID, qidDebug, span)
			}
			// The store holds only keys this node owns; the final filter
			// applies the query's exact semantics (paper: only elements
			// matching all terms are returned).
			e.store.ScanSpan(span, func(_ uint64, elem Element) {
				if e.space.Matches(q, elem.Values) {
					matches = append(matches, elem)
				}
			})
			continue
		}
		// Starts inside the owned run but extends beyond it: refine (with
		// region pruning) and reclassify the children.
		frontier = sfc.RefineStepInto(frontier, curve, x.Cluster, region, &e.scratch)
	}
	e.frontier = frontier[:0]
	return matches, remote, local
}

// ownedRunEnd returns the last index of the node's contiguous owned run
// containing lo (which must be owned): up to the node's identifier for the
// low/linear segment, or the top of the index space when lo lies in the
// wrap segment of an arc that crosses zero.
func (e *Engine) ownedRunEnd(lo uint64) uint64 {
	maxIdx := ^uint64(0)
	if b := e.space.IndexBits(); b < 64 {
		maxIdx = (uint64(1) << b) - 1
	}
	if e.node.Pred().IsZero() {
		return maxIdx // transient sole-owner view: one run covers everything
	}
	self := uint64(e.node.Self().ID)
	if lo <= self {
		return self
	}
	return maxIdx
}

// dispatchRemote forwards clusters rooted at other nodes, registering each
// dispatched message as a tracked child of st, and calls done once every
// child message has been sent. With aggregation enabled it probes the
// owner of the first (lowest) cluster, then ships every sibling owned by
// that node's arc as one message (the paper's second optimization);
// without it, each cluster is routed independently.
//
// root marks dispatches from the query initiator: only there may the
// probe cache short-circuit the handshake. Receivers always probe, so a
// stale cache entry costs one extra forward and can never loop.
func (e *Engine) dispatchRemote(remote []sfc.Refined, q keyspace.Query, qid uint64, st *subtree, root bool, done func()) {
	if len(remote) == 0 {
		done()
		return
	}
	curve := e.space.Curve()
	self := e.node.Self().Addr
	ack := e.opts.SubtreeTimeout > 0
	// routeOne blind-routes a single cluster as its own tracked child.
	routeOne := func(c sfc.Refined) {
		lo := c.Span(curve).Lo
		refs := toRefs([]sfc.Refined{c})
		tok := e.addChild(st, lo, refs)
		e.node.Route(chord.ID(lo), ClusterQueryMsg{
			QID: qid, Query: q, Clusters: refs, ReplyTo: self, Token: tok, Ack: ack,
			Trace: st.childRef(),
		}, qid)
	}
	if e.opts.DisableAggregation {
		for _, c := range remote {
			routeOne(c)
		}
		done()
		return
	}

	sort.Slice(remote, func(i, j int) bool { return remote[i].Span(curve).Lo < remote[j].Span(curve).Lo })
	var step func(rem []sfc.Refined)
	step = func(rem []sfc.Refined) {
		if len(rem) == 0 {
			done()
			return
		}
		head := chord.ID(rem[0].Span(curve).Lo)
		if root && e.opts.ProbeCacheSize > 0 {
			arc, ok := e.cacheLookup(head)
			if ok {
				e.met.probeHits.Inc()
				n := 1
				sp := e.node.Space()
				for n < len(rem) && sp.Between(chord.ID(rem[n].Span(curve).Lo), arc.pred.ID, arc.owner.ID) {
					n++
				}
				refs := toRefs(rem[:n])
				tok := e.addChild(st, uint64(head), refs)
				msg := ClusterQueryMsg{QID: qid, Query: q, Clusters: refs, ReplyTo: self, Token: tok, Ack: ack, Trace: st.childRef()}
				if e.send(arc.owner.Addr, msg) {
					step(rem[n:])
					return
				}
				e.dropChild(tok)
				e.cacheDrop(arc.owner.Addr) // dead peer: fall through to probing
			} else {
				e.met.probeMisses.Inc()
			}
		}
		e.node.FindSuccessor(head, qid, func(m chord.FoundMsg, err error) {
			if err != nil {
				// Ring unstable: fall back to blind routing for the head
				// cluster and keep going.
				routeOne(rem[0])
				step(rem[1:])
				return
			}
			e.cacheInsert(m.Pred, m.Owner)
			// Batch the run of siblings falling inside the owner's arc
			// (pred, owner]. The list is sorted, so the run is a prefix.
			n := 1
			if !m.Pred.IsZero() {
				sp := e.node.Space()
				for n < len(rem) && sp.Between(chord.ID(rem[n].Span(curve).Lo), m.Pred.ID, m.Owner.ID) {
					n++
				}
			}
			refs := toRefs(rem[:n])
			tok := e.addChild(st, uint64(chord.ID(rem[0].Span(curve).Lo)), refs)
			msg := ClusterQueryMsg{QID: qid, Query: q, Clusters: refs, ReplyTo: self, Token: tok, Ack: ack, Trace: st.childRef()}
			if !e.send(m.Owner.Addr, msg) {
				// Owner died between probe and send: blind-route each.
				e.dropChild(tok)
				for _, c := range rem[:n] {
					routeOne(c)
				}
				step(rem[n:])
				return
			}
			step(rem[n:])
		})
	}
	step(remote)
}

func (e *Engine) send(to transport.Addr, msg any) bool {
	return e.node.SendApp(to, msg)
}

// syncKeys refreshes the keys-held gauge after a store mutation. The Store
// itself is goroutine-confined, so the gauge (atomic) is the only store
// statistic a scrape goroutine may read.
func (e *Engine) syncKeys() {
	if e.met.keysHeld == nil {
		return // not attached yet (bulk preload before Attach)
	}
	e.met.keysHeld.Set(int64(e.store.Keys()))
}

// Deliver implements chord.App: application payloads routed to this node.
func (e *Engine) Deliver(from transport.Addr, key chord.ID, payload any) {
	switch m := payload.(type) {
	case PublishMsg:
		idx, err := e.space.Index(m.Elem.Values)
		if err != nil {
			return
		}
		e.store.Add(idx, m.Elem)
		e.syncKeys()
		e.replicate([]chord.Item{{Key: chord.ID(idx), Value: []Element{m.Elem}}})
	case UnpublishMsg:
		e.handleUnpublish(m)
	case LookupMsg:
		e.handleLookup(m)
	case ClusterQueryMsg:
		e.handleClusterQuery(m)
	case QueryAckMsg:
		e.handleAck(m)
	case SubResultMsg:
		e.handleSubResult(m)
	case ReplicaMsg:
		e.handleReplica(m)
	case ClientPublishMsg:
		_ = e.Publish(m.Elem)
	case ClientUnpublishMsg:
		_ = e.Unpublish(m.Elem)
	case ClientQueryMsg:
		e.handleClientQuery(m)
	}
}

// handleUnpublish removes the element locally (from the primary store at
// the owner, from the replica store at replica holders) and, at the owner,
// fans the removal out to the successors that may hold replicas.
func (e *Engine) handleUnpublish(m UnpublishMsg) {
	idx, err := e.space.Index(m.Elem.Values)
	if err != nil {
		return
	}
	if m.Replica {
		e.replicas.Remove(idx, m.Elem)
		// The arc may have shifted since replication: clear a promoted copy
		// too so owner changes cannot resurrect the element.
		e.store.Remove(idx, m.Elem)
		e.syncKeys()
		return
	}
	e.store.Remove(idx, m.Elem)
	e.syncKeys()
	if e.opts.Replicas > 0 {
		fanned := 0
		for _, s := range e.node.SuccList() {
			if s.Addr == e.node.Self().Addr {
				continue
			}
			if e.send(s.Addr, UnpublishMsg{Elem: m.Elem, Replica: true}) {
				fanned++
				if fanned == e.opts.Replicas {
					break
				}
			}
		}
	}
}

// handleClientQuery serves a non-member client: parse, run the query as
// root, and ship the complete result back.
func (e *Engine) handleClientQuery(m ClientQueryMsg) {
	q, err := keyspace.Parse(m.Query)
	if err != nil {
		e.send(m.ReplyTo, ClientResultMsg{Token: m.Token, Err: err.Error()})
		return
	}
	e.Query(q, func(r Result) {
		out := ClientResultMsg{Token: m.Token, QID: r.QID, Matches: r.Matches}
		if r.Err != nil {
			out.Err = r.Err.Error()
		}
		e.send(m.ReplyTo, out)
	})
}

func (e *Engine) handleLookup(m LookupMsg) {
	var matches []Element
	for _, elem := range e.store.At(m.Key) {
		if e.space.Matches(m.Query, elem.Values) {
			matches = append(matches, elem)
		}
	}
	e.noteProcessed(m.QID, 1, len(matches), e.opts.Sink != nil)
	var spans []telemetry.Span
	if ref := m.Trace.OrRoot(); ref.Sampled() {
		now := e.nowNS()
		spans = []telemetry.Span{{
			QID: m.QID, ID: e.newSpanID(), Parent: ref.Parent, Depth: ref.Depth,
			Node: uint64(e.node.Self().ID), Addr: string(e.node.Self().Addr),
			Kind: "lookup", Prefix: m.Key, Clusters: 1, Local: 1,
			Matches: len(matches), StartNS: now, EndNS: now,
		}}
	}
	e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token, Matches: matches, Spans: spans})
}

func (e *Engine) handleClusterQuery(m ClusterQueryMsg) {
	if m.Ack {
		e.send(m.ReplyTo, QueryAckMsg{QID: m.QID, Token: m.Token})
	}
	ref := m.Trace.OrRoot()
	region, err := e.space.Region(m.Query)
	if err != nil {
		e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token})
		return
	}
	matches, remote, local := e.processClusters(m.QID, fromRefs(m.Clusters), m.Query, region)
	e.noteProcessed(m.QID, local, len(matches), e.opts.Sink != nil)
	st := &subtree{
		qid: m.QID, q: m.Query, parent: m.ReplyTo, parentToken: m.Token, matches: matches,
		kind: "cluster", clustersIn: len(m.Clusters), localDone: local, localMatches: len(matches),
	}
	if len(m.Clusters) > 0 {
		st.prefix = m.Clusters[0].Prefix
		st.level = m.Clusters[0].Level
	}
	if ref.Sampled() {
		st.spanID = e.newSpanID()
		st.ref = ref
		st.startNS = e.nowNS()
	}
	if len(remote) == 0 {
		// Leaf of the query tree: finish immediately (records the span and
		// ships it with the result).
		st.dispatched = true
		e.finishSubtree(st)
		return
	}
	e.dispatchRemote(remote, m.Query, m.QID, st, false, func() {
		st.dispatched = true
		e.checkSubtree(st)
	})
}

func (e *Engine) handleSubResult(m SubResultMsg) {
	c, ok := e.children[m.Token]
	if !ok {
		return // straggler: child already answered, abandoned, or expired
	}
	delete(e.children, m.Token)
	if c.timer != nil {
		c.timer.Stop()
	}
	st := c.st
	if st.finished {
		return
	}
	st.matches = append(st.matches, m.Matches...)
	if st.spanID != 0 {
		st.spans = append(st.spans, m.Spans...)
	}
	if m.Incomplete {
		st.incomplete = true
	}
	st.done++
	e.checkSubtree(st)
}

// HandoverOut implements chord.App. When replication is enabled the
// departing items are retained locally as replicas (this node is now one
// of the new owner's successors).
func (e *Engine) HandoverOut(a, b chord.ID) []chord.Item {
	items := e.store.HandoverOut(a, b)
	if e.opts.Replicas > 0 {
		e.replicas.AddBatchUnique(items)
	}
	e.syncKeys()
	return items
}

// HandoverIn implements chord.App.
func (e *Engine) HandoverIn(items []chord.Item) {
	e.store.HandoverIn(items)
	e.syncKeys()
}

// Load implements chord.App: the number of stored keys.
func (e *Engine) Load() int { return e.store.Keys() }

var _ chord.App = (*Engine)(nil)
