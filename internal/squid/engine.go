package squid

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// MetricsSink observes query processing for experiment accounting. The
// paper's per-query metrics (processing nodes, data nodes, matches) are
// produced by a sink shared across the simulated network; pass nil to
// disable. Implementations must be safe for concurrent use (engines of
// different nodes run in different goroutines).
type MetricsSink interface {
	// Processed records that a node processed clusters of query qid and
	// found the given number of matching elements there.
	Processed(qid QueryID, node chord.ID, clusters, matches int)
}

// Options tunes an Engine.
type Options struct {
	// DisableAggregation turns off the paper's second query optimization
	// (sibling clusters batched per owner via a probe handshake); each
	// remote cluster is then routed in its own message. For the ablation
	// benchmark.
	DisableAggregation bool
	// InitialClusters caps how many clusters the initiator computes
	// locally before dispatching (the first levels of the refinement
	// tree). Defaults to 2^d — one refinement step, as in the paper's
	// Fig. 7 root.
	InitialClusters int
	// ProbeCacheSize enables caching of owner-probe results at the query
	// root (0 disables): repeated queries over popular regions skip the
	// FindSuccessor handshake — the hot-spot mitigation the paper lists as
	// future work. Stale entries are harmless: a mis-directed batch is
	// re-dispatched by its receiver, which always probes authoritatively.
	ProbeCacheSize int
	// ResultCacheSize bounds the popular-cluster result cache (0 disables):
	// leaf subtrees — cluster batches resolved entirely against the local
	// store — are remembered by (query, cluster set), so Zipf-popular repeat
	// queries skip refinement and scanning. Entries are invalidated by the
	// store's dirty-key signal the moment a covered index mutates; see
	// resultcache.go for why only leaves are cached.
	ResultCacheSize int
	// Replicas is the number of successor copies kept of every stored
	// item (0 disables replication). With r replicas the system tolerates
	// up to r simultaneous adjacent-node failures without losing data,
	// provided PushReplicas runs between failures.
	Replicas int
	// Sink receives per-query processing metrics; may be nil.
	Sink MetricsSink
	// SubtreeTimeout arms a recovery deadline on every dispatched child
	// subtree of a query. A child that has neither replied nor acked
	// within the deadline is re-dispatched through ring routing, which
	// resolves to the *current* owner — after a crash that is the dead
	// node's successor, which holds promoted replicas when Replicas > 0.
	// 0 disables recovery tracking entirely (the simulator's quiesce-based
	// experiments rely on exact message counts).
	SubtreeTimeout time.Duration
	// SubtreeRetries caps re-dispatches per child subtree; once exhausted
	// the child is abandoned and the query degrades to an explicit partial
	// result. Defaults to 3 when SubtreeTimeout > 0.
	SubtreeRetries int
	// QueryDeadline bounds a whole query at its root: on expiry the
	// callback fires once with every match gathered so far and
	// Err = ErrPartialResult. 0 disables; queries then complete only via
	// subtree accounting.
	QueryDeadline time.Duration
	// Workers sizes the query scheduler's worker pool: the goroutines that
	// run Hilbert refinement and local matching off the delivery
	// goroutine, so an expensive wildcard query cannot head-of-line-block
	// the node's message processing. 0 picks a default (GOMAXPROCS,
	// clamped to [2, 8]); < 0 disables the pool and refines inline on the
	// delivery goroutine (the pre-scheduler serial behavior, kept as the
	// ablation baseline).
	Workers int
	// MaxInflight caps refinement jobs admitted but not yet completed on
	// this node. Beyond the cap the engine sheds: a root query fails fast
	// with ErrOverloaded, a remote subtree is refused with a QueryShedMsg
	// and retried by its dispatcher through the recovery path. 0 defaults
	// to max(64, 16*workers); ignored in serial mode.
	MaxInflight int
	// Telemetry receives the engine's metrics as per-node labeled children.
	// Nil gets a private clock-less registry so instrumentation has one
	// code path; share one registry across node and engine to scrape both.
	Telemetry *telemetry.Registry
	// Traces enables query tracing at this node: every query rooted here is
	// sampled, its refinement hops record spans that flow back up the query
	// tree, and the reassembled tree lands in the store on completion. Nil
	// disables sampling for queries rooted here (subtrees of queries rooted
	// at tracing peers are still recorded and shipped up).
	Traces *telemetry.TraceStore
	// Clock supplies the engine's recovery and deadline timers (subtree
	// re-dispatch, overall query deadline). Nil uses the runtime timers
	// (transport.RealClock); the discrete-event simulator injects its
	// virtual clock so recovery runs in virtual time.
	Clock transport.Clock
}

// ErrPartialResult marks a Result gathered under failures: some subtree of
// the query's refinement tree was lost and re-dispatch retries were
// exhausted (or the query deadline expired). Matches are still sound —
// every returned element matches the query — but the set may be missing
// elements held by unreachable nodes.
var ErrPartialResult = errors.New("squid: partial result: query subtree lost to failures")

// RecoverySink is an optional MetricsSink extension: sinks that implement
// it also receive fault-recovery events, correlated by query id.
type RecoverySink interface {
	// Redispatched records that a lost or overdue child subtree was sent
	// again through ring routing.
	Redispatched(qid QueryID)
	// Abandoned records that a child subtree exhausted its re-dispatches.
	Abandoned(qid QueryID)
	// Partial records that the query completed with an incomplete result.
	Partial(qid QueryID)
}

// Result is the outcome of a flexible query: every stored element matching
// the query, gathered from all data nodes.
type Result struct {
	QID     QueryID
	Query   keyspace.Query
	Matches []Element
	Err     error
}

// qidCounter issues process-wide unique query identifiers (results are
// correlated per initiating engine, but metrics need global uniqueness).
var qidCounter atomic.Uint64

func nextQID() QueryID { return QueryID(qidCounter.Add(1)) }

// Engine is the Squid application attached to one chord node. Like the
// node, its state is confined to the node's delivery goroutine: call
// Publish/Query from App upcalls or through node.Invoke.
type Engine struct {
	space    *keyspace.Space
	store    *Store
	replicas *Store
	node     *chord.Node
	opts     Options

	children map[uint64]*childCall //lint:confine delivery
	// roots tracks in-flight queries rooted here; inbound tracks in-flight
	// remote subtrees for cancel teardown.
	roots     map[QueryID]*subtree    //lint:confine delivery
	inbound   map[inboundKey]*subtree //lint:confine delivery
	nextToken uint64                  //lint:confine delivery
	arcCache  []cachedArc             //lint:confine delivery
	rcache    *resultCache            // nil unless Options.ResultCacheSize > 0
	met       engineMetrics
	spanSeq   uint64     //lint:confine delivery
	sched     *scheduler // nil in serial mode (Options.Workers < 0)

	// Per-engine refinement scratch. Engine state is confined to the
	// node's delivery goroutine, so the buffers are reused across queries:
	// the refinement inner loop of processClusters and the coarse
	// decomposition in Query allocate nothing in steady state.
	scratch  sfc.Scratch   //lint:confine delivery
	coarse   []sfc.Refined //lint:confine delivery
	frontier []sfc.Refined //lint:confine delivery

	// Delta-replication state: the keys mutated since the last push and
	// the fingerprint of the replica set the last full push went to.
	dirtyKeys      []uint64 //lint:confine delivery
	lastReplicaSet string   //lint:confine delivery
}

// subtree tracks one node's in-flight piece of a query's refinement tree:
// the matches found locally plus the results still expected from child
// messages. When complete, the aggregate flows to the parent (or, at the
// root, to the query's callback).
type subtree struct {
	qid         QueryID
	q           keyspace.Query
	parent      transport.Addr // empty at the query root
	parentToken uint64
	matches     []Element
	sent        int  // child messages dispatched
	done        int  // child results received (or abandoned)
	dispatched  bool // all child messages have been sent
	incomplete  bool // some part of the subtree was lost to failures
	finished    bool // result already delivered; ignore stragglers
	deadline    transport.Timer
	cb          func(Result)
	cancelErr   error         // context cancellation cause; overrides ErrPartialResult
	ctxStop     chan struct{} // closed on completion to release the context watcher

	// Streaming state. A streaming root carries its sink; matches flow out
	// through it as children report instead of accumulating in matches.
	// Non-root subtrees of a streaming query set streamUp and forward each
	// increment to the parent as a PartialResultMsg; forwarded counts the
	// matches already shipped that way so the terminal SubResultMsg carries
	// only the remainder.
	stream    streamSink // non-nil at a streaming root
	limit     int        // stop after this many delivered matches (0 = unlimited)
	afterPos  uint64     // cursor restriction: deliver only curve indices >= afterPos
	afterSkip int        // elements at afterPos already delivered (store order)
	hasPos    bool
	delivered int  // matches pushed to the stream so far
	streamUp  bool // non-root: forward increments to the parent
	forwarded int  // matches already shipped upstream in partials
	cutLo     uint64
	cutSkip   int  // elements at cutLo already delivered
	cutSet    bool // (cutLo, cutSkip) is the lowest coordinate never delivered

	// Ordered (paged) delivery state, used when limit > 0: arriving matches
	// buffer here and flow out in curve order once every lower span has
	// resolved, so the resume cursor advances strictly page over page.
	// runIdx/runCount track how many elements at the highest delivered
	// index went out, for the cursor's skip count. pending holds the
	// coarse clusters (curve-sorted) not yet dispatched: a limited root
	// sends only a window at a time, so clusters past the satisfied point
	// are never dispatched at all — the paper's browsing-query economy.
	buf      []bufferedMatch
	runIdx   uint64
	runCount int
	runSet   bool
	pending  []sfc.Refined

	// Result-cache fill state: set on remote subtrees when the cache is
	// enabled; a leaf completion stores its matches under cacheKey.
	cacheKey   string
	cacheSpans []sfc.Interval

	// Tracing state. spanID is 0 when the query is not sampled; when set,
	// this subtree records one span on completion (attached under ref's
	// parent) and accumulates its children's spans for the trip upward.
	spanID       uint64
	ref          telemetry.TraceRef
	kind         string // "root" or "cluster"
	prefix       uint64 // representative cluster (first of the batch)
	level        int
	clustersIn   int // clusters this subtree received
	localDone    int // clusters resolved against the local store
	localMatches int // matches found locally (st.matches also aggregates children)
	retries      int // re-dispatches this subtree performed on its children
	startNS      int64
	spans        []telemetry.Span
}

// childRef derives the trace context for a child subtree dispatched from
// st: sampled children attach under st's span one level deeper.
func (st *subtree) childRef() telemetry.TraceRef {
	if st.spanID == 0 {
		return telemetry.TraceRef{Mode: telemetry.TraceOff}
	}
	return telemetry.TraceRef{Parent: st.spanID, Depth: st.ref.Depth + 1, Mode: telemetry.TraceOn}
}

// childCall tracks one dispatched child subtree awaiting its SubResultMsg.
// Each child owns a token — replies and acks correlate to the child, so a
// lost child can be re-dispatched individually while the original, if it
// was merely slow, is harmlessly deduplicated (first reply wins, the
// second finds no pending call).
type childCall struct {
	st       *subtree
	token    uint64
	clusters []ClusterRef // re-dispatch payload; nil for exact lookups
	key      uint64       // curve index the re-dispatch routes to
	attempts int
	acked    bool
	timer    transport.Timer
}

// NewEngine creates an engine over the given keyword space from an Options
// struct.
//
// Deprecated: use New with functional options (FromOptions bridges an
// assembled Options struct). NewEngine is kept as a shim for existing
// callers and behaves identically.
func NewEngine(space *keyspace.Space, opts Options) *Engine {
	return newEngine(space, opts)
}

// newEngine is the shared constructor behind New and NewEngine. Attach the
// engine to its node before use:
//
//	eng := squid.New(space, squid.WithReplication(2))
//	node := chord.NewNode(chordCfg, id, eng)
//	eng.Attach(node)
func newEngine(space *keyspace.Space, opts Options) *Engine {
	if opts.InitialClusters <= 0 {
		opts.InitialClusters = 1 << space.Dims()
	}
	if opts.SubtreeTimeout > 0 && opts.SubtreeRetries <= 0 {
		opts.SubtreeRetries = 3
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewRegistry(nil)
	}
	if opts.Workers == 0 {
		opts.Workers = max(2, min(8, runtime.GOMAXPROCS(0)))
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = max(64, 16*opts.Workers)
	}
	if opts.Clock == nil {
		opts.Clock = transport.RealClock{}
	}
	e := &Engine{
		space:    space,
		store:    NewStore(chord.Space{Bits: space.IndexBits()}),
		replicas: NewStore(chord.Space{Bits: space.IndexBits()}),
		opts:     opts,
		children: make(map[uint64]*childCall),
		roots:    make(map[QueryID]*subtree),
		inbound:  make(map[inboundKey]*subtree),
	}
	if opts.Replicas > 0 || opts.ResultCacheSize > 0 {
		// Replication pushes deltas and the result cache invalidates by
		// mutated key: both consume the store's dirty tracking.
		e.store.TrackDirty()
	}
	if opts.ResultCacheSize > 0 {
		e.rcache = newResultCache(opts.ResultCacheSize)
	}
	return e
}

// inboundKey addresses one remote subtree this node is processing: the
// dispatcher plus the token it assigned. QueryCancelMsg carries the pair so
// teardown finds the subtree even after riding the ring through
// intermediate hops.
type inboundKey struct {
	from  transport.Addr
	token uint64
}

// noteMutation feeds the result cache the dirty-key signal for one mutated
// curve index: any cached leaf whose span covers it is now stale.
func (e *Engine) noteMutation(idx uint64) {
	if e.rcache != nil {
		e.rcache.invalidate(idx)
	}
}

// noteBulkMutation invalidates the whole result cache after a mutation
// whose touched keys are not enumerated (handover, replica promotion,
// batch preload).
func (e *Engine) noteBulkMutation() {
	if e.rcache != nil {
		e.rcache.clear()
	}
}

// Attach binds the engine to its ring node and resolves the engine's
// per-node metric children (the node identifier is the metric label).
func (e *Engine) Attach(n *chord.Node) {
	e.node = n
	e.met = newEngineMetrics(e.opts.Telemetry, uint64(n.Self().ID))
	if e.opts.Workers > 0 {
		e.sched = newScheduler(e, e.opts.Workers, e.opts.MaxInflight)
	}
}

// WaitIdle blocks until the engine's query scheduler has no admitted
// refinement job outstanding (serial engines are always idle). The
// simulator's quiesce protocol pairs it with transport quiescence; safe
// from any goroutine.
func (e *Engine) WaitIdle() {
	if e.sched != nil {
		e.sched.waitIdle()
	}
}

// SchedulerDepth returns the number of admitted-but-unfinished refinement
// jobs (0 in serial mode). Safe from any goroutine.
func (e *Engine) SchedulerDepth() int {
	if e.sched == nil {
		return 0
	}
	return e.sched.depth()
}

// newSpanID issues a span identifier unique across the query tree: a
// splitmix64-style mix of the node identifier and a per-engine sequence,
// deterministic under the simulator and allocation-free.
func (e *Engine) newSpanID() uint64 {
	e.spanSeq++
	x := uint64(e.node.Self().ID) ^ mix64(e.spanSeq)
	if id := mix64(x); id != 0 {
		return id
	}
	return 1
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nowNS reads the registry's injected clock as Unix nanoseconds; 0 under
// the simulator's nil clock, so span timing never perturbs determinism.
func (e *Engine) nowNS() int64 {
	t := e.opts.Telemetry.Now()
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// span builds this subtree's own completed span.
func (e *Engine) span(st *subtree) telemetry.Span {
	return telemetry.Span{
		QID:      st.qid,
		ID:       st.spanID,
		Parent:   st.ref.Parent,
		Depth:    st.ref.Depth,
		Node:     uint64(e.node.Self().ID),
		Addr:     string(e.node.Self().Addr),
		Kind:     st.kind,
		Prefix:   st.prefix,
		Level:    st.level,
		Clusters: st.clustersIn,
		Local:    st.localDone,
		Children: st.sent,
		Matches:  st.localMatches,
		Retries:  st.retries,
		StartNS:  st.startNS,
		EndNS:    e.nowNS(),
	}
}

// lostSpan marks a child subtree the dispatcher gave up on: the subtree
// never reported, so the dispatcher records a synthetic placeholder in its
// place (the node that should have answered is unknown by definition).
func (e *Engine) lostSpan(st *subtree, c *childCall) telemetry.Span {
	s := telemetry.Span{
		QID:       st.qid,
		ID:        e.newSpanID(),
		Parent:    st.spanID,
		Depth:     st.ref.Depth + 1,
		Kind:      "lost",
		Prefix:    c.key,
		Abandoned: true,
		StartNS:   e.nowNS(),
		EndNS:     e.nowNS(),
	}
	if len(c.clusters) > 0 {
		s.Prefix = c.clusters[0].Prefix
		s.Level = c.clusters[0].Level
		s.Clusters = len(c.clusters)
	}
	return s
}

// Node returns the ring node the engine is attached to.
func (e *Engine) Node() *chord.Node { return e.node }

// Space returns the engine's keyword space.
func (e *Engine) Space() *keyspace.Space { return e.space }

// LocalStore exposes the node's local index fragment (for inspection and
// oracle preloading by the simulator).
func (e *Engine) LocalStore() *Store { return e.store }

// ReplicaStore exposes the node's replica buffer (for inspection by tests
// and the simulator's consistency checks).
func (e *Engine) ReplicaStore() *Store { return e.replicas }

// Publish routes a data element to the node owning its curve index.
func (e *Engine) Publish(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return fmt.Errorf("squid: publish %v: %w", elem.Values, err)
	}
	e.node.Route(chord.ID(idx), PublishMsg{Elem: elem}, 0)
	return nil
}

// Unpublish removes a previously published element (matched by values and
// payload) from the system, including any replicas. Like Publish it is
// fire-and-forget: the removal is routed to the index owner, which fans it
// out to its replica holders.
func (e *Engine) Unpublish(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return fmt.Errorf("squid: unpublish %v: %w", elem.Values, err)
	}
	e.node.Route(chord.ID(idx), UnpublishMsg{Elem: elem}, 0)
	return nil
}

// StoreDirect inserts an element into the local store bypassing routing —
// the simulator's bulk-preload hook. The caller is responsible for having
// picked the owning node.
func (e *Engine) StoreDirect(elem Element) error {
	idx, err := e.space.Index(elem.Values)
	if err != nil {
		return err
	}
	e.store.Add(idx, elem)
	e.noteMutation(idx)
	e.syncKeys()
	return nil
}

// StoreDirectBatch bulk-loads elements into the local store bypassing
// routing, through the store's sorted-merge path — seeding n elements
// costs O(n log n) instead of the O(n²) of n StoreDirect calls.
func (e *Engine) StoreDirectBatch(elems []Element) error {
	items := make([]chord.Item, 0, len(elems))
	for _, elem := range elems {
		idx, err := e.space.Index(elem.Values)
		if err != nil {
			return err
		}
		items = append(items, chord.Item{Key: chord.ID(idx), Value: []Element{elem}})
	}
	e.store.AddBatch(items)
	e.noteBulkMutation()
	e.syncKeys()
	return nil
}

// Query resolves a flexible query and calls cb exactly once with the
// complete result set (all matching elements in the system). It returns
// the query's id for metrics correlation. Query is QueryCtx without
// cancellation; failures that QueryCtx returns synchronously (bad query,
// admission shed) are delivered through cb instead, preserving the
// call-back-exactly-once contract.
//
//lint:entry delivery
func (e *Engine) Query(q keyspace.Query, cb func(Result)) QueryID {
	qid, err := e.QueryCtx(context.Background(), q, cb)
	if err != nil {
		cb(Result{QID: qid, Query: q, Err: err})
	}
	return qid
}

// QueryCtx resolves a flexible query under a context. On success cb fires
// exactly once — from the node's delivery goroutine — with the complete
// result set. A non-nil error means the query was not started and cb will
// never fire: the query string was invalid, the context was already done,
// or the engine shed the query under admission control (errors.Is
// ErrOverloaded; the *OverloadError carries a retry-after hint).
//
// Context cancellation and deadline ride the QueryDeadline machinery: when
// ctx ends first, outstanding child subtrees are cancelled exactly as on a
// deadline expiry and cb fires once with every match gathered so far and
// Err = ctx's error. A ctx deadline therefore bounds the query even when
// it is shorter than the engine's configured QueryDeadline.
//
// Like all engine entry points, call it from App upcalls or through
// node.Invoke.
//
//lint:entry delivery
func (e *Engine) QueryCtx(ctx context.Context, q keyspace.Query, cb func(Result)) (QueryID, error) {
	qid := nextQID()
	e.met.queries.Inc()
	if err := ctx.Err(); err != nil {
		return qid, err
	}
	st := &subtree{qid: qid, q: q, cb: cb, kind: "root"}
	return qid, e.startRoot(ctx, q, st)
}

// startRoot starts a prepared root subtree — callback-delivering
// (QueryCtx) or streaming (QueryStream) — as the root of the distributed
// refinement. A non-nil error means nothing was started and the subtree's
// sink will never fire.
func (e *Engine) startRoot(ctx context.Context, q keyspace.Query, st *subtree) error {
	qid := st.qid
	region, err := e.space.Region(q)
	if err != nil {
		return err
	}
	if region.Empty() {
		st.dispatched = true
		e.sampleRoot(st)
		e.finishSubtree(st)
		return nil
	}

	// Exact queries identify one point: a plain DHT lookup (paper
	// Section 3.4.1).
	if pt, ok := region.IsPoint(); ok {
		idx := e.space.Curve().Encode(pt)
		if st.hasPos && idx < st.afterPos {
			// Resuming past the point: everything was already delivered.
			st.dispatched = true
			e.sampleRoot(st)
			e.finishSubtree(st)
			return nil
		}
		st.dispatched = true
		e.sampleRoot(st)
		e.roots[qid] = st
		e.startDeadline(st)
		e.watchCtx(ctx, st)
		tok := e.addChild(st, idx, nil)
		e.node.Route(chord.ID(idx), LookupMsg{
			QID: qid, Query: q, Key: idx, ReplyTo: e.node.Self().Addr, Token: tok,
			Trace: st.childRef(),
		}, uint64(qid))
		return nil
	}

	// Compute the first levels of the refinement tree locally, then act as
	// the root of the distributed refinement: process locally rooted
	// clusters here and dispatch the rest. The processing itself runs on
	// the scheduler (inline in serial mode); everything that mutates the
	// subtree happens back on the delivery goroutine.
	e.coarse = sfc.CoarseClustersInto(e.coarse[:0], e.space.Curve(), region, e.opts.InitialClusters, &e.scratch)
	coarse := e.coarse
	if st.hasPos {
		// Cursor resume: clusters whose whole span was already delivered are
		// skipped; the partially-delivered boundary cluster re-runs and the
		// match filter in rootDeliver drops its already-seen indices.
		kept := coarse[:0]
		for _, c := range coarse {
			if c.Span(e.space.Curve()).Hi >= st.afterPos {
				kept = append(kept, c)
			}
		}
		coarse = kept
		if len(coarse) == 0 {
			st.dispatched = true
			e.sampleRoot(st)
			e.finishSubtree(st)
			return nil
		}
	}
	cls := coarse
	if e.sched != nil {
		// The coarse buffer is reused by the next query; a pooled job needs
		// its own copy.
		cls = append([]sfc.Refined(nil), coarse...)
	}
	st.clustersIn = len(cls)
	e.sampleRoot(st)
	admitted := e.submitClusters(qid, cls, q, region, func(matches []Element, remote []sfc.Refined, local int) {
		if st.finished {
			return // cancelled while the refinement job was in flight
		}
		e.noteProcessed(qid, local, len(matches), e.opts.Sink != nil && local > 0)
		st.localDone = local
		st.localMatches = len(matches)
		if st.stream == nil {
			st.matches = matches
		} else {
			// The local matches are held until the dispatch round has
			// registered every child: a cancellation arriving before or
			// during their delivery can then name both the buffered matches
			// and the outstanding subtrees in the resume cursor, instead of
			// reporting a falsely exhausted stream before any child existed.
			e.bufferMatches(st, e.filterResumed(st, matches))
		}
		if st.stream != nil && st.limit > 0 && len(remote) > streamDispatchWindow {
			// Windowed dispatch: only the lowest clusters go out now; the
			// rest wait in pending and are never sent if the limit is
			// satisfied first. The pending tail is copied out of the
			// scheduler's reusable frontier buffer.
			curve := e.space.Curve()
			sort.Slice(remote, func(i, j int) bool {
				return remote[i].Span(curve).Lo < remote[j].Span(curve).Lo
			})
			st.pending = append([]sfc.Refined(nil), remote[streamDispatchWindow:]...)
			remote = remote[:streamDispatchWindow]
		}
		e.dispatchRemote(remote, q, qid, st, true, func() {
			st.dispatched = true
			if st.stream != nil && !st.finished {
				if st.limit > 0 {
					e.advanceOrdered(st)
				} else {
					e.drainBuffered(st)
				}
			}
			e.checkSubtree(st)
		})
	})
	if !admitted {
		e.met.shedRoot.Inc()
		return &OverloadError{RetryAfter: e.retryAfterHint()}
	}
	if st.finished {
		// Serial refinement completed inline (all clusters local, or a
		// streaming root satisfied its limit from the local scan): the
		// sink already fired; registering the root would leak it.
		return nil
	}
	e.roots[qid] = st
	e.startDeadline(st)
	e.watchCtx(ctx, st)
	return nil
}

// bufferedMatch is one match held back by a limited (ordered) stream until
// every lower curve span has resolved.
type bufferedMatch struct {
	el  Element
	idx uint64
}

// rootDeliver feeds one batch of arriving matches into a streaming root.
// The cursor restriction drops already-delivered coordinates first. An
// unlimited stream pushes the remainder straight out (completion order);
// a limited stream buffers it and advances the ordered frontier — which
// must happen even for an empty batch, because the arrival that carried it
// may have completed a child and unblocked buffered lower positions.
func (e *Engine) rootDeliver(st *subtree, batch []Element) {
	batch = e.filterResumed(st, batch)
	if st.limit > 0 {
		e.bufferMatches(st, batch)
		e.advanceOrdered(st)
		return
	}
	if len(batch) == 0 {
		return
	}
	st.delivered += len(batch)
	st.stream.pushBatch(st.qid, batch)
	e.met.streamBatches.Inc()
}

// bufferMatches appends already-filtered matches to the root's buffer with
// their curve coordinates.
func (e *Engine) bufferMatches(st *subtree, batch []Element) {
	for _, m := range batch {
		idx, err := e.space.Index(m.Values)
		if err != nil {
			idx = 0 // unindexable matches (none in practice) deliver first
		}
		st.buf = append(st.buf, bufferedMatch{el: m, idx: idx})
	}
}

// drainBuffered pushes everything an unlimited stream buffered before its
// dispatch round completed (the root's own local matches) as one batch.
func (e *Engine) drainBuffered(st *subtree) {
	if len(st.buf) == 0 {
		return
	}
	batch := make([]Element, len(st.buf))
	for i, b := range st.buf {
		batch[i] = b.el
	}
	st.buf = nil
	st.delivered += len(batch)
	st.stream.pushBatch(st.qid, batch)
	e.met.streamBatches.Inc()
}

// filterResumed drops the matches a resumed stream's earlier pages already
// delivered: everything below the cursor position, and — at the boundary
// position itself — the first afterSkip elements in batch order. Batch
// order is the owner's store order (one curve index is scanned by exactly
// one node, contiguously), which is what the cursor's skip count indexes.
func (e *Engine) filterResumed(st *subtree, batch []Element) []Element {
	if !st.hasPos || len(batch) == 0 {
		return batch
	}
	kept := batch[:0:0]
	rank := 0
	for _, m := range batch {
		idx, err := e.space.Index(m.Values)
		if err != nil {
			kept = append(kept, m)
			continue
		}
		if idx < st.afterPos {
			continue
		}
		if idx == st.afterPos {
			rank++
			if rank <= st.afterSkip {
				continue
			}
		}
		kept = append(kept, m)
	}
	return kept
}

// frontierOf returns the lowest curve position of st's outstanding work —
// dispatched children still in flight and pending clusters not yet
// dispatched. Buffered matches below it can no longer be preceded by
// anything unresolved.
func (e *Engine) frontierOf(st *subtree) (uint64, bool) {
	var lo uint64
	found := false
	for _, c := range e.children {
		if c.st != st {
			continue
		}
		if !found || c.key < lo {
			lo, found = c.key, true
		}
	}
	if len(st.pending) > 0 {
		if p := st.pending[0].Span(e.space.Curve()).Lo; !found || p < lo {
			lo, found = p, true
		}
	}
	return lo, found
}

// skipFor computes the cursor skip count for a cut at curve position idx:
// the elements at idx this stream delivered (tracked by the run counter),
// plus the carry from the resume cursor when the page never got past its
// own boundary position.
func (st *subtree) skipFor(idx uint64) int {
	s := 0
	if st.runSet && st.runIdx == idx {
		s += st.runCount
	}
	if st.hasPos && idx == st.afterPos {
		s += st.afterSkip
	}
	return s
}

// advanceOrdered delivers the deliverable prefix of a limited stream's
// buffer: everything below the frontier of outstanding children, up to the
// limit. Runs after every arrival and after the dispatch round completes
// (delivery before then could precede a child not yet registered).
func (e *Engine) advanceOrdered(st *subtree) {
	if st.finished || !st.dispatched {
		return
	}
	frontier, bounded := e.frontierOf(st)
	sort.SliceStable(st.buf, func(i, j int) bool { return st.buf[i].idx < st.buf[j].idx })
	n := 0
	for n < len(st.buf) && (!bounded || st.buf[n].idx < frontier) {
		n++
	}
	if st.delivered+n > st.limit {
		n = st.limit - st.delivered
	}
	if n > 0 {
		batch := make([]Element, n)
		for i := range batch {
			batch[i] = st.buf[i].el
		}
		last := st.buf[n-1].idx
		cnt := 0
		for i := n - 1; i >= 0 && st.buf[i].idx == last; i-- {
			cnt++
		}
		if st.runSet && st.runIdx == last {
			st.runCount += cnt
		} else {
			st.runIdx, st.runCount, st.runSet = last, cnt, true
		}
		st.buf = st.buf[n:]
		st.delivered += n
		st.stream.pushBatch(st.qid, batch)
		e.met.streamBatches.Inc()
		if st.finished {
			return // consumer cancelled reentrantly from the callback
		}
	}
	if st.delivered >= st.limit {
		if len(st.buf) > 0 {
			st.noteCutSkip(st.buf[0].idx, st.skipFor(st.buf[0].idx))
		}
		e.completeEarly(st)
		return
	}
	e.refillWindow(st)
}

// streamDispatchWindow bounds how many clusters a limited stream keeps in
// flight: small enough that a satisfied limit leaves most of the curve
// undispatched (top-k queries usually resolve within the lowest spans),
// large enough to overlap some network latency.
const streamDispatchWindow = 2

// refillWindow dispatches the next pending clusters of a limited stream
// once the in-flight window has drained below its bound and the limit is
// still unmet. Clusters never dispatched this way are the top-k message
// saving: a full-drain query would have sent them all.
func (e *Engine) refillWindow(st *subtree) {
	if st.finished || !st.dispatched || len(st.pending) == 0 {
		return
	}
	out := 0
	for _, c := range e.children {
		if c.st == st {
			out++
		}
	}
	if out >= streamDispatchWindow {
		return
	}
	// If the matches already buffered below the first pending cluster cover
	// the rest of the limit, they will deliver as the outstanding children
	// complete — dispatching more clusters would be pure waste. With no
	// children outstanding advanceOrdered has already delivered everything
	// below the pending frontier, so avail is zero and refill proceeds.
	if need := st.limit - st.delivered; need > 0 {
		lo := st.pending[0].Span(e.space.Curve()).Lo
		avail := 0
		for _, b := range st.buf {
			if b.idx < lo {
				avail++
			}
		}
		if avail >= need {
			return
		}
	}
	n := min(streamDispatchWindow-out, len(st.pending))
	next := st.pending[:n]
	st.pending = st.pending[n:]
	st.dispatched = false
	e.dispatchRemote(next, st.q, st.qid, st, true, func() {
		st.dispatched = true
		if !st.finished {
			e.advanceOrdered(st)
		}
		e.checkSubtree(st)
	})
}

// dropPending folds a limited stream's never-dispatched clusters into the
// resume cursor and forgets them (the lowest comes first — pending is
// curve-sorted).
func (e *Engine) dropPending(st *subtree) {
	if len(st.pending) == 0 {
		return
	}
	st.noteCut(st.pending[0].Span(e.space.Curve()).Lo)
	st.pending = nil
}

// completeEarly finishes a streaming root whose limit was satisfied:
// outstanding children are torn down with QueryCancelMsg (so the tail of
// refinement messages is never sent) and the stream completes cleanly —
// early termination is a successful top-k result, not a partial one.
func (e *Engine) completeEarly(st *subtree) {
	if st.finished {
		return
	}
	e.dropPending(st)
	e.teardownChildren(st)
	st.dispatched = true
	e.finishSubtree(st)
}

// teardownChildren cancels every outstanding child of st, sending each a
// downstream QueryCancelMsg, and folds the children's curve positions into
// st's resume-cursor cut point.
func (e *Engine) teardownChildren(st *subtree) {
	for tok, c := range e.children {
		if c.st != st {
			continue
		}
		delete(e.children, tok)
		if c.timer != nil {
			c.timer.Stop()
		}
		st.noteCut(c.key)
		e.sendCancel(st, c)
	}
}

// noteCut folds an undelivered curve position into the subtree's
// resume-cursor cut point (the minimum such position, skip 0: nothing at
// it was delivered this page).
func (st *subtree) noteCut(pos uint64) { st.noteCutSkip(pos, 0) }

// noteCutSkip folds an undelivered (position, skip) coordinate into the
// cut point, keeping the lexicographic minimum — the cursor must not point
// past any undelivered element, and over-covering only costs re-delivery.
func (st *subtree) noteCutSkip(pos uint64, skip int) {
	if !st.cutSet || pos < st.cutLo || (pos == st.cutLo && skip < st.cutSkip) {
		st.cutLo, st.cutSkip, st.cutSet = pos, skip, true
	}
}

// sendCancel routes a QueryCancelMsg to the current owner of a cancelled
// child's curve position.
func (e *Engine) sendCancel(st *subtree, c *childCall) {
	e.met.cancelsSent.Inc()
	e.node.Route(chord.ID(c.key), QueryCancelMsg{
		QID: st.qid, Token: c.token, ReplyTo: e.node.Self().Addr,
	}, uint64(st.qid))
}

// rootCursor derives a finished root's resume cursor: exhausted when every
// dispatched subtree delivered, else the lowest coordinate that was
// cancelled or never dispatched. The cut is clamped to the cursor this
// page resumed from — a boundary cluster's span can start below the resume
// position, and a cursor that regressed would re-deliver whole pages and
// stall paginated browsing.
func (st *subtree) rootCursor() Cursor {
	if !st.cutSet {
		return encodeCursor(st.q, 0, 0, true)
	}
	pos, skip := st.cutLo, st.cutSkip
	if st.hasPos && (pos < st.afterPos || (pos == st.afterPos && skip < st.afterSkip)) {
		pos, skip = st.afterPos, st.afterSkip
	}
	return encodeCursor(st.q, pos, skip, false)
}

// submitClusters hands one batch of clusters to the scheduler (or runs it
// inline in serial mode); complete always executes on the delivery
// goroutine. It reports false when the admission cap rejected the job —
// the caller sheds instead of queueing.
func (e *Engine) submitClusters(qid QueryID, cls []sfc.Refined, q keyspace.Query, region sfc.Region, complete func(matches []Element, remote []sfc.Refined, local int)) bool {
	if e.sched == nil {
		matches, remote, local := e.processClusters(qid, cls, q, region)
		complete(matches, remote, local)
		return true
	}
	return e.sched.trySubmit(&refineJob{
		qid: qid, q: q, region: region, clusters: cls,
		arc:      e.arcView(),
		enqueued: e.opts.Telemetry.Now(),
		complete: complete,
	})
}

// retryAfterHint derives the admission-control backoff hint from the
// current scheduler depth: deeper queues push retries further out.
func (e *Engine) retryAfterHint() time.Duration {
	depth := 0
	if e.sched != nil {
		depth = e.sched.depth()
	}
	hint := time.Duration(depth) * 2 * time.Millisecond
	return min(max(hint, 5*time.Millisecond), 250*time.Millisecond)
}

// watchCtx wires a root subtree to its context: when ctx ends before the
// query completes, the query is cancelled on the delivery goroutine with
// ctx's error as the cause. No goroutine is spawned for contexts that can
// never be cancelled.
func (e *Engine) watchCtx(ctx context.Context, st *subtree) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	stop := make(chan struct{})
	st.ctxStop = stop
	go func() {
		select {
		case <-ctx.Done():
			_ = e.node.Invoke(func() { e.cancelQuery(st, ctx.Err()) }) // node detached: the query died with its node
		case <-stop:
		}
	}()
}

// sampleRoot turns tracing on for a root subtree when this node collects
// traces.
func (e *Engine) sampleRoot(st *subtree) {
	if e.opts.Traces == nil {
		return
	}
	st.spanID = e.newSpanID()
	st.ref = telemetry.TraceRef{Mode: telemetry.TraceOn}
	st.startNS = e.nowNS()
}

// noteProcessed feeds the local processing counters and, when sink is set,
// the per-query metrics sink.
func (e *Engine) noteProcessed(qid QueryID, clusters, matches int, sink bool) {
	e.met.clustersDone.Add(uint64(clusters))
	e.met.matches.Add(uint64(matches))
	if sink {
		e.opts.Sink.Processed(qid, e.node.Self().ID, clusters, matches)
	}
}

// addChild registers one dispatched child of st under a fresh token and
// arms its recovery deadline. clusters is the re-dispatch payload (nil for
// an exact lookup of key).
func (e *Engine) addChild(st *subtree, key uint64, clusters []ClusterRef) uint64 {
	e.nextToken++
	c := &childCall{st: st, token: e.nextToken, key: key, clusters: clusters}
	e.children[c.token] = c
	st.sent++
	e.met.subtreesSent.Inc()
	e.armChild(c)
	return c.token
}

// dropChild unregisters a child whose dispatch failed before it left the
// node (it will be delivered some other way and re-registered).
func (e *Engine) dropChild(tok uint64) {
	c, ok := e.children[tok]
	if !ok {
		return
	}
	delete(e.children, tok)
	if c.timer != nil {
		c.timer.Stop()
	}
	c.st.sent--
}

// armChild starts (or restarts) a child's recovery deadline.
func (e *Engine) armChild(c *childCall) {
	if e.opts.SubtreeTimeout <= 0 {
		return
	}
	tok := c.token
	c.timer = e.opts.Clock.AfterFunc(e.opts.SubtreeTimeout, func() {
		_ = e.node.Invoke(func() { e.childExpired(tok) }) // node detached: no children left to expire
	})
}

// childExpired handles a child subtree that missed its deadline: it is
// re-dispatched through ring routing (which resolves to the current owner,
// i.e. the next live successor after a crash), or abandoned once its
// retries are exhausted, degrading the query to an explicit partial
// result.
func (e *Engine) childExpired(tok uint64) {
	c, ok := e.children[tok]
	if !ok || c.st.finished {
		return
	}
	if c.attempts >= e.opts.SubtreeRetries {
		delete(e.children, tok)
		e.met.abandoned.Inc()
		if rs, ok := e.opts.Sink.(RecoverySink); ok {
			rs.Abandoned(c.st.qid)
		}
		if c.st.spanID != 0 {
			c.st.spans = append(c.st.spans, e.lostSpan(c.st, c))
		}
		c.st.incomplete = true
		c.st.done++
		e.checkSubtree(c.st)
		return
	}
	c.attempts++
	c.acked = false
	e.met.redispatches.Inc()
	if rs, ok := e.opts.Sink.(RecoverySink); ok {
		rs.Redispatched(c.st.qid)
	}
	st := c.st
	st.retries++
	if c.clusters == nil {
		e.node.Route(chord.ID(c.key), LookupMsg{
			QID: st.qid, Query: st.q, Key: c.key, ReplyTo: e.node.Self().Addr, Token: c.token,
			Trace: st.childRef(),
		}, uint64(st.qid))
	} else {
		e.node.Route(chord.ID(c.key), ClusterQueryMsg{
			QID: st.qid, Query: st.q, Clusters: c.clusters,
			ReplyTo: e.node.Self().Addr, Token: c.token, Ack: true,
			Trace: st.childRef(),
		}, uint64(st.qid))
	}
	e.armChild(c)
}

// handleAck marks a child as received by its target and grants it a fresh
// deadline window: the subtree is in progress, not lost.
func (e *Engine) handleAck(m QueryAckMsg) {
	c, ok := e.children[m.Token]
	if !ok {
		return
	}
	c.acked = true
	e.met.acks.Inc()
	if c.timer != nil {
		c.timer.Reset(e.opts.SubtreeTimeout)
	}
}

// startDeadline arms the overall query deadline on a root subtree.
func (e *Engine) startDeadline(st *subtree) {
	if e.opts.QueryDeadline <= 0 || st.parent != "" {
		return
	}
	st.deadline = e.opts.Clock.AfterFunc(e.opts.QueryDeadline, func() {
		_ = e.node.Invoke(func() { e.queryExpired(st) }) // node detached: the query died with its node
	})
}

// queryExpired force-completes a root subtree whose overall deadline
// passed: outstanding children are cancelled and the callback fires with
// whatever was gathered, marked partial.
func (e *Engine) queryExpired(st *subtree) {
	e.cancelQuery(st, nil)
}

// cancelQuery force-completes a root subtree before its children reported:
// outstanding children are cancelled and the callback fires with whatever
// was gathered. cause is the context's error for ctx-driven cancellation,
// or nil for a deadline expiry (the result then carries ErrPartialResult).
func (e *Engine) cancelQuery(st *subtree, cause error) {
	if st.finished {
		return
	}
	st.cancelErr = cause
	if st.stream != nil {
		// Streaming queries tear outstanding subtrees down actively: the
		// consumer walked away, so the refinement tail is cancelled instead
		// of left to finish into a void. Matches still buffered by an
		// ordered (limited) stream were found but never delivered — their
		// lowest coordinate feeds the resume cursor.
		if len(st.buf) > 0 {
			lo := st.buf[0].idx
			for _, b := range st.buf[1:] {
				if b.idx < lo {
					lo = b.idx
				}
			}
			st.noteCutSkip(lo, st.skipFor(lo))
		}
		e.dropPending(st)
		e.teardownChildren(st)
		st.incomplete = true
		st.dispatched = true
		e.finishSubtree(st)
		return
	}
	for tok, c := range e.children {
		if c.st == st {
			delete(e.children, tok)
			if c.timer != nil {
				c.timer.Stop()
			}
			// Cancelled children never reported: mark them lost in the
			// trace so the dump shows where the deadline cut the tree.
			if st.spanID != 0 {
				st.spans = append(st.spans, e.lostSpan(st, c))
			}
		}
	}
	st.incomplete = true
	e.finishSubtree(st)
}

// checkSubtree completes a subtree whose children have all reported. A
// limited stream with pending (windowed) clusters is not complete — the
// refill path dispatches them when the window drains.
func (e *Engine) checkSubtree(st *subtree) {
	if st.finished || !st.dispatched || st.done < st.sent {
		return
	}
	if len(st.pending) > 0 {
		// The in-flight window drained with clusters still pending: refill
		// (a no-op when buffered matches already cover the limit).
		e.refillWindow(st)
		return
	}
	e.finishSubtree(st)
}

// finishSubtree delivers a subtree's aggregate exactly once: to the parent
// node, or — at the root — to the query callback, surfacing lost subtrees
// as ErrPartialResult rather than a silently short match set.
func (e *Engine) finishSubtree(st *subtree) {
	if st.finished {
		return
	}
	st.finished = true
	if st.deadline != nil {
		st.deadline.Stop()
	}
	if st.ctxStop != nil {
		close(st.ctxStop) // release the context watcher
		st.ctxStop = nil
	}
	if st.spanID != 0 {
		st.spans = append(st.spans, e.span(st))
	}
	if st.parent == "" {
		delete(e.roots, st.qid)
		var err error
		if st.incomplete {
			// A context cancellation is reported as its own cause; a plain
			// deadline or lost subtree degrades to ErrPartialResult. Both
			// count as partials — the match set is short either way.
			err = ErrPartialResult
			if st.cancelErr != nil {
				err = st.cancelErr
			}
			e.met.partials.Inc()
			if rs, ok := e.opts.Sink.(RecoverySink); ok {
				rs.Partial(st.qid)
			}
		}
		if st.spanID != 0 && e.opts.Traces != nil {
			e.opts.Traces.Add(telemetry.Trace{QID: st.qid, Partial: st.incomplete, Spans: st.spans})
		}
		if st.stream != nil {
			st.stream.finishStream(st.qid, err, st.rootCursor())
			return
		}
		if st.cb != nil {
			st.cb(Result{QID: st.qid, Query: st.q, Matches: st.matches, Err: err})
		}
		return
	}
	delete(e.inbound, inboundKey{from: st.parent, token: st.parentToken})
	if e.rcache != nil && st.cacheKey != "" {
		if st.sent == 0 && !st.incomplete {
			// A leaf subtree's matches depend only on the local store inside
			// its spans: remember them for the next popular repeat. This was
			// a cacheable lookup that missed.
			e.met.cacheMisses.Inc()
			e.rcache.put(st.cacheKey, st.cacheSpans, st.matches)
		} else {
			// Subtrees with remote children aggregate other nodes' data,
			// which local dirty-key tracking cannot invalidate — never
			// cacheable, so they count as bypasses, not misses.
			e.met.cacheBypass.Inc()
		}
	}
	tail := st.matches
	if st.forwarded > 0 && st.forwarded <= len(tail) {
		// Streaming subtrees already shipped this prefix as partials.
		tail = tail[st.forwarded:]
	}
	e.send(st.parent, SubResultMsg{
		QID: st.qid, Token: st.parentToken, Matches: tail, Incomplete: st.incomplete,
		Spans: st.spans,
	})
}

// debugScan, when set (tests only), observes every cluster scan.
var debugScan func(node chord.ID, qid QueryID, span sfc.Interval)

// debugDispatch, when set (tests only), observes every flushed dispatch round.
var debugDispatch func(node chord.ID, dests []transport.Addr, byDest map[transport.Addr][]pendingDispatch)

// processClusters resolves the locally owned parts of the given clusters
// and collects the parts that must be forwarded (pruned by the query
// region). It walks each cluster's refinement subtree: a subtree whose
// span lies entirely inside the node's contiguous owned run is scanned
// (exactly once — subtree spans are disjoint); a subtree rooted outside
// the arc is forwarded; a subtree that starts owned but extends past the
// owned run is refined one level and reclassified.
//
// The "owned run" subtlety matters for the node whose arc wraps the top of
// the index space: a low cluster may cover both its low segment and,
// higher up, its wrap segment. Scanning the full span would count the wrap
// segment now AND again when the refinement routes those subspans back —
// the run boundary keeps every key in exactly one scanned subtree.
//
// This is the serial (delivery-goroutine) entry: the actual walk lives in
// refineClusters, shared with the scheduler's workers, against a snapshot
// of the node's current arc. The per-engine scratch and frontier buffers
// keep the serial path allocation-free in steady state.
func (e *Engine) processClusters(qid QueryID, cls []sfc.Refined, q keyspace.Query, region sfc.Region) (matches []Element, remote []sfc.Refined, local int) {
	matches, remote, local, e.frontier = refineClusters(
		e.store, e.space, e.arcView(), qid, cls, q, region, &e.scratch, e.frontier)
	return matches, remote, local
}

// pendingDispatch is one resolved send of a dispatch round, buffered until
// the round flushes: the message plus its clusters (the blind-route
// fallback payload should the destination be dead at flush time).
type pendingDispatch struct {
	msg      ClusterQueryMsg
	clusters []sfc.Refined
}

// dispatchRemote forwards clusters rooted at other nodes, registering each
// dispatched message as a tracked child of st, and calls done once every
// child message has been sent. With aggregation enabled it probes the
// owner of the first (lowest) cluster, then ships every sibling owned by
// that node's arc as one message (the paper's second optimization);
// without it, each cluster is routed independently.
//
// Resolved sends are buffered per destination for the length of the round
// and flushed at its end: a destination that resolved more than once (the
// wrap-arc owner, whose low and wrap segments are separate runs of the
// sorted cluster list) receives all its messages as one BatchMsg instead of
// several transmissions. Single-message destinations get a plain
// ClusterQueryMsg, so the batching is invisible to peers that predate it.
//
// root marks dispatches from the query initiator: only there may the
// probe cache short-circuit the handshake. Receivers always probe, so a
// stale cache entry costs one extra forward and can never loop.
func (e *Engine) dispatchRemote(remote []sfc.Refined, q keyspace.Query, qid QueryID, st *subtree, root bool, done func()) {
	if len(remote) == 0 {
		done()
		return
	}
	curve := e.space.Curve()
	self := e.node.Self().Addr
	ack := e.opts.SubtreeTimeout > 0
	stream := st.stream != nil || st.streamUp
	// routeOne blind-routes a single cluster as its own tracked child. A
	// subtree that finished while dispatch was in flight (streaming root hit
	// its limit, remote subtree cancelled) dispatches nothing more — the
	// undelivered curve position feeds the resume cursor instead.
	routeOne := func(c sfc.Refined) {
		lo := c.Span(curve).Lo
		if st.finished {
			st.noteCut(lo)
			return
		}
		refs := toRefs([]sfc.Refined{c})
		tok := e.addChild(st, lo, refs)
		e.node.Route(chord.ID(lo), ClusterQueryMsg{
			QID: qid, Query: q, Clusters: refs, ReplyTo: self, Token: tok, Ack: ack, Stream: stream,
			Trace: st.childRef(),
		}, uint64(qid))
	}
	if e.opts.DisableAggregation {
		for _, c := range remote {
			routeOne(c)
		}
		done()
		return
	}

	// The round's send buffer, keyed by destination in first-touch order
	// (deterministic flush order for the simulator).
	var dests []transport.Addr
	byDest := make(map[transport.Addr][]pendingDispatch)
	enqueue := func(dest transport.Addr, msg ClusterQueryMsg, cls []sfc.Refined) {
		if _, ok := byDest[dest]; !ok {
			dests = append(dests, dest)
		}
		byDest[dest] = append(byDest[dest], pendingDispatch{msg: msg, clusters: cls})
	}
	flush := func() {
		if st.finished {
			// The subtree completed while probes were in flight (limit hit,
			// cancelled): the buffered children were already torn down —
			// drop the round instead of dispatching work nobody will read.
			for _, dest := range dests {
				for _, p := range byDest[dest] {
					e.dropChild(p.msg.Token)
					for _, c := range p.clusters {
						st.noteCut(c.Span(curve).Lo)
					}
				}
			}
			done()
			return
		}
		if debugDispatch != nil {
			debugDispatch(e.node.Self().ID, dests, byDest)
		}
		for _, dest := range dests {
			entries := byDest[dest]
			var ok bool
			if len(entries) == 1 {
				ok = e.send(dest, entries[0].msg)
			} else {
				b := BatchMsg{Queries: make([]ClusterQueryMsg, len(entries))}
				for i, p := range entries {
					b.Queries[i] = p.msg
				}
				if ok = e.send(dest, b); ok {
					e.met.batchesSent.Inc()
					e.met.batchedMsgs.Add(uint64(len(entries)))
				}
			}
			if !ok {
				// Destination died between probe and flush: untrack each
				// buffered child and blind-route its clusters through the
				// ring, which resolves to the current owner.
				e.cacheDrop(dest)
				for _, p := range entries {
					e.dropChild(p.msg.Token)
					for _, c := range p.clusters {
						routeOne(c)
					}
				}
			}
		}
		done()
	}

	sort.Slice(remote, func(i, j int) bool { return remote[i].Span(curve).Lo < remote[j].Span(curve).Lo })
	var step func(rem []sfc.Refined)
	step = func(rem []sfc.Refined) {
		if len(rem) == 0 || st.finished {
			// Finished mid-probe (limit satisfied by an earlier batch): the
			// sorted tail starts at rem[0], the lowest undispatched position.
			if len(rem) > 0 {
				st.noteCut(rem[0].Span(curve).Lo)
			}
			flush()
			return
		}
		head := chord.ID(rem[0].Span(curve).Lo)
		if root && e.opts.ProbeCacheSize > 0 {
			arc, ok := e.cacheLookup(head)
			if ok {
				e.met.probeHits.Inc()
				n := 1
				sp := e.node.Space()
				for n < len(rem) && sp.Between(chord.ID(rem[n].Span(curve).Lo), arc.pred.ID, arc.owner.ID) {
					n++
				}
				refs := toRefs(rem[:n])
				tok := e.addChild(st, uint64(head), refs)
				enqueue(arc.owner.Addr, ClusterQueryMsg{QID: qid, Query: q, Clusters: refs, ReplyTo: self, Token: tok, Ack: ack, Stream: stream, Trace: st.childRef()}, rem[:n])
				step(rem[n:])
				return
			}
			e.met.probeMisses.Inc()
		}
		e.node.FindSuccessor(head, uint64(qid), func(m chord.FoundMsg, err error) {
			if st.finished {
				// Finished while this probe was in flight.
				st.noteCut(rem[0].Span(curve).Lo)
				flush()
				return
			}
			if err != nil {
				// Ring unstable: fall back to blind routing for the head
				// cluster and keep going.
				routeOne(rem[0])
				step(rem[1:])
				return
			}
			e.cacheInsert(m.Pred, m.Owner)
			// Batch the run of siblings falling inside the owner's arc
			// (pred, owner]. The list is sorted, so the run is a prefix.
			n := 1
			if !m.Pred.IsZero() {
				sp := e.node.Space()
				for n < len(rem) && sp.Between(chord.ID(rem[n].Span(curve).Lo), m.Pred.ID, m.Owner.ID) {
					n++
				}
			}
			refs := toRefs(rem[:n])
			tok := e.addChild(st, uint64(chord.ID(rem[0].Span(curve).Lo)), refs)
			enqueue(m.Owner.Addr, ClusterQueryMsg{QID: qid, Query: q, Clusters: refs, ReplyTo: self, Token: tok, Ack: ack, Stream: stream, Trace: st.childRef()}, rem[:n])
			step(rem[n:])
		})
	}
	step(remote)
}

func (e *Engine) send(to transport.Addr, msg any) bool {
	return e.node.SendApp(to, msg)
}

// syncKeys refreshes the keys-held gauge after a store mutation. The Store
// itself is goroutine-confined, so the gauge (atomic) is the only store
// statistic a scrape goroutine may read.
func (e *Engine) syncKeys() {
	if e.met.keysHeld == nil {
		return // not attached yet (bulk preload before Attach)
	}
	e.met.keysHeld.Set(int64(e.store.Keys()))
}

// Deliver implements chord.App: application payloads routed to this node.
//
//lint:entry delivery
func (e *Engine) Deliver(from transport.Addr, key chord.ID, payload any) {
	switch m := payload.(type) {
	case PublishMsg:
		idx, err := e.space.Index(m.Elem.Values)
		if err != nil {
			return
		}
		e.store.Add(idx, m.Elem)
		e.noteMutation(idx)
		e.syncKeys()
		e.replicate([]chord.Item{{Key: chord.ID(idx), Value: []Element{m.Elem}}})
	case UnpublishMsg:
		e.handleUnpublish(m)
	case LookupMsg:
		e.handleLookup(m)
	case ClusterQueryMsg:
		e.handleClusterQuery(m)
	case BatchMsg:
		// Unpack in order: each entry is handled exactly as if it had
		// arrived as its own ClusterQueryMsg.
		for _, cq := range m.Queries {
			e.handleClusterQuery(cq)
		}
	case QueryAckMsg:
		e.handleAck(m)
	case QueryShedMsg:
		e.handleShed(m)
	case SubResultMsg:
		e.handleSubResult(m)
	case PartialResultMsg:
		e.handlePartialResult(m)
	case QueryCancelMsg:
		e.handleQueryCancel(m)
	case ReplicaMsg:
		e.handleReplica(m)
	case ClientPublishMsg:
		_ = e.Publish(m.Elem)
	case ClientUnpublishMsg:
		_ = e.Unpublish(m.Elem)
	case ClientQueryMsg:
		e.handleClientQuery(m)
	}
}

// handleUnpublish removes the element locally (from the primary store at
// the owner, from the replica store at replica holders) and, at the owner,
// fans the removal out to the successors that may hold replicas.
func (e *Engine) handleUnpublish(m UnpublishMsg) {
	idx, err := e.space.Index(m.Elem.Values)
	if err != nil {
		return
	}
	if m.Replica {
		e.replicas.Remove(idx, m.Elem)
		// The arc may have shifted since replication: clear a promoted copy
		// too so owner changes cannot resurrect the element.
		e.store.Remove(idx, m.Elem)
		e.noteMutation(idx)
		e.syncKeys()
		return
	}
	e.store.Remove(idx, m.Elem)
	e.noteMutation(idx)
	e.syncKeys()
	if e.opts.Replicas > 0 {
		fanned := 0
		for _, s := range e.node.SuccList() {
			if s.Addr == e.node.Self().Addr {
				continue
			}
			if e.send(s.Addr, UnpublishMsg{Elem: m.Elem, Replica: true}) {
				fanned++
				if fanned == e.opts.Replicas {
					break
				}
			}
		}
	}
}

// handleClientQuery serves a non-member client: parse, run the query as
// root — a Limit(k) stream when the client asked for top-k, so the tail of
// refinement is never dispatched — and ship the assembled result back.
func (e *Engine) handleClientQuery(m ClientQueryMsg) {
	q, err := keyspace.Parse(m.Query)
	if err != nil {
		e.send(m.ReplyTo, ClientResultMsg{Token: m.Token, Err: err.Error()})
		return
	}
	reply := func(qid QueryID, matches []Element, qerr error) {
		out := ClientResultMsg{Token: m.Token, QID: qid, Matches: matches}
		if qerr != nil {
			out.Err = qerr.Error()
		}
		e.send(m.ReplyTo, out)
	}
	if m.Limit > 0 {
		var got []Element
		_, err := e.QueryStreamFunc(context.Background(), q, func(ev StreamEvent) {
			if ev.Done {
				reply(ev.QID, got, ev.Err)
				return
			}
			got = append(got, ev.Matches...)
		}, Limit(m.Limit))
		if err != nil {
			reply(0, nil, err)
		}
		return
	}
	if _, err := e.QueryCtx(context.Background(), q, func(r Result) {
		reply(r.QID, r.Matches, r.Err)
	}); err != nil {
		reply(0, nil, err)
	}
}

func (e *Engine) handleLookup(m LookupMsg) {
	var matches []Element
	for _, elem := range e.store.At(m.Key) {
		if e.space.Matches(m.Query, elem.Values) {
			matches = append(matches, elem)
		}
	}
	e.noteProcessed(m.QID, 1, len(matches), e.opts.Sink != nil)
	var spans []telemetry.Span
	if ref := m.Trace.OrRoot(); ref.Sampled() {
		now := e.nowNS()
		spans = []telemetry.Span{{
			QID: m.QID, ID: e.newSpanID(), Parent: ref.Parent, Depth: ref.Depth,
			Node: uint64(e.node.Self().ID), Addr: string(e.node.Self().Addr),
			Kind: "lookup", Prefix: m.Key, Clusters: 1, Local: 1,
			Matches: len(matches), StartNS: now, EndNS: now,
		}}
	}
	e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token, Matches: matches, Spans: spans})
}

func (e *Engine) handleClusterQuery(m ClusterQueryMsg) {
	ref := m.Trace.OrRoot()
	region, err := e.space.Region(m.Query)
	if err != nil {
		e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token})
		return
	}
	var cacheKey string
	if e.rcache != nil {
		cacheKey = resultCacheKey(m.Query, m.Clusters)
		if matches, ok := e.rcache.get(cacheKey); ok {
			// Popular-cluster hit: this exact batch previously resolved as a
			// leaf against a store that has not mutated under it since. Skip
			// refinement entirely and answer now — the result supersedes any
			// requested ack.
			e.met.cacheHits.Inc()
			e.send(m.ReplyTo, SubResultMsg{QID: m.QID, Token: m.Token, Matches: matches})
			return
		}
		// Not counted as a miss yet: whether this lookup was cacheable at
		// all is only known once the subtree completes (leaf vs inner) —
		// finishSubtree records it as a miss or a bypass.
	}
	st := &subtree{
		qid: m.QID, q: m.Query, parent: m.ReplyTo, parentToken: m.Token,
		kind: "cluster", clustersIn: len(m.Clusters),
		streamUp: m.Stream, cacheKey: cacheKey,
	}
	if cacheKey != "" {
		curve := e.space.Curve()
		st.cacheSpans = make([]sfc.Interval, len(m.Clusters))
		for i, c := range m.Clusters {
			st.cacheSpans[i] = sfc.Cluster{Prefix: c.Prefix, Level: c.Level}.Span(curve)
		}
	}
	if len(m.Clusters) > 0 {
		st.prefix = m.Clusters[0].Prefix
		st.level = m.Clusters[0].Level
	}
	if ref.Sampled() {
		st.spanID = e.newSpanID()
		st.ref = ref
		st.startNS = e.nowNS()
	}
	e.inbound[inboundKey{from: m.ReplyTo, token: m.Token}] = st
	admitted := e.submitClusters(m.QID, fromRefs(m.Clusters), m.Query, region, func(matches []Element, remote []sfc.Refined, local int) {
		if st.finished {
			return // cancelled while the refinement job was in flight
		}
		e.noteProcessed(m.QID, local, len(matches), e.opts.Sink != nil)
		st.matches = matches
		st.localDone = local
		st.localMatches = len(matches)
		if len(remote) == 0 {
			// Leaf of the query tree: finish immediately (records the span
			// and ships it with the result).
			st.dispatched = true
			e.finishSubtree(st)
			return
		}
		if st.streamUp && len(matches) > 0 && len(remote) > 0 {
			// Stream the local matches up right away: the initiator can act
			// on them (fill a page, satisfy a limit) while this subtree's
			// children are still refining. A leaf (no remote children)
			// completes immediately — its terminal SubResultMsg carries the
			// matches, so a separate partial would only double the traffic.
			e.forwardPartial(st, matches)
		}
		e.dispatchRemote(remote, m.Query, m.QID, st, false, func() {
			st.dispatched = true
			e.checkSubtree(st)
		})
	})
	if !admitted {
		// Shed before acking: confirming receipt of work we refuse would
		// suppress the dispatcher's recovery instead of engaging it.
		delete(e.inbound, inboundKey{from: m.ReplyTo, token: m.Token})
		e.met.shedRemote.Inc()
		e.send(m.ReplyTo, QueryShedMsg{QID: m.QID, Token: m.Token, RetryAfterMS: e.retryAfterHint().Milliseconds()})
		return
	}
	if m.Ack {
		e.send(m.ReplyTo, QueryAckMsg{QID: m.QID, Token: m.Token})
	}
}

// handleShed maps an admission-control refusal onto the recovery path: the
// refused child is re-dispatched after the shedder's backoff hint (counting
// against its retry budget), or — when no recovery machinery is armed —
// abandoned immediately so the query degrades to an explicit partial result
// instead of hanging on a reply that will never come.
func (e *Engine) handleShed(m QueryShedMsg) {
	c, ok := e.children[m.Token]
	if !ok || c.st.finished {
		return
	}
	e.met.shedChild.Inc()
	if c.timer == nil {
		// SubtreeTimeout == 0: the subtree cannot be retried.
		delete(e.children, m.Token)
		e.met.abandoned.Inc()
		if rs, ok := e.opts.Sink.(RecoverySink); ok {
			rs.Abandoned(c.st.qid)
		}
		if c.st.spanID != 0 {
			c.st.spans = append(c.st.spans, e.lostSpan(c.st, c))
		}
		c.st.incomplete = true
		c.st.done++
		e.checkSubtree(c.st)
		return
	}
	// Pull the child's recovery deadline forward to the hint: childExpired
	// then re-routes the subtree through the ring as for a lost child.
	c.acked = false
	retry := time.Duration(m.RetryAfterMS) * time.Millisecond
	retry = min(max(retry, 5*time.Millisecond), e.opts.SubtreeTimeout)
	c.timer.Reset(retry)
}

func (e *Engine) handleSubResult(m SubResultMsg) {
	c, ok := e.children[m.Token]
	if !ok {
		return // straggler: child already answered, abandoned, or expired
	}
	delete(e.children, m.Token)
	if c.timer != nil {
		c.timer.Stop()
	}
	st := c.st
	if st.finished {
		return
	}
	if st.spanID != 0 {
		st.spans = append(st.spans, m.Spans...)
	}
	if m.Incomplete {
		st.incomplete = true
	}
	st.done++
	if st.stream != nil {
		// Streaming root: the child's matches flow straight out (possibly
		// completing the query early); nothing accumulates in st.matches.
		e.rootDeliver(st, m.Matches)
		if st.finished {
			return
		}
	} else {
		last := st.dispatched && st.done >= st.sent
		if st.streamUp && len(m.Matches) > 0 && !last {
			// Relay the increment upward now — unless this report completes
			// the subtree, in which case the terminal SubResultMsg about to
			// go out carries it (matches stays a forwarded-prefix + tail).
			e.forwardPartial(st, m.Matches)
		}
		st.matches = append(st.matches, m.Matches...)
	}
	e.checkSubtree(st)
}

// forwardPartial ships one increment of a streaming subtree's matches to
// its parent and records it as forwarded, so the terminal SubResultMsg
// excludes it.
func (e *Engine) forwardPartial(st *subtree, batch []Element) {
	e.met.partialsSent.Inc()
	e.send(st.parent, PartialResultMsg{QID: st.qid, Token: st.parentToken, Matches: batch})
	st.forwarded += len(batch)
}

// handlePartialResult folds one streamed increment from a child subtree in:
// a streaming root delivers it to the consumer immediately, an inner
// streaming subtree relays it upward. Completion accounting is untouched —
// only the terminal SubResultMsg advances it.
func (e *Engine) handlePartialResult(m PartialResultMsg) {
	c, ok := e.children[m.Token]
	if !ok {
		return // straggler: child already answered, abandoned, or cancelled
	}
	st := c.st
	if st.finished || len(m.Matches) == 0 {
		return
	}
	if st.stream != nil {
		e.rootDeliver(st, m.Matches)
		return
	}
	if st.streamUp {
		e.forwardPartial(st, m.Matches)
	}
	st.matches = append(st.matches, m.Matches...)
}

// handleQueryCancel tears down the addressed remote subtree: it stops
// reporting (no SubResultMsg will be sent), any still-queued refinement
// completes into a no-op, and its own outstanding children are cancelled
// recursively. Unknown subtrees — already finished, never arrived, or torn
// down by an earlier cancel — are ignored; cancellation is best effort.
func (e *Engine) handleQueryCancel(m QueryCancelMsg) {
	key := inboundKey{from: m.ReplyTo, token: m.Token}
	st, ok := e.inbound[key]
	if !ok || st.finished {
		return
	}
	e.met.cancelsRecv.Inc()
	delete(e.inbound, key)
	st.finished = true
	e.teardownChildren(st)
}

// HandoverOut implements chord.App. When replication is enabled the
// departing items are retained locally as replicas (this node is now one
// of the new owner's successors).
//
//lint:entry delivery
func (e *Engine) HandoverOut(a, b chord.ID) []chord.Item {
	items := e.store.HandoverOut(a, b)
	if e.opts.Replicas > 0 {
		e.replicas.AddBatchUnique(items)
	}
	e.noteBulkMutation()
	e.syncKeys()
	return items
}

// HandoverIn implements chord.App.
//
//lint:entry delivery
func (e *Engine) HandoverIn(items []chord.Item) {
	e.store.HandoverIn(items)
	e.noteBulkMutation()
	e.syncKeys()
}

// Load implements chord.App: the number of stored keys.
func (e *Engine) Load() int { return e.store.Keys() }

var _ chord.App = (*Engine)(nil)
