package squid_test

import (
	"fmt"
	"math/rand"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/sim"
	"squid/internal/squid"
)

// buildReplicated creates a network with the given replication degree and
// a known corpus.
func buildReplicated(t *testing.T, nodes, elems, replicas int) *sim.Network {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: 42,
		Engine: squid.Options{Replicas: replicas},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]squid.Element, 0, elems)
	for i := 0; i < elems; i++ {
		batch = append(batch, squid.Element{
			Values: []string{testVocab[rng.Intn(len(testVocab))], testVocab[rng.Intn(len(testVocab))]},
			Data:   fmt.Sprintf("doc%d", i),
		})
	}
	if err := nw.Preload(batch); err != nil {
		t.Fatal(err)
	}
	if replicas > 0 {
		nw.PushReplicasAll()
	}
	return nw
}

// TestReplicationSurvivesFailure is the fault-tolerance extension the
// paper lists as future work: with successor replication, an abrupt node
// failure loses no data — queries stay complete after the ring heals.
func TestReplicationSurvivesFailure(t *testing.T) {
	const elems = 2000
	nw := buildReplicated(t, 30, elems, 2)
	keysBefore := nw.TotalKeys()
	q := keyspace.MustParse("(*, *)")
	if got := len(nw.BruteForceMatches(q)); got != elems {
		t.Fatalf("setup: %d elements stored", got)
	}

	// Kill the most loaded peer: without replication its data would vanish.
	loads := nw.LoadVector()
	victim := 0
	for i, l := range loads {
		if l > loads[victim] {
			victim = i
		}
	}
	if loads[victim] == 0 {
		t.Fatal("victim holds nothing")
	}
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not healed: %v", err)
	}

	if got := nw.TotalKeys(); got != keysBefore {
		t.Errorf("keys after failure = %d, want %d (promotion failed)", got, keysBefore)
	}
	res, _ := nw.Query(0, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Matches) != elems {
		t.Errorf("after failure the wildcard query found %d/%d elements", len(res.Matches), elems)
	}
	// No duplicates either: promotion must be exactly-once.
	seen := map[string]int{}
	for _, m := range res.Matches {
		seen[m.Data]++
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("element %s returned %d times", id, c)
		}
	}
}

// TestWithoutReplicationFailureLosesData is the control: the same failure
// without replication loses the victim's keys (motivating the extension).
func TestWithoutReplicationFailureLosesData(t *testing.T) {
	nw := buildReplicated(t, 30, 2000, 0)
	keysBefore := nw.TotalKeys()
	loads := nw.LoadVector()
	victim := 0
	for i, l := range loads {
		if l > loads[victim] {
			victim = i
		}
	}
	lost := loads[victim]
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	if got := nw.TotalKeys(); got != keysBefore-lost {
		t.Errorf("keys after failure = %d, want %d", got, keysBefore-lost)
	}
}

// TestReplicationSurvivesMultipleFailures kills several peers in sequence
// with stabilization (and re-replication) between failures.
func TestReplicationSurvivesMultipleFailures(t *testing.T) {
	const elems = 1500
	nw := buildReplicated(t, 25, elems, 2)
	q := keyspace.MustParse("(*, *)")
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 3; round++ {
		nw.KillPeer(rng.Intn(len(nw.Peers)))
		nw.StabilizeAll(8)
		nw.PushReplicasAll() // replication degree recovery between failures
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not healed: %v", err)
	}
	res, _ := nw.Query(0, q)
	if len(res.Matches) != elems {
		t.Errorf("after 3 failures found %d/%d elements", len(res.Matches), elems)
	}
}

// TestReplicationDoesNotDuplicateQueries ensures replicas are invisible to
// queries in the healthy case.
func TestReplicationDoesNotDuplicateQueries(t *testing.T) {
	nw := buildReplicated(t, 20, 1000, 3)
	for _, qs := range []string{"(*, *)", "(comp*, *)", "(data, *)"} {
		q := keyspace.MustParse(qs)
		want := len(nw.BruteForceMatches(q))
		res, _ := nw.Query(0, q)
		if len(res.Matches) != want {
			t.Errorf("%s: %d matches, want %d", qs, len(res.Matches), want)
		}
		seen := map[string]bool{}
		for _, m := range res.Matches {
			if seen[m.Data] {
				t.Errorf("%s: duplicate %s", qs, m.Data)
			}
			seen[m.Data] = true
		}
	}
}

// pushAllCounting runs PushReplicas on every peer and aggregates how many
// items were pushed and how many peers fell back to a full push.
func pushAllCounting(nw *sim.Network) (items, fulls int) {
	for _, p := range nw.Peers {
		p := p
		ch := make(chan [2]int, 1)
		p.Node.Invoke(func() {
			n, full := p.Engine.PushReplicas()
			f := 0
			if full {
				f = 1
			}
			ch <- [2]int{n, f}
		})
		v := <-ch
		items += v[0]
		fulls += v[1]
	}
	nw.Quiesce()
	return items, fulls
}

// replicaContents captures every peer's replica buffer as key/payload sets,
// keyed by peer address.
func replicaContents(nw *sim.Network) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, p := range nw.Peers {
		p := p
		set := make(map[string]bool)
		done := make(chan struct{})
		p.Node.Invoke(func() {
			p.Engine.ReplicaStore().ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(k uint64, e squid.Element) {
				set[fmt.Sprintf("%d/%s", k, e.Data)] = true
			})
			close(done)
		})
		<-done
		out[string(p.Addr())] = set
	}
	return out
}

// TestDeltaReplicationSteadyState pins the delta protocol's cost model: a
// tick with no mutations and no ring changes pushes nothing (in particular
// it does not snapshot the store), a publish costs one delta item at its
// owner, and a ring change falls back to a full push.
func TestDeltaReplicationSteadyState(t *testing.T) {
	nw := buildReplicated(t, 20, 1000, 2)

	// Steady state: nothing dirty, replica sets unchanged since the
	// initial PushReplicasAll.
	items, fulls := pushAllCounting(nw)
	if items != 0 || fulls != 0 {
		t.Fatalf("steady-state tick pushed %d items (%d full pushes), want 0/0", items, fulls)
	}

	// One publish dirties exactly one key at its owner.
	if err := nw.Publish(0, squid.Element{Values: []string{"computer", "network"}, Data: "fresh"}); err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()
	items, fulls = pushAllCounting(nw)
	if items != 1 || fulls != 0 {
		t.Fatalf("post-publish tick pushed %d items (%d full pushes), want 1 delta item", items, fulls)
	}

	// A ring change makes the affected peers push full snapshots again.
	nw.KillPeer(len(nw.Peers) / 2)
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatal(err)
	}
	_, fulls = pushAllCounting(nw)
	if fulls == 0 {
		t.Fatal("no peer full-pushed after its successor list changed")
	}
	// And the tick after that is quiet again (promotions during healing may
	// leave a few dirty keys behind; they drain in one delta tick).
	pushAllCounting(nw)
	items, fulls = pushAllCounting(nw)
	if items != 0 || fulls != 0 {
		t.Fatalf("post-heal steady tick pushed %d items (%d full pushes), want 0/0", items, fulls)
	}
}

// TestDeltaReplicationConverges checks the delta protocol reaches the same
// replica placement as full pushes: after churn rounds replicated with
// deltas, forcing a full push on every peer changes nothing.
func TestDeltaReplicationConverges(t *testing.T) {
	nw := buildReplicated(t, 25, 1500, 2)
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 3; round++ {
		nw.KillPeer(rng.Intn(len(nw.Peers)))
		for i := 0; i < 5; i++ {
			elem := squid.Element{
				Values: []string{testVocab[rng.Intn(len(testVocab))], testVocab[rng.Intn(len(testVocab))]},
				Data:   fmt.Sprintf("churn%d-%d", round, i),
			}
			if err := nw.Publish(0, elem); err != nil {
				t.Fatal(err)
			}
		}
		nw.Quiesce()
		nw.StabilizeAll(8)
		nw.PushReplicasAll() // delta path with full fallback on set changes
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatal(err)
	}
	// Let any outstanding deltas drain, then compare against full pushes.
	nw.PushReplicasAll()
	before := replicaContents(nw)
	for _, p := range nw.Peers {
		p := p
		p.Node.Invoke(func() { p.Engine.PushReplicasFull() })
	}
	nw.Quiesce()
	after := replicaContents(nw)
	for addr, want := range after {
		got := before[addr]
		for item := range want {
			if !got[item] {
				t.Errorf("peer %s: delta replication missed %s (full push added it)", addr, item)
			}
		}
		for item := range got {
			if !want[item] {
				t.Errorf("peer %s: delta replication left stale %s", addr, item)
			}
		}
	}
}
