package squid_test

import (
	"fmt"
	"math/rand"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

// buildReplicated creates a network with the given replication degree and
// a known corpus.
func buildReplicated(t *testing.T, nodes, elems, replicas int) *sim.Network {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: 42,
		Engine: squid.Options{Replicas: replicas},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]squid.Element, 0, elems)
	for i := 0; i < elems; i++ {
		batch = append(batch, squid.Element{
			Values: []string{testVocab[rng.Intn(len(testVocab))], testVocab[rng.Intn(len(testVocab))]},
			Data:   fmt.Sprintf("doc%d", i),
		})
	}
	if err := nw.Preload(batch); err != nil {
		t.Fatal(err)
	}
	if replicas > 0 {
		nw.PushReplicasAll()
	}
	return nw
}

// TestReplicationSurvivesFailure is the fault-tolerance extension the
// paper lists as future work: with successor replication, an abrupt node
// failure loses no data — queries stay complete after the ring heals.
func TestReplicationSurvivesFailure(t *testing.T) {
	const elems = 2000
	nw := buildReplicated(t, 30, elems, 2)
	keysBefore := nw.TotalKeys()
	q := keyspace.MustParse("(*, *)")
	if got := len(nw.BruteForceMatches(q)); got != elems {
		t.Fatalf("setup: %d elements stored", got)
	}

	// Kill the most loaded peer: without replication its data would vanish.
	loads := nw.LoadVector()
	victim := 0
	for i, l := range loads {
		if l > loads[victim] {
			victim = i
		}
	}
	if loads[victim] == 0 {
		t.Fatal("victim holds nothing")
	}
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not healed: %v", err)
	}

	if got := nw.TotalKeys(); got != keysBefore {
		t.Errorf("keys after failure = %d, want %d (promotion failed)", got, keysBefore)
	}
	res, _ := nw.Query(0, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Matches) != elems {
		t.Errorf("after failure the wildcard query found %d/%d elements", len(res.Matches), elems)
	}
	// No duplicates either: promotion must be exactly-once.
	seen := map[string]int{}
	for _, m := range res.Matches {
		seen[m.Data]++
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("element %s returned %d times", id, c)
		}
	}
}

// TestWithoutReplicationFailureLosesData is the control: the same failure
// without replication loses the victim's keys (motivating the extension).
func TestWithoutReplicationFailureLosesData(t *testing.T) {
	nw := buildReplicated(t, 30, 2000, 0)
	keysBefore := nw.TotalKeys()
	loads := nw.LoadVector()
	victim := 0
	for i, l := range loads {
		if l > loads[victim] {
			victim = i
		}
	}
	lost := loads[victim]
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	if got := nw.TotalKeys(); got != keysBefore-lost {
		t.Errorf("keys after failure = %d, want %d", got, keysBefore-lost)
	}
}

// TestReplicationSurvivesMultipleFailures kills several peers in sequence
// with stabilization (and re-replication) between failures.
func TestReplicationSurvivesMultipleFailures(t *testing.T) {
	const elems = 1500
	nw := buildReplicated(t, 25, elems, 2)
	q := keyspace.MustParse("(*, *)")
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 3; round++ {
		nw.KillPeer(rng.Intn(len(nw.Peers)))
		nw.StabilizeAll(8)
		nw.PushReplicasAll() // replication degree recovery between failures
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring not healed: %v", err)
	}
	res, _ := nw.Query(0, q)
	if len(res.Matches) != elems {
		t.Errorf("after 3 failures found %d/%d elements", len(res.Matches), elems)
	}
}

// TestReplicationDoesNotDuplicateQueries ensures replicas are invisible to
// queries in the healthy case.
func TestReplicationDoesNotDuplicateQueries(t *testing.T) {
	nw := buildReplicated(t, 20, 1000, 3)
	for _, qs := range []string{"(*, *)", "(comp*, *)", "(data, *)"} {
		q := keyspace.MustParse(qs)
		want := len(nw.BruteForceMatches(q))
		res, _ := nw.Query(0, q)
		if len(res.Matches) != want {
			t.Errorf("%s: %d matches, want %d", qs, len(res.Matches), want)
		}
		seen := map[string]bool{}
		for _, m := range res.Matches {
			if seen[m.Data] {
				t.Errorf("%s: duplicate %s", qs, m.Data)
			}
			seen[m.Data] = true
		}
	}
}
