package squid_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/transport"
)

// chordRetryConfig is the ring-level retry policy used by the chaos tests:
// fast timeouts so lost RPCs fail over quickly, enough retries to ride out
// a 10-25% drop rate.
func chordRetryConfig() chord.Config {
	return chord.Config{
		RPCTimeout: 40 * time.Millisecond,
		RPCRetries: 4,
		RPCBackoff: 2 * time.Millisecond,
	}
}

// chaosNetwork builds a simulated network with the fault layer installed
// and the full recovery stack enabled: chord RPC retries, engine subtree
// re-dispatch, and a hard query deadline so no query can hang the test.
func chaosNetwork(t *testing.T, nodes int, seed int64) (*sim.Network, *keyspace.Space) {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: seed,
		Engine: squid.Options{
			Replicas:       2,
			SubtreeTimeout: 50 * time.Millisecond,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Second,
		},
		Chord: chordRetryConfig(),
		Faults: &transport.FaultConfig{
			Seed: seed + 1, // drop rate starts at 0; raised per phase
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw, space
}

// chaosPublish pushes n uniquely tagged elements through the overlay and
// replicates them, returning the live set.
func chaosPublish(t *testing.T, nw *sim.Network, rng *rand.Rand, n int) []squid.Element {
	t.Helper()
	elems := make([]squid.Element, 0, n)
	for i := 0; i < n; i++ {
		e := squid.Element{
			Values: []string{randSoakWord(rng), randSoakWord(rng)},
			Data:   fmt.Sprintf("chaos-%05d", i),
		}
		if err := nw.Publish(rng.Intn(len(nw.Peers)), e); err != nil {
			t.Fatal(err)
		}
		elems = append(elems, e)
	}
	nw.Quiesce()
	nw.PushReplicasAll()
	return elems
}

// dataSet collapses elements to their unique payload tags.
func dataSet(elems []squid.Element) map[string]bool {
	out := make(map[string]bool, len(elems))
	for _, e := range elems {
		out[e.Data] = true
	}
	return out
}

// checkSound asserts the chaos invariants on one query result against the
// ground truth taken immediately before it ran: no phantom matches, no
// duplicates, and — whenever the result claims success — full recall.
// Returns whether the result was complete.
func checkSound(t *testing.T, label string, res squid.Result, truth map[string]bool) bool {
	t.Helper()
	seen := make(map[string]bool, len(res.Matches))
	for _, m := range res.Matches {
		if !truth[m.Data] {
			t.Fatalf("%s: phantom match %q not in ground truth", label, m.Data)
		}
		if seen[m.Data] {
			t.Fatalf("%s: duplicate match %q", label, m.Data)
		}
		seen[m.Data] = true
	}
	if res.Err == nil && len(seen) != len(truth) {
		t.Fatalf("%s: silent partial: %d/%d matches with nil error",
			label, len(seen), len(truth))
	}
	return res.Err == nil
}

// TestChaosSoak drives queries through a lossy transport with a crashed
// node per block of 50 queries. The contract under fire: results are
// always sound (a subset of the pre-query ground truth, no duplicates),
// and a query either achieves full recall or reports a non-nil error —
// never a silently short match set. Once faults clear, one stabilization
// round restores exact recall.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in short mode")
	}
	nw, _ := chaosNetwork(t, 16, 4001)
	rng := rand.New(rand.NewSource(4002))
	chaosPublish(t, nw, rng, 300)

	queries := []keyspace.Query{
		keyspace.MustParse("(a*, *)"),
		keyspace.MustParse("(*, m*)"),
		keyspace.MustParse("(b-f, *)"),
		keyspace.MustParse("(*, *)"),
	}

	// Baseline: with the fault layer installed but quiet, recall is exact.
	for _, q := range queries {
		truth := dataSet(nw.BruteForceMatches(q))
		res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
		if res.Err != nil {
			t.Fatalf("baseline %s: %v", q, res.Err)
		}
		checkSound(t, "baseline "+q.String(), res, truth)
	}

	// Chaos phase: ≥10% message loss plus one crashed (black-holed) node
	// per 50-query block.
	nw.Faulty.SetDropRate(0.12)
	complete, partial := 0, 0
	for block := 0; block < 2; block++ {
		crashed := rng.Intn(len(nw.Peers))
		nw.Faulty.Crash(nw.Peers[crashed].Addr())
		for i := 0; i < 50; i++ {
			q := queries[rng.Intn(len(queries))]
			via := rng.Intn(len(nw.Peers))
			if via == crashed {
				via = (via + 1) % len(nw.Peers)
			}
			truth := dataSet(nw.BruteForceMatches(q))
			res, _ := nw.Query(via, q)
			label := fmt.Sprintf("block %d query %d %s", block, i, q)
			if checkSound(t, label, res, truth) {
				complete++
			} else {
				partial++
			}
		}
		nw.Faulty.Restart(nw.Peers[crashed].Addr())
	}
	if partial == 0 {
		t.Error("chaos phase produced no partial results — faults were not exercised")
	}
	st := nw.Faulty.Stats()
	if st.Dropped == 0 || st.CrashDrops == 0 {
		t.Errorf("fault stats %+v: expected injected drops and crash drops", st)
	}
	rec := nw.RecoveryCounters()
	if rec.Redispatches == 0 {
		t.Error("no subtree re-dispatches despite message loss")
	}
	if cc := nw.ChordCounters(); cc.FindRetries == 0 {
		t.Error("no chord RPC retries despite message loss")
	}
	t.Logf("chaos: %d complete / %d partial; faults %+v; recovery %+v; chord %+v",
		complete, partial, st, rec, nw.ChordCounters())

	// Faults clear: one stabilization round must restore exact recall.
	nw.Faulty.SetDropRate(0)
	nw.StabilizeAll(1)
	nw.PushReplicasAll()
	for _, q := range queries {
		truth := dataSet(nw.BruteForceMatches(q))
		res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
		if res.Err != nil {
			t.Fatalf("post-heal %s: %v", q, res.Err)
		}
		if !checkSound(t, "post-heal "+q.String(), res, truth) || len(res.Matches) != len(truth) {
			t.Fatalf("post-heal %s: %d/%d matches", q, len(res.Matches), len(truth))
		}
	}
	if n := nw.RingViolations(); n != 0 {
		t.Fatalf("%d hard ring violations after heal — crashes and message loss must not break membership", n)
	}
}

// TestChaosQuerySubsetProperty is the property-style check: randomized
// queries through a heavily lossy transport always return a subset of the
// brute-force ground truth — matches may be missing (flagged via Err) but
// are never fabricated or duplicated.
func TestChaosQuerySubsetProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property test skipped in short mode")
	}
	nw, _ := chaosNetwork(t, 12, 5001)
	rng := rand.New(rand.NewSource(5002))
	elems := chaosPublish(t, nw, rng, 200)
	nw.Faulty.SetDropRate(0.25)

	randTerm := func() string {
		switch rng.Intn(3) {
		case 0:
			return "*"
		case 1:
			return string(rune('a'+rng.Intn(26))) + "*"
		default:
			a, b := rune('a'+rng.Intn(26)), rune('a'+rng.Intn(26))
			if a > b {
				a, b = b, a
			}
			return fmt.Sprintf("%c-%c", a, b)
		}
	}
	for i := 0; i < 30; i++ {
		var qs string
		if rng.Intn(5) == 0 {
			// Exact query for a published element: exercises the lookup
			// path's recovery under the same faults.
			e := elems[rng.Intn(len(elems))]
			qs = fmt.Sprintf("(%s, %s)", e.Values[0], e.Values[1])
		} else {
			qs = fmt.Sprintf("(%s, %s)", randTerm(), randTerm())
		}
		q, err := keyspace.Parse(qs)
		if err != nil {
			t.Fatalf("generated unparsable query %q: %v", qs, err)
		}
		truth := dataSet(nw.BruteForceMatches(q))
		res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
		checkSound(t, fmt.Sprintf("property query %d %s", i, qs), res, truth)
	}
}
