package squid_test

import (
	"fmt"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/transport"
)

// tcpNode bundles a real-TCP peer for the integration test.
type tcpNode struct {
	node *chord.Node
	eng  *squid.Engine
	ep   *transport.TCPEndpoint
}

func startTCPNode(t *testing.T, space *keyspace.Space, id uint64) *tcpNode {
	t.Helper()
	eng := squid.New(space)
	node := chord.NewNode(chord.Config{
		Space:      chord.Space{Bits: space.IndexBits()},
		RPCTimeout: 5 * time.Second,
	}, chord.ID(id), eng)
	eng.Attach(node)
	ep, err := transport.ListenTCP("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	node.Start(ep)
	return &tcpNode{node: node, eng: eng, ep: ep}
}

// clientSink collects replies for the out-of-ring client.
type clientSink struct {
	results chan any
}

func (c *clientSink) Deliver(from transport.Addr, msg any) {
	if m, ok := msg.(chord.AppMsg); ok {
		msg = m.Payload
	}
	select {
	case c.results <- msg:
	default:
	}
}

// TestTCPEndToEnd runs the full production path: three squid peers over
// real TCP sockets, protocol joins, client publishes and a flexible query
// through the wire protocol (gob frames) — exactly what cmd/squid-node and
// squidctl do.
func TestTCPEndToEnd(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}

	a := startTCPNode(t, space, 1111)
	if err := a.node.Invoke(a.node.Create); err != nil {
		t.Fatal(err)
	}
	for i, id := range []uint64{22222, 44444} {
		n := startTCPNode(t, space, id)
		done := make(chan error, 1)
		n.node.Invoke(func() {
			n.node.Join(a.ep.Addr(), func(err error) { done <- err })
		})
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("join %d timed out", i)
		}
	}

	// A non-member client publishes through node A and queries through it,
	// exactly like squidctl.
	sink := &clientSink{results: make(chan any, 4)}
	client, err := transport.ListenTCP("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	docs := [][2]string{
		{"computer", "network"},
		{"computer", "graphics"},
		{"compiler", "design"},
		{"database", "systems"},
	}
	for i, d := range docs {
		msg := chord.AppMsg{From: client.Addr(), Payload: squid.ClientPublishMsg{
			Elem: squid.Element{Values: []string{d[0], d[1]}, Data: fmt.Sprintf("doc%d", i)},
		}}
		if err := client.Send(a.ep.Addr(), msg); err != nil {
			t.Fatal(err)
		}
	}

	// Publishes route asynchronously over TCP; poll the query until the
	// expected results appear.
	deadline := time.Now().Add(10 * time.Second)
	var got squid.ClientResultMsg
	for time.Now().Before(deadline) {
		q := chord.AppMsg{From: client.Addr(), Payload: squid.ClientQueryMsg{
			Query: "(comp*, *)", ReplyTo: client.Addr(), Token: uint64(time.Now().UnixNano()),
		}}
		if err := client.Send(a.ep.Addr(), q); err != nil {
			t.Fatal(err)
		}
		select {
		case raw := <-sink.results:
			res, ok := raw.(squid.ClientResultMsg)
			if !ok {
				continue
			}
			got = res
		case <-time.After(2 * time.Second):
			continue
		}
		if len(got.Matches) == 3 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got.Err != "" {
		t.Fatalf("query error: %s", got.Err)
	}
	if len(got.Matches) != 3 {
		t.Fatalf("query over TCP found %d matches, want 3 (%v)", len(got.Matches), got.Matches)
	}

	// Status probe, as squidctl does.
	if err := client.Send(a.ep.Addr(), chord.GetStateMsg{Token: 9, ReplyTo: client.Addr()}); err != nil {
		t.Fatal(err)
	}
	select {
	case raw := <-sink.results:
		st, ok := raw.(chord.StateMsg)
		if !ok {
			t.Fatalf("unexpected reply %T", raw)
		}
		if st.Self.ID != 1111 {
			t.Errorf("status self = %s", st.Self)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no status reply")
	}
}
