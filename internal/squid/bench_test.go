package squid_test

import (
	"fmt"
	"math/rand"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

func benchNetwork(b *testing.B, nodes, elems int) *sim.Network {
	b.Helper()
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]squid.Element, elems)
	for i := range batch {
		batch[i] = squid.Element{
			Values: []string{testVocab[rng.Intn(len(testVocab))], testVocab[rng.Intn(len(testVocab))]},
			Data:   fmt.Sprintf("doc%d", i),
		}
	}
	if err := nw.Preload(batch); err != nil {
		b.Fatal(err)
	}
	return nw
}

// BenchmarkPublish measures routed publish throughput on a 100-peer
// network.
func BenchmarkPublish(b *testing.B) {
	nw := benchNetwork(b, 100, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elem := squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i*7)%len(testVocab)]},
			Data:   "bench",
		}
		if err := nw.Publish(i%len(nw.Peers), elem); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nw.Quiesce()
}

// BenchmarkExactQuery measures the single-lookup path end to end.
func BenchmarkExactQuery(b *testing.B) {
	nw := benchNetwork(b, 100, 10_000)
	q := keyspace.MustParse("(computer, network)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkPrefixQuery measures a flexible partial-keyword query end to
// end (distributed refinement, aggregation, result collection).
func BenchmarkPrefixQuery(b *testing.B) {
	nw := benchNetwork(b, 100, 10_000)
	q := keyspace.MustParse("(comp*, *)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkWildcardQuery measures the worst-case full-space query.
func BenchmarkWildcardQuery(b *testing.B) {
	nw := benchNetwork(b, 100, 10_000)
	q := keyspace.MustParse("(*, *)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
