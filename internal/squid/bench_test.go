package squid_test

import (
	"fmt"
	"math/rand"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

func benchNetwork(b *testing.B, nodes, elems int) *sim.Network {
	return buildBenchNetwork(b, nodes, elems, false)
}

func buildBenchNetwork(b *testing.B, nodes, elems int, traced bool) *sim.Network {
	b.Helper()
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 42, Trace: traced})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]squid.Element, elems)
	for i := range batch {
		batch[i] = squid.Element{
			Values: []string{testVocab[rng.Intn(len(testVocab))], testVocab[rng.Intn(len(testVocab))]},
			Data:   fmt.Sprintf("doc%d", i),
		}
	}
	if err := nw.Preload(batch); err != nil {
		b.Fatal(err)
	}
	return nw
}

// BenchmarkPublish measures routed publish throughput on a 100-peer
// network.
func BenchmarkPublish(b *testing.B) {
	nw := benchNetwork(b, 100, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elem := squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i*7)%len(testVocab)]},
			Data:   "bench",
		}
		if err := nw.Publish(i%len(nw.Peers), elem); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nw.Quiesce()
}

// BenchmarkExactQuery measures the single-lookup path end to end.
func BenchmarkExactQuery(b *testing.B) {
	nw := benchNetwork(b, 100, 10_000)
	q := keyspace.MustParse("(computer, network)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkPrefixQuery measures a flexible partial-keyword query end to
// end (distributed refinement, aggregation, result collection).
func BenchmarkPrefixQuery(b *testing.B) {
	nw := benchNetwork(b, 100, 10_000)
	q := keyspace.MustParse("(comp*, *)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// benchEngineQuery is the shared body of the telemetry cost guard: the
// same prefix query as BenchmarkPrefixQuery (distributed refinement,
// aggregation, result collection).
func benchEngineQuery(b *testing.B, nw *sim.Network) {
	q := keyspace.MustParse("(comp*, *)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkEngineQuery_Uninstrumented is the baseline for the telemetry
// cost guard: metric counters are wired (they always are) but query
// tracing is off, so no spans are recorded or shipped.
func BenchmarkEngineQuery_Uninstrumented(b *testing.B) {
	benchEngineQuery(b, buildBenchNetwork(b, 100, 10_000, false))
}

// BenchmarkEngineQuery_Instrumented runs the same query with tracing on:
// every refinement hop records a span and ships it up the result path.
// EXPERIMENTS.md records the delta. The <5% budget applies to untraced
// queries (always-on counters only; single atomic ops, 0 allocs);
// per-query sampled tracing costs more and is opt-in.
func BenchmarkEngineQuery_Instrumented(b *testing.B) {
	benchEngineQuery(b, buildBenchNetwork(b, 100, 10_000, true))
}

// BenchmarkWildcardQuery measures the worst-case full-space query.
func BenchmarkWildcardQuery(b *testing.B) {
	nw := benchNetwork(b, 100, 10_000)
	q := keyspace.MustParse("(*, *)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nw.Query(i%len(nw.Peers), q)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
