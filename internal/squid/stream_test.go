package squid_test

import (
	"context"
	"sort"
	"strconv"
	"testing"
	"time"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/transport"
)

// TestStreamMatchesQuery is the streaming analogue of the scheduler
// equivalence test: an unlimited QueryStream must deliver exactly the
// result set the one-shot Query does (which in turn equals brute force),
// across the full query taxonomy — streaming changes delivery, never the
// answer.
func TestStreamMatchesQuery(t *testing.T) {
	nw := buildNetwork(t, 40, 3000, squid.Options{})
	queries := []string{
		"(computer, network)",
		"(computer, *)",
		"(comp*, *)",
		"(comp*, net*)",
		"(c-d, *)",
		"(*, *)",
		"(zzz, *)", // no matches
	}
	for qi, qs := range queries {
		q := keyspace.MustParse(qs)
		want := sortedData(nw.BruteForceMatches(q))
		res, _ := nw.Query(qi%len(nw.Peers), q)
		if res.Err != nil {
			t.Fatalf("%s: legacy query: %v", qs, res.Err)
		}
		sr, _ := nw.QueryStream(qi%len(nw.Peers), q)
		if sr.Err != nil {
			t.Fatalf("%s: stream: %v", qs, sr.Err)
		}
		if got := sortedData(sr.Matches); !equalSets(got, want) {
			t.Errorf("%s: stream delivered %d matches, brute force %d", qs, len(got), len(want))
		}
		if got, legacy := sortedData(sr.Matches), sortedData(res.Matches); !equalSets(got, legacy) {
			t.Errorf("%s: stream and legacy query disagree: %d vs %d", qs, len(got), len(legacy))
		}
		for bi, b := range sr.Batches {
			if len(b) == 0 {
				t.Errorf("%s: empty batch %d delivered", qs, bi)
			}
		}
		if !sr.Cursor.Exhausted() {
			t.Errorf("%s: fully delivered stream's cursor not exhausted", qs)
		}
	}
}

// TestStreamLimitTopK pins the tentpole's economy claim: a Limit(k) stream
// delivers exactly k matches, terminates early with a clean (nil) error,
// sends QueryCancelMsg teardown to its outstanding subtrees, and costs
// fewer cluster-query transmissions than draining the same query fully.
func TestStreamLimitTopK(t *testing.T) {
	nw := buildNetwork(t, 40, 3000, squid.Options{})
	q := keyspace.MustParse("(comp*, *)")
	total := len(nw.BruteForceMatches(q))
	if total < 20 {
		t.Fatalf("test query too narrow: %d matches", total)
	}
	full, qmFull := nw.QueryStream(0, q)
	if full.Err != nil {
		t.Fatal(full.Err)
	}

	const k = 5
	lim, qmLim := nw.QueryStream(1, q, squid.Limit(k))
	if lim.Err != nil {
		t.Fatalf("limited stream: %v", lim.Err)
	}
	if len(lim.Matches) != k {
		t.Fatalf("Limit(%d) delivered %d matches", k, len(lim.Matches))
	}
	if lim.Cursor.Exhausted() {
		t.Error("early-terminated stream reports an exhausted cursor")
	}
	if qmLim.ClusterMessages >= qmFull.ClusterMessages {
		t.Errorf("Limit(%d) used %d cluster messages, full drain %d — no early-termination savings",
			k, qmLim.ClusterMessages, qmFull.ClusterMessages)
	}
	t.Logf("cluster messages: full=%d limit(%d)=%d cancels=%d",
		qmFull.ClusterMessages, k, qmLim.ClusterMessages, qmLim.CancelMessages)
	// Every delivered match is a real one.
	want := map[string]bool{}
	for _, e := range nw.BruteForceMatches(q) {
		want[e.Data] = true
	}
	for _, e := range lim.Matches {
		if !want[e.Data] {
			t.Errorf("limited stream delivered non-matching element %q", e.Data)
		}
	}
}

// TestStreamCursorPagination browses a query in Limit-sized pages, feeding
// each page's cursor into the next, and checks the union of pages is the
// exact full result set (pages may overlap at resume boundaries —
// at-least-once — so the union is deduplicated first).
func TestStreamCursorPagination(t *testing.T) {
	nw := buildNetwork(t, 30, 2000, squid.Options{})
	q := keyspace.MustParse("(comp*, *)")
	want := sortedData(nw.BruteForceMatches(q))
	if len(want) < 15 {
		t.Fatalf("test query too narrow: %d matches", len(want))
	}

	const page = 7
	seen := map[string]bool{}
	var cur squid.Cursor
	for pageNo := 0; ; pageNo++ {
		if pageNo > len(want)+5 {
			t.Fatal("pagination did not converge")
		}
		opts := []squid.QueryOption{squid.Limit(page)}
		if pageNo > 0 {
			opts = append(opts, squid.WithCursor(cur))
		}
		sr, _ := nw.QueryStream(pageNo%len(nw.Peers), q, opts...)
		if sr.Err != nil {
			t.Fatalf("page %d: %v", pageNo, sr.Err)
		}
		for _, e := range sr.Matches {
			seen[e.Data] = true
		}
		cur = sr.Cursor
		if cur.Exhausted() {
			break
		}
		// The cursor must round-trip its query so a caller can resume
		// without holding the original alongside it.
		cq, err := squid.CursorQuery(cur)
		if err != nil {
			t.Fatalf("page %d: cursor query: %v", pageNo, err)
		}
		if cq.String() != q.String() {
			t.Fatalf("page %d: cursor recovered query %q, want %q", pageNo, cq.String(), q.String())
		}
	}
	got := make([]string, 0, len(seen))
	for d := range seen {
		got = append(got, d)
	}
	sort.Strings(got)
	if !equalSets(got, want) {
		t.Errorf("pagination union has %d distinct matches, brute force %d", len(got), len(want))
	}
}

// TestStreamCancelMidStream cancels a streaming query from inside its own
// delivery callback — the deterministic cancellation point: the first batch
// has arrived while sibling subtrees are still refining. The stream must
// finish exactly once with context.Canceled, deliver nothing after Done,
// and tear its outstanding subtrees down with QueryCancelMsg.
func TestStreamCancelMidStream(t *testing.T) {
	nw := buildNetwork(t, 40, 3000, squid.Options{})
	q := keyspace.MustParse("(*, *)")
	p := nw.Peers[0]

	var (
		events       []squid.StreamEvent
		afterDone    int
		doneCount    int
		batchesSeen  int
		qidCh        = make(chan squid.QueryID, 1)
		finishedCh   = make(chan struct{}, 1)
		startErrCh   = make(chan error, 1)
		cancelResult bool
	)
	sim.MustInvoke(p, func() {
		var qid squid.QueryID
		var err error
		qid, err = p.Engine.QueryStreamFunc(context.Background(), q, func(ev squid.StreamEvent) {
			events = append(events, ev)
			if ev.Done {
				doneCount++
				finishedCh <- struct{}{}
				return
			}
			if doneCount > 0 {
				afterDone++
				return
			}
			batchesSeen++
			if batchesSeen == 1 {
				// First partial page in hand: the consumer walks away.
				// Reentrant cancellation from the delivery callback is the
				// documented upcall context for engine entry points.
				cancelResult = p.Engine.CancelQuery(qid)
			}
		})
		qidCh <- qid
		startErrCh <- err
	})
	qid := <-qidCh
	if err := <-startErrCh; err != nil {
		t.Fatal(err)
	}
	select {
	case <-finishedCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled stream never finished")
	}
	nw.Quiesce()

	if !cancelResult {
		t.Error("CancelQuery did not find the in-flight query")
	}
	if doneCount != 1 {
		t.Fatalf("stream finished %d times", doneCount)
	}
	if afterDone != 0 {
		t.Fatalf("%d batches delivered after Done", afterDone)
	}
	last := events[len(events)-1]
	if !last.Done {
		t.Fatal("Done is not the final event")
	}
	if last.Err != context.Canceled {
		t.Fatalf("cancelled stream error = %v, want context.Canceled", last.Err)
	}
	if last.Cursor.Exhausted() {
		t.Error("cancelled stream reports an exhausted cursor")
	}
	qm := nw.Metrics.ForQuery(qid)
	if qm.CancelMessages == 0 {
		t.Error("cancellation sent no QueryCancelMsg teardown")
	}
	// The network is quiet and the root is gone: a second cancel is a no-op.
	if nw.CancelQuery(0, qid) {
		t.Error("finished query still cancellable")
	}
}

// TestStreamContextCancel drives cancellation through the context instead
// of CancelQuery, under injected latency so the query is still in flight
// when the cancel lands. The terminal event must carry the context's error
// and arrive exactly once.
func TestStreamContextCancel(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: 30, Space: space, Seed: 42,
		Faults: &transport.FaultConfig{
			Seed:     43,
			MinDelay: 2 * time.Millisecond,
			MaxDelay: 6 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]squid.Element, 0, 2000)
	for i := 0; i < 2000; i++ {
		elems = append(elems, squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i/3)%len(testVocab)]},
			Data:   "doc" + strconv.Itoa(i),
		})
	}
	if err := nw.Preload(elems); err != nil {
		t.Fatal(err)
	}

	p := nw.Peers[0]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstBatch := make(chan struct{}, 1)
	done := make(chan error, 1)
	var batches int
	sim.MustInvoke(p, func() {
		_, err := p.Engine.QueryStreamFunc(ctx, keyspace.MustParse("(*, *)"), func(ev squid.StreamEvent) {
			if ev.Done {
				done <- ev.Err
				return
			}
			batches++
			if batches == 1 {
				firstBatch <- struct{}{}
			}
		})
		if err != nil {
			t.Error(err)
			done <- err
		}
	})
	select {
	case <-firstBatch:
		cancel()
	case <-time.After(10 * time.Second):
		t.Fatal("no batch arrived")
	}
	select {
	case err := <-done:
		// The query may legitimately complete before the asynchronous
		// context watcher lands; only a cancellation that did land must be
		// reported as context.Canceled.
		if err != nil && err != context.Canceled {
			t.Fatalf("stream error = %v, want nil or context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never finished after ctx cancel")
	}
	nw.Quiesce()
}

// TestStreamResultStreamPull exercises the pull-side API: QueryStream's
// ResultStream consumed with Next/Collect from an ordinary goroutine while
// batches are produced on the node's delivery goroutine.
func TestStreamResultStreamPull(t *testing.T) {
	nw := buildNetwork(t, 25, 1500, squid.Options{})
	q := keyspace.MustParse("(comp*, *)")
	want := sortedData(nw.BruteForceMatches(q))
	p := nw.Peers[2]
	type started struct {
		s   *squid.ResultStream
		err error
	}
	ch := make(chan started, 1)
	sim.MustInvoke(p, func() {
		s, err := p.Engine.QueryStream(context.Background(), q)
		ch <- started{s, err}
	})
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	s := got.s
	all, err := s.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(sortedData(all), want) {
		t.Errorf("pull stream collected %d matches, brute force %d", len(all), len(want))
	}
	if !s.Cursor().Exhausted() {
		t.Error("drained stream's cursor not exhausted")
	}
	nw.Quiesce()
}

// resultCacheCounts sums the squid_result_cache_total family across peers.
func resultCacheCounts(nw *sim.Network) (hits, misses uint64) {
	vec := nw.Telemetry.CounterVec("squid_result_cache_total",
		"popular-cluster result-cache lookups on incoming cluster batches", "node", "outcome")
	for _, p := range nw.PeerList() {
		node := strconv.FormatUint(uint64(p.ID()), 16)
		hits += vec.With(node, "hit").Value()
		misses += vec.With(node, "miss").Value()
	}
	return hits, misses
}

// TestStreamResultCache pins the popular-cluster cache end to end: a
// repeated query hits the cache (and still answers exactly), and a write
// into a cached cluster invalidates it — the next repeat sees the new
// element instead of a stale page.
func TestStreamResultCache(t *testing.T) {
	nw := buildNetwork(t, 30, 2000, squid.Options{ResultCacheSize: 64})
	q := keyspace.MustParse("(comp*, *)")
	want := sortedData(nw.BruteForceMatches(q))

	first, _ := nw.QueryStream(0, q)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if !equalSets(sortedData(first.Matches), want) {
		t.Fatalf("cold query wrong: %d vs %d", len(first.Matches), len(want))
	}
	hits0, misses0 := resultCacheCounts(nw)
	if misses0 == 0 {
		t.Fatal("cold query recorded no cache misses — cache not consulted")
	}

	second, _ := nw.QueryStream(1, q)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !equalSets(sortedData(second.Matches), want) {
		t.Fatalf("repeat query wrong: %d vs %d", len(second.Matches), len(want))
	}
	hits1, _ := resultCacheCounts(nw)
	if hits1 <= hits0 {
		t.Errorf("repeat of an identical query recorded no cache hits (%d -> %d)", hits0, hits1)
	}

	// A publish into the cached clusters must invalidate them: the next
	// repeat returns the new element, not the cached page.
	if err := nw.Publish(3, squid.Element{Values: []string{"computer", "computer"}, Data: "fresh"}); err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()
	want2 := sortedData(nw.BruteForceMatches(q))
	if len(want2) != len(want)+1 {
		t.Fatalf("publish did not land: %d vs %d", len(want2), len(want))
	}
	third, _ := nw.QueryStream(2, q)
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if !equalSets(sortedData(third.Matches), want2) {
		t.Errorf("post-publish query stale: %d matches, want %d (cache not invalidated)",
			len(third.Matches), len(want2))
	}

	// Legacy (non-streaming) repeats ride the same cache.
	res, _ := nw.Query(4, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !equalSets(sortedData(res.Matches), want2) {
		t.Errorf("legacy query through cache wrong: %d vs %d", len(res.Matches), len(want2))
	}
}

// TestStreamUnderChaos streams under message drops with the full recovery
// stack on: every stream must terminate (no hang), report either a clean
// or an explicitly partial result, and never deliver after Done. Run with
// -race this doubles as the streaming data-race check.
func TestStreamUnderChaos(t *testing.T) {
	nw, space := chaosNetwork(t, 30, 99)
	_ = space
	rngElems := make([]squid.Element, 0, 800)
	for i := 0; i < 800; i++ {
		rngElems = append(rngElems, squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i/2)%len(testVocab)]},
			Data:   "doc" + strconv.Itoa(i),
		})
	}
	if err := nw.Preload(rngElems); err != nil {
		t.Fatal(err)
	}
	nw.PushReplicasAll()
	nw.Faulty.SetDropRate(0.10)

	queries := []string{"(comp*, *)", "(*, net*)", "(data*, *)", "(*, *)"}
	for i, qs := range queries {
		q := keyspace.MustParse(qs)
		opts := []squid.QueryOption{}
		if i%2 == 1 {
			opts = append(opts, squid.Limit(10))
		}
		sr, _ := nw.QueryStream(i%len(nw.Peers), q, opts...)
		if sr.Err != nil && sr.Err != squid.ErrPartialResult {
			t.Fatalf("%s: %v", qs, sr.Err)
		}
		if i%2 == 1 && len(sr.Matches) > 10 {
			t.Errorf("%s: Limit(10) delivered %d", qs, len(sr.Matches))
		}
	}
	nw.Faulty.SetDropRate(0)
	nw.Quiesce()
}
