package squid_test

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"squid/internal/analysis"
)

// TestAPISurface pins the exported surface of package squid to a golden
// snapshot, in the spirit of squid-lint: an API change must show up as an
// explicit diff in review, never as an accident. The snapshot is rendered
// from the type-checked package (same stdlib-only loader squid-lint uses),
// so renames, signature changes, added/removed methods, and exported-field
// changes all fail this test until the golden is regenerated with
//
//	SQUID_UPDATE_API=1 go test -run TestAPISurface ./internal/squid
func TestAPISurface(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("squid/internal/squid")
	if err != nil {
		t.Fatal(err)
	}

	got := renderSurface(pkg.Types)
	golden := filepath.Join("testdata", "api_surface.golden")

	if os.Getenv("SQUID_UPDATE_API") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", golden, strings.Count(got, "\n"))
		return
	}

	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with SQUID_UPDATE_API=1): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	gotSet := toSet(gotLines)
	wantSet := toSet(wantLines)
	for _, l := range wantLines {
		if l != "" && !gotSet[l] {
			t.Errorf("removed: %s", l)
		}
	}
	for _, l := range gotLines {
		if l != "" && !wantSet[l] {
			t.Errorf("added:   %s", l)
		}
	}
	t.Error("exported API surface changed; if intended, regenerate with SQUID_UPDATE_API=1 go test -run TestAPISurface ./internal/squid")
}

func toSet(lines []string) map[string]bool {
	s := make(map[string]bool, len(lines))
	for _, l := range lines {
		s[l] = true
	}
	return s
}

// renderSurface writes one line per exported package-level identifier, plus
// indented lines for exported struct fields and exported methods (value and
// pointer receivers). Output is sorted and package-qualified relative to
// squid, so it is deterministic across runs and Go versions that agree on
// type rendering.
func renderSurface(pkg *types.Package) string {
	qual := types.RelativeTo(pkg)
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			fmt.Fprintf(&b, "const %s %s\n", name, types.TypeString(o.Type(), qual))
		case *types.Var:
			fmt.Fprintf(&b, "var %s %s\n", name, types.TypeString(o.Type(), qual))
		case *types.Func:
			fmt.Fprintf(&b, "func %s %s\n", name, types.TypeString(o.Type(), qual))
		case *types.TypeName:
			if o.IsAlias() {
				fmt.Fprintf(&b, "type %s = %s\n", name, types.TypeString(o.Type(), qual))
				continue
			}
			named := o.Type().(*types.Named)
			under := named.Underlying()
			fmt.Fprintf(&b, "type %s %s\n", name, underlyingKind(under))
			if st, ok := under.(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Exported() {
						fmt.Fprintf(&b, "\tfield %s %s\n", f.Name(), types.TypeString(f.Type(), qual))
					}
				}
			}
			mset := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < mset.Len(); i++ {
				m := mset.At(i).Obj()
				if m.Exported() {
					fmt.Fprintf(&b, "\tmethod %s %s\n", m.Name(), types.TypeString(m.Type(), qual))
				}
			}
		}
	}
	return b.String()
}

// underlyingKind names a type's underlying shape without expanding it, so
// the golden tracks the exported contract (fields, methods) rather than
// unexported representation details.
func underlyingKind(t types.Type) string {
	switch u := t.(type) {
	case *types.Struct:
		return "struct"
	case *types.Interface:
		return "interface"
	case *types.Basic:
		return u.Name()
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Signature:
		return "func"
	case *types.Pointer:
		return "pointer"
	case *types.Chan:
		return "chan"
	default:
		return t.String()
	}
}
