package squid

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"squid/internal/keyspace"
)

// PublishCombinations indexes a data element described by more keywords
// than the space has dimensions, the situation the paper's storage
// use-case implies (a document has many descriptive words, the index is
// 2-D or 3-D): the keywords are sorted and every d-sized combination is
// published as its own tuple. A query whose exact terms are sorted the
// same way then meets at least one tuple of every matching element.
//
// Because one element now lives at several curve points, a broad query can
// return it multiple times; deduplicate with Dedup. Returns the number of
// tuples published.
func (e *Engine) PublishCombinations(keywords []string, data string) (int, error) {
	d := e.space.Dims()
	words := make([]string, 0, len(keywords))
	for _, w := range keywords {
		w = strings.TrimSpace(strings.ToLower(w))
		if w != "" {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	words = dedupSorted(words)
	if len(words) == 0 {
		return 0, fmt.Errorf("squid: no usable keywords for %q", data)
	}
	if len(words) <= d {
		if err := e.Publish(Element{Values: words, Data: data}); err != nil {
			return 0, err
		}
		return 1, nil
	}
	published := 0
	var rec func(start int, chosen []string) error
	rec = func(start int, chosen []string) error {
		if len(chosen) == d {
			if err := e.Publish(Element{Values: append([]string(nil), chosen...), Data: data}); err != nil {
				return err
			}
			published++
			return nil
		}
		for i := start; i <= len(words)-(d-len(chosen)); i++ {
			if err := rec(i+1, append(chosen, words[i])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, make([]string, 0, d)); err != nil {
		return published, err
	}
	return published, nil
}

func dedupSorted(ws []string) []string {
	out := ws[:0]
	for i, w := range ws {
		if i == 0 || w != ws[i-1] {
			out = append(out, w)
		}
	}
	return out
}

// normalizeKeywords lowercases, trims, sorts and deduplicates a keyword
// list — the canonical form shared by the publish and query sides.
func normalizeKeywords(words []string) []string {
	clean := make([]string, 0, len(words))
	for _, w := range words {
		w = strings.TrimSpace(strings.ToLower(w))
		if w != "" {
			clean = append(clean, w)
		}
	}
	sort.Strings(clean)
	return dedupSorted(clean)
}

// placementQueries expands normalized keywords into every positional
// placement query: a word may sit on any axis of a sorted combination
// tuple, so each in-order assignment of the words to the d axes (remaining
// axes wildcarded) must be queried.
func placementQueries(clean []string, d int) []keyspace.Query {
	var queries []keyspace.Query
	var place func(wi, dim int, cur keyspace.Query)
	place = func(wi, dim int, cur keyspace.Query) {
		if wi == len(clean) {
			q := append(keyspace.Query(nil), cur...)
			for len(q) < d {
				q = append(q, keyspace.Wildcard())
			}
			queries = append(queries, q)
			return
		}
		if d-dim < len(clean)-wi {
			return
		}
		place(wi+1, dim+1, append(cur, keyspace.Exact(clean[wi]))) // word here
		place(wi, dim+1, append(cur, keyspace.Wildcard()))         // skip axis
	}
	place(0, 0, make(keyspace.Query, 0, d))
	return queries
}

// QueryKeywords resolves a conjunctive keyword query against data
// published with PublishCombinations. cb receives a single aggregated,
// deduplicated result; start failures are reported through cb's Err.
// Goroutine-confined like Query. See QueryKeywordsCtx.
func (e *Engine) QueryKeywords(words []string, cb func(Result)) {
	if err := e.QueryKeywordsCtx(context.Background(), words, cb); err != nil {
		cb(Result{Err: err})
	}
}

// QueryKeywordsCtx resolves a conjunctive keyword query under a context:
// the words are sorted (matching the publish-side ordering) and, when
// fewer words than dimensions are given, every positional placement is
// queried (a word may sit on any axis of a sorted combination tuple). cb
// fires exactly once — from the node's delivery goroutine — with the
// aggregated, deduplicated result. A non-nil error means the words were
// unusable or the context was already done, and cb will never fire.
// Context cancellation and deadline apply to every placement sub-query as
// in QueryCtx. Like all engine entry points, call it from App upcalls or
// through node.Invoke.
//
//lint:entry delivery
func (e *Engine) QueryKeywordsCtx(ctx context.Context, words []string, cb func(Result)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	clean := normalizeKeywords(words)
	d := e.space.Dims()
	if len(clean) == 0 || len(clean) > d {
		return fmt.Errorf("squid: keyword query needs 1..%d distinct words, got %d", d, len(clean))
	}
	queries := placementQueries(clean, d)

	agg := &Result{Query: queries[0]}
	remaining := len(queries)
	finish := func(r Result) {
		if r.Err != nil && agg.Err == nil {
			agg.Err = r.Err
		}
		agg.Matches = append(agg.Matches, r.Matches...)
		remaining--
		if remaining == 0 {
			agg.Matches = Dedup(agg.Matches)
			cb(*agg)
		}
	}
	for _, q := range queries {
		if _, err := e.QueryCtx(ctx, q, finish); err != nil {
			// A placement that failed to start counts as completed with its
			// error, so cb still fires exactly once after the rest drain.
			finish(Result{Query: q, Err: err})
		}
	}
	return nil
}

// QueryKeywordsStream is the streaming form of QueryKeywordsCtx: the
// positional placement sub-queries run as concurrent streams, their
// batches are multiplexed (deduplicated across placements — a combination
// element matches several placements) to deliver, and exactly one Done
// event follows once every placement finishes. Limit(k) applies to the
// deduplicated union: when k distinct elements have been delivered the
// remaining placement streams are cancelled. Keyword streams are not
// resumable — the placements' positions do not compose into one cursor —
// so WithCursor is rejected and Done carries no cursor; paginate a single
// query with QueryStream instead. The returned QueryIDs identify the
// placement streams (cancel them all to stop the keyword query). A
// non-nil error means nothing was started and deliver will never fire.
//
//lint:entry delivery
func (e *Engine) QueryKeywordsStream(ctx context.Context, words []string, deliver func(StreamEvent), opts ...QueryOption) ([]QueryID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.hasPos || cfg.exhausted {
		return nil, fmt.Errorf("squid: keyword streams are not resumable; paginate a single query with QueryStream")
	}
	clean := normalizeKeywords(words)
	d := e.space.Dims()
	if len(clean) == 0 || len(clean) > d {
		return nil, fmt.Errorf("squid: keyword query needs 1..%d distinct words, got %d", d, len(clean))
	}
	queries := placementQueries(clean, d)

	var (
		qids      []QueryID
		seen      = map[string]bool{}
		delivered int
		remaining = len(queries)
		finished  bool
		aggErr    error
	)
	done := func() {
		finished = true
		deliver(StreamEvent{Done: true, Err: aggErr})
	}
	mux := func(ev StreamEvent) {
		if finished {
			return
		}
		if ev.Done {
			// context.Canceled from placements we tore down after the limit
			// was met is expected, not a stream failure.
			if ev.Err != nil && aggErr == nil && !(delivered >= cfg.limit && cfg.limit > 0 && errors.Is(ev.Err, context.Canceled)) {
				aggErr = ev.Err
			}
			remaining--
			if remaining == 0 {
				done()
			}
			return
		}
		fresh := ev.Matches[:0:0]
		for _, m := range ev.Matches {
			if cfg.limit > 0 && delivered+len(fresh) >= cfg.limit {
				break
			}
			if seen[m.Data] {
				continue
			}
			seen[m.Data] = true
			fresh = append(fresh, m)
		}
		if len(fresh) == 0 {
			return
		}
		delivered += len(fresh)
		deliver(StreamEvent{QID: ev.QID, Matches: fresh})
		if cfg.limit > 0 && delivered >= cfg.limit {
			// The union's limit is met: tear down every placement still in
			// flight. Their Done events drain through the branch above.
			for _, id := range qids {
				e.CancelQuery(id)
			}
		}
	}
	for _, q := range queries {
		if cfg.limit > 0 && delivered >= cfg.limit {
			// An earlier placement already filled the union's limit
			// synchronously; this one need not start at all.
			mux(StreamEvent{Done: true})
			continue
		}
		var streamOpts []QueryOption
		if cfg.limit > 0 {
			// Each placement needs at most the union's k: its own early
			// termination saves refinement traffic even before the union
			// fills up.
			streamOpts = append(streamOpts, Limit(cfg.limit))
		}
		qid, err := e.QueryStreamFunc(ctx, q, mux, streamOpts...)
		if err != nil {
			mux(StreamEvent{QID: qid, Done: true, Err: err})
			continue
		}
		qids = append(qids, qid)
	}
	return qids, nil
}

// Dedup collapses matches that refer to the same element (same payload),
// needed when elements were published with PublishCombinations. Order of
// first occurrence is preserved.
func Dedup(matches []Element) []Element {
	seen := make(map[string]bool, len(matches))
	out := matches[:0:0]
	for _, m := range matches {
		if seen[m.Data] {
			continue
		}
		seen[m.Data] = true
		out = append(out, m)
	}
	return out
}
