package squid

import (
	"fmt"
	"sort"
	"strings"

	"squid/internal/keyspace"
)

// PublishCombinations indexes a data element described by more keywords
// than the space has dimensions, the situation the paper's storage
// use-case implies (a document has many descriptive words, the index is
// 2-D or 3-D): the keywords are sorted and every d-sized combination is
// published as its own tuple. A query whose exact terms are sorted the
// same way then meets at least one tuple of every matching element.
//
// Because one element now lives at several curve points, a broad query can
// return it multiple times; deduplicate with Dedup. Returns the number of
// tuples published.
func (e *Engine) PublishCombinations(keywords []string, data string) (int, error) {
	d := e.space.Dims()
	words := make([]string, 0, len(keywords))
	for _, w := range keywords {
		w = strings.TrimSpace(strings.ToLower(w))
		if w != "" {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	words = dedupSorted(words)
	if len(words) == 0 {
		return 0, fmt.Errorf("squid: no usable keywords for %q", data)
	}
	if len(words) <= d {
		if err := e.Publish(Element{Values: words, Data: data}); err != nil {
			return 0, err
		}
		return 1, nil
	}
	published := 0
	var rec func(start int, chosen []string) error
	rec = func(start int, chosen []string) error {
		if len(chosen) == d {
			if err := e.Publish(Element{Values: append([]string(nil), chosen...), Data: data}); err != nil {
				return err
			}
			published++
			return nil
		}
		for i := start; i <= len(words)-(d-len(chosen)); i++ {
			if err := rec(i+1, append(chosen, words[i])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, make([]string, 0, d)); err != nil {
		return published, err
	}
	return published, nil
}

func dedupSorted(ws []string) []string {
	out := ws[:0]
	for i, w := range ws {
		if i == 0 || w != ws[i-1] {
			out = append(out, w)
		}
	}
	return out
}

// QueryKeywords resolves a conjunctive keyword query against data
// published with PublishCombinations: the words are sorted (matching the
// publish-side ordering) and, when fewer words than dimensions are given,
// every positional placement is queried (a word may sit on any axis of a
// sorted combination tuple). cb receives a single aggregated, deduplicated
// result. Goroutine-confined like Query.
func (e *Engine) QueryKeywords(words []string, cb func(Result)) {
	clean := make([]string, 0, len(words))
	for _, w := range words {
		w = strings.TrimSpace(strings.ToLower(w))
		if w != "" {
			clean = append(clean, w)
		}
	}
	sort.Strings(clean)
	clean = dedupSorted(clean)
	d := e.space.Dims()
	if len(clean) == 0 || len(clean) > d {
		cb(Result{Err: fmt.Errorf("squid: keyword query needs 1..%d distinct words, got %d", d, len(clean))})
		return
	}
	// Every way to place the sorted words onto the d axes in order.
	var queries []keyspace.Query
	var place func(wi, dim int, cur keyspace.Query)
	place = func(wi, dim int, cur keyspace.Query) {
		if wi == len(clean) {
			q := append(keyspace.Query(nil), cur...)
			for len(q) < d {
				q = append(q, keyspace.Wildcard())
			}
			queries = append(queries, q)
			return
		}
		if d-dim < len(clean)-wi {
			return
		}
		place(wi+1, dim+1, append(cur, keyspace.Exact(clean[wi]))) // word here
		place(wi, dim+1, append(cur, keyspace.Wildcard()))         // skip axis
	}
	place(0, 0, make(keyspace.Query, 0, d))

	agg := &Result{Query: queries[0]}
	remaining := len(queries)
	for _, q := range queries {
		e.Query(q, func(r Result) {
			if r.Err != nil && agg.Err == nil {
				agg.Err = r.Err
			}
			agg.Matches = append(agg.Matches, r.Matches...)
			remaining--
			if remaining == 0 {
				agg.Matches = Dedup(agg.Matches)
				cb(*agg)
			}
		})
	}
}

// Dedup collapses matches that refer to the same element (same payload),
// needed when elements were published with PublishCombinations. Order of
// first occurrence is preserved.
func Dedup(matches []Element) []Element {
	seen := make(map[string]bool, len(matches))
	out := matches[:0:0]
	for _, m := range matches {
		if seen[m.Data] {
			continue
		}
		seen[m.Data] = true
		out = append(out, m)
	}
	return out
}
