package squid_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

var testVocab = []string{
	"computer", "computation", "company", "compiler", "network", "net",
	"node", "data", "database", "storage", "system", "grid", "peer",
	"discovery", "index", "query", "curve", "hilbert", "chord", "cost",
}

func buildNetwork(t testing.TB, nodes, elems int, opts squid.Options) *sim.Network {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 42, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]squid.Element, 0, elems)
	for i := 0; i < elems; i++ {
		batch = append(batch, squid.Element{
			Values: []string{testVocab[rng.Intn(len(testVocab))], testVocab[rng.Intn(len(testVocab))]},
			Data:   fmt.Sprintf("doc%d", i),
		})
	}
	if err := nw.Preload(batch); err != nil {
		t.Fatal(err)
	}
	return nw
}

// sortedData canonicalizes a result set for comparison.
func sortedData(elems []squid.Element) []string {
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = e.Data
	}
	sort.Strings(out)
	return out
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryCompleteness is the paper's central guarantee: every stored
// element matching a query is found — across exact, prefix, wildcard and
// range queries, initiated from arbitrary peers.
func TestQueryCompleteness(t *testing.T) {
	nw := buildNetwork(t, 40, 3000, squid.Options{})
	queries := []string{
		"(computer, network)",
		"(computer, *)",
		"(*, network)",
		"(comp*, *)",
		"(comp*, net*)",
		"(c-d, *)",
		"(data*, d*)",
		"(*, *)",
		"(zzz, *)",      // no matches
		"(n*, comp*)",   // both partial
		"(net, *)",      // exact short word
		"(grid, gr*)",   // mixed
		"(co-cz, da-e)", // word ranges
	}
	for qi, qs := range queries {
		q := keyspace.MustParse(qs)
		want := sortedData(nw.BruteForceMatches(q))
		res, qm := nw.Query(qi%len(nw.Peers), q)
		if res.Err != nil {
			t.Fatalf("%s: %v", qs, res.Err)
		}
		got := sortedData(res.Matches)
		if !equalSets(got, want) {
			t.Errorf("%s: got %d matches, brute force %d", qs, len(got), len(want))
			continue
		}
		if qm.Matches != len(want) {
			t.Errorf("%s: metrics counted %d matches, want %d", qs, qm.Matches, len(want))
		}
		// Data nodes are processing nodes.
		for id := range qm.DataNodes {
			if !qm.ProcessingNodes[id] {
				t.Errorf("%s: data node %x not marked processing", qs, uint64(id))
			}
		}
	}
}

func TestExactQueryIsSingleLookup(t *testing.T) {
	nw := buildNetwork(t, 30, 1000, squid.Options{})
	q := keyspace.MustParse("(computer, network)")
	res, qm := nw.Query(3, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := sortedData(nw.BruteForceMatches(q))
	if !equalSets(sortedData(res.Matches), want) {
		t.Errorf("exact query incomplete: %d vs %d", len(res.Matches), len(want))
	}
	if len(qm.ProcessingNodes) != 1 {
		t.Errorf("exact query touched %d processing nodes, want 1", len(qm.ProcessingNodes))
	}
	if qm.ClusterMessages != 0 {
		t.Errorf("exact query sent %d cluster messages, want 0", qm.ClusterMessages)
	}
}

func TestPublishThenQuery(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 20, Space: space, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		elem := squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i*3)%len(testVocab)]},
			Data:   fmt.Sprintf("pub%d", i),
		}
		if err := nw.Publish(i%len(nw.Peers), elem); err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()
	res, _ := nw.Query(0, keyspace.MustParse("(*, *)"))
	if len(res.Matches) != 50 {
		t.Errorf("published 50, wildcard query found %d", len(res.Matches))
	}
	// Every element must be stored at its oracle owner.
	for i := 0; i < 50; i++ {
		elem := squid.Element{
			Values: []string{testVocab[i%len(testVocab)], testVocab[(i*3)%len(testVocab)]},
		}
		idx, err := space.Index(elem.Values)
		if err != nil {
			t.Fatal(err)
		}
		owner := nw.SuccessorOf(idx)
		found := false
		done := make(chan struct{})
		owner.Node.Invoke(func() {
			for _, e := range owner.Engine.LocalStore().At(idx) {
				_ = e
				found = true
			}
			close(done)
		})
		<-done
		if !found {
			t.Errorf("element %d not at oracle owner", i)
		}
	}
}

func TestAggregationReducesMessages(t *testing.T) {
	withAgg := buildNetwork(t, 60, 4000, squid.Options{})
	noAgg := buildNetwork(t, 60, 4000, squid.Options{DisableAggregation: true})

	q := keyspace.MustParse("(comp*, *)")
	resA, qmA := withAgg.Query(0, q)
	resN, qmN := noAgg.Query(0, q)
	if resA.Err != nil || resN.Err != nil {
		t.Fatal(resA.Err, resN.Err)
	}
	if !equalSets(sortedData(resA.Matches), sortedData(resN.Matches)) {
		t.Fatalf("aggregation changed results: %d vs %d", len(resA.Matches), len(resN.Matches))
	}
	if len(resA.Matches) == 0 {
		t.Fatal("query should match something")
	}
	// Identical data and ring (same seeds) — aggregation must not increase
	// the number of sub-query payload messages.
	aggPayload := qmA.ClusterMessages
	noPayload := qmN.ClusterMessages + qmN.RouteMessages // blind-routed clusters travel as RouteMsg hops
	if aggPayload >= noPayload {
		t.Errorf("aggregation did not reduce payload messages: %d vs %d", aggPayload, noPayload)
	}
	if len(qmA.ProcessingNodes) == 0 || len(qmN.ProcessingNodes) == 0 {
		t.Error("processing node sets empty")
	}
}

func TestQueryMetricsShape(t *testing.T) {
	nw := buildNetwork(t, 50, 5000, squid.Options{})
	res, qm := nw.Query(7, keyspace.MustParse("(d*, *)"))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("expected matches")
	}
	n := len(nw.Peers)
	if p := len(qm.ProcessingNodes); p == 0 || p >= n {
		t.Errorf("processing nodes = %d of %d", p, n)
	}
	if d := len(qm.DataNodes); d == 0 || d > len(qm.ProcessingNodes) {
		t.Errorf("data nodes = %d, processing = %d", d, len(qm.ProcessingNodes))
	}
	if qm.Messages() == 0 {
		t.Error("no messages counted")
	}
	if qm.TotalTransmissions() < qm.Messages() {
		t.Error("total transmissions < forward messages")
	}
}

func TestQueryErrors(t *testing.T) {
	nw := buildNetwork(t, 10, 100, squid.Options{})
	p := nw.Peers[0]
	// Over-long query errors.
	resCh := make(chan squid.Result, 1)
	p.Node.Invoke(func() {
		p.Engine.Query(keyspace.MustParse("(a, b, c)"), func(r squid.Result) { resCh <- r })
	})
	if r := <-resCh; r.Err == nil {
		t.Error("over-long query should error")
	}
	// Unencodable characters (within the axis' discriminated slots) error.
	p.Node.Invoke(func() {
		p.Engine.Query(keyspace.Query{keyspace.Exact("b_d")}, func(r squid.Result) { resCh <- r })
	})
	if r := <-resCh; r.Err == nil {
		t.Error("unencodable query should error")
	}
}

func TestQueryAfterChurn(t *testing.T) {
	nw := buildNetwork(t, 25, 2000, squid.Options{})
	before := nw.TotalKeys()

	// Protocol-join five new peers and remove three existing ones.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5; i++ {
		id := rng.Uint64() & ((1 << 32) - 1)
		if _, err := nw.AddPeer(chord.ID(id)); err != nil {
			t.Fatalf("add peer: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		nw.RemovePeer(rng.Intn(len(nw.Peers)))
	}
	nw.StabilizeAll(3)

	if after := nw.TotalKeys(); after != before {
		t.Errorf("churn lost keys: %d -> %d", before, after)
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring inconsistent after churn: %v", err)
	}
	for _, qs := range []string{"(comp*, *)", "(*, net*)", "(data, *)"} {
		q := keyspace.MustParse(qs)
		want := sortedData(nw.BruteForceMatches(q))
		res, _ := nw.Query(0, q)
		if res.Err != nil {
			t.Fatalf("%s: %v", qs, res.Err)
		}
		if !equalSets(sortedData(res.Matches), want) {
			t.Errorf("%s after churn: %d matches, want %d", qs, len(res.Matches), len(want))
		}
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	nw := buildNetwork(t, 1, 200, squid.Options{})
	q := keyspace.MustParse("(comp*, *)")
	want := sortedData(nw.BruteForceMatches(q))
	res, qm := nw.Query(0, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !equalSets(sortedData(res.Matches), want) {
		t.Errorf("singleton: %d matches, want %d", len(res.Matches), len(want))
	}
	if len(qm.ProcessingNodes) > 1 {
		t.Errorf("singleton processing nodes = %d", len(qm.ProcessingNodes))
	}
}

// TestProcessingScalesSublinearly reproduces the qualitative claim of
// Fig. 9: processing nodes are a small fraction of the network and data
// nodes are close to processing nodes.
func TestProcessingScalesSublinearly(t *testing.T) {
	nw := buildNetwork(t, 120, 8000, squid.Options{})
	res, qm := nw.Query(0, keyspace.MustParse("(comp*, *)"))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	p, d := len(qm.ProcessingNodes), len(qm.DataNodes)
	if p >= len(nw.Peers)/2 {
		t.Errorf("processing nodes %d should be well below network size %d", p, len(nw.Peers))
	}
	if d == 0 {
		t.Error("no data nodes")
	}
	if p < d {
		t.Errorf("processing %d < data %d", p, d)
	}
}
