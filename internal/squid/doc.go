// Package squid implements the paper's primary contribution: a P2P
// information-discovery engine supporting keyword, partial-keyword,
// wildcard and range queries with the guarantee that every stored matching
// data element is found, at bounded message/node cost (Schmidt & Parashar,
// "Flexible Information Discovery in Decentralized Distributed Systems",
// HPDC 2003).
//
// An Engine is the application attached to one chord.Node. Data elements
// are tuples of keyword/attribute values; the keyspace.Space maps a tuple
// to a Hilbert-curve index, and the element is stored at the index's
// successor on the ring. A flexible query maps to a region of the keyword
// space whose curve decomposition is a set of clusters; the engine
// resolves the query by embedding the cluster refinement tree into the
// ring (Section 3.4.2):
//
//  1. The initiator computes the first levels of the refinement tree
//     locally and dispatches each initial cluster toward the node owning
//     its lowest index.
//  2. A node receiving a cluster scans the part of the cluster's span it
//     owns against its local store, refines the remainder (pruning
//     subtrees whose subcubes miss the query region — and, implicitly,
//     subtrees that lead only to empty parts of the sparse keyword space,
//     because recursion stops where no further nodes own data), and
//     forwards the remote children.
//  3. With the aggregation optimization (Section 3.4.3), remote children
//     are sorted and dispatched in batches: the engine probes the owner of
//     the first child (one FindSuccessor), learns the owner's arc from the
//     reply, and ships every sibling falling in that arc as a single
//     message.
//
// Termination is detected by spawn accounting: every processed cluster
// message reports to the initiator how many child messages it spawned; the
// query completes when the initiator's outstanding count returns to zero.
// Exact queries short-circuit to a single DHT lookup.
package squid
