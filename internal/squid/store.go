package squid

import (
	"sort"
	"sync"

	"squid/internal/chord"
	"squid/internal/sfc"
)

// Element is one published data element: the tuple of keyword/attribute
// values that indexes it (one value per dimension of the keyword space) and
// an opaque payload (document name, resource URI, ...).
type Element struct {
	Values []string
	Data   string
}

// Store is a node's local fragment of the distributed index: elements
// keyed by their curve index, with ordered access for cluster span scans.
//
// Mutations are confined to the node's delivery goroutine, like all engine
// state. Reads additionally happen on query-scheduler workers, so an
// internal RWMutex makes every read atomic with respect to concurrent
// mutation: a span scan sees either all or none of a handover, never half
// of one.
type Store struct {
	mu    sync.RWMutex
	space chord.Space
	byKey map[uint64][]Element //lint:guarded-by mu
	// sorted holds the keys in ascending order.
	sorted []uint64 //lint:guarded-by mu

	// dirty accumulates keys mutated since the last TakeDirty, for delta
	// replication pushes. nil unless TrackDirty was called: stores that are
	// never replicated (replica buffers, Replicas=0 deployments) skip the
	// bookkeeping entirely.
	dirty map[uint64]struct{} //lint:guarded-by mu
}

// NewStore returns an empty store over the given identifier space.
func NewStore(space chord.Space) *Store {
	return &Store{space: space, byKey: make(map[uint64][]Element)}
}

// TrackDirty enables dirty-key tracking. Mutations from this point on are
// recorded and handed out by TakeDirty.
func (s *Store) TrackDirty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty == nil {
		s.dirty = make(map[uint64]struct{})
	}
}

//lint:holds s.mu
func (s *Store) markDirty(key uint64) {
	if s.dirty != nil {
		s.dirty[key] = struct{}{}
	}
}

// TakeDirty appends the tracked dirty keys to dst in ascending order and
// clears the tracking set. Keys whose items were since removed entirely are
// skipped (deletions are not delta-replicated; they age out on full pushes).
func (s *Store) TakeDirty(dst []uint64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := len(dst)
	for k := range s.dirty {
		if _, ok := s.byKey[k]; ok {
			dst = append(dst, k)
		}
		delete(s.dirty, k)
	}
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return dst
}

// SnapshotKeys copies the stored items under exactly the given keys (the
// delta counterpart of Snapshot). Keys with nothing stored are skipped.
func (s *Store) SnapshotKeys(keys []uint64) []chord.Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]chord.Item, 0, len(keys))
	for _, k := range keys {
		if bucket, ok := s.byKey[k]; ok {
			out = append(out, chord.Item{Key: chord.ID(k), Value: append([]Element(nil), bucket...)})
		}
	}
	return out
}

// Add stores an element under its curve index. Multiple elements may share
// a key (distinct documents with the same keyword tuple, or tuples that
// truncate to the same coordinates).
func (s *Store) Add(key uint64, e Element) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(key, e)
}

func (s *Store) addLocked(key uint64, e Element) {
	if _, exists := s.byKey[key]; !exists {
		i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= key })
		s.sorted = append(s.sorted, 0)
		copy(s.sorted[i+1:], s.sorted[i:])
		s.sorted[i] = key
	}
	s.byKey[key] = append(s.byKey[key], e)
	s.markDirty(key)
}

// Keys returns the number of distinct keys stored — the paper's load
// metric.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKey)
}

// Elements returns the total number of stored elements.
func (s *Store) Elements() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.byKey {
		n += len(b)
	}
	return n
}

// ScanSpan calls fn for every stored element whose key lies in the
// inclusive index interval. The read lock is held for the whole scan, so
// fn must not mutate the store; scheduler workers rely on the scan being
// atomic with respect to concurrent handovers.
func (s *Store) ScanSpan(span sfc.Interval, fn func(key uint64, e Element)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= span.Lo })
	for ; i < len(s.sorted) && s.sorted[i] <= span.Hi; i++ {
		k := s.sorted[i]
		for _, e := range s.byKey[k] {
			fn(k, e)
		}
	}
}

// At returns the elements stored under exactly key. The returned slice is
// the live bucket: callers must not retain it across a mutation (all
// current callers run on the delivery goroutine and consume it in place).
func (s *Store) At(key uint64) []Element {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byKey[key]
}

// Snapshot copies every stored item (for replication pushes).
func (s *Store) Snapshot() []chord.Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]chord.Item, 0, len(s.sorted))
	for _, k := range s.sorted {
		out = append(out, chord.Item{Key: chord.ID(k), Value: append([]Element(nil), s.byKey[k]...)})
	}
	return out
}

// AddUnique stores the element unless an identical one (same values and
// payload) already exists under the key; reports whether it was added.
// Replication uses it so repeated pushes and promotions never duplicate.
func (s *Store) AddUnique(key uint64, e Element) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.contains(key, e) {
		return false
	}
	s.addLocked(key, e)
	return true
}

//lint:holds s.mu
func (s *Store) contains(key uint64, e Element) bool {
	for _, have := range s.byKey[key] {
		if have.Data == e.Data && equalValues(have.Values, e.Values) {
			return true
		}
	}
	return false
}

// AddBatch bulk-loads items: elements are appended to their key buckets and
// all fresh keys are merged into the sorted index in one pass, so loading n
// items costs O(n log n + existing) instead of the O(n·existing) of n Add
// calls. Non-element item values are skipped.
func (s *Store) AddBatch(items []chord.Item) {
	s.addBatch(items, false)
}

// AddBatchUnique is AddBatch with AddUnique's dedup semantics; it returns
// how many elements were actually added.
func (s *Store) AddBatchUnique(items []chord.Item) int {
	return s.addBatch(items, true)
}

func (s *Store) addBatch(items []chord.Item, unique bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	var fresh []uint64
	for _, it := range items {
		bucket, ok := it.Value.([]Element)
		if !ok {
			continue
		}
		key := uint64(it.Key)
		for _, e := range bucket {
			if unique && s.contains(key, e) {
				continue
			}
			if _, exists := s.byKey[key]; !exists {
				fresh = append(fresh, key)
			}
			s.byKey[key] = append(s.byKey[key], e)
			s.markDirty(key)
			added++
		}
	}
	if len(fresh) > 0 {
		s.mergeSorted(fresh)
	}
	return added
}

// mergeSorted merges the fresh (unsorted, duplicate-free) keys into the
// ascending key index.
//
//lint:holds s.mu
func (s *Store) mergeSorted(fresh []uint64) {
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	old := s.sorted
	merged := make([]uint64, 0, len(old)+len(fresh))
	i, j := 0, 0
	for i < len(old) && j < len(fresh) {
		if old[i] <= fresh[j] {
			merged = append(merged, old[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, old[i:]...)
	merged = append(merged, fresh[j:]...)
	s.sorted = merged
}

func equalValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Remove deletes the first stored element under key equal to e (same
// values and payload); reports whether anything was removed.
func (s *Store) Remove(key uint64, e Element) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	bucket, ok := s.byKey[key]
	if !ok {
		return false
	}
	for i, have := range bucket {
		if have.Data == e.Data && equalValues(have.Values, e.Values) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(s.byKey, key)
				j := sort.Search(len(s.sorted), func(j int) bool { return s.sorted[j] >= key })
				if j < len(s.sorted) && s.sorted[j] == key {
					s.sorted = append(s.sorted[:j], s.sorted[j+1:]...)
				}
			} else {
				s.byKey[key] = bucket
			}
			s.markDirty(key)
			return true
		}
	}
	return false
}

// MedianKey returns the median stored key — the split point the runtime
// load-balancing algorithms use to halve a node's arc. ok is false when
// the store is empty.
func (s *Store) MedianKey() (key uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.sorted) == 0 {
		return 0, false
	}
	return s.sorted[len(s.sorted)/2], true
}

// HandoverOut removes and returns all items whose keys lie in the ring arc
// (a, b], for transfer to a new owner.
func (s *Store) HandoverOut(a, b chord.ID) []chord.Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var items []chord.Item
	kept := s.sorted[:0]
	for _, k := range s.sorted {
		if s.space.Between(chord.ID(k), a, b) {
			items = append(items, chord.Item{Key: chord.ID(k), Value: s.byKey[k]})
			delete(s.byKey, k)
		} else {
			kept = append(kept, k)
		}
	}
	s.sorted = kept
	return items
}

// replaceWith adopts o's contents wholesale (restart reconciliation). The
// receiver's own lock stays in place — copying a Store by value would copy
// its RWMutex.
func (s *Store) replaceWith(o *Store) {
	s.mu.Lock()
	o.mu.Lock()
	s.byKey, s.sorted, s.dirty = o.byKey, o.sorted, o.dirty
	o.mu.Unlock()
	s.mu.Unlock()
}

// HandoverIn ingests items transferred from another node.
func (s *Store) HandoverIn(items []chord.Item) {
	s.AddBatch(items)
}
