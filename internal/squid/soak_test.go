package squid_test

import (
	"fmt"
	"math/rand"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

// TestChurnSoak runs many rounds of randomized churn — joins, graceful
// leaves, abrupt failures, publishes — verifying after each stabilized
// round that the ring is consistent and queries return exactly the
// brute-force ground truth. With replication enabled, even abrupt
// failures must not lose data.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: 20, Space: space, Seed: 77,
		Engine:          squid.Options{Replicas: 2},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))

	var live []squid.Element
	published := 0
	publish := func(n int) {
		for i := 0; i < n; i++ {
			e := squid.Element{
				Values: []string{randSoakWord(rng), randSoakWord(rng)},
				Data:   fmt.Sprintf("soak-%05d", published),
			}
			if err := nw.Publish(rng.Intn(len(nw.Peers)), e); err != nil {
				t.Fatal(err)
			}
			live = append(live, e)
			published++
		}
		nw.Quiesce()
		nw.PushReplicasAll()
	}
	unpublish := func(n int) {
		for i := 0; i < n && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			e := live[j]
			live = append(live[:j], live[j+1:]...)
			p := nw.Peers[rng.Intn(len(nw.Peers))]
			errCh := make(chan error, 1)
			p.Node.Invoke(func() { errCh <- p.Engine.Unpublish(e) })
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		}
		nw.Quiesce()
	}
	publish(400)

	queries := []keyspace.Query{
		keyspace.MustParse("(a*, *)"),
		keyspace.MustParse("(*, m*)"),
		keyspace.MustParse("(b-f, *)"),
		keyspace.MustParse("(*, *)"),
	}
	verify := func(round int, allowLoss bool) {
		if err := nw.VerifyConsistent(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, q := range queries {
			want := len(nw.BruteForceMatches(q))
			res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
			if res.Err != nil {
				t.Fatalf("round %d: %s: %v", round, q, res.Err)
			}
			if len(res.Matches) != want {
				t.Fatalf("round %d: %s found %d, ground truth %d", round, q, len(res.Matches), want)
			}
		}
		if !allowLoss {
			res, _ := nw.Query(0, keyspace.MustParse("(*, *)"))
			if len(res.Matches) != len(live) {
				t.Fatalf("round %d: %d/%d elements surviving", round, len(res.Matches), len(live))
			}
		}
	}

	for round := 0; round < 15; round++ {
		switch rng.Intn(5) {
		case 0: // join
			id := chord.ID(rng.Uint64() & ((1 << 32) - 1))
			if _, err := nw.AddPeer(id); err != nil {
				t.Logf("round %d: join refused: %v", round, err)
			}
		case 1: // graceful leave (keep a quorum)
			if len(nw.Peers) > 8 {
				nw.RemovePeer(rng.Intn(len(nw.Peers)))
			}
		case 2: // abrupt failure
			if len(nw.Peers) > 8 {
				nw.KillPeer(rng.Intn(len(nw.Peers)))
			}
		case 3: // more data
			publish(50)
		case 4: // removals
			unpublish(20)
		}
		nw.StabilizeAll(8)
		nw.PushReplicasAll()
		verify(round, false)
	}
	if n := nw.RingViolations(); n != 0 {
		t.Fatalf("%d hard ring violations during soak (checker runs after every stabilization round)", n)
	}
	t.Logf("soak done: %d peers, %d elements, all queries exact, zero hard ring violations", len(nw.Peers), published)
}

func randSoakWord(rng *rand.Rand) string {
	b := make([]byte, 3+rng.Intn(5))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
