package squid_test

import (
	"fmt"
	"sort"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

// TestWrapArcNoDoubleCount is the regression test for a subtle query-engine
// bug: the node whose arc wraps the top of the index space owns two
// disjoint linear runs of keys. A broad cluster covering both runs must
// not be fully scanned there — otherwise the wrap-segment keys are counted
// once by that scan and again when refinement routes the wrap subclusters
// back. The engine scans per contiguous owned run (see
// Engine.processClusters); this test pins elements into both runs of the
// wrap node and checks exact counts for queries of every breadth.
func TestWrapArcNoDoubleCount(t *testing.T) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Build the corpus first so ring identifiers can be placed at key
	// quantiles: the lowest node (15th percentile) then owns a wrap arc
	// containing both the bottom 15% and the top 10% of keys.
	var elems []squid.Element
	var keys []uint64
	for a := 0; a < 26; a++ {
		for b := 0; b < 26; b += 2 {
			e := squid.Element{
				Values: []string{string(rune('a' + a)), string(rune('a' + b))},
				Data:   fmt.Sprintf("e-%c%c", 'a'+a, 'a'+b),
			}
			idx, err := space.Index(e.Values)
			if err != nil {
				t.Fatal(err)
			}
			elems = append(elems, e)
			keys = append(keys, idx)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	quantile := func(p float64) uint64 { return keys[int(p*float64(len(keys)-1))] }
	nw, err := sim.BuildWithIDs(sim.Config{Space: space}, []uint64{
		quantile(0.15) + 1, quantile(0.35), quantile(0.55), quantile(0.75), quantile(0.90),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range elems {
		if err := nw.Publish(i%len(nw.Peers), e); err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()

	wrap := nw.Peers[0] // lowest id owns the wrap arc
	wrapID := uint64(wrap.Node.Self().ID)
	lowRun, highRun := 0, 0
	done := make(chan struct{})
	wrap.Node.Invoke(func() {
		st := wrap.Engine.LocalStore()
		for _, it := range st.Snapshot() {
			if uint64(it.Key) <= wrapID {
				lowRun += len(it.Value.([]squid.Element))
			} else {
				highRun += len(it.Value.([]squid.Element))
			}
		}
		close(done)
	})
	<-done
	if lowRun == 0 || highRun == 0 {
		t.Fatalf("test setup must load both runs of the wrap node (low=%d high=%d)", lowRun, highRun)
	}

	for _, qs := range []string{"(*, *)", "(a-z, *)", "(*, a*)", "(m*, *)"} {
		q := keyspace.MustParse(qs)
		want := len(nw.BruteForceMatches(q))
		for via := range nw.Peers {
			res, _ := nw.Query(via, q)
			if res.Err != nil {
				t.Fatalf("%s via %d: %v", qs, via, res.Err)
			}
			if len(res.Matches) != want {
				t.Errorf("%s via peer %d: got %d matches, want %d", qs, via, len(res.Matches), want)
			}
		}
	}
}
