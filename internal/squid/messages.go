package squid

import (
	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// PublishMsg carries a data element to the node owning its curve index.
type PublishMsg struct {
	Elem Element
}

// UnpublishMsg removes a previously published element at its index owner;
// replica holders receive the same message via the owner's fan-out.
type UnpublishMsg struct {
	Elem    Element
	Replica bool // true when fanned out to replica holders
}

// LookupMsg resolves an exact query (all terms exact → a single index) at
// the index's owner, which answers ReplyTo with a SubResultMsg carrying
// Token.
type LookupMsg struct {
	QID     QueryID
	Query   keyspace.Query
	Key     uint64
	ReplyTo transport.Addr
	Token   uint64
	// Trace is the tracing context of the dispatching subtree. Old-format
	// payloads decode it as the zero ref, which OrRoot defaults to a root
	// span — wire compatibility is a protocol promise.
	Trace telemetry.TraceRef
}

// ClusterRef is a cluster of the query's refinement tree in transit:
// prefix/level per sfc.Cluster plus the Complete flag (subcube entirely
// inside the query region).
type ClusterRef struct {
	Prefix   uint64
	Level    int
	Complete bool
}

func toRefs(in []sfc.Refined) []ClusterRef {
	out := make([]ClusterRef, len(in))
	for i, c := range in {
		out[i] = ClusterRef{Prefix: c.Prefix, Level: c.Level, Complete: c.Complete}
	}
	return out
}

func fromRefs(in []ClusterRef) []sfc.Refined {
	out := make([]sfc.Refined, len(in))
	for i, c := range in {
		out[i] = sfc.Refined{Cluster: sfc.Cluster{Prefix: c.Prefix, Level: c.Level}, Complete: c.Complete}
	}
	return out
}

// ClusterQueryMsg ships one or more clusters of a query's refinement tree
// to the node owning their lowest indices. With the aggregation
// optimization a message batches all sibling clusters owned by one node.
//
// ReplyTo/Token name the sender's subtree: the receiver answers with one
// SubResultMsg carrying Token once its whole subtree of the refinement
// tree has completed. Results therefore flow up the query tree
// (Dijkstra-Scholten-style termination), which keeps completion detection
// independent of message ordering across transports.
type ClusterQueryMsg struct {
	QID      QueryID
	Query    keyspace.Query
	Clusters []ClusterRef
	ReplyTo  transport.Addr
	Token    uint64
	// Ack asks the receiver to confirm receipt with a QueryAckMsg before
	// processing. Dispatchers running a recovery deadline set it so a
	// slow-but-alive subtree can be told apart from a lost one.
	Ack bool
	// Stream marks a subtree of a streaming query: the receiver forwards
	// matches toward ReplyTo incrementally (PartialResultMsg) as its own
	// children complete, instead of holding everything for the terminal
	// SubResultMsg, and propagates the flag to its own dispatches. The final
	// SubResultMsg then carries only the not-yet-forwarded remainder.
	Stream bool
	// Trace is the tracing context of the dispatching subtree (see
	// LookupMsg.Trace for the old-format default).
	Trace telemetry.TraceRef
}

// QueryAckMsg confirms receipt of a ClusterQueryMsg (sent only when the
// dispatcher asked via Ack). It re-arms the dispatcher's re-dispatch
// deadline: the subtree is known to be in progress, not lost in transit.
type QueryAckMsg struct {
	QID   QueryID
	Token uint64
}

// BatchMsg coalesces every same-destination ClusterQueryMsg of one
// dispatch round into a single transmission — the batched-dispatch
// counterpart of the paper's aggregation optimization. Receivers unpack
// and handle the entries in order, exactly as if they had arrived as
// separate messages; each entry keeps its own token, ack request, and
// trace context. Single-entry rounds are sent as plain ClusterQueryMsg, so
// peers that predate batching interoperate unchanged (the gob wire-compat
// tests pin both directions).
type BatchMsg struct {
	Queries []ClusterQueryMsg
}

// QueryShedMsg tells a dispatcher that the receiver refused its
// ClusterQueryMsg under admission control: the subtree was not processed
// and no SubResultMsg will come. The dispatcher maps the shed onto its
// recovery path — re-dispatch after RetryAfterMS (counting against the
// subtree's retry budget), or degrade to a partial result when no recovery
// machinery is armed. Old peers never send it; old receivers ignore it.
type QueryShedMsg struct {
	QID   QueryID
	Token uint64
	// RetryAfterMS is the shedding node's backoff hint in milliseconds,
	// derived from its queue depth.
	RetryAfterMS int64
}

// SubResultMsg reports a completed subtree of the query's refinement tree
// to its parent: all matches found in that subtree. Incomplete marks a
// subtree that abandoned part of its refinement to failures; it propagates
// up so the root can degrade to an explicit partial Result instead of a
// silently short one.
type SubResultMsg struct {
	QID        QueryID
	Token      uint64
	Matches    []Element
	Incomplete bool
	// Spans carries the subtree's collected trace spans up toward the query
	// root (empty when the query is not sampled). Old-format receivers
	// ignore the field; old-format senders omit it.
	Spans []telemetry.Span
}

// PartialResultMsg streams one increment of a subtree's matches toward the
// query root before the subtree completes: the dispatching subtree's local
// matches as soon as its own refinement finishes, and each child batch as
// it reports. Token names the parent's child call, exactly as in
// SubResultMsg; the parent appends the matches without advancing its
// completion accounting (only the terminal SubResultMsg does that), so
// streaming rides the existing Dijkstra-Scholten termination unchanged.
// Sent only inside subtrees flagged ClusterQueryMsg.Stream; stragglers
// arriving after the child completed or was abandoned are dropped like
// straggler SubResultMsgs.
type PartialResultMsg struct {
	QID     QueryID
	Token   uint64
	Matches []Element
}

// QueryCancelMsg tears down an in-flight remote subtree: the dispatcher no
// longer needs its result (top-k satisfied, context cancelled, consumer
// stopped a stream). Token is the receiver's parentToken — the token the
// dispatcher assigned the child — and ReplyTo identifies the dispatcher, so
// the pair addresses the subtree even when the message rode the ring
// through intermediate hops. The receiver abandons the subtree, sends no
// SubResultMsg, and recursively cancels its own outstanding children. Best
// effort: a lost cancel only costs the work it would have saved.
type QueryCancelMsg struct {
	QID     QueryID
	Token   uint64
	ReplyTo transport.Addr
}

// ClientPublishMsg lets a non-member client (squidctl) publish through any
// ring node: the receiving engine indexes and routes the element.
type ClientPublishMsg struct {
	Elem Element
}

// ClientUnpublishMsg lets a client remove an element through any ring
// node.
type ClientUnpublishMsg struct {
	Elem Element
}

// ClientQueryMsg lets a client run a flexible query through any ring node;
// the node acts as the query root and answers ReplyTo with a
// ClientResultMsg carrying Token. Limit > 0 asks for top-k: the node runs
// the query as a Limit(k) stream, so refinement past the k-th match is
// never dispatched.
type ClientQueryMsg struct {
	Query   string // keyspace query syntax, e.g. "(comp*, *)"
	ReplyTo transport.Addr
	Token   uint64
	Limit   int
}

// ClientResultMsg answers a ClientQueryMsg. QID is the ring-side query
// identifier, which clients feed to the trace endpoint (squidctl trace).
type ClientResultMsg struct {
	Token   uint64
	QID     QueryID
	Matches []Element
	Err     string
}

func init() {
	transport.Register(PublishMsg{})
	transport.Register(UnpublishMsg{})
	transport.Register(LookupMsg{})
	transport.Register(ClusterQueryMsg{})
	transport.Register(BatchMsg{})
	transport.Register(QueryAckMsg{})
	transport.Register(QueryShedMsg{})
	transport.Register(SubResultMsg{})
	transport.Register(PartialResultMsg{})
	transport.Register(QueryCancelMsg{})
	transport.Register(ClientPublishMsg{})
	transport.Register(ClientUnpublishMsg{})
	transport.Register(ClientQueryMsg{})
	transport.Register(ClientResultMsg{})
	transport.Register(Element{})
	transport.Register([]Element{})
	transport.Register(keyspace.Query{})
	transport.Register(keyspace.Term{})
}
