package squid

import (
	"testing"

	"squid/internal/chord"
	"squid/internal/sfc"
)

func TestStoreAddScan(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	s.Add(100, Element{Data: "a"})
	s.Add(50, Element{Data: "b"})
	s.Add(100, Element{Data: "c"}) // same key, second element
	s.Add(200, Element{Data: "d"})

	if s.Keys() != 3 {
		t.Errorf("Keys = %d, want 3", s.Keys())
	}
	if s.Elements() != 4 {
		t.Errorf("Elements = %d, want 4", s.Elements())
	}
	if got := s.At(100); len(got) != 2 {
		t.Errorf("At(100) = %v", got)
	}

	var seen []string
	s.ScanSpan(sfc.Interval{Lo: 50, Hi: 150}, func(k uint64, e Element) {
		seen = append(seen, e.Data)
	})
	if len(seen) != 3 || seen[0] != "b" { // 50 first (ordered), then 100's two
		t.Errorf("ScanSpan = %v", seen)
	}

	var none []string
	s.ScanSpan(sfc.Interval{Lo: 300, Hi: 400}, func(k uint64, e Element) { none = append(none, e.Data) })
	if none != nil {
		t.Errorf("empty span scan = %v", none)
	}
}

func TestStoreScanOrdered(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	for _, k := range []uint64{500, 10, 300, 200, 400, 100} {
		s.Add(k, Element{Data: "x"})
	}
	var keys []uint64
	s.ScanSpan(sfc.Interval{Lo: 0, Hi: 1 << 15}, func(k uint64, e Element) { keys = append(keys, k) })
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan not ordered: %v", keys)
		}
	}
}

func TestStoreHandover(t *testing.T) {
	s := NewStore(chord.Space{Bits: 8})
	for k := uint64(0); k < 256; k += 16 {
		s.Add(k, Element{Data: "x"})
	}
	// Plain arc (64, 128].
	items := s.HandoverOut(64, 128)
	for _, it := range items {
		if !(uint64(it.Key) > 64 && uint64(it.Key) <= 128) {
			t.Errorf("handover leaked key %d", it.Key)
		}
	}
	if len(items) != 4 { // 80, 96, 112, 128
		t.Errorf("handover moved %d keys, want 4", len(items))
	}
	if s.Keys() != 12 {
		t.Errorf("%d keys left, want 12", s.Keys())
	}

	// Wrapping arc (240, 16].
	wrap := s.HandoverOut(240, 16)
	var wrapped []uint64
	for _, it := range wrap {
		wrapped = append(wrapped, uint64(it.Key))
	}
	if len(wrapped) != 2 { // 0, 16 (240 excluded, 256 doesn't exist)
		t.Errorf("wrapping handover = %v", wrapped)
	}

	// Round trip back in.
	other := NewStore(chord.Space{Bits: 8})
	other.HandoverIn(items)
	if other.Keys() != 4 {
		t.Errorf("handover-in got %d keys", other.Keys())
	}
	// Scan order must remain intact after handover-in.
	var keys []uint64
	other.ScanSpan(sfc.Interval{Lo: 0, Hi: 255}, func(k uint64, e Element) { keys = append(keys, k) })
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("unordered after HandoverIn: %v", keys)
		}
	}
}

func TestStoreHandoverFullRing(t *testing.T) {
	s := NewStore(chord.Space{Bits: 8})
	s.Add(10, Element{})
	s.Add(20, Element{})
	items := s.HandoverOut(5, 5) // a == b: the whole ring
	if len(items) != 2 || s.Keys() != 0 {
		t.Errorf("full-ring handover moved %d, left %d", len(items), s.Keys())
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	a := Element{Values: []string{"x"}, Data: "a"}
	b := Element{Values: []string{"x"}, Data: "b"}
	s.Add(100, a)
	s.Add(100, b)
	s.Add(200, a)

	if !s.Remove(100, a) {
		t.Fatal("remove existing failed")
	}
	if s.Remove(100, a) {
		t.Error("double remove should fail")
	}
	if got := s.At(100); len(got) != 1 || got[0].Data != "b" {
		t.Errorf("bucket after remove = %v", got)
	}
	// Removing the last element of a bucket clears the key from scans.
	if !s.Remove(200, a) {
		t.Fatal("remove at 200 failed")
	}
	var keys []uint64
	s.ScanSpan(sfc.Interval{Lo: 0, Hi: 1<<16 - 1}, func(k uint64, _ Element) { keys = append(keys, k) })
	if len(keys) != 1 || keys[0] != 100 {
		t.Errorf("keys after removals = %v", keys)
	}
	if s.Remove(999, a) {
		t.Error("remove from absent key should fail")
	}
}

func TestStoreAddBatchEquivalence(t *testing.T) {
	seq := NewStore(chord.Space{Bits: 16})
	bat := NewStore(chord.Space{Bits: 16})
	elems := []struct {
		key  uint64
		data string
	}{
		{300, "a"}, {100, "b"}, {300, "c"}, {50, "d"}, {200, "e"},
		{100, "f"}, {7, "g"}, {65535, "h"}, {0, "i"}, {200, "j"},
	}
	var items []chord.Item
	for _, e := range elems {
		seq.Add(e.key, Element{Data: e.data})
		items = append(items, chord.Item{Key: chord.ID(e.key), Value: []Element{{Data: e.data}}})
	}
	// Half pre-loaded one by one, half batched: exercises merging fresh
	// keys into an existing sorted index.
	bat.Add(100, Element{Data: "b"})
	bat.Add(50, Element{Data: "d"})
	rest := make([]chord.Item, 0, len(items))
	for _, it := range items {
		if (uint64(it.Key) == 100 && it.Value.([]Element)[0].Data == "b") ||
			(uint64(it.Key) == 50 && it.Value.([]Element)[0].Data == "d") {
			continue
		}
		rest = append(rest, it)
	}
	bat.AddBatch(rest)

	if seq.Keys() != bat.Keys() || seq.Elements() != bat.Elements() {
		t.Fatalf("keys/elements: seq %d/%d, batch %d/%d", seq.Keys(), seq.Elements(), bat.Keys(), bat.Elements())
	}
	var sk, bk []uint64
	seq.ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(k uint64, e Element) { sk = append(sk, k) })
	bat.ScanSpan(sfc.Interval{Lo: 0, Hi: ^uint64(0)}, func(k uint64, e Element) { bk = append(bk, k) })
	if len(sk) != len(bk) {
		t.Fatalf("scan lengths differ: %d vs %d", len(sk), len(bk))
	}
	for i := range sk {
		if sk[i] != bk[i] {
			t.Fatalf("scan order differs at %d: %d vs %d", i, sk[i], bk[i])
		}
	}
}

func TestStoreAddBatchUnique(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	s.Add(10, Element{Data: "x"})
	items := []chord.Item{
		{Key: 10, Value: []Element{{Data: "x"}, {Data: "y"}}}, // x dup, y new
		{Key: 20, Value: []Element{{Data: "z"}, {Data: "z"}}}, // second z dup within batch
		{Key: 30, Value: "not elements"},                      // skipped
	}
	if added := s.AddBatchUnique(items); added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	if s.Elements() != 3 || s.Keys() != 2 {
		t.Fatalf("elements/keys = %d/%d, want 3/2", s.Elements(), s.Keys())
	}
	// Re-applying the same batch must be a no-op.
	if added := s.AddBatchUnique(items); added != 0 {
		t.Fatalf("re-add = %d, want 0", added)
	}
}

func TestStoreDirtyTracking(t *testing.T) {
	s := NewStore(chord.Space{Bits: 16})
	s.Add(1, Element{Data: "before"}) // untracked: TrackDirty not yet on
	s.TrackDirty()
	if got := s.TakeDirty(nil); len(got) != 0 {
		t.Fatalf("dirty before any tracked mutation: %v", got)
	}
	s.Add(300, Element{Data: "a"})
	s.Add(100, Element{Data: "b"})
	s.AddBatch([]chord.Item{{Key: 200, Value: []Element{{Data: "c"}}}})
	got := s.TakeDirty(nil)
	want := []uint64{100, 200, 300}
	if len(got) != len(want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dirty = %v, want %v (sorted)", got, want)
		}
	}
	// Cleared after Take; removals of the whole key are not reported.
	if got := s.TakeDirty(nil); len(got) != 0 {
		t.Fatalf("dirty not cleared: %v", got)
	}
	s.Add(400, Element{Data: "d"})
	s.Remove(400, Element{Data: "d"})
	if got := s.TakeDirty(nil); len(got) != 0 {
		t.Fatalf("fully removed key reported dirty: %v", got)
	}
	// SnapshotKeys copies exactly the asked-for keys.
	snap := s.SnapshotKeys([]uint64{100, 999})
	if len(snap) != 1 || uint64(snap[0].Key) != 100 {
		t.Fatalf("SnapshotKeys = %v", snap)
	}
}
