package squid

import (
	"strconv"
	"strings"

	"squid/internal/keyspace"
	"squid/internal/sfc"
)

// resultCache is the engine's bounded popular-cluster result cache: the
// matches of leaf subtrees — cluster batches this node resolved entirely
// against its local store — keyed by (query, cluster set). Zipf keyword
// popularity concentrates queries on a handful of refined clusters, so a
// small cache absorbs the bulk of repeat refinement work: a hit answers the
// incoming ClusterQueryMsg immediately, skipping the scheduler, the Hilbert
// refinement walk, and the store scan.
//
// Only leaf subtrees are cached, deliberately: their matches depend on
// nothing but the local store's content inside the clusters' spans, so the
// dirty-key tracking the store already runs for delta replication (PR 2) is
// an exact invalidation signal. Subtrees with remote children aggregate
// other nodes' data, which local tracking cannot see — those are never
// cached, so a hit is always as fresh as the local store.
//
// Like all engine state the cache is confined to the node's delivery
// goroutine; eviction is FIFO (matching the probe cache's idiom), sized by
// Options.ResultCacheSize.
type resultCacheEntry struct {
	key     string
	spans   []sfc.Interval // curve spans covered, for dirty-key invalidation
	matches []Element
}

type resultCache struct {
	max int
	// byKey indexes entries by cache key.
	entries []resultCacheEntry //lint:confine delivery
	byKey   map[string]int     //lint:confine delivery
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, byKey: make(map[string]int, max)}
}

// cacheKey fingerprints one incoming cluster batch: the canonical query
// text plus every cluster's prefix/level/complete triple. Identical repeat
// queries refine identically over a stable ring, so popular traffic
// collapses onto few keys.
func resultCacheKey(q keyspace.Query, cls []ClusterRef) string {
	var b strings.Builder
	b.WriteString(q.String())
	for _, c := range cls {
		b.WriteByte('|')
		b.WriteString(strconv.FormatUint(c.Prefix, 16))
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(c.Level))
		if c.Complete {
			b.WriteByte('!')
		}
	}
	return b.String()
}

// get returns the cached matches for key, if present.
func (rc *resultCache) get(key string) ([]Element, bool) {
	i, ok := rc.byKey[key]
	if !ok {
		return nil, false
	}
	return rc.entries[i].matches, true
}

// put stores a completed leaf subtree's matches, evicting FIFO beyond the
// configured size. A re-put under an existing key replaces it in place
// (same clusters re-resolved after an invalidation).
func (rc *resultCache) put(key string, spans []sfc.Interval, matches []Element) {
	if i, ok := rc.byKey[key]; ok {
		rc.entries[i] = resultCacheEntry{key: key, spans: spans, matches: matches}
		return
	}
	if len(rc.entries) >= rc.max {
		rc.evictOldest()
	}
	rc.byKey[key] = len(rc.entries)
	rc.entries = append(rc.entries, resultCacheEntry{key: key, spans: spans, matches: matches})
}

func (rc *resultCache) evictOldest() {
	if len(rc.entries) == 0 {
		return
	}
	delete(rc.byKey, rc.entries[0].key)
	rc.entries = rc.entries[1:]
	for k, i := range rc.byKey {
		rc.byKey[k] = i - 1
	}
}

// invalidate drops every entry whose covered spans contain the mutated
// curve index — the cache-side consumer of the store's dirty-key signal.
func (rc *resultCache) invalidate(idx uint64) {
	if len(rc.entries) == 0 {
		return
	}
	kept := rc.entries[:0]
	changed := false
	for _, e := range rc.entries {
		stale := false
		for _, sp := range e.spans {
			if idx >= sp.Lo && idx <= sp.Hi {
				stale = true
				break
			}
		}
		if stale {
			changed = true
			continue
		}
		kept = append(kept, e)
	}
	rc.entries = kept
	if changed {
		for k := range rc.byKey {
			delete(rc.byKey, k)
		}
		for i, e := range rc.entries {
			rc.byKey[e.key] = i
		}
	}
}

// clear drops everything — the safe response to bulk ownership changes
// (handovers, replica promotion) whose touched key set is not enumerated.
func (rc *resultCache) clear() {
	rc.entries = rc.entries[:0]
	for k := range rc.byKey {
		delete(rc.byKey, k)
	}
}
